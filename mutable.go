package gcbfs

// Incremental graphs: epoch-versioned plans over a mutating edge list.
//
// A MutableService wraps the immutable Service in an epoch chain: every
// ApplyDelta builds the NEXT epoch's partition and plan beside the live one —
// reusing the fixed degree threshold, the modular partition assignment, and
// (through partition.DistributeIncremental) the per-GPU subgraph state of
// every GPU whose routed edge sequence did not change — then publishes it
// with one atomic pointer swap. Queries admit themselves with a single
// atomic load, so a query in flight across a swap finishes entirely on its
// admission epoch (the old plan, subgraphs and pooled sessions stay valid
// and untouched), while every call after the swap lands on the new epoch.
// Result.Epoch carries the admission proof.
//
// Repair is the dynamic-BFS half: given a prior result (levels AND parents)
// from the immediately preceding epoch and the Delta that advanced it, the
// service derives the affected set (delta.Affected) and runs the corrective
// traversal (core.Plan.RunRepair) on the new epoch — bit-identical in levels
// and parents to a full recompute, usually in far fewer simulated seconds
// when the delta is small.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gcbfs/internal/core"
	"gcbfs/internal/delta"
	"gcbfs/internal/graph"
	"gcbfs/internal/metrics"
)

// Edge names one undirected vertex pair {U, V} in a Delta.
type Edge struct {
	U, V int64
}

// Delta is one atomic batch of undirected edge mutations for
// MutableService.ApplyDelta. Each pair may appear at most once across the
// whole batch; deletes must name edges the graph contains.
type Delta struct {
	Inserts []Edge
	Deletes []Edge
}

// Size returns the number of undirected mutations in the delta.
func (d *Delta) Size() int {
	if d == nil {
		return 0
	}
	return len(d.Inserts) + len(d.Deletes)
}

// batch converts the public Delta to the internal representation.
func (d *Delta) batch() *delta.Batch {
	if d == nil {
		return &delta.Batch{}
	}
	b := &delta.Batch{
		Inserts: make([]graph.Edge, len(d.Inserts)),
		Deletes: make([]graph.Edge, len(d.Deletes)),
	}
	for i, e := range d.Inserts {
		b.Inserts[i] = graph.Edge{U: e.U, V: e.V}
	}
	for i, e := range d.Deletes {
		b.Deletes[i] = graph.Edge{U: e.U, V: e.V}
	}
	return b
}

// fingerprint folds the delta's edge sequences into one word (FNV-1a over
// kind-tagged endpoints). Order-sensitive on purpose: Repair demands the
// same Delta value ApplyDelta consumed, not merely an equivalent set.
func (d *Delta) fingerprint() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (x & 0xff)) * prime
			x >>= 8
		}
	}
	if d == nil {
		return h
	}
	for _, e := range d.Inserts {
		mix(1)
		mix(uint64(e.U))
		mix(uint64(e.V))
	}
	for _, e := range d.Deletes {
		mix(2)
		mix(uint64(e.U))
		mix(uint64(e.V))
	}
	return h
}

// SynthesizeDelta generates a deterministic random delta touching about frac
// of the graph's undirected edges: kind "insert", "delete" or "mixed"
// (half/half). Inserted pairs avoid existing edges and self loops; deleted
// pairs are sampled from the graph. The same (graph, frac, kind, seed)
// always yields the same delta — the replay substrate of bfsrun -updates and
// the cmp6 ablation.
func SynthesizeDelta(g *Graph, frac float64, kind string, seed uint64) (*Delta, error) {
	k, err := delta.ParseKind(kind)
	if err != nil {
		return nil, err
	}
	b := delta.Synthesize(g.el, frac, k, seed)
	d := &Delta{
		Inserts: make([]Edge, len(b.Inserts)),
		Deletes: make([]Edge, len(b.Deletes)),
	}
	for i, e := range b.Inserts {
		d.Inserts[i] = Edge{U: e.U, V: e.V}
	}
	for i, e := range b.Deletes {
		d.Deletes[i] = Edge{U: e.U, V: e.V}
	}
	return d, nil
}

// MutableService is an epoch-versioned BFS query service over a mutating
// graph. Reads (Run, RunBatch, RunSweep, Repair, Validate, accessors) are
// safe from any number of goroutines and admit themselves to the current
// epoch with one atomic load; ApplyDelta calls are serialized among
// themselves and swap the epoch atomically without blocking readers.
type MutableService struct {
	cfg Config
	th  int64 // degree threshold, fixed at construction for every epoch

	// applyMu serializes writers (ApplyDelta); readers never take it.
	applyMu sync.Mutex
	// cur is the live epoch's immutable Service. Swapped whole; never
	// mutated in place.
	cur atomic.Pointer[Service]

	// ep tracks the epoch chain's garbage collection: which retired epochs
	// are still reachable (pinned by Snapshot references or in-flight
	// queries) and which the runtime has reclaimed.
	ep epochTracker
}

// epochTracker observes retired epoch Services without keeping them alive:
// it records only epoch numbers and retirement times, and learns about
// reclamation through per-Service finalizers.
type epochTracker struct {
	mu        sync.Mutex
	pinned    map[uint64]time.Time // superseded-at per retired epoch not yet collected
	retired   int64
	collected int64
}

// retire records an epoch superseded by an ApplyDelta swap and arms the
// finalizer that reports its eventual collection. Called with the swap
// already published; svc must be the superseded Service.
func (t *epochTracker) retire(svc *Service) {
	epoch := svc.plan.Epoch()
	t.mu.Lock()
	if t.pinned == nil {
		t.pinned = make(map[uint64]time.Time)
	}
	t.pinned[epoch] = time.Now()
	t.retired++
	t.mu.Unlock()
	// The closure captures the epoch number and the tracker, never svc —
	// a finalizer that kept its object reachable would never run.
	runtime.SetFinalizer(svc, func(*Service) {
		t.mu.Lock()
		delete(t.pinned, epoch)
		t.collected++
		t.mu.Unlock()
	})
}

// EpochStats reports the epoch chain's garbage-collection telemetry: how
// many epoch Services are still reachable, how many ApplyDelta has retired
// over the service's lifetime, and how many of those the runtime has
// reclaimed. Collection is observed through finalizers, so CollectedEpochs
// lags actual unreachability until a GC cycle runs.
type EpochStats struct {
	// LiveEpochs counts epoch Services still reachable: the current epoch
	// plus every retired epoch not yet reclaimed (pinned by a Snapshot
	// reference, an in-flight query, or simply not yet collected).
	LiveEpochs int
	// RetiredEpochs counts epochs superseded by ApplyDelta swaps.
	RetiredEpochs int64
	// CollectedEpochs counts retired epochs whose Service the runtime has
	// reclaimed; RetiredEpochs − CollectedEpochs epochs are still held.
	CollectedEpochs int64
	// OldestPinnedAge is the time since the oldest still-reachable retired
	// epoch was superseded — the age of the longest-held snapshot. Zero when
	// every retired epoch has been collected.
	OldestPinnedAge time.Duration
}

// Stats returns the current epoch-chain GC telemetry.
func (m *MutableService) Stats() EpochStats {
	t := &m.ep
	t.mu.Lock()
	defer t.mu.Unlock()
	s := EpochStats{
		LiveEpochs:      1 + len(t.pinned),
		RetiredEpochs:   t.retired,
		CollectedEpochs: t.collected,
	}
	for _, at := range t.pinned {
		if age := time.Since(at); age > s.OldestPinnedAge {
			s.OldestPinnedAge = age
		}
	}
	return s
}

// NewMutableService builds epoch 1 of the service: the graph is partitioned
// exactly as NewService would, and the degree-separation threshold (given or
// auto-tuned on this initial graph) is fixed for the service's lifetime so
// successive epochs keep comparable delegate sets.
func NewMutableService(g *Graph, cfg Config) (*MutableService, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	th := cfg.threshold(g)
	svc, _, err := newEpochService(g, cfg, th, 1, nil)
	if err != nil {
		return nil, err
	}
	m := &MutableService{cfg: cfg, th: th}
	m.cur.Store(svc)
	return m, nil
}

// EpochUpdate reports one ApplyDelta: the epoch it published, how much of
// the previous epoch's partitioned state the build reused, and what the
// build cost while the old epoch kept serving.
type EpochUpdate struct {
	// Epoch is the new live epoch number.
	Epoch uint64
	// SharedGPUs counts per-GPU subgraphs reused byte-identically from the
	// previous epoch (out of Cluster.GPUs()); GPUs whose routed edge
	// sequence changed were rebuilt.
	SharedGPUs int
	// BuildSeconds is the wall-clock time the next-epoch build took —
	// overlap it mentally with the queries the old epoch answered meanwhile.
	BuildSeconds float64
	// LiveEpochs and RetiredEpochs snapshot the epoch-chain GC telemetry as
	// of this swap (see EpochStats): reachable epoch Services including the
	// one just published, and lifetime epochs superseded so far.
	LiveEpochs    int
	RetiredEpochs int64
}

// ApplyDelta advances the graph by one atomic batch of edge mutations: the
// next epoch's edge list, partition and plan are built beside the live ones
// (sharing unchanged per-GPU subgraphs with the previous epoch), then
// published with one atomic swap. Queries already admitted — including
// coalesced sweeps draining their queue — finish on their admission epoch;
// every later call sees the new one. Concurrent ApplyDelta calls are
// serialized in arrival order.
func (m *MutableService) ApplyDelta(d *Delta) (*EpochUpdate, error) {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()
	cur := m.cur.Load()
	start := time.Now()
	el2, err := delta.Apply(cur.g.el, d.batch())
	if err != nil {
		return nil, err
	}
	epoch := cur.plan.Epoch() + 1
	svc, shared, err := newEpochService(&Graph{el: el2}, m.cfg, m.th, epoch, cur.sub)
	if err != nil {
		return nil, err
	}
	svc.deltaFP = d.fingerprint()
	m.cur.Store(svc)
	m.ep.retire(cur)
	st := m.Stats()
	return &EpochUpdate{
		Epoch: epoch, SharedGPUs: shared, BuildSeconds: time.Since(start).Seconds(),
		LiveEpochs: st.LiveEpochs, RetiredEpochs: st.RetiredEpochs,
	}, nil
}

// Epoch returns the current live epoch number.
func (m *MutableService) Epoch() uint64 { return m.cur.Load().plan.Epoch() }

// Graph returns the current epoch's graph snapshot. It is immutable — feed
// mutations through ApplyDelta, never Graph.AddUndirectedEdge.
func (m *MutableService) Graph() *Graph { return m.cur.Load().g }

// Snapshot returns the current epoch's immutable Service. Queries on the
// snapshot keep answering against that epoch even after later ApplyDelta
// calls — the pinned-version escape hatch.
func (m *MutableService) Snapshot() *Service { return m.cur.Load() }

// Run executes one BFS on the current epoch; see Service.Run for context,
// option and coalescing semantics. The result's Epoch field reports the
// admission epoch.
func (m *MutableService) Run(ctx context.Context, source int64, opts ...QueryOption) (*Result, error) {
	return m.cur.Load().Run(ctx, source, opts...)
}

// RunBatch executes one BFS per source on the current epoch; see
// Service.RunBatch.
func (m *MutableService) RunBatch(ctx context.Context, sources []int64, bo BatchOptions, opts ...QueryOption) (*BatchResult, error) {
	return m.cur.Load().RunBatch(ctx, sources, bo, opts...)
}

// RunSweep answers one BFS per source through shared multi-source sweeps on
// the current epoch; see Service.RunSweep.
func (m *MutableService) RunSweep(ctx context.Context, sources []int64, opts ...QueryOption) (*BatchResult, error) {
	return m.cur.Load().RunSweep(ctx, sources, opts...)
}

// Repair advances a prior epoch's BFS result across the delta that advanced
// the graph, without re-traversing the unchanged bulk: prior must carry
// levels AND parents and have been produced on the epoch immediately before
// the current one, and d must be the exact Delta the intervening ApplyDelta
// published — both are enforced (the delta by fingerprint), because a
// mismatched delta would silently seed the wrong corrective set. The
// corrective traversal seeds from the vertices the delta can
// move (orphaned subtrees of deleted tree edges, still-valid endpoints of
// inserts, and the probed valid boundary) and runs through the same tuned
// exchange stack as a full query; its levels and parents are bit-identical
// to recomputing from scratch on the new epoch.
func (m *MutableService) Repair(ctx context.Context, prior *Result, d *Delta, opts ...QueryOption) (*Result, error) {
	cur := m.cur.Load()
	if prior == nil || prior.Levels == nil || prior.Parents == nil {
		return nil, fmt.Errorf("gcbfs: Repair needs a prior result with levels and parents (run with WithParents or Config.CollectParents)")
	}
	if want := cur.plan.Epoch(); prior.Epoch+1 != want {
		return nil, fmt.Errorf("gcbfs: prior result is from epoch %d, repair onto epoch %d needs epoch %d (re-run or repair step by step)",
			prior.Epoch, want, want-1)
	}
	if d.fingerprint() != cur.deltaFP {
		return nil, fmt.Errorf("gcbfs: delta does not match the one ApplyDelta published for epoch %d (pass the exact Delta value)", cur.plan.Epoch())
	}
	q, err := buildQuery(opts)
	if err != nil {
		return nil, err
	}
	invalid, seeds := delta.Affected(prior.Levels, prior.Parents, d.batch())
	var r *metrics.RunResult
	attempts, degraded, err := cur.withRetry(ctx, &q, func(ctx context.Context, ov core.Overrides) error {
		var err error
		r, err = cur.plan.RunRepair(ctx, prior.Source, prior.Levels, invalid, seeds, ov)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := convert(r)
	res.Attempts, res.Degraded = attempts, degraded
	return res, nil
}

// Validate checks a result produced on the CURRENT epoch against the
// Graph500 rules and a serial reference BFS on the current graph. Results
// from earlier epochs are rejected — their reference graph is gone.
func (m *MutableService) Validate(r *Result) error {
	cur := m.cur.Load()
	if r.Epoch != cur.plan.Epoch() {
		return fmt.Errorf("gcbfs: result from epoch %d cannot be validated against live epoch %d", r.Epoch, cur.plan.Epoch())
	}
	return cur.Validate(r)
}

// Threshold returns the fixed degree-separation threshold every epoch uses.
func (m *MutableService) Threshold() int64 { return m.th }

// Memory returns the current epoch's storage accounting.
func (m *MutableService) Memory() MemoryReport { return m.cur.Load().Memory() }
