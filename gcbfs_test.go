package gcbfs

import "testing"

func TestQuickstartFlow(t *testing.T) {
	g := RMAT(10)
	if g.NumVertices() != 1024 || g.NumEdges() != 1024*32 {
		t.Fatalf("graph sizes: %d/%d", g.NumVertices(), g.NumEdges())
	}
	solver, err := NewSolver(g, DefaultConfig(Cluster{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2}))
	if err != nil {
		t.Fatal(err)
	}
	src := Sources(g, 1, 7)[0]
	res, err := solver.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.GTEPS <= 0 || res.Iterations <= 1 {
		t.Fatalf("res = %+v", res)
	}
	if err := solver.Validate(res); err != nil {
		t.Fatalf("validation: %v", err)
	}
}

func TestManualGraphConstruction(t *testing.T) {
	g := NewGraph(6)
	g.AddUndirectedEdge(0, 1)
	g.AddUndirectedEdge(1, 2)
	g.AddUndirectedEdge(2, 3)
	g.AddUndirectedEdge(3, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	solver, err := NewSolver(g, DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 3, 4, -1}
	for v, w := range want {
		if res.Levels[v] != w {
			t.Fatalf("levels = %v, want %v", res.Levels, want)
		}
	}
	if err := solver.Validate(res); err != nil {
		t.Fatal(err)
	}
}

func TestAutoThreshold(t *testing.T) {
	g := RMAT(10)
	solver, err := NewSolver(g, DefaultConfig(Cluster{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if solver.Threshold() <= 0 {
		t.Fatal("auto threshold not set")
	}
	// The 4n/p rule must hold.
	if max := 4 * g.NumVertices() / 16; solver.Delegates() > max {
		t.Fatalf("delegates %d exceed 4n/p=%d", solver.Delegates(), max)
	}
}

func TestExplicitThresholdRespected(t *testing.T) {
	g := RMAT(9)
	cfg := DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 2})
	cfg.Threshold = 40
	solver, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if solver.Threshold() != 40 {
		t.Fatalf("threshold = %d", solver.Threshold())
	}
}

func TestMemoryReport(t *testing.T) {
	g := RMAT(12)
	solver, err := NewSolver(g, DefaultConfig(Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}))
	if err != nil {
		t.Fatal(err)
	}
	m := solver.Memory()
	if m.TotalBytes <= 0 || m.MaxGPUBytes <= 0 {
		t.Fatalf("memory report: %+v", m)
	}
	if m.TotalBytes >= m.EdgeListBytes {
		t.Fatalf("representation (%d) not smaller than edge list (%d)", m.TotalBytes, m.EdgeListBytes)
	}
	slack := int64(8*16 + 16)
	if diff := m.TotalBytes - m.PredictedBytes; diff > slack || diff < -slack {
		t.Fatalf("measured %d vs predicted %d", m.TotalBytes, m.PredictedBytes)
	}
}

func TestRunManyAndGeoMean(t *testing.T) {
	g := RMAT(10)
	solver, err := NewSolver(g, DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 2}))
	if err != nil {
		t.Fatal(err)
	}
	results, err := solver.RunMany(Sources(g, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	if GeoMeanGTEPS(results) <= 0 {
		t.Fatal("geomean not positive")
	}
}

func TestPlainBFSConfig(t *testing.T) {
	g := RMAT(10)
	cfg := DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 4})
	cfg.DirectionOptimized = false
	solver, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Run(Sources(g, 1, 5)[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Validate(res); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticDatasets(t *testing.T) {
	soc := SocialNetwork(9)
	web := WebGraph(9)
	for _, g := range []*Graph{soc, web} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		solver, err := NewSolver(g, DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.Run(Sources(g, 1, 2)[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := solver.Validate(res); err != nil {
			t.Fatal(err)
		}
	}
}

func TestValidateRequiresLevels(t *testing.T) {
	g := RMAT(9)
	cfg := DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 1})
	cfg.CollectLevels = false
	solver, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Run(Sources(g, 1, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels != nil {
		t.Fatal("levels present despite CollectLevels=false")
	}
	if err := solver.Validate(res); err == nil {
		t.Fatal("Validate accepted result without levels")
	}
}

func TestBadClusterRejected(t *testing.T) {
	if _, err := NewSolver(RMAT(8), DefaultConfig(Cluster{})); err == nil {
		t.Fatal("accepted zero cluster")
	}
}

func TestSourcesDeterministic(t *testing.T) {
	g := RMAT(10)
	a := Sources(g, 5, 42)
	b := Sources(g, 5, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sources not deterministic")
		}
	}
	deg := g.OutDegrees()
	for _, s := range a {
		if deg[s] == 0 {
			t.Fatalf("source %d is isolated", s)
		}
	}
}

// TestCompressionConfig exercises the public Compression knob end to end:
// every mode validates against the serial reference, and adaptive reports a
// wire volume below the raw equivalent in a normal-exchange-heavy setup.
func TestCompressionConfig(t *testing.T) {
	g := RMAT(12)
	src := Sources(g, 1, 3)[0]
	var refLevels []int32
	for _, comp := range []Compression{CompressionOff, CompressionAdaptive,
		CompressionRaw, CompressionDelta, CompressionBitmap} {
		cfg := DefaultConfig(Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1})
		cfg.Threshold = 1 << 20 // all-normal graph: everything rides the exchange
		cfg.Compression = comp
		solver, err := NewSolver(g, cfg)
		if err != nil {
			t.Fatalf("compression %d: %v", comp, err)
		}
		res, err := solver.Run(src)
		if err != nil {
			t.Fatalf("compression %d: %v", comp, err)
		}
		if err := solver.Validate(res); err != nil {
			t.Fatalf("compression %d: validation: %v", comp, err)
		}
		if comp == CompressionOff {
			refLevels = res.Levels
			if res.WireBytes != res.WireRawBytes {
				t.Fatalf("off: wire bytes %d != raw bytes %d", res.WireBytes, res.WireRawBytes)
			}
		} else {
			for v := range refLevels {
				if res.Levels[v] != refLevels[v] {
					t.Fatalf("compression %d: vertex %d level diverged", comp, v)
				}
			}
		}
		if comp == CompressionAdaptive && res.WireBytes >= res.WireRawBytes {
			t.Fatalf("adaptive: wire bytes %d not below raw %d", res.WireBytes, res.WireRawBytes)
		}
	}

	cfg := DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1})
	cfg.Compression = Compression(7)
	if _, err := NewSolver(g, cfg); err == nil {
		t.Fatal("NewSolver accepted an out-of-range compression mode")
	}
}
