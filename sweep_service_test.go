package gcbfs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// sameTraversal asserts the parts of two results a shared sweep must keep
// bit-identical to independent runs: source, iteration count, levels and
// parents. (Sweep counters and simulated time are per-query shares of the
// sweep totals, so sameResult's scalar checks do not apply.)
func sameTraversal(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Source != want.Source {
		t.Fatalf("%s: source %d, want %d", label, got.Source, want.Source)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: iterations %d, want %d", label, got.Iterations, want.Iterations)
	}
	if (got.Levels == nil) != (want.Levels == nil) {
		t.Fatalf("%s: levels on one side only", label)
	}
	for v := range want.Levels {
		if got.Levels[v] != want.Levels[v] {
			t.Fatalf("%s: vertex %d level %d, want %d", label, v, got.Levels[v], want.Levels[v])
		}
	}
	if (got.Parents == nil) != (want.Parents == nil) {
		t.Fatalf("%s: parents on one side only", label)
	}
	for v := range want.Parents {
		if got.Parents[v] != want.Parents[v] {
			t.Fatalf("%s: vertex %d parent %d, want %d", label, v, got.Parents[v], want.Parents[v])
		}
	}
}

// TestRunSweepMatchesSerial is the tentpole acceptance check at the service
// layer: one shared sweep answers every query with levels and parents
// bit-identical to independent Run calls, across compression modes.
func TestRunSweepMatchesSerial(t *testing.T) {
	g := RMAT(11)
	for _, comp := range []Compression{CompressionOff, CompressionAdaptive} {
		cfg := DefaultConfig(Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1})
		svc, err := NewService(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sources := Sources(g, 12, 9)
		opts := []QueryOption{WithCompression(comp), WithParents(true)}
		ctx := context.Background()
		br, err := svc.RunSweep(ctx, sources, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(br.Results) != len(sources) {
			t.Fatalf("comp=%d: %d results, want %d", comp, len(br.Results), len(sources))
		}
		var sweepSim float64
		for i, src := range sources {
			serial, err := svc.Run(ctx, src, opts...)
			if err != nil {
				t.Fatal(err)
			}
			sameTraversal(t, fmt.Sprintf("comp=%d src=%d", comp, src), serial, br.Results[i])
			sweepSim += br.Results[i].SimSeconds
		}
		if br.Stats.Runs != len(sources) {
			t.Fatalf("comp=%d: stats count %d runs, want %d", comp, br.Stats.Runs, len(sources))
		}
		if br.Stats.TotalGTEPS <= 0 || br.Stats.TotalSimSeconds <= 0 {
			t.Fatalf("comp=%d: missing aggregate throughput: %+v", comp, br.Stats)
		}
	}
}

// TestRunSweepChunksWideBatches: a batch wider than SweepWidth splits into
// successive sweeps and still answers every query correctly.
func TestRunSweepChunksWideBatches(t *testing.T) {
	g := RMAT(10)
	cfg := DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1})
	cfg.SweepWidth = 4
	svc, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sources := Sources(g, 10, 21)
	ctx := context.Background()
	br, err := svc.RunSweep(ctx, sources, WithParents(true))
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range sources {
		serial, err := svc.Run(ctx, src, WithParents(true))
		if err != nil {
			t.Fatal(err)
		}
		sameTraversal(t, fmt.Sprintf("src=%d", src), serial, br.Results[i])
	}
}

// TestSweepDuplicateSources: duplicate sources in RunSweep and RunBatch are
// traversed once but every request gets its own result copy — mutating one
// caller's slices must not leak into another's.
func TestSweepDuplicateSources(t *testing.T) {
	g := RMAT(10)
	svc, err := NewService(g, DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}))
	if err != nil {
		t.Fatal(err)
	}
	base := Sources(g, 3, 5)
	sources := []int64{base[0], base[1], base[0], base[2], base[0], base[1]}
	ctx := context.Background()
	for name, run := range map[string]func() (*BatchResult, error){
		"sweep": func() (*BatchResult, error) {
			return svc.RunSweep(ctx, sources, WithParents(true))
		},
		"batch": func() (*BatchResult, error) {
			return svc.RunBatch(ctx, sources, BatchOptions{Parallelism: 2}, WithParents(true))
		},
	} {
		br, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(br.Results) != len(sources) {
			t.Fatalf("%s: %d results for %d requests", name, len(br.Results), len(sources))
		}
		if br.Stats.Runs != len(sources) {
			t.Fatalf("%s: stats count %d runs, want %d (duplicates included)", name, br.Stats.Runs, len(sources))
		}
		for i, src := range sources {
			serial, err := svc.Run(ctx, src, WithParents(true))
			if err != nil {
				t.Fatal(err)
			}
			sameTraversal(t, fmt.Sprintf("%s lane %d", name, i), serial, br.Results[i])
		}
		// Lanes 0, 2 and 4 answered the same source; corrupt lane 0's
		// slices and check the copies stand alone.
		br.Results[0].Levels[0] = -99
		if br.Results[4].Parents != nil {
			br.Results[0].Parents[0] = -99
		}
		if br.Results[2].Levels[0] == -99 || br.Results[4].Levels[0] == -99 {
			t.Fatalf("%s: duplicate-source results share a Levels slice", name)
		}
		if br.Results[2].Parents[0] == -99 || br.Results[4].Parents[0] == -99 {
			t.Fatalf("%s: duplicate-source results share a Parents slice", name)
		}
	}
}

// TestSweepWidthValidation: NewService rejects out-of-range widths; zero
// selects the default.
func TestSweepWidthValidation(t *testing.T) {
	g := RMAT(9)
	cl := Cluster{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 1}
	for _, bad := range []int{-1, 1025, 99999} {
		cfg := DefaultConfig(cl)
		cfg.SweepWidth = bad
		if _, err := NewService(g, cfg); err == nil {
			t.Fatalf("NewService accepted SweepWidth=%d", bad)
		}
	}
	cfg := DefaultConfig(cl)
	if w := cfg.sweepWidth(); w != DefaultSweepWidth {
		t.Fatalf("zero SweepWidth resolved to %d, want %d", w, DefaultSweepWidth)
	}
	cfg.SweepWidth = 7
	if w := cfg.sweepWidth(); w != 7 {
		t.Fatalf("explicit SweepWidth resolved to %d", w)
	}
}

// TestCoalescedRunsBitIdentical is the -race property check: with
// CoalesceQueries on, concurrent option-free Run calls — including calls
// admitted while a sweep is already in flight — coalesce into shared sweeps
// and return levels bit-identical to a plain serial service.
func TestCoalescedRunsBitIdentical(t *testing.T) {
	g := RMAT(11)
	cl := Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1}

	plain, err := NewService(g, DefaultConfig(cl))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(cl)
	cfg.CoalesceQueries = true
	cfg.SweepWidth = 8
	svc, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	base := Sources(g, 8, 13)
	// 32 requests over 8 distinct sources: duplicates land in the same
	// sweep lane and later arrivals coalesce into follow-up sweeps.
	queries := make([]int64, 32)
	for i := range queries {
		queries[i] = base[i%len(base)]
	}
	serial := make(map[int64]*Result, len(base))
	ctx := context.Background()
	for _, src := range base {
		if serial[src], err = plain.Run(ctx, src); err != nil {
			t.Fatal(err)
		}
	}

	results := make([]*Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	for i, src := range queries {
		wg.Add(1)
		go func(i int, src int64) {
			defer wg.Done()
			results[i], errs[i] = svc.Run(ctx, src)
		}(i, src)
	}
	wg.Wait()
	for i, src := range queries {
		if errs[i] != nil {
			t.Fatalf("coalesced query %d: %v", i, errs[i])
		}
		sameTraversal(t, fmt.Sprintf("coalesced query %d", i), serial[src], results[i])
	}
}

// TestWarmStartConsistent: WarmStart seeds later queries' hybrid policy from
// earlier feedback — traversal output must stay bit-identical to a cold
// service even as the policy warm-starts.
func TestWarmStartConsistent(t *testing.T) {
	g := RMAT(11)
	cl := Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1}
	cold, err := NewService(g, DefaultConfig(cl))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(cl)
	cfg.WarmStart = true
	warm, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sources := Sources(g, 6, 17)
	// Prime the snapshot with a hybrid batch, then check subsequent runs.
	if _, err := warm.RunBatch(ctx, sources, BatchOptions{Parallelism: 2},
		WithExchange(ExchangeHybrid), WithParents(true)); err != nil {
		t.Fatal(err)
	}
	for _, src := range sources {
		want, err := cold.Run(ctx, src, WithExchange(ExchangeHybrid), WithParents(true))
		if err != nil {
			t.Fatal(err)
		}
		got, err := warm.Run(ctx, src, WithExchange(ExchangeHybrid), WithParents(true))
		if err != nil {
			t.Fatal(err)
		}
		sameTraversal(t, fmt.Sprintf("warm src=%d", src), want, got)
	}
	// The sweep path records and consumes the snapshot too.
	if _, err := warm.RunSweep(ctx, sources, WithExchange(ExchangeHybrid)); err != nil {
		t.Fatal(err)
	}
}
