package gcbfs

// Beyond-BFS analytics on the same degree-separated substrate — the paper's
// §VI-D generalization: delegates carry richer per-vertex state (float64
// ranks, int64 labels) reduced globally, while normal vertices exchange
// (id, value) pairs instead of bare ids. Like BFS queries, these run against
// the Service's shared partition; the Solver methods delegate.

import (
	"gcbfs/internal/concomp"
	"gcbfs/internal/pagerank"
)

// PageRankOptions tunes the PageRank computation.
type PageRankOptions struct {
	// Damping is the teleport parameter (default 0.85).
	Damping float64
	// MaxIterations bounds the run (default 20).
	MaxIterations int
	// Tolerance stops early once the L1 delta drops below it (0: run all
	// iterations).
	Tolerance float64
}

// PageRankResult reports a PageRank run on the simulated cluster.
type PageRankResult struct {
	// Ranks holds one score per vertex; scores sum to 1.
	Ranks      []float64
	Iterations int
	SimSeconds float64
	// BytesNormal/BytesDelegate illustrate the §VI-D traffic growth over
	// BFS (12-byte pairs and 8-byte delegate slots vs 4 bytes and 1 bit).
	BytesNormal   int64
	BytesDelegate int64
}

// PageRank runs distributed PageRank over the service's partitioned graph.
func (s *Service) PageRank(opts PageRankOptions) (*PageRankResult, error) {
	po := pagerank.DefaultOptions()
	if opts.Damping > 0 {
		po.Damping = opts.Damping
	}
	if opts.MaxIterations > 0 {
		po.MaxIterations = opts.MaxIterations
	}
	po.Tolerance = opts.Tolerance
	po.WorkAmplification = s.cfg.WorkAmplification
	res, err := pagerank.Run(s.sub, s.cfg.Cluster.shape(), po)
	if err != nil {
		return nil, err
	}
	return &PageRankResult{
		Ranks:         res.Ranks,
		Iterations:    res.Iterations,
		SimSeconds:    res.SimSeconds,
		BytesNormal:   res.BytesNormal,
		BytesDelegate: res.BytesDelegate,
	}, nil
}

// PageRank runs distributed PageRank over the solver's partitioned graph.
func (s *Solver) PageRank(opts PageRankOptions) (*PageRankResult, error) {
	return s.svc.PageRank(opts)
}

// ComponentsResult reports a connected-components run.
type ComponentsResult struct {
	// Labels maps every vertex to its component id — the smallest vertex
	// id in the component.
	Labels     []int64
	Iterations int
	Converged  bool
	SimSeconds float64
}

// Components runs distributed connected components (min-label propagation)
// over the service's partitioned graph. maxIterations ≤ 0 selects a default
// budget; high-diameter graphs need roughly their diameter in iterations.
func (s *Service) Components(maxIterations int) (*ComponentsResult, error) {
	co := concomp.DefaultOptions()
	if maxIterations > 0 {
		co.MaxIterations = maxIterations
	}
	co.WorkAmplification = s.cfg.WorkAmplification
	res, err := concomp.Run(s.sub, s.cfg.Cluster.shape(), co)
	if err != nil {
		return nil, err
	}
	return &ComponentsResult{
		Labels:     res.Labels,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		SimSeconds: res.SimSeconds,
	}, nil
}

// Components runs distributed connected components over the solver's
// partitioned graph.
func (s *Solver) Components(maxIterations int) (*ComponentsResult, error) {
	return s.svc.Components(maxIterations)
}
