package gcbfs

import (
	"math"
	"testing"
)

func TestPageRankFacade(t *testing.T) {
	g := RMAT(10)
	solver, err := NewSolver(g, DefaultConfig(Cluster{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2}))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := solver.PageRank(PageRankOptions{MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Iterations != 15 {
		t.Fatalf("iterations = %d", pr.Iterations)
	}
	var sum float64
	for _, r := range pr.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rank mass = %f", sum)
	}
	if pr.SimSeconds <= 0 || pr.BytesDelegate == 0 {
		t.Fatalf("missing metrics: %+v", pr)
	}
}

func TestPageRankDefaults(t *testing.T) {
	g := RMAT(9)
	solver, err := NewSolver(g, DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 2}))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := solver.PageRank(PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Iterations != 20 {
		t.Fatalf("default iterations = %d, want 20", pr.Iterations)
	}
}

func TestComponentsFacade(t *testing.T) {
	g := NewGraph(7)
	g.AddUndirectedEdge(0, 1)
	g.AddUndirectedEdge(1, 2)
	g.AddUndirectedEdge(4, 5)
	solver, err := NewSolver(g, DefaultConfig(Cluster{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 1}))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := solver.Components(0)
	if err != nil {
		t.Fatal(err)
	}
	if !cc.Converged {
		t.Fatal("did not converge")
	}
	want := []int64{0, 0, 0, 3, 4, 4, 6}
	for v, w := range want {
		if cc.Labels[v] != w {
			t.Fatalf("labels = %v, want %v", cc.Labels, want)
		}
	}
}

func TestComponentsBudget(t *testing.T) {
	g := NewGraph(40)
	for v := int64(0); v+1 < 40; v++ {
		g.AddUndirectedEdge(v, v+1)
	}
	solver, err := NewSolver(g, DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := solver.Components(3)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Converged || cc.Iterations != 3 {
		t.Fatalf("budget ignored: %+v", cc)
	}
}
