package gcbfs

// Allocation-regression benchmarks for the query hot path. The bench
// trajectory (internal/bench, BENCH_*.json) records allocs/query at
// Parallelism 1 and 8 with a +10% tolerance; these benchmarks are the
// fine-grained, per-commit guard: they measure the same path under
// `go test -bench` and fail outright if allocs/query climb back above the
// pre-arena count.
//
// History (RMAT scale 12, 2×2×2, adaptive codec + hybrid exchange, levels
// and parents off; measured via the ReadMemStats delta below):
//
//	pre-arena  (PR 5): ~1502 allocs/query serial, ~1509 at Parallelism 8
//	post-arena (PR 6): ~572 allocs/query serial, ~575 at Parallelism 8
//	                   (session-owned decode/merge arena, radix-bucketed
//	                   canonical apply, per-rank reusable scratch)
//	typed mpi  (PR 7): ~439 allocs/query serial, ~443 at Parallelism 8
//	                   (boxing-free int64/uint64 collectives with parity
//	                   double-buffered accumulators, reused float-max
//	                   reduction scratch)
//	wire+world (PR 8): ~62 allocs/query serial, ~66 at Parallelism 8
//	                   (append-style encoders into per-hop/per-destination
//	                   reusable message buffers, bump-allocated decode
//	                   headers, flattened and pooled mpi.World, per-rank
//	                   policy scratch)
//
// The ceiling below sits just above the latest measurement so a regression to
// either earlier allocation regime fails the benchmark while leaving headroom
// for noise (goroutine stacks, map growth and pool warmup vary run to run).

import (
	"context"
	"runtime"
	"testing"
)

// allocCeilingPerQuery is the failure threshold for both benchmarks: well
// below every earlier regime (~1500 pre-arena, ~572 pre-typed-collective,
// ~443 pre-buffer-reuse; see the history note above), ~50% above the ~66
// current count so scheduler noise cannot flake the build.
const allocCeilingPerQuery = 100

func benchQueryAllocs(b *testing.B, parallelism int) {
	g := RMAT(12)
	svc, err := NewService(g, DefaultConfig(Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}))
	if err != nil {
		b.Fatal(err)
	}
	sources := Sources(g, 8, 7)
	opts := []QueryOption{
		WithCompression(CompressionAdaptive),
		WithExchange(ExchangeHybrid),
		WithLevels(false),
	}
	ctx := context.Background()
	warm := func() {
		if _, err := svc.RunBatch(ctx, sources, BatchOptions{Parallelism: parallelism}, opts...); err != nil {
			b.Fatal(err)
		}
	}
	warm() // populate the session pool and size the arenas
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm()
	}
	b.StopTimer()

	// Assert the arena/radix changes hold: allocs per query strictly below
	// the pre-change count. Measured outside the timed loop so the guard
	// does not perturb the reported metric.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	warm()
	runtime.ReadMemStats(&after)
	perQuery := float64(after.Mallocs-before.Mallocs) / float64(len(sources))
	b.ReportMetric(perQuery, "allocs/query")
	if perQuery >= allocCeilingPerQuery {
		b.Fatalf("allocs/query = %.0f, want < %d (pre-arena behaviour was ~1500; the Session arena or radix apply has regressed)",
			perQuery, allocCeilingPerQuery)
	}
}

// BenchmarkQueryAllocs measures heap allocations per BFS query on the
// serial path (one pooled Session reused for every query).
func BenchmarkQueryAllocs(b *testing.B) { benchQueryAllocs(b, 1) }

// BenchmarkQueryAllocsParallel8 measures the same metric with 8 queries in
// flight — the pool high-water regime where per-query scratch dominates.
func BenchmarkQueryAllocsParallel8(b *testing.B) { benchQueryAllocs(b, 8) }
