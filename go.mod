module gcbfs

go 1.24
