package gcbfs

import (
	"context"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mutableConfig() Config {
	cfg := DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 2})
	cfg.CollectParents = true
	return cfg
}

func TestMutableEpochChain(t *testing.T) {
	g := RMAT(10)
	m, err := NewMutableService(g, mutableConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 1 {
		t.Fatalf("initial epoch %d, want 1", m.Epoch())
	}
	ctx := context.Background()
	src := Sources(g, 1, 1)[0]
	r1, err := m.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Epoch != 1 {
		t.Fatalf("epoch-1 result stamped %d", r1.Epoch)
	}
	if err := m.Validate(r1); err != nil {
		t.Fatal(err)
	}

	d, err := SynthesizeDelta(m.Graph(), 0.01, "mixed", 9)
	if err != nil {
		t.Fatal(err)
	}
	up, err := m.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if up.Epoch != 2 || m.Epoch() != 2 {
		t.Fatalf("after ApplyDelta: update epoch %d, live epoch %d, want 2", up.Epoch, m.Epoch())
	}
	r2, err := m.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Epoch != 2 {
		t.Fatalf("epoch-2 result stamped %d", r2.Epoch)
	}
	if err := m.Validate(r2); err != nil {
		t.Fatal(err)
	}
	// Stale-epoch results are rejected by Validate with a clear error.
	if err := m.Validate(r1); err == nil {
		t.Fatal("epoch-1 result validated against epoch-2 graph")
	}
}

func TestMutableRepairMatchesRecompute(t *testing.T) {
	g := RMAT(10)
	m, err := NewMutableService(g, mutableConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	src := Sources(g, 1, 1)[0]
	prior, err := m.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	first := prior
	firstLevels := slices.Clone(prior.Levels)
	firstParents := slices.Clone(prior.Parents)

	for i, kind := range []string{"insert", "delete", "mixed"} {
		d, err := SynthesizeDelta(m.Graph(), 0.01, kind, uint64(10+i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		rep, err := m.Repair(ctx, prior, d)
		if err != nil {
			t.Fatal(err)
		}
		full, err := m.Run(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Epoch != full.Epoch {
			t.Fatalf("%s: repair epoch %d, recompute epoch %d", kind, rep.Epoch, full.Epoch)
		}
		if !slices.Equal(rep.Levels, full.Levels) {
			t.Fatalf("%s: repaired levels differ from recompute", kind)
		}
		if !slices.Equal(rep.Parents, full.Parents) {
			t.Fatalf("%s: repaired parents differ from recompute", kind)
		}
		if err := m.Validate(rep); err != nil {
			t.Fatalf("%s: repaired result failed validation: %v", kind, err)
		}
		prior = rep // chain: repair the repaired result across the next delta
	}

	// The epoch-1 result the caller still holds was never touched by the
	// three swaps or the repairs that read it.
	if !slices.Equal(first.Levels, firstLevels) || !slices.Equal(first.Parents, firstParents) {
		t.Fatal("epoch-1 result mutated by later epochs")
	}
}

func TestMutableRepairValidation(t *testing.T) {
	g := RMAT(9)
	m, err := NewMutableService(g, mutableConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	src := Sources(g, 1, 1)[0]
	d, err := SynthesizeDelta(g, 0.01, "mixed", 3)
	if err != nil {
		t.Fatal(err)
	}

	// No parents collected → rejected.
	noParents, err := m.Run(ctx, src, WithParents(false))
	if err != nil {
		t.Fatal(err)
	}
	prior, err := m.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Repair(ctx, noParents, d); err == nil {
		t.Fatal("repair accepted a prior without parents")
	}
	// Correct prior works.
	if _, err := m.Repair(ctx, prior, d); err != nil {
		t.Fatal(err)
	}
	// Right epoch, wrong delta → rejected (the fingerprint check): a
	// mismatched delta would silently seed repair from the wrong affected
	// set and corrupt levels without any error.
	wrong, err := SynthesizeDelta(g, 0.01, "mixed", 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Repair(ctx, prior, wrong); err == nil {
		t.Fatal("repair accepted a delta other than the one ApplyDelta published")
	}
	if _, err := m.Repair(ctx, prior, &Delta{Inserts: d.Inserts}); err == nil {
		t.Fatal("repair accepted a truncated delta")
	}
	// Epoch gap → rejected.
	d2, err := SynthesizeDelta(m.Graph(), 0.01, "insert", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyDelta(d2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Repair(ctx, prior, d2); err == nil {
		t.Fatal("repair accepted a prior two epochs behind")
	}
	// Unknown kind rejected.
	if _, err := SynthesizeDelta(g, 0.01, "scramble", 1); err == nil {
		t.Fatal("unknown delta kind accepted")
	}
	// Deleting a non-edge is an error and leaves the epoch unchanged.
	before := m.Epoch()
	if _, err := m.ApplyDelta(&Delta{Deletes: []Edge{{U: 0, V: 0}}}); err == nil {
		t.Fatal("self-loop delete accepted")
	}
	if m.Epoch() != before {
		t.Fatal("failed ApplyDelta advanced the epoch")
	}
}

// TestMutableConcurrentSwap drives Run, RunSweep and coalesced Runs from many
// goroutines while the main goroutine swaps epochs underneath them. Every
// result must be stamped with a plausible admission epoch (between the live
// epochs observed just before and just after the call), and results held
// from before a swap must be untouched by it. Run with -race.
func TestMutableConcurrentSwap(t *testing.T) {
	g := RMAT(9)
	cfg := mutableConfig()
	cfg.CoalesceQueries = true
	m, err := NewMutableService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sources := Sources(g, 8, 7)

	// Pre-swap result, deep-copied, to check swap isolation at the end.
	pre, err := m.Run(ctx, sources[0], WithParents(true))
	if err != nil {
		t.Fatal(err)
	}
	preLevels := slices.Clone(pre.Levels)
	preParents := slices.Clone(pre.Parents)

	const swaps = 3
	var wg sync.WaitGroup
	var fail atomic.Value // first error message
	check := func(res *Result, lo, hi uint64, what string) {
		if res.Epoch < lo || res.Epoch > hi {
			fail.CompareAndSwap(nil, what+": result epoch outside admission window")
		}
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				src := sources[(w*12+i)%len(sources)]
				lo := m.Epoch()
				switch i % 3 {
				case 0: // coalesced Run (option-free → sweep admission queue)
					r, err := m.Run(ctx, src)
					if err != nil {
						fail.CompareAndSwap(nil, err.Error())
						return
					}
					check(r, lo, m.Epoch(), "coalesced Run")
				case 1: // direct Run (options bypass coalescing)
					r, err := m.Run(ctx, src, WithParents(true))
					if err != nil {
						fail.CompareAndSwap(nil, err.Error())
						return
					}
					check(r, lo, m.Epoch(), "Run")
				case 2: // multi-source sweep
					br, err := m.RunSweep(ctx, sources[:4])
					if err != nil {
						fail.CompareAndSwap(nil, err.Error())
						return
					}
					hi := m.Epoch()
					for _, r := range br.Results {
						check(r, lo, hi, "RunSweep")
					}
				}
			}
		}(w)
	}
	for s := 0; s < swaps; s++ {
		d, err := SynthesizeDelta(m.Graph(), 0.005, "mixed", uint64(20+s))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	if m.Epoch() != 1+swaps {
		t.Fatalf("final epoch %d, want %d", m.Epoch(), 1+swaps)
	}
	if !slices.Equal(pre.Levels, preLevels) || !slices.Equal(pre.Parents, preParents) {
		t.Fatal("pre-swap result mutated by epoch swaps")
	}
	// The pinned snapshot keeps serving its epoch after swaps.
	snap := m.Snapshot()
	r, err := snap.Run(ctx, sources[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch != m.Epoch() {
		t.Fatalf("snapshot taken at epoch %d answered %d", m.Epoch(), r.Epoch)
	}
}

func TestMutableIncrementalSharing(t *testing.T) {
	g := RMAT(10)
	m, err := NewMutableService(g, mutableConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A tiny delta should leave at least one GPU's routed edge sequence
	// untouched on a 4-GPU layout; sharing is best-effort (threshold drift
	// can force a rebuild), so only assert the accounting is sane.
	d, err := SynthesizeDelta(g, 0.001, "insert", 5)
	if err != nil {
		t.Fatal(err)
	}
	up, err := m.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	gpus := mutableConfig().Cluster.GPUs()
	if up.SharedGPUs < 0 || up.SharedGPUs > gpus {
		t.Fatalf("SharedGPUs %d out of range [0,%d]", up.SharedGPUs, gpus)
	}
	if up.BuildSeconds < 0 {
		t.Fatalf("negative build time %v", up.BuildSeconds)
	}
}

// TestEpochGCTelemetry pins an epoch-1 snapshot across two ApplyDeltas and
// watches the epoch-chain GC stats: both superseded epochs count as retired,
// the pinned one keeps LiveEpochs elevated and ages OldestPinnedAge, and once
// the snapshot reference drops the runtime reclaims every retired epoch
// (observed through the finalizer-driven CollectedEpochs counter).
func TestEpochGCTelemetry(t *testing.T) {
	g := RMAT(10)
	m, err := NewMutableService(g, mutableConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.LiveEpochs != 1 || st.RetiredEpochs != 0 || st.CollectedEpochs != 0 || st.OldestPinnedAge != 0 {
		t.Fatalf("fresh service stats %+v, want one live epoch and zeros", st)
	}
	ctx := context.Background()
	src := Sources(g, 1, 1)[0]

	snap := m.Snapshot() // pin epoch 1
	for i := 0; i < 2; i++ {
		d, err := SynthesizeDelta(m.Graph(), 0.01, "mixed", uint64(21+i))
		if err != nil {
			t.Fatal(err)
		}
		up, err := m.ApplyDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		if up.RetiredEpochs != int64(i+1) {
			t.Fatalf("after delta %d: update reports %d retired, want %d", i+1, up.RetiredEpochs, i+1)
		}
		if up.LiveEpochs < 2 {
			t.Fatalf("after delta %d: %d live epochs with a snapshot pinned, want >= 2", i+1, up.LiveEpochs)
		}
	}
	st := m.Stats()
	if st.RetiredEpochs != 2 {
		t.Fatalf("retired %d epochs, want 2", st.RetiredEpochs)
	}
	if st.LiveEpochs < 2 {
		t.Fatalf("%d live epochs while the epoch-1 snapshot is pinned, want >= 2", st.LiveEpochs)
	}
	if st.OldestPinnedAge <= 0 {
		t.Fatalf("OldestPinnedAge %v with a pinned retired epoch, want > 0", st.OldestPinnedAge)
	}
	// The pinned snapshot still answers against its own epoch.
	r, err := snap.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch != 1 {
		t.Fatalf("pinned snapshot answered epoch %d, want 1", r.Epoch)
	}

	// Drop the pin: every retired epoch becomes unreachable and the runtime
	// reclaims it. Finalizers need GC cycles to run, so poll with a generous
	// deadline rather than asserting after one collection.
	snap = nil
	_ = snap
	deadline := time.Now().Add(30 * time.Second)
	for {
		runtime.GC()
		st = m.Stats()
		if st.CollectedEpochs == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retired epochs not collected: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.LiveEpochs != 1 {
		t.Fatalf("%d live epochs after collection, want 1 (the current epoch)", st.LiveEpochs)
	}
	if st.OldestPinnedAge != 0 {
		t.Fatalf("OldestPinnedAge %v with nothing pinned, want 0", st.OldestPinnedAge)
	}
}
