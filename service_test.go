package gcbfs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// sameResult asserts two runs of the same query are bit-identical: levels,
// parents and every scalar the service reports.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Source != b.Source {
		t.Fatalf("%s: source %d vs %d", label, a.Source, b.Source)
	}
	if a.Iterations != b.Iterations {
		t.Fatalf("%s: iterations %d vs %d", label, a.Iterations, b.Iterations)
	}
	if a.SimSeconds != b.SimSeconds {
		t.Fatalf("%s: sim seconds %v vs %v", label, a.SimSeconds, b.SimSeconds)
	}
	if a.EdgesScanned != b.EdgesScanned {
		t.Fatalf("%s: edges scanned %d vs %d", label, a.EdgesScanned, b.EdgesScanned)
	}
	if a.WireBytes != b.WireBytes || a.WireRawBytes != b.WireRawBytes {
		t.Fatalf("%s: wire accounting differs", label)
	}
	if (a.Levels == nil) != (b.Levels == nil) {
		t.Fatalf("%s: levels on one side only", label)
	}
	for v := range a.Levels {
		if a.Levels[v] != b.Levels[v] {
			t.Fatalf("%s: vertex %d level %d vs %d", label, v, a.Levels[v], b.Levels[v])
		}
	}
	if (a.Parents == nil) != (b.Parents == nil) {
		t.Fatalf("%s: parents on one side only", label)
	}
	for v := range a.Parents {
		if a.Parents[v] != b.Parents[v] {
			t.Fatalf("%s: vertex %d parent %d vs %d", label, v, a.Parents[v], b.Parents[v])
		}
	}
}

// TestServiceConcurrentMixedQueries is the concurrency acceptance check:
// 8+ simultaneous Service.Run calls with mixed per-query compression and
// exchange overrides, every result bit-identical to a serial reference run.
// Exercised under -race by the CI race job.
func TestServiceConcurrentMixedQueries(t *testing.T) {
	g := RMAT(11)
	// 4 ranks (power of two) so butterfly overrides run the real hypercube.
	svc, err := NewService(g, DefaultConfig(Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1}))
	if err != nil {
		t.Fatal(err)
	}
	sources := Sources(g, 8, 42)
	type query struct {
		src  int64
		opts []QueryOption
	}
	compressions := []Compression{CompressionOff, CompressionAdaptive, CompressionDelta}
	exchanges := []Exchange{ExchangeAllPairs, ExchangeButterfly}
	queries := make([]query, 0, len(sources))
	for i, src := range sources {
		queries = append(queries, query{src: src, opts: []QueryOption{
			WithCompression(compressions[i%len(compressions)]),
			WithExchange(exchanges[i%len(exchanges)]),
			WithParents(true),
		}})
	}
	ctx := context.Background()

	serial := make([]*Result, len(queries))
	for i, q := range queries {
		if serial[i], err = svc.Run(ctx, q.src, q.opts...); err != nil {
			t.Fatal(err)
		}
	}

	concurrent := make([]*Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q query) {
			defer wg.Done()
			concurrent[i], errs[i] = svc.Run(ctx, q.src, q.opts...)
		}(i, q)
	}
	wg.Wait()
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("concurrent query %d: %v", i, errs[i])
		}
		sameResult(t, fmt.Sprintf("query %d", i), serial[i], concurrent[i])
	}
}

// TestRunBatchMatchesSerial is the batch acceptance check: RunBatch with
// Parallelism 8 produces levels AND parents bit-identical to a serial Run
// loop for every source, across compression × exchange modes.
func TestRunBatchMatchesSerial(t *testing.T) {
	g := RMAT(11)
	cfg := DefaultConfig(Cluster{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1})
	// A high degree threshold keeps most vertices normal, so the inter-rank
	// normal exchange — the traffic the codec knobs act on — carries real
	// volume and the codec-cost assertions below are not vacuous.
	cfg.Threshold = 64
	svc, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sources := Sources(g, 10, 7)
	ctx := context.Background()
	for _, comp := range []Compression{CompressionOff, CompressionAdaptive} {
		for _, ex := range []Exchange{ExchangeAllPairs, ExchangeButterfly} {
			label := fmt.Sprintf("comp=%d/ex=%d", comp, ex)
			opts := []QueryOption{WithCompression(comp), WithExchange(ex), WithParents(true)}
			serial := make([]*Result, len(sources))
			for i, src := range sources {
				if serial[i], err = svc.Run(ctx, src, opts...); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			}
			batch, err := svc.RunBatch(ctx, sources, BatchOptions{Parallelism: 8}, opts...)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if len(batch.Results) != len(sources) {
				t.Fatalf("%s: %d results, want %d", label, len(batch.Results), len(sources))
			}
			for i := range sources {
				sameResult(t, label, serial[i], batch.Results[i])
			}
			// Stats coherence against the per-query results.
			st := batch.Stats
			if st.Runs != len(sources) {
				t.Fatalf("%s: stats count %d runs, want %d", label, st.Runs, len(sources))
			}
			if geo := GeoMeanGTEPS(batch.Results); math.Abs(geo-st.GeoMeanGTEPS) > 1e-12*math.Abs(geo) {
				t.Fatalf("%s: stats geo-mean %v vs recomputed %v", label, st.GeoMeanGTEPS, geo)
			}
			var totalSim float64
			for _, r := range batch.Results {
				totalSim += r.SimSeconds
			}
			if math.Abs(totalSim-st.TotalSimSeconds) > 1e-15+1e-12*totalSim {
				t.Fatalf("%s: stats total sim %v vs recomputed %v", label, st.TotalSimSeconds, totalSim)
			}
			if st.TotalGTEPS <= 0 {
				t.Fatalf("%s: no aggregate throughput", label)
			}
			if st.WireRawBytes == 0 {
				t.Fatalf("%s: no normal-exchange traffic — codec assertions vacuous", label)
			}
			if comp == CompressionOff && st.CodecSeconds != 0 {
				t.Fatalf("%s: codec seconds %v with codec off", label, st.CodecSeconds)
			}
			if comp == CompressionAdaptive && st.CodecSeconds <= 0 {
				t.Fatalf("%s: no codec seconds with codec on", label)
			}
		}
	}
}

// TestServiceRunContext: a cancelled context surfaces as ctx.Err() from both
// Run and RunBatch.
func TestServiceRunContext(t *testing.T) {
	g := RMAT(10)
	svc, err := NewService(g, DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Run(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if _, err := svc.RunBatch(ctx, Sources(g, 3, 1), BatchOptions{Parallelism: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBatch err = %v, want context.Canceled", err)
	}
	// Deadline flavor.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer dcancel()
	if _, err := svc.Run(dctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline err = %v, want context.DeadlineExceeded", err)
	}
}

// TestQueryOptionValidation rejects out-of-range per-query overrides.
func TestQueryOptionValidation(t *testing.T) {
	g := RMAT(10)
	svc, err := NewService(g, DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := svc.Run(ctx, 1, WithCompression(Compression(99))); err == nil {
		t.Fatal("service accepted an invalid compression override")
	}
	if _, err := svc.Run(ctx, 1, WithExchange(Exchange(-1))); err == nil {
		t.Fatal("service accepted an invalid exchange override")
	}
	// A butterfly override on a non-power-of-two rank count runs the
	// generalized (cleanup-hop) butterfly — no fallback exists anymore.
	svc3, err := NewService(g, DefaultConfig(Cluster{Nodes: 3, RanksPerNode: 1, GPUsPerRank: 1}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc3.Run(ctx, 1, WithExchange(ExchangeButterfly))
	if err != nil {
		t.Fatal(err)
	}
	if res.Exchange != "butterfly" || res.AllPairsIterations != 0 {
		t.Fatalf("butterfly on 3 ranks: exchange %q with %d all-pairs iterations — want pure butterfly",
			res.Exchange, res.AllPairsIterations)
	}
	// The hybrid policy is a valid override too.
	if res, err = svc3.Run(ctx, 1, WithExchange(ExchangeHybrid)); err != nil {
		t.Fatal(err)
	} else if res.Exchange != "hybrid" {
		t.Fatalf("hybrid override reported exchange %q", res.Exchange)
	}
}

// TestBatchPoolObservability: a Parallelism-2, 8-source batch must reuse
// pooled sessions (hits > 0), allocate at most Parallelism fresh ones, and
// report a peak-in-flight within [1, Parallelism].
func TestBatchPoolObservability(t *testing.T) {
	g := RMAT(11)
	svc, err := NewService(g, DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 2}))
	if err != nil {
		t.Fatal(err)
	}
	sources := Sources(g, 8, 3)
	br, err := svc.RunBatch(context.Background(), sources, BatchOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := br.Stats
	if st.PoolHits <= 0 {
		t.Fatalf("pool hits = %d, want > 0 on an 8-source Parallelism-2 batch", st.PoolHits)
	}
	if st.PoolHits+st.PoolMisses != int64(len(sources)) {
		t.Fatalf("hits %d + misses %d != %d queries", st.PoolHits, st.PoolMisses, len(sources))
	}
	// sync.Pool keeps per-P free lists, so a worker hopping processors can
	// miss a session another P just returned — misses may exceed
	// Parallelism, but never reach the query count once recycling works.
	if st.PoolMisses < 1 || st.PoolMisses >= int64(len(sources)) {
		t.Fatalf("pool misses = %d, want within [1, %d)", st.PoolMisses, len(sources))
	}
	if st.PeakInFlight < 1 || st.PeakInFlight > 2 {
		t.Fatalf("peak in-flight = %d, want within [1, Parallelism=2]", st.PeakInFlight)
	}
	// A second batch over the warm pool must keep reusing sessions.
	br2, err := svc.RunBatch(context.Background(), sources, BatchOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if br2.Stats.PoolHits <= 0 {
		t.Fatalf("warm-pool batch hits = %d, want > 0", br2.Stats.PoolHits)
	}
	if br2.Stats.PoolHits+br2.Stats.PoolMisses != int64(len(sources)) {
		t.Fatalf("warm-pool hits %d + misses %d != %d queries",
			br2.Stats.PoolHits, br2.Stats.PoolMisses, len(sources))
	}
}

// TestSourcesShortGraph: fewer positive-degree vertices than requested must
// return the short list (ascending), not loop forever (the old bug).
func TestSourcesShortGraph(t *testing.T) {
	g := NewGraph(10)
	g.AddUndirectedEdge(1, 5)
	g.AddUndirectedEdge(5, 7)
	got := Sources(g, 8, 1)
	want := []int64{1, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Sources returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sources returned %v, want %v", got, want)
		}
	}
	// Zero-edge graph: nothing eligible, nil result.
	if got := Sources(NewGraph(4), 2, 1); got != nil {
		t.Fatalf("Sources on an edgeless graph returned %v", got)
	}
	// Enough candidates: exact count, all positive degree, deterministic.
	big := RMAT(10)
	a, b := Sources(big, 6, 3), Sources(big, 6, 3)
	if len(a) != 6 {
		t.Fatalf("Sources returned %d vertices, want 6", len(a))
	}
	deg := big.OutDegrees()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sources nondeterministic for a fixed seed")
		}
		if deg[a[i]] == 0 {
			t.Fatalf("Sources picked zero-degree vertex %d", a[i])
		}
	}
}

// TestSolverFacade: the deprecated Solver delegates to the Service and the
// two produce identical results.
func TestSolverFacade(t *testing.T) {
	g := RMAT(10)
	cfg := DefaultConfig(Cluster{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1})
	solver, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if solver.Service() == nil {
		t.Fatal("solver does not expose its service")
	}
	src := Sources(g, 1, 4)[0]
	viaSolver, err := solver.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	viaService, err := solver.Service().Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "solver vs service", viaSolver, viaService)
	if err := solver.Validate(viaSolver); err != nil {
		t.Fatal(err)
	}
}
