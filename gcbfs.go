// Package gcbfs is a Go reproduction of "Scalable Breadth-First Search on a
// GPU Cluster" (Pan, Pearce, Owens — IPDPS workshops 2018, arXiv:1803.03922).
//
// It implements the paper's full system on a simulated GPU cluster:
// degree-separated graph representation (delegates vs normal vertices, §III),
// the Algorithm-1 edge distributor with four per-GPU subgraphs, per-subgraph
// direction-optimized traversal kernels (§IV), and the two-tier
// communication model — global bitmask reduction for delegates plus
// point-to-point exchange for normal vertices (§V).
//
// Runs are functionally exact (hop distances match a serial BFS and pass
// Graph500-style validation) while time is simulated through calibrated
// device and interconnect models, so the paper's scaling behaviour is
// reproducible on any host. See DESIGN.md for the architecture and
// EXPERIMENTS.md for paper-vs-measured comparisons.
//
// # Query service
//
// The primary API is a persistent, concurrency-safe query service: NewService
// partitions the graph once, and the Service then answers any number of BFS
// queries — sequentially or concurrently — against that shared partition.
// Internally an immutable query plan holds the subgraphs while every query
// runs on a pooled per-query session, so concurrent queries never alias
// mutable state and every result is bit-identical to a serial run.
//
//	g := gcbfs.RMAT(16)
//	svc, err := gcbfs.NewService(g, gcbfs.DefaultConfig(gcbfs.Cluster{
//		Nodes: 4, RanksPerNode: 2, GPUsPerRank: 2,
//	}))
//	if err != nil { ... }
//	ctx := context.Background()
//
//	// One query, with a per-query option override.
//	res, err := svc.Run(ctx, gcbfs.Sources(g, 1, 1)[0],
//		gcbfs.WithCompression(gcbfs.CompressionAdaptive))
//	fmt.Printf("%.1f GTEPS in %d iterations\n", res.GTEPS, res.Iterations)
//
//	// The paper's §VI-A methodology — many random sources — as one batch,
//	// eight queries in flight at a time, results source-ordered.
//	batch, err := svc.RunBatch(ctx, gcbfs.Sources(g, 64, 1),
//		gcbfs.BatchOptions{Parallelism: 8})
//	fmt.Printf("geo-mean %.1f GTEPS over %d runs\n",
//		batch.Stats.GeoMeanGTEPS, batch.Stats.Runs)
//
// Run honors its context at iteration boundaries: a cancelled or expired
// context aborts the query within one BFS iteration and returns ctx.Err().
// Per-query options (WithCompression, WithExchange, WithLevels, WithParents,
// WithWorkAmplification) override the construction-time Config for a single
// query without re-partitioning; knobs that change the partition or kernel
// policies still require a new Service.
//
// The pre-service Solver API (NewSolver / Solver.Run / Solver.RunMany)
// remains as a thin compatibility facade over Service; see CHANGES.md for
// the migration path.
//
// # Frontier-exchange compression
//
// The Config.Compression knob routes the inter-rank normal-vertex payloads
// through the internal/wire codec. CompressionAdaptive encodes every
// message as the smallest of a raw uint32 list, a sorted varint delta
// stream, or a dense bitmap (checksummed, with a 1-byte scheme header);
// CompressionRaw/Delta/Bitmap force one scheme for ablations, and
// CompressionOff (the default) keeps the paper's fixed-width packing.
// Compression never changes levels or parents — only bytes on the wire, the
// simulated remote-normal communication time, and the codec pack/unpack
// compute now charged through the device model (Result.CodecSeconds).
//
// # Exchange policies: butterfly and hybrid
//
// The Config.Exchange knob replaces the all-pairs normal-vertex exchange
// (p−1 messages per rank per iteration) with a hypercube butterfly: each
// hop exchanges one aggregated message with partner rank XOR 2^k,
// forwarding everything destined for the partner's half. Message count
// drops from quadratic to about p·log2(p) and per-message size grows into
// the network's high-efficiency regime, at the cost of relayed volume
// (ButterFly BFS, Green 2021). Any rank count works: non-power-of-two
// counts fold their remainder ranks into the nearest power-of-two
// hypercube with a Bruck-style pre/post cleanup hop pair. The codec
// re-encodes per hop, so adaptive compression sees the aggregated blocks —
// and pays the log(p)× codec compute the timing model charges.
//
// ExchangeHybrid picks between the two per BFS iteration, the way
// direction optimization picks push vs pull: the butterfly wins
// message-count-bound iterations (tiny frontiers, many ranks) while
// all-pairs wins bandwidth-bound ones (the butterfly relays ~log2(p)/2×
// the volume), and a cost model over the simulated link parameters takes
// the cheaper side each iteration from the globally known frontier volume.
// Result.AllPairsIterations/ButterflyIterations report the split. Results
// are bit-identical across all three policies — and across any
// per-iteration mix — only message pattern and simulated time change.
//
// # Pipelined hops
//
// The butterfly's hops are software-pipelined by default (Config.Pipeline,
// set by DefaultConfig; per-query WithPipeline): hop k's transfer runs
// concurrently with hop k−1's decode/merge/re-encode compute, so each
// pipeline step costs max(wire, codec) instead of their sum — the paper's
// §VI-B compute/communication overlap applied inside the exchange, which
// reclaims most of the log(p)× codec work the per-hop re-encode costs.
// Result.HiddenCodecSeconds reports the codec time hidden under transfers
// and Result.PipelineStalls the steps where compute outlasted the wire;
// per-iteration Result breakdowns carry the exposed remainder inside
// RemoteNormal. The hybrid policy prices the overlap into its butterfly
// cost estimate, so the all-pairs/butterfly crossover moves up when
// pipelining is on. Two measured feedback signals tighten its decisions
// per query: a skew ratio (the max-reduced per-rank volume over the mean,
// pricing partition skew) and a per-strategy calibration EWMA of
// predicted-vs-actual exchange time (Result.CalibrationAllPairs /
// CalibrationButterfly). Pipelining never changes levels or parents —
// overlap hides time, it never reorders the traversal.
//
// # Hierarchical exchange
//
// On clusters with more than one GPU per rank, the exchange is two-level by
// default: the GPUs of a rank first combine their per-destination bins over
// simulated NVLink into one merged message per destination rank, then the
// inter-rank topology (all-pairs or butterfly) ships the aggregates —
// message count per rank per iteration drops by a factor of GPUsPerRank,
// and per-message size grows into the network's high-efficiency regime.
// Under the pipelined butterfly the intra-rank NVLink staging becomes a
// third pipeline resource next to the wire and the codec: each step costs
// max(wire, codec, nvlink), so most NVLink time hides under hop transfers
// (Result.NVLinkSeconds / HiddenNVLinkSeconds report the split). The
// exposed remainder is charged to the LocalComm breakdown component — the
// pre-hierarchy home of staging time — never RemoteNormal, which stays the
// wire+codec schedule and therefore comparable across flat and
// hierarchical runs. The delegate-mask allreduce is chunked across the hop
// steps whenever folding it under the butterfly's wire is cheaper than the
// standalone reduction.
// Config.FlatExchange (per-query WithFlatExchange) restores the flat
// baseline — every GPU's fragment as its own inter-rank message, exactly
// GPUsPerRank× the hierarchical message count — for the cmp7 ablation.
// Levels and parents are bit-identical flat vs hierarchical across every
// strategy and cluster shape; only message pattern and simulated time
// change. The hybrid policy prices the NVLink stages into both strategy
// estimates, so its crossover tracks the hierarchy.
//
// # Multi-source sweeps
//
// Service.RunSweep answers K BFS queries in ONE shared BSP traversal
// (MS-BFS): per-vertex visited state widens to a K-bit query mask, frontier
// records carry (vertex, query-set) payloads through a record codec, and the
// delegate tier reduces a d×K mask matrix. A vertex expanded for many
// queries scans its adjacency once, and records bound for the same vertex
// merge into one wire record with OR-ed masks — so traversal work and wire
// volume amortize across the batch while every query's levels and parents
// stay bit-identical to an independent Run. Sources are deduplicated at
// admission (duplicate requests share one traversal lane and receive their
// own result copies), batches wider than Config.SweepWidth (default 64,
// bounded by core's 1024) split into successive sweeps, and the per-query
// Result reports the sweep totals divided evenly across its queries — the
// amortized per-query rate the cmp5 ablation compares against independent
// RunBatch.
//
// Config.CoalesceQueries additionally routes plain Run calls (those without
// per-query options) through a sweep admission queue: concurrent callers are
// batched into sweeps of at most SweepWidth, with requests arriving during
// an in-flight sweep coalescing into the next one. Coalesced sweeps run on a
// background context — a caller's cancellation abandons its wait but never
// aborts the shared traversal.
//
// Config.WarmStart carries hybrid-policy feedback across queries: each
// completed query's final skew, wire-ratio and per-strategy calibration
// EWMAs are merged — deterministically, in source order — into a service
// snapshot that seeds subsequent queries' policy feedback. Warm starting
// never changes levels or parents, only how quickly the hybrid exchange
// policy's cost model converges; it is off by default so fixed benchmark
// cells stay reproducible in isolation.
//
// # Incremental graphs
//
// NewMutableService wraps the service in an epoch chain for mutating
// graphs: ApplyDelta takes one atomic batch of undirected edge inserts and
// deletes, builds the next epoch's partition and plan beside the live one —
// reusing the fixed degree threshold, the modular partition assignment, and
// every per-GPU subgraph whose routed edge sequence did not change — and
// publishes it with a single atomic pointer swap. Queries admit themselves
// with one atomic load: a query in flight across a swap (including a
// coalesced sweep draining its queue) finishes entirely on its admission
// epoch, every later call lands on the new one, and Result.Epoch records
// which. MutableService.Repair then advances a held result across the delta
// without re-traversing the unchanged bulk: the affected set (orphaned
// subtrees of deleted tree edges, still-valid endpoints of inserts) seeds a
// corrective traversal through the same exchange stack, and the repaired
// levels and parents are bit-identical to a full recompute on the new epoch
// — typically in a fraction of the simulated time when the delta is small
// (the cmp6 ablation quantifies the crossover). See examples/streaming.
//
// # Fault tolerance
//
// The execution stack is fault-contained: every wire payload is checksummed
// (wire.ErrCorrupt typed errors, never panics, on any decode failure), every
// per-rank goroutine runs behind a recover boundary, and a fault on any rank
// poisons the whole communicator so all ranks unwind within one BSP
// iteration — the caller always sees an error or a complete, validated
// result, never a partial one. Sessions that absorbed a fault are discarded,
// not recycled through the query pool.
//
// Config.Retry layers recovery on top: queries failing with a contained
// fault re-execute up to RetryPolicy.MaxAttempts times with exponential
// backoff, optionally switching to a degraded execution profile (flat
// all-pairs exchange, pipelining off) after DegradeAfter failures.
// Result.Attempts and Result.Degraded report the outcome per query;
// Service.FaultStats aggregates retries, degraded runs, exhausted budgets
// and deadline expiries. A recovered query's levels and parents are
// bit-identical to an undisturbed run.
//
// Config.QueryTimeout (per-query WithDeadline) bounds each query's total
// execution including retries; expiry surfaces as context.DeadlineExceeded
// and is never retried.
//
// Config.Inject arms the deterministic fault injector (internal/faults) that
// the cmp8 chaos ablation drives: corrupt, truncated and dropped messages,
// stalled ranks and mid-iteration rank crashes, keyed by (rank, iteration,
// site) so every failure replays exactly. Unarmed (the default), every fault
// decision point reduces to a nil check and results, wire bytes and timing
// are identical to a build without the machinery.
//
// # Benchmark trajectory
//
// Performance claims are trended, not narrated: every PR regenerates a
// pinned benchmark report at the repo root via
//
//	go run ./cmd/bfsbench -json BENCH_<pr>.json -quick
//
// and CHANGES.md cites the diff against the previous baseline
// (bfsbench -diff new.json -baseline old.json). The suite (internal/bench)
// records GTEPS, exact wire bytes, hidden-codec ratio, policy error, and
// allocs/bytes per query under fixed seeds; CI's bench-trajectory job diffs
// a fresh run against the latest committed BENCH_*.json with per-metric
// tolerances (GTEPS −5%, allocs/query +10%, wire bytes exact) and fails the
// build on regression. See examples/tuning for how to read the cells.
package gcbfs

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"gcbfs/internal/baseline"
	"gcbfs/internal/core"
	"gcbfs/internal/faults"
	"gcbfs/internal/g500"
	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// Graph is a symmetric (edge-doubled) graph over vertices [0, NumVertices).
type Graph struct {
	el *graph.EdgeList
}

// NewGraph returns an empty graph over n vertices.
func NewGraph(n int64) *Graph {
	return &Graph{el: graph.NewEdgeList(n)}
}

// AddUndirectedEdge inserts both directions of the edge {u, v}, keeping the
// graph symmetric as the system requires (§II-A).
func (g *Graph) AddUndirectedEdge(u, v int64) {
	g.el.Add(u, v)
	g.el.Add(v, u)
}

// RMAT generates the Graph500 RMAT graph the paper evaluates on: edge
// factor 16, A,B,C,D = 0.57/0.19/0.19/0.05, vertex numbers randomized by a
// deterministic hash, symmetric by edge doubling.
func RMAT(scale int) *Graph {
	return &Graph{el: rmat.Generate(rmat.DefaultParams(scale))}
}

// RMATWithSeed is RMAT with a custom generator seed.
func RMATWithSeed(scale int, seed uint64) *Graph {
	p := rmat.DefaultParams(scale)
	p.Seed = seed
	return &Graph{el: rmat.Generate(p)}
}

// SocialNetwork generates the Friendster-like synthetic social graph used by
// the §VI-D experiments: a scale-free core with about half the vertices
// isolated.
func SocialNetwork(coreScale int) *Graph {
	return &Graph{el: gen.SocialNetwork(gen.DefaultSocialParams(coreScale))}
}

// WebGraph generates the WDC-like long-tail web graph of §VI-D: a scale-free
// core plus long chains that push BFS to hundreds of iterations.
func WebGraph(coreScale int) *Graph {
	return &Graph{el: gen.WebGraph(gen.DefaultWebParams(coreScale))}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int64 { return g.el.N }

// NumEdges returns the directed edge count (twice the undirected count).
func (g *Graph) NumEdges() int64 { return g.el.M() }

// OutDegrees returns the out-degree of every vertex.
func (g *Graph) OutDegrees() []int64 { return g.el.OutDegrees() }

// Validate checks edge endpoints are in range.
func (g *Graph) Validate() error { return g.el.Validate() }

// Cluster is the paper's hardware notation: nodes × MPI ranks per node ×
// GPUs per rank.
type Cluster struct {
	Nodes        int
	RanksPerNode int
	GPUsPerRank  int
}

// GPUs returns the total simulated GPU count.
func (c Cluster) GPUs() int { return c.Nodes * c.RanksPerNode * c.GPUsPerRank }

func (c Cluster) shape() core.ClusterShape {
	return core.ClusterShape{Nodes: c.Nodes, RanksPerNode: c.RanksPerNode, GPUsPerRank: c.GPUsPerRank}
}

// Config selects the cluster layout and the paper's tuning options (§VI-B).
type Config struct {
	Cluster Cluster
	// Threshold is the degree-separation threshold TH; 0 selects it
	// automatically with the paper's d ≤ 4n/p rule.
	Threshold int64
	// DirectionOptimized enables DOBFS (per-subgraph direction switching).
	DirectionOptimized bool
	// LocalAll2All enables the intra-rank staging optimization (L).
	LocalAll2All bool
	// Uniquify removes duplicate destinations from send bins (U).
	Uniquify bool
	// BlockingReduce selects MPI_Allreduce (BR) over MPI_Iallreduce (IR)
	// for delegate masks.
	BlockingReduce bool
	// WorkAmplification scales the timing model into a larger-graph
	// regime (see EXPERIMENTS.md); values ≤ 0 are treated as 1
	// (no amplification). Overridable per query with
	// WithWorkAmplification.
	WorkAmplification float64
	// CollectLevels gathers hop distances into results. Overridable per
	// query with WithLevels.
	CollectLevels bool
	// CollectParents additionally gathers the Graph500 BFS tree into
	// results. Overridable per query with WithParents.
	CollectParents bool
	// Compression selects the frontier-exchange codec for inter-rank
	// normal-vertex payloads (see the package comment). The zero value is
	// CompressionOff. Overridable per query with WithCompression.
	Compression Compression
	// Exchange selects the inter-rank exchange policy for normal vertices:
	// ExchangeAllPairs (the zero value) sends one message per destination
	// rank per iteration, ExchangeButterfly runs hypercube hops that
	// aggregate payloads into fewer, larger messages (any rank count —
	// non-powers-of-two add a cleanup hop pair), and ExchangeHybrid picks
	// between the two per iteration from the known frontier volume.
	// Traversal results are identical under every policy. Overridable per
	// query with WithExchange.
	Exchange Exchange
	// Pipeline software-pipelines the butterfly's hops: each hop's transfer
	// overlaps the previous hop's decode/merge/re-encode compute, hiding
	// codec time under communication (see the package comment). Enabled by
	// DefaultConfig; disable for the sequential-hop baseline. Results are
	// bit-identical either way. Overridable per query with WithPipeline.
	Pipeline bool
	// FlatExchange disables the two-level hierarchical exchange on clusters
	// with more than one GPU per rank: instead of the GPUs of a rank
	// combining their per-destination bins over NVLink into one merged
	// message per destination rank (the default, which cuts message count
	// by a factor of GPUsPerRank and prices the intra-rank staging as a
	// third pipeline resource), every GPU's fragment travels as its own
	// inter-rank message — the flat baseline the cmp7 ablation compares
	// against. Results are bit-identical either way; only message pattern
	// and simulated time change. No effect when GPUsPerRank is 1.
	// Overridable per query with WithFlatExchange.
	FlatExchange bool
	// SweepWidth caps how many queries one multi-source sweep carries
	// (RunSweep batches and CoalesceQueries admission both split wider
	// batches into successive sweeps). 0 selects DefaultSweepWidth; the hard
	// ceiling is core's MaxSweepWidth (1024).
	SweepWidth int
	// CoalesceQueries routes option-free Run calls through the sweep
	// admission queue, batching concurrent callers into shared sweeps (see
	// the package comment's multi-source section). Runs with per-query
	// options bypass coalescing — option sets cannot share a traversal.
	CoalesceQueries bool
	// WarmStart seeds each query's hybrid-policy feedback from the merged
	// snapshot of previously completed queries (deterministic source-order
	// merge). Results are unaffected; only policy convergence and therefore
	// simulated exchange timing change. Off by default.
	WarmStart bool
	// Inject arms deterministic fault injection for chaos testing (see the
	// package comment's fault-tolerance section): payload faults fire on the
	// simulated wire, boundary faults at BSP iteration boundaries, keyed by
	// (rank, iteration, site) so every failure replays exactly. nil — the
	// default — keeps every decision point on the fault-free fast path.
	Inject *faults.Injector
	// Retry re-executes queries that fail with a contained fault (a
	// wire.ErrCorrupt or faults.ErrInjected chain). The zero value disables
	// retries: one attempt per query, faults surface as typed errors.
	Retry RetryPolicy
	// QueryTimeout bounds every query's total execution (all retry attempts
	// included) with context.WithTimeout; expiry surfaces as
	// context.DeadlineExceeded and is never retried. 0 means no bound.
	// Overridable per query with WithDeadline.
	QueryTimeout time.Duration
}

// RetryPolicy bounds how the Service re-executes queries that fail with a
// contained fault. Only fault-typed errors are retried — context
// cancellation, configuration errors and genuine bugs are always final. The
// zero value disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total execution budget per query, first attempt
	// included; values ≤ 1 mean no retries.
	MaxAttempts int
	// Backoff is the wait before the first retry, doubling on each
	// subsequent one (0: retry immediately).
	Backoff time.Duration
	// AttemptTimeout bounds each individual attempt; an expired attempt is
	// retried like a contained fault as long as the query-level deadline
	// (Config.QueryTimeout / WithDeadline) has not passed. 0: no
	// per-attempt bound.
	AttemptTimeout time.Duration
	// DegradeAfter switches retries to the degraded execution profile —
	// flat all-pairs exchange, hop pipelining off — once this many attempts
	// have failed (0: never degrade). The degraded profile trades simulated
	// speed for the simplest communication pattern, maximizing the chance a
	// transient exchange fault does not recur; levels and parents stay
	// bit-identical to the fast path.
	DegradeAfter int
}

// attempts returns the normalized per-query attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// DefaultSweepWidth is the sweep width used when Config.SweepWidth is 0.
const DefaultSweepWidth = 64

// sweepWidth normalizes the configured sweep width.
func (cfg Config) sweepWidth() int {
	w := cfg.SweepWidth
	if w <= 0 {
		w = DefaultSweepWidth
	}
	if w > core.MaxSweepWidth {
		w = core.MaxSweepWidth
	}
	return w
}

// Compression selects how inter-rank frontier payloads are encoded.
type Compression int

const (
	// CompressionOff keeps the fixed-width packing (4 bytes per id plus
	// per-slot count headers) the paper assumes.
	CompressionOff Compression = iota
	// CompressionAdaptive picks the smallest of the raw, delta and bitmap
	// schemes per block (with a per-destination scheme memory that reuses
	// the previous iteration's winner while the block's size is stable, so
	// an occasional block may ride a slightly stale choice).
	CompressionAdaptive
	// CompressionRaw, CompressionDelta and CompressionBitmap force one
	// scheme for every message — ablation knobs.
	CompressionRaw
	CompressionDelta
	CompressionBitmap
)

// Exchange selects the inter-rank normal-vertex exchange topology.
type Exchange int

const (
	// ExchangeAllPairs sends one message per destination rank per
	// iteration — the paper's §V-B pattern.
	ExchangeAllPairs Exchange = iota
	// ExchangeButterfly runs hypercube hops that aggregate payloads into
	// fewer, larger messages (ButterFly BFS, Green 2021); non-power-of-two
	// rank counts fold their remainder into the nearest power-of-two
	// hypercube with a pre/post cleanup hop pair.
	ExchangeButterfly
	// ExchangeHybrid picks all-pairs or butterfly per BFS iteration from
	// the globally known frontier volume through a cost model over the
	// simulated link parameters.
	ExchangeHybrid
)

func (x Exchange) strategy() core.Exchange {
	switch x {
	case ExchangeButterfly:
		return core.ExchangeButterfly
	case ExchangeHybrid:
		return core.ExchangeHybrid
	}
	return core.ExchangeAllPairs
}

func (c Compression) mode() wire.Mode {
	switch c {
	case CompressionAdaptive:
		return wire.ModeAdaptive
	case CompressionRaw:
		return wire.ModeRaw
	case CompressionDelta:
		return wire.ModeDelta
	case CompressionBitmap:
		return wire.ModeBitmap
	}
	return wire.ModeOff
}

// DefaultConfig returns the paper's tuned DOBFS configuration for a cluster.
func DefaultConfig(c Cluster) Config {
	return Config{
		Cluster:            c,
		DirectionOptimized: true,
		BlockingReduce:     true,
		CollectLevels:      true,
		Pipeline:           true,
	}
}

func (cfg Config) engineOptions() core.Options {
	o := core.DefaultOptions()
	o.DirectionOptimized = cfg.DirectionOptimized
	o.LocalAll2All = cfg.LocalAll2All
	o.Uniquify = cfg.Uniquify
	o.BlockingReduce = cfg.BlockingReduce
	o.WorkAmplification = cfg.WorkAmplification
	o.CollectLevels = cfg.CollectLevels
	o.CollectParents = cfg.CollectParents
	o.Compression = cfg.Compression.mode()
	o.Exchange = cfg.Exchange.strategy()
	o.PipelineHops = cfg.Pipeline
	o.FlatExchange = cfg.FlatExchange
	o.Inject = cfg.Inject
	return o
}

// Result reports one BFS run.
type Result struct {
	Source     int64
	Iterations int
	// Epoch identifies the graph snapshot the query was admitted to: a
	// MutableService stamps every result with the epoch whose plan answered
	// it (queries in flight across an ApplyDelta finish on their admission
	// epoch). Fixed-graph Services report 0.
	Epoch uint64
	// SimSeconds is modeled cluster time; GTEPS uses the Graph500 m/2
	// convention (§VI-A3).
	SimSeconds float64
	GTEPS      float64
	// Levels holds hop distances per vertex (-1 unreachable); nil when
	// levels were not collected.
	Levels []int32
	// Parents holds the Graph500 BFS-tree parent per vertex (-1
	// unreachable); nil unless the query collected parents (Config or
	// WithParents).
	Parents []int64
	// EdgesScanned counts actual traversal work (forward scans plus
	// backward parent checks).
	EdgesScanned int64
	// Breakdown components in seconds (Fig. 8/10's four parts).
	Computation, LocalComm, RemoteNormal, RemoteDelegate float64
	// WireBytes is the inter-rank normal-exchange volume actually sent;
	// WireRawBytes is its fixed-width (4 bytes/id) equivalent. The two are
	// equal when Compression is off.
	WireBytes, WireRawBytes int64
	// CodecSeconds is the simulated compute time the codec's pack/unpack
	// kernels cost this query (included in RemoteNormal); zero with
	// compression off.
	CodecSeconds float64
	// Messages counts inter-rank point-to-point messages across all ranks
	// and iterations; ForwardedBytes is the fixed-width equivalent of ids
	// the butterfly relayed through intermediate ranks (zero for
	// all-pairs); MaxMessageBytes is the largest message the timing model
	// saw.
	Messages, ForwardedBytes, MaxMessageBytes int64
	// MaskRawBytes/MaskWireBytes account the delegate-mask reductions when
	// compression is on: the native bitmap size vs what the allreduce
	// shipped after the adaptive encoding (sparse late-iteration masks
	// shrink). Zero with compression off.
	MaskRawBytes, MaskWireBytes int64
	// Exchange is the configured exchange policy ("allpairs", "butterfly"
	// or "hybrid"); AllPairsIterations and ButterflyIterations report how
	// many BFS iterations ran under each strategy (the hybrid policy may
	// split them, fixed policies put every iteration on one side).
	Exchange                                string
	AllPairsIterations, ButterflyIterations int64
	// PredictedRemoteSeconds is the exchange policy cost model's summed
	// per-iteration prediction of remote-normal time — comparable against
	// RemoteNormal to judge the model.
	PredictedRemoteSeconds float64
	// HiddenCodecSeconds is the codec compute the pipelined butterfly hid
	// under concurrent hop transfers (never more than CodecSeconds — the
	// pipeline hides time, it cannot create it); PipelineStalls counts
	// pipeline steps where the codec stage outlasted the transfer it
	// overlapped. Both zero with pipelining off and for all-pairs
	// iterations.
	HiddenCodecSeconds float64
	PipelineStalls     int64
	// NVLinkSeconds is the simulated intra-rank NVLink time the hierarchical
	// exchange spent combining per-GPU bins and staging merged payloads;
	// HiddenNVLinkSeconds is the share of it the pipelined butterfly hid
	// under concurrent hop transfers and codec stages (never more than
	// NVLinkSeconds). The exposed remainder lands in the LocalComm
	// breakdown component, never RemoteNormal. Both zero on flat exchanges
	// and single-GPU ranks.
	NVLinkSeconds, HiddenNVLinkSeconds float64
	// CalibrationAllPairs/CalibrationButterfly are the query's final
	// predicted-vs-actual calibration factors per strategy (1 ≈ the cost
	// model tracked the simulated network exactly; 0 = the strategy never
	// ran this query).
	CalibrationAllPairs, CalibrationButterfly float64
	// Attempts is how many executions the retry policy spent on this query
	// (1 on the fault-free fast path); Degraded reports whether the
	// successful attempt ran the degraded profile (flat all-pairs exchange,
	// pipelining off). Batch-level calls retry the batch as a unit, so every
	// result of one call reports the same pair.
	Attempts int
	Degraded bool
}

// Service is a persistent, concurrency-safe BFS query service: the graph is
// partitioned once at construction, and any number of queries — sequential
// or concurrent — then run against the shared immutable plan, each on its
// own pooled session. A Service is safe for use from multiple goroutines.
type Service struct {
	g    *Graph
	cfg  Config
	plan *core.Plan
	sub  *partition.Subgraphs

	// deltaFP fingerprints the Delta whose ApplyDelta produced this epoch
	// (0 for epochs built from scratch). Repair checks it so a mismatched
	// delta is rejected instead of silently seeding the corrective
	// traversal from the wrong affected set.
	deltaFP uint64

	// Sweep admission queue (CoalesceQueries): pending requests plus the
	// flag marking a drain loop in flight. Requests that arrive while a
	// sweep runs coalesce into the next one.
	admitMu  sync.Mutex
	pendingQ []*sweepReq
	draining bool

	// Merged warm-start snapshot (WarmStart) of completed queries' policy
	// feedback.
	warmMu sync.Mutex
	warm   *core.PolicySnapshot

	// Fault-tolerance counters (FaultStats accessor).
	faultMu    sync.Mutex
	faultStats metrics.FaultStats
}

// validate checks the construction-time knobs shared by NewService and
// NewMutableService.
func (cfg Config) validate() error {
	if err := cfg.Cluster.shape().Validate(); err != nil {
		return err
	}
	if cfg.Compression < CompressionOff || cfg.Compression > CompressionBitmap {
		return fmt.Errorf("gcbfs: invalid compression mode %d", cfg.Compression)
	}
	if cfg.Exchange < ExchangeAllPairs || cfg.Exchange > ExchangeHybrid {
		return fmt.Errorf("gcbfs: invalid exchange strategy %d", cfg.Exchange)
	}
	if cfg.SweepWidth < 0 || cfg.SweepWidth > core.MaxSweepWidth {
		return fmt.Errorf("gcbfs: sweep width %d out of range [0,%d]", cfg.SweepWidth, core.MaxSweepWidth)
	}
	return nil
}

// threshold resolves the degree-separation threshold for a graph: the
// configured value, or the paper's d ≤ 4n/p rule when unset.
func (cfg Config) threshold(g *Graph) int64 {
	if cfg.Threshold > 0 {
		return cfg.Threshold
	}
	return partition.SuggestThreshold(g.el.OutDegrees(), 4*g.el.N/int64(cfg.Cluster.shape().P()))
}

// NewService partitions the graph (degree separation + Algorithm 1) for the
// configured cluster and prepares the query plan.
func NewService(g *Graph, cfg Config) (*Service, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	svc, _, err := newEpochService(g, cfg, cfg.threshold(g), 0, nil)
	return svc, err
}

// newEpochService builds one epoch's immutable Service: separation at the
// fixed threshold, distribution (incrementally against prev when given, so
// untouched per-GPU subgraphs are shared byte-identically), and a plan
// stamped with the epoch. shared reports how many GPU subgraphs were reused.
func newEpochService(g *Graph, cfg Config, th int64, epoch uint64, prev *partition.Subgraphs) (svc *Service, shared int, err error) {
	shape := cfg.Cluster.shape()
	sep := partition.Separate(g.el, th)
	var sub *partition.Subgraphs
	if prev == nil {
		sub, err = partition.Distribute(g.el, sep, shape.PartitionConfig())
	} else {
		sub, shared, err = partition.DistributeIncremental(g.el, sep, shape.PartitionConfig(), prev)
	}
	if err != nil {
		return nil, 0, err
	}
	plan, err := core.NewPlanEpoch(sub, shape, cfg.engineOptions(), epoch)
	if err != nil {
		return nil, 0, err
	}
	return &Service{g: g, cfg: cfg, plan: plan, sub: sub}, shared, nil
}

// QueryOption overrides one knob of the service's Config for a single query,
// without re-partitioning the graph.
type QueryOption func(*queryConfig)

type queryConfig struct {
	ov      core.Overrides
	timeout *time.Duration
	err     error
}

// deadline resolves the query-level time bound: the per-query override when
// set, the service default otherwise (0: unbounded).
func (q *queryConfig) deadline(def time.Duration) time.Duration {
	if q.timeout != nil {
		return *q.timeout
	}
	return def
}

// WithCompression selects the frontier-exchange codec for this query.
func WithCompression(c Compression) QueryOption {
	return func(q *queryConfig) {
		if c < CompressionOff || c > CompressionBitmap {
			q.err = fmt.Errorf("gcbfs: invalid compression mode %d", c)
			return
		}
		m := c.mode()
		q.ov.Compression = &m
	}
}

// WithExchange selects the exchange policy for this query: fixed all-pairs,
// fixed butterfly (any rank count), or the per-iteration hybrid.
func WithExchange(x Exchange) QueryOption {
	return func(q *queryConfig) {
		if x < ExchangeAllPairs || x > ExchangeHybrid {
			q.err = fmt.Errorf("gcbfs: invalid exchange strategy %d", x)
			return
		}
		s := x.strategy()
		q.ov.Exchange = &s
	}
}

// WithPipeline toggles butterfly hop pipelining for this query: on, hop
// transfers overlap the previous hop's codec compute; off, every hop and
// codec stage is charged end-to-end (the sequential baseline).
func WithPipeline(on bool) QueryOption {
	return func(q *queryConfig) { q.ov.PipelineHops = &on }
}

// WithFlatExchange toggles the flat (per-GPU fragment) inter-rank exchange
// for this query: on, each GPU's per-destination bins travel as separate
// messages; off (the default), GPUs of a rank merge their bins over NVLink
// into one message per destination rank. Results are bit-identical either
// way; no effect when GPUsPerRank is 1.
func WithFlatExchange(on bool) QueryOption {
	return func(q *queryConfig) { q.ov.FlatExchange = &on }
}

// WithLevels toggles hop-distance collection for this query.
func WithLevels(on bool) QueryOption {
	return func(q *queryConfig) { q.ov.CollectLevels = &on }
}

// WithParents toggles Graph500 BFS-tree collection for this query.
func WithParents(on bool) QueryOption {
	return func(q *queryConfig) { q.ov.CollectParents = &on }
}

// WithWorkAmplification overrides the timing-model amplification for this
// query; values ≤ 0 disable amplification.
func WithWorkAmplification(f float64) QueryOption {
	return func(q *queryConfig) { q.ov.WorkAmplification = &f }
}

// WithDeadline bounds this query's total execution — every retry attempt
// included — overriding Config.QueryTimeout. Expiry aborts the query within
// one BFS iteration and surfaces as context.DeadlineExceeded, which the
// retry policy never retries. d ≤ 0 removes the service default for this
// query.
func WithDeadline(d time.Duration) QueryOption {
	return func(q *queryConfig) { q.timeout = &d }
}

func buildQuery(opts []QueryOption) (queryConfig, error) {
	var q queryConfig
	for _, o := range opts {
		o(&q)
		if q.err != nil {
			return q, q.err
		}
	}
	return q, nil
}

// retryable reports whether err is a contained fault the retry policy may
// re-execute: a corrupt-payload or injected-fault chain. Context errors,
// configuration errors and genuine bugs are final.
func retryable(err error) bool {
	return errors.Is(err, wire.ErrCorrupt) || errors.Is(err, faults.ErrInjected)
}

// degradedOverrides applies the degraded execution profile on top of the
// query's overrides: flat all-pairs exchange, hop pipelining off — the
// simplest communication pattern the engine has. Levels and parents are
// bit-identical to the fast path; only message pattern and simulated time
// change.
func degradedOverrides(ov core.Overrides) core.Overrides {
	flat, pipeline := true, false
	allPairs := core.ExchangeAllPairs
	ov.FlatExchange = &flat
	ov.PipelineHops = &pipeline
	ov.Exchange = &allPairs
	return ov
}

// countFault updates the service's fault-tolerance counters under the lock.
func (s *Service) countFault(f func(*metrics.FaultStats)) {
	s.faultMu.Lock()
	f(&s.faultStats)
	s.faultMu.Unlock()
}

// FaultStats returns the service's fault-tolerance counters: faults the
// armed injector fired, retries spent, degraded re-runs, queries that
// exhausted their attempt budget, and per-query deadline expiries. All zero
// on an unarmed service with the zero RetryPolicy.
func (s *Service) FaultStats() metrics.FaultStats {
	s.faultMu.Lock()
	st := s.faultStats
	s.faultMu.Unlock()
	if in := s.cfg.Inject; in != nil {
		st.Injected = in.Injected()
	}
	return st
}

// withRetry executes run under the service's retry policy and the query's
// deadline. Each attempt gets the policy's per-attempt timeout; contained
// faults (and expired attempts) are retried with exponential backoff until
// the attempt budget or the query deadline runs out, degrading the execution
// profile after RetryPolicy.DegradeAfter failures. Returns the attempts
// spent, whether the last attempt ran degraded, and the final error.
func (s *Service) withRetry(ctx context.Context, q *queryConfig, run func(ctx context.Context, ov core.Overrides) error) (attempts int, degraded bool, err error) {
	if d := q.deadline(s.cfg.QueryTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	pol := s.cfg.Retry
	backoff := pol.Backoff
	for attempts = 1; ; attempts++ {
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if pol.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, pol.AttemptTimeout)
		}
		ov := q.ov
		if degraded {
			ov = degradedOverrides(ov)
			s.countFault(func(f *metrics.FaultStats) { f.Degraded++ })
		}
		err = run(attemptCtx, ov)
		cancel()
		if err == nil {
			return attempts, degraded, nil
		}
		// The query-level deadline (or the caller's cancellation) is final.
		if ctx.Err() != nil {
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				s.countFault(func(f *metrics.FaultStats) { f.Timeouts++ })
			}
			return attempts, degraded, ctx.Err()
		}
		// An expired attempt counts as a transient fault; anything else
		// non-fault-typed is final.
		expired := pol.AttemptTimeout > 0 && errors.Is(err, context.DeadlineExceeded)
		if !retryable(err) && !expired {
			return attempts, degraded, err
		}
		if attempts >= pol.attempts() {
			s.countFault(func(f *metrics.FaultStats) { f.Exhausted++ })
			return attempts, degraded, err
		}
		s.countFault(func(f *metrics.FaultStats) { f.Retries++ })
		// Re-key the injector so the retry rolls fresh fault decisions —
		// a deterministic fault would otherwise recur forever.
		if in := s.cfg.Inject; in != nil {
			in.NextAttempt()
		}
		if pol.DegradeAfter > 0 && attempts >= pol.DegradeAfter {
			degraded = true
		}
		if backoff > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return attempts, degraded, ctx.Err()
			case <-t.C:
			}
			backoff *= 2
		}
	}
}

// Run executes one BFS from source. The context is honored at iteration
// boundaries: cancellation or deadline expiry aborts the query within one
// BFS iteration and returns ctx.Err(). With Config.CoalesceQueries set,
// option-free calls are admitted to the sweep queue instead: concurrent
// callers batch into shared multi-source sweeps (bit-identical levels and
// parents; the per-query counters report the sweep's amortized shares), and
// cancellation then abandons the caller's wait without aborting the shared
// traversal.
func (s *Service) Run(ctx context.Context, source int64, opts ...QueryOption) (*Result, error) {
	if s.cfg.CoalesceQueries && len(opts) == 0 {
		return s.runCoalesced(ctx, source)
	}
	q, err := buildQuery(opts)
	if err != nil {
		return nil, err
	}
	s.warmOverride(&q)
	var r *metrics.RunResult
	attempts, degraded, err := s.withRetry(ctx, &q, func(ctx context.Context, ov core.Overrides) error {
		var err error
		r, err = s.plan.Run(ctx, source, ov)
		return err
	})
	if err != nil {
		return nil, err
	}
	s.recordWarm([]*metrics.RunResult{r})
	res := convert(r)
	res.Attempts, res.Degraded = attempts, degraded
	return res, nil
}

// sweepReq is one coalesced Run call waiting for its sweep.
type sweepReq struct {
	source int64
	done   chan struct{}
	res    *Result
	err    error
}

// runCoalesced enqueues the request and, if no drain loop is running,
// becomes the leader that serves sweeps until the queue is empty.
func (s *Service) runCoalesced(ctx context.Context, source int64) (*Result, error) {
	req := &sweepReq{source: source, done: make(chan struct{})}
	s.admitMu.Lock()
	s.pendingQ = append(s.pendingQ, req)
	lead := !s.draining
	if lead {
		s.draining = true
	}
	s.admitMu.Unlock()
	if lead {
		s.drainSweeps()
	}
	select {
	case <-req.done:
		return req.res, req.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// drainSweeps serves admission batches until the queue empties: up to
// SweepWidth requests per sweep, requests arriving mid-sweep coalescing into
// the next round.
func (s *Service) drainSweeps() {
	for {
		s.admitMu.Lock()
		if len(s.pendingQ) == 0 {
			s.draining = false
			s.admitMu.Unlock()
			return
		}
		n := min(s.cfg.sweepWidth(), len(s.pendingQ))
		batch := make([]*sweepReq, n)
		copy(batch, s.pendingQ)
		s.pendingQ = append(s.pendingQ[:0], s.pendingQ[n:]...)
		s.admitMu.Unlock()
		s.serveSweep(batch)
	}
}

// serveSweep runs one admission batch as a single sweep (sources
// deduplicated; duplicates receive their own result copies) and completes
// every request.
func (s *Service) serveSweep(batch []*sweepReq) {
	uniq := make([]int64, 0, len(batch))
	lane := make(map[int64]int, len(batch))
	for _, req := range batch {
		if _, ok := lane[req.source]; !ok {
			lane[req.source] = len(uniq)
			uniq = append(uniq, req.source)
		}
	}
	var q queryConfig
	s.warmOverride(&q)
	var rs []*metrics.RunResult
	attempts, degraded, err := s.withRetry(context.Background(), &q, func(ctx context.Context, ov core.Overrides) error {
		var err error
		rs, err = s.plan.RunSweep(ctx, uniq, ov)
		return err
	})
	if err != nil {
		for _, req := range batch {
			req.err = err
			close(req.done)
		}
		return
	}
	s.recordWarm(rs)
	used := make([]bool, len(uniq))
	for _, req := range batch {
		l := lane[req.source]
		if used[l] {
			req.res = cloneResult(convert(rs[l]))
		} else {
			req.res = convert(rs[l])
			used[l] = true
		}
		req.res.Attempts, req.res.Degraded = attempts, degraded
		close(req.done)
	}
}

// warmOverride seeds an option-free query from the service's merged warm
// snapshot when WarmStart is on (an explicit per-query snapshot wins).
func (s *Service) warmOverride(q *queryConfig) {
	if !s.cfg.WarmStart || q.ov.Warm != nil {
		return
	}
	s.warmMu.Lock()
	if s.warm != nil {
		snap := *s.warm
		q.ov.Warm = &snap
	}
	s.warmMu.Unlock()
}

// recordWarm folds completed queries' policy feedback into the service's
// warm snapshot, in the given (source) order.
func (s *Service) recordWarm(rs []*metrics.RunResult) {
	if !s.cfg.WarmStart {
		return
	}
	snaps := make([]core.PolicySnapshot, 0, len(rs)+1)
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	if s.warm != nil {
		snaps = append(snaps, *s.warm)
	}
	for _, r := range rs {
		sn := core.PolicySnapshot{
			Skew:           r.Exchange.SkewEWMA,
			WireRatio:      r.Exchange.WireRatioEWMA,
			CalibAllPairs:  r.Exchange.CalibrationAllPairs,
			CalibButterfly: r.Exchange.CalibrationButterfly,
		}
		if sn != (core.PolicySnapshot{}) {
			snaps = append(snaps, sn)
		}
	}
	if len(snaps) > 0 {
		merged := core.MergeSnapshots(snaps)
		s.warm = &merged
	}
}

// cloneResult deep-copies the per-vertex slices so duplicate-source callers
// never share mutable state.
func cloneResult(r *Result) *Result {
	c := *r
	c.Levels = slices.Clone(r.Levels)
	c.Parents = slices.Clone(r.Parents)
	return &c
}

// BatchOptions tunes a RunBatch call.
type BatchOptions struct {
	// Parallelism is the number of queries in flight at once; 0 or 1 runs
	// the batch serially. Results are deterministic and source-ordered
	// regardless of the value — parallelism changes wall-clock time only.
	Parallelism int
}

// BatchStats aggregates a batch the way the paper reports data points
// (§VI-A: geometric mean over runs with more than one iteration), plus the
// service-level throughput view.
type BatchStats struct {
	// Runs is the number of queries executed; Filtered counts those
	// dropped from GeoMeanGTEPS by the Graph500 >1-iteration rule.
	Runs, Filtered int
	// GeoMeanGTEPS is the paper's reporting convention; TotalGTEPS is the
	// aggregate service throughput — total TEPS edges over total simulated
	// seconds, i.e. the rate of the whole batch run back to back.
	GeoMeanGTEPS, TotalGTEPS float64
	// TotalSimSeconds sums every query's simulated time; MeanIterations
	// averages iteration counts over all runs.
	TotalSimSeconds float64
	MeanIterations  float64
	// Wire totals across the batch: bytes actually sent vs the fixed-width
	// equivalent, and the codec compute charged.
	WireBytes, WireRawBytes int64
	CodecSeconds            float64
	// Exchange totals across the batch, including the per-iteration
	// strategy split under the hybrid policy and the pipelining win
	// (codec compute hidden under butterfly hop transfers, and steps
	// where compute outlasted the wire).
	Messages, ForwardedBytes, MaxMessageBytes int64
	AllPairsIterations, ButterflyIterations   int64
	HiddenCodecSeconds                        float64
	PipelineStalls                            int64
	// NVLink totals across the batch: intra-rank time the hierarchical
	// exchange spent, and the share the pipelined butterfly hid under hop
	// transfers. Zero on flat exchanges and single-GPU ranks.
	NVLinkSeconds, HiddenNVLinkSeconds float64
	// Session-pool observability: PoolHits counts this batch's queries that
	// reused a recycled session, PoolMisses those that allocated a fresh
	// one (hits + misses = Runs when the service is otherwise idle).
	// PeakInFlight is the service's lifetime high-water mark of
	// simultaneous queries as of batch end — across every batch and Run so
	// far, not this batch alone — the observed concurrency to size
	// Parallelism against.
	PoolHits, PoolMisses, PeakInFlight int64
}

// BatchResult is the outcome of RunBatch: per-query results in source order
// plus aggregated stats.
type BatchResult struct {
	Results []*Result
	Stats   BatchStats
}

// dedupSources returns the distinct sources in first-occurrence order plus
// each original position's index into that list.
func dedupSources(sources []int64) (uniq []int64, lane []int) {
	uniq = make([]int64, 0, len(sources))
	lane = make([]int, len(sources))
	idx := make(map[int64]int, len(sources))
	for i, src := range sources {
		l, ok := idx[src]
		if !ok {
			l = len(uniq)
			idx[src] = l
			uniq = append(uniq, src)
		}
		lane[i] = l
	}
	return uniq, lane
}

// expandResults maps per-unique-source results back onto the original source
// list: the first request for a source takes the converted result, duplicate
// requests get deep copies (per-request results without re-traversal), and
// every position — duplicates included — is folded into the stats.
func expandResults(br *BatchResult, rs []*metrics.RunResult, lane []int) {
	var rates []float64
	var tepsEdges int64
	used := make([]bool, len(rs))
	for i, l := range lane {
		r := rs[l]
		if used[l] {
			br.Results[i] = cloneResult(convert(r))
		} else {
			br.Results[i] = convert(r)
			used[l] = true
		}
		foldBatchStats(&br.Stats, &rates, &tepsEdges, r)
	}
	finishBatchStats(&br.Stats, rates, tepsEdges)
}

// foldBatchStats accumulates one query's counters into the batch stats.
func foldBatchStats(st *BatchStats, rates *[]float64, tepsEdges *int64, r *metrics.RunResult) {
	st.Runs++
	if r.MultipleIterations() {
		*rates = append(*rates, r.GTEPS())
	} else {
		st.Filtered++
	}
	*tepsEdges += r.TEPSEdges
	st.TotalSimSeconds += r.SimSeconds
	st.MeanIterations += float64(r.Iterations)
	st.WireBytes += r.Wire.CompressedBytes
	st.WireRawBytes += r.Wire.RawBytes
	st.CodecSeconds += r.Wire.CodecSeconds
	st.Messages += r.Exchange.Messages
	st.ForwardedBytes += r.Exchange.ForwardedBytes
	st.AllPairsIterations += r.Exchange.AllPairsIterations
	st.ButterflyIterations += r.Exchange.ButterflyIterations
	st.HiddenCodecSeconds += r.Exchange.HiddenCodecSeconds
	st.PipelineStalls += r.Exchange.PipelineStalls
	st.NVLinkSeconds += r.Exchange.NVLinkSeconds
	st.HiddenNVLinkSeconds += r.Exchange.HiddenNVLinkSeconds
	if r.Exchange.MaxMessageBytes > st.MaxMessageBytes {
		st.MaxMessageBytes = r.Exchange.MaxMessageBytes
	}
}

// finishBatchStats derives the batch aggregates from the folded counters.
func finishBatchStats(st *BatchStats, rates []float64, tepsEdges int64) {
	st.GeoMeanGTEPS = metrics.GeoMean(rates)
	if st.TotalSimSeconds > 0 {
		st.TotalGTEPS = float64(tepsEdges) / st.TotalSimSeconds / 1e9
	}
	if st.Runs > 0 {
		st.MeanIterations /= float64(st.Runs)
	}
}

// RunBatch executes one BFS per source with BatchOptions.Parallelism queries
// in flight at a time, all sharing the service's partitioned graph through
// pooled sessions. Results are source-ordered and bit-identical to a serial
// loop of Run calls with the same options; duplicate sources are traversed
// once and answered with per-request result copies. The first query error
// (including context cancellation) cancels the rest and is returned.
func (s *Service) RunBatch(ctx context.Context, sources []int64, bo BatchOptions, opts ...QueryOption) (*BatchResult, error) {
	q, err := buildQuery(opts)
	if err != nil {
		return nil, err
	}
	s.warmOverride(&q)
	uniq, lane := dedupSources(sources)
	poolBefore := s.plan.PoolStats()
	var rs []*metrics.RunResult
	attempts, degraded, err := s.withRetry(ctx, &q, func(ctx context.Context, ov core.Overrides) error {
		var err error
		rs, err = s.plan.RunBatch(ctx, uniq, bo.Parallelism, ov)
		return err
	})
	if err != nil {
		return nil, err
	}
	poolAfter := s.plan.PoolStats()
	s.recordWarm(rs)
	br := &BatchResult{Results: make([]*Result, len(sources))}
	br.Stats.PoolHits = poolAfter.Hits - poolBefore.Hits
	br.Stats.PoolMisses = poolAfter.Misses - poolBefore.Misses
	br.Stats.PeakInFlight = poolAfter.PeakInFlight
	expandResults(br, rs, lane)
	stampRetry(br.Results, attempts, degraded)
	return br, nil
}

// stampRetry records the call's retry outcome on every result (batch-level
// calls retry as a unit).
func stampRetry(results []*Result, attempts int, degraded bool) {
	for _, r := range results {
		r.Attempts, r.Degraded = attempts, degraded
	}
}

// RunSweep answers one BFS per source through shared multi-source sweeps
// (MS-BFS): sources are deduplicated, split into sweeps of at most
// Config.SweepWidth, and each sweep's single BSP traversal produces levels
// and parents bit-identical to independent Run calls while its counters and
// simulated time are divided evenly across the sweep's queries. Results are
// source-ordered; duplicate sources share one traversal lane and receive
// per-request result copies.
func (s *Service) RunSweep(ctx context.Context, sources []int64, opts ...QueryOption) (*BatchResult, error) {
	q, err := buildQuery(opts)
	if err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return &BatchResult{}, ctx.Err()
	}
	s.warmOverride(&q)
	uniq, lane := dedupSources(sources)
	width := s.cfg.sweepWidth()
	rs := make([]*metrics.RunResult, 0, len(uniq))
	maxAttempts, anyDegraded := 0, false
	for start := 0; start < len(uniq); start += width {
		chunk := uniq[start:min(start+width, len(uniq))]
		var part []*metrics.RunResult
		attempts, degraded, err := s.withRetry(ctx, &q, func(ctx context.Context, ov core.Overrides) error {
			var err error
			part, err = s.plan.RunSweep(ctx, chunk, ov)
			return err
		})
		if err != nil {
			return nil, err
		}
		maxAttempts = max(maxAttempts, attempts)
		anyDegraded = anyDegraded || degraded
		rs = append(rs, part...)
	}
	s.recordWarm(rs)
	br := &BatchResult{Results: make([]*Result, len(sources))}
	expandResults(br, rs, lane)
	stampRetry(br.Results, maxAttempts, anyDegraded)
	return br, nil
}

// Threshold returns the degree threshold in effect (useful when auto-tuned).
func (s *Service) Threshold() int64 { return s.sub.Sep.Threshold }

// Delegates returns the number of delegate vertices.
func (s *Service) Delegates() int64 { return s.sub.D() }

func convert(r *metrics.RunResult) *Result {
	return &Result{
		Source:                 r.Source,
		Iterations:             r.Iterations,
		Epoch:                  r.Epoch,
		SimSeconds:             r.SimSeconds,
		GTEPS:                  r.GTEPS(),
		Levels:                 r.Levels,
		Parents:                r.Parents,
		EdgesScanned:           r.EdgesScanned,
		Computation:            r.Parts.Computation,
		LocalComm:              r.Parts.LocalComm,
		RemoteNormal:           r.Parts.RemoteNormal,
		RemoteDelegate:         r.Parts.RemoteDelegate,
		WireBytes:              r.Wire.CompressedBytes,
		WireRawBytes:           r.Wire.RawBytes,
		CodecSeconds:           r.Wire.CodecSeconds,
		Messages:               r.Exchange.Messages,
		ForwardedBytes:         r.Exchange.ForwardedBytes,
		MaxMessageBytes:        r.Exchange.MaxMessageBytes,
		MaskRawBytes:           r.Wire.MaskRawBytes,
		MaskWireBytes:          r.Wire.MaskWireBytes,
		Exchange:               r.Exchange.Strategy,
		AllPairsIterations:     r.Exchange.AllPairsIterations,
		ButterflyIterations:    r.Exchange.ButterflyIterations,
		PredictedRemoteSeconds: r.Exchange.PredictedSeconds,
		HiddenCodecSeconds:     r.Exchange.HiddenCodecSeconds,
		PipelineStalls:         r.Exchange.PipelineStalls,
		NVLinkSeconds:          r.Exchange.NVLinkSeconds,
		HiddenNVLinkSeconds:    r.Exchange.HiddenNVLinkSeconds,
		CalibrationAllPairs:    r.Exchange.CalibrationAllPairs,
		CalibrationButterfly:   r.Exchange.CalibrationButterfly,
	}
}

// Validate checks a result's hop distances against the Graph500-style rules
// and against a serial reference BFS. The result must carry levels.
func (s *Service) Validate(r *Result) error {
	if r.Levels == nil {
		return fmt.Errorf("gcbfs: result has no levels (levels not collected)")
	}
	if err := g500.Validate(s.g.el, r.Source, r.Levels); err != nil {
		return err
	}
	want := baseline.SerialBFS(graph.BuildCSR(s.g.el), r.Source)
	return g500.CompareLevels(r.Levels, want)
}

// MemoryReport summarizes the Table-I storage accounting of the partitioned
// graph.
type MemoryReport struct {
	TotalBytes     int64 // measured across all GPUs
	PredictedBytes int64 // 8n + 8d·p + 4m + 4|Enn|
	MaxGPUBytes    int64 // largest single-GPU footprint
	EdgeListBytes  int64 // conventional 16m representation
	PlainCSRBytes  int64 // 8n + 8m without degree separation
	Delegates      int64
	NNEdges        int64
}

// Memory returns the service's storage accounting.
func (s *Service) Memory() MemoryReport {
	return MemoryReport{
		TotalBytes:     s.sub.Memory().Total(),
		PredictedBytes: s.sub.PredictedTotal(),
		MaxGPUBytes:    s.sub.MaxGPUBytes(),
		EdgeListBytes:  s.sub.EdgeListBytes(),
		PlainCSRBytes:  s.sub.PlainCSRBytes(),
		Delegates:      s.sub.D(),
		NNEdges:        s.sub.CountNN,
	}
}

// Solver is the original one-shot facade, kept as a thin compatibility shim
// over Service: every call delegates with a background context and no
// per-query options.
//
// Deprecated: new code should use NewService, whose Run takes a context and
// QueryOptions and whose RunBatch executes sources concurrently.
type Solver struct {
	svc *Service
}

// NewSolver partitions the graph for the configured cluster and prepares the
// underlying query service. See the Solver deprecation note.
func NewSolver(g *Graph, cfg Config) (*Solver, error) {
	svc, err := NewService(g, cfg)
	if err != nil {
		return nil, err
	}
	return &Solver{svc: svc}, nil
}

// Service returns the underlying query service (the migration path off
// Solver).
func (s *Solver) Service() *Service { return s.svc }

// Threshold returns the degree threshold in effect (useful when auto-tuned).
func (s *Solver) Threshold() int64 { return s.svc.Threshold() }

// Delegates returns the number of delegate vertices.
func (s *Solver) Delegates() int64 { return s.svc.Delegates() }

// Run executes one BFS from source.
func (s *Solver) Run(source int64) (*Result, error) {
	return s.svc.Run(context.Background(), source)
}

// RunMany executes one BFS per source, serially and in order.
func (s *Solver) RunMany(sources []int64) ([]*Result, error) {
	br, err := s.svc.RunBatch(context.Background(), sources, BatchOptions{})
	if err != nil {
		return nil, err
	}
	return br.Results, nil
}

// Validate checks a result's hop distances against the Graph500-style rules
// and against a serial reference BFS. The result must carry levels.
func (s *Solver) Validate(r *Result) error { return s.svc.Validate(r) }

// Memory returns the solver's storage accounting.
func (s *Solver) Memory() MemoryReport { return s.svc.Memory() }

// Sources picks up to count distinct vertices with at least one edge,
// deterministically from seed — the paper's random-source methodology with
// reproducibility. When the graph has no more than count positive-degree
// vertices, all of them are returned (in ascending order) instead of
// looping forever.
func Sources(g *Graph, count int, seed int64) []int64 {
	return graph.PickSources(g.el.OutDegrees(), count, uint64(seed))
}

// GeoMeanGTEPS aggregates run rates the way the paper reports data points:
// geometric mean over runs with more than one iteration.
func GeoMeanGTEPS(results []*Result) float64 {
	var rates []float64
	for _, r := range results {
		if r.Iterations > 1 {
			rates = append(rates, r.GTEPS)
		}
	}
	return metrics.GeoMean(rates)
}
