// Package gcbfs is a Go reproduction of "Scalable Breadth-First Search on a
// GPU Cluster" (Pan, Pearce, Owens — IPDPS workshops 2018, arXiv:1803.03922).
//
// It implements the paper's full system on a simulated GPU cluster:
// degree-separated graph representation (delegates vs normal vertices, §III),
// the Algorithm-1 edge distributor with four per-GPU subgraphs, per-subgraph
// direction-optimized traversal kernels (§IV), and the two-tier
// communication model — global bitmask reduction for delegates plus
// point-to-point exchange for normal vertices (§V).
//
// Runs are functionally exact (hop distances match a serial BFS and pass
// Graph500-style validation) while time is simulated through calibrated
// device and interconnect models, so the paper's scaling behaviour is
// reproducible on any host. See DESIGN.md for the architecture and
// EXPERIMENTS.md for paper-vs-measured comparisons.
//
// # Frontier-exchange compression
//
// The Config.Compression knob routes the inter-rank normal-vertex payloads
// through the internal/wire codec. CompressionAdaptive encodes every
// message as the smallest of a raw uint32 list, a sorted varint delta
// stream, or a dense bitmap (checksummed, with a 1-byte scheme header);
// CompressionRaw/Delta/Bitmap force one scheme for ablations, and
// CompressionOff (the default) keeps the paper's fixed-width packing.
// Compression never changes levels or parents — only bytes on the wire and
// therefore the simulated remote-normal communication time. Result reports
// the achieved reduction in WireRawBytes vs WireBytes.
//
// # Butterfly exchange
//
// The Config.Exchange knob replaces the all-pairs normal-vertex exchange
// (p−1 messages per rank per iteration) with a log2(p) hypercube butterfly:
// each hop exchanges one aggregated message with partner rank XOR 2^k,
// forwarding everything destined for the partner's half. Message count drops
// from quadratic to p·log2(p) and per-message size grows into the network's
// high-efficiency regime, at the cost of relayed volume (ButterFly BFS,
// Green 2021). The codec re-encodes per hop, so adaptive compression sees
// the aggregated blocks. Results are bit-identical across strategies; only
// message pattern and simulated time change. Non-power-of-two rank counts
// fall back to all-pairs with the reason in Result.ExchangeFallback.
//
// Quickstart:
//
//	g := gcbfs.RMAT(16)
//	solver, err := gcbfs.NewSolver(g, gcbfs.DefaultConfig(gcbfs.Cluster{
//		Nodes: 4, RanksPerNode: 2, GPUsPerRank: 2,
//	}))
//	if err != nil { ... }
//	res, err := solver.Run(gcbfs.Sources(g, 1, 1)[0])
//	fmt.Printf("%.1f GTEPS in %d iterations\n", res.GTEPS, res.Iterations)
package gcbfs

import (
	"fmt"

	"gcbfs/internal/baseline"
	"gcbfs/internal/core"
	"gcbfs/internal/g500"
	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// Graph is a symmetric (edge-doubled) graph over vertices [0, NumVertices).
type Graph struct {
	el *graph.EdgeList
}

// NewGraph returns an empty graph over n vertices.
func NewGraph(n int64) *Graph {
	return &Graph{el: graph.NewEdgeList(n)}
}

// AddUndirectedEdge inserts both directions of the edge {u, v}, keeping the
// graph symmetric as the system requires (§II-A).
func (g *Graph) AddUndirectedEdge(u, v int64) {
	g.el.Add(u, v)
	g.el.Add(v, u)
}

// RMAT generates the Graph500 RMAT graph the paper evaluates on: edge
// factor 16, A,B,C,D = 0.57/0.19/0.19/0.05, vertex numbers randomized by a
// deterministic hash, symmetric by edge doubling.
func RMAT(scale int) *Graph {
	return &Graph{el: rmat.Generate(rmat.DefaultParams(scale))}
}

// RMATWithSeed is RMAT with a custom generator seed.
func RMATWithSeed(scale int, seed uint64) *Graph {
	p := rmat.DefaultParams(scale)
	p.Seed = seed
	return &Graph{el: rmat.Generate(p)}
}

// SocialNetwork generates the Friendster-like synthetic social graph used by
// the §VI-D experiments: a scale-free core with about half the vertices
// isolated.
func SocialNetwork(coreScale int) *Graph {
	return &Graph{el: gen.SocialNetwork(gen.DefaultSocialParams(coreScale))}
}

// WebGraph generates the WDC-like long-tail web graph of §VI-D: a scale-free
// core plus long chains that push BFS to hundreds of iterations.
func WebGraph(coreScale int) *Graph {
	return &Graph{el: gen.WebGraph(gen.DefaultWebParams(coreScale))}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int64 { return g.el.N }

// NumEdges returns the directed edge count (twice the undirected count).
func (g *Graph) NumEdges() int64 { return g.el.M() }

// OutDegrees returns the out-degree of every vertex.
func (g *Graph) OutDegrees() []int64 { return g.el.OutDegrees() }

// Validate checks edge endpoints are in range.
func (g *Graph) Validate() error { return g.el.Validate() }

// Cluster is the paper's hardware notation: nodes × MPI ranks per node ×
// GPUs per rank.
type Cluster struct {
	Nodes        int
	RanksPerNode int
	GPUsPerRank  int
}

// GPUs returns the total simulated GPU count.
func (c Cluster) GPUs() int { return c.Nodes * c.RanksPerNode * c.GPUsPerRank }

func (c Cluster) shape() core.ClusterShape {
	return core.ClusterShape{Nodes: c.Nodes, RanksPerNode: c.RanksPerNode, GPUsPerRank: c.GPUsPerRank}
}

// Config selects the cluster layout and the paper's tuning options (§VI-B).
type Config struct {
	Cluster Cluster
	// Threshold is the degree-separation threshold TH; 0 selects it
	// automatically with the paper's d ≤ 4n/p rule.
	Threshold int64
	// DirectionOptimized enables DOBFS (per-subgraph direction switching).
	DirectionOptimized bool
	// LocalAll2All enables the intra-rank staging optimization (L).
	LocalAll2All bool
	// Uniquify removes duplicate destinations from send bins (U).
	Uniquify bool
	// BlockingReduce selects MPI_Allreduce (BR) over MPI_Iallreduce (IR)
	// for delegate masks.
	BlockingReduce bool
	// WorkAmplification scales the timing model into a larger-graph
	// regime (see EXPERIMENTS.md); ≤1 disables.
	WorkAmplification float64
	// CollectLevels gathers hop distances into results.
	CollectLevels bool
	// Compression selects the frontier-exchange codec for inter-rank
	// normal-vertex payloads (see the package comment). The zero value is
	// CompressionOff.
	Compression Compression
	// Exchange selects the inter-rank exchange topology for normal
	// vertices: ExchangeAllPairs (the zero value) sends one message per
	// destination rank per iteration, ExchangeButterfly runs log2(ranks)
	// hypercube hops that aggregate payloads into fewer, larger messages.
	// The butterfly needs a power-of-two rank count and otherwise falls
	// back to all-pairs (Result.ExchangeFallback records why). Traversal
	// results are identical either way.
	Exchange Exchange
}

// Compression selects how inter-rank frontier payloads are encoded.
type Compression int

const (
	// CompressionOff keeps the fixed-width packing (4 bytes per id plus
	// per-slot count headers) the paper assumes.
	CompressionOff Compression = iota
	// CompressionAdaptive picks the smallest of the raw, delta and bitmap
	// schemes per block (with a per-destination scheme memory that reuses
	// the previous iteration's winner while the block's size is stable, so
	// an occasional block may ride a slightly stale choice).
	CompressionAdaptive
	// CompressionRaw, CompressionDelta and CompressionBitmap force one
	// scheme for every message — ablation knobs.
	CompressionRaw
	CompressionDelta
	CompressionBitmap
)

// Exchange selects the inter-rank normal-vertex exchange topology.
type Exchange int

const (
	// ExchangeAllPairs sends one message per destination rank per
	// iteration — the paper's §V-B pattern.
	ExchangeAllPairs Exchange = iota
	// ExchangeButterfly runs log2(ranks) hypercube hops, aggregating
	// payloads into fewer, larger messages (ButterFly BFS, Green 2021).
	ExchangeButterfly
)

func (x Exchange) strategy() core.Exchange {
	if x == ExchangeButterfly {
		return core.ExchangeButterfly
	}
	return core.ExchangeAllPairs
}

func (c Compression) mode() wire.Mode {
	switch c {
	case CompressionAdaptive:
		return wire.ModeAdaptive
	case CompressionRaw:
		return wire.ModeRaw
	case CompressionDelta:
		return wire.ModeDelta
	case CompressionBitmap:
		return wire.ModeBitmap
	}
	return wire.ModeOff
}

// DefaultConfig returns the paper's tuned DOBFS configuration for a cluster.
func DefaultConfig(c Cluster) Config {
	return Config{
		Cluster:            c,
		DirectionOptimized: true,
		BlockingReduce:     true,
		CollectLevels:      true,
	}
}

func (cfg Config) engineOptions() core.Options {
	o := core.DefaultOptions()
	o.DirectionOptimized = cfg.DirectionOptimized
	o.LocalAll2All = cfg.LocalAll2All
	o.Uniquify = cfg.Uniquify
	o.BlockingReduce = cfg.BlockingReduce
	o.WorkAmplification = cfg.WorkAmplification
	o.CollectLevels = cfg.CollectLevels
	o.Compression = cfg.Compression.mode()
	o.Exchange = cfg.Exchange.strategy()
	return o
}

// Result reports one BFS run.
type Result struct {
	Source     int64
	Iterations int
	// SimSeconds is modeled cluster time; GTEPS uses the Graph500 m/2
	// convention (§VI-A3).
	SimSeconds float64
	GTEPS      float64
	// Levels holds hop distances per vertex (-1 unreachable); nil when
	// CollectLevels is off.
	Levels []int32
	// EdgesScanned counts actual traversal work (forward scans plus
	// backward parent checks).
	EdgesScanned int64
	// Breakdown components in seconds (Fig. 8/10's four parts).
	Computation, LocalComm, RemoteNormal, RemoteDelegate float64
	// WireBytes is the inter-rank normal-exchange volume actually sent;
	// WireRawBytes is its fixed-width (4 bytes/id) equivalent. The two are
	// equal when Compression is off.
	WireBytes, WireRawBytes int64
	// Exchange is the exchange topology actually used ("allpairs" or
	// "butterfly"); ExchangeFallback records why a requested butterfly was
	// replaced (empty otherwise).
	Exchange, ExchangeFallback string
}

// Solver runs BFS over a partitioned graph on the simulated cluster.
type Solver struct {
	g      *Graph
	cfg    Config
	engine *core.Engine
	sub    *partition.Subgraphs
}

// NewSolver partitions the graph (degree separation + Algorithm 1) for the
// configured cluster and prepares the engine.
func NewSolver(g *Graph, cfg Config) (*Solver, error) {
	shape := cfg.Cluster.shape()
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if cfg.Compression < CompressionOff || cfg.Compression > CompressionBitmap {
		return nil, fmt.Errorf("gcbfs: invalid compression mode %d", cfg.Compression)
	}
	if cfg.Exchange < ExchangeAllPairs || cfg.Exchange > ExchangeButterfly {
		return nil, fmt.Errorf("gcbfs: invalid exchange strategy %d", cfg.Exchange)
	}
	th := cfg.Threshold
	if th <= 0 {
		th = partition.SuggestThreshold(g.el.OutDegrees(), 4*g.el.N/int64(shape.P()))
	}
	sep := partition.Separate(g.el, th)
	sub, err := partition.Distribute(g.el, sep, shape.PartitionConfig())
	if err != nil {
		return nil, err
	}
	engine, err := core.NewEngine(sub, shape, cfg.engineOptions())
	if err != nil {
		return nil, err
	}
	return &Solver{g: g, cfg: cfg, engine: engine, sub: sub}, nil
}

// Threshold returns the degree threshold in effect (useful when auto-tuned).
func (s *Solver) Threshold() int64 { return s.sub.Sep.Threshold }

// Delegates returns the number of delegate vertices.
func (s *Solver) Delegates() int64 { return s.sub.D() }

// Run executes one BFS from source.
func (s *Solver) Run(source int64) (*Result, error) {
	r, err := s.engine.Run(source)
	if err != nil {
		return nil, err
	}
	return convert(r), nil
}

// RunMany executes one BFS per source.
func (s *Solver) RunMany(sources []int64) ([]*Result, error) {
	out := make([]*Result, 0, len(sources))
	for _, src := range sources {
		r, err := s.Run(src)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func convert(r *metrics.RunResult) *Result {
	return &Result{
		Source:           r.Source,
		Iterations:       r.Iterations,
		SimSeconds:       r.SimSeconds,
		GTEPS:            r.GTEPS(),
		Levels:           r.Levels,
		EdgesScanned:     r.EdgesScanned,
		Computation:      r.Parts.Computation,
		LocalComm:        r.Parts.LocalComm,
		RemoteNormal:     r.Parts.RemoteNormal,
		RemoteDelegate:   r.Parts.RemoteDelegate,
		WireBytes:        r.Wire.CompressedBytes,
		WireRawBytes:     r.Wire.RawBytes,
		Exchange:         r.Exchange.Strategy,
		ExchangeFallback: r.Exchange.Fallback,
	}
}

// Validate checks a result's hop distances against the Graph500-style rules
// and against a serial reference BFS. The result must carry levels.
func (s *Solver) Validate(r *Result) error {
	if r.Levels == nil {
		return fmt.Errorf("gcbfs: result has no levels (CollectLevels off)")
	}
	if err := g500.Validate(s.g.el, r.Source, r.Levels); err != nil {
		return err
	}
	want := baseline.SerialBFS(graph.BuildCSR(s.g.el), r.Source)
	return g500.CompareLevels(r.Levels, want)
}

// MemoryReport summarizes the Table-I storage accounting of the partitioned
// graph.
type MemoryReport struct {
	TotalBytes     int64 // measured across all GPUs
	PredictedBytes int64 // 8n + 8d·p + 4m + 4|Enn|
	MaxGPUBytes    int64 // largest single-GPU footprint
	EdgeListBytes  int64 // conventional 16m representation
	PlainCSRBytes  int64 // 8n + 8m without degree separation
	Delegates      int64
	NNEdges        int64
}

// Memory returns the solver's storage accounting.
func (s *Solver) Memory() MemoryReport {
	return MemoryReport{
		TotalBytes:     s.sub.Memory().Total(),
		PredictedBytes: s.sub.PredictedTotal(),
		MaxGPUBytes:    s.sub.MaxGPUBytes(),
		EdgeListBytes:  s.sub.EdgeListBytes(),
		PlainCSRBytes:  s.sub.PlainCSRBytes(),
		Delegates:      s.sub.D(),
		NNEdges:        s.sub.CountNN,
	}
}

// Sources picks count distinct vertices with at least one edge,
// deterministically from seed — the paper's random-source methodology with
// reproducibility.
func Sources(g *Graph, count int, seed int64) []int64 {
	deg := g.el.OutDegrees()
	rng := newSplitMix(uint64(seed))
	var out []int64
	seen := map[int64]bool{}
	n := g.el.N
	for int64(len(out)) < int64(count) {
		v := int64(rng.next() % uint64(n))
		if deg[v] > 0 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// GeoMeanGTEPS aggregates run rates the way the paper reports data points:
// geometric mean over runs with more than one iteration.
func GeoMeanGTEPS(results []*Result) float64 {
	var rates []float64
	for _, r := range results {
		if r.Iterations > 1 {
			rates = append(rates, r.GTEPS)
		}
	}
	return metrics.GeoMean(rates)
}
