package gcbfs

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§VI). Each benchmark regenerates its artifact through
// internal/experiments in quick mode and reports the headline metric so
// `go test -bench=.` doubles as a figure-regeneration smoke run. The CLI
// (cmd/bfsbench) runs the same experiments at full size and prints the
// tables; EXPERIMENTS.md records paper-vs-measured values.

import (
	"context"
	"io"
	"strconv"
	"strings"
	"testing"

	"gcbfs/internal/experiments"
)

var benchParams = experiments.Params{Quick: true, Sources: 2}

// runBench executes a registered experiment once per iteration and returns
// the final table for metric extraction.
func runBench(b *testing.B, id string) *experiments.Table {
	b.Helper()
	run, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = run(benchParams)
		if err != nil {
			b.Fatal(err)
		}
	}
	tab.Render(io.Discard)
	return tab
}

func cell(tab *experiments.Table, row, col int) float64 {
	s := strings.TrimSuffix(tab.Rows[row][col], "%")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// BenchmarkFig1RelatedWork regenerates the Fig. 1 landscape (static related
// work + our simulated point).
func BenchmarkFig1RelatedWork(b *testing.B) {
	tab := runBench(b, "fig1")
	b.ReportMetric(cell(tab, len(tab.Rows)-1, 5), "simGTEPS")
}

// BenchmarkNet1MessageSize regenerates the §VI-A1 message-size sweep
// (optimum ≈ 4 MB).
func BenchmarkNet1MessageSize(b *testing.B) {
	tab := runBench(b, "net1")
	for i, row := range tab.Rows {
		if row[0] == "4MB" {
			b.ReportMetric(cell(tab, i, 3), "GB/s@4MB")
		}
	}
}

// BenchmarkFig5Distribution regenerates the edge/delegate distribution vs
// threshold table (paper Fig. 5).
func BenchmarkFig5Distribution(b *testing.B) {
	tab := runBench(b, "fig5")
	b.ReportMetric(float64(len(tab.Rows)), "thresholds")
}

// BenchmarkFig6ThresholdSweep regenerates the rate-vs-threshold sweep
// (paper Fig. 6).
func BenchmarkFig6ThresholdSweep(b *testing.B) {
	tab := runBench(b, "fig6")
	best := 0.0
	for i := range tab.Rows {
		if v := cell(tab, i, 2); v > best {
			best = v
		}
	}
	b.ReportMetric(best, "bestDOBFS-simGTEPS")
}

// BenchmarkFig7SuggestedTH regenerates the suggested-threshold table
// (paper Fig. 7).
func BenchmarkFig7SuggestedTH(b *testing.B) {
	tab := runBench(b, "fig7")
	b.ReportMetric(cell(tab, len(tab.Rows)-1, 2), "topScaleTH")
}

// BenchmarkFig8Options regenerates the optimization-options ablation
// (paper Fig. 8).
func BenchmarkFig8Options(b *testing.B) {
	tab := runBench(b, "fig8")
	// Report the DO computation cut on the 2×2 layout.
	var bfs, do float64
	for i, row := range tab.Rows {
		if strings.Contains(row[1], "BFS") && bfs == 0 {
			bfs = cell(tab, i, 2)
		}
		if row[1] == "DO+BR" && do == 0 {
			do = cell(tab, i, 2)
		}
	}
	if do > 0 {
		b.ReportMetric(bfs/do, "DO-comp-cut")
	}
}

// BenchmarkFig9WeakScaling regenerates the weak-scaling curve (paper Fig. 9).
func BenchmarkFig9WeakScaling(b *testing.B) {
	tab := runBench(b, "fig9")
	b.ReportMetric(cell(tab, len(tab.Rows)-1, 3), "maxDOBFS-simGTEPS")
}

// BenchmarkFig10Breakdown regenerates the runtime breakdown along the
// weak-scaling curve (paper Fig. 10).
func BenchmarkFig10Breakdown(b *testing.B) {
	tab := runBench(b, "fig10")
	b.ReportMetric(cell(tab, len(tab.Rows)-1, 6), "elapsed-ms")
}

// BenchmarkFig11StrongScaling regenerates the strong-scaling curve
// (paper Fig. 11).
func BenchmarkFig11StrongScaling(b *testing.B) {
	tab := runBench(b, "fig11")
	b.ReportMetric(cell(tab, len(tab.Rows)-1, 3), "maxGPUs-DOBFS-simGTEPS")
}

// BenchmarkFig12FriendsterDist regenerates the friendster-like distribution
// table (paper Fig. 12).
func BenchmarkFig12FriendsterDist(b *testing.B) {
	tab := runBench(b, "fig12")
	b.ReportMetric(cell(tab, 0, 4), "delegates%atTH2")
}

// BenchmarkFig13FriendsterRate regenerates the friendster-like rate sweep
// (paper Fig. 13).
func BenchmarkFig13FriendsterRate(b *testing.B) {
	tab := runBench(b, "fig13")
	best := 0.0
	for i := range tab.Rows {
		if v := cell(tab, i, 2); v > best {
			best = v
		}
	}
	b.ReportMetric(best, "bestDOBFS-simGTEPS")
}

// BenchmarkTable1Memory regenerates the Table-I memory accounting.
func BenchmarkTable1Memory(b *testing.B) {
	tab := runBench(b, "tab1")
	for _, row := range tab.Rows {
		if row[0] == "edge list (16m)" {
			idx := strings.Index(row[3], "ratio ")
			v, _ := strconv.ParseFloat(strings.TrimSuffix(row[3][idx+6:], "×"), 64)
			b.ReportMetric(v, "edgelist-ratio")
		}
	}
}

// BenchmarkTable2Comparison regenerates the Table-II comparison with the
// simulated column.
func BenchmarkTable2Comparison(b *testing.B) {
	tab := runBench(b, "tab2")
	b.ReportMetric(cell(tab, 0, 5), "Pan24-simGTEPS")
}

// BenchmarkWDCLongTail regenerates the §VI-D long-tail result (BFS ≥ DOBFS).
func BenchmarkWDCLongTail(b *testing.B) {
	tab := runBench(b, "wdc1")
	var bfs, do float64
	for i, row := range tab.Rows {
		if row[0] == "BFS" {
			bfs = cell(tab, i, 1)
		}
		if row[0] == "DOBFS" {
			do = cell(tab, i, 1)
		}
	}
	if do > 0 {
		b.ReportMetric(bfs/do, "BFS-over-DOBFS")
	}
}

// BenchmarkDO1FactorSweep regenerates the §VI-B direction-factor sweep.
func BenchmarkDO1FactorSweep(b *testing.B) {
	tab := runBench(b, "do1")
	b.ReportMetric(cell(tab, 3, 3), "paperFactors-simGTEPS")
}

// BenchmarkAbl1CommModel regenerates the §II-B communication-model
// comparison (ours vs 1D vs 2D).
func BenchmarkAbl1CommModel(b *testing.B) {
	tab := runBench(b, "abl1")
	last := len(tab.Rows) - 1
	ours, oneDDO := cell(tab, last, 1), cell(tab, last, 3)
	if ours > 0 {
		b.ReportMetric(oneDDO/ours, "1DDO-vs-ours-volume")
	}
}

// BenchmarkCmp1Compression regenerates the frontier-exchange codec ablation
// (internal/wire) and reports adaptive's byte savings on the R-MAT graph.
// Per-codec encode/decode microbenchmarks live in internal/wire.
func BenchmarkCmp1Compression(b *testing.B) {
	tab := runBench(b, "cmp1")
	for i, row := range tab.Rows {
		if row[0] == "rmat" && row[1] == "adaptive" {
			b.ReportMetric(cell(tab, i, 4), "adaptive-saved%")
		}
	}
}

// BenchmarkCmp2Exchange regenerates the exchange-topology ablation
// (all-pairs vs butterfly) and reports the butterfly's remote-normal
// speedup at the largest rank count on the R-MAT graph.
func BenchmarkCmp2Exchange(b *testing.B) {
	tab := runBench(b, "cmp2")
	remote := map[string]float64{}
	maxRanks := 0
	for i, row := range tab.Rows {
		if row[0] != "rmat" || row[2] != "adaptive" {
			continue
		}
		remote[row[1]+"/"+row[3]] = cell(tab, i, 8)
		if r, err := strconv.Atoi(row[1]); err == nil && r > maxRanks {
			maxRanks = r
		}
	}
	key := strconv.Itoa(maxRanks)
	if bf := remote[key+"/butterfly"]; bf > 0 {
		b.ReportMetric(remote[key+"/allpairs"]/bf, "butterfly-speedup-remote-normal")
	}
}

// BenchmarkCmp4Pipeline regenerates the pipelined-butterfly ablation and
// reports the pipeline's elapsed-time win over sequential hops at the
// largest rank count (the experiment itself asserts bit-identical results
// and pipelined ≤ sequential on every cell).
func BenchmarkCmp4Pipeline(b *testing.B) {
	tab := runBench(b, "cmp4")
	elapsed := map[string]float64{}
	maxRanks := 0
	for i, row := range tab.Rows {
		elapsed[row[1]+"/"+row[2]] = cell(tab, i, 8)
		if r, err := strconv.Atoi(row[1]); err == nil && r > maxRanks {
			maxRanks = r
		}
	}
	key := strconv.Itoa(maxRanks)
	if pipe := elapsed[key+"/bf-pipe"]; pipe > 0 {
		b.ReportMetric(elapsed[key+"/bf-seq"]/pipe, "pipeline-speedup")
	}
}

// BenchmarkButterflyExchange is the exchange microbenchmark: one BFS query
// per iteration through a shared service on 8 ranks with the adaptive
// codec, sequential vs pipelined hops. The pipelined variant's remote-normal
// time must carry less exposed codec work; hidden-µs is the reclaimed time.
func BenchmarkButterflyExchange(b *testing.B) {
	g := RMAT(13)
	svc, err := NewService(g, DefaultConfig(Cluster{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 2}))
	if err != nil {
		b.Fatal(err)
	}
	src := Sources(g, 1, 9)[0]
	for _, bench := range []struct {
		name string
		pipe bool
	}{{"sequential", false}, {"pipelined", true}} {
		b.Run(bench.name, func(b *testing.B) {
			var remote, hidden float64
			for i := 0; i < b.N; i++ {
				r, err := svc.Run(context.Background(), src,
					WithExchange(ExchangeButterfly),
					WithCompression(CompressionAdaptive),
					WithPipeline(bench.pipe))
				if err != nil {
					b.Fatal(err)
				}
				remote = r.RemoteNormal
				hidden = r.HiddenCodecSeconds
			}
			b.ReportMetric(remote*1e6, "remote-normal-µs")
			b.ReportMetric(hidden*1e6, "hidden-codec-µs")
		})
	}
}

// BenchmarkAbl2LoadBalance regenerates the §IV-A strategy ablation
// (merge-path vs forced TWB on the dd subgraph).
func BenchmarkAbl2LoadBalance(b *testing.B) {
	tab := runBench(b, "abl2")
	comp := map[string]float64{}
	for i, row := range tab.Rows {
		comp[row[0]+"/"+row[1]] = cell(tab, i, 2)
	}
	if base := comp["merge-path (paper)/DOBFS"]; base > 0 {
		b.ReportMetric(comp["twb-dynamic (forced)/DOBFS"]/base, "TWB-penalty")
	}
}

// BenchmarkApp1BeyondBFS regenerates the §VI-D beyond-BFS comparison
// (PageRank and connected components on the delegate substrate).
func BenchmarkApp1BeyondBFS(b *testing.B) {
	tab := runBench(b, "app1")
	vals := map[string]float64{}
	for i, row := range tab.Rows {
		vals[row[0]] = cell(tab, i, 4)
	}
	if bfs := vals["DOBFS"]; bfs > 0 {
		b.ReportMetric(vals["PageRank"]/bfs, "PR-delegate-traffic-x")
	}
}

// BenchmarkMem1Capacity regenerates the §VI-C device-memory capacity table
// (scale-30 fits 12 GPUs only with degree separation).
func BenchmarkMem1Capacity(b *testing.B) {
	tab := runBench(b, "mem1")
	for _, row := range tab.Rows {
		if row[0] == "30" && row[1] == "12" && row[5] == "true/false/false" {
			b.ReportMetric(1, "scale30-fits-12GPUs")
		}
	}
}
