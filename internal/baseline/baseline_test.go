package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/rmat"
)

func TestSerialBFSPath(t *testing.T) {
	c := graph.BuildCSR(gen.Path(10))
	levels := SerialBFS(c, 0)
	for v := int64(0); v < 10; v++ {
		if levels[v] != int32(v) {
			t.Fatalf("levels[%d] = %d", v, levels[v])
		}
	}
	// From the middle.
	levels = SerialBFS(c, 5)
	if levels[0] != 5 || levels[9] != 4 {
		t.Fatalf("levels from 5: %v", levels)
	}
}

func TestSerialBFSDisconnected(t *testing.T) {
	el := graph.NewEdgeList(5)
	el.Add(0, 1)
	el.Add(1, 0)
	c := graph.BuildCSR(el)
	levels := SerialBFS(c, 0)
	if levels[2] != -1 || levels[4] != -1 {
		t.Fatal("unreachable vertices must be -1")
	}
	// Out-of-range source returns all -1.
	levels = SerialBFS(c, 99)
	for _, l := range levels {
		if l != -1 {
			t.Fatal("bad source should visit nothing")
		}
	}
}

// Property: BFS levels satisfy the triangle property — adjacent vertices
// differ by at most 1 level, and every visited non-source vertex has a
// neighbor one level closer (on symmetric graphs).
func TestQuickSerialBFSInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(rng.Intn(40) + 2)
		base := graph.NewEdgeList(n)
		for i := 0; i < rng.Intn(120); i++ {
			base.Add(rng.Int63n(n), rng.Int63n(n))
		}
		el := base.Symmetrize()
		c := graph.BuildCSR(el)
		src := rng.Int63n(n)
		levels := SerialBFS(c, src)
		if levels[src] != 0 {
			return false
		}
		for u := int64(0); u < n; u++ {
			if levels[u] < 0 {
				continue
			}
			hasParent := levels[u] == 0
			for _, v := range c.Neighbors(u) {
				if levels[v] < 0 {
					return false // symmetric graph: neighbor of visited must be visited
				}
				d := levels[u] - levels[v]
				if d > 1 || d < -1 {
					return false
				}
				if levels[v] == levels[u]-1 {
					hasParent = true
				}
			}
			if !hasParent && c.OutDegree(u) > 0 {
				return false
			}
			if !hasParent && levels[u] > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelSizesAndFrontierEdges(t *testing.T) {
	c := graph.BuildCSR(gen.Star(6))
	levels := SerialBFS(c, 1) // leaf → hub → other leaves
	sizes := LevelSizes(levels)
	if len(sizes) != 3 || sizes[0] != 1 || sizes[1] != 1 || sizes[2] != 4 {
		t.Fatalf("sizes = %v", sizes)
	}
	fe := FrontierEdges(c, levels)
	if fe[0] != 1 || fe[1] != 5 || fe[2] != 4 {
		t.Fatalf("frontier edges = %v", fe)
	}
}

func TestOneDMatchesSerial(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(8))
	c := graph.BuildCSR(el)
	deg := el.OutDegrees()
	var src int64
	for deg[src] == 0 {
		src++
	}
	want := SerialBFS(c, src)
	for _, p := range []int{1, 3, 8} {
		res, err := OneD(c, src, p, false)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if res.Levels[v] != want[v] {
				t.Fatalf("p=%d: level mismatch at %d", p, v)
			}
		}
		if p == 1 && res.CommBytes != 0 {
			t.Fatalf("p=1 should have no comm, got %d", res.CommBytes)
		}
		if p > 1 && res.CommBytes == 0 {
			t.Fatalf("p=%d: no communication counted", p)
		}
	}
}

func TestOneDBroadcastVolume(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(8))
	c := graph.BuildCSR(el)
	deg := el.OutDegrees()
	var src int64
	for deg[src] == 0 {
		src++
	}
	plain, err := OneD(c, src, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	do, err := OneD(c, src, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if plain.BroadcastBytes != 0 {
		t.Fatal("plain 1D should not broadcast")
	}
	// DO-capable 1D must broadcast every visited vertex to every peer:
	// 8 bytes × visited × (p-1).
	var visited int64
	for _, l := range do.Levels {
		if l >= 0 {
			visited++
		}
	}
	if do.BroadcastBytes != 8*visited*3 {
		t.Fatalf("BroadcastBytes = %d, want %d", do.BroadcastBytes, 8*visited*3)
	}
}

func TestOneDErrors(t *testing.T) {
	c := graph.BuildCSR(gen.Path(4))
	if _, err := OneD(c, 0, 0, false); err == nil {
		t.Fatal("accepted p=0")
	}
	if _, err := OneD(c, -1, 2, false); err == nil {
		t.Fatal("accepted bad source")
	}
}

func TestTwoDModel(t *testing.T) {
	// n=1024, levels: [1, 10, 100] vertices, switch at iteration 2.
	sizes := []int64{1, 10, 100}
	res, err := TwoDModel(1024, sizes, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	// √p = 4, log2 = 2: forward = 8·(1+10)·4·2 = 704.
	if res.ForwardBytes != 704 {
		t.Fatalf("ForwardBytes = %d", res.ForwardBytes)
	}
	// backward = 2·1024·1·4·2/8 = 2048.
	if res.BackwardBytes != 2048 {
		t.Fatalf("BackwardBytes = %d", res.BackwardBytes)
	}
	if res.TotalBytes() != 704+2048 {
		t.Fatal("TotalBytes wrong")
	}
	if res.ForwardIters != 2 || res.BackwardIters != 1 {
		t.Fatalf("iters = %d/%d", res.ForwardIters, res.BackwardIters)
	}
}

func TestTwoDModelErrors(t *testing.T) {
	if _, err := TwoDModel(10, []int64{1}, 0, 3); err == nil {
		t.Fatal("accepted non-square p")
	}
	if _, err := TwoDModel(10, []int64{1}, 0, 0); err == nil {
		t.Fatal("accepted p=0")
	}
}

// The paper's scaling argument (§II-B vs §V): under weak scaling (n and m
// grow with p), the 2D communication *time* grows as √p·log√p while the
// delegate-reduction time grows only as log p_rank (d stays ≈ 4n/p = const).
func TestScalingArgument(t *testing.T) {
	const n0 = int64(1 << 14) // vertices per processor
	// 2D time per §II-B: (4·nt + n·Sb/8)·(log₂√p/√p)·g, with nt ≈ n/2
	// visited in forward iterations and Sb backward iterations.
	time2D := func(p int) float64 {
		n := float64(n0) * float64(p)
		root := math.Sqrt(float64(p))
		return (4*(n/2) + n*3/8) * math.Log2(root) / root
	}
	// Delegate model per §V-A: d·log₂(p_rank)/4·S·g with d = 4·n/p const.
	timeDelegate := func(p int) float64 {
		d := float64(4 * n0)
		return d * math.Log2(float64(p)) / 4 * 6
	}
	g2 := time2D(1024) / time2D(16)
	gd := timeDelegate(1024) / timeDelegate(16)
	if g2 <= gd {
		t.Fatalf("2D time growth %.1f× should exceed delegate growth %.1f×", g2, gd)
	}
	// And the delegate growth is logarithmic: doubling p adds a constant.
	inc1 := timeDelegate(64) - timeDelegate(32)
	inc2 := timeDelegate(1024) - timeDelegate(512)
	if math.Abs(inc1-inc2) > 1e-9*inc1 {
		t.Fatalf("delegate growth not logarithmic: %g vs %g", inc1, inc2)
	}
}

func BenchmarkSerialBFSScale14(b *testing.B) {
	c := graph.BuildCSR(rmat.Generate(rmat.DefaultParams(14)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SerialBFS(c, 1)
	}
}
