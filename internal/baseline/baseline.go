// Package baseline provides the comparison algorithms the paper measures
// against or analyzes (§II-B, §VI-C):
//
//   - SerialBFS: the single-threaded reference used to validate every
//     distributed run's hop distances.
//   - OneD: a conventional 1D-partitioned distributed BFS (no degree
//     separation) with exact communication-volume counting — the strawman
//     whose broadcast cost motivates the paper's design.
//   - TwoDModel: the §II-B analytical communication model of 2D-partitioned
//     (DO)BFS, fed with exact per-level frontier counts, reproducing the
//     8·nt·√p·log√p and 2·n·Sb·√p·log√p/8 volume formulas the paper argues
//     scale worse than its delegate reduction.
package baseline

import (
	"fmt"
	"math"

	"gcbfs/internal/graph"
)

// SerialBFS computes hop distances from source on a CSR graph using a
// classic two-queue BFS. Unreachable vertices get -1.
func SerialBFS(c *graph.CSR, source int64) []int32 {
	levels := make([]int32, c.N)
	for i := range levels {
		levels[i] = -1
	}
	if source < 0 || source >= c.N {
		return levels
	}
	levels[source] = 0
	cur := []int64{source}
	var next []int64
	for depth := int32(1); len(cur) > 0; depth++ {
		next = next[:0]
		for _, u := range cur {
			for _, v := range c.Neighbors(u) {
				if levels[v] == -1 {
					levels[v] = depth
					next = append(next, v)
				}
			}
		}
		cur, next = next, cur
	}
	return levels
}

// LevelSizes returns the number of vertices at each depth (n_t per
// iteration), the input to the 2D communication model.
func LevelSizes(levels []int32) []int64 {
	var max int32 = -1
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	sizes := make([]int64, max+1)
	for _, l := range levels {
		if l >= 0 {
			sizes[l]++
		}
	}
	return sizes
}

// FrontierEdges returns, per depth, the number of edges incident to that
// depth's frontier (the forward workload of iteration t).
func FrontierEdges(c *graph.CSR, levels []int32) []int64 {
	var max int32 = -1
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	edges := make([]int64, max+1)
	for u := int64(0); u < c.N; u++ {
		if l := levels[u]; l >= 0 {
			edges[l] += c.OutDegree(u)
		}
	}
	return edges
}

// OneDResult reports a 1D-partitioned BFS run.
type OneDResult struct {
	Levels     []int32
	Iterations int
	// CommBytes is the exact cross-processor discovery traffic: 8 bytes
	// per remotely discovered vertex id (64-bit ids, no degree
	// separation to narrow them).
	CommBytes int64
	// BroadcastBytes is the additional per-iteration frontier broadcast a
	// 1D DOBFS would need (newly visited ids to every peer, §II-B).
	BroadcastBytes int64
}

// OneD runs a functional 1D-partitioned BFS: vertices striped over p
// processors (v mod p), forward push only, discoveries exchanged
// all-to-all. directionOptimized additionally accounts the frontier
// broadcast volume a backward-capable 1D implementation must pay.
func OneD(c *graph.CSR, source int64, p int, directionOptimized bool) (*OneDResult, error) {
	if p <= 0 {
		return nil, fmt.Errorf("baseline: invalid processor count %d", p)
	}
	if source < 0 || source >= c.N {
		return nil, fmt.Errorf("baseline: source %d out of range", source)
	}
	res := &OneDResult{Levels: make([]int32, c.N)}
	for i := range res.Levels {
		res.Levels[i] = -1
	}
	owner := func(v int64) int { return int(v % int64(p)) }
	res.Levels[source] = 0
	cur := []int64{source}
	var next []int64
	for depth := int32(1); len(cur) > 0; depth++ {
		res.Iterations++
		if directionOptimized {
			// Every processor must learn the new frontier to run pulls:
			// 8 bytes per frontier vertex to each of the p-1 peers.
			res.BroadcastBytes += 8 * int64(len(cur)) * int64(p-1)
		}
		next = next[:0]
		for _, u := range cur {
			for _, v := range c.Neighbors(u) {
				if res.Levels[v] == -1 {
					res.Levels[v] = depth
					next = append(next, v)
					if owner(u) != owner(v) {
						res.CommBytes += 8
					}
				}
			}
		}
		cur, next = next, cur
	}
	return res, nil
}

// TwoDModelResult carries the §II-B analytical volumes for a concrete run.
type TwoDModelResult struct {
	P             int
	ForwardIters  int
	BackwardIters int
	// ForwardBytes = Σ_t 8·nt·√p·log₂√p over forward iterations.
	ForwardBytes int64
	// BackwardBytes = 2·n·Sb·√p·log₂√p / 8 (compressed bitmasks).
	BackwardBytes int64
}

// TotalBytes is the model's total communication volume.
func (r *TwoDModelResult) TotalBytes() int64 { return r.ForwardBytes + r.BackwardBytes }

// TwoDModel evaluates the paper's 2D-partitioning communication model on an
// actual BFS trace: levels from SerialBFS, a switch iteration (first
// backward iteration; pass len(levelSizes) to model pure forward BFS), and
// a square processor grid of p processors.
func TwoDModel(n int64, levelSizes []int64, switchIter, p int) (*TwoDModelResult, error) {
	if p <= 0 {
		return nil, fmt.Errorf("baseline: invalid processor count %d", p)
	}
	root := math.Sqrt(float64(p))
	if root != math.Trunc(root) {
		return nil, fmt.Errorf("baseline: 2D model needs a square processor count, got %d", p)
	}
	if switchIter < 0 {
		switchIter = 0
	}
	res := &TwoDModelResult{P: p}
	logRoot := math.Log2(root)
	if p == 1 {
		logRoot = 0
	}
	for t, nt := range levelSizes {
		if t < switchIter {
			res.ForwardIters++
			res.ForwardBytes += int64(8 * float64(nt) * root * logRoot)
		} else {
			res.BackwardIters++
		}
	}
	res.BackwardBytes = int64(2 * float64(n) * float64(res.BackwardIters) * root * logRoot / 8)
	return res, nil
}

// DelegateModelBytes evaluates the paper's own communication volume bound
// (§V): d·p_rank/4·S′ for delegate masks plus 4·|Enn| for the normal
// exchange — the quantity abl1 compares against OneD and TwoDModel.
func DelegateModelBytes(d int64, pRank int, maskIters int, enn int64) int64 {
	return d*int64(pRank)/4*int64(maskIters) + 4*enn
}
