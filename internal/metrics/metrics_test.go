package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDirectionString(t *testing.T) {
	if Forward.String() != "fwd" || Backward.String() != "bwd" {
		t.Fatal("direction strings wrong")
	}
}

func TestBreakdownAddSum(t *testing.T) {
	a := Breakdown{1, 2, 3, 4}
	a.Add(Breakdown{10, 20, 30, 40})
	if a.Computation != 11 || a.LocalComm != 22 || a.RemoteNormal != 33 || a.RemoteDelegate != 44 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.Sum() != 110 {
		t.Fatalf("Sum = %f", a.Sum())
	}
}

func TestGTEPS(t *testing.T) {
	r := &RunResult{TEPSEdges: 1 << 30, SimSeconds: 0.5}
	want := float64(1<<30) / 0.5 / 1e9
	if got := r.GTEPS(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("GTEPS = %f, want %f", got, want)
	}
	if (&RunResult{TEPSEdges: 10}).GTEPS() != 0 {
		t.Fatal("zero-time GTEPS should be 0")
	}
}

func TestMultipleIterationsFilter(t *testing.T) {
	if (&RunResult{Iterations: 1}).MultipleIterations() {
		t.Fatal("1 iteration passed the filter")
	}
	if !(&RunResult{Iterations: 2}).MultipleIterations() {
		t.Fatal("2 iterations failed the filter")
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	if got := GeoMean([]float64{4, 9}); math.Abs(got-6) > 1e-12 {
		t.Fatalf("GeoMean(4,9) = %f", got)
	}
	// Non-positive values are skipped.
	if got := GeoMean([]float64{0, -1, 8}); math.Abs(got-8) > 1e-12 {
		t.Fatalf("GeoMean with zeros = %f", got)
	}
	if GeoMean([]float64{0, 0}) != 0 {
		t.Fatal("all-zero GeoMean != 0")
	}
}

// Property: GeoMean lies between min and max of positive inputs.
func TestQuickGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		var vals []float64
		for _, r := range raw {
			vals = append(vals, float64(r)+1)
		}
		if len(vals) == 0 {
			return true
		}
		g := GeoMean(vals)
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return g >= min-1e-9 && g <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateRuns(t *testing.T) {
	mk := func(iters int, secs float64) *RunResult {
		return &RunResult{
			Iterations: iters,
			SimSeconds: secs,
			TEPSEdges:  1e9,
			Parts:      Breakdown{Computation: secs},
		}
	}
	agg := AggregateRuns([]*RunResult{mk(5, 0.1), mk(1, 0.001), mk(5, 0.1)})
	if agg.Runs != 3 || agg.Filtered != 1 {
		t.Fatalf("agg = %+v", agg)
	}
	if math.Abs(agg.MeanMS-100) > 1e-9 {
		t.Fatalf("MeanMS = %f", agg.MeanMS)
	}
	if math.Abs(agg.GTEPS-10) > 1e-9 { // 1e9 edges / 0.1s = 10 GTEPS
		t.Fatalf("GTEPS = %f", agg.GTEPS)
	}
	if agg.Iterations != 5 {
		t.Fatalf("Iterations = %f", agg.Iterations)
	}
	if math.Abs(agg.Parts.Computation-0.1) > 1e-12 {
		t.Fatalf("Parts = %+v", agg.Parts)
	}
}

func TestAggregateAllFiltered(t *testing.T) {
	agg := AggregateRuns([]*RunResult{{Iterations: 1}, {Iterations: 0}})
	if agg.GTEPS != 0 || agg.Filtered != 2 {
		t.Fatalf("agg = %+v", agg)
	}
}
