// Package metrics defines the timing breakdown and reporting conventions of
// the paper's evaluation (§VI): the four-way runtime split of Figs. 8/10
// (computation, local communication, remote normal exchange, remote delegate
// reduce), traversal rates in GTEPS, and geometric-mean aggregation over
// randomly sourced runs with the Graph500 more-than-one-iteration filter.
package metrics

import "math"

// Direction of a visit kernel in the direction-optimizing engine.
type Direction uint8

const (
	Forward  Direction = iota // top-down push
	Backward                  // bottom-up pull
)

func (d Direction) String() string {
	if d == Forward {
		return "fwd"
	}
	return "bwd"
}

// Breakdown is simulated seconds split into the paper's four components.
// The sum of parts exceeds elapsed time when phases overlap (Fig. 10's
// caption makes the same caveat).
type Breakdown struct {
	Computation    float64
	LocalComm      float64
	RemoteNormal   float64
	RemoteDelegate float64
}

// Add accumulates other into b.
func (b *Breakdown) Add(other Breakdown) {
	b.Computation += other.Computation
	b.LocalComm += other.LocalComm
	b.RemoteNormal += other.RemoteNormal
	b.RemoteDelegate += other.RemoteDelegate
}

// Sum returns the total of all parts (an upper bound on elapsed time).
func (b Breakdown) Sum() float64 {
	return b.Computation + b.LocalComm + b.RemoteNormal + b.RemoteDelegate
}

// IterationStats records one BSP super-step.
type IterationStats struct {
	Iteration           int
	FrontierNormals     int64 // input normal frontier size (global)
	FrontierDelegates   int64 // input delegate frontier size (global)
	DirDD, DirDN, DirND Direction
	// Exchange is the exchange strategy the policy picked for this
	// iteration ("allpairs" or "butterfly") — fixed configurations repeat
	// the same value, the hybrid policy may switch per iteration.
	Exchange     string
	EdgesScanned int64 // actual edges touched by kernels this iteration
	BytesNormal  int64 // inter-rank normal-exchange payload on the wire
	// BytesNormalRaw is the fixed-width (4 bytes/id) equivalent of the
	// normal exchange — equal to BytesNormal when compression is off.
	BytesNormalRaw int64
	BytesDelegate  int64 // delegate-mask reduction payload on the wire
	Elapsed        float64
	// PredictedRemote is the policy cost model's predicted remote-normal
	// seconds for the chosen strategy (calibrated by the session's
	// predicted-vs-actual feedback when it has accumulated), comparable
	// against Parts.RemoteNormal.
	PredictedRemote float64
	// CodecHidden/CodecExposed split this iteration's codec compute: the
	// part the pipelined butterfly hid under concurrent hop transfers, and
	// the part that stayed on the critical path (and therefore sits inside
	// Parts.RemoteNormal). Their sum is the iteration's total codec work;
	// CodecHidden is zero for all-pairs iterations and with PipelineHops
	// off.
	CodecHidden, CodecExposed float64
	// NVLinkHidden/NVLinkExposed split the hierarchical exchange's NVLink
	// tier (intra-rank aggregation plus send/recv staging) the same way:
	// hidden under concurrent hop transfers and codec stages vs exposed as
	// the tier's critical-path marginal. The exposed part is charged to
	// Parts.LocalComm — the pre-hierarchy home of staging time — so
	// Parts.RemoteNormal stays a pure wire+codec quantity in both modes.
	// Both zero with the flat exchange or at one GPU per rank.
	NVLinkHidden, NVLinkExposed float64
	Parts                       Breakdown
}

// WireStats summarizes the frontier-exchange codec's effect over a run:
// the fixed-width byte equivalent of every inter-rank normal payload, the
// bytes actually sent, and how often the adaptive selector picked each
// scheme. With compression off, Enabled is false, the scheme counters are
// zero, and RawBytes equals CompressedBytes (both count id bytes only).
type WireStats struct {
	Enabled         bool
	RawBytes        int64 // 4 bytes per exchanged id (the paper's 4·|Enn|)
	CompressedBytes int64 // bytes on the wire, headers and checksums included
	// Per-block scheme selections across all messages of the run.
	SchemeRaw, SchemeDelta, SchemeBitmap int64
	// MemoHits counts adaptive blocks encoded straight from the selector's
	// per-destination scheme memory, skipping the full three-way probe.
	MemoHits int64
	// CodecBytes is the fixed-width equivalent of every id pushed through
	// the codec's encode and decode kernels across all ranks — for the
	// butterfly this multiplies with the per-hop re-encode, so it exceeds
	// RawBytes there. Zero when compression is off.
	CodecBytes int64
	// CodecSeconds is the simulated compute time charged for that codec
	// work (simgpu.Spec.CodecRate). It lands in the run's RemoteNormal
	// breakdown component except the portion the pipelined butterfly hid
	// under concurrent hop transfers (ExchangeStats.HiddenCodecSeconds).
	// Zero when compression is off or CodecRate unset.
	CodecSeconds float64
	// PairRawBytes/PairWireBytes account the post-BFS parent-resolution
	// pairs exchange: the fixed-width 12-bytes-per-pair equivalent and the
	// bytes actually sent (equal when compression is off). Like ParentPairs,
	// this traffic is reported but excluded from simulated BFS time.
	PairRawBytes, PairWireBytes int64
	// MaskRawBytes/MaskWireBytes account the delegate-mask reductions when
	// a codec is active: the native d/8-byte bitmap size per exchanged
	// iteration, and the bytes the allreduce actually shipped after running
	// the reduced mask through the same adaptive raw/delta/bitmap
	// selection (sparse late-iteration masks shrink; dense masks stay at
	// their native size). Both zero with compression off.
	MaskRawBytes, MaskWireBytes int64
}

// Accumulate folds another run's wire accounting into w (Enabled is OR-ed).
func (w *WireStats) Accumulate(other WireStats) {
	w.Enabled = w.Enabled || other.Enabled
	w.RawBytes += other.RawBytes
	w.CompressedBytes += other.CompressedBytes
	w.SchemeRaw += other.SchemeRaw
	w.SchemeDelta += other.SchemeDelta
	w.SchemeBitmap += other.SchemeBitmap
	w.MemoHits += other.MemoHits
	w.CodecBytes += other.CodecBytes
	w.CodecSeconds += other.CodecSeconds
	w.PairRawBytes += other.PairRawBytes
	w.PairWireBytes += other.PairWireBytes
	w.MaskRawBytes += other.MaskRawBytes
	w.MaskWireBytes += other.MaskWireBytes
}

// Savings returns the fraction of raw bytes eliminated by the codec
// (negative when framing overhead exceeded the compression win).
func (w WireStats) Savings() float64 {
	if w.RawBytes == 0 {
		return 0
	}
	return 1 - float64(w.CompressedBytes)/float64(w.RawBytes)
}

// ExchangeStats summarizes the inter-rank normal-vertex exchange of a run:
// the configured policy, the per-iteration strategy split the policy chose,
// and the counters that separate the all-pairs and butterfly regimes —
// message count (p−1 vs ~log2 p per rank per iteration), bytes relayed
// through intermediate ranks, and the largest message the timing model saw.
type ExchangeStats struct {
	Strategy string // configured policy: "allpairs", "butterfly" or "hybrid"
	// AllPairsIterations/ButterflyIterations count the iterations executed
	// with each strategy. Fixed configurations put every iteration on one
	// side; the hybrid policy splits them by the per-iteration cost model.
	AllPairsIterations, ButterflyIterations int64
	// HopsPerIteration is the largest number of sequential communication
	// rounds any iteration used: 1 for all-pairs, log2(q) for a
	// power-of-two butterfly, log2(q)+2 with the non-power-of-two cleanup
	// hops.
	HopsPerIteration int
	// Messages counts inter-rank point-to-point messages across all ranks
	// and iterations (empty payloads included — they still cross the NIC).
	Messages int64
	// ForwardedBytes is the fixed-width equivalent of ids relayed on behalf
	// of other ranks — the volume the butterfly pays for its fewer, larger
	// messages. Zero for all-pairs.
	ForwardedBytes int64
	// MaxMessageBytes is the largest per-message size the timing model saw
	// (work amplification applied) — the number that decides where on the
	// §VI-A1 efficiency curve the exchange lands.
	MaxMessageBytes int64
	// PredictedSeconds sums the policy cost model's per-iteration
	// remote-normal predictions — against the run's actual
	// Parts.RemoteNormal it measures how well the model tracks the
	// simulated network.
	PredictedSeconds float64
	// HiddenCodecSeconds is the codec compute the pipelined butterfly hid
	// under concurrent hop transfers across the run — time that would
	// appear in RemoteNormal with PipelineHops off. Always at most the
	// run's total codec seconds: overlap hides time, never creates it.
	HiddenCodecSeconds float64
	// PipelineStalls counts pipeline steps where a hop's codec or NVLink
	// stage outlasted the transfer it overlapped — the exchange was
	// compute- or staging-bound there, so a faster codec or NVLink (not a
	// faster network) is what would help.
	PipelineStalls int64
	// NVLinkSeconds is the hierarchical exchange's NVLink tier across the
	// run — the intra-rank aggregation plus the send/recv staging copies
	// that ride the exchange schedule as a third pipeline resource.
	// HiddenNVLinkSeconds is the part the pipelined butterfly absorbed
	// under concurrent hop transfers and codec stages (mirroring
	// HiddenCodecSeconds; at most NVLinkSeconds); the exposed remainder is
	// charged to the run's LocalComm breakdown component — the
	// pre-hierarchy home of staging time — never RemoteNormal. Both zero
	// with Options.FlatExchange or at one GPU per rank.
	NVLinkSeconds, HiddenNVLinkSeconds float64
	// MaskFoldSavedSeconds is the delegate-mask allreduce time saved by
	// folding its chunked reduction into the pipelined butterfly's hop
	// steps — the serial reduction cost minus the fold's marginal elapsed
	// delta, summed over iterations where the fold won (never negative).
	MaskFoldSavedSeconds float64
	// CalibrationAllPairs/CalibrationButterfly are the session's final
	// predicted-vs-actual EWMA factors per strategy (1 ≈ the cost model
	// tracked the simulated network exactly; 0 means the strategy never
	// ran, so no feedback accumulated). Subsequent predictions are scaled
	// by them, tightening hybrid decisions near the crossover.
	CalibrationAllPairs, CalibrationButterfly float64
	// SkewEWMA/WireRatioEWMA are the session's final partition-skew and
	// wire-over-raw ratio feedback (policy.go). Together with the
	// calibration factors they form the core.PolicySnapshot a later query
	// can warm-start from (0 means the run recorded no feedback).
	SkewEWMA, WireRatioEWMA float64
}

// Accumulate folds another run's exchange accounting into e. Strategy is
// taken from the other run when unset (all runs of one engine share it).
func (e *ExchangeStats) Accumulate(other ExchangeStats) {
	if e.Strategy == "" {
		e.Strategy = other.Strategy
	}
	if other.HopsPerIteration > e.HopsPerIteration {
		e.HopsPerIteration = other.HopsPerIteration
	}
	e.AllPairsIterations += other.AllPairsIterations
	e.ButterflyIterations += other.ButterflyIterations
	e.Messages += other.Messages
	e.ForwardedBytes += other.ForwardedBytes
	if other.MaxMessageBytes > e.MaxMessageBytes {
		e.MaxMessageBytes = other.MaxMessageBytes
	}
	e.PredictedSeconds += other.PredictedSeconds
	e.HiddenCodecSeconds += other.HiddenCodecSeconds
	e.PipelineStalls += other.PipelineStalls
	e.NVLinkSeconds += other.NVLinkSeconds
	e.HiddenNVLinkSeconds += other.HiddenNVLinkSeconds
	e.MaskFoldSavedSeconds += other.MaskFoldSavedSeconds
	// Calibration factors are per-run session state, not additive: keep the
	// most recent run's final factors.
	if other.CalibrationAllPairs != 0 {
		e.CalibrationAllPairs = other.CalibrationAllPairs
	}
	if other.CalibrationButterfly != 0 {
		e.CalibrationButterfly = other.CalibrationButterfly
	}
	if other.SkewEWMA != 0 {
		e.SkewEWMA = other.SkewEWMA
	}
	if other.WireRatioEWMA != 0 {
		e.WireRatioEWMA = other.WireRatioEWMA
	}
}

// FaultStats counts the fault-tolerance machinery's activity at the service
// level: faults the injector fired, retries the retry policy spent, runs that
// fell back to the degraded exchange, and runs that exhausted retries and
// surfaced a typed error. All zero on the fault-free fast path.
type FaultStats struct {
	// Injected is the number of fault decisions the armed injector fired
	// across all attempts of the accounted queries.
	Injected int64
	// Retries counts re-executions after a contained fault (first attempts
	// are not retries: a query that succeeds immediately contributes 0).
	Retries int64
	// Degraded counts attempts re-run with the degraded configuration
	// (flat all-pairs exchange, pipelining off).
	Degraded int64
	// Exhausted counts queries that spent every attempt and returned the
	// typed error to the caller.
	Exhausted int64
	// Timeouts counts queries that ended on a per-query deadline
	// (context.DeadlineExceeded), which the retry policy never retries.
	Timeouts int64
}

// Accumulate folds other into f.
func (f *FaultStats) Accumulate(other FaultStats) {
	f.Injected += other.Injected
	f.Retries += other.Retries
	f.Degraded += other.Degraded
	f.Exhausted += other.Exhausted
	f.Timeouts += other.Timeouts
}

// RunResult is the outcome of one BFS execution.
type RunResult struct {
	Source int64
	// Epoch identifies the graph version the query ran against (0 for plans
	// built outside an epoch-versioned service). Queries admitted before an
	// atomic epoch swap finish — and report — their admission epoch.
	Epoch         uint64
	Iterations    int
	SimSeconds    float64
	TEPSEdges     int64 // edge count used for the rate (Graph500: m/2)
	EdgesScanned  int64 // actual traversal work
	DupsRemoved   int64 // uniquify hits
	Parts         Breakdown
	PerIteration  []IterationStats
	Levels        []int32 // hop distances per global vertex (-1 unreachable)
	Parents       []int64 // BFS-tree parents (-1 unreachable); nil unless collected
	ParentPairs   int64   // pairs moved by the post-BFS parent resolution
	DelegateComms int     // iterations that exchanged delegate masks
	Wire          WireStats
	Exchange      ExchangeStats
}

// GTEPS returns the traversal rate in giga-traversed-edges per second using
// the Graph500 convention (TEPSEdges / elapsed).
func (r *RunResult) GTEPS() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return float64(r.TEPSEdges) / r.SimSeconds / 1e9
}

// MultipleIterations reports whether the run executed more than one
// iteration — the paper's filter for reported data points ("only the ones
// that executed for more than 1 iteration are considered").
func (r *RunResult) MultipleIterations() bool { return r.Iterations > 1 }

// HiddenCodecRatio returns the fraction of the run's codec compute the
// pipelined exchange hid under concurrent hop transfers — 1 means every
// codec second overlapped a transfer, 0 means it all sat on the critical
// path (or no codec work ran).
func (r *RunResult) HiddenCodecRatio() float64 {
	if r.Wire.CodecSeconds <= 0 {
		return 0
	}
	return r.Exchange.HiddenCodecSeconds / r.Wire.CodecSeconds
}

// PolicyError returns the exchange cost model's relative prediction error
// over the run: |Σpredicted − actual| / actual against the remote-normal
// time. 0 when the run had no remote-normal time.
func (r *RunResult) PolicyError() float64 {
	if r.Parts.RemoteNormal <= 0 {
		return 0
	}
	return math.Abs(r.Exchange.PredictedSeconds-r.Parts.RemoteNormal) / r.Parts.RemoteNormal
}

// GeoMean returns the geometric mean of positive values; zero for empty
// input. The paper reports geometric means of traversal rates.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var logSum float64
	n := 0
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Aggregate summarizes a batch of runs the way the paper reports data
// points: filter out ≤1-iteration runs, then geometric-mean the rates and
// arithmetic-mean the breakdowns.
type Aggregate struct {
	Runs       int
	Filtered   int // runs dropped by the >1-iteration rule
	GTEPS      float64
	MeanMS     float64
	Iterations float64 // mean iterations
	Parts      Breakdown
}

// Aggregate reduces results into a reportable data point.
func AggregateRuns(results []*RunResult) Aggregate {
	var agg Aggregate
	var rates []float64
	var times []float64
	kept := 0
	for _, r := range results {
		agg.Runs++
		if !r.MultipleIterations() {
			agg.Filtered++
			continue
		}
		kept++
		rates = append(rates, r.GTEPS())
		times = append(times, r.SimSeconds)
		agg.Iterations += float64(r.Iterations)
		agg.Parts.Add(r.Parts)
	}
	if kept == 0 {
		return agg
	}
	agg.GTEPS = GeoMean(rates)
	var sum float64
	for _, t := range times {
		sum += t
	}
	agg.MeanMS = sum / float64(kept) * 1e3
	agg.Iterations /= float64(kept)
	agg.Parts = Breakdown{
		Computation:    agg.Parts.Computation / float64(kept),
		LocalComm:      agg.Parts.LocalComm / float64(kept),
		RemoteNormal:   agg.Parts.RemoteNormal / float64(kept),
		RemoteDelegate: agg.Parts.RemoteDelegate / float64(kept),
	}
	return agg
}
