// Package simnet models the cluster interconnect of the paper's testbed
// (§VI-A1): NVLink between GPUs and CPU within a socket (40 GB/s each
// direction), one EDR 100 Gb/s InfiniBand NIC per socket (= per MPI rank)
// into a FatTree, message-size-dependent effective bandwidth with an optimum
// near 4 MB, and the Ray-specific constraint that NIC↔GPU traffic stages
// through CPU memory (no GPUDirect RDMA).
//
// The model converts communication *volumes* (which the functional MPI layer
// counts exactly) into simulated seconds. All times are float64 seconds.
package simnet

import "math"

// Link is a latency/bandwidth pair.
type Link struct {
	Latency   float64 // seconds per message
	Bandwidth float64 // bytes per second
}

// Spec describes the cluster fabric.
type Spec struct {
	Name string

	// NVLink is the GPU↔CPU (and GPU↔GPU peer) link within a socket.
	NVLink Link
	// IB is the per-rank (per-socket) NIC into the inter-node fabric.
	IB Link

	// GPUDirectRDMA, when false (Ray), charges an extra staging copy over
	// NVLink on each side of every remote transfer (§VI-A2 workaround:
	// cudaMemcpyAsync to CPU memory, MPI from CPU buffers).
	GPUDirectRDMA bool

	// IallreducePenalty multiplies the bandwidth term of non-blocking
	// Iallreduce: the paper observed the fresh MPI_Iallreduce on Ray was
	// unoptimized and slower than blocking Allreduce at scale (§VI-B).
	IallreducePenalty float64

	// SmallMsgPlateau is the efficiency floor for messages under 2 MB,
	// where "the network appears to do a better job with caching, and the
	// differences between message sizes are not that significant".
	SmallMsgPlateau float64
}

// Ray returns the model of LLNL's CORAL early-access system: NVLink 40 GB/s,
// EDR IB ≈ 12.5 GB/s per socket, no GPU RDMA, unoptimized Iallreduce.
func Ray() Spec {
	return Spec{
		Name:              "Ray (CORAL EA)",
		NVLink:            Link{Latency: 2e-6, Bandwidth: 40e9},
		IB:                Link{Latency: 3e-6, Bandwidth: 12.5e9},
		GPUDirectRDMA:     false,
		IallreducePenalty: 2.2,
		SmallMsgPlateau:   0.72,
	}
}

// Efficiency returns the fraction of peak IB bandwidth achieved at a given
// message size, reproducing the §VI-A1 sweep: a plateau below 2 MB, a ramp
// to the 4 MB optimum, and a slight decline toward 16 MB.
func (s Spec) Efficiency(msgBytes int64) float64 {
	const (
		mb    = 1 << 20
		small = 2 * mb
		opt   = 4 * mb
		large = 16 * mb
	)
	b := float64(msgBytes)
	switch {
	case msgBytes <= 0:
		return s.SmallMsgPlateau
	case b <= small:
		// Gentle rise within the cached-small-message regime.
		f := math.Log2(1+b/float64(mb)) / math.Log2(3) // 0 → 1 over (0, 2MB]
		return s.SmallMsgPlateau + 0.08*f
	case b <= opt:
		// Ramp from the plateau edge to peak at 4 MB.
		f := (b - small) / (opt - small)
		return (s.SmallMsgPlateau + 0.08) + (1.0-(s.SmallMsgPlateau+0.08))*f
	case b <= large:
		// Slight decline past the optimum.
		f := (b - opt) / (large - opt)
		return 1.0 - 0.08*f
	default:
		return 0.92
	}
}

// PointToPoint returns the time for one rank to push total bytes through its
// NIC using messages of msgBytes each (the engine packs sends into ~4 MB
// messages by default).
func (s Spec) PointToPoint(totalBytes, msgBytes int64) float64 {
	if totalBytes <= 0 {
		return 0
	}
	if msgBytes <= 0 || msgBytes > totalBytes {
		msgBytes = totalBytes
	}
	msgs := (totalBytes + msgBytes - 1) / msgBytes
	eff := s.Efficiency(msgBytes)
	return float64(msgs)*s.IB.Latency + float64(totalBytes)/(s.IB.Bandwidth*eff)
}

// ButterflyHop returns the time of one hop of a log2(p)-hop butterfly
// exchange: the rank pushes hopBytes to its hypercube partner in messages of
// at most msgCap bytes. Aggregating p/2 destinations' payloads into one hop
// message is what lifts the exchange out of the sub-2 MB efficiency plateau
// that the p−1 all-pairs sends occupy (§VI-A1's ramp to the 4 MB optimum).
// An empty hop still costs the message latency — the hop is a synchronized
// pairwise exchange, unlike an all-pairs send that can simply be skipped.
func (s Spec) ButterflyHop(hopBytes, msgCap int64) float64 {
	if hopBytes <= 0 {
		return s.IB.Latency
	}
	if msgCap <= 0 || msgCap > hopBytes {
		msgCap = hopBytes
	}
	return s.PointToPoint(hopBytes, msgCap)
}

// Butterfly returns the total time of one iteration's butterfly exchange:
// the sum of its sequential hops (each hop must complete before the next
// forwards what it received). The hop vector is the caller's profile — for
// a power-of-two rank count the log2(p) hypercube hops, and for the
// generalized Bruck-style form a pre cleanup hop (remainder ranks fold
// into their proxies), the log2(q) hypercube hops, and a post cleanup hop
// (proxies deliver to their remainder partners); cleanup hops follow the
// same per-hop accounting.
func (s Spec) Butterfly(hopBytes []int64, msgCap int64) float64 {
	var t float64
	for _, b := range hopBytes {
		t += s.ButterflyHop(b, msgCap)
	}
	return t
}

// PipelineTiming breaks one pipelined butterfly exchange into its parts.
// The invariant Total = WireSeconds + CodecSeconds + NVLinkSeconds −
// HiddenCodec − HiddenNVLink holds by construction: overlap can hide time,
// never create it.
type PipelineTiming struct {
	// Total is the elapsed time of the software-pipelined exchange.
	Total float64
	// WireSeconds is the sum of the sequential hop transfer times — what the
	// exchange would cost with free codec kernels — including any per-hop
	// WireExtra seconds riding the NIC alongside the hop payloads.
	WireSeconds float64
	// CodecSeconds is the total per-hop codec compute (the pre-hop encode
	// plus every hop's decode/merge/re-encode stage), hidden or not.
	CodecSeconds float64
	// HiddenCodec is the codec compute that ran under a concurrent hop
	// transfer (or an outlasting NVLink stage) and therefore does not appear
	// in Total.
	HiddenCodec float64
	// NVLinkSeconds is the total NVLink stage time (the hierarchical
	// exchange's aggregation and per-hop staging copies), hidden or not.
	// Zero for the flat two-resource schedule.
	NVLinkSeconds float64
	// HiddenNVLink is the NVLink stage time that ran under a concurrent hop
	// transfer or codec stage and therefore does not appear in Total.
	HiddenNVLink float64
	// Stalls counts pipeline steps where a compute or NVLink stage outlasted
	// the concurrent transfer — the wire sat idle waiting.
	Stalls int64
}

// ExchangeSchedule is the input of the three-resource pipeline model
// (PipelinedExchange): per-hop wire volumes plus the codec and NVLink
// stages each hop's arrival triggers.
type ExchangeSchedule struct {
	// HopBytes is the per-hop wire profile (cleanup hops included, exactly
	// as Butterfly takes it).
	HopBytes []int64
	// HopCodec[k] is the codec compute triggered by hop k's arrival — its
	// decode plus the re-encode feeding hop k+1. May be shorter than
	// HopBytes (missing entries are zero).
	HopCodec []float64
	// HopNVLink[k] is the NVLink stage triggered by hop k's arrival — the
	// received payload's staging copy plus the staging of hop k+1's
	// outgoing message. May be shorter than HopBytes.
	HopNVLink []float64
	// PreCodec is the encode of the first hop's payload; PreNVLink is the
	// intra-rank aggregation plus the first hop's send staging. Both precede
	// all communication and cannot be hidden.
	PreCodec, PreNVLink float64
	// WireExtra[k] adds seconds to hop k's transfer on the NIC resource —
	// the chunked delegate-mask allreduce rides here, filling wire idle time
	// on compute-bound steps. May be shorter than HopBytes.
	WireExtra []float64
	// MsgCap is the per-message packing cap (Options.MessageBytes).
	MsgCap int64
}

// PipelinedExchange returns the timing of one iteration's hop exchange with
// three overlappable resources — NIC transfers, codec compute, NVLink
// staging copies: hop k's transfer runs concurrently with hop k−1's codec
// stage AND hop k−1's NVLink stage, so each pipeline step costs
// max(wire_k, codec_{k−1}, nvlink_{k−1}) instead of their sum. The pre
// stages (first-hop encode and aggregation/staging) precede all
// communication; the last hop's codec and NVLink stages have only each
// other left to overlap. Hidden time is attributed per step to the
// non-pacing resources: whichever resource paces the step is exposed, the
// others ran entirely under it.
func (s Spec) PipelinedExchange(sched ExchangeSchedule) PipelineTiming {
	pt := PipelineTiming{
		Total:         sched.PreCodec + sched.PreNVLink,
		CodecSeconds:  sched.PreCodec,
		NVLinkSeconds: sched.PreNVLink,
	}
	var prevC, prevN float64 // the previous hop's codec/NVLink stages, still in flight
	for k, b := range sched.HopBytes {
		w := s.ButterflyHop(b, sched.MsgCap)
		if k < len(sched.WireExtra) {
			w += sched.WireExtra[k]
		}
		pt.WireSeconds += w
		var c, n float64
		if k < len(sched.HopCodec) {
			c = sched.HopCodec[k]
			pt.CodecSeconds += c
		}
		if k < len(sched.HopNVLink) {
			n = sched.HopNVLink[k]
			pt.NVLinkSeconds += n
		}
		if k == 0 {
			pt.Total += w
		} else {
			switch {
			case w >= prevC && w >= prevN: // wire paces: both stages fully hidden
				pt.Total += w
				pt.HiddenCodec += prevC
				pt.HiddenNVLink += prevN
			case prevC >= prevN: // codec paces: wire's worth of it hides, NVLink fully
				pt.Total += prevC
				pt.HiddenCodec += w
				pt.HiddenNVLink += prevN
				pt.Stalls++
			default: // NVLink paces
				pt.Total += prevN
				pt.HiddenCodec += prevC
				pt.HiddenNVLink += w
				pt.Stalls++
			}
		}
		prevC, prevN = c, n
	}
	// Tail: the last hop's codec and NVLink stages overlap only each other.
	if prevC >= prevN {
		pt.Total += prevC
		pt.HiddenNVLink += prevN
	} else {
		pt.Total += prevN
		pt.HiddenCodec += prevC
	}
	return pt
}

// ButterflyPipelined returns the timing of one iteration's butterfly
// exchange with hop communication overlapped against per-hop codec compute
// (the paper's §VI-B compute/communication overlap applied inside the
// exchange): hop k's transfer runs concurrently with hop k−1's
// decode/merge/re-encode stage, so each pipeline step costs
// max(wire_k, codec_{k−1}) instead of their sum. hopBytes is the per-hop
// wire profile (cleanup hops included, exactly as Butterfly takes it);
// hopCodec[k] is the codec compute triggered by hop k's arrival — its
// decode plus the re-encode feeding hop k+1 — and preCodec is the encode of
// the first hop's payload, which precedes all communication and cannot be
// hidden. The last hop's codec stage has nothing left to hide under, so it
// is charged in full after the final transfer. Exactly PipelinedExchange
// with empty NVLink stages.
func (s Spec) ButterflyPipelined(hopBytes []int64, hopCodec []float64, preCodec float64, msgCap int64) PipelineTiming {
	return s.PipelinedExchange(ExchangeSchedule{
		HopBytes: hopBytes,
		HopCodec: hopCodec,
		PreCodec: preCodec,
		MsgCap:   msgCap,
	})
}

// Staging returns the NVLink copy time for moving bytes between GPU and CPU
// memory (charged once per side per remote transfer when GPUDirectRDMA is
// false).
func (s Spec) Staging(bytes int64) float64 {
	if bytes <= 0 || s.GPUDirectRDMA {
		return 0
	}
	return s.NVLink.Latency + float64(bytes)/s.NVLink.Bandwidth
}

// LocalReduce returns the time for the local phase of the delegate mask
// reduction (§V-A): pgpu-1 peer GPUs push their masks to GPU0 over NVLink,
// GPU0 ORs them in parallel (the OR cost is charged as GPU compute by the
// engine; this covers the data movement).
func (s Spec) LocalReduce(maskBytes int64, gpusPerRank int) float64 {
	if gpusPerRank <= 1 || maskBytes <= 0 {
		return 0
	}
	// Pushes serialize on GPU0's ingress link.
	return s.NVLink.Latency + float64(gpusPerRank-1)*float64(maskBytes)/s.NVLink.Bandwidth
}

// LocalBroadcast mirrors LocalReduce for distributing the reduced mask back
// to peer GPUs.
func (s Spec) LocalBroadcast(maskBytes int64, gpusPerRank int) float64 {
	return s.LocalReduce(maskBytes, gpusPerRank)
}

// Allreduce returns the time of the global delegate-mask OR-reduction across
// ranks, tree-structured (2·log2(ranks) stages of maskBytes each, matching
// the paper's d·log(p_rank)/4·g accounting). blocking selects MPI_Allreduce
// vs MPI_Iallreduce; the non-blocking variant pays IallreducePenalty on
// bandwidth but may be overlapped by the engine.
func (s Spec) Allreduce(maskBytes int64, ranks int, blocking bool) float64 {
	if ranks <= 1 || maskBytes <= 0 {
		return 0
	}
	stages := 2 * math.Ceil(math.Log2(float64(ranks)))
	eff := s.Efficiency(maskBytes)
	bw := s.IB.Bandwidth * eff
	if !blocking {
		bw /= s.IallreducePenalty
	}
	return stages * (s.IB.Latency + float64(maskBytes)/bw)
}

// LocalExchange returns the time for the Local-All2All staging step (§V-B):
// GPUs within a rank exchange their outgoing normal-vertex bins over NVLink
// so that remote traffic only flows between same-slot GPUs.
func (s Spec) LocalExchange(bytes int64, gpusPerRank int) float64 {
	if gpusPerRank <= 1 || bytes <= 0 {
		return 0
	}
	return s.NVLink.Latency + float64(bytes)/s.NVLink.Bandwidth
}
