package simnet

import (
	"math"
	"testing"
)

// scheduleCases are assorted three-resource profiles: wire-bound,
// codec-bound, NVLink-bound, mixed pacing, cleanup-hop shapes, and
// mask-allreduce WireExtra riders.
func scheduleCases() []struct {
	name  string
	sched ExchangeSchedule
} {
	const msgCap = 4 << 20
	return []struct {
		name  string
		sched ExchangeSchedule
	}{
		{"empty", ExchangeSchedule{MsgCap: msgCap}},
		{"wire-only", ExchangeSchedule{
			HopBytes: []int64{1 << 20, 2 << 20, 512 << 10}, MsgCap: msgCap}},
		{"nvlink-only", ExchangeSchedule{
			HopBytes:  []int64{0, 0, 0},
			HopNVLink: []float64{2e-4, 3e-4, 1e-4},
			PreNVLink: 5e-5, MsgCap: msgCap}},
		{"three-way", ExchangeSchedule{
			HopBytes:  []int64{1 << 20, 1 << 20, 1 << 20, 1 << 20},
			HopCodec:  []float64{8e-5, 4e-4, 2e-5, 6e-5},
			HopNVLink: []float64{3e-4, 5e-5, 9e-5, 2e-4},
			PreCodec:  4e-5, PreNVLink: 7e-5, MsgCap: msgCap}},
		{"nvlink-bound", ExchangeSchedule{
			HopBytes:  []int64{4 << 10, 4 << 10, 4 << 10},
			HopCodec:  []float64{1e-5, 1e-5, 1e-5},
			HopNVLink: []float64{1e-3, 1e-3, 1e-3},
			PreNVLink: 1e-3, MsgCap: msgCap}},
		{"short-slices", ExchangeSchedule{
			HopBytes:  []int64{2 << 20, 1 << 20, 1 << 20, 2 << 20},
			HopCodec:  []float64{1e-4},
			HopNVLink: []float64{2e-4, 3e-5},
			MsgCap:    msgCap}},
		{"with-extra", ExchangeSchedule{
			HopBytes:  []int64{1 << 20, 1 << 20, 1 << 20},
			HopCodec:  []float64{3e-4, 3e-4, 3e-4},
			HopNVLink: []float64{1e-4, 1e-4, 1e-4},
			WireExtra: []float64{5e-5, 5e-5, 5e-5},
			PreCodec:  2e-5, MsgCap: msgCap}},
	}
}

// TestScheduleConservation: on every profile the exposed time plus the
// hidden time equals the full resource spend — Total = Wire + Codec +
// NVLink − HiddenCodec − HiddenNVLink — and Total never drops below any
// single resource's full serialization nor above the all-serial sum.
func TestScheduleConservation(t *testing.T) {
	s := Ray()
	for _, tc := range scheduleCases() {
		pt := s.PipelinedExchange(tc.sched)
		want := pt.WireSeconds + pt.CodecSeconds + pt.NVLinkSeconds - pt.HiddenCodec - pt.HiddenNVLink
		if math.Abs(pt.Total-want) > 1e-15 {
			t.Fatalf("%s: Total %g != wire %g + codec %g + nvlink %g - hiddenC %g - hiddenN %g",
				tc.name, pt.Total, pt.WireSeconds, pt.CodecSeconds, pt.NVLinkSeconds,
				pt.HiddenCodec, pt.HiddenNVLink)
		}
		for _, floor := range []float64{pt.WireSeconds, pt.CodecSeconds, pt.NVLinkSeconds} {
			if pt.Total < floor-1e-15 {
				t.Fatalf("%s: Total %g below a full serialization %g — overlap created time",
					tc.name, pt.Total, floor)
			}
		}
		if serial := pt.WireSeconds + pt.CodecSeconds + pt.NVLinkSeconds; pt.Total > serial+1e-15 {
			t.Fatalf("%s: Total %g above the all-serial sum %g", tc.name, pt.Total, serial)
		}
		if pt.HiddenCodec < 0 || pt.HiddenNVLink < 0 {
			t.Fatalf("%s: negative hidden time (%g codec, %g nvlink)",
				tc.name, pt.HiddenCodec, pt.HiddenNVLink)
		}
		if pt.HiddenNVLink > pt.NVLinkSeconds+1e-15 {
			t.Fatalf("%s: hidden NVLink %g above total NVLink %g",
				tc.name, pt.HiddenNVLink, pt.NVLinkSeconds)
		}
	}
}

// TestScheduleZeroNVLinkMatchesButterflyPipelined: with no NVLink stages the
// three-resource scheduler degenerates bit-exactly to the two-resource
// pipelined butterfly.
func TestScheduleZeroNVLinkMatchesButterflyPipelined(t *testing.T) {
	s := Ray()
	const msgCap = 4 << 20
	hops := []int64{1 << 20, 0, 3 << 20, 256 << 10}
	codec := []float64{1e-4, 3e-4, 0, 5e-5}
	const pre = 2e-5
	a := s.PipelinedExchange(ExchangeSchedule{HopBytes: hops, HopCodec: codec, PreCodec: pre, MsgCap: msgCap})
	b := s.ButterflyPipelined(hops, codec, pre, msgCap)
	if a != b {
		t.Fatalf("zero-NVLink schedule diverged from ButterflyPipelined:\n%+v\n%+v", a, b)
	}
	if a.NVLinkSeconds != 0 || a.HiddenNVLink != 0 {
		t.Fatalf("zero-NVLink schedule charged NVLink time: %+v", a)
	}
}

// TestScheduleWireExtraMonotonic: riding extra seconds on the NIC (the
// chunked delegate-mask allreduce) never makes the schedule faster, and the
// added exposure never exceeds the extra itself — the fold's never-worse
// guarantee in core depends on both directions.
func TestScheduleWireExtraMonotonic(t *testing.T) {
	s := Ray()
	for _, tc := range scheduleCases() {
		if len(tc.sched.HopBytes) == 0 {
			continue
		}
		base := s.PipelinedExchange(tc.sched)
		for _, per := range []float64{1e-6, 5e-5, 5e-4} {
			withExtra := tc.sched
			withExtra.WireExtra = make([]float64, len(tc.sched.HopBytes))
			var sum float64
			for k := range withExtra.WireExtra {
				e := per
				if k < len(tc.sched.WireExtra) {
					e += tc.sched.WireExtra[k]
				}
				withExtra.WireExtra[k] = e
				sum += per
			}
			comb := s.PipelinedExchange(withExtra)
			if comb.Total < base.Total-1e-15 {
				t.Fatalf("%s per=%g: extra made the schedule faster: %g vs %g",
					tc.name, per, comb.Total, base.Total)
			}
			if eff := comb.Total - base.Total; eff > sum+1e-15 {
				t.Fatalf("%s per=%g: exposure %g exceeds the added extra %g",
					tc.name, per, eff, sum)
			}
		}
	}
}
