package simnet

import (
	"math"
	"testing"
)

// TestButterflyHop: empty hops cost one message latency; non-empty hops
// match PointToPoint at the capped message size.
func TestButterflyHop(t *testing.T) {
	s := Ray()
	if got := s.ButterflyHop(0, 4<<20); got != s.IB.Latency {
		t.Fatalf("empty hop = %g, want the message latency %g", got, s.IB.Latency)
	}
	const b = 6 << 20
	if got, want := s.ButterflyHop(b, 4<<20), s.PointToPoint(b, 4<<20); got != want {
		t.Fatalf("capped hop = %g, want %g", got, want)
	}
	// A hop below the cap packs into a single message.
	if got, want := s.ButterflyHop(1<<20, 4<<20), s.PointToPoint(1<<20, 1<<20); got != want {
		t.Fatalf("small hop = %g, want %g", got, want)
	}
}

// TestButterflySumsHops: the iteration time is the sum of sequential hops.
func TestButterflySumsHops(t *testing.T) {
	s := Ray()
	hops := []int64{1 << 20, 0, 3 << 20}
	var want float64
	for _, b := range hops {
		want += s.ButterflyHop(b, 4<<20)
	}
	if got := s.Butterfly(hops, 4<<20); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Butterfly = %g, want %g", got, want)
	}
}

// TestButterflyCleanupHops: the generalized (non-power-of-two) butterfly
// prepends and appends a cleanup hop to the hypercube profile. The model is
// the same per-hop accounting — each cleanup hop is one more sequential
// round, and an idle round (no remainder traffic anywhere) still costs its
// synchronizing message latency.
func TestButterflyCleanupHops(t *testing.T) {
	s := Ray()
	const msgCap = 4 << 20
	// p=6 → q=4: pre + log2(4)=2 hypercube hops + post.
	hyper := []int64{512 << 10, 512 << 10}
	withCleanup := append(append([]int64{1 << 20}, hyper...), 1<<20)
	want := s.Butterfly(hyper, msgCap) + s.ButterflyHop(1<<20, msgCap)*2
	if got := s.Butterfly(withCleanup, msgCap); math.Abs(got-want) > 1e-15 {
		t.Fatalf("cleanup-hop profile = %g, want hypercube + 2 cleanup hops = %g", got, want)
	}
	// Idle cleanup hops degrade gracefully to pure latency.
	idle := []int64{0, 512 << 10, 512 << 10, 0}
	want = s.Butterfly(hyper, msgCap) + 2*s.IB.Latency
	if got := s.Butterfly(idle, msgCap); math.Abs(got-want) > 1e-15 {
		t.Fatalf("idle cleanup hops = %g, want %g", got, want)
	}
}

// TestButterflyBeatsAllPairsSmallMessages reproduces the regime the topology
// targets: the same total volume split into p−1 plateau-sized messages costs
// more than log2(p) aggregated hops, because the aggregated messages climb
// the §VI-A1 efficiency ramp and pay far fewer latencies.
func TestButterflyBeatsAllPairsSmallMessages(t *testing.T) {
	s := Ray()
	const (
		ranks = 32
		vol   = 256 << 10 // 256 kB per rank per iteration: 8 kB per all-pairs message
	)
	allPairs := s.PointToPoint(vol, vol/(ranks-1))
	// The butterfly relays: each of the log2(32)=5 hops carries roughly
	// half the per-rank aggregate (own volume plus relayed payloads).
	hops := make([]int64, 5)
	for i := range hops {
		hops[i] = vol / 2
	}
	butterfly := s.Butterfly(hops, 4<<20)
	if butterfly >= allPairs {
		t.Fatalf("butterfly %g s not below all-pairs %g s in the plateau regime", butterfly, allPairs)
	}
}
