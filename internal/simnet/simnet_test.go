package simnet

import (
	"testing"
	"testing/quick"
)

func TestEfficiencyShape(t *testing.T) {
	s := Ray()
	const mb = 1 << 20
	// Peak at 4 MB (§VI-A1: "the optimal message size is about 4 MB").
	peak := s.Efficiency(4 * mb)
	for _, size := range []int64{128 << 10, 512 << 10, 1 * mb, 2 * mb, 8 * mb, 16 * mb} {
		if e := s.Efficiency(size); e > peak {
			t.Fatalf("efficiency(%d)=%.3f exceeds 4MB peak %.3f", size, e, peak)
		}
	}
	if peak != 1.0 {
		t.Fatalf("peak efficiency = %.3f, want 1.0", peak)
	}
	// Below 2 MB differences are small (the caching plateau).
	lo, hi := s.Efficiency(128<<10), s.Efficiency(2*mb)
	if hi-lo > 0.15 {
		t.Fatalf("small-message regime too steep: %.3f → %.3f", lo, hi)
	}
	// Decline past the optimum is mild.
	if e := s.Efficiency(16 * mb); e < 0.85 {
		t.Fatalf("16MB efficiency %.3f too low", e)
	}
}

func TestQuickEfficiencyBounds(t *testing.T) {
	s := Ray()
	f := func(size uint32) bool {
		e := s.Efficiency(int64(size))
		return e > 0 && e <= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPointToPoint(t *testing.T) {
	s := Ray()
	if s.PointToPoint(0, 4<<20) != 0 {
		t.Fatal("zero bytes should cost zero")
	}
	// 1 GB in 4 MB messages ≈ 1e9/12.5e9 s plus latencies; must be within
	// 2× of the pure bandwidth bound.
	tm := s.PointToPoint(1<<30, 4<<20)
	bound := float64(1<<30) / s.IB.Bandwidth
	if tm < bound || tm > 2*bound {
		t.Fatalf("p2p time %g outside [%g, %g]", tm, bound, 2*bound)
	}
	// 4 MB messages beat 128 kB messages for bulk data (latency + eff).
	if s.PointToPoint(1<<30, 4<<20) >= s.PointToPoint(1<<30, 128<<10) {
		t.Fatal("4MB messages should beat 128kB for bulk transfers")
	}
}

func TestStagingOnlyWithoutRDMA(t *testing.T) {
	s := Ray()
	if s.Staging(1<<20) <= 0 {
		t.Fatal("Ray must charge staging copies")
	}
	s.GPUDirectRDMA = true
	if s.Staging(1<<20) != 0 {
		t.Fatal("RDMA fabric must not charge staging")
	}
}

func TestLocalReduceScalesWithGPUs(t *testing.T) {
	s := Ray()
	if s.LocalReduce(1<<20, 1) != 0 {
		t.Fatal("single GPU needs no local reduce")
	}
	r2 := s.LocalReduce(1<<20, 2)
	r4 := s.LocalReduce(1<<20, 4)
	if r4 <= r2 {
		t.Fatalf("4-GPU local reduce %g should exceed 2-GPU %g", r4, r2)
	}
	if s.LocalBroadcast(1<<20, 4) != r4 {
		t.Fatal("broadcast should mirror reduce")
	}
}

func TestAllreduceTreeGrowth(t *testing.T) {
	s := Ray()
	if s.Allreduce(1<<20, 1, true) != 0 {
		t.Fatal("1 rank needs no allreduce")
	}
	t2 := s.Allreduce(1<<20, 2, true)
	t16 := s.Allreduce(1<<20, 16, true)
	t64 := s.Allreduce(1<<20, 64, true)
	if !(t2 < t16 && t16 < t64) {
		t.Fatalf("allreduce not growing with ranks: %g %g %g", t2, t16, t64)
	}
	// log-ish growth: 64 ranks = 6 doublings ≤ 6× the 2-rank cost.
	if t64 > 6*t2*1.01 {
		t.Fatalf("allreduce growth superlogarithmic: t64=%g t2=%g", t64, t2)
	}
}

func TestIallreducePenalty(t *testing.T) {
	s := Ray()
	br := s.Allreduce(1<<20, 32, true)
	ir := s.Allreduce(1<<20, 32, false)
	if ir <= br {
		t.Fatalf("Iallreduce %g should be slower than Allreduce %g on Ray", ir, br)
	}
}

func TestLocalExchange(t *testing.T) {
	s := Ray()
	if s.LocalExchange(1<<20, 1) != 0 {
		t.Fatal("single GPU rank needs no local exchange")
	}
	if s.LocalExchange(1<<20, 4) <= 0 {
		t.Fatal("local exchange should cost time")
	}
}

// The net1 experiment's headline: sweeping message sizes for a fixed bulk
// volume, 4 MB minimizes transfer time.
func TestOptimalMessageSize(t *testing.T) {
	s := Ray()
	const volume = 256 << 20
	best, bestSize := 1e18, int64(0)
	for _, size := range []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20} {
		if tm := s.PointToPoint(volume, size); tm < best {
			best, bestSize = tm, size
		}
	}
	if bestSize != 4<<20 {
		t.Fatalf("optimal message size = %d, want 4MB", bestSize)
	}
}
