package simnet

import (
	"math"
	"testing"
)

// seqTime is the non-pipelined reference: every hop transfer and every codec
// stage charged end-to-end.
func seqTime(s Spec, hopBytes []int64, hopCodec []float64, preCodec float64, msgCap int64) float64 {
	t := s.Butterfly(hopBytes, msgCap) + preCodec
	for _, c := range hopCodec {
		t += c
	}
	return t
}

// TestPipelinedInvariants: on assorted profiles the pipelined time equals
// wire + codec − hidden, never exceeds the sequential time, and never drops
// below either the pure wire or the pure codec serialization.
func TestPipelinedInvariants(t *testing.T) {
	s := Ray()
	const msgCap = 4 << 20
	cases := []struct {
		name  string
		bytes []int64
		codec []float64
		pre   float64
	}{
		{"empty", nil, nil, 0},
		{"wire-only", []int64{1 << 20, 2 << 20, 512 << 10}, []float64{0, 0, 0}, 0},
		{"codec-only", []int64{0, 0}, []float64{1e-4, 2e-4}, 5e-5},
		{"balanced", []int64{1 << 20, 1 << 20, 1 << 20}, []float64{8e-5, 8e-5, 8e-5}, 4e-5},
		{"codec-bound", []int64{4 << 10, 4 << 10, 4 << 10, 4 << 10}, []float64{1e-3, 1e-3, 1e-3, 1e-3}, 1e-3},
		{"cleanup-shape", []int64{2 << 20, 1 << 20, 1 << 20, 2 << 20}, []float64{1e-4, 5e-5, 5e-5, 1e-4}, 2e-5},
	}
	for _, tc := range cases {
		pt := s.ButterflyPipelined(tc.bytes, tc.codec, tc.pre, msgCap)
		if got, want := pt.Total, pt.WireSeconds+pt.CodecSeconds-pt.HiddenCodec; math.Abs(got-want) > 1e-15 {
			t.Fatalf("%s: Total %g != wire %g + codec %g - hidden %g", tc.name, got, pt.WireSeconds, pt.CodecSeconds, pt.HiddenCodec)
		}
		if seq := seqTime(s, tc.bytes, tc.codec, tc.pre, msgCap); pt.Total > seq+1e-15 {
			t.Fatalf("%s: pipelined %g above sequential %g", tc.name, pt.Total, seq)
		}
		if pt.Total < pt.WireSeconds-1e-15 || pt.Total < pt.CodecSeconds-1e-15 {
			t.Fatalf("%s: pipelined %g below a full serialization (wire %g, codec %g)",
				tc.name, pt.Total, pt.WireSeconds, pt.CodecSeconds)
		}
		if pt.HiddenCodec < 0 || pt.HiddenCodec > pt.CodecSeconds+1e-15 {
			t.Fatalf("%s: hidden codec %g outside [0, %g]", tc.name, pt.HiddenCodec, pt.CodecSeconds)
		}
	}
}

// TestPipelinedZeroCodecMatchesButterfly: with free codec stages the
// pipeline degenerates to the plain sequential-hop model.
func TestPipelinedZeroCodecMatchesButterfly(t *testing.T) {
	s := Ray()
	hops := []int64{1 << 20, 0, 3 << 20, 256 << 10}
	pt := s.ButterflyPipelined(hops, make([]float64, len(hops)), 0, 4<<20)
	if want := s.Butterfly(hops, 4<<20); math.Abs(pt.Total-want) > 1e-15 {
		t.Fatalf("zero-codec pipeline = %g, want Butterfly %g", pt.Total, want)
	}
	if pt.HiddenCodec != 0 || pt.Stalls != 0 {
		t.Fatalf("zero-codec pipeline hid %g s with %d stalls", pt.HiddenCodec, pt.Stalls)
	}
}

// TestPipelinedExactSchedule: a hand-built profile where the schedule is
// easy to compute by hand — the middle transfer hides part of the previous
// codec stage, and a codec-bound step counts as a stall.
func TestPipelinedExactSchedule(t *testing.T) {
	s := Ray()
	const msgCap = 4 << 20
	hops := []int64{1 << 20, 2 << 20, 1 << 20}
	w := make([]float64, len(hops))
	for i, b := range hops {
		w[i] = s.ButterflyHop(b, msgCap)
	}
	codec := []float64{w[1] / 2, 2 * w[2], 1e-4} // hop0's stage half-hides, hop1's stalls
	const pre = 3e-5
	pt := s.ButterflyPipelined(hops, codec, pre, msgCap)
	wantTotal := pre + w[0] + math.Max(w[1], codec[0]) + math.Max(w[2], codec[1]) + codec[2]
	if math.Abs(pt.Total-wantTotal) > 1e-15 {
		t.Fatalf("Total = %g, want %g", pt.Total, wantTotal)
	}
	if wantHidden := codec[0] + w[2]; math.Abs(pt.HiddenCodec-wantHidden) > 1e-15 {
		t.Fatalf("HiddenCodec = %g, want %g", pt.HiddenCodec, wantHidden)
	}
	if pt.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1 (hop1's codec stage outlasted hop2's transfer)", pt.Stalls)
	}
	// The win over the sequential schedule is exactly the hidden time.
	if seq := seqTime(s, hops, codec, pre, msgCap); math.Abs(seq-pt.Total-pt.HiddenCodec) > 1e-15 {
		t.Fatalf("sequential %g - pipelined %g != hidden %g", seq, pt.Total, pt.HiddenCodec)
	}
}
