// Package related encodes the prior-work data points the paper plots in
// Fig. 1 and tabulates in Table II, so the comparison artifacts can be
// regenerated alongside our measured results. Values come from the paper's
// own annotations; processor counts for some cluster systems are the
// figure-resolution approximations the paper plots (marked Approx).
package related

// Kind classifies a system the way Fig. 1's legend does.
type Kind uint8

const (
	GPU1Node Kind = iota
	CPU1Node
	CPUCluster
	GPUCluster
	ThisWork
)

func (k Kind) String() string {
	switch k {
	case GPU1Node:
		return "GPU 1 Node"
	case CPU1Node:
		return "CPU 1 Node"
	case CPUCluster:
		return "CPU Cluster"
	case GPUCluster:
		return "GPU Cluster"
	case ThisWork:
		return "This Work"
	}
	return "?"
}

// Point is one prior-work result: maximum RMAT scale, processor count and
// aggregate GTEPS.
type Point struct {
	Ref        string // citation tag used in the paper
	System     string
	Kind       Kind
	Scale      int
	Processors int
	GTEPS      float64
	Approx     bool
}

// GTEPSPerProcessor is the y-axis of Fig. 1 (right).
func (p Point) GTEPSPerProcessor() float64 {
	if p.Processors == 0 {
		return 0
	}
	return p.GTEPS / float64(p.Processors)
}

// Figure1 returns the paper's related-work scatter, including the paper's
// own point ([T], 259.8 GTEPS, scale 33, 124 GPUs).
func Figure1() []Point {
	return []Point{
		{Ref: "[5]", System: "Gunrock multi-GPU (Pan et al.)", Kind: GPU1Node, Scale: 26, Processors: 4, GTEPS: 46.1},
		{Ref: "[9]", System: "Yasui & Fujisawa shared-memory", Kind: CPU1Node, Scale: 33, Processors: 128, GTEPS: 174.7},
		{Ref: "[9]", System: "Yasui & Fujisawa single node", Kind: CPU1Node, Scale: 27, Processors: 1, GTEPS: 40, Approx: true},
		{Ref: "[14]", System: "Ueno et al. (K computer, scale 37)", Kind: CPUCluster, Scale: 37, Processors: 16384, GTEPS: 5363, Approx: true},
		{Ref: "[14]", System: "Ueno et al. (K computer, scale 40)", Kind: CPUCluster, Scale: 40, Processors: 82944, GTEPS: 38621.4},
		{Ref: "[15]", System: "Lin et al. (Sunway TaihuLight)", Kind: CPUCluster, Scale: 40, Processors: 40960, GTEPS: 23755.7},
		{Ref: "[16]", System: "Buluç et al. (scale 36)", Kind: CPUCluster, Scale: 36, Processors: 4096, GTEPS: 850, Approx: true},
		{Ref: "[16]", System: "Buluç et al. (scale 33)", Kind: CPUCluster, Scale: 33, Processors: 1204, GTEPS: 240, Approx: true},
		{Ref: "[17]", System: "Ueno & Suzumura GPU cluster", Kind: GPUCluster, Scale: 35, Processors: 4096, GTEPS: 317, Approx: true},
		{Ref: "[1]", System: "TSUBAME 2.0 (June 2017 list)", Kind: GPUCluster, Scale: 35, Processors: 4096, GTEPS: 462.25},
		{Ref: "[18]", System: "Bernaschi et al.", Kind: GPUCluster, Scale: 33, Processors: 4096, GTEPS: 828.39},
		{Ref: "[19]", System: "Fu et al.", Kind: GPUCluster, Scale: 27, Processors: 64, GTEPS: 29.1},
		{Ref: "[20]", System: "Krajecki et al.", Kind: GPUCluster, Scale: 29, Processors: 64, GTEPS: 13.7},
		{Ref: "[21]", System: "Young et al.", Kind: GPUCluster, Scale: 27, Processors: 64, GTEPS: 3.26},
		{Ref: "[T]", System: "This work (paper)", Kind: ThisWork, Scale: 33, Processors: 124, GTEPS: 259.8},
	}
}

// Table2Row is one comparison row of Table II.
type Table2Row struct {
	Scale      int
	Ref        string
	RefHW      string
	RefComm    string
	RefGTEPS   float64
	PaperHW    string
	PaperGTEPS float64
}

// Table2 returns the paper's comparison table (reference results and the
// paper's own numbers); the experiment harness appends our simulated column.
func Table2() []Table2Row {
	return []Table2Row{
		{Scale: 24, Ref: "Pan [5]", RefHW: "1×1×1 Tesla P100", RefComm: "single node", RefGTEPS: 31.6, PaperHW: "1×1×1 Tesla P100", PaperGTEPS: 22.9},
		{Scale: 25, Ref: "Pan [5]", RefHW: "1×1×2 Tesla P100", RefComm: "single node", RefGTEPS: 42.9, PaperHW: "1×1×2 Tesla P100", PaperGTEPS: 32.5},
		{Scale: 26, Ref: "Pan [5]", RefHW: "1×1×4 Tesla P100", RefComm: "single node", RefGTEPS: 46.1, PaperHW: "1×1×4 Tesla P100", PaperGTEPS: 39.8},
		{Scale: 33, Ref: "Bernaschi [18]", RefHW: "4096×1×1 Tesla K20X", RefComm: "Dragonfly 100Gbps", RefGTEPS: 828.39, PaperHW: "31×2×2 Tesla P100", PaperGTEPS: 259.8},
		{Scale: 29, Ref: "Krajecki [20]", RefHW: "64×1×1 Tesla K20Xm", RefComm: "FatTree 10Gbps", RefGTEPS: 13.7, PaperHW: "2×1×4 Tesla P100", PaperGTEPS: 53.13},
		{Scale: 33, Ref: "Yasui [9]", RefHW: "128×10×1/10 Xeon E5-4650 v2", RefComm: "shared memory", RefGTEPS: 174.7, PaperHW: "31×2×2 Tesla P100", PaperGTEPS: 259.8},
		{Scale: 33, Ref: "Buluç [16]", RefHW: "1204×1×1 Xeon E5-2695 v2", RefComm: "Dragonfly 64Gbps", RefGTEPS: 240, PaperHW: "31×2×2 Tesla P100", PaperGTEPS: 259.8},
	}
}
