package related

import "testing"

func TestFigure1Coverage(t *testing.T) {
	pts := Figure1()
	if len(pts) < 12 {
		t.Fatalf("only %d points", len(pts))
	}
	kinds := map[Kind]int{}
	for _, p := range pts {
		kinds[p.Kind]++
		if p.Scale < 20 || p.Scale > 45 {
			t.Errorf("%s: implausible scale %d", p.Ref, p.Scale)
		}
		if p.Processors <= 0 || p.GTEPS <= 0 {
			t.Errorf("%s: missing processors/GTEPS", p.Ref)
		}
	}
	for _, k := range []Kind{GPU1Node, CPU1Node, CPUCluster, GPUCluster, ThisWork} {
		if kinds[k] == 0 {
			t.Errorf("no points of kind %v", k)
		}
	}
}

func TestFigure1PaperPoint(t *testing.T) {
	for _, p := range Figure1() {
		if p.Kind == ThisWork {
			if p.GTEPS != 259.8 || p.Scale != 33 || p.Processors != 124 {
				t.Fatalf("paper point wrong: %+v", p)
			}
			per := p.GTEPSPerProcessor()
			if per < 2.0 || per > 2.2 {
				t.Fatalf("GTEPS/processor = %f", per)
			}
			return
		}
	}
	t.Fatal("paper point missing")
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{GPU1Node, CPU1Node, CPUCluster, GPUCluster, ThisWork} {
		if k.String() == "?" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2()
	if len(rows) != 7 {
		t.Fatalf("Table II has %d rows, want 7", len(rows))
	}
	// The headline comparison: 259.8 GTEPS vs Bernaschi with 3% of GPUs.
	var bern *Table2Row
	for i := range rows {
		if rows[i].Ref == "Bernaschi [18]" {
			bern = &rows[i]
		}
	}
	if bern == nil {
		t.Fatal("Bernaschi row missing")
	}
	if ratio := bern.PaperGTEPS / bern.RefGTEPS; ratio < 0.30 || ratio > 0.32 {
		t.Fatalf("paper/Bernaschi ratio = %f, want ≈0.31", ratio)
	}
}
