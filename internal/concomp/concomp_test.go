package concomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gcbfs/internal/core"
	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
)

func buildSub(t testing.TB, el *graph.EdgeList, shape core.ClusterShape, th int64) *partition.Subgraphs {
	t.Helper()
	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

func serialOf(el *graph.EdgeList) []int64 {
	edges := make([][2]int64, el.M())
	for i, e := range el.Edges {
		edges[i] = [2]int64{e.U, e.V}
	}
	return SerialLabels(el.N, edges)
}

func checkLabels(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: label %d, want %d", v, got[v], want[v])
		}
	}
}

func TestMatchesUnionFindRMAT(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	want := serialOf(el)
	for _, shape := range []core.ClusterShape{
		{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 1},
		{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2},
		{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 1},
	} {
		for _, th := range []int64{0, 8, 1 << 40} {
			sg := buildSub(t, el, shape, th)
			res, err := Run(sg, shape, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("did not converge in %d iterations", res.Iterations)
			}
			checkLabels(t, res.Labels, want)
		}
	}
}

func TestStructuredGraphs(t *testing.T) {
	for _, el := range []*graph.EdgeList{
		gen.Path(50),
		gen.Star(40),
		gen.Grid2D(5, 9),
		gen.Cycle(33),
	} {
		want := serialOf(el)
		shape := core.ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2}
		sg := buildSub(t, el, shape, 4)
		opts := DefaultOptions()
		opts.MaxIterations = 128 // the path needs ~diameter iterations
		res, err := Run(sg, shape, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("did not converge")
		}
		checkLabels(t, res.Labels, want)
	}
}

func TestMultipleComponents(t *testing.T) {
	// Three components: {0..4} path, {5,6} edge, {7} isolated.
	el := graph.NewEdgeList(8)
	for v := int64(0); v < 4; v++ {
		el.Add(v, v+1)
		el.Add(v+1, v)
	}
	el.Add(5, 6)
	el.Add(6, 5)
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1}
	sg := buildSub(t, el, shape, 2)
	res, err := Run(sg, shape, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 0, 0, 0, 0, 5, 5, 7}
	checkLabels(t, res.Labels, want)
}

func TestIterationBudgetExhaustion(t *testing.T) {
	el := gen.Path(100) // diameter 99 ≫ budget
	shape := core.ClusterShape{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}
	sg := buildSub(t, el, shape, 4)
	opts := DefaultOptions()
	opts.MaxIterations = 5
	res, err := Run(sg, shape, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("cannot converge on a long path in 5 iterations")
	}
	if res.Iterations != 5 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

// Property: distributed labels equal union-find on random symmetric graphs
// across random shapes and thresholds.
func TestQuickMatchesUnionFind(t *testing.T) {
	f := func(seed int64, ranksRaw, gpusRaw, thRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(rng.Intn(50) + 2)
		base := graph.NewEdgeList(n)
		for i := 0; i < rng.Intn(100); i++ {
			base.Add(rng.Int63n(n), rng.Int63n(n))
		}
		el := base.Symmetrize()
		shape := core.ClusterShape{
			Nodes:        int(ranksRaw%3) + 1,
			RanksPerNode: 1,
			GPUsPerRank:  int(gpusRaw%2) + 1,
		}
		sep := partition.Separate(el, int64(thRaw%8))
		sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
		if err != nil {
			return false
		}
		opts := DefaultOptions()
		opts.MaxIterations = 128
		res, err := Run(sg, shape, opts)
		if err != nil || !res.Converged {
			return false
		}
		want := serialOf(el)
		for v := range want {
			if res.Labels[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTrafficCounted(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2}
	sg := buildSub(t, el, shape, 8)
	res, err := Run(sg, shape, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesDelegate == 0 || res.BytesNormal == 0 {
		t.Fatalf("traffic not counted: %d/%d", res.BytesDelegate, res.BytesNormal)
	}
	if res.SimSeconds <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestRejectsMismatchedShape(t *testing.T) {
	el := gen.Path(10)
	sg := buildSub(t, el, core.ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 1}, 4)
	if _, err := Run(sg, core.ClusterShape{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 4}, DefaultOptions()); err == nil {
		t.Fatal("accepted mismatched shape")
	}
}
