// Package concomp implements distributed connected components by min-label
// propagation on the paper's degree-separated substrate — a second §VI-D
// generalization alongside PageRank. Delegates carry 64-bit labels combined
// by a global min-reduction (vs BFS's 1-bit OR); normal-vertex proposals
// cross GPUs as (id, label) pairs over the nn edges. Labels converge to the
// minimum global vertex id of each component, which makes validation against
// a serial union-find exact.
package concomp

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"gcbfs/internal/core"
	"gcbfs/internal/faults"
	"gcbfs/internal/frontier"
	"gcbfs/internal/metrics"
	"gcbfs/internal/mpi"
	"gcbfs/internal/partition"
	"gcbfs/internal/simgpu"
	"gcbfs/internal/simnet"
	"gcbfs/internal/wire"
)

// Options configures a components run.
type Options struct {
	// MaxIterations bounds label propagation (default 64; convergence is
	// bounded by the graph diameter, so long-tail graphs need more).
	MaxIterations int
	// WorkAmplification scales the timing model (see core.Options).
	WorkAmplification float64
	// Inject arms deterministic fault injection (see core.Options.Inject);
	// nil keeps every decision point on the fault-free fast path.
	Inject *faults.Injector

	GPU simgpu.Spec
	Net simnet.Spec
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{
		MaxIterations: 64,
		GPU:           simgpu.TeslaP100(),
		Net:           simnet.Ray(),
	}
}

// Result reports a components run.
type Result struct {
	// Labels holds the component id (minimum member vertex id) per vertex.
	Labels        []int64
	Iterations    int
	Converged     bool
	SimSeconds    float64
	Parts         metrics.Breakdown
	BytesNormal   int64
	BytesDelegate int64
}

type gpuState struct {
	pg      *partition.GPUGraph
	dev     *simgpu.Device
	labels  []int64
	prop    []int64 // incoming proposals (min) for local slots
	propDel []int64 // incoming proposals for delegates (local share)
	changed []bool  // local label changed last iteration (frontier)
	bins    *frontier.PairBins
	seconds float64
}

// Run executes connected components over a partitioned graph.
func Run(sg *partition.Subgraphs, shape core.ClusterShape, opts Options) (*Result, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if sg.Cfg != shape.PartitionConfig() {
		return nil, fmt.Errorf("concomp: graph partitioned for %+v, shape needs %+v",
			sg.Cfg, shape.PartitionConfig())
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 64
	}
	if opts.WorkAmplification <= 0 {
		opts.WorkAmplification = 1
	}
	if opts.GPU.EdgeRateMerge == 0 {
		opts.GPU = simgpu.TeslaP100()
	}
	if opts.Net.IB.Bandwidth == 0 {
		opts.Net = simnet.Ray()
	}
	e := &engine{sg: sg, shape: shape, opts: opts, cfg: sg.Cfg, p: sg.Cfg.P(), d: sg.D()}
	e.build()
	return e.run()
}

type engine struct {
	sg    *partition.Subgraphs
	shape core.ClusterShape
	opts  Options
	cfg   partition.Config
	p     int
	d     int64

	gpus            []*gpuState
	delegateLabels  []int64 // published by rank 0
	delegateChanged []bool

	mu            sync.Mutex
	simSeconds    float64
	parts         metrics.Breakdown
	iters         int
	converged     bool
	bytesNormal   int64
	bytesDelegate int64
}

const unset = math.MaxInt64

func (e *engine) build() {
	e.gpus = make([]*gpuState, e.p)
	for i, pg := range e.sg.GPUs {
		gs := &gpuState{
			pg:      pg,
			dev:     simgpu.NewDevice(e.opts.GPU, i),
			labels:  make([]int64, pg.NumLocal),
			prop:    make([]int64, pg.NumLocal),
			propDel: make([]int64, e.d),
			changed: make([]bool, pg.NumLocal),
			bins:    frontier.NewPairBins(e.p),
		}
		for slot := int64(0); slot < pg.NumLocal; slot++ {
			gs.labels[slot] = e.cfg.GlobalID(uint32(slot), pg.Rank, pg.Slot)
			gs.changed[slot] = true // everyone proposes in iteration 0
		}
		e.gpus[i] = gs
	}
	e.delegateLabels = make([]int64, e.d)
	e.delegateChanged = make([]bool, e.d)
	for di, v := range e.sg.Sep.DelegateGlobal {
		e.delegateLabels[di] = v
		e.delegateChanged[di] = true
	}
}

func (e *engine) run() (*Result, error) {
	prank := e.shape.Ranks()
	world := mpi.NewWorld(prank)
	armWorld(world, e.opts.Inject)
	var wg sync.WaitGroup
	for r := 0; r < prank; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer containRank(world, rank)
			e.runRank(rank, world.Rank(rank))
		}(r)
	}
	wg.Wait()
	if err := world.Aborted(); err != nil {
		return nil, err
	}
	return &Result{
		Labels:        e.gather(),
		Iterations:    e.iters,
		Converged:     e.converged,
		SimSeconds:    e.simSeconds,
		Parts:         e.parts,
		BytesNormal:   e.bytesNormal,
		BytesDelegate: e.bytesDelegate,
	}, nil
}

func (e *engine) runRank(rank int, comm *mpi.Comm) {
	pgpu := e.shape.GPUsPerRank
	prank := e.shape.Ranks()
	myGPUs := e.gpus[rank*pgpu : (rank+1)*pgpu]
	delLabels := append([]int64(nil), e.delegateLabels...)
	delChanged := append([]bool(nil), e.delegateChanged...)
	delProp := make([]int64, e.d)

	for iter := 0; iter < e.opts.MaxIterations; iter++ {
		// ---- Fault injection (chaos testing): see core.Session.runRank.
		if in := e.opts.Inject; in != nil {
			in.Crash(rank, iter, faults.SiteIter)
		}
		// ---- Push phase: changed vertices propose their label along
		// all local edges (the frontier optimization every practical
		// label-propagation implementation uses).
		for _, gs := range myGPUs {
			gs.seconds = 0
			for i := range gs.prop {
				gs.prop[i] = unset
			}
			for i := range gs.propDel {
				gs.propDel[i] = unset
			}
			gs.bins.Reset()
			e.pushNormals(gs)
			e.pushDelegates(gs, delLabels, delChanged)
		}

		// ---- Delegate proposal min-reduction (local fold, then the
		// global tree reduction of §V-A with 64-bit payloads).
		for i := range delProp {
			delProp[i] = unset
		}
		for _, gs := range myGPUs {
			for i, v := range gs.propDel {
				if v < delProp[i] {
					delProp[i] = v
				}
			}
		}
		if e.d > 0 {
			comm.AllreduceMin(delProp)
		}

		// ---- Normal pair exchange.
		var sentBytes, intraPairs int64
		for dst := 0; dst < prank; dst++ {
			if dst == rank {
				for s := 0; s < pgpu; s++ {
					for _, src := range myGPUs {
						prs := src.bins.PerGPU[rank*pgpu+s]
						intraPairs += int64(len(prs))
						applyPairs(myGPUs[s], prs)
					}
				}
				continue
			}
			payload := packForRank(myGPUs, dst, pgpu)
			sentBytes += int64(len(payload))
			comm.Isend(dst, iter, payload)
		}
		var recvBytes int64
		for src := 0; src < prank; src++ {
			if src == rank {
				continue
			}
			buf := comm.Recv(src, iter)
			recvBytes += int64(len(buf))
			slots, err := frontier.UnpackPairsRank(buf, pgpu)
			if err != nil {
				panic(fmt.Errorf("concomp: corrupt payload: %v: %w", err, wire.ErrCorrupt))
			}
			for s, prs := range slots {
				applyPairs(myGPUs[s], prs)
			}
		}

		// ---- Label updates.
		var localChanged int64
		for _, gs := range myGPUs {
			for slot := range gs.labels {
				gs.changed[slot] = false
				if p := gs.prop[slot]; p < gs.labels[slot] {
					gs.labels[slot] = p
					gs.changed[slot] = true
					localChanged++
				}
			}
		}
		var delegateChangedCount int64
		for di := range delLabels {
			delChanged[di] = false
			if p := delProp[di]; p < delLabels[di] {
				delLabels[di] = p
				delChanged[di] = true
				delegateChangedCount++
			}
		}
		stats := []int64{localChanged, sentBytes + 12*intraPairs}
		comm.AllreduceSum(stats)
		anyChange := stats[0]+delegateChangedCount > 0

		// ---- Timing.
		amp := e.opts.WorkAmplification
		var comp float64
		for _, gs := range myGPUs {
			if gs.seconds > comp {
				comp = gs.seconds
			}
		}
		// Injected stall: timing skew only, results stay bit-identical.
		if in := e.opts.Inject; in != nil {
			comp += in.Stall(rank, iter, faults.SiteIter)
		}
		aSent := int64(float64(sentBytes) * amp)
		aLabels := int64(float64(e.d*8) * amp)
		local := e.opts.Net.Staging(aSent) + e.opts.Net.Staging(int64(float64(recvBytes)*amp))
		if e.d > 0 {
			local += e.opts.Net.LocalReduce(aLabels, pgpu) + e.opts.Net.LocalBroadcast(aLabels, pgpu)
		}
		remoteNormal := e.opts.Net.PointToPoint(aSent, 4<<20)
		var remoteDelegate float64
		if e.d > 0 {
			remoteDelegate = e.opts.Net.Allreduce(aLabels, prank, true)
		}
		vec := []int64{int64(math.Float64bits(comp)), int64(math.Float64bits(local)),
			int64(math.Float64bits(remoteNormal)), int64(math.Float64bits(remoteDelegate))}
		comm.AllreduceMax(vec)
		parts := metrics.Breakdown{
			Computation:    math.Float64frombits(uint64(vec[0])),
			LocalComm:      math.Float64frombits(uint64(vec[1])),
			RemoteNormal:   math.Float64frombits(uint64(vec[2])),
			RemoteDelegate: math.Float64frombits(uint64(vec[3])),
		}
		elapsed := parts.Sum() - 0.35*math.Min(parts.Computation,
			parts.RemoteNormal+parts.RemoteDelegate)

		if rank == 0 {
			e.mu.Lock()
			e.simSeconds += elapsed
			e.parts.Add(parts)
			e.iters++
			e.bytesNormal += stats[1]
			e.bytesDelegate += e.d * 8
			copy(e.delegateLabels, delLabels)
			if !anyChange {
				e.converged = true
			}
			e.mu.Unlock()
		}
		if !anyChange {
			break
		}
	}
	comm.Barrier()
}

// pushNormals proposes changed local labels along nn and nd edges.
func (e *engine) pushNormals(gs *gpuState) {
	p64 := int64(e.p)
	self := gs.pg.GPU
	var edges, vertices int64
	for slot := int64(0); slot < gs.pg.NumLocal; slot++ {
		if !gs.changed[slot] {
			continue
		}
		v := e.cfg.GlobalID(uint32(slot), gs.pg.Rank, gs.pg.Slot)
		if e.sg.Sep.IsDelegate(v) {
			continue
		}
		vertices++
		lbl := gs.labels[slot]
		for _, dst := range gs.pg.NN.Neighbors(slot) {
			edges++
			owner := e.cfg.OwnerGPU(dst)
			local := uint32(dst / p64)
			if owner == self {
				if lbl < gs.prop[local] {
					gs.prop[local] = lbl
				}
			} else {
				gs.bins.Add(owner, local, uint64(lbl))
			}
		}
		for _, dv := range gs.pg.ND.Neighbors(slot) {
			edges++
			if lbl < gs.propDel[dv] {
				gs.propDel[dv] = lbl
			}
		}
	}
	gs.seconds += e.charge(gs, simgpu.KernelCost{
		Edges: edges, Vertices: vertices + gs.pg.NumLocal/64, Strategy: simgpu.TWBDynamic,
	})
}

// pushDelegates proposes changed delegate labels along this GPU's dd and dn
// shares.
func (e *engine) pushDelegates(gs *gpuState, delLabels []int64, delChanged []bool) {
	var edges int64
	for di := int64(0); di < e.d; di++ {
		if !delChanged[di] {
			continue
		}
		lbl := delLabels[di]
		for _, dv := range gs.pg.DD.Neighbors(di) {
			edges++
			if lbl < gs.propDel[dv] {
				gs.propDel[dv] = lbl
			}
		}
		for _, lv := range gs.pg.DN.Neighbors(di) {
			edges++
			if lbl < gs.prop[lv] {
				gs.prop[lv] = lbl
			}
		}
	}
	gs.seconds += e.charge(gs, simgpu.KernelCost{
		Edges: edges, Vertices: e.d / 64, Strategy: simgpu.MergePath,
	})
}

func (e *engine) charge(gs *gpuState, c simgpu.KernelCost) float64 {
	c.Edges = int64(float64(c.Edges) * e.opts.WorkAmplification)
	c.Vertices = int64(float64(c.Vertices) * e.opts.WorkAmplification)
	return gs.dev.Charge(c)
}

func applyPairs(gs *gpuState, prs []frontier.Pair) {
	for _, pr := range prs {
		if lbl := int64(pr.Val); lbl < gs.prop[pr.ID] {
			gs.prop[pr.ID] = lbl
		}
	}
}

func packForRank(myGPUs []*gpuState, dst, pgpu int) []byte {
	merged := frontier.NewPairBins(pgpu)
	for s := 0; s < pgpu; s++ {
		dstGPU := dst*pgpu + s
		for _, gs := range myGPUs {
			merged.PerGPU[s] = append(merged.PerGPU[s], gs.bins.PerGPU[dstGPU]...)
		}
	}
	return merged.PackRank(0, pgpu)
}

// armWorld installs the fault injector's payload hook on the communicator
// (message tags are plain iteration numbers here).
func armWorld(w *mpi.World, in *faults.Injector) {
	if in == nil {
		return
	}
	w.SetSendHook(func(src, dst, tag int, data []byte) []byte {
		return in.Payload(src, tag, faults.SiteExchange, data)
	})
}

// containRank is the per-rank recover boundary: contained faults (corrupt
// payloads, injected crashes) poison the world so every sibling rank unwinds
// and the typed error reaches the caller; genuine bugs re-panic.
func containRank(world *mpi.World, rank int) {
	v := recover()
	if v == nil {
		return
	}
	if _, ok := mpi.AbortError(v); ok {
		return
	}
	if err, ok := v.(error); ok && (errors.Is(err, wire.ErrCorrupt) || errors.Is(err, faults.ErrInjected)) {
		world.Abort(fmt.Errorf("concomp: rank %d: %w", rank, err))
		return
	}
	panic(v)
}

// gather assembles global labels.
func (e *engine) gather() []int64 {
	out := make([]int64, e.sg.N)
	for _, gs := range e.gpus {
		for slot := int64(0); slot < gs.pg.NumLocal; slot++ {
			v := e.cfg.GlobalID(uint32(slot), gs.pg.Rank, gs.pg.Slot)
			if !e.sg.Sep.IsDelegate(v) {
				out[v] = gs.labels[slot]
			}
		}
	}
	for di, v := range e.sg.Sep.DelegateGlobal {
		out[v] = e.delegateLabels[di]
	}
	return out
}

// SerialLabels computes reference min-id component labels with union-find.
func SerialLabels(n int64, edges [][2]int64) []int64 {
	parent := make([]int64, n)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int64) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb { // union by min id keeps roots canonical
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for _, e := range edges {
		union(e[0], e[1])
	}
	labels := make([]int64, n)
	for v := int64(0); v < n; v++ {
		labels[v] = find(v)
	}
	return labels
}
