package concomp

import (
	"errors"
	"testing"

	"gcbfs/internal/core"
	"gcbfs/internal/faults"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// TestPayloadFaultSurfacesTypedError drives the decode panic site: a
// mangled proposal payload must surface as a wire.ErrCorrupt-typed error,
// never a bare panic or a partial result.
func TestPayloadFaultSurfacesTypedError(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}
	sg := buildSub(t, el, shape, 8)
	for _, kind := range []faults.Kind{faults.KindTruncate, faults.KindDrop} {
		opts := DefaultOptions()
		in := faults.New(1, kind, 1)
		opts.Inject = in
		res, err := Run(sg, shape, opts)
		if err == nil {
			t.Fatalf("rate-1 %v did not fail the run", kind)
		}
		if res != nil {
			t.Fatalf("%v: partial result escaped alongside the error", kind)
		}
		if !errors.Is(err, wire.ErrCorrupt) {
			t.Fatalf("%v: error not wire.ErrCorrupt-typed: %v", kind, err)
		}
		if in.Injected() == 0 {
			t.Fatalf("%v: run failed but the injector fired nothing", kind)
		}
	}
}

func TestCrashSurfacesInjectedError(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}
	sg := buildSub(t, el, shape, 8)
	opts := DefaultOptions()
	opts.Inject = faults.New(2, faults.KindCrash, 1).WithSites(faults.SiteIter)
	res, err := Run(sg, shape, opts)
	if err == nil {
		t.Fatal("rate-1 crash did not fail the run")
	}
	if res != nil {
		t.Fatal("partial result escaped alongside the error")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("crash error not faults.ErrInjected-typed: %v", err)
	}
}

// TestStallIsHarmless: stalls skew simulated time, never results.
func TestStallIsHarmless(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}
	sg := buildSub(t, el, shape, 8)
	ref, err := Run(sg, shape, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	in := faults.New(3, faults.KindStall, 1)
	opts.Inject = in
	res, err := Run(sg, shape, opts)
	if err != nil {
		t.Fatalf("stall failed the run: %v", err)
	}
	if in.Injected() == 0 {
		t.Fatal("rate-1 stall never fired")
	}
	checkLabels(t, res.Labels, ref.Labels)
	if res.SimSeconds < ref.SimSeconds {
		t.Fatalf("stalled run simulated %.6f s, faster than fault-free %.6f s",
			res.SimSeconds, ref.SimSeconds)
	}
}
