package frontier

// Record bins for the multi-source shared sweep: like Bins, but each queued
// id carries a w-word query-set mask saying which of the K concurrent
// queries discovered the vertex. Masks are stored flat (w words per id, in
// queue order) so binning stays a bump append with no per-record allocation.

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// RecordBins accumulates outgoing (local id, query mask) records grouped by
// destination GPU. Ids are destination-local 32-bit ids, converted
// sender-side exactly as in Bins.
type RecordBins struct {
	w     int
	IDs   [][]uint32
	Masks [][]uint64 // flat: w words per id, parallel to IDs
}

// NewRecordBins creates empty record bins for p destination GPUs with w mask
// words per record.
func NewRecordBins(p, w int) *RecordBins {
	return &RecordBins{w: w, IDs: make([][]uint32, p), Masks: make([][]uint64, p)}
}

// W returns the mask width in words.
func (b *RecordBins) W() int { return b.w }

// Add appends a record to gpu's bin. mask must be w words; it is copied.
func (b *RecordBins) Add(gpu int, localID uint32, mask []uint64) {
	b.IDs[gpu] = append(b.IDs[gpu], localID)
	b.Masks[gpu] = append(b.Masks[gpu], mask[:b.w]...)
}

// Mask returns the i-th record's mask view in gpu's bin.
func (b *RecordBins) Mask(gpu, i int) []uint64 {
	return b.Masks[gpu][i*b.w : (i+1)*b.w]
}

// Reset empties all bins, retaining capacity.
func (b *RecordBins) Reset() {
	for i := range b.IDs {
		b.IDs[i] = b.IDs[i][:0]
		b.Masks[i] = b.Masks[i][:0]
	}
}

// Count returns the total number of queued records.
func (b *RecordBins) Count() int64 {
	var c int64
	for _, bin := range b.IDs {
		c += int64(len(bin))
	}
	return c
}

// Bytes returns the fixed-width payload size of all bins at 4+8w bytes per
// record, excluding per-slot headers — the record extension of the paper's
// 4·|Enn| convention.
func (b *RecordBins) Bytes() int64 { return (4 + 8*int64(b.w)) * b.Count() }

// PackRecordsRank serializes per-slot record lists into a single fixed-width
// message: for each slot, a uint32 count, count uint32 ids, then count·w
// uint64 mask words in id order. The ModeOff wire format of the sweep
// exchange.
func PackRecordsRank(slotIDs [][]uint32, slotMasks [][]uint64, w int) []byte {
	var size int
	for s := range slotIDs {
		size += 4 + (4+8*w)*len(slotIDs[s])
	}
	buf := make([]byte, 0, size)
	for s := range slotIDs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(slotIDs[s])))
		for _, v := range slotIDs[s] {
			buf = binary.LittleEndian.AppendUint32(buf, v)
		}
		for _, word := range slotMasks[s][:len(slotIDs[s])*w] {
			buf = binary.LittleEndian.AppendUint64(buf, word)
		}
	}
	return buf
}

// UnpackRecordsRankInto parses a PackRecordsRank payload, appending each
// slot's ids and mask words to the corresponding entries of idsInto and
// masksInto (len(idsInto) is the slot count). The zero-copy arrival path:
// each slot's count header pre-sizes the grows.
func UnpackRecordsRankInto(buf []byte, w int, idsInto [][]uint32, masksInto [][]uint64) error {
	off := 0
	for s := range idsInto {
		if off+4 > len(buf) {
			return fmt.Errorf("frontier: truncated record header for slot %d", s)
		}
		count := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+(4+8*w)*count > len(buf) {
			return fmt.Errorf("frontier: truncated record payload for slot %d (%d records)", s, count)
		}
		ids := slices.Grow(idsInto[s], count)
		for i := 0; i < count; i++ {
			ids = append(ids, binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		idsInto[s] = ids
		masks := slices.Grow(masksInto[s], count*w)
		for i := 0; i < count*w; i++ {
			masks = append(masks, binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		masksInto[s] = masks
	}
	if off != len(buf) {
		return fmt.Errorf("frontier: %d trailing record bytes", len(buf)-off)
	}
	return nil
}
