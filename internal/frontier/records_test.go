package frontier

import "testing"

func TestRecordBinsPackRoundTrip(t *testing.T) {
	const w = 2
	b := NewRecordBins(3, w)
	b.Add(0, 5, []uint64{1, 0})
	b.Add(0, 9, []uint64{0, 1 << 63})
	b.Add(2, 1, []uint64{3, 3})
	if b.Count() != 3 {
		t.Fatalf("count = %d", b.Count())
	}
	if b.Bytes() != 3*(4+8*w) {
		t.Fatalf("bytes = %d", b.Bytes())
	}
	if m := b.Mask(0, 1); m[1] != 1<<63 {
		t.Fatalf("mask view = %v", m)
	}

	buf := PackRecordsRank(b.IDs, b.Masks, w)
	idsInto := make([][]uint32, 3)
	masksInto := make([][]uint64, 3)
	if err := UnpackRecordsRankInto(buf, w, idsInto, masksInto); err != nil {
		t.Fatal(err)
	}
	for s := range idsInto {
		if len(idsInto[s]) != len(b.IDs[s]) {
			t.Fatalf("slot %d: %d ids, want %d", s, len(idsInto[s]), len(b.IDs[s]))
		}
		for i := range idsInto[s] {
			if idsInto[s][i] != b.IDs[s][i] {
				t.Fatalf("slot %d id %d mismatch", s, i)
			}
		}
		for i := range masksInto[s] {
			if masksInto[s][i] != b.Masks[s][i] {
				t.Fatalf("slot %d mask word %d mismatch", s, i)
			}
		}
	}

	// Truncations error.
	for n := 0; n < len(buf); n++ {
		if err := UnpackRecordsRankInto(buf[:n], w, make([][]uint32, 3), make([][]uint64, 3)); err == nil {
			t.Fatalf("truncation to %d bytes unpacked without error", n)
		}
	}

	b.Reset()
	if b.Count() != 0 {
		t.Fatal("reset left records")
	}
}
