package frontier

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestMergeSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		k := rng.Intn(4)
		lists := make([][]uint32, k)
		var all []uint32
		for i := range lists {
			n := rng.Intn(30)
			l := make([]uint32, n)
			for j := range l {
				l[j] = uint32(rng.Intn(100))
			}
			sort.Slice(l, func(a, b int) bool { return l[a] < l[b] })
			lists[i] = l
			all = append(all, l...)
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		got := MergeSorted(lists)
		if len(all) == 0 {
			if len(got) != 0 {
				t.Fatalf("trial %d: merged %d ids from empty input", trial, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, all) {
			t.Fatalf("trial %d: merge mismatch", trial)
		}
	}
}

func TestMergeSortedCopies(t *testing.T) {
	src := []uint32{1, 2, 3}
	got := MergeSorted([][]uint32{src})
	got[0] = 99
	if src[0] != 1 {
		t.Fatal("MergeSorted aliased its input")
	}
}

// TestBinsSortedTracking: Uniquify marks bins sorted, Add clears the mark,
// Reset restores it, and tiny bins are always sorted.
func TestBinsSortedTracking(t *testing.T) {
	b := NewBins(2)
	if !b.IsSorted(0) {
		t.Fatal("empty bin not sorted")
	}
	b.Add(0, 9)
	if !b.IsSorted(0) {
		t.Fatal("single-id bin not sorted")
	}
	b.Add(0, 3)
	if b.IsSorted(0) {
		t.Fatal("unsorted bin flagged sorted")
	}
	b.Uniquify(0)
	if !b.IsSorted(0) {
		t.Fatal("uniquified bin not flagged sorted")
	}
	b.Add(0, 1)
	if b.IsSorted(0) {
		t.Fatal("Add did not clear the sorted flag")
	}
	b.Reset()
	if !b.IsSorted(0) || !b.IsSorted(1) {
		t.Fatal("Reset did not restore the sorted flag")
	}
	// Literal-constructed bins (no tracking state) must be safe and report
	// false for multi-id bins.
	lit := &Bins{PerGPU: [][]uint32{{5, 1}}}
	if lit.IsSorted(0) {
		t.Fatal("untracked multi-id bin flagged sorted")
	}
	lit.Add(0, 2) // must not panic
}
