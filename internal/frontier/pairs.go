package frontier

import (
	"encoding/binary"
	"fmt"
)

// Pair carries a destination-local vertex id plus a 64-bit payload: the
// parent global id in the BFS-tree exchange, a float64's bits in PageRank
// contributions, or a component label in connected components. This is the
// "associative values for normal vertices in addition to the vertex numbers
// themselves" traffic the paper anticipates for algorithms beyond BFS
// (§VI-D).
type Pair struct {
	ID  uint32
	Val uint64
}

// PairBins accumulates outgoing (id, value) pairs per destination GPU.
type PairBins struct {
	PerGPU [][]Pair
}

// NewPairBins creates empty bins for p GPUs.
func NewPairBins(p int) *PairBins {
	return &PairBins{PerGPU: make([][]Pair, p)}
}

// Add appends a pair to gpu's bin.
func (b *PairBins) Add(gpu int, id uint32, val uint64) {
	b.PerGPU[gpu] = append(b.PerGPU[gpu], Pair{ID: id, Val: val})
}

// Reset empties all bins, retaining capacity.
func (b *PairBins) Reset() {
	for i := range b.PerGPU {
		b.PerGPU[i] = b.PerGPU[i][:0]
	}
}

// Count returns the total queued pairs.
func (b *PairBins) Count() int64 {
	var c int64
	for _, bin := range b.PerGPU {
		c += int64(len(bin))
	}
	return c
}

// Bytes returns the wire size at 12 bytes per pair (4-byte id + 8-byte
// value), excluding headers — 3× the plain BFS exchange, the §VI-D point
// about heavier traffic for general algorithms.
func (b *PairBins) Bytes() int64 { return 12 * b.Count() }

// PackRank serializes the pairs destined for one rank's GPUs: per slot a
// uint32 count then count×(uint32 id, uint64 val).
func (b *PairBins) PackRank(rank, gpusPerRank int) []byte {
	var size int
	for s := 0; s < gpusPerRank; s++ {
		size += 4 + 12*len(b.PerGPU[rank*gpusPerRank+s])
	}
	buf := make([]byte, size)
	off := 0
	for s := 0; s < gpusPerRank; s++ {
		bin := b.PerGPU[rank*gpusPerRank+s]
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(bin)))
		off += 4
		for _, pr := range bin {
			binary.LittleEndian.PutUint32(buf[off:], pr.ID)
			binary.LittleEndian.PutUint64(buf[off+4:], pr.Val)
			off += 12
		}
	}
	return buf
}

// UnpackPairsRank parses a PairBins.PackRank payload into per-slot pairs.
func UnpackPairsRank(buf []byte, gpusPerRank int) ([][]Pair, error) {
	out := make([][]Pair, gpusPerRank)
	off := 0
	for s := 0; s < gpusPerRank; s++ {
		if off+4 > len(buf) {
			return nil, fmt.Errorf("frontier: truncated pair header for slot %d", s)
		}
		count := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		if off+12*int(count) > len(buf) {
			return nil, fmt.Errorf("frontier: truncated pair payload for slot %d (%d pairs)", s, count)
		}
		pairs := make([]Pair, count)
		for i := range pairs {
			pairs[i].ID = binary.LittleEndian.Uint32(buf[off:])
			pairs[i].Val = binary.LittleEndian.Uint64(buf[off+4:])
			off += 12
		}
		out[s] = pairs
	}
	if off != len(buf) {
		return nil, fmt.Errorf("frontier: %d trailing pair bytes", len(buf)-off)
	}
	return out, nil
}
