// Package frontier provides the queue and binning machinery around the BFS
// visit kernels (§V-B): per-destination-GPU bins for the normal-vertex
// exchange, the 64→32-bit vertex-number conversion performed before sending,
// uniquification (duplicate removal within a bin), and the wire packing used
// by the rank-to-rank exchange.
package frontier

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// Bins accumulates outgoing normal-vertex discoveries grouped by destination
// GPU. Ids stored are already converted to 32-bit local ids at the
// destination (the paper sends 4 bytes per nn edge — the conversion happens
// sender-side since local id = v / p is computable anywhere). Each bin also
// tracks whether it is known sorted (uniquification leaves bins sorted and
// duplicate-free), a hint the wire codec uses to skip its sort copy.
type Bins struct {
	PerGPU [][]uint32
	sorted []bool
}

// NewBins creates empty bins for p destination GPUs.
func NewBins(p int) *Bins {
	return &Bins{PerGPU: make([][]uint32, p), sorted: make([]bool, p)}
}

// Add appends a destination-local vertex id to gpu's bin.
func (b *Bins) Add(gpu int, localID uint32) {
	b.PerGPU[gpu] = append(b.PerGPU[gpu], localID)
	if b.sorted != nil {
		b.sorted[gpu] = false
	}
}

// IsSorted reports whether gpu's bin is known sorted ascending (trivially
// true under two ids). Bins constructed as literals without tracking state
// report false.
func (b *Bins) IsSorted(gpu int) bool {
	if len(b.PerGPU[gpu]) < 2 {
		return true
	}
	return b.sorted != nil && b.sorted[gpu]
}

// Reset empties all bins, retaining capacity.
func (b *Bins) Reset() {
	for i := range b.PerGPU {
		b.PerGPU[i] = b.PerGPU[i][:0]
		if b.sorted != nil {
			b.sorted[i] = true
		}
	}
}

// Count returns the total number of queued ids.
func (b *Bins) Count() int64 {
	var c int64
	for _, bin := range b.PerGPU {
		c += int64(len(bin))
	}
	return c
}

// Bytes returns the wire payload size of all bins at 4 bytes per id,
// excluding per-slot headers — the paper's 4·|Enn| volume accounting.
func (b *Bins) Bytes() int64 { return 4 * b.Count() }

// Uniquify removes duplicate ids within gpu's bin (sort + compact, so the
// result is deterministic) and returns how many duplicates were dropped —
// the §V-B optimization whose payoff the paper found marginal because few
// nn destinations repeat within one GPU's frontier.
func (b *Bins) Uniquify(gpu int) int64 {
	bin := b.PerGPU[gpu]
	if len(bin) < 2 {
		return 0
	}
	slices.Sort(bin)
	out := bin[:1]
	for _, v := range bin[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	removed := int64(len(bin) - len(out))
	b.PerGPU[gpu] = out
	if b.sorted != nil {
		b.sorted[gpu] = true
	}
	return removed
}

// UniquifyAll runs Uniquify on every bin and returns the total removed.
func (b *Bins) UniquifyAll() int64 {
	var removed int64
	for gpu := range b.PerGPU {
		removed += b.Uniquify(gpu)
	}
	return removed
}

// PackRank serializes the bins destined for the GPUs of one rank into a
// single message: for each slot s in [0, gpusPerRank), a uint32 count
// followed by count uint32 ids. gpuIndex(rank, slot) maps to the flat GPU
// index used by the bins.
func (b *Bins) PackRank(rank, gpusPerRank int) []byte {
	var size int
	for s := 0; s < gpusPerRank; s++ {
		size += 4 + 4*len(b.PerGPU[rank*gpusPerRank+s])
	}
	buf := make([]byte, size)
	off := 0
	for s := 0; s < gpusPerRank; s++ {
		bin := b.PerGPU[rank*gpusPerRank+s]
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(bin)))
		off += 4
		for _, v := range bin {
			binary.LittleEndian.PutUint32(buf[off:], v)
			off += 4
		}
	}
	return buf
}

// UnpackRank parses a PackRank payload back into per-slot id lists.
func UnpackRank(buf []byte, gpusPerRank int) ([][]uint32, error) {
	out := make([][]uint32, gpusPerRank)
	if err := UnpackRankInto(buf, out); err != nil {
		return nil, err
	}
	return out, nil
}

// UnpackRankInto parses a PackRank payload, appending each slot's ids to the
// corresponding entry of into (len(into) is the slot count). This is the
// zero-copy arrival path: the receiver hands its reusable per-slot arrival
// bins and each slot's count header pre-sizes the grow, so a steady-state
// exchange decodes without allocating.
func UnpackRankInto(buf []byte, into [][]uint32) error {
	off := 0
	for s := range into {
		if off+4 > len(buf) {
			return fmt.Errorf("frontier: truncated header for slot %d", s)
		}
		count := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		if off+4*int(count) > len(buf) {
			return fmt.Errorf("frontier: truncated payload for slot %d (%d ids)", s, count)
		}
		ids := slices.Grow(into[s], int(count))
		for i := 0; i < int(count); i++ {
			ids = append(ids, binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		into[s] = ids
	}
	if off != len(buf) {
		return fmt.Errorf("frontier: %d trailing bytes", len(buf)-off)
	}
	return nil
}

// Arena is a bump allocator for per-iteration id buffers: the decode/merge
// scratch of one exchange lives exactly one BSP iteration, so instead of a
// fresh make() per decoded block the caller carves slices out of one backing
// array and Resets it at the iteration boundary. The backing array is sized
// to the high-water demand of the previous cycle, so after a one-iteration
// warmup every Alloc is a pointer bump — zero heap allocations on the steady
// state. Slices handed out remain valid after Reset grows the backing array
// (they keep pointing into the old one); they are invalidated only by the
// next allocation cycle reusing the space, which is exactly the
// one-iteration lifetime contract.
type Arena struct {
	buf  []uint32
	off  int
	need int
}

// Alloc returns a length-0, capacity-n slice backed by the arena. When the
// current backing array is exhausted mid-cycle the slice falls back to a
// plain allocation and the arena remembers the shortfall, so the next Reset
// sizes the backing array to the full observed demand.
func (a *Arena) Alloc(n int) []uint32 {
	a.need += n
	if a.off+n > len(a.buf) {
		return make([]uint32, 0, n)
	}
	s := a.buf[a.off : a.off : a.off+n]
	a.off += n
	return s
}

// Reset starts a new allocation cycle, growing the backing array to the
// previous cycle's total demand. Slices from the previous cycle must no
// longer be used.
func (a *Arena) Reset() {
	if a.need > len(a.buf) {
		a.buf = make([]uint32, a.need)
	}
	a.off, a.need = 0, 0
}

// MergeSorted merges already-sorted id lists into one freshly allocated
// sorted slice, preserving duplicates. Merging keeps uniquified per-GPU bins
// sorted when they combine into one destination slot, so the pre-sorted hint
// survives aggregation instead of dying at the first concatenation.
func MergeSorted(lists [][]uint32) []uint32 {
	return MergeSortedArena(nil, lists)
}

// MergeSortedArena is MergeSorted with the output (and any intermediate
// accumulators) drawn from the arena; a nil arena falls back to plain
// allocation. Inputs are never mutated, so the output may be retained for
// the arena's cycle while the inputs live on.
func MergeSortedArena(a *Arena, lists [][]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append(arenaAlloc(a, len(lists[0])), lists[0]...)
	}
	acc := mergeTwo(a, lists[0], lists[1])
	for _, l := range lists[2:] {
		acc = mergeTwo(a, acc, l)
	}
	return acc
}

// arenaAlloc carves n capacity from the arena, or the heap when a is nil.
func arenaAlloc(a *Arena, n int) []uint32 {
	if a == nil {
		return make([]uint32, 0, n)
	}
	return a.Alloc(n)
}

// mergeTwo merges two sorted lists into a new slice from the arena.
func mergeTwo(a *Arena, x, y []uint32) []uint32 {
	out := arenaAlloc(a, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if x[i] <= y[j] {
			out = append(out, x[i])
			i++
		} else {
			out = append(out, y[j])
			j++
		}
	}
	out = append(out, x[i:]...)
	return append(out, y[j:]...)
}

// SortUnique sorts ids ascending and removes duplicates in place, returning
// the compacted slice.
func SortUnique(ids []uint32) []uint32 {
	if len(ids) < 2 {
		return ids
	}
	slices.Sort(ids)
	out := ids[:1]
	for _, v := range ids[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
