package frontier

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinsBasics(t *testing.T) {
	b := NewBins(4)
	b.Add(0, 10)
	b.Add(0, 11)
	b.Add(3, 99)
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	if b.Bytes() != 12 {
		t.Fatalf("Bytes = %d", b.Bytes())
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestUniquify(t *testing.T) {
	b := NewBins(2)
	for _, v := range []uint32{5, 3, 5, 5, 1, 3} {
		b.Add(0, v)
	}
	removed := b.Uniquify(0)
	if removed != 3 {
		t.Fatalf("removed = %d, want 3", removed)
	}
	want := []uint32{1, 3, 5}
	got := b.PerGPU[0]
	if len(got) != len(want) {
		t.Fatalf("bin = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin = %v, want %v", got, want)
		}
	}
	if b.Uniquify(1) != 0 {
		t.Fatal("empty bin uniquify should remove 0")
	}
}

func TestUniquifyAll(t *testing.T) {
	b := NewBins(3)
	b.Add(0, 1)
	b.Add(0, 1)
	b.Add(2, 7)
	b.Add(2, 7)
	b.Add(2, 8)
	if got := b.UniquifyAll(); got != 2 {
		t.Fatalf("UniquifyAll = %d", got)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	const gpusPerRank = 3
	b := NewBins(2 * gpusPerRank)
	// Destination rank 1 owns GPUs 3,4,5.
	b.Add(3, 100)
	b.Add(4, 200)
	b.Add(4, 201)
	// Rank 0's bins must not leak into rank 1's payload.
	b.Add(0, 999)
	buf := b.PackRank(1, gpusPerRank)
	slots, err := UnpackRank(buf, gpusPerRank)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots[0]) != 1 || slots[0][0] != 100 {
		t.Fatalf("slot 0 = %v", slots[0])
	}
	if len(slots[1]) != 2 || slots[1][0] != 200 || slots[1][1] != 201 {
		t.Fatalf("slot 1 = %v", slots[1])
	}
	if len(slots[2]) != 0 {
		t.Fatalf("slot 2 = %v", slots[2])
	}
}

func TestUnpackErrors(t *testing.T) {
	if _, err := UnpackRank([]byte{1, 2}, 1); err == nil {
		t.Fatal("accepted truncated header")
	}
	// Header claims 2 ids but payload has none.
	if _, err := UnpackRank([]byte{2, 0, 0, 0}, 1); err == nil {
		t.Fatal("accepted truncated payload")
	}
	// Trailing garbage.
	buf := NewBins(1).PackRank(0, 1)
	buf = append(buf, 0xff)
	if _, err := UnpackRank(buf, 1); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestQuickPackUnpack(t *testing.T) {
	f := func(seed int64, gpusRaw uint8) bool {
		gpus := int(gpusRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		b := NewBins(gpus)
		want := make([][]uint32, gpus)
		for g := 0; g < gpus; g++ {
			for i := 0; i < rng.Intn(20); i++ {
				v := rng.Uint32()
				b.Add(g, v)
				want[g] = append(want[g], v)
			}
		}
		slots, err := UnpackRank(b.PackRank(0, gpus), gpus)
		if err != nil {
			return false
		}
		for g := range want {
			if len(slots[g]) != len(want[g]) {
				return false
			}
			for i := range want[g] {
				if slots[g][i] != want[g][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSortUnique(t *testing.T) {
	got := SortUnique([]uint32{9, 1, 9, 2, 2, 7})
	want := []uint32{1, 2, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if out := SortUnique(nil); len(out) != 0 {
		t.Fatal("SortUnique(nil) not empty")
	}
}
