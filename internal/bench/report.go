// Package bench runs the pinned benchmark-trajectory suite and diffs its
// schema-versioned JSON reports across PRs. Every PR regenerates
// BENCH_<pr>.json at the repo root via `bfsbench -json`; CI runs the quick
// suite and diffs it against the latest committed report with per-metric
// tolerances, so a perf regression fails the build instead of hiding in PR
// prose. The suite measures through the same graph cache, source seeds and
// plan tuning as the experiments package, which is what makes the recorded
// wire-byte counts exact across runs and machines.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// SchemaVersion identifies the report layout. Bump it whenever a cell key or
// metric semantic changes; the differ refuses to compare across versions
// rather than produce silently meaningless deltas.
const SchemaVersion = 1

// Report is one suite run's machine-readable output.
type Report struct {
	Schema int    `json:"schema"`
	Quick  bool   `json:"quick"`
	Seed   int64  `json:"seed"`
	Cells  []Cell `json:"cells"`
}

// Cell is one measured value: an experiment's metric at one point of the
// scale × ranks × config grid. Zero Scale/Ranks and empty Config mean the
// dimension does not apply to the experiment.
type Cell struct {
	Experiment string  `json:"experiment"`
	Scale      int     `json:"scale,omitempty"`
	Ranks      int     `json:"ranks,omitempty"`
	Config     string  `json:"config,omitempty"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit,omitempty"`
}

// Key identifies a cell across reports: every dimension except the value.
func (c Cell) Key() string {
	var b strings.Builder
	b.WriteString(c.Experiment)
	if c.Scale != 0 {
		b.WriteString("/s" + strconv.Itoa(c.Scale))
	}
	if c.Ranks != 0 {
		b.WriteString("/r" + strconv.Itoa(c.Ranks))
	}
	if c.Config != "" {
		b.WriteString("/" + c.Config)
	}
	b.WriteString("/" + c.Metric)
	return b.String()
}

// WriteFile marshals the report as indented JSON (newline-terminated, so
// committed baselines diff cleanly).
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses a report and validates its schema version.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema version %d, this binary writes %d — regenerate the report instead of comparing across schemas",
			path, r.Schema, SchemaVersion)
	}
	return &r, nil
}
