package bench

// Report differ: per-metric tolerances, strict boundaries, readable table.
// The tolerance table encodes which direction of movement is a regression
// per metric — GTEPS falling, allocs rising, wire bytes changing at all —
// and how much movement the trajectory absorbs as noise before failing.

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Tolerance bounds one metric's allowed movement between baseline and
// current. Down fails when current < baseline·(1−Down); Up fails when
// current > baseline·(1+Up); Exact fails on any difference. Both relative
// bounds are strict comparisons, so a cell sitting exactly on the boundary
// passes. Zero-valued fields in a direction mean that direction is free.
type Tolerance struct {
	Down, Up float64
	Exact    bool
}

// tolerances is the pinned per-metric policy:
//
//	gteps               −5%: the simulation is deterministic, so real drops
//	                    are code changes; the headroom is for deliberate
//	                    timing-model adjustments that should stay small.
//	gteps_per_query     −5%: same policy for the multi-source cells' aggregate
//	                    per-query throughput (batch and sweep paths alike).
//	gteps_repaired      −5%: the dynamic cell's repaired-query rate is fully
//	                    simulated and deterministic, same policy as gteps.
//	wire_bytes          exact: bytes on the wire are a pure function of the
//	                    codec and the pinned inputs — any change is either a
//	                    codec bug or a deliberate format change that must
//	                    regenerate the baseline.
//	allocs/bytes/query  +10%: ReadMemStats deltas carry scheduler and map-
//	                    growth noise; improvements are always welcome.
//	hidden_codec_ratio  −10%: less overlap means the pipeline degraded.
//	nvlink_hidden_ratio −10%: same policy for the hierarchical exchange's
//	                    NVLink staging hidden under hop transfers.
//	policy_error        +25% relative: the cost model drifting further from
//	                    the simulated network is a regression, but the error
//	                    is a small base so it gets the widest band.
var tolerances = map[string]Tolerance{
	"gteps":               {Down: 0.05},
	"gteps_per_query":     {Down: 0.05},
	"gteps_repaired":      {Down: 0.05},
	"wire_bytes":          {Exact: true},
	"allocs_per_query":    {Up: 0.10},
	"bytes_per_query":     {Up: 0.10},
	"hidden_codec_ratio":  {Down: 0.10},
	"nvlink_hidden_ratio": {Down: 0.10},
	"policy_error":        {Up: 0.25},
}

// configTolerances overrides the metric policy for specific cell configs.
// The hybrid cells' wire bytes are not a pure codec function: they follow
// the per-iteration strategy decisions, which a deliberate cost-model
// change legitimately moves (e.g. the NVLink-aware hierarchical costs).
// They get a band instead of the exact gate — wide enough for decision
// shifts, tight enough that a codec bug (which moves bytes on every
// config, including the fixed-strategy cells that stay exact) still trips.
var configTolerances = map[string]map[string]Tolerance{
	"hybrid": {"wire_bytes": {Down: 0.25, Up: 0.25}},
}

// DiffRow is one compared cell.
type DiffRow struct {
	Key      string
	Metric   string
	Old, New float64
	DeltaPct float64 // (new-old)/old·100; 0 when old is 0
	OK       bool
	Reason   string // failure explanation, empty when OK
}

// DiffResult is a full report comparison.
type DiffResult struct {
	Rows []DiffRow
	// Added/Removed list cell keys present in only one report — expected
	// when experiments change between PRs, so listed but never fatal.
	Added, Removed []string
}

// OK reports whether no compared cell regressed.
func (d *DiffResult) OK() bool {
	for _, r := range d.Rows {
		if !r.OK {
			return false
		}
	}
	return true
}

// Regressions counts failing rows.
func (d *DiffResult) Regressions() int {
	n := 0
	for _, r := range d.Rows {
		if !r.OK {
			n++
		}
	}
	return n
}

// Diff compares current against baseline. It refuses mismatched schema
// versions and mismatched quick flags (a full report's cells would all show
// as added/removed against a quick baseline, making the comparison
// meaningless rather than wrong).
func Diff(baseline, current *Report) (*DiffResult, error) {
	if baseline.Schema != current.Schema {
		return nil, fmt.Errorf("bench: schema mismatch: baseline %d vs current %d — regenerate the baseline with this binary",
			baseline.Schema, current.Schema)
	}
	if baseline.Quick != current.Quick {
		return nil, fmt.Errorf("bench: quick-mode mismatch: baseline quick=%v vs current quick=%v — compare like with like",
			baseline.Quick, current.Quick)
	}
	base := map[string]Cell{}
	for _, c := range baseline.Cells {
		base[c.Key()] = c
	}
	var d DiffResult
	seen := map[string]bool{}
	for _, c := range current.Cells {
		key := c.Key()
		seen[key] = true
		b, ok := base[key]
		if !ok {
			d.Added = append(d.Added, key)
			continue
		}
		d.Rows = append(d.Rows, compareCell(key, b, c))
	}
	for _, c := range baseline.Cells {
		if !seen[c.Key()] {
			d.Removed = append(d.Removed, c.Key())
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Slice(d.Rows, func(i, j int) bool { return d.Rows[i].Key < d.Rows[j].Key })
	return &d, nil
}

// compareCell applies the metric's tolerance. Metrics without a tolerance
// entry are informational: recorded in the table, never failing.
func compareCell(key string, baseline, current Cell) DiffRow {
	row := DiffRow{Key: key, Metric: current.Metric, Old: baseline.Value, New: current.Value, OK: true}
	if baseline.Value != 0 {
		row.DeltaPct = (current.Value - baseline.Value) / math.Abs(baseline.Value) * 100
	}
	tol, ok := tolerances[current.Metric]
	if byCfg, okCfg := configTolerances[current.Config][current.Metric]; okCfg {
		tol, ok = byCfg, true
	}
	if !ok {
		return row
	}
	switch {
	case tol.Exact:
		if current.Value != baseline.Value {
			row.OK = false
			row.Reason = "exact metric changed"
		}
	default:
		if tol.Down > 0 && current.Value < baseline.Value*(1-tol.Down) {
			row.OK = false
			row.Reason = fmt.Sprintf("fell more than %g%%", tol.Down*100)
		}
		if tol.Up > 0 && current.Value > baseline.Value*(1+tol.Up) {
			row.OK = false
			row.Reason = fmt.Sprintf("rose more than %g%%", tol.Up*100)
		}
	}
	return row
}

// Render writes the per-cell comparison table plus the added/removed lists.
func (d *DiffResult) Render(w io.Writer) {
	width := len("cell")
	for _, r := range d.Rows {
		if len(r.Key) > width {
			width = len(r.Key)
		}
	}
	fmt.Fprintf(w, "%-*s  %14s  %14s  %8s  %s\n", width, "cell", "baseline", "current", "delta", "verdict")
	for _, r := range d.Rows {
		verdict := "ok"
		if !r.OK {
			verdict = "REGRESSION: " + r.Reason
		}
		fmt.Fprintf(w, "%-*s  %14.6g  %14.6g  %+7.2f%%  %s\n", width, r.Key, r.Old, r.New, r.DeltaPct, verdict)
	}
	for _, k := range d.Added {
		fmt.Fprintf(w, "added:   %s (no baseline — recorded, not compared)\n", k)
	}
	for _, k := range d.Removed {
		fmt.Fprintf(w, "removed: %s (in baseline only — dropped from the suite?)\n", k)
	}
	if n := d.Regressions(); n > 0 {
		fmt.Fprintf(w, "%d regression(s)\n", n)
	} else {
		fmt.Fprintf(w, "no regressions (%d cells compared)\n", len(d.Rows))
	}
}
