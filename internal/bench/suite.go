package bench

// The pinned suite. Fixed seeds, fixed scales, fixed shapes: the point is a
// trajectory, so the grid must not drift between PRs without a deliberate
// schema decision. Quick mode (CI, BENCH_<pr>.json baselines) runs one small
// scale; full mode adds the larger cells for local investigation.

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"gcbfs/internal/core"
	"gcbfs/internal/delta"
	"gcbfs/internal/experiments"
	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/wire"
)

// Params tunes the suite run.
type Params struct {
	Quick bool
	Seed  int64 // source-selection seed; 0 = the experiments' default
}

func (p Params) seed() int64 {
	if p.Seed != 0 {
		return p.Seed
	}
	return 20180405 // the paper's arXiv v2 date, as everywhere else
}

// sourcesPerCell is the BFS runs per exchange-grid cell (small: the suite's
// job is trending, not statistics — the simulation is deterministic anyway).
const sourcesPerCell = 3

// allocSources is the batch size of the allocation cells, matching the
// BenchmarkQueryAllocs harness so the two guards measure the same regime.
const allocSources = 8

// exchangeConfigs is the pinned strategy grid — the cmp4 ablation's axes.
var exchangeConfigs = []struct {
	name     string
	exchange core.Exchange
	pipeline bool
}{
	{"allpairs", core.ExchangeAllPairs, true},
	{"butterfly-seq", core.ExchangeButterfly, false},
	{"butterfly-pipe", core.ExchangeButterfly, true},
	{"hybrid", core.ExchangeHybrid, true},
}

// Run executes the pinned suite and returns the report.
func Run(p Params) (*Report, error) {
	rep := &Report{Schema: SchemaVersion, Quick: p.Quick, Seed: p.seed()}
	scales, rankCounts := []int{12, 14}, []int{4, 8}
	if p.Quick {
		scales, rankCounts = []int{11}, []int{4, 6}
	}
	for _, scale := range scales {
		el := experiments.BenchGraph(scale)
		sources := experiments.BenchSources(el, sourcesPerCell, p.seed())
		for _, ranks := range rankCounts {
			shape := core.ClusterShape{Nodes: ranks / 2, RanksPerNode: 2, GPUsPerRank: 2}
			opts := core.DefaultOptions()
			opts.Compression = wire.ModeAdaptive
			opts.CollectLevels = false
			pl, _, err := experiments.BenchPlan(el, shape, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: scale %d ranks %d: %w", scale, ranks, err)
			}
			for _, cfg := range exchangeConfigs {
				ex, pipe := cfg.exchange, cfg.pipeline
				ov := core.Overrides{Exchange: &ex, PipelineHops: &pipe}
				results, err := pl.RunBatch(context.Background(), sources, 4, ov)
				if err != nil {
					return nil, fmt.Errorf("bench: scale %d ranks %d %s: %w", scale, ranks, cfg.name, err)
				}
				rep.Cells = append(rep.Cells, exchangeCells(scale, ranks, cfg.name, results)...)
			}
		}
	}
	if err := hierarchyCells(rep); err != nil {
		return nil, err
	}
	if err := multisourceCells(rep); err != nil {
		return nil, err
	}
	if err := dynamicCells(rep); err != nil {
		return nil, err
	}
	if err := allocCells(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// dynamicFrac is the pinned delta size of the dynamic cells: 1% of the
// undirected edge count, mixed inserts and deletes — small enough that the
// repair should beat recomputing, large enough to exercise the probe.
const dynamicFrac = 0.01

// dynamicCells pins the incremental-graph trajectory: one mixed delta
// advances the scale-12 graph an epoch (incremental distribution beside the
// live partition, wall-clock build time recorded as informational), and the
// prior query is repaired on the new epoch. Recorded: the repaired query's
// GTEPS (simulated, deterministic — −5% tolerance), its exact wire bytes,
// and the repair:recompute simulated-seconds speedup (informational — it
// tracks delta structure, not code quality). The repair is asserted
// bit-identical to the recompute here too, so a broken repair can never
// post a benchmark number.
func dynamicCells(rep *Report) error {
	el := experiments.BenchGraph(12)
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}
	cfg := shape.PartitionConfig()
	th := partition.SuggestThreshold(el.OutDegrees(), 4*el.N/int64(shape.P()))
	opts := core.DefaultOptions()
	opts.Compression = wire.ModeAdaptive
	opts.CollectLevels = true
	opts.CollectParents = true
	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, cfg)
	if err != nil {
		return fmt.Errorf("bench: dynamic cells: %w", err)
	}
	p1, err := core.NewPlanEpoch(sg, shape, opts, 1)
	if err != nil {
		return fmt.Errorf("bench: dynamic cells: %w", err)
	}
	source := experiments.BenchSources(el, 1, rep.Seed)[0]
	ctx := context.Background()
	prior, err := p1.Run(ctx, source, core.Overrides{})
	if err != nil {
		return fmt.Errorf("bench: dynamic cells: %w", err)
	}

	b := delta.Synthesize(el, dynamicFrac, delta.KindMixed, uint64(rep.Seed))
	el2, err := delta.Apply(el, b)
	if err != nil {
		return fmt.Errorf("bench: dynamic cells: %w", err)
	}
	buildStart := time.Now()
	sep2 := partition.Separate(el2, th)
	sg2, _, err := partition.DistributeIncremental(el2, sep2, cfg, sg)
	if err != nil {
		return fmt.Errorf("bench: dynamic cells: %w", err)
	}
	p2, err := core.NewPlanEpoch(sg2, shape, opts, 2)
	if err != nil {
		return fmt.Errorf("bench: dynamic cells: %w", err)
	}
	buildMS := time.Since(buildStart).Seconds() * 1e3

	full, err := p2.Run(ctx, source, core.Overrides{})
	if err != nil {
		return fmt.Errorf("bench: dynamic cells: %w", err)
	}
	invalid, seeds := delta.Affected(prior.Levels, prior.Parents, b)
	rp, err := p2.RunRepair(ctx, source, prior.Levels, invalid, seeds, core.Overrides{})
	if err != nil {
		return fmt.Errorf("bench: dynamic cells: %w", err)
	}
	for v := range full.Levels {
		if rp.Levels[v] != full.Levels[v] || rp.Parents[v] != full.Parents[v] {
			return fmt.Errorf("bench: dynamic cells: repair diverged from recompute at vertex %d", v)
		}
	}
	mk := func(metric string, v float64, unit string) Cell {
		return Cell{Experiment: "dynamic", Scale: 12, Ranks: 4,
			Config: "mixed-1pct", Metric: metric, Value: v, Unit: unit}
	}
	rep.Cells = append(rep.Cells,
		mk("gteps_repaired", rp.GTEPS(), "GTEPS"),
		mk("wire_bytes", float64(rp.Wire.CompressedBytes), "B"),
		mk("repair_speedup", full.SimSeconds/rp.SimSeconds, "x"), // informational: no tolerance entry
		mk("epoch_build_ms", buildMS, "ms"),                      // informational: wall clock
	)
	return nil
}

// hierarchyGPUs is the pinned GPUs-per-rank axis of the hierarchy cells.
var hierarchyGPUs = []int{2, 4}

// hierarchyCells pins the two-level exchange trajectory: at 4 ranks ×
// GPUs-per-rank {2, 4}, the flat per-GPU-fragment baseline against the
// hierarchical per-rank aggregation, under all-pairs (where the per-message
// efficiency win shows up directly in remote-normal) and the pipelined
// butterfly (where the NVLink staging hides under hop transfers —
// nvlink_hidden_ratio guards the overlap). The suite asserts the headline
// property right here: hierarchical all-pairs remote-normal below flat at
// every GPUs-per-rank ≥ 2, so a regression cannot post a baseline.
func hierarchyCells(rep *Report) error {
	el := experiments.BenchGraph(12)
	sources := experiments.BenchSources(el, sourcesPerCell, rep.Seed)
	configs := []struct {
		name     string
		exchange core.Exchange
	}{
		{"allpairs", core.ExchangeAllPairs},
		{"butterfly-pipe", core.ExchangeButterfly},
	}
	for _, pgpu := range hierarchyGPUs {
		shape := core.ClusterShape{Nodes: 4, RanksPerNode: 1, GPUsPerRank: pgpu}
		opts := core.DefaultOptions()
		opts.Compression = wire.ModeAdaptive
		opts.CollectLevels = false
		pl, _, err := experiments.BenchPlan(el, shape, opts)
		if err != nil {
			return fmt.Errorf("bench: hierarchy cells pgpu=%d: %w", pgpu, err)
		}
		for _, cfg := range configs {
			remoteBy := map[bool]float64{}
			for _, flat := range []bool{true, false} {
				ex, fl := cfg.exchange, flat
				results, err := pl.RunBatch(context.Background(), sources, 4,
					core.Overrides{Exchange: &ex, FlatExchange: &fl})
				if err != nil {
					return fmt.Errorf("bench: hierarchy pgpu=%d %s flat=%v: %w", pgpu, cfg.name, flat, err)
				}
				agg := metrics.AggregateRuns(results)
				var wireBytes, msgs int64
				var remote, nvlink, hiddenNV float64
				for _, r := range results {
					wireBytes += r.Wire.CompressedBytes
					msgs += r.Exchange.Messages
					remote += r.Parts.RemoteNormal
					nvlink += r.Exchange.NVLinkSeconds
					hiddenNV += r.Exchange.HiddenNVLinkSeconds
				}
				remoteBy[flat] = remote
				mode := "hier"
				if flat {
					mode = "flat"
				}
				mk := func(metric string, v float64, unit string) Cell {
					return Cell{Experiment: "hierarchy", Scale: 12, Ranks: 4,
						Config: fmt.Sprintf("%s-%s-g%d", cfg.name, mode, pgpu),
						Metric: metric, Value: v, Unit: unit}
				}
				cells := []Cell{
					mk("gteps", agg.GTEPS, "GTEPS"),
					mk("wire_bytes", float64(wireBytes), "B"),
					mk("remote_normal_us", remote*1e6, "µs"),  // informational: compared across modes below
					mk("messages", float64(msgs), "messages"), // informational: identity asserted in cmp7
				}
				if !flat && cfg.exchange == core.ExchangeButterfly {
					ratio := 0.0
					if nvlink > 0 {
						ratio = hiddenNV / nvlink
					}
					cells = append(cells, mk("nvlink_hidden_ratio", ratio, ""))
				}
				rep.Cells = append(rep.Cells, cells...)
			}
			if cfg.exchange == core.ExchangeAllPairs && remoteBy[false] >= remoteBy[true] {
				return fmt.Errorf(
					"bench: hierarchy pgpu=%d %s: hierarchical remote-normal %.3g s not below flat %.3g s",
					pgpu, cfg.name, remoteBy[false], remoteBy[true])
			}
		}
	}
	return nil
}

// multisourceWidths is the pinned sweep-width axis of the multi-source cells.
var multisourceWidths = []int{8, 64}

// multisourceCells pins the multi-source sweep trajectory: for K ∈ {8, 64}
// the same K sources go through the independent batch path and one shared
// sweep, and the cells record each path's aggregate per-query throughput
// (Σ TEPS edges / Σ per-query seconds), the sweep's exact wire bytes, and the
// sweep:batch speedup. Scale 12 on 2×2×2 with the adaptive codec matches the
// alloc cells' regime so the two guards watch the same configuration.
func multisourceCells(rep *Report) error {
	el := experiments.BenchGraph(12)
	opts := core.DefaultOptions()
	opts.Compression = wire.ModeAdaptive
	opts.CollectLevels = false
	pl, _, err := experiments.BenchPlan(el, core.ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}, opts)
	if err != nil {
		return fmt.Errorf("bench: multisource cells: %w", err)
	}
	perQueryGTEPS := func(results []*metrics.RunResult) (gteps float64, wireBytes int64) {
		var teps int64
		var sim float64
		for _, r := range results {
			teps += r.TEPSEdges
			sim += r.SimSeconds
			wireBytes += r.Wire.CompressedBytes
		}
		return float64(teps) / sim / 1e9, wireBytes
	}
	for _, k := range multisourceWidths {
		sources := experiments.BenchSources(el, k, rep.Seed)
		batch, err := pl.RunBatch(context.Background(), sources, 4, core.Overrides{})
		if err != nil {
			return fmt.Errorf("bench: multisource K=%d batch: %w", k, err)
		}
		sweep, err := pl.RunSweep(context.Background(), sources, core.Overrides{})
		if err != nil {
			return fmt.Errorf("bench: multisource K=%d sweep: %w", k, err)
		}
		bG, _ := perQueryGTEPS(batch)
		sG, sW := perQueryGTEPS(sweep)
		mk := func(config, metric string, v float64, unit string) Cell {
			return Cell{Experiment: "multisource", Scale: 12, Ranks: 4,
				Config: fmt.Sprintf("%s-k%d", config, k), Metric: metric, Value: v, Unit: unit}
		}
		rep.Cells = append(rep.Cells,
			mk("batch", "gteps_per_query", bG, "GTEPS"),
			mk("sweep", "gteps_per_query", sG, "GTEPS"),
			mk("sweep", "wire_bytes", float64(sW), "B"),
			mk("sweep", "sweep_speedup", sG/bG, "x"), // informational: no tolerance entry
		)
	}
	return nil
}

// exchangeCells reduces one config's batch into the per-cell metrics:
// traversal rate, exact bytes on the wire, the fraction of codec compute the
// pipeline hid, and the policy cost model's relative prediction error.
func exchangeCells(scale, ranks int, config string, results []*metrics.RunResult) []Cell {
	agg := metrics.AggregateRuns(results)
	var wireBytes int64
	var codecSecs, hiddenSecs, predicted, remote float64
	for _, r := range results {
		wireBytes += r.Wire.CompressedBytes
		codecSecs += r.Wire.CodecSeconds
		hiddenSecs += r.Exchange.HiddenCodecSeconds
		predicted += r.Exchange.PredictedSeconds
		remote += r.Parts.RemoteNormal
	}
	hiddenRatio := 0.0
	if codecSecs > 0 {
		hiddenRatio = hiddenSecs / codecSecs
	}
	policyErr := 0.0
	if remote > 0 {
		policyErr = (predicted - remote) / remote
		if policyErr < 0 {
			policyErr = -policyErr
		}
	}
	mk := func(metric string, v float64, unit string) Cell {
		return Cell{Experiment: "exchange", Scale: scale, Ranks: ranks,
			Config: config, Metric: metric, Value: v, Unit: unit}
	}
	return []Cell{
		mk("gteps", agg.GTEPS, "GTEPS"),
		mk("wire_bytes", float64(wireBytes), "B"),
		mk("hidden_codec_ratio", hiddenRatio, ""),
		mk("policy_error", policyErr, ""),
	}
}

// allocCells measures heap allocations and bytes per query at Parallelism 1
// and 8 on the same graph/shape/options as BenchmarkQueryAllocs: scale 12,
// 2×2×2, adaptive codec, hybrid exchange, no level collection. GC is
// disabled around the measured batch (ReadMemStats deltas, not timing) and a
// warmup batch sizes the session pool and arenas first, so the steady state
// is what gets recorded.
func allocCells(rep *Report) error {
	el := experiments.BenchGraph(12)
	sources := experiments.BenchSources(el, allocSources, 7)
	opts := core.DefaultOptions()
	opts.Compression = wire.ModeAdaptive
	opts.Exchange = core.ExchangeHybrid
	opts.CollectLevels = false
	pl, _, err := experiments.BenchPlan(el, core.ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}, opts)
	if err != nil {
		return fmt.Errorf("bench: alloc cells: %w", err)
	}
	for _, par := range []int{1, 8} {
		batch := func() error {
			_, err := pl.RunBatch(context.Background(), sources, par, core.Overrides{})
			return err
		}
		if err := batch(); err != nil { // warmup: pool, arenas, selector maps
			return fmt.Errorf("bench: alloc cells: %w", err)
		}
		prevGC := debug.SetGCPercent(-1)
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		err := batch()
		runtime.ReadMemStats(&after)
		debug.SetGCPercent(prevGC)
		if err != nil {
			return fmt.Errorf("bench: alloc cells: %w", err)
		}
		n := float64(len(sources))
		config := fmt.Sprintf("parallel-%d", par)
		rep.Cells = append(rep.Cells,
			Cell{Experiment: "allocs", Config: config, Metric: "allocs_per_query",
				Value: float64(after.Mallocs-before.Mallocs) / n, Unit: "allocs"},
			Cell{Experiment: "allocs", Config: config, Metric: "bytes_per_query",
				Value: float64(after.TotalAlloc-before.TotalAlloc) / n, Unit: "B"},
		)
	}
	return nil
}
