package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func report(quick bool, cells ...Cell) *Report {
	return &Report{Schema: SchemaVersion, Quick: quick, Seed: 20180405, Cells: cells}
}

func gtepsCell(config string, v float64) Cell {
	return Cell{Experiment: "exchange", Scale: 11, Ranks: 4, Config: config, Metric: "gteps", Value: v, Unit: "GTEPS"}
}

func mustDiff(t *testing.T, baseline, current *Report) *DiffResult {
	t.Helper()
	d, err := Diff(baseline, current)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	return d
}

// The −5% GTEPS bound is strict: landing exactly on the boundary passes,
// anything past it fails. These two cases pin the comparison operator so a
// refactor can't silently flip <= for <.
func TestGTEPSToleranceBoundary(t *testing.T) {
	base := report(true, gtepsCell("hybrid", 100))

	d := mustDiff(t, base, report(true, gtepsCell("hybrid", 95)))
	if !d.OK() {
		t.Errorf("exactly -5%% must pass, got regression: %+v", d.Rows)
	}

	d = mustDiff(t, base, report(true, gtepsCell("hybrid", 94.99)))
	if d.OK() {
		t.Error("-5.01% must fail, diff reported OK")
	}
	if n := d.Regressions(); n != 1 {
		t.Errorf("Regressions() = %d, want 1", n)
	}
	if r := d.Rows[0]; r.OK || !strings.Contains(r.Reason, "fell") {
		t.Errorf("row = %+v, want a 'fell more than' regression", r)
	}

	// GTEPS has no upper bound: a speedup of any size passes.
	if d := mustDiff(t, base, report(true, gtepsCell("hybrid", 250))); !d.OK() {
		t.Errorf("gteps improvement must pass, got: %+v", d.Rows)
	}
}

func TestWireBytesExact(t *testing.T) {
	cell := func(v float64) Cell {
		return Cell{Experiment: "exchange", Scale: 11, Ranks: 4, Config: "butterfly-pipe", Metric: "wire_bytes", Value: v, Unit: "B"}
	}
	if d := mustDiff(t, report(true, cell(1411)), report(true, cell(1411))); !d.OK() {
		t.Errorf("unchanged wire_bytes must pass: %+v", d.Rows)
	}
	// One byte in either direction fails — even an apparent improvement,
	// because the metric is a codec-correctness canary, not a target.
	for _, v := range []float64{1410, 1412} {
		d := mustDiff(t, report(true, cell(1411)), report(true, cell(v)))
		if d.OK() {
			t.Errorf("wire_bytes %v vs 1411 must fail", v)
		}
	}
}

func TestWireBytesHybridBand(t *testing.T) {
	cell := func(v float64) Cell {
		return Cell{Experiment: "exchange", Scale: 11, Ranks: 4, Config: "hybrid", Metric: "wire_bytes", Value: v, Unit: "B"}
	}
	// Hybrid wire bytes track the strategy decisions, so they get a ±25%
	// band instead of the exact gate: small decision shifts pass, but a
	// codec-scale movement still fails.
	for _, v := range []float64{1411, 1200, 1700} {
		if d := mustDiff(t, report(true, cell(1411)), report(true, cell(v))); !d.OK() {
			t.Errorf("hybrid wire_bytes %v vs 1411 must pass: %+v", v, d.Rows)
		}
	}
	for _, v := range []float64{900, 2000} {
		if d := mustDiff(t, report(true, cell(1411)), report(true, cell(v))); d.OK() {
			t.Errorf("hybrid wire_bytes %v vs 1411 must fail", v)
		}
	}
}

func TestAllocsUpperBoundary(t *testing.T) {
	cell := func(v float64) Cell {
		return Cell{Experiment: "allocs", Config: "parallel-8", Metric: "allocs_per_query", Value: v}
	}
	base := report(true, cell(1000))
	if d := mustDiff(t, base, report(true, cell(1100))); !d.OK() {
		t.Errorf("exactly +10%% allocs must pass: %+v", d.Rows)
	}
	if d := mustDiff(t, base, report(true, cell(1100.01))); d.OK() {
		t.Error("+10.001% allocs must fail")
	}
	// Allocs falling — the whole point of the optimization — always passes.
	if d := mustDiff(t, base, report(true, cell(100))); !d.OK() {
		t.Errorf("alloc improvement must pass: %+v", d.Rows)
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	base := report(true, gtepsCell("hybrid", 100))
	cur := report(true, gtepsCell("hybrid", 100))
	cur.Schema = SchemaVersion + 1
	if _, err := Diff(base, cur); err == nil || !strings.Contains(err.Error(), "schema mismatch") {
		t.Errorf("Diff across schemas: err = %v, want schema mismatch error", err)
	}
}

func TestQuickMismatchRejected(t *testing.T) {
	base := report(false, gtepsCell("hybrid", 100))
	cur := report(true, gtepsCell("hybrid", 100))
	if _, err := Diff(base, cur); err == nil || !strings.Contains(err.Error(), "quick-mode mismatch") {
		t.Errorf("Diff across run modes: err = %v, want quick-mode mismatch error", err)
	}
}

// Cells appearing or disappearing between PRs (an experiment added or
// retired) are reported but never fatal — only cells present in both reports
// are compared.
func TestAddedRemovedCellsNonFatal(t *testing.T) {
	shared := gtepsCell("hybrid", 100)
	onlyOld := gtepsCell("allpairs", 50)
	onlyNew := gtepsCell("butterfly-pipe", 120)

	d := mustDiff(t, report(true, shared, onlyOld), report(true, shared, onlyNew))
	if !d.OK() {
		t.Errorf("added/removed cells must not regress the diff: %+v", d.Rows)
	}
	if len(d.Rows) != 1 || d.Rows[0].Key != shared.Key() {
		t.Errorf("Rows = %+v, want only the shared cell compared", d.Rows)
	}
	if len(d.Added) != 1 || d.Added[0] != onlyNew.Key() {
		t.Errorf("Added = %v, want [%s]", d.Added, onlyNew.Key())
	}
	if len(d.Removed) != 1 || d.Removed[0] != onlyOld.Key() {
		t.Errorf("Removed = %v, want [%s]", d.Removed, onlyOld.Key())
	}

	var sb strings.Builder
	d.Render(&sb)
	out := sb.String()
	for _, want := range []string{"added:", "removed:", "no regressions"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}

// Metrics the tolerance table doesn't know about are informational: shown in
// the table, never failing — so a new metric can land before its policy does.
func TestUnknownMetricInformational(t *testing.T) {
	cell := func(v float64) Cell {
		return Cell{Experiment: "exchange", Scale: 11, Ranks: 4, Config: "hybrid", Metric: "frontier_peak", Value: v}
	}
	d := mustDiff(t, report(true, cell(10)), report(true, cell(99)))
	if !d.OK() || len(d.Rows) != 1 {
		t.Errorf("unknown metric must compare informationally: %+v", d.Rows)
	}
}

func TestReportRoundTripAndSchemaGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	rep := report(true, gtepsCell("hybrid", 1.5))
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Schema != rep.Schema || got.Quick != rep.Quick || got.Seed != rep.Seed || len(got.Cells) != 1 || got.Cells[0] != rep.Cells[0] {
		t.Errorf("round trip mismatch: got %+v", got)
	}

	stale := report(true, gtepsCell("hybrid", 1.5))
	stale.Schema = SchemaVersion + 7
	stalePath := filepath.Join(dir, "stale.json")
	if err := stale.WriteFile(stalePath); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := ReadFile(stalePath); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("ReadFile of future schema: err = %v, want schema version error", err)
	}
}
