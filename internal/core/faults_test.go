package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"gcbfs/internal/delta"
	"gcbfs/internal/faults"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// chaosOptions is the standard configuration for injection tests: the
// checksummed codec (the fixed-width packing has no CRC, so an in-range bit
// flip there decodes cleanly), parents collected so the parent-resolution
// payloads flow, and the injector armed.
func chaosOptions(in *faults.Injector, x Exchange) Options {
	o := DefaultOptions()
	o.Exchange = x
	o.PipelineHops = true
	o.CollectLevels = true
	o.CollectParents = true
	o.Compression = wire.ModeAdaptive
	o.Inject = in
	return o
}

func chaosPlan(t testing.TB, in *faults.Injector, x Exchange) *Plan {
	t.Helper()
	el := rmat.Generate(rmat.DefaultParams(9))
	sep := partition.Separate(el, 8)
	sg, err := partition.Distribute(el, sep, ClusterShape{2, 2, 2}.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(sg, ClusterShape{2, 2, 2}, chaosOptions(in, x))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPayloadFaultsSurfaceTypedErrors drives every payload panic site with a
// site-targeted injector and requires the contained error to carry
// wire.ErrCorrupt — never a bare panic, never a partial result. The site
// substring in the error message proves the intended panic site fired.
func TestPayloadFaultsSurfaceTypedErrors(t *testing.T) {
	cases := []struct {
		name     string
		exchange Exchange
		kind     faults.Kind
		site     string
		wantMsg  string
	}{
		{"corrupt/allpairs-exchange", ExchangeAllPairs, faults.KindCorrupt, faults.SiteExchange, "exchange payload"},
		{"truncate/allpairs-exchange", ExchangeAllPairs, faults.KindTruncate, faults.SiteExchange, "exchange payload"},
		{"drop/allpairs-exchange", ExchangeAllPairs, faults.KindDrop, faults.SiteExchange, "exchange payload"},
		{"corrupt/butterfly-hop", ExchangeButterfly, faults.KindCorrupt, faults.SiteExchange, "butterfly payload"},
		{"truncate/butterfly-hop", ExchangeButterfly, faults.KindTruncate, faults.SiteExchange, "butterfly payload"},
		{"corrupt/parents", ExchangeAllPairs, faults.KindCorrupt, faults.SiteParents, "parent payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := faults.New(1, tc.kind, 1).WithSites(tc.site)
			p := chaosPlan(t, in, tc.exchange)
			r, err := p.Run(context.Background(), 0, Overrides{})
			if err == nil {
				t.Fatalf("rate-1 %v at site %q did not fail the run", tc.kind, tc.site)
			}
			if r != nil {
				t.Fatal("partial result escaped alongside the error")
			}
			if !errors.Is(err, wire.ErrCorrupt) {
				t.Fatalf("error not wire.ErrCorrupt-typed: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not name the %q panic site", err, tc.wantMsg)
			}
			if in.Injected() == 0 {
				t.Fatal("run failed but the injector fired nothing")
			}
		})
	}
}

func TestSweepFaultSurfacesTypedError(t *testing.T) {
	in := faults.New(2, faults.KindCorrupt, 1).WithSites(faults.SiteSweep)
	p := chaosPlan(t, in, ExchangeAllPairs)
	rs, err := p.RunSweep(context.Background(), []int64{0, 1, 2}, Overrides{})
	if err == nil {
		t.Fatal("rate-1 sweep corruption did not fail the sweep")
	}
	if rs != nil {
		t.Fatal("partial sweep results escaped alongside the error")
	}
	if !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("error not wire.ErrCorrupt-typed: %v", err)
	}
	if !strings.Contains(err.Error(), "sweep payload") {
		t.Fatalf("error %q does not name the sweep panic site", err)
	}
}

// TestRepairFaultsSurfaceTypedErrors targets the two repair-only payload
// sites — invalidation probes and the repair's parent resolution — on a real
// incremental plan with a synthesized delta.
func TestRepairFaultsSurfaceTypedErrors(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	shape := ClusterShape{2, 2, 2}
	cfg := shape.PartitionConfig()
	sep := partition.Separate(el, 8)
	sg, err := partition.Distribute(el, sep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPlanEpoch(sg, shape, chaosOptions(nil, ExchangeAllPairs), 1)
	if err != nil {
		t.Fatal(err)
	}
	prior, err := p1.Run(context.Background(), 0, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	b := delta.Synthesize(el, 0.05, delta.KindMixed, 7)
	el2, err := delta.Apply(el, b)
	if err != nil {
		t.Fatal(err)
	}
	sep2 := partition.Separate(el2, 8)
	sg2, _, err := partition.DistributeIncremental(el2, sep2, cfg, sg)
	if err != nil {
		t.Fatal(err)
	}
	invalid, seeds := delta.Affected(prior.Levels, prior.Parents, b)

	for _, tc := range []struct {
		name, site, wantMsg string
	}{
		{"probe", faults.SiteProbe, "probe payload"},
		{"parents", faults.SiteParents, "parent payload"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := faults.New(3, faults.KindCorrupt, 1).WithSites(tc.site)
			p2, err := NewPlanEpoch(sg2, shape, chaosOptions(in, ExchangeAllPairs), 2)
			if err != nil {
				t.Fatal(err)
			}
			r, err := p2.RunRepair(context.Background(), 0, prior.Levels, invalid, seeds, Overrides{})
			if err == nil {
				t.Fatalf("rate-1 corruption at site %q did not fail the repair", tc.site)
			}
			if r != nil {
				t.Fatal("partial repair result escaped alongside the error")
			}
			if !errors.Is(err, wire.ErrCorrupt) {
				t.Fatalf("error not wire.ErrCorrupt-typed: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not name the %q panic site", err, tc.wantMsg)
			}
		})
	}
}

func TestCrashSurfacesInjectedError(t *testing.T) {
	in := faults.New(4, faults.KindCrash, 1).WithSites(faults.SiteIter)
	p := chaosPlan(t, in, ExchangeAllPairs)
	r, err := p.Run(context.Background(), 0, Overrides{})
	if err == nil {
		t.Fatal("rate-1 crash did not fail the run")
	}
	if r != nil {
		t.Fatal("partial result escaped alongside the error")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("crash error not faults.ErrInjected-typed: %v", err)
	}
}

// TestStallIsHarmless: a stall-armed run must succeed with bit-identical
// results and simulated time no less than the fault-free run.
func TestStallIsHarmless(t *testing.T) {
	clean := chaosPlan(t, nil, ExchangeAllPairs)
	ref, err := clean.Run(context.Background(), 0, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(5, faults.KindStall, 1)
	p := chaosPlan(t, in, ExchangeAllPairs)
	r, err := p.Run(context.Background(), 0, Overrides{})
	if err != nil {
		t.Fatalf("stall failed the run: %v", err)
	}
	if in.Injected() == 0 {
		t.Fatal("rate-1 stall never fired")
	}
	for v := range ref.Levels {
		if r.Levels[v] != ref.Levels[v] {
			t.Fatalf("vertex %d level %d, fault-free %d", v, r.Levels[v], ref.Levels[v])
		}
	}
	if r.SimSeconds < ref.SimSeconds {
		t.Fatalf("stalled run simulated %.6f s, faster than fault-free %.6f s", r.SimSeconds, ref.SimSeconds)
	}
}

// TestPoisonedSessionNeverRecycled: a clean plan recycles its session (hit on
// the second acquire); a crashing plan poisons it, so every acquire is a miss.
func TestPoisonedSessionNeverRecycled(t *testing.T) {
	clean := chaosPlan(t, nil, ExchangeAllPairs)
	for i := 0; i < 2; i++ {
		if _, err := clean.Run(context.Background(), 0, Overrides{}); err != nil {
			t.Fatal(err)
		}
	}
	if st := clean.PoolStats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("clean plan pool stats %+v, want 1 miss then 1 hit", st)
	}

	in := faults.New(6, faults.KindCrash, 1).WithSites(faults.SiteIter)
	p := chaosPlan(t, in, ExchangeAllPairs)
	for i := 0; i < 2; i++ {
		if _, err := p.Run(context.Background(), 0, Overrides{}); err == nil {
			t.Fatal("crash plan run succeeded")
		}
		in.NextAttempt()
	}
	if st := p.PoolStats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("crash plan pool stats %+v, want 2 misses and 0 hits — a poisoned session was recycled", st)
	}
}

// TestNoGoroutineLeakUnderFaults hammers the engine with crashes and
// mid-run cancellations and requires the goroutine count to settle back.
func TestNoGoroutineLeakUnderFaults(t *testing.T) {
	in := faults.New(8, faults.KindCrash, 1).WithSites(faults.SiteIter)
	p := chaosPlan(t, in, ExchangeAllPairs)
	clean := chaosPlan(t, nil, ExchangeAllPairs)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		if _, err := p.Run(context.Background(), 0, Overrides{}); err == nil {
			t.Fatal("crash plan run succeeded")
		}
		in.NextAttempt()
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
			cancel()
		}()
		clean.Run(ctx, 0, Overrides{})
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
