// Package core implements the paper's contribution: distributed
// direction-optimizing breadth-first search on a (simulated) GPU cluster,
// built on degree separation (§III), per-subgraph local traversal kernels
// with distinct load-balancing and direction-switching policies (§IV), and
// the two-tier communication model — global bitmask reduction for delegates,
// point-to-point exchange for normal vertices (§V).
//
// The engine is functionally exact: hop distances equal a serial BFS.
// Performance is simulated: kernels and transfers charge calibrated model
// time (internal/simgpu, internal/simnet) from exactly counted work and
// bytes, so the figures' scaling shapes are reproducible on any host.
package core

import (
	"fmt"

	"gcbfs/internal/bitmask"
	"gcbfs/internal/frontier"
	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/simgpu"
	"gcbfs/internal/simnet"
	"gcbfs/internal/wire"
)

// ClusterShape is the paper's hardware notation: nodes × MPI ranks per node
// × GPUs per rank (e.g. 31×2×2 = 124 GPUs).
type ClusterShape struct {
	Nodes        int
	RanksPerNode int
	GPUsPerRank  int
}

// Ranks returns the MPI rank count p_rank.
func (s ClusterShape) Ranks() int { return s.Nodes * s.RanksPerNode }

// P returns the total GPU count.
func (s ClusterShape) P() int { return s.Ranks() * s.GPUsPerRank }

// PartitionConfig returns the matching edge-distributor configuration.
func (s ClusterShape) PartitionConfig() partition.Config {
	return partition.Config{Ranks: s.Ranks(), GPUsPerRank: s.GPUsPerRank}
}

// String renders the paper's N×R×G notation.
func (s ClusterShape) String() string {
	return fmt.Sprintf("%d×%d×%d", s.Nodes, s.RanksPerNode, s.GPUsPerRank)
}

// Validate checks the shape is usable.
func (s ClusterShape) Validate() error {
	if s.Nodes <= 0 || s.RanksPerNode <= 0 || s.GPUsPerRank <= 0 {
		return fmt.Errorf("core: invalid cluster shape %s", s)
	}
	return nil
}

// SwitchFactors hold the two direction-switching thresholds of one subgraph
// (§IV-B): switch forward→backward when FV > Fwd2Bwd·BV; backward→forward
// when FV < Bwd2Fwd·BV.
type SwitchFactors struct {
	Fwd2Bwd float64 // factor0
	Bwd2Fwd float64 // factor1
}

// Options are the engine's tunables, mirroring the paper's option list
// (§VI-B): DO, L (local all2all), U (uniquify), BR/IR (blocking vs
// non-blocking delegate mask reduction).
type Options struct {
	// DirectionOptimized enables per-subgraph direction switching for the
	// dd, dn and nd kernels (nn never uses DO, §IV-B).
	DirectionOptimized bool
	// LocalAll2All stages outgoing normal vertices through peer GPUs in
	// the same rank so remote pairs shrink from p² to p²/p_gpu (§V-B).
	LocalAll2All bool
	// Uniquify removes duplicate destinations within a send bin (§V-B).
	Uniquify bool
	// BlockingReduce selects MPI_Allreduce (true, "BR") over
	// MPI_Iallreduce ("IR") for the delegate masks (§VI-B).
	BlockingReduce bool
	// FactorsDD/DN/ND are the per-subgraph direction-switching factors;
	// the paper's tuned values are (0.5, 0.05, 1e-7) with no switch-back.
	FactorsDD, FactorsDN, FactorsND SwitchFactors
	// MessageBytes is the packing size for remote exchanges (≈4 MB is
	// optimal on Ray, §VI-A1).
	MessageBytes int64
	// OverlapFactor is the fraction of overlappable compute/communication
	// time actually hidden by the stream pipeline (the paper observed
	// ~10% total savings; 0.35 of the overlappable window matches that).
	OverlapFactor float64
	// CollectLevels gathers the global hop-distance array into the
	// result (disable for large weak-scaling sweeps).
	CollectLevels bool
	// CollectParents additionally produces the Graph500 BFS tree. Parents
	// of locally discovered vertices are recorded during traversal at no
	// extra communication; delegates and remotely discovered nn
	// destinations are resolved by one post-BFS exchange, the low-cost
	// step the paper describes (§VI-A3). Parent resolution is excluded
	// from simulated BFS time, matching the paper's reporting.
	CollectParents bool
	// ForceTWBForDD replaces the dd kernel's merge-path load balancing
	// with thread-warp-block dynamic mapping — an ablation knob for the
	// §IV-A strategy choice (the dd subgraph's wide degree range is
	// exactly where TWB pays its skew penalty).
	ForceTWBForDD bool
	// Compression selects the frontier-exchange codec (internal/wire) for
	// the inter-rank normal-vertex payloads: wire.ModeOff keeps the seed's
	// fixed-width packing, wire.ModeAdaptive picks the smallest of raw /
	// varint-delta / bitmap per message (reusing the previous iteration's
	// winner per destination while block sizes are stable — see
	// wire.Selector), and the forced modes pin one scheme for ablations. The codec changes bytes on the wire (and hence
	// the simulated remote-normal time) but never the traversal results.
	Compression wire.Mode
	// Exchange selects the inter-rank normal-vertex exchange topology:
	// ExchangeAllPairs sends one message per destination rank per iteration
	// (p−1 sends, the paper's §V-B pattern); ExchangeButterfly runs log2(p)
	// hypercube hops that aggregate payloads into fewer, larger messages
	// (ButterFly BFS, Green 2021). The butterfly requires a power-of-two
	// rank count and otherwise falls back to all-pairs, recording the
	// reason in the result's Exchange stats. Either way the traversal
	// results are bit-identical; only message pattern and timing change.
	Exchange Exchange
	// WorkAmplification scales all counted work and communication volume
	// before the timing model (not the functional run or reported work
	// stats). Setting it to 2^(paperScale-localScale) makes a scaled-down
	// local graph occupy the paper's per-GPU workload regime, so the
	// overhead-vs-work balance — and hence every figure's shape — matches
	// cluster scale. 0 or 1 disables amplification.
	WorkAmplification float64

	GPU simgpu.Spec
	Net simnet.Spec
}

// DefaultOptions returns the paper's tuned configuration: DOBFS with
// blocking reduction, 4 MB messages and the published switching factors.
func DefaultOptions() Options {
	return Options{
		DirectionOptimized: true,
		LocalAll2All:       false,
		Uniquify:           false,
		BlockingReduce:     true,
		FactorsDD:          SwitchFactors{Fwd2Bwd: 0.5},
		FactorsDN:          SwitchFactors{Fwd2Bwd: 0.05},
		FactorsND:          SwitchFactors{Fwd2Bwd: 1e-7},
		MessageBytes:       4 << 20,
		OverlapFactor:      0.35,
		CollectLevels:      true,
		GPU:                simgpu.TeslaP100(),
		Net:                simnet.Ray(),
	}
}

// PlainBFSOptions returns DefaultOptions with direction optimization off —
// the paper's "BFS" configuration.
func PlainBFSOptions() Options {
	o := DefaultOptions()
	o.DirectionOptimized = false
	return o
}

// Engine executes BFS/DOBFS runs over a distributed graph.
type Engine struct {
	sg    *partition.Subgraphs
	shape ClusterShape
	opts  Options
	cfg   partition.Config
	p     int
	d     int64
	amp   float64 // work/volume amplification for the timing model
	gpus  []*gpuState

	// delegateParents holds the resolved BFS-tree parents of delegates
	// (written by rank 0 during the post-BFS resolution; every rank
	// computes the identical reduction result).
	delegateParents []int64
	// parentExchangePairs counts the post-BFS resolution traffic (pairs),
	// reported but excluded from simulated BFS time. The byte counters
	// account that exchange's fixed-width equivalent and what the codec
	// actually put on the wire. All three are updated atomically by the
	// rank goroutines.
	parentExchangePairs int64
	parentPairRawBytes  int64
	parentPairWireBytes int64
}

// charge runs the kernel cost through the device model with work
// amplification applied (timing only; functional counters stay raw).
func (e *Engine) charge(gs *gpuState, c simgpu.KernelCost) float64 {
	c.Edges = int64(float64(c.Edges) * e.amp)
	c.Vertices = int64(float64(c.Vertices) * e.amp)
	return gs.dev.Charge(c)
}

// ampBytes scales a communication volume for the timing model.
func (e *Engine) ampBytes(b int64) int64 {
	return int64(float64(b) * e.amp)
}

// gpuState is the per-GPU mutable run state. Each GPU's state is touched
// only by its owning rank goroutine; consistency across GPUs is established
// exclusively through the MPI collectives, as on the real machine.
type gpuState struct {
	pg  *partition.GPUGraph
	dev *simgpu.Device

	levels        []int32 // local slot → hop distance, -1 unvisited
	delegateLevel []int32 // delegate id → hop distance, -1 unvisited

	visited  *bitmask.Mask // delegates visited as of iteration start
	dFront   *bitmask.Mask // delegate frontier (newly visited last iteration)
	newMask  *bitmask.Mask // local delegate discoveries this iteration
	scratch  *bitmask.Mask
	inFront  []uint32 // local normal frontier
	outFront []uint32
	bins     *frontier.Bins

	// BFS-tree state (nil unless CollectParents): parents of local
	// normal vertices, and a flag for vertices discovered via a remote
	// nn edge whose parent arrives in the post-BFS resolution round.
	parents           []int64
	remoteNeedsParent []bool

	isNDSource         []bool // local slot has nd edges (member of NDSources)
	unvisitedNDSources int64

	dirDD, dirDN, dirND metrics.Direction

	// Per-iteration work accounting, reset each super-step.
	it iterWork
}

// iterWork accumulates one iteration's counted work on one GPU.
type iterWork struct {
	delegateStream float64 // seconds: previsit + dd + nd kernels
	normalStream   float64 // seconds: previsit + dn + nn kernels + binning
	edgesScanned   int64
	dupsRemoved    int64
}

// NewEngine validates that the partitioned graph matches the cluster shape
// and prepares per-GPU state.
func NewEngine(sg *partition.Subgraphs, shape ClusterShape, opts Options) (*Engine, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if sg.Cfg != shape.PartitionConfig() {
		return nil, fmt.Errorf("core: graph partitioned for %+v, cluster shape needs %+v",
			sg.Cfg, shape.PartitionConfig())
	}
	if opts.MessageBytes <= 0 {
		opts.MessageBytes = 4 << 20
	}
	if opts.GPU.EdgeRateMerge == 0 {
		opts.GPU = simgpu.TeslaP100()
	}
	if opts.Net.IB.Bandwidth == 0 {
		opts.Net = simnet.Ray()
	}
	if opts.WorkAmplification <= 0 {
		opts.WorkAmplification = 1
	}
	if opts.Compression < wire.ModeOff || opts.Compression > wire.ModeBitmap {
		return nil, fmt.Errorf("core: invalid compression mode %d", opts.Compression)
	}
	if opts.Exchange < ExchangeAllPairs || opts.Exchange > ExchangeButterfly {
		return nil, fmt.Errorf("core: invalid exchange strategy %d", opts.Exchange)
	}
	e := &Engine{
		sg:    sg,
		shape: shape,
		opts:  opts,
		cfg:   sg.Cfg,
		p:     sg.Cfg.P(),
		d:     sg.D(),
		amp:   opts.WorkAmplification,
	}
	e.gpus = make([]*gpuState, e.p)
	for i, pg := range sg.GPUs {
		gs := &gpuState{
			pg:            pg,
			dev:           simgpu.NewDevice(opts.GPU, i),
			levels:        make([]int32, pg.NumLocal),
			delegateLevel: make([]int32, e.d),
			visited:       bitmask.New(e.d),
			dFront:        bitmask.New(e.d),
			newMask:       bitmask.New(e.d),
			scratch:       bitmask.New(e.d),
			bins:          frontier.NewBins(e.p),
			isNDSource:    make([]bool, pg.NumLocal),
		}
		for _, s := range pg.NDSources {
			gs.isNDSource[s] = true
		}
		if opts.CollectParents {
			gs.parents = make([]int64, pg.NumLocal)
			gs.remoteNeedsParent = make([]bool, pg.NumLocal)
		}
		e.gpus[i] = gs
	}
	return e, nil
}

// Shape returns the engine's cluster shape.
func (e *Engine) Shape() ClusterShape { return e.shape }

// Graph returns the distributed graph the engine runs on.
func (e *Engine) Graph() *partition.Subgraphs { return e.sg }

// Options returns the engine's option set.
func (e *Engine) Options() Options { return e.opts }

// MemoryOK reports whether every simulated GPU's subgraph storage fits the
// device memory model (§III-C's processing-scale bound).
func (e *Engine) MemoryOK() bool {
	for _, pg := range e.sg.GPUs {
		if !e.opts.GPU.FitsMemory(pg.MemoryBytes()) {
			return false
		}
	}
	return true
}

// reset prepares all per-GPU state for a fresh run.
func (e *Engine) reset() {
	for _, gs := range e.gpus {
		for i := range gs.levels {
			gs.levels[i] = -1
		}
		for i := range gs.delegateLevel {
			gs.delegateLevel[i] = -1
		}
		gs.visited.Reset()
		gs.dFront.Reset()
		gs.newMask.Reset()
		gs.inFront = gs.inFront[:0]
		gs.outFront = gs.outFront[:0]
		gs.bins.Reset()
		gs.unvisitedNDSources = int64(len(gs.pg.NDSources))
		gs.dirDD, gs.dirDN, gs.dirND = metrics.Forward, metrics.Forward, metrics.Forward
		gs.dev.ResetCounters()
		gs.it = iterWork{}
		for i := range gs.parents {
			gs.parents[i] = -1
			gs.remoteNeedsParent[i] = false
		}
	}
	e.delegateParents = nil
	e.parentExchangePairs = 0
	e.parentPairRawBytes = 0
	e.parentPairWireBytes = 0
}
