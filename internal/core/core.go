// Package core implements the paper's contribution: distributed
// direction-optimizing breadth-first search on a (simulated) GPU cluster,
// built on degree separation (§III), per-subgraph local traversal kernels
// with distinct load-balancing and direction-switching policies (§IV), and
// the two-tier communication model — global bitmask reduction for delegates,
// point-to-point exchange for normal vertices (§V).
//
// The engine is functionally exact: hop distances equal a serial BFS.
// Performance is simulated: kernels and transfers charge calibrated model
// time (internal/simgpu, internal/simnet) from exactly counted work and
// bytes, so the figures' scaling shapes are reproducible on any host.
//
// # Plan and Session
//
// The execution machinery is split query-service style. A Plan is the
// immutable half: the partitioned graph, cluster shape and normalized base
// Options, built once per partition and safe to share between any number of
// concurrent queries. A Session is the mutable half: frontiers, visited
// bitmasks, wire buffers and exchange scratch for one in-flight BFS query.
// Sessions are recycled through a sync.Pool inside the Plan, so concurrent
// queries share one partitioned graph with zero cross-query aliasing — each
// query runs on its own Session, fully reset between uses.
//
// Plan.Run executes one query with per-query Overrides (compression,
// exchange topology, collection flags, work amplification) layered over the
// base Options without re-partitioning; Plan.RunBatch executes many sources
// with bounded parallelism and deterministic, source-ordered results. The
// old single-query Engine remains as a thin compatibility wrapper.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gcbfs/internal/bitmask"
	"gcbfs/internal/faults"
	"gcbfs/internal/frontier"
	"gcbfs/internal/metrics"
	"gcbfs/internal/mpi"
	"gcbfs/internal/partition"
	"gcbfs/internal/simgpu"
	"gcbfs/internal/simnet"
	"gcbfs/internal/wire"
)

// ClusterShape is the paper's hardware notation: nodes × MPI ranks per node
// × GPUs per rank (e.g. 31×2×2 = 124 GPUs).
type ClusterShape struct {
	Nodes        int
	RanksPerNode int
	GPUsPerRank  int
}

// Ranks returns the MPI rank count p_rank.
func (s ClusterShape) Ranks() int { return s.Nodes * s.RanksPerNode }

// P returns the total GPU count.
func (s ClusterShape) P() int { return s.Ranks() * s.GPUsPerRank }

// PartitionConfig returns the matching edge-distributor configuration.
func (s ClusterShape) PartitionConfig() partition.Config {
	return partition.Config{Ranks: s.Ranks(), GPUsPerRank: s.GPUsPerRank}
}

// String renders the paper's N×R×G notation.
func (s ClusterShape) String() string {
	return fmt.Sprintf("%d×%d×%d", s.Nodes, s.RanksPerNode, s.GPUsPerRank)
}

// Validate checks the shape is usable.
func (s ClusterShape) Validate() error {
	if s.Nodes <= 0 || s.RanksPerNode <= 0 || s.GPUsPerRank <= 0 {
		return fmt.Errorf("core: invalid cluster shape %s", s)
	}
	return nil
}

// SwitchFactors hold the two direction-switching thresholds of one subgraph
// (§IV-B): switch forward→backward when FV > Fwd2Bwd·BV; backward→forward
// when FV < Bwd2Fwd·BV.
type SwitchFactors struct {
	Fwd2Bwd float64 // factor0
	Bwd2Fwd float64 // factor1
}

// Options are the engine's tunables, mirroring the paper's option list
// (§VI-B): DO, L (local all2all), U (uniquify), BR/IR (blocking vs
// non-blocking delegate mask reduction).
type Options struct {
	// DirectionOptimized enables per-subgraph direction switching for the
	// dd, dn and nd kernels (nn never uses DO, §IV-B).
	DirectionOptimized bool
	// LocalAll2All stages outgoing normal vertices through peer GPUs in
	// the same rank so remote pairs shrink from p² to p²/p_gpu (§V-B).
	LocalAll2All bool
	// Uniquify removes duplicate destinations within a send bin (§V-B).
	Uniquify bool
	// BlockingReduce selects MPI_Allreduce (true, "BR") over
	// MPI_Iallreduce ("IR") for the delegate masks (§VI-B).
	BlockingReduce bool
	// FactorsDD/DN/ND are the per-subgraph direction-switching factors;
	// the paper's tuned values are (0.5, 0.05, 1e-7) with no switch-back.
	FactorsDD, FactorsDN, FactorsND SwitchFactors
	// MessageBytes is the packing size for remote exchanges (≈4 MB is
	// optimal on Ray, §VI-A1).
	MessageBytes int64
	// OverlapFactor is the fraction of overlappable compute/communication
	// time actually hidden by the stream pipeline (the paper observed
	// ~10% total savings; 0.35 of the overlappable window matches that).
	OverlapFactor float64
	// CollectLevels gathers the global hop-distance array into the
	// result (disable for large weak-scaling sweeps).
	CollectLevels bool
	// CollectParents additionally produces the Graph500 BFS tree. Parents
	// of locally discovered vertices are recorded during traversal at no
	// extra communication; delegates and remotely discovered nn
	// destinations are resolved by one post-BFS exchange, the low-cost
	// step the paper describes (§VI-A3). Parent resolution is excluded
	// from simulated BFS time, matching the paper's reporting.
	CollectParents bool
	// ForceTWBForDD replaces the dd kernel's merge-path load balancing
	// with thread-warp-block dynamic mapping — an ablation knob for the
	// §IV-A strategy choice (the dd subgraph's wide degree range is
	// exactly where TWB pays its skew penalty).
	ForceTWBForDD bool
	// Compression selects the frontier-exchange codec (internal/wire) for
	// the inter-rank normal-vertex payloads: wire.ModeOff keeps the seed's
	// fixed-width packing, wire.ModeAdaptive picks the smallest of raw /
	// varint-delta / bitmap per message (reusing the previous iteration's
	// winner per destination while block sizes are stable — see
	// wire.Selector), and the forced modes pin one scheme for ablations.
	// The codec changes bytes on the wire (and hence the simulated
	// remote-normal time) but never the traversal results. Its pack/unpack
	// compute is charged through simgpu.Spec.CodecRate.
	Compression wire.Mode
	// Exchange selects the inter-rank normal-vertex exchange policy:
	// ExchangeAllPairs sends one message per destination rank per iteration
	// (p−1 sends, the paper's §V-B pattern); ExchangeButterfly runs
	// hypercube hops that aggregate payloads into fewer, larger messages
	// (ButterFly BFS, Green 2021), generalized to arbitrary rank counts by
	// a Bruck-style pre/post cleanup hop pair; ExchangeHybrid picks between
	// the two per BSP iteration from the globally known frontier volume
	// through a cost model over the simnet link parameters — the way
	// direction optimization picks push vs pull. Whatever the policy, the
	// traversal results are bit-identical; only message pattern and timing
	// change.
	Exchange Exchange
	// PipelineHops software-pipelines the butterfly exchange: each hop's
	// transfer overlaps the previous hop's decode/merge/re-encode compute,
	// so a pipeline step costs max(wire, codec) instead of their sum — the
	// paper's compute/communication overlap (§VI-B) applied inside the
	// exchange. Results are bit-identical either way; only the simulated
	// remote-normal time (and the policy cost model's butterfly estimate)
	// changes. DefaultOptions enables it; disable for the sequential-hop
	// ablation baseline. No effect on all-pairs iterations, which have a
	// single communication round.
	PipelineHops bool
	// FlatExchange disables the two-level hierarchical exchange: with it
	// set, each GPU's per-destination bins ride the inter-rank wire as their
	// own fragment messages (GPUsPerRank fragments per destination per
	// round) and the NVLink staging copies are charged serially in
	// LocalComm — the paper's flat §V-B shape, kept as the ablation
	// baseline. The default (false) aggregates the rank's GPUs' bins over
	// NVLink into one merged message per destination, so messages per rank
	// per iteration drop by GPUsPerRank× and the aggregation + staging
	// copies ride the exchange schedule as a third overlappable pipeline
	// resource (simnet.PipelinedExchange). Levels, parents and every work
	// counter are bit-identical either way — only message pattern, framing
	// bytes and simulated timing differ. No effect when GPUsPerRank is 1,
	// where the two shapes coincide.
	FlatExchange bool
	// Warm seeds the hybrid exchange policy's measured feedback (skew,
	// compression ratio, per-strategy calibration EWMAs) from an earlier
	// query's PolicySnapshot instead of the neutral defaults, so a batch's
	// later queries start with the crossover already calibrated. Zero fields
	// keep their defaults; nil disables warm starting. Results are
	// unaffected — only the per-iteration strategy choice (and hence
	// simulated timing) can differ.
	Warm *PolicySnapshot
	// WorkAmplification scales all counted work and communication volume
	// before the timing model (not the functional run or reported work
	// stats). Setting it to 2^(paperScale-localScale) makes a scaled-down
	// local graph occupy the paper's per-GPU workload regime, so the
	// overhead-vs-work balance — and hence every figure's shape — matches
	// cluster scale. 0 or 1 disables amplification.
	WorkAmplification float64
	// Inject arms deterministic fault injection (chaos testing): payload
	// faults fire through the communicator's send hook, boundary faults
	// (stall, crash) at the BSP iteration boundary. nil — the default —
	// leaves every decision point on its fault-free fast path, so an unarmed
	// engine's results, wire bytes and timing are byte-identical to a build
	// without the machinery.
	Inject *faults.Injector

	GPU simgpu.Spec
	Net simnet.Spec
}

// DefaultOptions returns the paper's tuned configuration: DOBFS with
// blocking reduction, 4 MB messages and the published switching factors.
func DefaultOptions() Options {
	return Options{
		DirectionOptimized: true,
		LocalAll2All:       false,
		Uniquify:           false,
		BlockingReduce:     true,
		FactorsDD:          SwitchFactors{Fwd2Bwd: 0.5},
		FactorsDN:          SwitchFactors{Fwd2Bwd: 0.05},
		FactorsND:          SwitchFactors{Fwd2Bwd: 1e-7},
		MessageBytes:       4 << 20,
		OverlapFactor:      0.35,
		PipelineHops:       true,
		CollectLevels:      true,
		GPU:                simgpu.TeslaP100(),
		Net:                simnet.Ray(),
	}
}

// PlainBFSOptions returns DefaultOptions with direction optimization off —
// the paper's "BFS" configuration.
func PlainBFSOptions() Options {
	o := DefaultOptions()
	o.DirectionOptimized = false
	return o
}

// Plan is the immutable, shareable half of a BFS deployment: the partitioned
// graph, the cluster shape and the normalized base Options. A Plan is built
// once per partition and is safe for concurrent use — every mutable byte of
// a query lives in a Session drawn from the Plan's internal pool.
type Plan struct {
	sg    *partition.Subgraphs
	shape ClusterShape
	base  Options
	cfg   partition.Config
	p     int
	d     int64
	// epoch identifies the graph version this plan was built for. Plans are
	// immutable, so a mutating service builds the next epoch's Plan beside
	// the live one and swaps atomically; every query result carries the
	// epoch of the plan it ran on (NewPlan leaves it 0).
	epoch uint64

	pool sync.Pool // of *Session
	// Pool observability (PoolStats): how often a query reused a recycled
	// Session vs allocated a fresh one, and the high-water mark of
	// simultaneously in-flight queries — the number that sizes Parallelism.
	poolAcquires atomic.Int64
	poolMisses   atomic.Int64
	inFlight     atomic.Int64
	peakInFlight atomic.Int64
}

// NewPlan validates that the partitioned graph matches the cluster shape,
// normalizes the base options, and prepares the session pool.
func NewPlan(sg *partition.Subgraphs, shape ClusterShape, opts Options) (*Plan, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if sg.Cfg != shape.PartitionConfig() {
		return nil, fmt.Errorf("core: graph partitioned for %+v, cluster shape needs %+v",
			sg.Cfg, shape.PartitionConfig())
	}
	if opts.MessageBytes <= 0 {
		opts.MessageBytes = 4 << 20
	}
	if opts.GPU.EdgeRateMerge == 0 {
		opts.GPU = simgpu.TeslaP100()
	}
	if opts.Net.IB.Bandwidth == 0 {
		opts.Net = simnet.Ray()
	}
	if opts.WorkAmplification <= 0 {
		opts.WorkAmplification = 1
	}
	if opts.Compression < wire.ModeOff || opts.Compression > wire.ModeBitmap {
		return nil, fmt.Errorf("core: invalid compression mode %d", opts.Compression)
	}
	if opts.Exchange < ExchangeAllPairs || opts.Exchange > ExchangeHybrid {
		return nil, fmt.Errorf("core: invalid exchange strategy %d", opts.Exchange)
	}
	p := &Plan{
		sg:    sg,
		shape: shape,
		base:  opts,
		cfg:   sg.Cfg,
		p:     sg.Cfg.P(),
		d:     sg.D(),
	}
	p.pool.New = func() any {
		p.poolMisses.Add(1)
		return p.newSession()
	}
	return p, nil
}

// NewPlanEpoch builds a Plan stamped with a graph-version epoch. Every query
// result produced by the plan (Run, RunRepair, RunSweep) reports the epoch,
// which is how an epoch-versioned service proves a query ran entirely on its
// admission version across an atomic swap.
func NewPlanEpoch(sg *partition.Subgraphs, shape ClusterShape, opts Options, epoch uint64) (*Plan, error) {
	p, err := NewPlan(sg, shape, opts)
	if err != nil {
		return nil, err
	}
	p.epoch = epoch
	return p, nil
}

// Epoch returns the graph-version epoch the plan was built for.
func (p *Plan) Epoch() uint64 { return p.epoch }

// PoolStats is a snapshot of the Plan's session-pool counters. Counters are
// cumulative over the Plan's lifetime; callers diff snapshots to scope them
// to one batch.
type PoolStats struct {
	// Hits counts queries served by a recycled pooled Session; Misses
	// counts queries that allocated a fresh one (every query is exactly one
	// of the two).
	Hits, Misses int64
	// PeakInFlight is the high-water mark of simultaneously in-flight
	// queries — the observed concurrency that Parallelism should be sized
	// against.
	PeakInFlight int64
}

// PoolStats returns the current session-pool counters.
func (p *Plan) PoolStats() PoolStats {
	acq := p.poolAcquires.Load()
	misses := p.poolMisses.Load()
	return PoolStats{
		Hits:         acq - misses,
		Misses:       misses,
		PeakInFlight: p.peakInFlight.Load(),
	}
}

// Shape returns the plan's cluster shape.
func (p *Plan) Shape() ClusterShape { return p.shape }

// Graph returns the distributed graph the plan runs on.
func (p *Plan) Graph() *partition.Subgraphs { return p.sg }

// Options returns the plan's normalized base option set.
func (p *Plan) Options() Options { return p.base }

// MemoryOK reports whether every simulated GPU's subgraph storage fits the
// device memory model (§III-C's processing-scale bound).
func (p *Plan) MemoryOK() bool {
	for _, pg := range p.sg.GPUs {
		if !p.base.GPU.FitsMemory(pg.MemoryBytes()) {
			return false
		}
	}
	return true
}

// Overrides are per-query deltas layered over a Plan's base Options. Only
// knobs that leave the partitioned graph and per-session buffer shapes
// untouched are overridable — changing the cluster shape, threshold or
// kernel policies needs a new Plan. A nil field keeps the base value.
type Overrides struct {
	Compression       *wire.Mode
	Exchange          *Exchange
	PipelineHops      *bool
	FlatExchange      *bool
	CollectLevels     *bool
	CollectParents    *bool
	WorkAmplification *float64
	// Warm replaces (not merges with) the base Options.Warm snapshot.
	Warm *PolicySnapshot
}

// effectiveOptions resolves base options plus overrides, validating the
// overridden values the same way NewPlan validates the base.
func (p *Plan) effectiveOptions(ov Overrides) (Options, error) {
	o := p.base
	if ov.Compression != nil {
		if *ov.Compression < wire.ModeOff || *ov.Compression > wire.ModeBitmap {
			return o, fmt.Errorf("core: invalid compression override %d", *ov.Compression)
		}
		o.Compression = *ov.Compression
	}
	if ov.Exchange != nil {
		if *ov.Exchange < ExchangeAllPairs || *ov.Exchange > ExchangeHybrid {
			return o, fmt.Errorf("core: invalid exchange override %d", *ov.Exchange)
		}
		o.Exchange = *ov.Exchange
	}
	if ov.PipelineHops != nil {
		o.PipelineHops = *ov.PipelineHops
	}
	if ov.FlatExchange != nil {
		o.FlatExchange = *ov.FlatExchange
	}
	if ov.CollectLevels != nil {
		o.CollectLevels = *ov.CollectLevels
	}
	if ov.CollectParents != nil {
		o.CollectParents = *ov.CollectParents
	}
	if ov.WorkAmplification != nil {
		o.WorkAmplification = *ov.WorkAmplification
		if o.WorkAmplification <= 0 {
			o.WorkAmplification = 1
		}
	}
	if ov.Warm != nil {
		o.Warm = ov.Warm
	}
	return o, nil
}

// acquire takes a pooled Session and configures it for one query, updating
// the pool counters (a Get that invokes pool.New is a miss; every other is
// a hit).
func (p *Plan) acquire(opts Options) *Session {
	p.poolAcquires.Add(1)
	n := p.inFlight.Add(1)
	for {
		peak := p.peakInFlight.Load()
		if n <= peak || p.peakInFlight.CompareAndSwap(peak, n) {
			break
		}
	}
	s := p.pool.Get().(*Session)
	s.configure(opts)
	return s
}

// release returns a Session to the pool once its query (and any result
// gathering) is complete. A poisoned Session — one whose query aborted on a
// fault, leaving frontiers, collectives or mailboxes in an undefined state —
// is dropped instead of recycled, so the next acquire allocates fresh (an
// observable pool miss) and no later query can inherit corrupt state.
func (p *Plan) release(s *Session) {
	p.inFlight.Add(-1)
	if s.poisoned {
		return
	}
	p.pool.Put(s)
}

// planEnv is the immutable execution environment shared by every query
// session type (single-query Session, multi-source sweepSession): the
// partitioned graph, cluster shape and derived sizes. Embedding it lets the
// canonical parent resolution and gather code run identically on both.
type planEnv struct {
	sg    *partition.Subgraphs
	shape ClusterShape
	cfg   partition.Config
	p     int
	d     int64
	epoch uint64
}

// env snapshots the plan's immutable execution environment.
func (p *Plan) env() planEnv {
	return planEnv{sg: p.sg, shape: p.shape, cfg: p.cfg, p: p.p, d: p.d, epoch: p.epoch}
}

// Session holds every mutable byte of one in-flight BFS query: per-GPU
// frontiers, visited bitmasks, send bins, parent-resolution scratch and the
// effective (base + overrides) options. Sessions are created and recycled by
// their Plan's pool; they are never shared between concurrent queries, so a
// Session needs no locking of its own — its per-GPU state is touched only by
// the owning rank goroutine, exactly as on the real machine.
type Session struct {
	planEnv
	opts Options
	amp  float64 // work/volume amplification for the timing model
	gpus []*gpuState
	// scratch holds each rank goroutine's reusable per-iteration state
	// (merge headers, arrival bins, decode arena, radix buffers — see
	// scratch.go). Indexed by rank; touched only by the owning goroutine.
	scratch []*rankScratch

	// delegateParents holds the resolved BFS-tree parents of delegates
	// (written by rank 0 during the post-BFS resolution; every rank
	// computes the identical reduction result). qt is the plain-slice view
	// of this session's traversal outcome that the canonical parent
	// resolution operates on; both are allocated lazily by the first
	// parent-collecting query and reused across pooled reuses.
	delegateParents []int64
	qt              queryTree
	// parentExchangePairs counts the post-BFS resolution traffic (pairs),
	// reported but excluded from simulated BFS time. The byte counters
	// account that exchange's fixed-width equivalent and what the codec
	// actually put on the wire. All three are updated atomically by the
	// rank goroutines.
	parentExchangePairs int64
	parentPairRawBytes  int64
	parentPairWireBytes int64

	// world is the session's pooled communicator, reset per query — a
	// completed query leaves it empty (every message received, every
	// collective folded), so reuse replaces per-query construction.
	world *mpi.World

	// poisoned marks a session whose query aborted on a fault: its state is
	// undefined, so release drops it instead of recycling it.
	poisoned bool
}

// acquireWorld returns the session's communicator, reset for a new query
// (allocated on first use, recycled with the pooled session afterwards).
func (e *Session) acquireWorld() *mpi.World {
	if e.world == nil {
		e.world = mpi.NewWorld(e.shape.Ranks())
	} else {
		e.world.Reset()
	}
	armWorld(e.world, e.opts.Inject)
	return e.world
}

// armWorld installs (or clears) the fault injector's payload hook on a
// communicator. The hook recovers (iteration, site) from the message tag so
// injected payload faults key exactly like boundary faults.
func armWorld(w *mpi.World, in *faults.Injector) {
	if in == nil {
		w.SetSendHook(nil)
		return
	}
	w.SetSendHook(func(src, dst, tag int, data []byte) []byte {
		iter, site := tagSite(tag)
		return in.Payload(src, iter, site, data)
	})
}

// newSession allocates the per-GPU state for one concurrent query.
func (p *Plan) newSession() *Session {
	s := &Session{
		planEnv: p.env(),
		opts:    p.base,
		amp:     p.base.WorkAmplification,
	}
	s.gpus = make([]*gpuState, s.p)
	for i, pg := range p.sg.GPUs {
		gs := &gpuState{
			pg:            pg,
			dev:           simgpu.NewDevice(p.base.GPU, i),
			levels:        make([]int32, pg.NumLocal),
			delegateLevel: make([]int32, s.d),
			visited:       bitmask.New(s.d),
			dFront:        bitmask.New(s.d),
			newMask:       bitmask.New(s.d),
			scratch:       bitmask.New(s.d),
			bins:          frontier.NewBins(s.p),
			isNDSource:    make([]bool, pg.NumLocal),
		}
		for _, src := range pg.NDSources {
			gs.isNDSource[src] = true
		}
		s.gpus[i] = gs
	}
	prank := p.shape.Ranks()
	s.scratch = make([]*rankScratch, prank)
	for r := range s.scratch {
		s.scratch[r] = newRankScratch(prank, p.shape.GPUsPerRank, s.d)
	}
	return s
}

// configure applies one query's effective options to a pooled session. The
// BFS-tree buffers are allocated lazily the first time a query collects
// parents and kept for later reuses of the session.
func (s *Session) configure(opts Options) {
	s.opts = opts
	s.amp = opts.WorkAmplification
	s.poisoned = false
	for _, gs := range s.gpus {
		gs.trackParents = opts.CollectParents
		if opts.CollectParents && gs.parents == nil {
			gs.parents = make([]int64, gs.pg.NumLocal)
		}
	}
	if opts.CollectParents && s.qt.levels == nil {
		s.delegateParents = make([]int64, s.d)
		s.qt = queryTree{
			levels:   make([][]int32, s.p),
			dLevel:   make([][]int32, s.p),
			parents:  make([][]int64, s.p),
			dParents: s.delegateParents,
		}
		for i, gs := range s.gpus {
			s.qt.levels[i] = gs.levels
			s.qt.dLevel[i] = gs.delegateLevel
			s.qt.parents[i] = gs.parents
		}
	}
}

// charge runs the kernel cost through the device model with work
// amplification applied (timing only; functional counters stay raw).
func (e *Session) charge(gs *gpuState, c simgpu.KernelCost) float64 {
	c.Edges = int64(float64(c.Edges) * e.amp)
	c.Vertices = int64(float64(c.Vertices) * e.amp)
	return gs.dev.Charge(c)
}

// ampBytes scales a communication volume for the timing model.
func (e *Session) ampBytes(b int64) int64 {
	return int64(float64(b) * e.amp)
}

// gpuState is the per-GPU mutable run state. Each GPU's state is touched
// only by its owning rank goroutine; consistency across GPUs is established
// exclusively through the MPI collectives, as on the real machine.
type gpuState struct {
	pg  *partition.GPUGraph
	dev *simgpu.Device

	levels        []int32 // local slot → hop distance, -1 unvisited
	delegateLevel []int32 // delegate id → hop distance, -1 unvisited

	visited  *bitmask.Mask // delegates visited as of iteration start
	dFront   *bitmask.Mask // delegate frontier (newly visited last iteration)
	newMask  *bitmask.Mask // local delegate discoveries this iteration
	scratch  *bitmask.Mask
	inFront  []uint32 // local normal frontier
	outFront []uint32
	bins     *frontier.Bins

	// qDDBuf/qDNBuf back the previsit delegate queues across iterations —
	// previsit rebuilds them from scratch each super-step, so only the
	// capacity is reused, never the contents.
	qDDBuf, qDNBuf []int64

	// BFS-tree state (allocated on first parent-collecting query, active
	// only while trackParents is set): the canonical post-BFS resolution
	// writes parents of local normal vertices here (parents.go).
	trackParents bool
	parents      []int64

	isNDSource         []bool // local slot has nd edges (member of NDSources)
	unvisitedNDSources int64

	// repSeeds/repCursor are the repair traversal's per-GPU corrective seed
	// schedule: still-valid local vertices sorted by (level, id), injected
	// into the frontier when the level-synchronous wave reaches their level
	// (repair.go). Empty outside RunRepair; capacity persists across pooled
	// queries.
	repSeeds  []repairSeed
	repCursor int

	dirDD, dirDN, dirND metrics.Direction

	// Per-iteration work accounting, reset each super-step.
	it iterWork
}

// iterWork accumulates one iteration's counted work on one GPU.
type iterWork struct {
	delegateStream float64 // seconds: previsit + dd + nd kernels
	normalStream   float64 // seconds: previsit + dn + nn kernels + binning
	edgesScanned   int64
	dupsRemoved    int64
}

// reset prepares all per-GPU state for a fresh run.
func (e *Session) reset() {
	for _, gs := range e.gpus {
		for i := range gs.levels {
			gs.levels[i] = -1
		}
		for i := range gs.delegateLevel {
			gs.delegateLevel[i] = -1
		}
		gs.visited.Reset()
		gs.dFront.Reset()
		gs.newMask.Reset()
		gs.inFront = gs.inFront[:0]
		gs.outFront = gs.outFront[:0]
		gs.bins.Reset()
		gs.unvisitedNDSources = int64(len(gs.pg.NDSources))
		gs.dirDD, gs.dirDN, gs.dirND = metrics.Forward, metrics.Forward, metrics.Forward
		gs.dev.ResetCounters()
		gs.it = iterWork{}
		// The BFS-tree buffers stay allocated across pooled reuses but are
		// only read by parent-tracking queries, so skip the O(NumLocal)
		// clears when this query does not track them.
		if gs.trackParents {
			for i := range gs.parents {
				gs.parents[i] = -1
			}
		}
	}
	e.parentExchangePairs = 0
	e.parentPairRawBytes = 0
	e.parentPairWireBytes = 0
}

// Engine is the original single-query facade over one partitioned graph,
// kept for compatibility. It is a thin wrapper that routes every call
// through a Plan with empty overrides and a background context.
//
// Deprecated: new code should build a Plan with NewPlan and use Plan.Run /
// Plan.RunBatch, which add context cancellation, per-query overrides and
// concurrent execution over pooled sessions.
type Engine struct {
	plan *Plan
}

// NewEngine validates that the partitioned graph matches the cluster shape
// and prepares per-GPU state. See the Engine deprecation note.
func NewEngine(sg *partition.Subgraphs, shape ClusterShape, opts Options) (*Engine, error) {
	plan, err := NewPlan(sg, shape, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{plan: plan}, nil
}

// Plan returns the underlying query plan (the migration path off Engine).
func (e *Engine) Plan() *Plan { return e.plan }

// Run executes one BFS from source with the engine's base options.
func (e *Engine) Run(source int64) (*metrics.RunResult, error) {
	return e.plan.Run(context.Background(), source, Overrides{})
}

// RunMany executes one run per source, serially.
func (e *Engine) RunMany(sources []int64) ([]*metrics.RunResult, error) {
	return e.plan.RunBatch(context.Background(), sources, 1, Overrides{})
}

// Shape returns the engine's cluster shape.
func (e *Engine) Shape() ClusterShape { return e.plan.Shape() }

// Graph returns the distributed graph the engine runs on.
func (e *Engine) Graph() *partition.Subgraphs { return e.plan.Graph() }

// Options returns the engine's option set.
func (e *Engine) Options() Options { return e.plan.Options() }

// MemoryOK reports whether every simulated GPU's subgraph storage fits the
// device memory model (§III-C's processing-scale bound).
func (e *Engine) MemoryOK() bool { return e.plan.MemoryOK() }
