package core

import (
	"gcbfs/internal/metrics"
	"gcbfs/internal/simgpu"
)

// This file implements the local computation of one BFS iteration (§IV,
// Fig. 3): the previsit kernels that form queues and estimate workloads, the
// four visit kernels in their forward (push) and backward (pull) variants,
// and the per-subgraph direction decisions.
//
// Work is counted exactly: forward kernels scan every neighbor of every
// queued source; backward kernels count parent checks until the first
// visited parent. The counts drive both the direction decisions (FV vs BV)
// and the simulated kernel times.

// previsitOut carries queue and workload info from the previsit kernels.
type previsitOut struct {
	// Delegate-sourced queues (dense delegate ids with local edges).
	qDD, qDN []int64
	// Forward workloads per subgraph: Σ out-degrees of queued sources.
	fvDD, fvDN, fvND, fvNN int64
	// Max row lengths for the TWB skew estimate (dd's is only consulted
	// by the ForceTWBForDD ablation — merge-path ignores skew).
	maxDD, maxDN, maxND, maxNN int64
}

// previsit runs both previsit kernels (§IV: level marking, duplicate and
// zero-degree filtering, queue formation, workload calculation) and charges
// their cost to the respective streams.
func (e *Session) previsit(gs *gpuState) previsitOut {
	var out previsitOut
	// Delegate previsit: scan the (globally consistent) delegate frontier
	// and keep delegates with local dd or dn edges. The queues are rebuilt
	// every super-step, so they draw on the GPU state's persistent buffers.
	out.qDD, out.qDN = gs.qDDBuf[:0], gs.qDNBuf[:0]
	frontierBits := int64(0)
	gs.dFront.ForEach(func(di int64) {
		frontierBits++
		if ddDeg := gs.pg.DD.Degree(di); ddDeg > 0 {
			out.qDD = append(out.qDD, di)
			out.fvDD += ddDeg
			if ddDeg > out.maxDD {
				out.maxDD = ddDeg
			}
		}
		if dnDeg := gs.pg.DN.Degree(di); dnDeg > 0 {
			out.qDN = append(out.qDN, di)
			out.fvDN += dnDeg
			if dnDeg > out.maxDN {
				out.maxDN = dnDeg
			}
		}
	})
	gs.qDDBuf, gs.qDNBuf = out.qDD, out.qDN // retain grown capacity
	gs.it.delegateStream += e.charge(gs, simgpu.KernelCost{
		Vertices: frontierBits + e.d/64, Strategy: simgpu.TWBDynamic,
	})

	// Normal previsit: the input frontier is already deduplicated (levels
	// are set exactly once at discovery); compute per-subgraph workloads
	// and filter zero-degree rows at kernel time.
	for _, u := range gs.inFront {
		row := int64(u)
		if deg := gs.pg.ND.Degree(row); deg > 0 {
			out.fvND += deg
			if deg > out.maxND {
				out.maxND = deg
			}
		}
		if deg := gs.pg.NN.Degree(row); deg > 0 {
			out.fvNN += deg
			if deg > out.maxNN {
				out.maxNN = deg
			}
		}
	}
	gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
		Vertices: 2 * int64(len(gs.inFront)), Strategy: simgpu.TWBDynamic,
	})
	return out
}

// backwardWorkload evaluates the paper's BV estimate: |U|·(q+s)/q, the
// expected number of parent checks until the first newly visited parent
// (§IV-B). q=0 means no potential parents: return infinity so the kernel
// stays (or returns) forward, where FV=0 elides it anyway.
func backwardWorkload(u, q, s int64) float64 {
	if q <= 0 {
		return 1e300
	}
	return float64(u) * float64(q+s) / float64(q)
}

// decide applies the two-factor switching rule to one subgraph's direction.
func decide(cur metrics.Direction, f SwitchFactors, fv int64, bv float64) metrics.Direction {
	switch cur {
	case metrics.Forward:
		if float64(fv) > f.Fwd2Bwd*bv {
			return metrics.Backward
		}
	case metrics.Backward:
		if float64(fv) < f.Bwd2Fwd*bv {
			return metrics.Forward
		}
	}
	return cur
}

// decideDirections updates the per-subgraph directions for this iteration.
// qD/sD are the global newly-visited and unvisited delegate counts (the
// delegate masks are globally consistent, so no communication is needed).
func (e *Session) decideDirections(gs *gpuState, pv previsitOut, qD, sD int64) {
	if !e.opts.DirectionOptimized {
		gs.dirDD, gs.dirDN, gs.dirND = metrics.Forward, metrics.Forward, metrics.Forward
		return
	}
	// Candidate-set sizes for the backward variants.
	uDD := gs.pg.DDSourceMask.CountExcluding(gs.visited)
	uND := gs.pg.DNSourceMask.CountExcluding(gs.visited)
	uDN := gs.unvisitedNDSources
	qN := int64(len(gs.inFront))
	sN := gs.unvisitedNDSources

	gs.dirDD = decide(gs.dirDD, e.opts.FactorsDD, pv.fvDD, backwardWorkload(uDD, qD, sD))
	gs.dirDN = decide(gs.dirDN, e.opts.FactorsDN, pv.fvDN, backwardWorkload(uDN, qD, sD))
	gs.dirND = decide(gs.dirND, e.opts.FactorsND, pv.fvND, backwardWorkload(uND, qN, sN))

	// The decision scans (mask sweeps) are extra DO work the paper calls
	// out on long-tail graphs (§VI-D). They fuse into the previsit
	// kernels, so charge compute time without a separate launch.
	gs.it.delegateStream += float64(2*(e.d/64)) / e.opts.GPU.VertexRate
}

// discover marks a local normal vertex visited at the given depth and
// appends it to the output frontier. Parents are not recorded here: the
// BFS tree is resolved canonically after the traversal (parents.go), so the
// tree is a pure function of the hop distances and never depends on which
// kernel or exchange strategy happened to reach a vertex first.
func (gs *gpuState) discover(local uint32, depth int32) {
	gs.levels[local] = depth
	gs.outFront = append(gs.outFront, local)
	if gs.isNDSource[local] {
		gs.unvisitedNDSources--
	}
}

// kernelDD processes delegate→delegate edges into the new-delegate mask.
func (e *Session) kernelDD(gs *gpuState, pv previsitOut) {
	var edges int64
	var vertices int64
	strategy := simgpu.MergePath
	if e.opts.ForceTWBForDD {
		strategy = simgpu.TWBDynamic
	}
	if gs.dirDD == metrics.Forward {
		for _, u := range pv.qDD {
			for _, dv := range gs.pg.DD.Neighbors(u) {
				edges++
				dvi := int64(dv)
				if !gs.visited.Get(dvi) {
					gs.newMask.Set(dvi)
				}
			}
		}
		vertices = int64(len(pv.qDD))
	} else {
		// Backward pull: unvisited delegates with local dd edges check
		// their local parents against the visited mask (depth ≤ iter).
		gs.scratch.CopyFrom(gs.pg.DDSourceMask)
		gs.scratch.AndNot(gs.visited)
		gs.scratch.ForEach(func(u int64) {
			vertices++
			for _, dv := range gs.pg.DD.Neighbors(u) {
				edges++
				if gs.visited.Get(int64(dv)) {
					gs.newMask.Set(u)
					break
				}
			}
		})
		vertices += e.d / 64
	}
	gs.it.edgesScanned += edges
	gs.it.delegateStream += e.charge(gs, simgpu.KernelCost{
		Edges: edges, Vertices: vertices, Strategy: strategy,
		Skew: rowSkew(pv.maxDD, pv.fvDD, int64(len(pv.qDD))),
	})
}

// kernelND processes normal→delegate edges into the new-delegate mask.
func (e *Session) kernelND(gs *gpuState, pv previsitOut, iter int32) {
	var edges, vertices int64
	var skew float64
	if gs.dirND == metrics.Forward {
		for _, u := range gs.inFront {
			for _, dv := range gs.pg.ND.Neighbors(int64(u)) {
				edges++
				dvi := int64(dv)
				if !gs.visited.Get(dvi) {
					gs.newMask.Set(dvi)
				}
			}
		}
		vertices = int64(len(gs.inFront))
		skew = rowSkew(pv.maxND, pv.fvND, vertices)
	} else {
		// Backward: unvisited delegates with local dn edges look for a
		// visited local normal parent (depth ≤ iter; this iteration's
		// discoveries are iter+1 and must not count).
		gs.scratch.CopyFrom(gs.pg.DNSourceMask)
		gs.scratch.AndNot(gs.visited)
		gs.scratch.AndNot(gs.newMask) // already found by dd this iteration
		gs.scratch.ForEach(func(u int64) {
			vertices++
			for _, lv := range gs.pg.DN.Neighbors(u) {
				edges++
				if lvl := gs.levels[lv]; lvl >= 0 && lvl <= iter {
					gs.newMask.Set(u)
					break
				}
			}
		})
		vertices += e.d / 64
	}
	gs.it.edgesScanned += edges
	gs.it.delegateStream += e.charge(gs, simgpu.KernelCost{
		Edges: edges, Vertices: vertices, Strategy: simgpu.TWBDynamic, Skew: skew,
	})
}

// kernelDN processes delegate→normal edges into the output normal frontier.
func (e *Session) kernelDN(gs *gpuState, pv previsitOut, iter int32) {
	var edges, vertices int64
	var skew float64
	if gs.dirDN == metrics.Forward {
		for _, u := range pv.qDN {
			for _, lv := range gs.pg.DN.Neighbors(u) {
				edges++
				if gs.levels[lv] == -1 {
					gs.discover(lv, iter+1)
				}
			}
		}
		vertices = int64(len(pv.qDN))
		skew = rowSkew(pv.maxDN, pv.fvDN, vertices)
	} else {
		// Backward: unvisited members of the nd source list (exactly the
		// potential dn destinations, §IV-B) look for a visited delegate
		// parent in the visited-as-of-iteration-start mask.
		for _, v := range gs.pg.NDSources {
			if gs.levels[v] != -1 {
				continue
			}
			vertices++
			for _, dv := range gs.pg.ND.Neighbors(int64(v)) {
				edges++
				if gs.visited.Get(int64(dv)) {
					gs.discover(v, iter+1)
					break
				}
			}
		}
	}
	gs.it.edgesScanned += edges
	gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
		Edges: edges, Vertices: vertices, Strategy: simgpu.TWBDynamic, Skew: skew,
	})
}

// kernelNN processes normal→normal edges: local destinations are applied
// immediately; remote ones are binned by destination GPU with the 64→32-bit
// id conversion done sender-side (§V-B). nn never runs backward (§IV-B).
func (e *Session) kernelNN(gs *gpuState, pv previsitOut, iter int32) {
	var edges, binned int64
	p64 := int64(e.p)
	self := gs.pg.GPU
	for _, u := range gs.inFront {
		for _, v := range gs.pg.NN.Neighbors(int64(u)) {
			edges++
			owner := e.cfg.OwnerGPU(v)
			local := uint32(v / p64)
			if owner == self {
				if gs.levels[local] == -1 {
					gs.discover(local, iter+1)
				}
			} else {
				gs.bins.Add(owner, local)
				binned++
			}
		}
	}
	gs.it.edgesScanned += edges
	skew := rowSkew(pv.maxNN, pv.fvNN, int64(len(gs.inFront)))
	gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
		Edges: edges, Vertices: int64(len(gs.inFront)), Strategy: simgpu.TWBDynamic, Skew: skew,
	})
	// Binning + id conversion cost, O(|Enn|/p) across the whole run.
	if binned > 0 {
		gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
			Vertices: binned, Strategy: simgpu.TWBDynamic,
		})
	}
}

// rowSkew estimates maxRow/avgRow - 1 for the TWB imbalance penalty.
func rowSkew(maxRow, total, rows int64) float64 {
	if rows == 0 || total == 0 || maxRow == 0 {
		return 0
	}
	avg := float64(total) / float64(rows)
	return float64(maxRow)/avg - 1
}

// runKernels executes one iteration's local computation on one GPU and
// returns the previsit info (the run loop needs the workloads for stats).
func (e *Session) runKernels(gs *gpuState, iter int32, qD, sD int64) previsitOut {
	pv := e.previsit(gs)
	e.decideDirections(gs, pv, qD, sD)
	// Delegate stream: dd then nd (both write the delegate mask).
	e.kernelDD(gs, pv)
	e.kernelND(gs, pv, iter)
	// Normal stream: dn then nn (both write the normal frontier).
	e.kernelDN(gs, pv, iter)
	e.kernelNN(gs, pv, iter)
	return pv
}
