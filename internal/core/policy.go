package core

// This file is the per-iteration exchange policy layer. The paper picks
// push vs pull each iteration from the known frontier size (§IV-B); the
// hybrid exchange policy applies the same idea to the exchange topology:
// all-pairs wins bandwidth-bound iterations (the butterfly relays roughly
// log2(p)/2× the volume) while the butterfly wins message-count-bound ones
// (p−1 latencies vs log2(p) plus cleanup). Every rank evaluates the same
// cost model over the same globally known inputs — the frontier sizes and
// byte volumes reduced by the previous iteration's termination allreduce —
// so the per-iteration decision is identical on all ranks without any
// extra collective.
//
// The cost model is the α/β form unit-tested against simnet's timing:
//
//	all-pairs:  ≈ pairs·α + V·β(msg) + codec(2V)     (p−1 sends per rank)
//	butterfly:  ≈ hops·α + relay·V·β(msg') + codec   (log2(q) hops + cleanup)
//
// realized by running the predicted per-rank volume V through the exact
// simnet curves the timing model charges (PointToPoint, and Butterfly or
// ButterflyPipelined depending on Options.PipelineHops), with the codec
// compute each side would pay at simgpu CodecRate. With pipelined hops the
// butterfly's predicted codec stages overlap its predicted transfers
// exactly as the timing model overlaps the measured ones, so the hybrid
// keeps choosing correctly now that the butterfly got cheaper — the
// crossover volume moves up.
//
// Two feedback signals, both derived from globally reduced quantities so
// every rank sees identical values, tighten the estimate per session:
//
//   - skew: the timing model charges the max-reduced rank while the volume
//     estimate is a mean; the previous iteration's reduced per-hop maxima
//     over the mean per-rank volume prices partition skew into both costs.
//   - calibration: a per-strategy EWMA of actual vs predicted remote-normal
//     seconds scales subsequent predictions, absorbing systematic model
//     bias near the crossover.

import (
	"gcbfs/internal/simnet"
	"gcbfs/internal/wire"
)

// policyFeedback carries the measured feedback the BSP loop threads into
// each iteration's decision. Every rank maintains its own copy, updated
// from globally reduced values only, so the copies are bit-identical and
// the decision needs no extra collective. The zero feedback is invalid;
// use newPolicyFeedback.
type policyFeedback struct {
	// skew is the previous iteration's reduced-maximum per-rank exchange
	// volume over the mean per-rank volume, ≥ 1 (1 = perfectly balanced).
	skew float64
	// wireRatio is the measured wire-bytes over fixed-width-bytes ratio of
	// the previous volume-carrying iteration: the volume estimate is
	// raw-based, but the simnet curves see post-codec bytes. 1 with the
	// codec off (wire equals raw there); below 1 when compression bites.
	// Without it, a 2× codec saving inflates both cost predictions — which
	// flips near-crossover decisions toward all-pairs, whose
	// latency-saturated cost barely notices the inflation, and away from
	// the butterfly, whose relayed volume scales with it.
	wireRatio float64
	// calib scales each strategy's predicted cost by its session EWMA of
	// actual/predicted remote-normal time (indexed by Exchange; 1 until
	// the strategy has run).
	calib [2]float64
}

func newPolicyFeedback() policyFeedback {
	return policyFeedback{skew: 1, wireRatio: 1, calib: [2]float64{1, 1}}
}

// PolicySnapshot exports one query's final measured-feedback state so later
// queries on the same graph can warm-start their exchange policy instead of
// re-learning the crossover from neutral defaults (Options.Warm). Partition
// skew is a property of the graph, and the codec ratio and model bias are
// stable across sources, so the first volume-carrying iterations of a
// warm-started query decide with a calibrated cost model. A zero field means
// "no information" and leaves the corresponding default untouched on seed.
type PolicySnapshot struct {
	// Skew is the final reduced-max over mean per-rank volume EWMA (≥ 1).
	Skew float64
	// WireRatio is the final measured wire-over-raw byte ratio.
	WireRatio float64
	// CalibAllPairs/CalibButterfly are the final actual-over-predicted
	// remote-time EWMAs per strategy (0 when the strategy never ran).
	CalibAllPairs  float64
	CalibButterfly float64
}

// snapshot exports the feedback state. Calibrations are reported only for
// strategies that executed at least one iteration (the callers gate on the
// per-strategy iteration counts), so a neutral 1.0 that never saw a
// measurement is still exported — seeding with it is a no-op by value.
func (fb policyFeedback) snapshot() PolicySnapshot {
	return PolicySnapshot{
		Skew:           fb.skew,
		WireRatio:      fb.wireRatio,
		CalibAllPairs:  fb.calib[ExchangeAllPairs],
		CalibButterfly: fb.calib[ExchangeButterfly],
	}
}

// seed warm-starts the feedback from a snapshot, applying the same clamps
// observe enforces so a hand-built snapshot cannot poison the session. Zero
// fields keep the neutral defaults.
func (fb *policyFeedback) seed(s PolicySnapshot) {
	if s.Skew > 0 {
		fb.skew = min(max(s.Skew, 1), skewMax)
	}
	if s.WireRatio > 0 {
		fb.wireRatio = min(max(s.WireRatio, wireRatioMin), wireRatioMax)
	}
	if s.CalibAllPairs > 0 {
		fb.calib[ExchangeAllPairs] = min(max(s.CalibAllPairs, calibMin), calibMax)
	}
	if s.CalibButterfly > 0 {
		fb.calib[ExchangeButterfly] = min(max(s.CalibButterfly, calibMin), calibMax)
	}
}

// MergeSnapshots deterministically folds per-query snapshots into one
// warm-start state: each field is the running mean of the nonzero
// contributions, folded in slice order. Callers pass snapshots in source
// order, so the merged state is a pure function of the query results and
// never depends on completion timing.
func MergeSnapshots(snaps []PolicySnapshot) PolicySnapshot {
	var out PolicySnapshot
	var nSkew, nWire, nAP, nBF float64
	fold := func(acc *float64, n *float64, v float64) {
		if v <= 0 {
			return
		}
		*n++
		*acc += (v - *acc) / *n
	}
	for _, s := range snaps {
		fold(&out.Skew, &nSkew, s.Skew)
		fold(&out.WireRatio, &nWire, s.WireRatio)
		fold(&out.CalibAllPairs, &nAP, s.CalibAllPairs)
		fold(&out.CalibButterfly, &nBF, s.CalibButterfly)
	}
	return out
}

const (
	// calibEWMA is the feedback smoothing factor: small enough that one
	// outlier iteration cannot swing the next decision, large enough to
	// converge within a BFS's handful of volume-carrying iterations.
	calibEWMA = 0.3
	// calibMin/calibMax bound the correction so a degenerate iteration
	// (near-zero predicted time) cannot poison the session.
	calibMin, calibMax = 0.25, 4.0
	// skewMax bounds the skew ratio for the same reason.
	skewMax = 16.0
	// skewGateRawBytes gates the skew and wire-ratio updates on iterations
	// whose global fixed-width exchange volume averages at least this many
	// raw bytes per rank. Below it the wire bytes are dominated by
	// per-message framing and synchronizing empty hops, so the ratios
	// measure framing noise, not partition skew or codec effectiveness —
	// and in that latency regime the volume estimate hardly matters anyway.
	skewGateRawBytes = 256
	// wireRatioMin/Max bound the measured compression ratio (framing can
	// push it slightly above 1; a pathological block should not predict a
	// near-free wire).
	wireRatioMin, wireRatioMax = 0.1, 1.5
)

// observe folds one executed iteration's measurement into the feedback:
// the strategy that ran, its raw (uncalibrated) predicted remote-normal
// seconds, the actual exchange remote-normal seconds from the reduced
// timing, the reduced-max vs mean per-rank volume, and the measured
// wire/raw byte ratio.
func (fb *policyFeedback) observe(strategy Exchange, rawPredicted, actual float64, maxVol, meanVol, wireRatio float64) {
	if meanVol > 0 && maxVol > 0 {
		s := maxVol / meanVol
		if s < 1 {
			s = 1
		}
		if s > skewMax {
			s = skewMax
		}
		fb.skew = s
	}
	if wireRatio > 0 {
		if wireRatio > wireRatioMax {
			wireRatio = wireRatioMax
		}
		if wireRatio < wireRatioMin {
			wireRatio = wireRatioMin
		}
		fb.wireRatio = wireRatio
	}
	if rawPredicted <= 0 || actual <= 0 {
		return
	}
	ratio := actual / rawPredicted
	if ratio < calibMin {
		ratio = calibMin
	}
	if ratio > calibMax {
		ratio = calibMax
	}
	c := (1-calibEWMA)*fb.calib[strategy] + calibEWMA*ratio
	if c < calibMin {
		c = calibMin
	}
	if c > calibMax {
		c = calibMax
	}
	fb.calib[strategy] = c
}

// exchangePolicy evaluates the per-iteration strategy decision for one run.
// It is immutable after construction and shared by all rank goroutines;
// mutable feedback lives in each rank's policyFeedback copy.
type exchangePolicy struct {
	configured Exchange // the run's configured strategy (hybrid ⇒ decide per iteration)
	e          *Session
	prank      int
	// expansion estimates bytes entering the normal exchange per input
	// frontier vertex on the first iteration (before measured feedback
	// exists): 4 bytes per id × average out-degree × the nn edge fraction,
	// since only nn edges generate inter-rank normal traffic.
	expansion float64
	// hypercube geometry (mirrors butterflyExchange).
	q, rem, nhops int
}

func (e *Session) newExchangePolicy() *exchangePolicy {
	prank := e.shape.Ranks()
	q, rem, nhops := hypercubeGeometry(prank)
	var expansion float64
	if e.sg.N > 0 && e.sg.M > 0 {
		avgDeg := float64(e.sg.M) / float64(e.sg.N)
		nnFrac := float64(e.sg.CountNN) / float64(e.sg.M)
		expansion = 4 * avgDeg * nnFrac
	}
	return &exchangePolicy{
		configured: e.opts.Exchange,
		e:          e,
		prank:      prank,
		expansion:  expansion,
		q:          q,
		rem:        rem,
		nhops:      nhops,
	}
}

// predictVolume estimates this iteration's per-rank exchange volume in
// amplified bytes from globally known quantities: the input normal frontier
// size and, once available, the previous iteration's measured global
// originated bytes (fixed-width, forwards excluded — strategy-independent,
// so a butterfly iteration's relayed volume never pollutes the estimate)
// scaled by the frontier growth ratio. The mean per-rank estimate is then
// scaled by the measured skew ratio, since the timing model charges the
// max-reduced rank, not the mean. Every rank computes the identical
// estimate.
func (p *exchangePolicy) predictVolume(inputNormals, inputDelegates, prevNormals, prevOriginated int64, skew float64) int64 {
	if p.prank <= 1 || (inputNormals <= 0 && inputDelegates <= 0) {
		return 0
	}
	var globalEst float64
	if inputNormals > 0 {
		if prevOriginated > 0 && prevNormals > 0 {
			globalEst = float64(prevOriginated) * float64(inputNormals) / float64(prevNormals)
		} else {
			globalEst = float64(inputNormals) * p.expansion
		}
	}
	perRank := globalEst / float64(p.prank)
	if skew > 1 {
		perRank *= skew
	}
	// A live frontier never rounds down to a free exchange: floor the
	// estimate at one id so the cost model sees the latency regime —
	// all-pairs pays its per-pair message floor on near-empty iterations,
	// which is exactly where the butterfly's few hops win. Delegate-only
	// frontiers (a delegate source, or a pull-phase iteration with no
	// normal discoveries) land here too: only nn edges put payload on the
	// normal exchange, but the synchronized empty rounds still cross the
	// NIC and cost their per-message latencies.
	if perRank < 4 {
		perRank = 4
	}
	return p.e.ampBytes(int64(perRank))
}

// codecOn reports whether the wire codec (and hence its compute cost) is in
// play for this run.
func (p *exchangePolicy) codecOn() bool {
	return p.e.opts.Compression != wire.ModeOff
}

// onWire converts a fixed-width volume into its predicted wire-byte
// equivalent using the measured compression ratio.
func onWire(vol int64, wireRatio float64) int64 {
	if wireRatio == 1 || vol <= 0 {
		return vol
	}
	w := int64(float64(vol) * wireRatio)
	if w < 1 {
		w = 1
	}
	return w
}

// allPairsCost predicts an all-pairs exchange originating vol fixed-width
// bytes per rank — exactly allPairsExchange.remoteTime applied to the
// predicted volume. sec is the remote-normal prediction: the point-to-point
// curve over the predicted wire bytes plus, with a codec active, the
// single-round encode+decode compute over the raw bytes (never overlapped —
// one round has no earlier transfer to hide under). nv is the hierarchical
// NVLink tier's predicted exposure — the intra-rank aggregation plus the
// send and receive staging copies (received volume ≈ sent, the exchange
// being globally symmetric), all serial in a single round — which the
// timing model charges to LocalComm, not remote-normal.
func (p *exchangePolicy) allPairsCost(vol int64, wireRatio float64) (sec, nv float64) {
	w := onWire(vol, wireRatio)
	// Any volume at all still pays one message per destination — the round
	// is synchronized on the reduced maxima, so even a near-empty predicted
	// frontier meets every pair's latency floor. Below pairs² bytes the
	// ceil-split message count collapses under the pair count and the
	// prediction drops floors the measured side always charges; clamping
	// there costs only a few bytes of phantom bandwidth.
	if pairs := effPairsFor(&p.e.opts, p.e.shape); w > 0 && w < pairs*pairs {
		w = pairs * pairs
	}
	net := p.e.opts.Net
	t := net.PointToPoint(w, p.e.effMessageBytes(w))
	if p.codecOn() {
		t += p.e.opts.GPU.CodecTime(2 * vol)
	}
	if hierExchangeFor(&p.e.opts, p.e.shape) {
		agg := aggregationBytesFor(&p.e.opts, p.e.shape, vol)
		nv = net.LocalExchange(agg, p.e.shape.GPUsPerRank) + 2*net.Staging(w)
	}
	return t, nv
}

// policyScratch backs one rank's per-iteration cost evaluation: the
// butterfly hop profile, its wire-byte equivalent, and the codec and NVLink
// stages. The shapes are fixed by the hypercube geometry (nhops+2 entries
// at most), so after the first iteration the evaluation allocates nothing.
// The policy object itself is shared by every rank goroutine and stays
// immutable; the scratch is the per-rank mutable part, threaded in by the
// BSP loop.
type policyScratch struct {
	hops, wire []int64
	stages     []float64
	nvStages   []float64
}

// butterflyHops predicts the per-hop volume profile of a butterfly exchange
// originating vol bytes per rank. With traffic spread uniformly over p−1
// destinations, each hypercube hop forwards about half the standing volume
// — vol·p/(2(p−1)) per hop, the relay factor the strategy pays for its
// fewer messages — while the cleanup hops move a remainder rank's full
// origination (pre) and a full rank's worth of arrivals (post).
func (p *exchangePolicy) butterflyHops(vol int64) []int64 {
	return p.appendButterflyHops(nil, vol)
}

// appendButterflyHops is butterflyHops into a caller-owned buffer.
func (p *exchangePolicy) appendButterflyHops(buf []int64, vol int64) []int64 {
	hopVol := int64(float64(vol) * float64(p.prank) / (2 * float64(p.prank-1)))
	hops := buf[:0]
	if cap(hops) < p.nhops+2 {
		hops = make([]int64, 0, p.nhops+2)
	}
	if p.rem > 0 {
		hops = append(hops, vol)
	}
	for h := 0; h < p.nhops; h++ {
		hops = append(hops, hopVol)
	}
	if p.rem > 0 {
		hops = append(hops, vol)
	}
	return hops
}

// butterflyCodec predicts the per-hop codec compute stages of a butterfly
// exchange with the given hop profile, mirroring how the exchange assembles
// its measured stages: hop k's stage is its decode plus the re-encode
// feeding hop k+1, and the first hop's encode precedes all communication.
func (p *exchangePolicy) butterflyCodec(hops []int64) (stages []float64, pre float64) {
	return p.appendButterflyCodec(nil, hops)
}

// appendButterflyCodec is butterflyCodec into a caller-owned buffer.
func (p *exchangePolicy) appendButterflyCodec(buf []float64, hops []int64) (stages []float64, pre float64) {
	stages = grownFloat64(buf, len(hops))
	if !p.codecOn() || len(hops) == 0 {
		return stages, 0
	}
	gpu := p.e.opts.GPU
	for k := range hops {
		raw := hops[k]
		if k+1 < len(hops) {
			raw += hops[k+1]
		}
		stages[k] = gpu.CodecTime(raw)
	}
	return stages, gpu.CodecTime(hops[0])
}

// butterflyCost predicts a butterfly exchange originating vol fixed-width
// bytes per rank — butterflyExchange.remoteTime applied to the predicted
// profiles: codec stages over the raw hop volumes, transfers over their
// wire-byte equivalents, combined by the pipelined schedule when
// Options.PipelineHops is set or the sequential hop+codec sum otherwise.
// sec is the remote-normal (wire+codec) prediction; nv the NVLink tier's
// predicted exposure, charged to LocalComm by the timing model.
func (p *exchangePolicy) butterflyCost(vol int64, wireRatio float64) (sec, nv float64) {
	return p.butterflyCostS(vol, wireRatio, &policyScratch{})
}

// butterflyCostS is butterflyCost evaluated through a per-rank scratch.
// Under the hierarchical exchange the predicted NVLink stages mirror how
// butterflyExchange.remoteTime builds the measured ones: one staging charge
// per direction per iteration spread over the hops in volume proportion
// (received ≈ sent per hop — the hops are pairwise exchanges), the pre
// stage the intra-rank aggregation plus the first send's share. The
// predicted exposure is then the tier's marginal on the pipelined schedule
// (three- minus two-resource total), or the whole tier when sequential.
func (p *exchangePolicy) butterflyCostS(vol int64, wireRatio float64, ps *policyScratch) (sec, nvOut float64) {
	ps.hops = p.appendButterflyHops(ps.hops, vol)
	hops := ps.hops
	var pre float64
	ps.stages, pre = p.appendButterflyCodec(ps.stages, hops)
	stages := ps.stages
	wireHops := hops
	if wireRatio != 1 {
		ps.wire = grownInt64(ps.wire, len(hops))
		wireHops = ps.wire
		for i, h := range hops {
			wireHops[i] = onWire(h, wireRatio)
		}
	}
	net := p.e.opts.Net
	var nv []float64
	var preNV, nvTotal float64
	if hierExchangeFor(&p.e.opts, p.e.shape) {
		var sendTot int64
		for _, h := range wireHops {
			sendTot += h
		}
		sendSecs := net.Staging(sendTot)
		nv = grownFloat64(ps.nvStages, len(wireHops))
		ps.nvStages = nv
		for k := range wireHops {
			t := stagingShare(sendSecs, wireHops[k], sendTot)
			if k+1 < len(wireHops) {
				t += stagingShare(sendSecs, wireHops[k+1], sendTot)
			}
			nv[k] = t
			nvTotal += t
		}
		preNV = net.LocalExchange(aggregationBytesFor(&p.e.opts, p.e.shape, vol), p.e.shape.GPUsPerRank)
		if len(wireHops) > 0 {
			preNV += stagingShare(sendSecs, wireHops[0], sendTot)
		}
		nvTotal += preNV
	}
	if p.e.opts.PipelineHops {
		sched := simnet.ExchangeSchedule{
			HopBytes: wireHops,
			HopCodec: stages,
			PreCodec: pre,
			MsgCap:   p.e.opts.MessageBytes,
		}
		wc := net.PipelinedExchange(sched).Total
		if nvTotal == 0 {
			return wc, 0
		}
		sched.HopNVLink, sched.PreNVLink = nv, preNV
		return wc, net.PipelinedExchange(sched).Total - wc
	}
	t := net.Butterfly(wireHops, p.e.opts.MessageBytes) + pre
	for _, c := range stages {
		t += c
	}
	return t, nvTotal
}

// choose returns the strategy for the upcoming iteration plus its predicted
// remote-normal seconds (calibrated by the session feedback). Fixed
// configurations keep their strategy (the prediction is still recorded,
// giving every run a predicted-vs-actual trace); hybrid takes the side
// whose full price — calibrated remote-normal plus the raw NVLink-tier
// exposure — is cheaper, preferring the butterfly on ties — equal-cost
// iterations are latency-bound, where fewer messages also mean fewer
// software overheads the model does not charge. The NVLink term rides
// uncalibrated: its actual lands in LocalComm, outside the remote-normal
// calibration pair, and its curves are the exact simnet forms anyway.
func (p *exchangePolicy) choose(inputNormals, inputDelegates, prevNormals, prevOriginated int64, fb policyFeedback) (Exchange, float64) {
	return p.chooseS(inputNormals, inputDelegates, prevNormals, prevOriginated, fb, &policyScratch{})
}

// chooseS is choose evaluated through a per-rank scratch — the BSP loops
// call it every iteration, so the cost evaluation must not allocate.
func (p *exchangePolicy) chooseS(inputNormals, inputDelegates, prevNormals, prevOriginated int64, fb policyFeedback, ps *policyScratch) (Exchange, float64) {
	vol := p.predictVolume(inputNormals, inputDelegates, prevNormals, prevOriginated, fb.skew)
	switch p.configured {
	case ExchangeAllPairs:
		s, _ := p.allPairsCost(vol, fb.wireRatio)
		return ExchangeAllPairs, s * fb.calib[ExchangeAllPairs]
	case ExchangeButterfly:
		s, _ := p.butterflyCostS(vol, fb.wireRatio, ps)
		return ExchangeButterfly, s * fb.calib[ExchangeButterfly]
	}
	if p.prank <= 1 {
		return ExchangeAllPairs, 0
	}
	apS, apNV := p.allPairsCost(vol, fb.wireRatio)
	bfS, bfNV := p.butterflyCostS(vol, fb.wireRatio, ps)
	ap := apS*fb.calib[ExchangeAllPairs] + apNV
	bf := bfS*fb.calib[ExchangeButterfly] + bfNV
	if bf <= ap {
		return ExchangeButterfly, bfS * fb.calib[ExchangeButterfly]
	}
	return ExchangeAllPairs, apS * fb.calib[ExchangeAllPairs]
}
