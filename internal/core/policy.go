package core

// This file is the per-iteration exchange policy layer. The paper picks
// push vs pull each iteration from the known frontier size (§IV-B); the
// hybrid exchange policy applies the same idea to the exchange topology:
// all-pairs wins bandwidth-bound iterations (the butterfly relays roughly
// log2(p)/2× the volume) while the butterfly wins message-count-bound ones
// (p−1 latencies vs log2(p) plus cleanup). Every rank evaluates the same
// cost model over the same globally known inputs — the frontier sizes and
// byte volumes reduced by the previous iteration's termination allreduce —
// so the per-iteration decision is identical on all ranks without any
// extra collective.
//
// The cost model is the α/β form unit-tested against simnet's timing:
//
//	all-pairs:  ≈ pairs·α + V·β(msg)          (p−1 sends per rank)
//	butterfly:  ≈ hops·α + relay·V·β(msg')    (log2(q) hops + cleanup)
//
// realized by running the predicted per-rank volume V through the exact
// simnet curves the timing model charges (PointToPoint and Butterfly), so
// the predicted and actual remote-normal seconds are directly comparable —
// both are recorded per iteration in metrics.IterationStats.

// exchangePolicy evaluates the per-iteration strategy decision for one run.
// It is immutable after construction and shared by all rank goroutines.
type exchangePolicy struct {
	configured Exchange // the run's configured strategy (hybrid ⇒ decide per iteration)
	e          *Session
	prank      int
	// expansion estimates bytes entering the normal exchange per input
	// frontier vertex on the first iteration (before measured feedback
	// exists): 4 bytes per id × average out-degree × the nn edge fraction,
	// since only nn edges generate inter-rank normal traffic.
	expansion float64
	// hypercube geometry (mirrors butterflyExchange).
	q, rem, nhops int
}

func (e *Session) newExchangePolicy() *exchangePolicy {
	prank := e.shape.Ranks()
	q, rem, nhops := hypercubeGeometry(prank)
	var expansion float64
	if e.sg.N > 0 && e.sg.M > 0 {
		avgDeg := float64(e.sg.M) / float64(e.sg.N)
		nnFrac := float64(e.sg.CountNN) / float64(e.sg.M)
		expansion = 4 * avgDeg * nnFrac
	}
	return &exchangePolicy{
		configured: e.opts.Exchange,
		e:          e,
		prank:      prank,
		expansion:  expansion,
		q:          q,
		rem:        rem,
		nhops:      nhops,
	}
}

// predictVolume estimates this iteration's per-rank exchange volume in
// amplified bytes from globally known quantities: the input normal frontier
// size and, once available, the previous iteration's measured global
// originated bytes (fixed-width, forwards excluded — strategy-independent,
// so a butterfly iteration's relayed volume never pollutes the estimate)
// scaled by the frontier growth ratio. Every rank computes the identical
// estimate.
func (p *exchangePolicy) predictVolume(inputNormals, prevNormals, prevOriginated int64) int64 {
	if inputNormals <= 0 || p.prank <= 1 {
		return 0
	}
	var globalEst float64
	if prevOriginated > 0 && prevNormals > 0 {
		globalEst = float64(prevOriginated) * float64(inputNormals) / float64(prevNormals)
	} else {
		globalEst = float64(inputNormals) * p.expansion
	}
	perRank := globalEst / float64(p.prank)
	// A live normal frontier never rounds down to a free exchange: floor
	// the estimate at one id so the cost model sees the latency regime —
	// all-pairs pays its per-pair message floor on near-empty iterations,
	// which is exactly where the butterfly's few hops win.
	if perRank < 4 {
		perRank = 4
	}
	return p.e.ampBytes(int64(perRank))
}

// allPairsCost predicts the remote-normal seconds of an all-pairs exchange
// moving vol bytes per rank — exactly allPairsExchange.remoteTime applied
// to the predicted volume.
func (p *exchangePolicy) allPairsCost(vol int64) float64 {
	return p.e.opts.Net.PointToPoint(vol, p.e.effMessageBytes(vol))
}

// butterflyHops predicts the per-hop volume profile of a butterfly exchange
// originating vol bytes per rank. With traffic spread uniformly over p−1
// destinations, each hypercube hop forwards about half the standing volume
// — vol·p/(2(p−1)) per hop, the relay factor the strategy pays for its
// fewer messages — while the cleanup hops move a remainder rank's full
// origination (pre) and a full rank's worth of arrivals (post).
func (p *exchangePolicy) butterflyHops(vol int64) []int64 {
	hopVol := int64(float64(vol) * float64(p.prank) / (2 * float64(p.prank-1)))
	hops := make([]int64, 0, p.nhops+2)
	if p.rem > 0 {
		hops = append(hops, vol)
	}
	for h := 0; h < p.nhops; h++ {
		hops = append(hops, hopVol)
	}
	if p.rem > 0 {
		hops = append(hops, vol)
	}
	return hops
}

// butterflyCost predicts the remote-normal seconds of a butterfly exchange
// originating vol bytes per rank — butterflyExchange.remoteTime applied to
// the predicted hop profile.
func (p *exchangePolicy) butterflyCost(vol int64) float64 {
	return p.e.opts.Net.Butterfly(p.butterflyHops(vol), p.e.opts.MessageBytes)
}

// choose returns the strategy for the upcoming iteration plus its predicted
// remote-normal seconds. Fixed configurations keep their strategy (the
// prediction is still recorded, giving every run a predicted-vs-actual
// trace); hybrid takes the cheaper side of the cost model, preferring the
// butterfly on ties — equal-cost iterations are latency-bound, where fewer
// messages also mean fewer software overheads the model does not charge.
func (p *exchangePolicy) choose(inputNormals, prevNormals, prevGlobalSent int64) (Exchange, float64) {
	vol := p.predictVolume(inputNormals, prevNormals, prevGlobalSent)
	switch p.configured {
	case ExchangeAllPairs:
		return ExchangeAllPairs, p.allPairsCost(vol)
	case ExchangeButterfly:
		return ExchangeButterfly, p.butterflyCost(vol)
	}
	if p.prank <= 1 {
		return ExchangeAllPairs, 0
	}
	ap, bf := p.allPairsCost(vol), p.butterflyCost(vol)
	if bf <= ap {
		return ExchangeButterfly, bf
	}
	return ExchangeAllPairs, ap
}
