package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// buildPlan partitions el for the shape/threshold and returns the plan.
func buildPlanT(t *testing.T, scale int, shape ClusterShape, opts Options, tightTH bool) *Plan {
	t.Helper()
	el := rmat.Generate(rmat.DefaultParams(scale))
	cap := 4 * el.N / int64(shape.P())
	if tightTH {
		cap = el.N / 8 // communication-heavy regime: real nn traffic
	}
	th := partition.SuggestThreshold(el.OutDegrees(), cap)
	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(sg, shape, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func sameRun(t *testing.T, label string, a, b *metrics.RunResult) {
	t.Helper()
	if a.Iterations != b.Iterations {
		t.Fatalf("%s: iterations %d vs %d", label, a.Iterations, b.Iterations)
	}
	if a.SimSeconds != b.SimSeconds {
		t.Fatalf("%s: sim seconds %v vs %v", label, a.SimSeconds, b.SimSeconds)
	}
	if a.EdgesScanned != b.EdgesScanned {
		t.Fatalf("%s: edges scanned %d vs %d", label, a.EdgesScanned, b.EdgesScanned)
	}
	if (a.Levels == nil) != (b.Levels == nil) {
		t.Fatalf("%s: levels collected on one side only", label)
	}
	for v := range a.Levels {
		if a.Levels[v] != b.Levels[v] {
			t.Fatalf("%s: vertex %d level %d vs %d", label, v, a.Levels[v], b.Levels[v])
		}
	}
	if (a.Parents == nil) != (b.Parents == nil) {
		t.Fatalf("%s: parents collected on one side only", label)
	}
	for v := range a.Parents {
		if a.Parents[v] != b.Parents[v] {
			t.Fatalf("%s: vertex %d parent %d vs %d", label, v, a.Parents[v], b.Parents[v])
		}
	}
}

// TestPooledSessionsDeterministic reruns the same source through the pool
// (the second run reuses the first run's recycled session) and through the
// concurrent batch path; every result must be bit-identical.
func TestPooledSessionsDeterministic(t *testing.T) {
	opts := DefaultOptions()
	opts.CollectParents = true
	p := buildPlanT(t, 12, ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1}, opts, false)
	ctx := context.Background()

	first, err := p.Run(ctx, 3, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Run(ctx, 3, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	sameRun(t, "recycled session", first, second)

	sources := []int64{3, 7, 9, 15, 21, 33}
	serial := make([]*metrics.RunResult, len(sources))
	for i, src := range sources {
		if serial[i], err = p.Run(ctx, src, Overrides{}); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := p.RunBatch(ctx, sources, 4, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sources {
		if batch[i].Source != sources[i] {
			t.Fatalf("batch result %d has source %d, want %d", i, batch[i].Source, sources[i])
		}
		sameRun(t, "batch vs serial", serial[i], batch[i])
	}
}

// TestOverridesValidated covers the per-query override validation and that
// overrides actually take effect without touching the plan's base options.
func TestOverridesValidated(t *testing.T) {
	p := buildPlanT(t, 11, ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 1}, DefaultOptions(), false)
	ctx := context.Background()

	bad := wire.Mode(99)
	if _, err := p.Run(ctx, 1, Overrides{Compression: &bad}); err == nil {
		t.Fatal("plan accepted an invalid compression override")
	}
	badX := Exchange(7)
	if _, err := p.Run(ctx, 1, Overrides{Exchange: &badX}); err == nil {
		t.Fatal("plan accepted an invalid exchange override")
	}

	adaptive := wire.ModeAdaptive
	noLevels := false
	res, err := p.Run(ctx, 1, Overrides{Compression: &adaptive, CollectLevels: &noLevels})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Wire.Enabled {
		t.Fatal("compression override did not reach the run")
	}
	if res.Levels != nil {
		t.Fatal("CollectLevels override did not reach the run")
	}
	if p.Options().Compression != wire.ModeOff || !p.Options().CollectLevels {
		t.Fatal("override leaked into the plan's base options")
	}
	// The next query must see the base options again (pooled session
	// reconfigured, not stuck with the previous query's overrides).
	res2, err := p.Run(ctx, 1, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Wire.Enabled || res2.Levels == nil {
		t.Fatal("recycled session kept the previous query's overrides")
	}
}

// TestRunContextPreCancelled: a dead context aborts before any work.
func TestRunContextPreCancelled(t *testing.T) {
	p := buildPlanT(t, 11, ClusterShape{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}, DefaultOptions(), false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, 1, Overrides{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := p.RunBatch(ctx, []int64{1, 2}, 2, Overrides{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
}

// TestRunBatchRealErrorWins: a genuine query error (out-of-range source)
// must surface from RunBatch, not be masked by the internal cancellation it
// triggers for the remaining workers.
func TestRunBatchRealErrorWins(t *testing.T) {
	p := buildPlanT(t, 11, ClusterShape{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}, DefaultOptions(), false)
	_, err := p.RunBatch(context.Background(), []int64{1, 1 << 40, 2, 3}, 2, Overrides{})
	if err == nil {
		t.Fatal("batch with an out-of-range source succeeded")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("real query error masked by cancellation: %v", err)
	}
}

// errAfterCtx reports Canceled once Err has been polled more than `after`
// times — a deterministic stand-in for a context cancelled mid-run. Err is
// the only method the BSP loop consults at iteration boundaries.
type errAfterCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *errAfterCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestRunCancelsAtIterationBoundary drives a run with a context that dies
// after the first iteration's polls; the query must abort (within one
// iteration — the loop would otherwise run many more) and return ctx.Err().
func TestRunCancelsAtIterationBoundary(t *testing.T) {
	shape := ClusterShape{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}
	p := buildPlanT(t, 12, shape, DefaultOptions(), false)
	ctx := context.Background()

	full, err := p.Run(ctx, 1, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Iterations < 3 {
		t.Fatalf("reference run too short (%d iterations) to observe mid-run cancellation", full.Iterations)
	}

	// Plan.Run polls once up front, then each of the 2 ranks polls once per
	// iteration: after=3 survives iteration 1 and dies during iteration 2.
	cc := &errAfterCtx{Context: ctx, after: 3}
	res, err := p.Run(cc, 1, Overrides{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	// The next query on the recycled session must be unaffected.
	again, err := p.Run(ctx, 1, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	sameRun(t, "after cancellation", full, again)
}

// TestCodecCostCharged: the codec's pack/unpack compute appears in simulated
// time when compression is on (top ROADMAP item), is zero when off, and the
// butterfly's per-hop re-encode strictly exceeds the all-pairs codec work.
func TestCodecCostCharged(t *testing.T) {
	shape := ClusterShape{Nodes: 4, RanksPerNode: 1, GPUsPerRank: 2}
	run := func(mode wire.Mode, strat Exchange) *metrics.RunResult {
		opts := DefaultOptions()
		opts.Compression = mode
		opts.Exchange = strat
		p := buildPlanT(t, 12, shape, opts, true)
		res, err := p.Run(context.Background(), 2, Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	off := run(wire.ModeOff, ExchangeAllPairs)
	if off.Wire.CodecBytes != 0 || off.Wire.CodecSeconds != 0 {
		t.Fatalf("codec-off run charged codec work: %d bytes, %v s",
			off.Wire.CodecBytes, off.Wire.CodecSeconds)
	}

	ap := run(wire.ModeAdaptive, ExchangeAllPairs)
	if ap.Wire.CodecBytes == 0 || ap.Wire.CodecSeconds <= 0 {
		t.Fatalf("adaptive run charged no codec work: %d bytes, %v s",
			ap.Wire.CodecBytes, ap.Wire.CodecSeconds)
	}
	if ap.Parts.RemoteNormal < ap.Wire.CodecSeconds {
		t.Fatalf("remote-normal %v s does not include codec %v s",
			ap.Parts.RemoteNormal, ap.Wire.CodecSeconds)
	}
	// Encode + decode both count: total codec volume is at least twice the
	// fixed-width payload equivalent.
	if ap.Wire.CodecBytes < 2*ap.Wire.RawBytes {
		t.Fatalf("codec bytes %d below 2× raw bytes %d (encode+decode)",
			ap.Wire.CodecBytes, ap.Wire.RawBytes)
	}

	bf := run(wire.ModeAdaptive, ExchangeButterfly)
	if bf.Exchange.ForwardedBytes == 0 {
		t.Fatal("butterfly forwarded nothing — codec comparison is vacuous")
	}
	if bf.Wire.CodecBytes <= ap.Wire.CodecBytes {
		t.Fatalf("butterfly codec bytes %d not above all-pairs %d — per-hop re-encode not counted",
			bf.Wire.CodecBytes, ap.Wire.CodecBytes)
	}
	// Charging codec time never changes the traversal itself.
	if ap.Iterations != bf.Iterations || ap.EdgesScanned != bf.EdgesScanned {
		t.Fatalf("strategies diverged functionally: %d/%d iterations, %d/%d edges",
			ap.Iterations, bf.Iterations, ap.EdgesScanned, bf.EdgesScanned)
	}
	for v := range ap.Levels {
		if ap.Levels[v] != bf.Levels[v] {
			t.Fatalf("vertex %d: level %d (allpairs) vs %d (butterfly)", v, ap.Levels[v], bf.Levels[v])
		}
	}
}

// TestEngineShimDelegates keeps the deprecated Engine surface honest.
func TestEngineShimDelegates(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(11))
	shape := ClusterShape{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}
	th := partition.SuggestThreshold(el.OutDegrees(), 4*el.N/int64(shape.P()))
	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(sg, shape, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if e.Plan() == nil || e.Shape() != shape || e.Graph() != sg {
		t.Fatal("engine shim does not expose its plan state")
	}
	viaEngine, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	viaPlan, err := e.Plan().Run(context.Background(), 1, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	sameRun(t, "engine vs plan", viaEngine, viaPlan)
}
