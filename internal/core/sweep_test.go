package core

import (
	"context"
	"testing"

	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// buildTestPlan partitions el and returns a Plan (the sweep entry point).
func buildTestPlan(t testing.TB, el *graph.EdgeList, shape ClusterShape, th int64, opts Options) *Plan {
	t.Helper()
	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(sg, shape, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// requireSweepMatchesRuns asserts the tentpole's contract: RunSweep's
// per-query levels, parents and iteration counts are bit-identical to K
// independent Plan.Run calls.
func requireSweepMatchesRuns(t *testing.T, p *Plan, sources []int64, ov Overrides) {
	t.Helper()
	ctx := context.Background()
	sweep, err := p.RunSweep(ctx, sources, ov)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != len(sources) {
		t.Fatalf("sweep returned %d results for %d sources", len(sweep), len(sources))
	}
	for q, src := range sources {
		single, err := p.Run(ctx, src, ov)
		if err != nil {
			t.Fatal(err)
		}
		got := sweep[q]
		if got.Source != src {
			t.Fatalf("query %d: source %d, want %d", q, got.Source, src)
		}
		if got.Iterations != single.Iterations {
			t.Fatalf("query %d (src %d): iterations %d, want %d", q, src, got.Iterations, single.Iterations)
		}
		if len(got.Levels) != len(single.Levels) {
			t.Fatalf("query %d: levels length %d, want %d", q, len(got.Levels), len(single.Levels))
		}
		for v := range single.Levels {
			if got.Levels[v] != single.Levels[v] {
				t.Fatalf("query %d (src %d): vertex %d level %d, want %d",
					q, src, v, got.Levels[v], single.Levels[v])
			}
		}
		if (got.Parents == nil) != (single.Parents == nil) {
			t.Fatalf("query %d: parents presence mismatch", q)
		}
		for v := range single.Parents {
			if got.Parents[v] != single.Parents[v] {
				t.Fatalf("query %d (src %d): vertex %d parent %d, want %d",
					q, src, v, got.Parents[v], single.Parents[v])
			}
		}
	}
}

func TestSweepBitIdenticalToRuns(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	deg := el.OutDegrees()
	sources := pickSources(deg, 6, 17)
	for _, shape := range []ClusterShape{{1, 1, 1}, {2, 1, 2}, {3, 1, 2}} {
		for name, mode := range map[string]wire.Mode{"off": wire.ModeOff, "adaptive": wire.ModeAdaptive} {
			opts := DefaultOptions()
			opts.CollectParents = true
			opts.Compression = mode
			p := buildTestPlan(t, el, shape, 8, opts)
			t.Run(shape.String()+"/"+name, func(t *testing.T) {
				requireSweepMatchesRuns(t, p, sources, Overrides{})
			})
		}
	}
}

func TestSweepDelegateAndNormalSources(t *testing.T) {
	// Star: hub 0 is a delegate at TH=5, leaves are normal — seed both kinds
	// in one sweep, plus a duplicate lane.
	el := gen.Star(40)
	opts := DefaultOptions()
	opts.CollectParents = true
	p := buildTestPlan(t, el, ClusterShape{2, 1, 2}, 5, opts)
	requireSweepMatchesRuns(t, p, []int64{0, 17, 3, 17}, Overrides{})
}

func TestSweepMultiWordWidths(t *testing.T) {
	// K=70 needs two mask words per record; duplicates pad the lane count.
	el := rmat.Generate(rmat.DefaultParams(8))
	deg := el.OutDegrees()
	base := pickSources(deg, 10, 23)
	sources := make([]int64, 0, 70)
	for len(sources) < 70 {
		sources = append(sources, base[len(sources)%len(base)])
	}
	opts := DefaultOptions()
	opts.CollectParents = true
	opts.Compression = wire.ModeAdaptive
	p := buildTestPlan(t, el, ClusterShape{2, 1, 2}, 8, opts)

	ctx := context.Background()
	sweep, err := p.RunSweep(ctx, sources, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the distinct sources against single runs; duplicate lanes
	// must match their first occurrence exactly.
	for _, src := range base {
		single, err := p.Run(ctx, src, Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		for q, s := range sources {
			if s != src {
				continue
			}
			if sweep[q].Iterations != single.Iterations {
				t.Fatalf("lane %d (src %d): iterations %d, want %d", q, src, sweep[q].Iterations, single.Iterations)
			}
			for v := range single.Levels {
				if sweep[q].Levels[v] != single.Levels[v] {
					t.Fatalf("lane %d (src %d): level mismatch at %d", q, src, v)
				}
				if sweep[q].Parents[v] != single.Parents[v] {
					t.Fatalf("lane %d (src %d): parent mismatch at %d", q, src, v)
				}
			}
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(8))
	sources := pickSources(el.OutDegrees(), 9, 31)
	opts := DefaultOptions()
	opts.Compression = wire.ModeAdaptive
	p := buildTestPlan(t, el, ClusterShape{2, 1, 2}, 8, opts)
	ctx := context.Background()
	a, err := p.RunSweep(ctx, sources, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.RunSweep(ctx, sources, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	for q := range a {
		if a[q].SimSeconds != b[q].SimSeconds ||
			a[q].Wire.CompressedBytes != b[q].Wire.CompressedBytes ||
			a[q].EdgesScanned != b[q].EdgesScanned {
			t.Fatalf("query %d: nondeterministic sweep: %+v vs %+v", q, a[q], b[q])
		}
	}
	// Wire-accounting coherence under adaptive compression: the shared
	// traversal moves real record bytes, and the codec is charged at least
	// the sender-side fixed-width equivalent (receive-side decode adds
	// more). Note RawBytes can sit *below* CompressedBytes on small or
	// delegate-heavy graphs — per-block headers dominate near-empty record
	// blocks — so only the codec ≥ raw ordering is invariant.
	var raw, sent, codec int64
	for q := range a {
		raw += a[q].Wire.RawBytes
		sent += a[q].Wire.CompressedBytes
		codec += a[q].Wire.CodecBytes
	}
	if raw <= 0 || sent <= 0 || codec < raw {
		t.Fatalf("sweep wire accounting: raw=%d sent=%d codec=%d (want raw>0, sent>0, codec>=raw)", raw, sent, codec)
	}
}

func TestSweepValidation(t *testing.T) {
	el := gen.Path(16)
	p := buildTestPlan(t, el, ClusterShape{1, 1, 1}, 100, DefaultOptions())
	ctx := context.Background()
	if _, err := p.RunSweep(ctx, nil, Overrides{}); err == nil {
		t.Fatal("accepted empty source list")
	}
	if _, err := p.RunSweep(ctx, []int64{16}, Overrides{}); err == nil {
		t.Fatal("accepted out-of-range source")
	}
	if _, err := p.RunSweep(ctx, []int64{-1}, Overrides{}); err == nil {
		t.Fatal("accepted negative source")
	}
	big := make([]int64, MaxSweepWidth+1)
	if _, err := p.RunSweep(ctx, big, Overrides{}); err == nil {
		t.Fatal("accepted over-wide sweep")
	}
}

func TestSweepCancellation(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(8))
	sources := pickSources(el.OutDegrees(), 4, 5)
	p := buildTestPlan(t, el, ClusterShape{2, 1, 2}, 8, DefaultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunSweep(ctx, sources, Overrides{}); err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
}

func TestSweepAmortizesWork(t *testing.T) {
	// The tentpole's point: K queries in one sweep scan far fewer structural
	// edges and move fewer per-query wire bytes than K independent runs.
	el := rmat.Generate(rmat.DefaultParams(10))
	sources := pickSources(el.OutDegrees(), 32, 77)
	opts := DefaultOptions()
	p := buildTestPlan(t, el, ClusterShape{2, 1, 2}, 8, opts)
	ctx := context.Background()
	sweep, err := p.RunSweep(ctx, sources, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	var sweepTime, singleTime float64
	for q, src := range sources {
		single, err := p.Run(ctx, src, Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		sweepTime += sweep[q].SimSeconds
		singleTime += single.SimSeconds
	}
	if sweepTime >= singleTime {
		t.Fatalf("sweep did not amortize: %g s vs %g s for %d queries",
			sweepTime, singleTime, len(sources))
	}
}
