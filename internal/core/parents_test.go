package core

import (
	"testing"

	"gcbfs/internal/g500"
	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/rmat"
)

// runWithParents executes a run with tree collection and validates the tree
// against the Graph500-style rules.
func runWithParents(t *testing.T, el *graph.EdgeList, shape ClusterShape, th int64, src int64, opts Options) {
	t.Helper()
	opts.CollectLevels = true
	opts.CollectParents = true
	e := buildEngine(t, el, shape, th, opts)
	res, err := e.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parents == nil {
		t.Fatal("no parents collected")
	}
	if err := g500.ValidateTree(el, src, res.Parents, res.Levels); err != nil {
		t.Fatalf("tree validation (shape %s, th %d, src %d): %v", shape, th, src, err)
	}
}

func TestParentsPath(t *testing.T) {
	el := gen.Path(20)
	runWithParents(t, el, ClusterShape{2, 1, 2}, 100, 0, DefaultOptions())
	runWithParents(t, el, ClusterShape{2, 1, 2}, 100, 10, DefaultOptions())
}

func TestParentsStarDelegate(t *testing.T) {
	el := gen.Star(30)
	// Hub is a delegate; tree from hub and from a leaf.
	runWithParents(t, el, ClusterShape{2, 1, 2}, 5, 0, DefaultOptions())
	runWithParents(t, el, ClusterShape{2, 1, 2}, 5, 13, DefaultOptions())
}

func TestParentsRMATAllShapes(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	sources := pickSources(el.OutDegrees(), 2, 17)
	for _, shape := range []ClusterShape{{1, 1, 1}, {1, 2, 2}, {3, 1, 2}} {
		for _, src := range sources {
			runWithParents(t, el, shape, 8, src, DefaultOptions())
			runWithParents(t, el, shape, 8, src, PlainBFSOptions())
		}
	}
}

func TestParentsThresholdExtremes(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(8))
	src := pickSources(el.OutDegrees(), 1, 3)[0]
	runWithParents(t, el, ClusterShape{2, 1, 2}, 0, src, DefaultOptions())
	runWithParents(t, el, ClusterShape{2, 1, 2}, 1<<40, src, DefaultOptions())
}

func TestParentsWebGraph(t *testing.T) {
	el := gen.WebGraph(gen.WebParams{Scale: 8, EdgeFactor: 8, NumChains: 3, ChainLength: 30, Seed: 5})
	src := pickSources(el.OutDegrees(), 1, 9)[0]
	runWithParents(t, el, ClusterShape{2, 2, 1}, 8, src, DefaultOptions())
}

func TestParentPairsReported(t *testing.T) {
	// With no delegates (TH=inf) all inter-GPU edges are nn: the
	// resolution round must replay them.
	el := rmat.Generate(rmat.DefaultParams(8))
	src := pickSources(el.OutDegrees(), 1, 2)[0]
	opts := DefaultOptions()
	opts.CollectParents = true
	e := buildEngine(t, el, ClusterShape{2, 1, 2}, 1<<40, opts)
	res, err := e.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.ParentPairs == 0 {
		t.Fatal("no parent-resolution pairs counted despite nn-only graph")
	}
	// Pairs are bounded by |Enn| (every remote nn edge replayed once).
	if res.ParentPairs > e.Graph().CountNN {
		t.Fatalf("parent pairs %d exceed |Enn| %d", res.ParentPairs, e.Graph().CountNN)
	}
}

func TestParentsOffByDefault(t *testing.T) {
	el := gen.Path(8)
	e := buildEngine(t, el, ClusterShape{1, 1, 2}, 10, DefaultOptions())
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parents != nil || res.ParentPairs != 0 {
		t.Fatal("parents collected without CollectParents")
	}
}

func TestForceTWBForDDSlowsSkewedGraphs(t *testing.T) {
	// RMAT's dd subgraph has wide degree spread; forcing TWB must cost
	// computation time versus merge-path (the §IV-A rationale), while
	// distances stay identical.
	el := rmat.Generate(rmat.DefaultParams(12))
	src := pickSources(el.OutDegrees(), 1, 4)[0]
	base := DefaultOptions()
	base.WorkAmplification = 1 << 12
	forced := base
	forced.ForceTWBForDD = true
	eBase := buildEngine(t, el, ClusterShape{2, 1, 2}, 4, base)
	eForced := buildEngine(t, el, ClusterShape{2, 1, 2}, 4, forced)
	rBase, err := eBase.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	rForced, err := eForced.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if rForced.Parts.Computation <= rBase.Parts.Computation {
		t.Fatalf("forcing TWB on dd did not slow computation: %g vs %g",
			rForced.Parts.Computation, rBase.Parts.Computation)
	}
	for v := range rBase.Levels {
		if rBase.Levels[v] != rForced.Levels[v] {
			t.Fatal("strategy ablation changed distances")
		}
	}
}
