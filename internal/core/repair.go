package core

// Delta BFS repair: given a prior query's exact outcome (levels over the OLD
// graph epoch) and the set of vertices an edge delta invalidated
// (delta.Affected), RunRepair re-derives the NEW epoch's BFS tree without a
// full recompute. The plan it runs on is the new epoch's — kernels see the
// mutated adjacency — while the prior levels seed a corrective wave:
//
//   - Preload: every still-valid vertex keeps its prior level (deletions
//     cannot raise it: its whole canonical parent chain survived, so a path
//     of the old length still exists); invalidated vertices reset to -1.
//
//   - Seeds: the only places the new tree can differ start at (a) still-valid
//     endpoints of inserted edges — the only valid vertices whose adjacency
//     gained an edge, hence the only origins of a level decrease — and (b)
//     still-valid neighbors of invalidated vertices, which re-derive the
//     invalidated region at its correct new levels. (a) comes from the caller
//     (delta.Affected); (b) is discovered here by a distributed probe over
//     the invalidated vertices' adjacency, with one packed exchange for
//     remote nn probes and one mask allreduce for delegate seeds.
//
//   - Wave: a level-synchronous forward traversal through the existing tuned
//     exchange stack (policy, wire codec, butterfly/all-pairs, radix apply).
//     Iterations ascend from the minimum seed level; seeds inject when the
//     wave reaches their level; the visit condition everywhere is strict
//     improvement (level == -1 || level > iter+1), so inserts can lower
//     still-valid vertices and invalidated ones re-derive at their exact new
//     level. A vertex set at iteration ℓ holds its final level: all later
//     offers are ≥ ℓ+2, so the monotone wave terminates and duplicates are
//     structurally impossible.
//
// The repaired levels equal a full BFS on the new epoch bit-for-bit, and
// because the canonical parent resolution (parents.go) is a pure function of
// levels, rerunning it afterwards yields the bit-identical tree too —
// repair_test.go asserts both across scales, rank counts, exchange
// strategies and insert/delete/mixed deltas.
//
// Timing: the probe charges its scan compute and one point-to-point round;
// every wave iteration charges exactly like a plain BFS iteration (same vec
// and sums layout as run.go), so repair-vs-recompute simulated seconds are
// directly comparable. The post-wave parent resolution stays excluded from
// simulated time, matching the paper's distance-only reporting.

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"slices"
	"sync"

	"gcbfs/internal/bitmask"
	"gcbfs/internal/faults"
	"gcbfs/internal/frontier"
	"gcbfs/internal/metrics"
	"gcbfs/internal/mpi"
	"gcbfs/internal/simgpu"
	"gcbfs/internal/wire"
)

// repairSeed is one corrective-seed schedule entry: a still-valid vertex
// (local normal id, or dense delegate id in the rank-level schedule) injected
// into the frontier when the wave reaches its level.
type repairSeed struct {
	level int32
	id    uint32
}

func cmpRepairSeed(a, b repairSeed) int {
	if c := cmp.Compare(a.level, b.level); c != 0 {
		return c
	}
	return cmp.Compare(a.id, b.id)
}

// probeTag is the probe exchange's message tag: above every hopTag (repair
// levels stay far below 2^23 iterations) and below the parent resolution's
// parentTagBase; the per-source-GPU offset stays under GPUsPerRank.
const probeTag = 1 << 29

// RunRepair executes a corrective traversal on a pooled Session: prior is
// the exact level array of an earlier query from the same source on the
// graph epoch this delta departed from, invalid marks the vertices whose
// prior level the delta voided, and seeds are the still-valid insert
// endpoints — both exactly as delta.Affected derives them. The result is
// bit-identical (levels, and parents when collected) to Plan.Run on this
// plan, at a fraction of the simulated cost for small deltas.
func (p *Plan) RunRepair(ctx context.Context, source int64, prior []int32, invalid []bool, seeds []int64, ov Overrides) (*metrics.RunResult, error) {
	opts, err := p.effectiveOptions(ov)
	if err != nil {
		return nil, err
	}
	n := p.sg.N
	if source < 0 || source >= n {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", source, n)
	}
	if int64(len(prior)) != n {
		return nil, fmt.Errorf("core: prior levels cover %d vertices, graph has %d", len(prior), n)
	}
	if int64(len(invalid)) != n {
		return nil, fmt.Errorf("core: invalid mask covers %d vertices, graph has %d", len(invalid), n)
	}
	if prior[source] != 0 {
		return nil, fmt.Errorf("core: prior levels are not rooted at source %d", source)
	}
	if invalid[source] {
		return nil, fmt.Errorf("core: source %d is invalidated (the root can never be orphaned)", source)
	}
	for _, v := range seeds {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("core: repair seed %d out of range [0,%d)", v, n)
		}
		if invalid[v] || prior[v] < 0 {
			return nil, fmt.Errorf("core: repair seed %d is not a still-valid vertex of the prior result", v)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := p.acquire(opts)
	defer p.release(s)
	return s.runRepair(ctx, source, prior, invalid, seeds)
}

// runRepair executes one corrective traversal on this (already configured and
// exclusive) session, mirroring Session.run's structure.
func (e *Session) runRepair(ctx context.Context, source int64, prior []int32, invalid []bool, seeds []int64) (*metrics.RunResult, error) {
	e.reset()

	prank := e.shape.Ranks()
	world := e.acquireWorld()
	rec := &recorder{}
	pol := e.newExchangePolicy()
	rec.exchange.Strategy = e.opts.Exchange.String()
	var wg sync.WaitGroup
	for r := 0; r < prank; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer containRank(world, rank)
			e.runRepairRank(ctx, rank, world.Rank(rank), rec, pol, source, prior, invalid, seeds)
		}(r)
	}
	wg.Wait()

	if err := world.Aborted(); err != nil {
		e.poisoned = true
		return nil, err
	}
	if rec.cancelled {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}

	res := &metrics.RunResult{
		Source:        source,
		Epoch:         e.epoch,
		Iterations:    len(rec.iterations),
		SimSeconds:    rec.simSeconds,
		TEPSEdges:     e.sg.M / 2,
		EdgesScanned:  rec.edgesScanned,
		DupsRemoved:   rec.dupsRemoved,
		Parts:         rec.parts,
		PerIteration:  rec.iterations,
		DelegateComms: rec.delegateComms,
		Wire:          rec.wire,
		Exchange:      rec.exchange,
	}
	res.Wire.Enabled = e.opts.Compression != wire.ModeOff
	res.Wire.PairRawBytes = e.parentPairRawBytes
	res.Wire.PairWireBytes = e.parentPairWireBytes
	if e.opts.CollectLevels {
		res.Levels = e.gatherLevels()
	}
	if e.opts.CollectParents {
		res.Parents = e.gatherParents()
		res.ParentPairs = e.parentExchangePairs
	}
	return res, nil
}

// repairPreload maps the prior outcome onto this epoch's layout: still-valid
// vertices keep their prior level (by global id, so a delegate-set shift
// between epochs lands every level in the right array), invalidated ones
// stay at reset's -1. Delegates' normal home slots stay -1 exactly as the
// plain BFS leaves them — a delegate's level lives only in the replicated
// delegateLevel array (its adjacency is dd/dn, so a level in the normal slot
// would claim a vertex the nn/nd machinery can never explain).
func (e *Session) repairPreload(myGPUs []*gpuState, prior []int32, invalid []bool) {
	sep := e.sg.Sep
	for _, gs := range myGPUs {
		pg := gs.pg
		for slot := int64(0); slot < pg.NumLocal; slot++ {
			v := e.cfg.GlobalID(uint32(slot), pg.Rank, pg.Slot)
			if !invalid[v] && !sep.IsDelegate(v) {
				gs.levels[slot] = prior[v]
			}
		}
		for di, v := range e.sg.Sep.DelegateGlobal {
			if !invalid[v] {
				gs.delegateLevel[di] = prior[v]
			}
		}
	}
}

// repairProbe discovers the still-valid neighbors of invalidated vertices —
// the seeds that re-derive the invalidated region — and routes the caller's
// insert seeds to their owners. Owned invalid normal rows scan on the owner
// GPU; invalid delegate rows scan sliced across every GPU; remote nn probe
// targets resolve through one packed exchange (the receiver checks its
// preloaded levels); delegate seeds merge through one mask allreduce, so
// every rank holds the identical replicated seed set. Returns the probe's
// local compute seconds (max over this rank's GPUs) and this rank's sent
// probe bytes (fixed-width id bytes, the accounting all-pairs uses with the
// codec off).
func (e *Session) repairProbe(rank int, comm *mpi.Comm, myGPUs []*gpuState, sc *rankScratch, prior []int32, invalid []bool, seeds []int64) (comp float64, bytes int64) {
	pgpu := e.shape.GPUsPerRank
	prank := e.shape.Ranks()
	p64 := int64(e.p)
	sep := e.sg.Sep
	sc.rankMask.Reset()
	for _, gs := range myGPUs {
		var edges, rows int64
		pg := gs.pg
		// Owned invalid normal vertices: their nn/nd rows name every neighbor
		// that might re-derive them. Invalid delegates are handled below
		// (their home slots have no nn/nd rows).
		for slot := int64(0); slot < pg.NumLocal; slot++ {
			v := e.cfg.GlobalID(uint32(slot), pg.Rank, pg.Slot)
			if !invalid[v] || sep.IsDelegate(v) {
				continue
			}
			rows++
			for _, nb := range pg.NN.Neighbors(slot) {
				edges++
				owner := e.cfg.OwnerGPU(nb)
				local := uint32(nb / p64)
				if owner == pg.GPU {
					if lvl := gs.levels[local]; lvl >= 0 {
						gs.repSeeds = append(gs.repSeeds, repairSeed{level: lvl, id: local})
					}
				} else {
					gs.bins.Add(owner, local)
				}
			}
			for _, dv := range pg.ND.Neighbors(slot) {
				edges++
				if gs.delegateLevel[dv] >= 0 {
					sc.rankMask.Set(int64(dv))
				}
			}
		}
		// Invalid delegates: every GPU scans its slice of their dd/dn rows.
		for di, v := range sep.DelegateGlobal {
			if !invalid[v] {
				continue
			}
			rows++
			di64 := int64(di)
			for _, dv := range pg.DD.Neighbors(di64) {
				edges++
				if gs.delegateLevel[dv] >= 0 {
					sc.rankMask.Set(int64(dv))
				}
			}
			for _, lv := range pg.DN.Neighbors(di64) {
				edges++
				if lvl := gs.levels[lv]; lvl >= 0 {
					gs.repSeeds = append(gs.repSeeds, repairSeed{level: lvl, id: lv})
				}
			}
		}
		if edges+rows > 0 {
			if c := e.charge(gs, simgpu.KernelCost{Edges: edges, Vertices: rows, Strategy: simgpu.TWBDynamic}); c > comp {
				comp = c
			}
		}
	}
	// Caller-provided insert seeds: delegates fold into the replicated mask
	// (every rank sets the identical bits), normals route to their owner GPU.
	for _, v := range seeds {
		if sep.IsDelegate(v) {
			sc.rankMask.Set(int64(sep.DelegateID[v]))
			continue
		}
		if g := e.cfg.OwnerGPU(v); g >= rank*pgpu && g < (rank+1)*pgpu {
			e.gpus[g].repSeeds = append(e.gpus[g].repSeeds,
				repairSeed{level: prior[v], id: e.cfg.LocalID(v)})
		}
	}

	// One packed exchange resolves the remote nn probes: the owner checks its
	// preloaded levels and keeps the still-valid targets as seeds.
	arrivals := sc.resetArrivals()
	for dst := 0; dst < prank; dst++ {
		if dst == rank {
			continue
		}
		for k, gs := range myGPUs {
			payload := gs.bins.PackRank(dst, pgpu)
			bytes += int64(len(payload)) - 4*int64(pgpu)
			comm.Isend(dst, probeTag+k, payload)
		}
	}
	// Intra-rank probe targets check directly (NVLink, not NIC).
	for _, src := range myGPUs {
		for s, gs := range myGPUs {
			for _, id := range src.bins.PerGPU[rank*pgpu+s] {
				if lvl := gs.levels[id]; lvl >= 0 {
					gs.repSeeds = append(gs.repSeeds, repairSeed{level: lvl, id: id})
				}
			}
		}
	}
	for src := 0; src < prank; src++ {
		if src == rank {
			continue
		}
		for k := 0; k < pgpu; k++ {
			buf := comm.Recv(src, probeTag+k)
			if err := frontier.UnpackRankInto(buf, arrivals); err != nil {
				panic(corruptErr("core: corrupt probe payload", err))
			}
		}
	}
	for s, ids := range arrivals {
		gs := myGPUs[s]
		for _, id := range ids {
			if lvl := gs.levels[id]; lvl >= 0 {
				gs.repSeeds = append(gs.repSeeds, repairSeed{level: lvl, id: id})
			}
		}
	}
	for _, gs := range myGPUs {
		gs.bins.Reset()
	}
	// Merge the delegate seed contributions; every rank keeps an identical
	// copy of the reduced set.
	comm.AllreduceOr(sc.rankMask.Words())
	if sc.seedMask == nil {
		sc.seedMask = bitmask.New(e.d)
	}
	sc.seedMask.CopyFrom(sc.rankMask)
	return comp, bytes
}

// runRepairRank is the per-rank corrective-wave loop. It mirrors runRank's
// BSP structure — policy decision, local kernels, delegate mask reduction,
// normal exchange, timing and sums assembly all use the identical layout —
// with three differences: the probe-and-seed prologue, the strict-improvement
// visit condition (repair kernels, repairApplyIDs, the filtered delegate
// commit), and the termination flag keeping the loop alive through pending
// seed levels.
func (e *Session) runRepairRank(ctx context.Context, rank int, comm *mpi.Comm, rec *recorder, pol *exchangePolicy, source int64, prior []int32, invalid []bool, seeds []int64) {
	pgpu := e.shape.GPUsPerRank
	prank := e.shape.Ranks()
	myGPUs := e.gpus[rank*pgpu : (rank+1)*pgpu]
	sc := e.scratch[rank]
	rankMask := sc.rankMask // fully overwritten by CopyFrom each iteration
	maskBytes := rankMask.ByteSize()
	rx := sc.rx.bind(e, rank, sc)
	cancelled := false

	for _, gs := range myGPUs {
		gs.repSeeds, gs.repCursor = gs.repSeeds[:0], 0
	}
	e.repairPreload(myGPUs, prior, invalid)
	probeComp, probeBytes := e.repairProbe(rank, comm, myGPUs, sc, prior, invalid, seeds)

	// Sorted, deduplicated injection schedules. The delegate schedule is
	// built from the replicated seed mask and levels, so it is identical on
	// every rank without further communication.
	for _, gs := range myGPUs {
		slices.SortFunc(gs.repSeeds, cmpRepairSeed)
		gs.repSeeds = slices.Compact(gs.repSeeds)
	}
	sc.dSeeds, sc.dCursor = sc.dSeeds[:0], 0
	dl := myGPUs[0].delegateLevel
	sc.seedMask.ForEach(func(di int64) {
		sc.dSeeds = append(sc.dSeeds, repairSeed{level: dl[di], id: uint32(di)})
	})
	slices.SortFunc(sc.dSeeds, cmpRepairSeed)

	// Global seed-level bounds (one min-allreduce carries both via negation)
	// and per-level global seed counts — the wave's iteration range and the
	// policy's frontier-size inputs.
	lo, hi := int64(math.MaxInt64), int64(-1)
	note := func(l int32) {
		if int64(l) < lo {
			lo = int64(l)
		}
		if int64(l) > hi {
			hi = int64(l)
		}
	}
	for _, gs := range myGPUs {
		for _, s := range gs.repSeeds {
			note(s.level)
		}
	}
	for _, s := range sc.dSeeds {
		note(s.level)
	}
	mm := append(sc.sums[:0], lo, -hi)
	sc.sums = mm
	comm.AllreduceMin(mm)
	lo, hi = mm[0], -mm[1]
	var nCounts, dCounts []int64
	if lo <= hi {
		nCounts = make([]int64, hi+1)
		dCounts = make([]int64, hi+1)
		for _, gs := range myGPUs {
			for _, s := range gs.repSeeds {
				nCounts[s.level]++
			}
		}
		comm.AllreduceSum(nCounts)
		for _, s := range sc.dSeeds {
			dCounts[s.level]++
		}
	}

	// Charge the probe round: scan compute plus one point-to-point exchange
	// over the max-reduced per-rank probe volume, through the same overlap
	// model as a BSP iteration.
	vec := append(sc.vec[:0], probeComp, float64(probeBytes))
	sc.vec = vec
	sc.fbits = maxFloatsAllreduce(comm, vec, sc.fbits)
	if rank == 0 {
		var probeNet float64
		if b := e.ampBytes(int64(vec[1])); b > 0 {
			probeNet = e.opts.Net.PointToPoint(b, e.effMessageBytes(b))
		}
		parts := metrics.Breakdown{Computation: vec[0], RemoteNormal: probeNet}
		rec.simSeconds += e.iterElapsed(parts)
		rec.parts.Add(parts)
	}

	if lo > hi {
		// No seeds anywhere: the prior levels already are the new epoch's
		// exact outcome (invalidated vertices, if any, are unreachable now).
		if e.opts.CollectParents {
			e.resolveParents(rank, comm, source)
		}
		return
	}

	inputNormals, inputDelegates := nCounts[lo], dCounts[lo]
	prevNormals, prevOriginated := int64(0), int64(0)
	fb := newPolicyFeedback()
	if e.opts.Warm != nil {
		fb.seed(*e.opts.Warm)
	}

	for iter := int32(lo); ; iter++ {
		// ---- Fault injection (chaos testing): see Session.runRank.
		if in := e.opts.Inject; in != nil {
			in.Crash(rank, int(iter), faults.SiteIter)
		}
		// ---- Seed injection: schedules advance with the wave; the guard
		// (level still equals the stored level) drops seeds the wave already
		// improved past — those entered the frontier at their better level.
		// Delegate levels are replicated, so the guard decides identically on
		// every GPU and the frontier masks stay globally consistent.
		for sc.dCursor < len(sc.dSeeds) && sc.dSeeds[sc.dCursor].level == iter {
			di := int64(sc.dSeeds[sc.dCursor].id)
			for _, gs := range myGPUs {
				if gs.delegateLevel[di] == iter {
					gs.dFront.Set(di)
				}
			}
			sc.dCursor++
		}
		for _, gs := range myGPUs {
			for gs.repCursor < len(gs.repSeeds) && gs.repSeeds[gs.repCursor].level == iter {
				s := gs.repSeeds[gs.repCursor]
				if gs.levels[s.id] == iter {
					gs.inFront = append(gs.inFront, s.id)
				}
				gs.repCursor++
			}
		}

		// ---- Exchange policy (identical decision on every rank).
		strategy, predicted := pol.chooseS(inputNormals, inputDelegates, prevNormals, prevOriginated, fb, &sc.pol)
		ex := rx.get(strategy)
		// ---- Local computation: forward repair kernels (no direction
		// optimization — the improvement wave has no backward variant).
		for _, gs := range myGPUs {
			gs.it = iterWork{}
			e.repairRunKernels(gs, iter)
		}
		dir0 := myGPUs[0]

		// ---- Delegate mask reduction, exactly as run.go; the commit filters
		// the reduced candidate mask by strict improvement. Delegate levels
		// are identical on every GPU, so the filtered frontier is too.
		rankMask.CopyFrom(myGPUs[0].newMask)
		for _, gs := range myGPUs[1:] {
			rankMask.Or(gs.newMask)
		}
		anyGlobal := comm.AllreduceBoolOr(rankMask.Any())
		maskExchanged := false
		var newDelegates int64
		if anyGlobal {
			comm.AllreduceOr(rankMask.Words())
			maskExchanged = true
			for gi, gs := range myGPUs {
				gs.dFront.Reset()
				var improved int64
				rankMask.ForEach(func(di int64) {
					if l := gs.delegateLevel[di]; l == -1 || l > iter+1 {
						gs.delegateLevel[di] = iter + 1
						gs.dFront.Set(di)
						improved++
					}
				})
				gs.newMask.Reset()
				if gi == 0 {
					newDelegates = improved
				}
			}
		} else {
			for _, gs := range myGPUs {
				gs.dFront.Reset()
				gs.newMask.Reset()
			}
		}

		// ---- Delegate-aware mask encoding (identical to run.go; the wire
		// ships the candidate mask, improvement filtering is receiver-side).
		effMaskBytes := maskBytes
		var maskCodecRaw int64
		if maskExchanged && e.opts.Compression != wire.ModeOff && e.d-1 <= int64(^uint32(0)) {
			ids := sc.maskIDs[:0]
			rankMask.ForEach(func(di int64) { ids = append(ids, uint32(di)) })
			sc.maskIDs = ids
			if enc := wire.EncodedMaskBytes(ids, e.opts.Compression); enc < maskBytes {
				effMaskBytes = enc
				maskCodecRaw = 4 * int64(len(ids))
			}
		}

		// ---- Normal-vertex exchange (§V-B), shared with the plain BFS.
		var dupsRemoved int64
		if e.opts.Uniquify {
			for _, gs := range myGPUs {
				n := gs.bins.UniquifyAll()
				gs.it.dupsRemoved += n
				dupsRemoved += n
				if c := gs.bins.Count(); c > 0 {
					gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
						Vertices: 2 * c, Strategy: simgpu.TWBDynamic,
					})
				}
			}
		}
		counts := ex.exchange(comm, myGPUs, iter)
		var intraBytes int64
		for _, src := range myGPUs {
			for s := 0; s < pgpu; s++ {
				dstGPU := rank*pgpu + s
				if dstGPU == src.pg.GPU {
					continue
				}
				ids := src.bins.PerGPU[dstGPU]
				intraBytes += 4 * int64(len(ids))
				repairApplyIDs(e.gpus[dstGPU], ids, iter+1)
			}
		}
		var applied int64
		for s, ids := range counts.arrivals {
			applied += int64(len(ids))
			sc.applySortedWith(myGPUs[s], ids, iter+1, repairApplyIDs)
		}
		sentBytes, rawSentBytes := counts.sent, counts.sentRaw
		if applied+intraBytes/4 > 0 {
			myGPUs[0].it.normalStream += e.charge(myGPUs[0], simgpu.KernelCost{
				Vertices: applied + intraBytes/4, Strategy: simgpu.TWBDynamic,
			})
		}
		for _, gs := range myGPUs {
			gs.bins.Reset()
		}

		// ---- Timing assembly (identical layout to run.go).
		var comp float64
		for _, gs := range myGPUs {
			if c := streamCombine(gs.it.delegateStream, gs.it.normalStream); c > comp {
				comp = c
			}
		}
		// Injected stall: timing skew only, results stay bit-identical.
		if in := e.opts.Inject; in != nil {
			comp += in.Stall(rank, int(iter), faults.SiteIter)
		}
		aSent, aRecv, aIntra := e.ampBytes(sentBytes), e.ampBytes(counts.recv), e.ampBytes(intraBytes)
		aMask := e.ampBytes(maskBytes)
		aMaskWire := e.ampBytes(effMaskBytes)
		hier := e.hierExchange()
		var localComm float64
		if maskExchanged {
			localComm += e.opts.Net.LocalReduce(aMask, pgpu)
			localComm += e.opts.Net.LocalBroadcast(aMask, pgpu)
		}
		if hier {
			localComm += e.opts.Net.Staging(aIntra)
		} else {
			if e.opts.LocalAll2All && aSent > 0 && pgpu > 1 {
				localComm += e.opts.Net.LocalExchange(aSent*int64(pgpu-1)/int64(pgpu), pgpu)
			}
			localComm += e.opts.Net.Staging(aSent) + e.opts.Net.Staging(aRecv) + e.opts.Net.Staging(aIntra)
		}
		var remoteDelegate float64
		if maskExchanged {
			remoteDelegate = e.opts.Net.Allreduce(aMaskWire, prank, e.opts.BlockingReduce)
		}
		maskCodecSecs := e.opts.GPU.CodecTime(e.ampBytes(maskCodecRaw))
		nh := len(counts.hopBytes)
		vec := sc.vec[:0]
		vec = append(vec, comp, localComm, remoteDelegate, maskCodecSecs)
		for _, hb := range counts.hopBytes {
			vec = append(vec, float64(e.ampBytes(hb)))
		}
		for _, cr := range counts.hopCodecRaw {
			vec = append(vec, float64(e.ampBytes(cr)))
		}
		for _, rb := range counts.hopRecvBytes {
			vec = append(vec, float64(e.ampBytes(rb)))
		}
		vec = append(vec, float64(e.ampBytes(counts.preCodecRaw)))
		var aggBytes int64
		if hier {
			aggBytes = e.ampBytes(aggregationBytesFor(&e.opts, e.shape, counts.sentRaw-counts.forwarded))
		}
		vec = append(vec, float64(aggBytes))
		vec = append(vec, float64(e.ampBytes(counts.sentRaw-counts.forwarded)))
		sc.vec = vec
		sc.fbits = maxFloatsAllreduce(comm, vec, sc.fbits)
		redWire := grownInt64(sc.redWire, nh)
		sc.redWire = redWire
		redCodec := grownInt64(sc.redCodec, nh)
		sc.redCodec = redCodec
		redRecv := grownInt64(sc.redRecv, nh)
		sc.redRecv = redRecv
		for i := 0; i < nh; i++ {
			redWire[i] = int64(vec[4+i])
			redCodec[i] = int64(vec[4+nh+i])
			redRecv[i] = int64(vec[4+2*nh+i])
		}
		redPre := int64(vec[4+3*nh])
		redMaxOriginated := vec[6+3*nh]
		var maskWire int64
		if maskExchanged {
			maskWire = aMaskWire
		}
		rt := ex.remoteTime(remoteVolumes{
			hopBytes:    redWire,
			hopCodecRaw: redCodec,
			hopRecv:     redRecv,
			preCodecRaw: redPre,
			aggBytes:    int64(vec[5+3*nh]),
			maskWire:    maskWire,
			maskSecs:    vec[2],
		})
		remoteNormal := rt.seconds + vec[3]
		maxMsg := rt.maxMsg
		parts := metrics.Breakdown{
			Computation:    vec[0],
			LocalComm:      vec[1],
			RemoteNormal:   remoteNormal,
			RemoteDelegate: rt.maskSecs,
		}
		elapsed := e.iterElapsed(parts)

		// ---- Global sums: work stats, termination flag (kept alive through
		// pending seed levels) and the context observation.
		var nextNormals, edges int64
		for _, gs := range myGPUs {
			nextNormals += int64(len(gs.outFront))
			edges += gs.it.edgesScanned
		}
		flag := int64(0)
		if nextNormals > 0 || newDelegates > 0 || int64(iter)+1 <= hi {
			flag = 1
		}
		ctxDead := int64(0)
		if ctx.Err() != nil {
			ctxDead = 1
		}
		sums := append(sc.sums[:0], edges, sentBytes, nextNormals, dupsRemoved, flag,
			rawSentBytes, counts.scheme[wire.SchemeRaw], counts.scheme[wire.SchemeDelta], counts.scheme[wire.SchemeBitmap],
			counts.messages, counts.forwarded, counts.memoHits, counts.codecRaw+maskCodecRaw, ctxDead)
		sc.sums = sums
		comm.AllreduceSum(sums)

		if rank == 0 {
			rec.iterations = append(rec.iterations, metrics.IterationStats{
				Iteration:         int(iter),
				FrontierNormals:   inputNormals,
				FrontierDelegates: inputDelegates,
				DirDD:             dir0.dirDD,
				DirDN:             dir0.dirDN,
				DirND:             dir0.dirND,
				Exchange:          strategy.String(),
				EdgesScanned:      sums[0],
				BytesNormal:       sums[1],
				BytesNormalRaw:    sums[5],
				BytesDelegate:     boolToBytes(maskExchanged, effMaskBytes),
				Elapsed:           elapsed,
				PredictedRemote:   predicted,
				CodecHidden:       rt.hiddenCodec,
				CodecExposed:      rt.codecSeconds - rt.hiddenCodec + vec[3],
				NVLinkHidden:      rt.hiddenNVLink,
				NVLinkExposed:     rt.nvlinkSeconds - rt.hiddenNVLink,
				Parts:             parts,
			})
			rec.edgesScanned += sums[0]
			rec.dupsRemoved += sums[3]
			rec.simSeconds += elapsed
			rec.parts.Add(parts)
			rec.wire.CompressedBytes += sums[1]
			rec.wire.RawBytes += sums[5]
			rec.wire.SchemeRaw += sums[6]
			rec.wire.SchemeDelta += sums[7]
			rec.wire.SchemeBitmap += sums[8]
			rec.exchange.Messages += sums[9]
			rec.exchange.ForwardedBytes += sums[10]
			rec.wire.MemoHits += sums[11]
			rec.wire.CodecBytes += sums[12]
			rec.wire.CodecSeconds += rt.codecSeconds + vec[3]
			rec.exchange.HiddenCodecSeconds += rt.hiddenCodec
			rec.exchange.PipelineStalls += rt.stalls
			rec.exchange.NVLinkSeconds += rt.nvlinkSeconds
			rec.exchange.HiddenNVLinkSeconds += rt.hiddenNVLink
			rec.exchange.MaskFoldSavedSeconds += vec[2] - rt.maskSecs
			if maskExchanged && e.opts.Compression != wire.ModeOff {
				rec.wire.MaskRawBytes += maskBytes
				rec.wire.MaskWireBytes += effMaskBytes
			}
			rec.exchange.PredictedSeconds += predicted
			if strategy == ExchangeButterfly {
				rec.exchange.ButterflyIterations++
			} else {
				rec.exchange.AllPairsIterations++
			}
			if hr := ex.rounds(); hr > rec.exchange.HopsPerIteration {
				rec.exchange.HopsPerIteration = hr
			}
			if maxMsg > rec.exchange.MaxMessageBytes {
				rec.exchange.MaxMessageBytes = maxMsg
			}
			if maskExchanged {
				rec.delegateComms++
			}
		}
		prevNormals, prevOriginated = inputNormals, sums[5]-sums[10]
		inputNormals, inputDelegates = sums[2], newDelegates
		// Seeds injecting at the next level are part of its known input
		// frontier — fold their globally reduced counts into the policy's
		// volume signal.
		if next := int64(iter) + 1; next <= hi {
			inputNormals += nCounts[next]
			inputDelegates += dCounts[next]
		}
		skewMax, skewMean, wireRatio := 0.0, 0.0, 0.0
		if originated := sums[5] - sums[10]; originated >= int64(prank)*skewGateRawBytes {
			skewMax = redMaxOriginated
			skewMean = float64(e.ampBytes(originated)) / float64(prank)
			wireRatio = float64(sums[1]) / float64(sums[5])
		}
		fb.observe(strategy, predicted/fb.calib[strategy], rt.seconds, skewMax, skewMean, wireRatio)

		for _, gs := range myGPUs {
			gs.inFront, gs.outFront = gs.outFront, gs.inFront[:0]
		}
		if sums[13] > 0 {
			cancelled = true
			if rank == 0 {
				rec.cancelled = true
			}
			break
		}
		if sums[4] == 0 {
			break
		}
	}

	if rank == 0 {
		if rec.exchange.AllPairsIterations > 0 {
			rec.exchange.CalibrationAllPairs = fb.calib[ExchangeAllPairs]
		}
		if rec.exchange.ButterflyIterations > 0 {
			rec.exchange.CalibrationButterfly = fb.calib[ExchangeButterfly]
		}
		rec.exchange.SkewEWMA = fb.skew
		rec.exchange.WireRatioEWMA = fb.wireRatio
	}

	if e.opts.CollectParents && !cancelled {
		e.resolveParents(rank, comm, source)
	}
}

// repairDiscover sets a local normal vertex's improved (or re-derived) level
// and queues it for the next wave front. Unlike discover it keeps no
// nd-source bookkeeping — the repair wave never switches direction.
func (gs *gpuState) repairDiscover(local uint32, depth int32) {
	gs.levels[local] = depth
	gs.outFront = append(gs.outFront, local)
}

// repairApplyIDs is applyIDs under the strict-improvement condition: a
// received id claims level depth, and the owner accepts exactly when that
// strictly beats (or first sets) its current level. Values set by the wave
// are final — every later offer is deeper — so re-visits are impossible.
func repairApplyIDs(gs *gpuState, ids []uint32, depth int32) {
	for _, id := range ids {
		if l := gs.levels[id]; l == -1 || l > depth {
			gs.repairDiscover(id, depth)
		}
	}
}

// repairRunKernels executes one wave iteration's local computation: the
// shared previsit (queues and workloads from the frontier masks) followed by
// the four forward repair kernels. No direction decision — the improvement
// wave has no backward formulation, so the paper's DO machinery stays off.
func (e *Session) repairRunKernels(gs *gpuState, iter int32) {
	pv := e.previsit(gs)
	e.repairKernelDD(gs, pv, iter)
	e.repairKernelND(gs, pv, iter)
	e.repairKernelDN(gs, pv, iter)
	e.repairKernelNN(gs, pv)
}

// repairKernelDD: delegate→delegate edges propose improvements into the
// candidate mask; the post-reduction commit applies the strict-improvement
// filter against the replicated delegate levels.
func (e *Session) repairKernelDD(gs *gpuState, pv previsitOut, iter int32) {
	var edges int64
	strategy := simgpu.MergePath
	if e.opts.ForceTWBForDD {
		strategy = simgpu.TWBDynamic
	}
	for _, u := range pv.qDD {
		for _, dv := range gs.pg.DD.Neighbors(u) {
			edges++
			if l := gs.delegateLevel[dv]; l == -1 || l > iter+1 {
				gs.newMask.Set(int64(dv))
			}
		}
	}
	gs.it.edgesScanned += edges
	gs.it.delegateStream += e.charge(gs, simgpu.KernelCost{
		Edges: edges, Vertices: int64(len(pv.qDD)), Strategy: strategy,
		Skew: rowSkew(pv.maxDD, pv.fvDD, int64(len(pv.qDD))),
	})
}

// repairKernelND: normal→delegate edges propose improvements into the
// candidate mask.
func (e *Session) repairKernelND(gs *gpuState, pv previsitOut, iter int32) {
	var edges int64
	for _, u := range gs.inFront {
		for _, dv := range gs.pg.ND.Neighbors(int64(u)) {
			edges++
			if l := gs.delegateLevel[dv]; l == -1 || l > iter+1 {
				gs.newMask.Set(int64(dv))
			}
		}
	}
	gs.it.edgesScanned += edges
	gs.it.delegateStream += e.charge(gs, simgpu.KernelCost{
		Edges: edges, Vertices: int64(len(gs.inFront)), Strategy: simgpu.TWBDynamic,
		Skew: rowSkew(pv.maxND, pv.fvND, int64(len(gs.inFront))),
	})
}

// repairKernelDN: delegate→normal edges improve owned normal vertices
// directly.
func (e *Session) repairKernelDN(gs *gpuState, pv previsitOut, iter int32) {
	var edges int64
	for _, u := range pv.qDN {
		for _, lv := range gs.pg.DN.Neighbors(u) {
			edges++
			if l := gs.levels[lv]; l == -1 || l > iter+1 {
				gs.repairDiscover(lv, iter+1)
			}
		}
	}
	gs.it.edgesScanned += edges
	gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
		Edges: edges, Vertices: int64(len(pv.qDN)), Strategy: simgpu.TWBDynamic,
		Skew: rowSkew(pv.maxDN, pv.fvDN, int64(len(pv.qDN))),
	})
}

// repairKernelNN: normal→normal edges improve same-GPU destinations directly
// and bin every remote destination — like the plain kernel, the sender cannot
// see remote levels, so the receiver applies the improvement condition
// (repairApplyIDs).
func (e *Session) repairKernelNN(gs *gpuState, pv previsitOut) {
	var edges, binned int64
	p64 := int64(e.p)
	self := gs.pg.GPU
	for _, u := range gs.inFront {
		for _, v := range gs.pg.NN.Neighbors(int64(u)) {
			edges++
			owner := e.cfg.OwnerGPU(v)
			local := uint32(v / p64)
			if owner == self {
				if l := gs.levels[local]; l == -1 || l > gs.levels[u]+1 {
					gs.repairDiscover(local, gs.levels[u]+1)
				}
			} else {
				gs.bins.Add(owner, local)
				binned++
			}
		}
	}
	gs.it.edgesScanned += edges
	skew := rowSkew(pv.maxNN, pv.fvNN, int64(len(gs.inFront)))
	gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
		Edges: edges, Vertices: int64(len(gs.inFront)), Strategy: simgpu.TWBDynamic, Skew: skew,
	})
	if binned > 0 {
		gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
			Vertices: binned, Strategy: simgpu.TWBDynamic,
		})
	}
}
