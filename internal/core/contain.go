package core

// Fault containment: the boundary every per-rank goroutine runs under, and
// the helpers that classify what it recovers.
//
// A corrupt payload (organic or injected) surfaces as a panic deep in a rank
// goroutine — the decode sits under several layers of exchange machinery with
// no error return path, exactly like a CUDA kernel fault on the real machine.
// The containment boundary recovers the panic, classifies it, and poisons the
// session's World (mpi.World.Abort) so every sibling rank blocked in a
// collective or receive unwinds within the same BSP iteration. The main
// goroutine then observes World.Aborted, marks the Session poisoned (release
// drops it instead of recycling it) and returns the typed error — never a
// partial result.
//
// Classification is deliberately narrow: only errors wrapping wire.ErrCorrupt
// (payload corruption the codecs detected) or faults.ErrInjected (manufactured
// by the chaos machinery) are contained. Anything else — an index out of
// range, a violated invariant — is a genuine bug and re-panics unchanged.

import (
	"errors"
	"fmt"

	"gcbfs/internal/faults"
	"gcbfs/internal/mpi"
	"gcbfs/internal/wire"
)

// tagSite recovers the (iteration, injection site) a message tag encodes, so
// payload faults key on the same coordinates as boundary faults. The tag
// spaces are disjoint by construction: parent resolution at parentTagBase
// (1<<30) and above, repair probes at probeTag (1<<29), and everything below
// is the iteration-keyed hop/fragment space (hopTag, fragTag).
func tagSite(tag int) (int, string) {
	switch {
	case tag >= parentTagBase:
		return tag - parentTagBase, faults.SiteParents
	case tag >= probeTag:
		return tag - probeTag, faults.SiteProbe
	default:
		return tag / 64, faults.SiteExchange
	}
}

// armWorldAs is armWorld with the exchange-space site renamed — the sweep's
// record exchange reuses the hop-tag space but is a distinct injection site.
func armWorldAs(w *mpi.World, in *faults.Injector, exchangeSite string) {
	if in == nil {
		w.SetSendHook(nil)
		return
	}
	w.SetSendHook(func(src, dst, tag int, data []byte) []byte {
		iter, site := tagSite(tag)
		if site == faults.SiteExchange {
			site = exchangeSite
		}
		return in.Payload(src, iter, site, data)
	})
}

// corruptErr wraps a decoder error for the containment panic, guaranteeing
// wire.ErrCorrupt is in the chain even when the error came from a plain
// (non-codec) unpack path.
func corruptErr(context string, err error) error {
	if errors.Is(err, wire.ErrCorrupt) {
		return fmt.Errorf("%s: %w", context, err)
	}
	return fmt.Errorf("%s: %v: %w", context, err, wire.ErrCorrupt)
}

// faultError classifies a recovered panic value: it returns the error when
// the value is a contained fault (corrupt payload or injected failure), nil
// for anything else.
func faultError(v any) error {
	err, ok := v.(error)
	if !ok {
		return nil
	}
	if errors.Is(err, wire.ErrCorrupt) || errors.Is(err, faults.ErrInjected) {
		return err
	}
	return nil
}

// containRank is the recover boundary deferred by every per-rank goroutine.
// A contained fault poisons the world, aborting every sibling rank; the
// secondary abort panics those siblings throw while unwinding are swallowed
// (the first fault already carries the error); everything else re-panics.
func containRank(world *mpi.World, rank int) {
	v := recover()
	if v == nil {
		return
	}
	if _, ok := mpi.AbortError(v); ok {
		return
	}
	if err := faultError(v); err != nil {
		world.Abort(fmt.Errorf("core: rank %d: %w", rank, err))
		return
	}
	panic(v)
}
