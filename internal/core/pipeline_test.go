package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// TestPipelinedButterflyEquivalence is the property test of the pipelined
// exchange: for rank counts {3, 5, 6, 7, 12, 16} (remainder shapes and pure
// hypercubes) across scales and compression modes, the pipelined butterfly
// is bit-identical to all-pairs AND to the sequential butterfly on levels
// and parents — pipelining changes when codec work is charged, never what
// the traversal computes — and with a codec active it hides real time.
func TestPipelinedButterflyEquivalence(t *testing.T) {
	shapes := []ClusterShape{
		{Nodes: 3, RanksPerNode: 1, GPUsPerRank: 1}, // 3 ranks, q=2
		{Nodes: 5, RanksPerNode: 1, GPUsPerRank: 1}, // 5 ranks, q=4
		{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 2}, // 6 ranks, q=4
		{Nodes: 7, RanksPerNode: 1, GPUsPerRank: 1}, // 7 ranks, q=4 (max remainder)
		{Nodes: 6, RanksPerNode: 2, GPUsPerRank: 1}, // 12 ranks, q=8
		{Nodes: 8, RanksPerNode: 2, GPUsPerRank: 1}, // 16 ranks, pure hypercube
	}
	scales := []int{10, 12}
	if !testing.Short() {
		scales = append(scales, 14)
	}
	modes := []wire.Mode{wire.ModeOff, wire.ModeAdaptive}

	for _, scale := range scales {
		el := rmat.Generate(rmat.DefaultParams(scale))
		th := partition.SuggestThreshold(el.OutDegrees(), el.N/8)
		src := pickSources(el.OutDegrees(), 1, 31)[0]
		for _, shape := range shapes {
			for _, mode := range modes {
				label := fmt.Sprintf("scale=%d shape=%s mode=%v", scale, shape, mode)
				opts := DefaultOptions()
				opts.Compression = mode
				opts.CollectParents = true
				opts.WorkAmplification = 1 << 8
				ap := opts
				ap.Exchange = ExchangeAllPairs
				seq := opts
				seq.Exchange = ExchangeButterfly
				seq.PipelineHops = false
				pipe := opts
				pipe.Exchange = ExchangeButterfly
				pipe.PipelineHops = true
				ra := runExchange(t, buildEngine(t, el, shape, th, ap), src)
				rs := runExchange(t, buildEngine(t, el, shape, th, seq), src)
				rp := runExchange(t, buildEngine(t, el, shape, th, pipe), src)
				requireIdentical(t, label+" seq vs allpairs", ra, rs)
				requireIdentical(t, label+" pipe vs seq", rs, rp)

				if rs.Exchange.HiddenCodecSeconds != 0 || rs.Exchange.PipelineStalls != 0 {
					t.Fatalf("%s: sequential hops hid %g s / %d stalls",
						label, rs.Exchange.HiddenCodecSeconds, rs.Exchange.PipelineStalls)
				}
				if rp.SimSeconds > rs.SimSeconds+1e-12 {
					t.Fatalf("%s: pipelined %g s above sequential %g s", label, rp.SimSeconds, rs.SimSeconds)
				}
				switch mode {
				case wire.ModeOff:
					// No codec stages to hide.
					if rp.Exchange.HiddenCodecSeconds != 0 {
						t.Fatalf("%s: hid %g s with the codec off", label, rp.Exchange.HiddenCodecSeconds)
					}
					if shape.GPUsPerRank == 1 {
						// No NVLink stages either: the schedules are identical.
						if math.Abs(rp.SimSeconds-rs.SimSeconds) > 1e-12 {
							t.Fatalf("%s: codec-off pipeline changed time: %g vs %g",
								label, rp.SimSeconds, rs.SimSeconds)
						}
					} else if rp.Exchange.HiddenNVLinkSeconds <= 0 {
						// Hierarchical shapes still carry NVLink stages the
						// pipeline hides even with the codec off.
						t.Fatalf("%s: pipelined hierarchical run hid no NVLink time", label)
					}
				default:
					if rp.Exchange.HiddenCodecSeconds <= 0 {
						t.Fatalf("%s: pipelined run hid no codec time", label)
					}
					if rp.SimSeconds >= rs.SimSeconds {
						t.Fatalf("%s: pipelined %g s not strictly below sequential %g s",
							label, rp.SimSeconds, rs.SimSeconds)
					}
				}
			}
		}
	}
}

// TestPipelineTimingInvariants pins the accounting identities of one
// sequential/pipelined pair: the two runs do identical codec work; the
// pipelined run's remote-normal is smaller by exactly the hidden time; the
// hidden time never exceeds the total codec time; and the per-iteration
// hidden/exposed split sums to each iteration's codec total.
func TestPipelineTimingInvariants(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(12))
	th := partition.SuggestThreshold(el.OutDegrees(), el.N/8)
	src := pickSources(el.OutDegrees(), 1, 17)[0]
	for _, shape := range []ClusterShape{
		{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 1}, // 8 ranks
		{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 1}, // 6 ranks: cleanup hops
	} {
		opts := DefaultOptions()
		opts.Compression = wire.ModeAdaptive
		opts.Exchange = ExchangeButterfly
		opts.WorkAmplification = 1 << 8
		seqOpts := opts
		seqOpts.PipelineHops = false
		rs := runExchange(t, buildEngine(t, el, shape, th, seqOpts), src)
		rp := runExchange(t, buildEngine(t, el, shape, th, opts), src)

		hidden := rp.Exchange.HiddenCodecSeconds
		if hidden <= 0 {
			t.Fatalf("shape %s: no codec time hidden", shape)
		}
		if hidden > rp.Wire.CodecSeconds+1e-12 {
			t.Fatalf("shape %s: hidden %g s above total codec %g s — overlap created time",
				shape, hidden, rp.Wire.CodecSeconds)
		}
		if math.Abs(rp.Wire.CodecSeconds-rs.Wire.CodecSeconds) > 1e-12 {
			t.Fatalf("shape %s: pipelining changed total codec work: %g vs %g s",
				shape, rp.Wire.CodecSeconds, rs.Wire.CodecSeconds)
		}
		// The pipelined schedule reclaims exactly the hidden time from the
		// remote-normal component, iteration by iteration.
		if diff := rs.Parts.RemoteNormal - rp.Parts.RemoteNormal; math.Abs(diff-hidden) > 1e-12 {
			t.Fatalf("shape %s: remote-normal cut %g s != hidden %g s", shape, diff, hidden)
		}
		for i, itp := range rp.PerIteration {
			its := rs.PerIteration[i]
			if itp.CodecHidden < 0 || itp.CodecExposed < 0 {
				t.Fatalf("shape %s it=%d: negative codec split %g/%g",
					shape, i, itp.CodecHidden, itp.CodecExposed)
			}
			if math.Abs((itp.CodecHidden+itp.CodecExposed)-(its.CodecHidden+its.CodecExposed)) > 1e-12 {
				t.Fatalf("shape %s it=%d: codec totals diverged: %g vs %g", shape, i,
					itp.CodecHidden+itp.CodecExposed, its.CodecHidden+its.CodecExposed)
			}
			if its.CodecHidden != 0 {
				t.Fatalf("shape %s it=%d: sequential iteration hid %g s", shape, i, its.CodecHidden)
			}
		}
	}
}

// TestPipelineOverrides: the per-query override flips pipelining without
// touching the plan, and calibration factors surface only for strategies
// that ran.
func TestPipelineOverrides(t *testing.T) {
	p := buildPlanT(t, 12, ClusterShape{Nodes: 4, RanksPerNode: 1, GPUsPerRank: 2}, func() Options {
		o := DefaultOptions()
		o.Compression = wire.ModeAdaptive
		o.Exchange = ExchangeButterfly
		o.WorkAmplification = 1 << 8
		return o
	}(), true)
	off := false
	rSeq, err := p.Run(context.Background(), 2, Overrides{PipelineHops: &off})
	if err != nil {
		t.Fatal(err)
	}
	rPipe, err := p.Run(context.Background(), 2, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if rSeq.Exchange.HiddenCodecSeconds != 0 {
		t.Fatalf("override off still hid %g s", rSeq.Exchange.HiddenCodecSeconds)
	}
	if rPipe.Exchange.HiddenCodecSeconds <= 0 {
		t.Fatal("base plan (pipelining on) hid nothing")
	}
	if rPipe.Exchange.CalibrationButterfly == 0 || rPipe.Exchange.CalibrationAllPairs != 0 {
		t.Fatalf("calibration factors %g/%g — want butterfly-only feedback",
			rPipe.Exchange.CalibrationAllPairs, rPipe.Exchange.CalibrationButterfly)
	}
	for v := range rSeq.Levels {
		if rSeq.Levels[v] != rPipe.Levels[v] {
			t.Fatalf("vertex %d: level %d (sequential) vs %d (pipelined)",
				v, rSeq.Levels[v], rPipe.Levels[v])
		}
	}
}
