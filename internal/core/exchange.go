package core

// This file implements the inter-rank normal-vertex exchange (§V-B) as a
// strategy behind a small interface, keeping run.go's BSP loop thin.
//
// AllPairs is the paper's pattern: every rank sends one message per
// destination rank per iteration — p−1 sends whose size shrinks as ranks
// grow, exactly the sub-2 MB plateau regime §VI-A1 identifies as the
// scalability ceiling.
//
// Butterfly is the ButterFly BFS pattern (Green 2021) generalized to
// arbitrary rank counts Bruck-style. Let q be the largest power of two ≤ p
// and r = p − q the remainder. A power-of-two run (r = 0) is the plain
// log2(p)-hop hypercube: at hop k a rank exchanges with partner rank XOR
// 2^k, forwarding everything it holds — its own bins plus payloads received
// on earlier hops — that is destined for the partner's half. Ids reach
// their destination by having their rank bits corrected lowest-first, so
// each hop carries up to p/2 destinations' aggregated payload in one
// message: fewer, larger messages, re-encoded through the wire codec per
// hop so the adaptive selector sees the denser aggregated blocks.
//
// When r > 0, two cleanup hops fold the remainder ranks into the hypercube:
// a pre hop where each remainder rank i (q ≤ i < p) ships everything it
// holds to its proxy rank i−q, then the log2(q) hypercube among ranks
// 0..q−1 routing by the folded destination (dst < q ? dst : dst−q), then a
// post hop where each proxy x < r delivers the payload accumulated for rank
// x+q. Sections carry the true destination rank throughout, so folding two
// destinations onto one hypercube coordinate never mixes their payloads.
//
// Both strategies are two-level (hierarchical) by default when a rank holds
// more than one GPU: the rank's GPUs aggregate their per-destination bins
// over NVLink (mergeForRank — the paper's L staging generalized) into ONE
// merged message per destination, and the NVLink copies (aggregation, send/
// recv staging) ride the exchange schedule as a third pipeline resource
// next to the wire and the codec (simnet.PipelinedExchange). The NVLink
// tier never enters remote-normal time: remote-normal stays the wire+codec
// schedule (comparable across flat, hierarchical and the PR trajectory),
// and the tier's critical-path marginal — whatever the hop pipeline could
// not hide — is charged to LocalComm, where intra-rank staging has always
// lived. The opt-in flat mode (Options.FlatExchange) is the ablation
// baseline: the same merged per-slot payloads leave as GPUsPerRank per-slot
// fragment messages — message count grows by exactly the aggregation factor
// — and the NVLink staging is charged serially in LocalComm, the
// pre-hierarchy model.
//
// All strategies and both shapes deliver the identical per-slot id multiset
// each iteration, and run.go applies remote arrivals in canonical ascending
// order, so levels, parents and every work counter are bit-identical across
// strategies — and across any per-iteration mix of them (the hybrid
// policy, see policy.go) — and across flat vs hierarchical, by
// construction. Only message pattern, byte volume and the simulated
// remote-normal time differ.

import (
	"fmt"
	"math/bits"

	"gcbfs/internal/frontier"
	"gcbfs/internal/mpi"
	"gcbfs/internal/simnet"
	"gcbfs/internal/wire"
)

// Exchange selects the inter-rank normal-vertex exchange topology.
type Exchange int

const (
	// ExchangeAllPairs sends one message per destination rank per iteration
	// (the paper's §V-B pattern).
	ExchangeAllPairs Exchange = iota
	// ExchangeButterfly runs hypercube hops with per-hop payload aggregation
	// and re-encoding; non-power-of-two rank counts add a pre/post cleanup
	// hop pair that folds the remainder ranks into the nearest power-of-two
	// hypercube (Bruck-style), so every rank count gets the log(p) pattern.
	ExchangeButterfly
	// ExchangeHybrid picks all-pairs or butterfly per BSP iteration from the
	// globally known frontier volume through the policy cost model — the way
	// direction optimization picks push vs pull (see policy.go).
	ExchangeHybrid
)

func (x Exchange) String() string {
	switch x {
	case ExchangeAllPairs:
		return "allpairs"
	case ExchangeButterfly:
		return "butterfly"
	case ExchangeHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("exchange(%d)", int(x))
}

// ParseExchange converts a CLI/Config spelling into an Exchange.
func ParseExchange(s string) (Exchange, error) {
	switch s {
	case "", "allpairs", "all-pairs":
		return ExchangeAllPairs, nil
	case "butterfly":
		return ExchangeButterfly, nil
	case "hybrid":
		return ExchangeHybrid, nil
	}
	return ExchangeAllPairs, fmt.Errorf("core: unknown exchange strategy %q", s)
}

// exchangeCounts is one rank's accounting for one iteration's exchange.
type exchangeCounts struct {
	sent      int64 // bytes counted as sent (codec framing included when active)
	sentRaw   int64 // fixed-width 4·id equivalent of every id sent (forwards included)
	recv      int64 // bytes counted as received (for the staging model)
	forwarded int64 // fixed-width equivalent of ids relayed for other ranks
	messages  int64 // point-to-point messages sent by this rank
	memoHits  int64
	// codecRaw is the fixed-width equivalent of every id this rank pushed
	// through the wire codec's encode AND decode kernels (zero with the
	// codec off — the paper's fixed-width packing is a plain copy already
	// charged as staging). The butterfly re-encodes per hop, so relayed ids
	// count once per hop on each relaying rank — exactly the log(p)× codec
	// work the timing model must see.
	codecRaw int64
	scheme   [wire.NumSchemes]int64
	// hopBytes feeds the timing model: per-hop sent volume (one entry for
	// all-pairs; log2(q), plus two cleanup hops when p is not a power of
	// two, for the butterfly). Length is identical on every rank within an
	// iteration so the vectors max-reduce element-wise.
	hopBytes []int64
	// hopCodecRaw splits codecRaw into the per-hop compute stages the
	// pipeline timing model overlaps against the transfers: entry k is the
	// fixed-width equivalent of hop k's decode plus the re-encode feeding
	// hop k+1 (all-pairs lumps its single round's encode+decode into one
	// entry). preCodecRaw is the first hop's encode, which precedes all
	// communication. preCodecRaw + sum(hopCodecRaw) == codecRaw, and the
	// vectors max-reduce element-wise alongside hopBytes.
	hopCodecRaw []int64
	preCodecRaw int64
	// hopRecvBytes mirrors the recv counter per hop: the bytes this rank
	// received in round k, the volume the hierarchical exchange stages over
	// NVLink after each arrival. Same length and reduction convention as
	// hopBytes.
	hopRecvBytes []int64
	// arrivals collects the remote ids received for each local GPU slot;
	// run.go applies them in canonical sorted order.
	arrivals [][]uint32
}

// remoteVolumes carries one iteration's globally max-reduced, amplified
// inputs to the remote-normal timing model. Every field is identical on all
// ranks (max-reduced vectors or values derived from globally known state),
// so every rank computes the identical remoteTiming.
type remoteVolumes struct {
	hopBytes    []int64 // per-hop sent wire volume
	hopCodecRaw []int64 // per-hop codec compute stages (fixed-width bytes)
	hopRecv     []int64 // per-hop received wire volume (NVLink staging input)
	preCodecRaw int64   // first hop's encode, preceding all communication
	// aggBytes is the hierarchical intra-rank aggregation's NVLink volume
	// (aggregationBytesFor, amplified and max-reduced); zero when flat.
	aggBytes int64
	// maskWire/maskSecs describe the delegate-mask allreduce of the same
	// iteration: its wire bytes (zero when no mask was exchanged) and its
	// serial seconds (vec[2]). The pipelined hierarchical butterfly may fold
	// the chunked reduction into its hop schedule for less.
	maskWire int64
	maskSecs float64
}

// remoteTiming is one iteration's remote-normal accounting derived from the
// globally max-reduced per-hop vectors. Every field is deterministic: all
// ranks compute the identical values from the identical reduced inputs.
type remoteTiming struct {
	// seconds is the remote-normal time: the wire rounds plus the exchange
	// codec compute that stayed exposed (all of it for all-pairs and the
	// sequential butterfly; only the unhidden remainder when hops are
	// pipelined). The delegate-mask codec is charged separately by run.go.
	seconds float64
	// maxMsg is the largest per-message size the timing model saw.
	maxMsg int64
	// codecSeconds is the exchange's total codec compute, hidden or not.
	codecSeconds float64
	// hiddenCodec is the codec compute the hop pipeline hid under concurrent
	// transfers; stalls counts pipeline steps where a compute or NVLink stage
	// outlasted the transfer it overlapped. Both zero unless hops are
	// pipelined.
	hiddenCodec float64
	stalls      int64
	// nvlinkSeconds is the hierarchical exchange's NVLink tier (aggregation
	// plus staging copies), hidden or not; nvlinkExposed is the tier's
	// critical-path marginal — how much longer the schedule ran for carrying
	// it — which run.go charges to LocalComm (the pre-hierarchy home of all
	// staging time), keeping seconds a pure wire+codec quantity; hiddenNVLink
	// is the remainder the pipeline absorbed. All three zero when flat — the
	// staging is then charged serially in LocalComm by run.go directly.
	nvlinkSeconds float64
	nvlinkExposed float64
	hiddenNVLink  float64
	// maskSecs is the effective delegate-mask allreduce time: the serial
	// remoteVolumes.maskSecs unless the pipelined hierarchical butterfly
	// folded the chunked reduction into its hop schedule for less (never
	// more — the fold only applies when it wins).
	maskSecs float64
}

// exchanger is one rank's exchange strategy instance. Instances hold
// per-rank scratch (pending payloads, scheme memory) and live for one run;
// under the hybrid policy both strategies' instances coexist, each with its
// own wire.Selector, so scheme memory is effectively keyed by
// (strategy, dst, slot) and per-iteration switching never poisons the other
// strategy's memory.
type exchanger interface {
	// exchange encodes and sends this iteration's outgoing bins, receives
	// the counterpart payloads, and returns the accounting plus arrivals.
	exchange(comm *mpi.Comm, myGPUs []*gpuState, iter int32) exchangeCounts
	// rounds is the number of sequential communication rounds per
	// iteration — the length of every exchangeCounts.hopBytes.
	rounds() int
	// remoteTime converts one iteration's globally max-reduced volumes into
	// the remote-normal timing. Deterministic: every rank computes the
	// identical result.
	remoteTime(in remoteVolumes) remoteTiming
}

// rankExchangers lazily constructs and caches one rank's strategy instances
// so the per-iteration policy decision can dispatch without rebuilding
// scratch or losing scheme memory. The instances live in the rank's scratch
// and persist across pooled queries; bind re-arms them for a fresh query.
type rankExchangers struct {
	e    *Session
	rank int
	sc   *rankScratch
	ap   *allPairsExchange
	bf   *butterflyExchange
}

// bind points the cached strategy instances at this query's session and
// resets their per-query state — scheme memory and pending relay headers —
// so a recycled exchanger encodes exactly like a fresh one (per-query wire
// bytes stay bit-identical to the unpooled behavior).
func (rx *rankExchangers) bind(e *Session, rank int, sc *rankScratch) *rankExchangers {
	rx.e, rx.rank, rx.sc = e, rank, sc
	if rx.ap != nil {
		rx.ap.e = e
		rx.ap.sel.Reset()
	}
	if rx.bf != nil {
		rx.bf.e = e
		rx.bf.sel.Reset()
		for i := range rx.bf.pending {
			rx.bf.pending[i] = rx.bf.pending[i][:0]
			rx.bf.pendingSorted[i] = rx.bf.pendingSorted[i][:0]
		}
	}
	return rx
}

func (rx *rankExchangers) get(strategy Exchange) exchanger {
	switch strategy {
	case ExchangeButterfly:
		if rx.bf == nil {
			prank := rx.e.shape.Ranks()
			q, rem, nhops := hypercubeGeometry(prank)
			rx.bf = &butterflyExchange{
				e:             rx.e,
				rank:          rx.rank,
				sc:            rx.sc,
				q:             q,
				rem:           rem,
				nhops:         nhops,
				sel:           wire.NewSelectorSized(prank * rx.e.shape.GPUsPerRank),
				pending:       make([][][]uint32, prank),
				pendingSorted: make([][]bool, prank),
			}
		}
		return rx.bf
	default:
		if rx.ap == nil {
			rx.ap = &allPairsExchange{
				e:    rx.e,
				rank: rx.rank,
				sc:   rx.sc,
				sel:  wire.NewSelectorSized(rx.e.shape.Ranks() * rx.e.shape.GPUsPerRank),
			}
		}
		return rx.ap
	}
}

// hypercubeGeometry derives the generalized butterfly's shape for a rank
// count: the largest power-of-two hypercube q that fits, the remainder
// ranks folded in by the cleanup hops, and the log2(q) hypercube hop count.
// The exchange (butterflyExchange) and the policy cost model
// (exchangePolicy) both build on this single definition, so a predicted
// hop profile always matches what the exchange executes.
func hypercubeGeometry(prank int) (q, rem, nhops int) {
	q = 1 << (bits.Len(uint(prank)) - 1)
	return q, prank - q, bits.Len(uint(q)) - 1
}

// hopTag derives a distinct MPI tag per (iteration, hop); strategies never
// mix within one iteration (the policy decision is global), and the parent
// resolution round sits at 1<<30, far outside both.
func hopTag(iter int32, hop int) int {
	return int(iter)*64 + hop
}

// fragTag derives a distinct MPI tag per (iteration, hop, slot) for the flat
// exchange's per-slot fragment messages; slot counts are far below 64, so
// fragment tags never collide with each other or with merged hop tags.
func fragTag(iter int32, hop, slot int) int {
	return hopTag(iter, hop)*64 + slot
}

// mergeForRank gathers all of this rank's bins destined for dst's GPUs into
// one id list per destination slot (written into the caller's merged/sorted
// headers, len pgpu each), merging every source GPU of this rank. When every
// contributing bin is sorted (uniquify leaves them so), the lists are
// merge-sorted instead of concatenated, which keeps the pre-sorted codec
// hint alive through aggregation.
//
// Allocation contract: a single-contributor slot references the bin
// directly — zero copy. That is safe because the encoders only read the
// slots, the butterfly's relaying appends write past the bin's length into
// spare capacity the bin never reads, and bins.Reset() (run.go, after the
// exchange) leaves contents untouched. Multi-contributor slots draw their
// merged output from the per-iteration arena. Callers may retain and grow
// the slot slices for the current iteration only.
func (e *Session) mergeForRank(myGPUs []*gpuState, dst int, sc *rankScratch, merged [][]uint32, sorted []bool) {
	pgpu := e.shape.GPUsPerRank
	lists := sc.lists
	for s := 0; s < pgpu; s++ {
		dstGPU := dst*pgpu + s
		lists = lists[:0]
		allSorted := true
		for _, gs := range myGPUs {
			if bin := gs.bins.PerGPU[dstGPU]; len(bin) > 0 {
				lists = append(lists, bin)
				allSorted = allSorted && gs.bins.IsSorted(dstGPU)
			}
		}
		merged[s] = nil
		switch {
		case len(lists) == 0:
			sorted[s] = true
		case len(lists) == 1:
			merged[s], sorted[s] = lists[0], allSorted
		case allSorted:
			merged[s] = frontier.MergeSortedArena(&sc.arena, lists)
			sorted[s] = true
		default:
			var total int
			for _, l := range lists {
				total += len(l)
			}
			out := sc.arena.Alloc(total)
			for _, l := range lists {
				out = append(out, l...)
			}
			merged[s], sorted[s] = out, false
		}
	}
	sc.lists = lists
}

// ---- all-pairs ----

type allPairsExchange struct {
	e    *Session
	rank int
	sc   *rankScratch
	sel  *wire.Selector
	// msgBufs is the per-destination reusable encode buffer: a message is
	// always received (and its ids copied out) before the iteration's
	// terminating collective, which every rank passes before this buffer's
	// next rewrite. The flat mode indexes it dst·pgpu+slot, one buffer per
	// fragment.
	msgBufs [][]byte
	// fragSlots/fragSorted are the flat mode's per-fragment slot view: the
	// merged pgpu-row with every slot but one blanked, so fragment s carries
	// exactly slot s's payload under the unchanged rank-message framing.
	fragSlots  [][]uint32
	fragSorted []bool
}

func (x *allPairsExchange) rounds() int { return 1 }

func (x *allPairsExchange) exchange(comm *mpi.Comm, myGPUs []*gpuState, iter int32) exchangeCounts {
	e, rank, sc := x.e, x.rank, x.sc
	pgpu := e.shape.GPUsPerRank
	prank := e.shape.Ranks()
	mode := e.opts.Compression
	sc.arena.Reset()
	var c exchangeCounts
	c.arrivals = sc.resetArrivals()

	// Remote sends: one packed message per destination rank carrying every
	// source GPU's bins for that rank's slots (the hierarchical default and
	// the only shape at one GPU per rank), or — flat mode — pgpu per-slot
	// fragment messages per destination carrying the same payloads.
	// EncodeSlots applies the shared accounting convention: with compression
	// off, id bytes only (the paper's 4·|Enn|; the per-slot count headers
	// are wire framing); with a codec active, the encoded message — framing,
	// checksums and all — is what crosses the NIC and what the timing model
	// sees. The merge headers are reused per destination: the encode
	// consumes them before the next merge overwrites.
	frag := e.opts.FlatExchange && pgpu > 1
	need := prank
	if frag {
		need = prank * pgpu
		if len(x.fragSlots) < pgpu {
			x.fragSlots = make([][]uint32, pgpu)
			x.fragSorted = make([]bool, pgpu)
		}
	}
	if len(x.msgBufs) < need {
		x.msgBufs = append(x.msgBufs, make([][]byte, need-len(x.msgBufs))...)
	}
	for dst := 0; dst < prank; dst++ {
		if dst == rank {
			continue
		}
		e.mergeForRank(myGPUs, dst, sc, sc.apSlots, sc.apSorted)
		if !frag {
			payload, st := x.sel.AppendSlots(x.msgBufs[dst][:0], dst, sc.apSlots, sc.apSorted, mode)
			x.msgBufs[dst] = payload
			c.sent += st.EncodedBytes
			c.sentRaw += st.RawBytes
			if mode != wire.ModeOff {
				c.codecRaw += st.RawBytes
			}
			for i, n := range st.Selected {
				c.scheme[i] += n
			}
			c.memoHits += st.MemoHits
			c.messages++
			comm.Isend(dst, hopTag(iter, 0), payload)
			continue
		}
		for s := 0; s < pgpu; s++ {
			for j := range x.fragSlots {
				x.fragSlots[j], x.fragSorted[j] = nil, true
			}
			x.fragSlots[s], x.fragSorted[s] = sc.apSlots[s], sc.apSorted[s]
			payload, st := x.sel.AppendSlots(x.msgBufs[dst*pgpu+s][:0], dst, x.fragSlots, x.fragSorted, mode)
			x.msgBufs[dst*pgpu+s] = payload
			c.sent += st.EncodedBytes
			c.sentRaw += st.RawBytes
			if mode != wire.ModeOff {
				c.codecRaw += st.RawBytes
			}
			for i, n := range st.Selected {
				c.scheme[i] += n
			}
			c.memoHits += st.MemoHits
			c.messages++
			comm.Isend(dst, fragTag(iter, 0, s), payload)
		}
	}
	// Receives, decoded zero-copy straight into the reusable arrival bins
	// (each block's count header pre-sizes the grow). Flat mode receives the
	// pgpu fragments per source in slot order, so the per-slot arrival order
	// matches the merged message's exactly.
	recvOne := func(src, tag int) {
		buf := comm.Recv(src, tag)
		var err error
		if mode == wire.ModeOff {
			c.recv += int64(len(buf)) - 4*int64(pgpu)
			err = frontier.UnpackRankInto(buf, c.arrivals)
		} else {
			c.recv += int64(len(buf))
			before := countIDs(c.arrivals)
			err = wire.DecodeRankInto(buf, c.arrivals)
			c.codecRaw += 4 * (countIDs(c.arrivals) - before)
		}
		if err != nil {
			panic(corruptErr("core: corrupt exchange payload", err))
		}
	}
	for src := 0; src < prank; src++ {
		if src == rank {
			continue
		}
		if !frag {
			recvOne(src, hopTag(iter, 0))
			continue
		}
		for s := 0; s < pgpu; s++ {
			recvOne(src, fragTag(iter, 0, s))
		}
	}
	c.hopBytes = append(sc.hopBytes[:0], c.sent)
	sc.hopBytes = c.hopBytes
	// One communication round: all codec work (encode and decode) is a
	// single compute stage with no earlier transfer to hide under.
	c.hopCodecRaw = append(sc.hopCodecRaw[:0], c.codecRaw)
	sc.hopCodecRaw = c.hopCodecRaw
	c.hopRecvBytes = append(sc.hopRecvBytes[:0], c.recv)
	sc.hopRecvBytes = c.hopRecvBytes
	return c
}

func (x *allPairsExchange) remoteTime(in remoteVolumes) remoteTiming {
	b := in.hopBytes[0]
	msg := x.e.effMessageBytes(b)
	codec := x.e.opts.GPU.CodecTime(in.hopCodecRaw[0] + in.preCodecRaw)
	rt := remoteTiming{
		seconds:      x.e.opts.Net.PointToPoint(b, msg) + codec,
		maxMsg:       msg,
		codecSeconds: codec,
		maskSecs:     in.maskSecs,
	}
	// Hierarchical: the intra-rank aggregation joins the send/recv staging
	// copies as the NVLink tier. All-pairs is a single round, so nothing
	// hides it — the whole tier is exposed, and run.go charges it to
	// LocalComm (where the flat mode's staging lives), keeping seconds the
	// wire+codec remote-normal; only the butterfly's hop pipeline can hide.
	if x.e.hierExchange() {
		net := x.e.opts.Net
		nvl := net.LocalExchange(in.aggBytes, x.e.shape.GPUsPerRank) +
			net.Staging(b) + net.Staging(in.hopRecv[0])
		rt.nvlinkSeconds = nvl
		rt.nvlinkExposed = nvl
	}
	return rt
}

// ---- butterfly ----

type butterflyExchange struct {
	e     *Session
	rank  int
	sc    *rankScratch
	q     int // largest power of two ≤ rank count
	rem   int // remainder ranks folded in by the cleanup hops
	nhops int // log2(q) hypercube hops
	sel   *wire.Selector
	// pending holds, per final destination rank, the per-slot ids this rank
	// currently carries for it (own bins plus relayed payloads); nil when
	// nothing is pending.
	pending       [][][]uint32
	pendingSorted [][]bool
	// encRaw/decRaw are per-iteration scratch: fixed-width bytes pushed
	// through the codec's encode (resp. decode) kernels at each hop, from
	// which exchange() assembles the pipeline's compute stages.
	encRaw, decRaw []int64
	// msgBufs is the per-hop reusable encode buffer: a hop message is
	// always received (and its ids arena-copied) within the same
	// iteration, before the terminating collective that every rank passes
	// before the buffer's next rewrite. The flat mode indexes it
	// hop·pgpu+slot, one buffer per fragment.
	msgBufs [][]byte
	// fragSecs/fragRows are the flat mode's per-fragment section views: for
	// fragment s, every outgoing section is re-expressed with all slots but
	// s blanked (one pgpu-row per section drawn from fragRows), so a hop
	// leaves as pgpu per-slot messages carrying the identical id multiset.
	fragSecs []wire.Section
	fragRows [][][]uint32
	fragSort [][]bool
}

// rounds counts the sequential communication rounds per iteration: the
// hypercube hops plus, on non-power-of-two rank counts, the pre and post
// cleanup hops.
func (x *butterflyExchange) rounds() int {
	if x.rem > 0 {
		return x.nhops + 2
	}
	return x.nhops
}

// fold maps a destination rank onto its hypercube coordinate: remainder
// ranks ride their proxy's coordinate until the post cleanup hop.
func (x *butterflyExchange) fold(dst int) int {
	if dst >= x.q {
		return dst - x.q
	}
	return dst
}

func (x *butterflyExchange) exchange(comm *mpi.Comm, myGPUs []*gpuState, iter int32) exchangeCounts {
	e, rank, sc := x.e, x.rank, x.sc
	pgpu := e.shape.GPUsPerRank
	prank := e.shape.Ranks()
	mode := e.opts.Compression
	sc.arena.Reset()
	sc.wireSecs.Reset()
	var c exchangeCounts
	c.arrivals = sc.resetArrivals()
	c.hopBytes = grownInt64(sc.hopBytes, x.rounds())
	sc.hopBytes = c.hopBytes
	c.hopRecvBytes = grownInt64(sc.hopRecvBytes, x.rounds())
	sc.hopRecvBytes = c.hopRecvBytes
	x.encRaw = grownInt64(x.encRaw, x.rounds())
	x.decRaw = grownInt64(x.decRaw, x.rounds())
	bufs := x.rounds()
	if e.opts.FlatExchange {
		bufs *= pgpu
	}
	if len(x.msgBufs) < bufs {
		x.msgBufs = append(x.msgBufs, make([][]byte, bufs-len(x.msgBufs))...)
	}

	// Stage this iteration's own bins. ownRaw is the fixed-width equivalent
	// of originated traffic; everything sent beyond it was forwarded. Each
	// destination keeps its own pgpu-row of the flat staging headers — the
	// butterfly retains every destination's slots across its hops, so the
	// rows cannot be shared the way all-pairs reuses one.
	var ownRaw int64
	for dst := 0; dst < prank; dst++ {
		x.pending[dst], x.pendingSorted[dst] = nil, nil
		if dst == rank {
			continue
		}
		slots := sc.stageSlots[dst*pgpu : (dst+1)*pgpu]
		sorted := sc.stageSorted[dst*pgpu : (dst+1)*pgpu]
		e.mergeForRank(myGPUs, dst, sc, slots, sorted)
		n := countIDs(slots)
		if n == 0 {
			continue
		}
		x.pending[dst], x.pendingSorted[dst] = slots, sorted
		ownRaw += 4 * n
	}

	hop := 0
	// Pre cleanup hop: each remainder rank ships everything it holds to its
	// proxy (a one-directional send, unlike the pairwise hypercube hops);
	// ranks without a remainder partner sit the round out with a zero
	// hopBytes entry so the vectors still max-reduce element-wise.
	if x.rem > 0 {
		if rank >= x.q {
			secs := sc.secs[:0]
			for dst := 0; dst < prank; dst++ {
				if x.pending[dst] == nil {
					continue
				}
				secs = append(secs, wire.Section{
					Rank:   dst,
					Slots:  x.pending[dst],
					Sorted: x.pendingSorted[dst],
				})
				x.pending[dst], x.pendingSorted[dst] = nil, nil
			}
			sc.secs = secs
			c.hopBytes[hop] = x.send(comm, rank-x.q, iter, hop, secs, mode, &c)
		} else if rank < x.rem {
			x.receive(comm, rank+x.q, iter, hop, mode, &c)
		}
		hop++
	}

	// Hypercube hops among ranks < q, routing by folded destination.
	for h := 0; h < x.nhops; h++ {
		if rank >= x.q {
			hop++
			continue // remainder ranks idle inside the hypercube
		}
		bit := 1 << h
		partner := rank ^ bit
		// Forward everything destined for the partner's half: ids travel by
		// having their folded destination-rank bits corrected lowest-first.
		secs := sc.secs[:0]
		for dst := 0; dst < prank; dst++ {
			if (x.fold(dst)^rank)&bit == 0 || x.pending[dst] == nil {
				continue
			}
			secs = append(secs, wire.Section{
				Rank:   dst,
				Slots:  x.pending[dst],
				Sorted: x.pendingSorted[dst],
			})
			x.pending[dst], x.pendingSorted[dst] = nil, nil
		}
		sc.secs = secs
		c.hopBytes[hop] = x.send(comm, partner, iter, hop, secs, mode, &c)
		x.receive(comm, partner, iter, hop, mode, &c)
		hop++
	}

	// Post cleanup hop: each proxy delivers what accumulated for its
	// remainder partner.
	if x.rem > 0 {
		if rank < x.rem {
			partner := rank + x.q
			secs := sc.secs[:0]
			if x.pending[partner] != nil {
				secs = append(secs, wire.Section{
					Rank:   partner,
					Slots:  x.pending[partner],
					Sorted: x.pendingSorted[partner],
				})
				x.pending[partner], x.pendingSorted[partner] = nil, nil
			}
			sc.secs = secs
			c.hopBytes[hop] = x.send(comm, partner, iter, hop, secs, mode, &c)
		} else if rank >= x.q {
			x.receive(comm, rank-x.q, iter, hop, mode, &c)
		}
	}

	// Every relayed id must have reached its destination by the last hop.
	for dst, p := range x.pending {
		if dst != rank && p != nil && countIDs(p) > 0 {
			panic(fmt.Sprintf("core: butterfly left %d ids undelivered for rank %d", countIDs(p), dst))
		}
		x.pending[dst], x.pendingSorted[dst] = nil, nil
	}
	c.forwarded = c.sentRaw - ownRaw

	// Assemble the pipeline's compute stages from the per-hop codec scratch:
	// hop k's stage is its decode plus the re-encode feeding hop k+1, and
	// the first hop's encode precedes all communication. The stages sum to
	// codecRaw exactly, so sequential charging is unchanged in total.
	rounds := x.rounds()
	c.hopCodecRaw = grownInt64(sc.hopCodecRaw, rounds)
	sc.hopCodecRaw = c.hopCodecRaw
	if rounds > 0 {
		c.preCodecRaw = x.encRaw[0]
		for k := 0; k < rounds; k++ {
			c.hopCodecRaw[k] = x.decRaw[k]
			if k+1 < rounds {
				c.hopCodecRaw[k] += x.encRaw[k+1]
			}
		}
	}
	return c
}

// send encodes sections into one hop message for dst (or, flat mode, pgpu
// per-slot fragment messages carrying the identical id multiset), accounts
// it, and returns the hop's sent bytes. Empty hops still send (the
// partner's Recv is unconditional) and still count as messages — they cross
// the NIC.
func (x *butterflyExchange) send(comm *mpi.Comm, dst int, iter int32, hop int, secs []wire.Section, mode wire.Mode, c *exchangeCounts) int64 {
	pgpu := x.e.shape.GPUsPerRank
	if !x.e.opts.FlatExchange || pgpu <= 1 {
		payload, st := x.sel.AppendSections(x.msgBufs[hop][:0], secs, pgpu, mode)
		x.msgBufs[hop] = payload
		c.sent += st.EncodedBytes
		c.sentRaw += st.RawBytes
		if mode != wire.ModeOff {
			c.codecRaw += st.RawBytes
			x.encRaw[hop] += st.RawBytes
		}
		for i, n := range st.Selected {
			c.scheme[i] += n
		}
		c.memoHits += st.MemoHits
		c.messages++
		comm.Isend(dst, hopTag(iter, hop), payload)
		return st.EncodedBytes
	}
	// Flat: re-express the hop as pgpu per-slot fragment messages. The
	// fragment rows are rebuilt per slot — AppendSections copies the payload
	// before returning, so one row set serves all fragments.
	for len(x.fragRows) < len(secs) {
		x.fragRows = append(x.fragRows, make([][]uint32, pgpu))
		x.fragSort = append(x.fragSort, make([]bool, pgpu))
	}
	if cap(x.fragSecs) < len(secs) {
		x.fragSecs = make([]wire.Section, len(secs))
	}
	var sent int64
	for s := 0; s < pgpu; s++ {
		fsecs := x.fragSecs[:len(secs)]
		for i, sec := range secs {
			row, srow := x.fragRows[i], x.fragSort[i]
			for j := 0; j < pgpu; j++ {
				row[j], srow[j] = nil, true
			}
			row[s], srow[s] = sec.Slots[s], sec.Sorted[s]
			fsecs[i] = wire.Section{Rank: sec.Rank, Slots: row, Sorted: srow}
		}
		payload, st := x.sel.AppendSections(x.msgBufs[hop*pgpu+s][:0], fsecs, pgpu, mode)
		x.msgBufs[hop*pgpu+s] = payload
		c.sent += st.EncodedBytes
		sent += st.EncodedBytes
		c.sentRaw += st.RawBytes
		if mode != wire.ModeOff {
			c.codecRaw += st.RawBytes
			x.encRaw[hop] += st.RawBytes
		}
		for i, n := range st.Selected {
			c.scheme[i] += n
		}
		c.memoHits += st.MemoHits
		c.messages++
		comm.Isend(dst, fragTag(iter, hop, s), payload)
	}
	return sent
}

// receive decodes one hop's arrival from src — one merged message, or pgpu
// fragments in slot order under the flat mode — delivering sections
// addressed to this rank as arrivals and folding the rest into pending.
func (x *butterflyExchange) receive(comm *mpi.Comm, src int, iter int32, hop int, mode wire.Mode, c *exchangeCounts) {
	pgpu := x.e.shape.GPUsPerRank
	if x.e.opts.FlatExchange && pgpu > 1 {
		for s := 0; s < pgpu; s++ {
			x.receiveOne(comm, src, fragTag(iter, hop, s), hop, mode, c)
		}
		return
	}
	x.receiveOne(comm, src, hopTag(iter, hop), hop, mode, c)
}

func (x *butterflyExchange) receiveOne(comm *mpi.Comm, src, tag, hop int, mode wire.Mode, c *exchangeCounts) {
	pgpu := x.e.shape.GPUsPerRank
	prank := x.e.shape.Ranks()
	buf := comm.Recv(src, tag)
	secsIn, err := wire.DecodeSectionsScratch(buf, pgpu, prank, mode, &x.sc.arena, &x.sc.wireSecs)
	if err != nil {
		panic(corruptErr(fmt.Sprintf("core: corrupt butterfly payload (hop %d)", hop), err))
	}
	if mode == wire.ModeOff {
		for _, sec := range secsIn {
			raw := 4 * countIDs(sec.Slots)
			c.recv += raw
			c.hopRecvBytes[hop] += raw
		}
	} else {
		c.recv += int64(len(buf))
		c.hopRecvBytes[hop] += int64(len(buf))
		for _, sec := range secsIn {
			raw := 4 * countIDs(sec.Slots)
			c.codecRaw += raw
			x.decRaw[hop] += raw
		}
	}
	for _, sec := range secsIn {
		if sec.Rank == x.rank {
			for s, ids := range sec.Slots {
				c.arrivals[s] = append(c.arrivals[s], ids...)
			}
			continue
		}
		x.mergePending(sec)
	}
}

// mergePending folds a relayed section into the pending payload for its
// destination, merge-sorting slot lists when both sides are sorted so the
// pre-sorted hint survives relaying.
func (x *butterflyExchange) mergePending(sec wire.Section) {
	dst := sec.Rank
	if x.pending[dst] == nil {
		x.pending[dst], x.pendingSorted[dst] = sec.Slots, sec.Sorted
		return
	}
	cur, curSorted := x.pending[dst], x.pendingSorted[dst]
	for s, inc := range sec.Slots {
		switch {
		case len(inc) == 0:
			// Nothing to merge.
		case len(cur[s]) == 0:
			cur[s], curSorted[s] = inc, sec.Sorted[s]
		case curSorted[s] && sec.Sorted[s]:
			x.sc.pair[0], x.sc.pair[1] = cur[s], inc
			cur[s] = frontier.MergeSortedArena(&x.sc.arena, x.sc.pair[:])
			x.sc.pair[0], x.sc.pair[1] = nil, nil
		default:
			cur[s] = append(cur[s], inc...)
			curSorted[s] = false
		}
	}
}

// remoteTime charges the butterfly's hops. With Options.PipelineHops set
// (the default) the per-hop codec stages overlap the transfers through the
// simnet pipeline model — hop k's send hides hop k−1's decode/merge/
// re-encode, cleanup hops included; otherwise every hop and every codec
// stage is charged end-to-end, the pre-pipelining behaviour. Under the
// hierarchical exchange the NVLink tier joins the schedule as a third
// resource: hop k's transfer also hides hop k−1's staging copies, and the
// pre stage grows by the intra-rank aggregation; the pipelined form may
// additionally fold the delegate-mask allreduce into the hop steps as
// chunked wire extras when that beats the serial reduction.
func (x *butterflyExchange) remoteTime(in remoteVolumes) remoteTiming {
	hopBytes := in.hopBytes
	var maxMsg int64
	msgCap := x.e.opts.MessageBytes
	for _, b := range hopBytes {
		msg := b
		if msg > msgCap {
			msg = msgCap
		}
		if msg > maxMsg {
			maxMsg = msg
		}
	}
	gpu := x.e.opts.GPU
	stages := grownFloat64(x.sc.rtStages, len(in.hopCodecRaw))
	x.sc.rtStages = stages
	var codecTotal float64
	for i, raw := range in.hopCodecRaw {
		stages[i] = gpu.CodecTime(raw)
		codecTotal += stages[i]
	}
	pre := gpu.CodecTime(in.preCodecRaw)
	codecTotal += pre
	net := x.e.opts.Net
	// NVLink stages: staging is charged per direction per iteration — one
	// engine-setup latency for all sends and one for all receives
	// (simnet.Staging over the direction's total, exactly the flat mode's
	// LocalComm charge) — and the copy time is spread over the hops in
	// proportion to their volume, so the pipeline hides each hop's share
	// under the neighbouring transfers: hop k's stage is its arrival share
	// plus hop k+1's send share, the pre stage the intra-rank aggregation
	// plus the first send's share.
	var nv []float64
	var preNV, nvTotal float64
	if x.e.hierExchange() {
		var sendTot, recvTot int64
		for k := range hopBytes {
			sendTot += hopBytes[k]
			recvTot += in.hopRecv[k]
		}
		sendSecs, recvSecs := net.Staging(sendTot), net.Staging(recvTot)
		nv = grownFloat64(x.sc.nvStages, len(hopBytes))
		x.sc.nvStages = nv
		for k := range hopBytes {
			t := stagingShare(recvSecs, in.hopRecv[k], recvTot)
			if k+1 < len(hopBytes) {
				t += stagingShare(sendSecs, hopBytes[k+1], sendTot)
			}
			nv[k] = t
			nvTotal += t
		}
		preNV = net.LocalExchange(in.aggBytes, x.e.shape.GPUsPerRank)
		if len(hopBytes) > 0 {
			preNV += stagingShare(sendSecs, hopBytes[0], sendTot)
		}
		nvTotal += preNV
	}
	if !x.e.opts.PipelineHops {
		// Sequential hops hide nothing: the whole NVLink tier is exposed
		// (run.go charges it to LocalComm) and remote-normal is the plain
		// wire+codec sum.
		return remoteTiming{
			seconds:       net.Butterfly(hopBytes, msgCap) + codecTotal,
			maxMsg:        maxMsg,
			codecSeconds:  codecTotal,
			nvlinkSeconds: nvTotal,
			nvlinkExposed: nvTotal,
			maskSecs:      in.maskSecs,
		}
	}
	sched := simnet.ExchangeSchedule{
		HopBytes:  hopBytes,
		HopCodec:  stages,
		HopNVLink: nv,
		PreCodec:  pre,
		PreNVLink: preNV,
		MsgCap:    msgCap,
	}
	base := net.PipelinedExchange(sched)
	// Remote-normal is the two-resource (wire+codec) schedule; the NVLink
	// tier's exposure is the marginal elapsed cost of carrying it — the
	// difference between the three- and two-resource schedules — which
	// run.go charges to LocalComm. The remainder of the tier hid under the
	// schedule's transfers and compute.
	flatSched := sched
	flatSched.HopNVLink, flatSched.PreNVLink = nil, 0
	wc := net.PipelinedExchange(flatSched)
	exposedNV := base.Total - wc.Total
	rt := remoteTiming{
		seconds:       wc.Total,
		maxMsg:        maxMsg,
		codecSeconds:  wc.CodecSeconds,
		hiddenCodec:   wc.HiddenCodec,
		nvlinkSeconds: nvTotal,
		nvlinkExposed: exposedNV,
		hiddenNVLink:  nvTotal - exposedNV,
		stalls:        base.Stalls,
		maskSecs:      in.maskSecs,
	}
	// Delegate-mask folding: split the mask allreduce into one chunk per hop
	// and let the chunks ride the steps' wire resource, filling NIC idle
	// time on compute- or NVLink-bound steps. The effective mask cost is
	// then the marginal elapsed delta of the combined schedule — taken only
	// when it beats the serial reduction, so the fold is never worse; the
	// comparison is deterministic from reduced inputs on every rank.
	if x.e.hierExchange() && in.maskWire > 0 && in.maskSecs > 0 && len(hopBytes) >= 2 {
		rounds := int64(len(hopBytes))
		chunk := (in.maskWire + rounds - 1) / rounds
		per := net.Allreduce(chunk, x.e.shape.Ranks(), x.e.opts.BlockingReduce)
		extra := grownFloat64(x.sc.maskExtra, len(hopBytes))
		x.sc.maskExtra = extra
		for k := range extra {
			extra[k] = per
		}
		sched.WireExtra = extra
		comb := net.PipelinedExchange(sched)
		if eff := comb.Total - base.Total; eff < in.maskSecs {
			// Only the mask attribution changes: remote-normal stays the
			// wire+codec schedule and the NVLink exposure stays the
			// three-vs-two-resource marginal computed above — the fold's
			// chunks ride otherwise-idle wire time, and their marginal is
			// charged to RemoteDelegate via maskSecs.
			rt.maskSecs = eff
			rt.stalls = comb.Stalls
		}
	}
	return rt
}

// stagingShare apportions a direction's iteration-wide staging time to one
// hop by its share of the direction's volume (zero when the direction moved
// nothing) — the per-hop copies stream through one staging-engine setup, so
// the latency is paid once per direction, not once per hop.
func stagingShare(total float64, part, sum int64) float64 {
	if sum <= 0 || part <= 0 {
		return 0
	}
	return total * float64(part) / float64(sum)
}

// countIDs totals the ids across a slot list.
func countIDs(slots [][]uint32) int64 {
	var n int64
	for _, ids := range slots {
		n += int64(len(ids))
	}
	return n
}
