package core

import (
	"testing"

	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// TestCompressionAdaptiveScale16 is the PR's acceptance check: on an R-MAT
// scale-16 run with Compression: adaptive, the result must report fewer
// compressed than raw bytes while levels and parents stay identical to the
// uncompressed run.
func TestCompressionAdaptiveScale16(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-16 graph generation in -short mode")
	}
	el := rmat.Generate(rmat.DefaultParams(16))
	shape := ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}
	// Cap delegates at n/8 instead of the 4n/p default: at this small
	// scale the default turns half the graph into delegates and the
	// normal exchange all but vanishes. The tighter cap is the
	// communication-heavy regime the codec exists for.
	th := partition.SuggestThreshold(el.OutDegrees(), el.N/8)

	base := DefaultOptions()
	base.CollectParents = true
	run := func(mode wire.Mode) *metrics.RunResult {
		opts := base
		opts.Compression = mode
		e := buildEngine(t, el, shape, th, opts)
		res, err := e.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	off := run(wire.ModeOff)
	adaptive := run(wire.ModeAdaptive)

	for v := range off.Levels {
		if off.Levels[v] != adaptive.Levels[v] {
			t.Fatalf("vertex %d: level %d with compression, %d without",
				v, adaptive.Levels[v], off.Levels[v])
		}
	}
	for v := range off.Parents {
		if off.Parents[v] != adaptive.Parents[v] {
			t.Fatalf("vertex %d: parent %d with compression, %d without",
				v, adaptive.Parents[v], off.Parents[v])
		}
	}

	w := adaptive.Wire
	if !w.Enabled {
		t.Fatal("adaptive run did not flag Wire.Enabled")
	}
	if w.RawBytes == 0 {
		t.Fatal("adaptive run exchanged no bytes — test is vacuous")
	}
	if w.CompressedBytes >= w.RawBytes {
		t.Fatalf("compressed bytes %d not below raw bytes %d", w.CompressedBytes, w.RawBytes)
	}
	if w.SchemeRaw+w.SchemeDelta+w.SchemeBitmap == 0 {
		t.Fatal("adaptive run recorded no scheme selections")
	}
	if off.Wire.RawBytes != w.RawBytes {
		t.Fatalf("raw-byte accounting differs: %d off vs %d adaptive",
			off.Wire.RawBytes, w.RawBytes)
	}
	t.Logf("scale 16 %s: raw %d B → wire %d B (%.1f%% saved; schemes raw=%d delta=%d bitmap=%d)",
		shape, w.RawBytes, w.CompressedBytes, 100*w.Savings(),
		w.SchemeRaw, w.SchemeDelta, w.SchemeBitmap)
}

// TestCompressionModesAgree checks every forced scheme (and off) produces
// identical traversal results and the run's wire accounting is coherent.
func TestCompressionModesAgree(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(12))
	shape := ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2}
	th := partition.SuggestThreshold(el.OutDegrees(), 4*el.N/int64(shape.P()))

	var ref []int32
	for _, mode := range []wire.Mode{wire.ModeOff, wire.ModeAdaptive, wire.ModeRaw, wire.ModeDelta, wire.ModeBitmap} {
		opts := DefaultOptions()
		opts.Compression = mode
		e := buildEngine(t, el, shape, th, opts)
		for _, src := range []int64{0, 7, 4093} {
			res, err := e.Run(src)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			if mode == wire.ModeOff && src == 0 {
				ref = res.Levels
			}
			if src == 0 {
				for v := range ref {
					if res.Levels[v] != ref[v] {
						t.Fatalf("mode %v: vertex %d level %d, want %d", mode, v, res.Levels[v], ref[v])
					}
				}
			}
			w := res.Wire
			if (mode != wire.ModeOff) != w.Enabled {
				t.Fatalf("mode %v: Wire.Enabled = %v", mode, w.Enabled)
			}
			for i, it := range res.PerIteration {
				if mode == wire.ModeOff && it.BytesNormal != it.BytesNormalRaw {
					t.Fatalf("mode off: iteration %d wire bytes %d != raw bytes %d",
						i, it.BytesNormal, it.BytesNormalRaw)
				}
			}
		}
	}
}

// TestCompressionUniquifyInteraction makes sure the codec composes with the
// U optimization (sorted duplicate-free bins are bitmap/delta's best case).
func TestCompressionUniquifyInteraction(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(12))
	shape := ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2}
	th := partition.SuggestThreshold(el.OutDegrees(), 4*el.N/int64(shape.P()))
	opts := DefaultOptions()
	opts.Uniquify = true
	opts.Compression = wire.ModeAdaptive
	e := buildEngine(t, el, shape, th, opts)
	checkAgainstSerial(t, el, e, 3)
}

// TestParentPairsCompression checks the post-BFS parent-resolution exchange
// routes through the pairs codec: identical parents, coherent byte
// accounting, and a real reduction versus the fixed-width 12-byte pairs.
func TestParentPairsCompression(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(13))
	shape := ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1}
	// Tight delegate cap so nn edges (the pairs traffic) really exist.
	th := partition.SuggestThreshold(el.OutDegrees(), el.N/8)

	run := func(mode wire.Mode) *metrics.RunResult {
		opts := DefaultOptions()
		opts.Compression = mode
		opts.CollectParents = true
		e := buildEngine(t, el, shape, th, opts)
		res, err := e.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(wire.ModeOff)
	adaptive := run(wire.ModeAdaptive)

	for v := range off.Parents {
		if off.Parents[v] != adaptive.Parents[v] {
			t.Fatalf("vertex %d: parent %d with pairs codec, %d without",
				v, adaptive.Parents[v], off.Parents[v])
		}
	}
	if off.ParentPairs == 0 {
		t.Fatal("no parent pairs exchanged — test is vacuous")
	}
	if off.Wire.PairRawBytes != 12*off.ParentPairs {
		t.Fatalf("off-mode pair raw bytes %d, want 12×%d pairs", off.Wire.PairRawBytes, off.ParentPairs)
	}
	if off.Wire.PairWireBytes != off.Wire.PairRawBytes {
		t.Fatalf("off-mode pair wire bytes %d != raw %d", off.Wire.PairWireBytes, off.Wire.PairRawBytes)
	}
	if adaptive.Wire.PairRawBytes != off.Wire.PairRawBytes {
		t.Fatalf("pair raw accounting differs: %d off vs %d adaptive",
			off.Wire.PairRawBytes, adaptive.Wire.PairRawBytes)
	}
	if adaptive.Wire.PairWireBytes >= adaptive.Wire.PairRawBytes {
		t.Fatalf("pairs codec did not shrink the exchange: %d wire vs %d raw",
			adaptive.Wire.PairWireBytes, adaptive.Wire.PairRawBytes)
	}
	t.Logf("parent pairs: %d pairs, %d B raw -> %d B wire (%.1f%% saved)",
		off.ParentPairs, adaptive.Wire.PairRawBytes, adaptive.Wire.PairWireBytes,
		100*(1-float64(adaptive.Wire.PairWireBytes)/float64(adaptive.Wire.PairRawBytes)))
}

// TestDelegateMaskEncoding: with a codec active, the delegate-mask
// allreduce ships the adaptively encoded form of the reduced mask. TH=0
// turns every vertex into a delegate, so the mask reduction is the only
// inter-rank traffic — a clean isolation of the satellite: results stay
// identical, the sparse late-iteration masks shrink below their native
// bitmap size, and the saved bytes show up as remote-delegate time.
func TestDelegateMaskEncoding(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(12))
	shape := ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1}

	run := func(mode wire.Mode) *metrics.RunResult {
		opts := DefaultOptions()
		opts.Compression = mode
		e := buildEngine(t, el, shape, 0, opts) // TH=0: all delegates
		res, err := e.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(wire.ModeOff)
	adaptive := run(wire.ModeAdaptive)

	for v := range off.Levels {
		if off.Levels[v] != adaptive.Levels[v] {
			t.Fatalf("vertex %d: level %d with mask encoding, %d without",
				v, adaptive.Levels[v], off.Levels[v])
		}
	}
	if off.Wire.MaskRawBytes != 0 || off.Wire.MaskWireBytes != 0 {
		t.Fatalf("off mode counted mask bytes: %d/%d", off.Wire.MaskRawBytes, off.Wire.MaskWireBytes)
	}
	w := adaptive.Wire
	if w.MaskRawBytes == 0 {
		t.Fatal("no mask reductions counted — test is vacuous")
	}
	if w.MaskWireBytes >= w.MaskRawBytes {
		t.Fatalf("mask encoding did not shrink the reductions: %d wire vs %d raw",
			w.MaskWireBytes, w.MaskRawBytes)
	}
	if adaptive.Parts.RemoteDelegate >= off.Parts.RemoteDelegate {
		t.Fatalf("remote-delegate time %g not below uncompressed %g despite smaller masks",
			adaptive.Parts.RemoteDelegate, off.Parts.RemoteDelegate)
	}
	// Per-iteration delegate bytes must never exceed the native mask size.
	for i, it := range adaptive.PerIteration {
		if raw := off.PerIteration[i].BytesDelegate; it.BytesDelegate > raw {
			t.Fatalf("iteration %d: encoded mask %d B above native %d B", i, it.BytesDelegate, raw)
		}
	}
	t.Logf("delegate masks: %d B raw -> %d B wire (%.1f%% saved)",
		w.MaskRawBytes, w.MaskWireBytes, 100*(1-float64(w.MaskWireBytes)/float64(w.MaskRawBytes)))
}

// TestCompressionRejectsBadMode covers the NewEngine validation.
func TestCompressionRejectsBadMode(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(10))
	shape := ClusterShape{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}
	sep := partition.Separate(el, 32)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Compression = wire.Mode(99)
	if _, err := NewEngine(sg, shape, opts); err == nil {
		t.Fatal("engine accepted an invalid compression mode")
	}
}
