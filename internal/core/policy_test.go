package core

import (
	"math"
	"testing"

	"gcbfs/internal/rmat"
	"gcbfs/internal/simnet"
	"gcbfs/internal/wire"
)

// buildPolicy constructs a session (without running it) and returns its
// exchange policy for direct cost-model inspection.
func buildPolicy(t *testing.T, shape ClusterShape, opts Options) *exchangePolicy {
	t.Helper()
	el := rmat.Generate(rmat.DefaultParams(10))
	e := buildEngine(t, el, shape, 16, opts)
	s := e.plan.acquire(e.plan.base)
	defer e.plan.release(s)
	return s.newExchangePolicy()
}

// apCost/bfCost unwrap the remote-normal component for the single-value
// comparisons below — every shape here has one GPU per rank, so the
// hierarchical NVLink component is zero and this is the full cost.
func apCost(pol *exchangePolicy, vol int64) float64 {
	s, _ := pol.allPairsCost(vol, 1)
	return s
}

func bfCost(pol *exchangePolicy, vol int64) float64 {
	s, _ := pol.butterflyCost(vol, 1)
	return s
}

// TestPolicyCostMatchesSimnet: the cost model must be the α/β form realized
// by the exact simnet curves the timing model charges — all-pairs cost is
// PointToPoint over the effective message size, butterfly cost is the
// Butterfly hop-sum over the predicted hop profile (cleanup hops included
// on non-power-of-two rank counts).
func TestPolicyCostMatchesSimnet(t *testing.T) {
	spec := simnet.Ray()
	for _, tc := range []struct {
		shape ClusterShape
		hops  int // hypercube hops + cleanup pair
	}{
		{ClusterShape{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 1}, 3}, // p=8
		{ClusterShape{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 1}, 4}, // p=6: pre + 2 + post
	} {
		pol := buildPolicy(t, tc.shape, DefaultOptions())
		for _, vol := range []int64{0, 512, 64 << 10, 8 << 20} {
			hops := pol.butterflyHops(vol)
			if len(hops) != tc.hops {
				t.Fatalf("shape %s: %d predicted hops, want %d", tc.shape, len(hops), tc.hops)
			}
			wantBF := spec.Butterfly(hops, pol.e.opts.MessageBytes)
			if got := bfCost(pol, vol); math.Abs(got-wantBF) > 1e-12 {
				t.Fatalf("shape %s vol %d: butterfly cost %g, want simnet %g", tc.shape, vol, got, wantBF)
			}
			wantAP := spec.PointToPoint(vol, pol.e.effMessageBytes(vol))
			if got := apCost(pol, vol); math.Abs(got-wantAP) > 1e-12 {
				t.Fatalf("shape %s vol %d: all-pairs cost %g, want simnet %g", tc.shape, vol, got, wantAP)
			}
		}
	}
}

// TestPolicyCrossover: the decision must flip with volume the way the
// ablations show — at many ranks the butterfly wins the latency-bound
// (small-volume) regime, all-pairs wins the bandwidth-bound one, because
// the butterfly relays ~log2(p)/2× the volume.
func TestPolicyCrossover(t *testing.T) {
	shape := ClusterShape{Nodes: 16, RanksPerNode: 2, GPUsPerRank: 1} // 32 ranks
	opts := DefaultOptions()
	opts.Exchange = ExchangeHybrid
	pol := buildPolicy(t, shape, opts)

	small, large := int64(4<<10), int64(64<<20)
	if ap, bf := apCost(pol, small), bfCost(pol, small); bf >= ap {
		t.Fatalf("small volume: butterfly %g not below all-pairs %g (latency-bound regime)", bf, ap)
	}
	if ap, bf := apCost(pol, large), bfCost(pol, large); ap >= bf {
		t.Fatalf("large volume: all-pairs %g not below butterfly %g (bandwidth-bound regime)", ap, bf)
	}
	// And choose follows the costs monotonically: there is one crossover.
	prev := ExchangeButterfly
	flips := 0
	for vol := small; vol <= large; vol *= 2 {
		s := ExchangeButterfly
		if apCost(pol, vol) < bfCost(pol, vol) {
			s = ExchangeAllPairs
		}
		if s != prev {
			flips++
			prev = s
		}
	}
	if flips != 1 {
		t.Fatalf("expected exactly one strategy crossover over the volume sweep, saw %d", flips)
	}
}

// TestPolicyFixedConfigurations: fixed strategies never switch, and the
// prediction is still produced for the configured side.
func TestPolicyFixedConfigurations(t *testing.T) {
	shape := ClusterShape{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 1}
	for _, cfg := range []Exchange{ExchangeAllPairs, ExchangeButterfly} {
		opts := DefaultOptions()
		opts.Exchange = cfg
		pol := buildPolicy(t, shape, opts)
		for _, vol := range []int64{0, 1 << 10, 32 << 20} {
			// Feed the estimator measured feedback so predictVolume ≈ vol.
			got, predicted := pol.choose(1000, 0, 1000, vol*int64(pol.prank), newPolicyFeedback())
			if got != cfg {
				t.Fatalf("configured %v chose %v", cfg, got)
			}
			if predicted < 0 {
				t.Fatalf("negative predicted time %g", predicted)
			}
		}
	}
}

// TestPolicyOverlapCostMatchesSimnet: with a codec active, the butterfly
// cost must be exactly the simnet pipeline model applied to the predicted
// hop and codec-stage profiles (PipelineHops on) or the sequential hop sum
// plus every codec stage (PipelineHops off); the all-pairs cost adds the
// single-round encode+decode compute to the point-to-point curve. This
// mirrors TestPolicyCostMatchesSimnet for the overlap-aware model.
func TestPolicyOverlapCostMatchesSimnet(t *testing.T) {
	spec := simnet.Ray()
	for _, shape := range []ClusterShape{
		{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 1}, // p=8
		{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 1}, // p=6: cleanup hops
	} {
		for _, pipelined := range []bool{true, false} {
			opts := DefaultOptions()
			opts.Compression = wire.ModeAdaptive
			opts.PipelineHops = pipelined
			pol := buildPolicy(t, shape, opts)
			gpu := pol.e.opts.GPU
			for _, vol := range []int64{512, 64 << 10, 8 << 20} {
				hops := pol.butterflyHops(vol)
				stages, pre := pol.butterflyCodec(hops)
				want := spec.Butterfly(hops, pol.e.opts.MessageBytes) + pre
				for _, c := range stages {
					want += c
				}
				if pipelined {
					want = spec.ButterflyPipelined(hops, stages, pre, pol.e.opts.MessageBytes).Total
				}
				if got := bfCost(pol, vol); math.Abs(got-want) > 1e-12 {
					t.Fatalf("shape %s vol %d pipelined=%v: butterfly cost %g, want %g",
						shape, vol, pipelined, got, want)
				}
				wantAP := spec.PointToPoint(vol, pol.e.effMessageBytes(vol)) + gpu.CodecTime(2*vol)
				if got := apCost(pol, vol); math.Abs(got-wantAP) > 1e-12 {
					t.Fatalf("shape %s vol %d: all-pairs cost %g, want %g", shape, vol, got, wantAP)
				}
			}
		}
	}
}

// TestPolicyPipelineMovesCrossover: pipelining makes the butterfly cheaper
// wherever codec stages exist, never dearer, so the all-pairs/butterfly
// crossover volume can only move up — the butterfly stays preferred longer.
func TestPolicyPipelineMovesCrossover(t *testing.T) {
	shape := ClusterShape{Nodes: 16, RanksPerNode: 2, GPUsPerRank: 1} // 32 ranks
	mk := func(pipelined bool) *exchangePolicy {
		opts := DefaultOptions()
		opts.Compression = wire.ModeAdaptive
		opts.Exchange = ExchangeHybrid
		opts.PipelineHops = pipelined
		return buildPolicy(t, shape, opts)
	}
	pipe, seq := mk(true), mk(false)
	crossover := func(pol *exchangePolicy) int64 {
		for vol := int64(4 << 10); vol <= 64<<20; vol *= 2 {
			if apCost(pol, vol) < bfCost(pol, vol) {
				return vol
			}
		}
		return 64 << 20
	}
	for vol := int64(4 << 10); vol <= 64<<20; vol *= 2 {
		p, s := bfCost(pipe, vol), bfCost(seq, vol)
		if p > s {
			t.Fatalf("vol %d: pipelined butterfly cost %g above sequential %g", vol, p, s)
		}
		if vol >= 64<<10 && p >= s {
			t.Fatalf("vol %d: pipelined butterfly cost %g not strictly below sequential %g "+
				"(codec stages are nonzero here)", vol, p, s)
		}
	}
	if cp, cs := crossover(pipe), crossover(seq); cp < cs {
		t.Fatalf("pipelining moved the crossover down: %d vs %d", cp, cs)
	}
}

// TestPolicySkewScalesPrediction: a measured skew ratio scales the volume
// estimate (the timing model charges the max-reduced rank, not the mean),
// so both cost predictions rise with skew.
func TestPolicySkewScalesPrediction(t *testing.T) {
	opts := DefaultOptions()
	opts.Exchange = ExchangeHybrid
	pol := buildPolicy(t, ClusterShape{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 1}, opts)
	balanced := pol.predictVolume(1000, 0, 1000, 8<<20, 1)
	skewed := pol.predictVolume(1000, 0, 1000, 8<<20, 3)
	if skewed != 3*balanced {
		t.Fatalf("skew 3 predicted %d, want 3× balanced %d", skewed, balanced)
	}
	if apCost(pol, skewed) <= apCost(pol, balanced) ||
		bfCost(pol, skewed) <= bfCost(pol, balanced) {
		t.Fatal("skewed volume did not raise the cost predictions")
	}
	// Skew can flip the decision where the mean-volume estimate sits just
	// below the crossover: find such a point and verify the flip.
	fb := newPolicyFeedback()
	for mean := int64(4 << 10); mean <= 64<<20; mean *= 2 {
		sBal, _ := pol.choose(1000, 0, 1000, mean*int64(pol.prank), fb)
		high := fb
		high.skew = 8
		sSkew, _ := pol.choose(1000, 0, 1000, mean*int64(pol.prank), high)
		if sBal == ExchangeButterfly && sSkew == ExchangeAllPairs {
			return // skew priced the max rank into the decision
		}
	}
	t.Fatal("skew never flipped a near-crossover decision toward all-pairs")
}

// TestPolicyFeedbackCalibration: the per-strategy EWMA must move toward the
// observed actual/predicted ratio, stay within its clamps, and flip a
// near-crossover decision against a strategy whose predictions proved
// optimistic.
func TestPolicyFeedbackCalibration(t *testing.T) {
	fb := newPolicyFeedback()
	fb.observe(ExchangeButterfly, 1e-3, 2e-3, 0, 0, 0) // butterfly ran 2× slower than predicted
	if fb.calib[ExchangeButterfly] <= 1 || fb.calib[ExchangeAllPairs] != 1 {
		t.Fatalf("calibration after slow butterfly: %+v", fb.calib)
	}
	for i := 0; i < 100; i++ {
		fb.observe(ExchangeAllPairs, 1e-3, 1e-9, 0, 0, 0) // absurd ratio must stay clamped
	}
	if c := fb.calib[ExchangeAllPairs]; c < calibMin-1e-12 || c > 1 {
		t.Fatalf("all-pairs calibration %g escaped [%g, 1]", c, calibMin)
	}
	// Zero-valued observations must not move the EWMA.
	before := fb.calib
	fb.observe(ExchangeButterfly, 0, 1e-3, 0, 0, 0)
	if fb.calib != before {
		t.Fatal("zero predicted time moved the calibration")
	}

	opts := DefaultOptions()
	opts.Exchange = ExchangeHybrid
	pol := buildPolicy(t, ClusterShape{Nodes: 16, RanksPerNode: 2, GPUsPerRank: 1}, opts)
	neutral := newPolicyFeedback()
	slowBF := newPolicyFeedback()
	slowBF.calib[ExchangeButterfly] = 4
	flipped := false
	for mean := int64(4 << 10); mean <= 64<<20; mean *= 2 {
		s0, _ := pol.choose(1000, 0, 1000, mean*int64(pol.prank), neutral)
		s1, _ := pol.choose(1000, 0, 1000, mean*int64(pol.prank), slowBF)
		if s0 == ExchangeButterfly && s1 == ExchangeAllPairs {
			flipped = true
		}
		if s0 == ExchangeAllPairs && s1 == ExchangeButterfly {
			t.Fatal("penalizing the butterfly made it win a cell it was losing")
		}
	}
	if !flipped {
		t.Fatal("a 4× butterfly calibration never flipped a near-crossover decision")
	}
}

// TestPolicyDeterministicInputs: identical globally known inputs must yield
// the identical decision — the property that lets every rank decide without
// an extra collective.
func TestPolicyDeterministicInputs(t *testing.T) {
	opts := DefaultOptions()
	opts.Exchange = ExchangeHybrid
	pol := buildPolicy(t, ClusterShape{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 2}, opts)
	for _, in := range [][3]int64{{1, 0, 0}, {500, 100, 1 << 20}, {100000, 90000, 32 << 20}} {
		s1, p1 := pol.choose(in[0], 0, in[1], in[2], newPolicyFeedback())
		s2, p2 := pol.choose(in[0], 0, in[1], in[2], newPolicyFeedback())
		if s1 != s2 || p1 != p2 {
			t.Fatalf("inputs %v: decision not deterministic (%v/%g vs %v/%g)", in, s1, p1, s2, p2)
		}
	}
}
