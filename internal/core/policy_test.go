package core

import (
	"math"
	"testing"

	"gcbfs/internal/rmat"
	"gcbfs/internal/simnet"
)

// buildPolicy constructs a session (without running it) and returns its
// exchange policy for direct cost-model inspection.
func buildPolicy(t *testing.T, shape ClusterShape, opts Options) *exchangePolicy {
	t.Helper()
	el := rmat.Generate(rmat.DefaultParams(10))
	e := buildEngine(t, el, shape, 16, opts)
	s := e.plan.acquire(e.plan.base)
	defer e.plan.release(s)
	return s.newExchangePolicy()
}

// TestPolicyCostMatchesSimnet: the cost model must be the α/β form realized
// by the exact simnet curves the timing model charges — all-pairs cost is
// PointToPoint over the effective message size, butterfly cost is the
// Butterfly hop-sum over the predicted hop profile (cleanup hops included
// on non-power-of-two rank counts).
func TestPolicyCostMatchesSimnet(t *testing.T) {
	spec := simnet.Ray()
	for _, tc := range []struct {
		shape ClusterShape
		hops  int // hypercube hops + cleanup pair
	}{
		{ClusterShape{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 1}, 3}, // p=8
		{ClusterShape{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 1}, 4}, // p=6: pre + 2 + post
	} {
		pol := buildPolicy(t, tc.shape, DefaultOptions())
		for _, vol := range []int64{0, 512, 64 << 10, 8 << 20} {
			hops := pol.butterflyHops(vol)
			if len(hops) != tc.hops {
				t.Fatalf("shape %s: %d predicted hops, want %d", tc.shape, len(hops), tc.hops)
			}
			wantBF := spec.Butterfly(hops, pol.e.opts.MessageBytes)
			if got := pol.butterflyCost(vol); math.Abs(got-wantBF) > 1e-12 {
				t.Fatalf("shape %s vol %d: butterfly cost %g, want simnet %g", tc.shape, vol, got, wantBF)
			}
			wantAP := spec.PointToPoint(vol, pol.e.effMessageBytes(vol))
			if got := pol.allPairsCost(vol); math.Abs(got-wantAP) > 1e-12 {
				t.Fatalf("shape %s vol %d: all-pairs cost %g, want simnet %g", tc.shape, vol, got, wantAP)
			}
		}
	}
}

// TestPolicyCrossover: the decision must flip with volume the way the
// ablations show — at many ranks the butterfly wins the latency-bound
// (small-volume) regime, all-pairs wins the bandwidth-bound one, because
// the butterfly relays ~log2(p)/2× the volume.
func TestPolicyCrossover(t *testing.T) {
	shape := ClusterShape{Nodes: 16, RanksPerNode: 2, GPUsPerRank: 1} // 32 ranks
	opts := DefaultOptions()
	opts.Exchange = ExchangeHybrid
	pol := buildPolicy(t, shape, opts)

	small, large := int64(4<<10), int64(64<<20)
	if ap, bf := pol.allPairsCost(small), pol.butterflyCost(small); bf >= ap {
		t.Fatalf("small volume: butterfly %g not below all-pairs %g (latency-bound regime)", bf, ap)
	}
	if ap, bf := pol.allPairsCost(large), pol.butterflyCost(large); ap >= bf {
		t.Fatalf("large volume: all-pairs %g not below butterfly %g (bandwidth-bound regime)", ap, bf)
	}
	// And choose follows the costs monotonically: there is one crossover.
	prev := ExchangeButterfly
	flips := 0
	for vol := small; vol <= large; vol *= 2 {
		s := ExchangeButterfly
		if pol.allPairsCost(vol) < pol.butterflyCost(vol) {
			s = ExchangeAllPairs
		}
		if s != prev {
			flips++
			prev = s
		}
	}
	if flips != 1 {
		t.Fatalf("expected exactly one strategy crossover over the volume sweep, saw %d", flips)
	}
}

// TestPolicyFixedConfigurations: fixed strategies never switch, and the
// prediction is still produced for the configured side.
func TestPolicyFixedConfigurations(t *testing.T) {
	shape := ClusterShape{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 1}
	for _, cfg := range []Exchange{ExchangeAllPairs, ExchangeButterfly} {
		opts := DefaultOptions()
		opts.Exchange = cfg
		pol := buildPolicy(t, shape, opts)
		for _, vol := range []int64{0, 1 << 10, 32 << 20} {
			// Feed the estimator measured feedback so predictVolume ≈ vol.
			got, predicted := pol.choose(1000, 1000, vol*int64(pol.prank))
			if got != cfg {
				t.Fatalf("configured %v chose %v", cfg, got)
			}
			if predicted < 0 {
				t.Fatalf("negative predicted time %g", predicted)
			}
		}
	}
}

// TestPolicyDeterministicInputs: identical globally known inputs must yield
// the identical decision — the property that lets every rank decide without
// an extra collective.
func TestPolicyDeterministicInputs(t *testing.T) {
	opts := DefaultOptions()
	opts.Exchange = ExchangeHybrid
	pol := buildPolicy(t, ClusterShape{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 2}, opts)
	for _, in := range [][3]int64{{1, 0, 0}, {500, 100, 1 << 20}, {100000, 90000, 32 << 20}} {
		s1, p1 := pol.choose(in[0], in[1], in[2])
		s2, p2 := pol.choose(in[0], in[1], in[2])
		if s1 != s2 || p1 != p2 {
			t.Fatalf("inputs %v: decision not deterministic (%v/%g vs %v/%g)", in, s1, p1, s2, p2)
		}
	}
}
