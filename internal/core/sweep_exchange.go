package core

// The sweep's per-rank BSP loop and its record exchange. The exchange is
// all-pairs only: record payloads are K/64-words wider than id payloads, so
// the butterfly's relay volume multiplies with w and its regime shrinks to
// irrelevance at the widths the sweep targets (the cmp5 ablation runs the
// sweep against both single-query strategies).
//
// Sender-side merging is the sweep's uniquify: all of a rank's bins for one
// destination slot are sorted and duplicate vertex ids collapse into one
// record with OR-ed query masks — the record analogue of the single-query
// dedup, and the source of the sweep's wire savings beyond amortization.

import (
	"cmp"
	"context"
	"slices"

	"gcbfs/internal/bitmask"
	"gcbfs/internal/faults"
	"gcbfs/internal/frontier"
	"gcbfs/internal/metrics"
	"gcbfs/internal/mpi"
	"gcbfs/internal/simgpu"
	"gcbfs/internal/wire"
)

// sweepExchangeCounts is one rank's accounting for one iteration's record
// exchange.
type sweepExchangeCounts struct {
	sent       int64 // bytes counted as sent (codec framing included when active)
	sentRaw    int64 // fixed-width (4+8w)·records equivalent
	recv       int64
	intra      int64 // intra-rank fixed-width volume (NVLink)
	messages   int64
	memoHits   int64
	codecRaw   int64
	dupsMerged int64 // records collapsed by the sender-side mask merge
	applied    int64 // remote records applied on this rank's GPUs
	scheme     [wire.NumSchemes]int64
}

// mergeSlot gathers every local GPU's records bound for one destination GPU,
// sorts them by vertex id and collapses duplicates by OR-ing their query
// masks. The output is sorted and unique — exactly the pre-sorted contract
// the record codec's id sub-block relies on.
func (e *sweepSession) mergeSlot(sc *sweepScratch, myGPUs []*sweepGPU, dstGPU, s int, c *sweepExchangeCounts) int64 {
	w := e.w
	mIDs, mMasks := sc.mIDs[:0], sc.mMasks[:0]
	for _, gs := range myGPUs {
		bin := gs.bins.IDs[dstGPU]
		if len(bin) == 0 {
			continue
		}
		mIDs = append(mIDs, bin...)
		mMasks = append(mMasks, gs.bins.Masks[dstGPU][:len(bin)*w]...)
	}
	sc.mIDs, sc.mMasks = mIDs, mMasks
	out, outM := sc.outIDs[s][:0], sc.outMasks[s][:0]
	if len(mIDs) > 0 {
		perm := sc.perm[:0]
		for i := range mIDs {
			perm = append(perm, int32(i))
		}
		sc.perm = perm
		slices.SortFunc(perm, func(a, b int32) int {
			if r := cmp.Compare(mIDs[a], mIDs[b]); r != 0 {
				return r
			}
			return cmp.Compare(a, b)
		})
		for _, p := range perm {
			id := mIDs[p]
			mask := mMasks[int(p)*w : (int(p)+1)*w]
			if n := len(out); n > 0 && out[n-1] == id {
				bitmask.RowOr(outM[(n-1)*w:n*w], mask)
				c.dupsMerged++
				continue
			}
			out = append(out, id)
			outM = append(outM, mask...)
		}
	}
	sc.outIDs[s], sc.outMasks[s] = out, outM
	return int64(len(mIDs))
}

// exchangeRecords runs one iteration's all-pairs record exchange for one
// rank: merge + encode + send per destination rank, apply intra-rank bins
// directly, then receive and apply every peer's records.
func (e *sweepSession) exchangeRecords(comm *mpi.Comm, rank int, myGPUs []*sweepGPU, sc *sweepScratch, iter int32) sweepExchangeCounts {
	pgpu := e.shape.GPUsPerRank
	prank := e.shape.Ranks()
	mode := e.opts.Compression
	w := e.w
	w64 := int64(w)
	recBytes := 4 + 8*w64
	var c sweepExchangeCounts

	var mergedRecords int64
	for dst := 0; dst < prank; dst++ {
		if dst == rank {
			continue
		}
		for s := 0; s < pgpu; s++ {
			mergedRecords += e.mergeSlot(sc, myGPUs, dst*pgpu+s, s, &c)
		}
		var payload []byte
		if mode == wire.ModeOff {
			payload = frontier.PackRecordsRank(sc.outIDs, sc.outMasks, w)
			var n int64
			for s := range sc.outIDs {
				n += int64(len(sc.outIDs[s]))
			}
			c.sent += recBytes * n
			c.sentRaw += recBytes * n
		} else {
			var st wire.Stats
			payload, st = sc.sel.EncodeSlots(dst, sc.outIDs, sc.outMasks, w, mode)
			c.sent += st.EncodedBytes
			c.sentRaw += st.RawBytes
			c.codecRaw += st.RawBytes
			for i, n := range st.Selected {
				c.scheme[i] += n
			}
			c.memoHits += st.MemoHits
		}
		c.messages++
		comm.Isend(dst, hopTag(iter, 0), payload)
	}
	// The sender-side sort+merge is the sweep's uniquify: charge it like the
	// single-query dedup, widened to the mask words each record moves.
	if mergedRecords > 0 {
		myGPUs[0].it.normalStream += e.charge(myGPUs[0], simgpu.KernelCost{
			Vertices: 2 * mergedRecords * w64, Strategy: simgpu.TWBDynamic,
		})
	}

	// Intra-rank cross-GPU bins apply directly (NVLink, not NIC).
	var intraRecords int64
	for _, src := range myGPUs {
		for s := 0; s < pgpu; s++ {
			dstGPU := rank*pgpu + s
			if dstGPU == src.pg.GPU {
				continue
			}
			ids := src.bins.IDs[dstGPU]
			for i, id := range ids {
				e.discover(e.gpus[dstGPU], sc, id, src.bins.Mask(dstGPU, i), iter+1)
			}
			intraRecords += int64(len(ids))
		}
	}
	c.intra = recBytes * intraRecords

	// Receives, applied straight from the arrival bins. Application order
	// across senders is irrelevant: a record only ORs query bits into the
	// destination row, and each query bit's level is written exactly once,
	// so the sweep needs no canonical-arrival sort.
	for src := 0; src < prank; src++ {
		if src == rank {
			continue
		}
		buf := comm.Recv(src, hopTag(iter, 0))
		for s := 0; s < pgpu; s++ {
			sc.arrIDs[s] = sc.arrIDs[s][:0]
			sc.arrMasks[s] = sc.arrMasks[s][:0]
		}
		var err error
		if mode == wire.ModeOff {
			c.recv += int64(len(buf)) - 4*int64(pgpu)
			err = frontier.UnpackRecordsRankInto(buf, w, sc.arrIDs, sc.arrMasks)
		} else {
			c.recv += int64(len(buf))
			err = wire.DecodeRecordsRank(buf, w, sc.arrIDs, sc.arrMasks)
		}
		if err != nil {
			panic(corruptErr("core: corrupt sweep payload", err))
		}
		for s := 0; s < pgpu; s++ {
			gs := myGPUs[s]
			ids := sc.arrIDs[s]
			for i, id := range ids {
				e.discover(gs, sc, id, sc.arrMasks[s][i*w:(i+1)*w], iter+1)
			}
			n := int64(len(ids))
			c.applied += n
			if mode != wire.ModeOff {
				c.codecRaw += recBytes * n
			}
		}
	}
	// Scatter cost of applying received records on the destination GPUs.
	if c.applied+intraRecords > 0 {
		myGPUs[0].it.normalStream += e.charge(myGPUs[0], simgpu.KernelCost{
			Vertices: (c.applied + intraRecords) * w64, Strategy: simgpu.TWBDynamic,
		})
	}
	for _, gs := range myGPUs {
		gs.bins.Reset()
	}
	return c
}

// runRank is the sweep's per-rank BSP loop — the record analogue of
// Session.runRank, minus direction optimization (forward-only) and the
// per-iteration exchange policy (all-pairs only).
func (e *sweepSession) runRank(ctx context.Context, rank int, comm *mpi.Comm, rec *sweepRecorder, parentsOut [][]int64) {
	pgpu := e.shape.GPUsPerRank
	prank := e.shape.Ranks()
	myGPUs := e.gpus[rank*pgpu : (rank+1)*pgpu]
	sc := e.scratch[rank]
	w64 := int64(e.w)
	maskBytes := e.d * w64 * 8
	cancelled := false

	for iter := int32(0); ; iter++ {
		// ---- Fault injection (chaos testing): see Session.runRank.
		if in := e.opts.Inject; in != nil {
			in.Crash(rank, int(iter), faults.SiteIter)
		}
		// ---- Local computation (all GPUs of this rank).
		for _, gs := range myGPUs {
			gs.it = sweepIterWork{}
			e.runKernels(gs, sc, iter)
		}

		// ---- Delegate matrix reduction: local OR to "GPU0", then global OR
		// allreduce, skipped on iterations without updates anywhere.
		copy(sc.rankD, myGPUs[0].newD.Words())
		for _, gs := range myGPUs[1:] {
			bitmask.RowOr(sc.rankD, gs.newD.Words())
		}
		anyGlobal := comm.AllreduceBoolOr(bitmask.RowAny(sc.rankD))
		maskExchanged := false
		var newDelegates int64
		if anyGlobal {
			comm.AllreduceOr(sc.rankD)
			maskExchanged = true
			for _, gs := range myGPUs {
				newDelegates = e.commitDelegates(gs, sc, iter)
				gs.newD.Reset()
			}
		} else {
			for _, gs := range myGPUs {
				gs.frontD.Reset()
				gs.newD.Reset()
			}
		}

		// ---- Record exchange (§V-B widened to (id, mask) records).
		c := e.exchangeRecords(comm, rank, myGPUs, sc, iter)

		// ---- Timing assembly (model time, reduced across ranks).
		var comp float64
		for _, gs := range myGPUs {
			if t := streamCombine(gs.it.delegateStream, gs.it.normalStream); t > comp {
				comp = t
			}
		}
		// Injected stall: timing skew only, results stay bit-identical.
		if in := e.opts.Inject; in != nil {
			comp += in.Stall(rank, int(iter), faults.SiteIter)
		}
		aSent, aRecv, aIntra := e.ampBytes(c.sent), e.ampBytes(c.recv), e.ampBytes(c.intra)
		aMask := e.ampBytes(maskBytes)
		var localComm float64
		if maskExchanged {
			localComm += e.opts.Net.LocalReduce(aMask, pgpu)
			localComm += e.opts.Net.LocalBroadcast(aMask, pgpu)
		}
		if e.opts.LocalAll2All && aSent > 0 && pgpu > 1 {
			localComm += e.opts.Net.LocalExchange(aSent*int64(pgpu-1)/int64(pgpu), pgpu)
		}
		localComm += e.opts.Net.Staging(aSent) + e.opts.Net.Staging(aRecv) + e.opts.Net.Staging(aIntra)
		var remoteDelegate float64
		if maskExchanged {
			remoteDelegate = e.opts.Net.Allreduce(aMask, prank, e.opts.BlockingReduce)
		}
		vec := append(sc.vec[:0], comp, localComm, remoteDelegate,
			float64(aSent), float64(e.ampBytes(c.codecRaw)))
		sc.vec = vec
		sc.fbits = maxFloatsAllreduce(comm, vec, sc.fbits)
		maxWire := int64(vec[3])
		msg := effMessageBytesFor(&e.opts, e.shape, maxWire)
		codecSecs := e.opts.GPU.CodecTime(int64(vec[4]))
		remoteNormal := e.opts.Net.PointToPoint(maxWire, msg) + codecSecs
		parts := metrics.Breakdown{
			Computation:    vec[0],
			LocalComm:      vec[1],
			RemoteNormal:   remoteNormal,
			RemoteDelegate: vec[2],
		}
		elapsed := iterElapsedFor(&e.opts, e.shape, parts)

		// ---- Global sums: work stats, termination flag, context observation.
		var nextNormals, edges, logical int64
		for _, gs := range myGPUs {
			nextNormals += int64(len(gs.outIDs))
			edges += gs.it.edges
			logical += gs.it.logical
		}
		flag := int64(0)
		if nextNormals > 0 || newDelegates > 0 {
			flag = 1
		}
		ctxDead := int64(0)
		if ctx.Err() != nil {
			ctxDead = 1
		}
		sums := append(sc.sums[:0], flag, edges, logical, c.sent, c.sentRaw,
			c.messages, c.scheme[wire.SchemeRaw], c.scheme[wire.SchemeDelta],
			c.scheme[wire.SchemeBitmap], c.memoHits, c.codecRaw, c.dupsMerged, ctxDead)
		sc.sums = sums
		comm.AllreduceSum(sums)

		if rank == 0 {
			rec.iterations++
			rec.edges += sums[1]
			rec.logical += sums[2]
			rec.dupsMerged += sums[11]
			rec.simSeconds += elapsed
			rec.parts.Add(parts)
			rec.wire.CompressedBytes += sums[3]
			rec.wire.RawBytes += sums[4]
			rec.wire.SchemeRaw += sums[6]
			rec.wire.SchemeDelta += sums[7]
			rec.wire.SchemeBitmap += sums[8]
			rec.wire.MemoHits += sums[9]
			rec.wire.CodecBytes += sums[10]
			rec.wire.CodecSeconds += codecSecs
			rec.messages += sums[5]
			if msg > rec.maxMsg {
				rec.maxMsg = msg
			}
			if maskExchanged {
				rec.maskComms++
			}
		}

		// ---- Rotate frontiers: clear the old front rows (only set rows need
		// touching), then swap the matrices and the active-slot lists.
		for _, gs := range myGPUs {
			for _, u := range gs.inIDs {
				clear(gs.front.Row(int64(u)))
			}
			gs.front, gs.nxt = gs.nxt, gs.front
			gs.inIDs, gs.outIDs = gs.outIDs, gs.inIDs[:0]
		}
		if sums[12] > 0 {
			cancelled = true
			if rank == 0 {
				rec.cancelled = true
			}
			break
		}
		if sums[0] == 0 {
			break
		}
	}

	if e.opts.CollectParents && !cancelled {
		e.resolveSweepParents(rank, comm, parentsOut)
	}
}
