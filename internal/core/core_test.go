package core

import (
	"math/rand"
	"testing"

	"gcbfs/internal/baseline"
	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
)

// buildEngine partitions el for the shape/threshold and returns the engine.
func buildEngine(t testing.TB, el *graph.EdgeList, shape ClusterShape, th int64, opts Options) *Engine {
	t.Helper()
	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(sg, shape, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// checkAgainstSerial runs the engine and the serial reference from the same
// source and requires identical hop distances.
func checkAgainstSerial(t *testing.T, el *graph.EdgeList, e *Engine, source int64) *metrics.RunResult {
	t.Helper()
	res, err := e.Run(source)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.SerialBFS(graph.BuildCSR(el), source)
	if len(res.Levels) != len(want) {
		t.Fatalf("levels length %d, want %d", len(res.Levels), len(want))
	}
	for v := range want {
		if res.Levels[v] != want[v] {
			t.Fatalf("source %d: vertex %d level %d, want %d (shape %s)",
				source, v, res.Levels[v], want[v], e.Shape())
		}
	}
	return res
}

func TestClusterShape(t *testing.T) {
	s := ClusterShape{Nodes: 31, RanksPerNode: 2, GPUsPerRank: 2}
	if s.Ranks() != 62 || s.P() != 124 {
		t.Fatalf("Ranks=%d P=%d", s.Ranks(), s.P())
	}
	if s.String() != "31×2×2" {
		t.Fatalf("String = %q", s.String())
	}
	if (ClusterShape{}).Validate() == nil {
		t.Fatal("zero shape validated")
	}
}

func TestEngineRejectsMismatchedPartition(t *testing.T) {
	el := gen.Path(16)
	sep := partition.Separate(el, 100)
	sg, err := partition.Distribute(el, sep, partition.Config{Ranks: 2, GPUsPerRank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(sg, ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1}, DefaultOptions()); err == nil {
		t.Fatal("accepted mismatched shape")
	}
}

func TestRunRejectsBadSource(t *testing.T) {
	el := gen.Path(8)
	e := buildEngine(t, el, ClusterShape{1, 1, 1}, 100, DefaultOptions())
	if _, err := e.Run(-1); err == nil {
		t.Fatal("accepted negative source")
	}
	if _, err := e.Run(8); err == nil {
		t.Fatal("accepted out-of-range source")
	}
}

func TestPathSingleGPU(t *testing.T) {
	el := gen.Path(33)
	e := buildEngine(t, el, ClusterShape{1, 1, 1}, 100, DefaultOptions())
	res := checkAgainstSerial(t, el, e, 0)
	if res.Iterations != 33 {
		t.Fatalf("path BFS iterations = %d, want 33", res.Iterations)
	}
}

func TestPathDistributed(t *testing.T) {
	el := gen.Path(50)
	for _, shape := range []ClusterShape{{2, 1, 1}, {1, 2, 2}, {3, 1, 2}} {
		e := buildEngine(t, el, shape, 100, DefaultOptions())
		checkAgainstSerial(t, el, e, 7)
	}
}

func TestStarDelegateSource(t *testing.T) {
	el := gen.Star(40)
	// Hub has degree 39 > TH=5 → delegate; search from the delegate.
	e := buildEngine(t, el, ClusterShape{2, 1, 2}, 5, DefaultOptions())
	res := checkAgainstSerial(t, el, e, 0)
	if res.Iterations < 1 {
		t.Fatal("no iterations executed")
	}
	// And from a leaf (normal vertex) through the delegate.
	checkAgainstSerial(t, el, e, 17)
}

func TestGridAndCycle(t *testing.T) {
	grid := gen.Grid2D(9, 11)
	e := buildEngine(t, grid, ClusterShape{2, 2, 1}, 3, DefaultOptions())
	checkAgainstSerial(t, grid, e, 0)
	checkAgainstSerial(t, grid, e, 98)

	cyc := gen.Cycle(37)
	e2 := buildEngine(t, cyc, ClusterShape{1, 3, 1}, 1, DefaultOptions())
	checkAgainstSerial(t, cyc, e2, 36)
}

func TestDisconnectedAndIsolated(t *testing.T) {
	// Two components + an isolated vertex.
	el := graph.NewEdgeList(10)
	el.Add(0, 1)
	el.Add(1, 0)
	el.Add(2, 3)
	el.Add(3, 2)
	el.Add(3, 4)
	el.Add(4, 3)
	// 5..9 isolated.
	e := buildEngine(t, el, ClusterShape{2, 1, 2}, 1, DefaultOptions())
	res := checkAgainstSerial(t, el, e, 2)
	if res.Levels[0] != -1 || res.Levels[9] != -1 {
		t.Fatal("unreachable vertices must stay -1")
	}
	// Isolated source: exactly one iteration, then the >1-iteration
	// filter drops it (paper §VI-A3).
	res2, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MultipleIterations() {
		t.Fatalf("isolated source ran %d iterations", res2.Iterations)
	}
}

func TestRMATAllShapesAndOptions(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	shapes := []ClusterShape{{1, 1, 1}, {1, 1, 4}, {2, 2, 1}, {2, 1, 2}, {3, 2, 2}}
	optsList := map[string]Options{
		"dobfs": DefaultOptions(),
		"bfs":   PlainBFSOptions(),
		"dobfs+L+U": func() Options {
			o := DefaultOptions()
			o.LocalAll2All = true
			o.Uniquify = true
			return o
		}(),
		"dobfs+IR": func() Options {
			o := DefaultOptions()
			o.BlockingReduce = false
			return o
		}(),
	}
	deg := el.OutDegrees()
	sources := pickSources(deg, 3, 42)
	for _, shape := range shapes {
		for name, opts := range optsList {
			e := buildEngine(t, el, shape, 8, opts)
			for _, src := range sources {
				res := checkAgainstSerial(t, el, e, src)
				if res.Iterations <= 1 {
					t.Fatalf("%s/%s: suspicious %d iterations", shape, name, res.Iterations)
				}
			}
		}
	}
}

func TestThresholdExtremes(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(8))
	deg := el.OutDegrees()
	src := pickSources(deg, 1, 7)[0]
	// TH=0: every non-isolated vertex is a delegate (all edges dd).
	e0 := buildEngine(t, el, ClusterShape{2, 1, 2}, 0, DefaultOptions())
	checkAgainstSerial(t, el, e0, src)
	// TH=inf: no delegates (all edges nn).
	eInf := buildEngine(t, el, ClusterShape{2, 1, 2}, 1<<40, DefaultOptions())
	checkAgainstSerial(t, el, eInf, src)
}

func TestSocialAndWebGraphs(t *testing.T) {
	soc := gen.SocialNetwork(gen.DefaultSocialParams(9))
	deg := soc.OutDegrees()
	src := pickSources(deg, 1, 3)[0]
	e := buildEngine(t, soc, ClusterShape{1, 2, 2}, 16, DefaultOptions())
	checkAgainstSerial(t, soc, e, src)

	web := gen.WebGraph(gen.WebParams{Scale: 8, EdgeFactor: 8, NumChains: 3, ChainLength: 40, Seed: 9})
	deg2 := web.OutDegrees()
	src2 := pickSources(deg2, 1, 4)[0]
	e2 := buildEngine(t, web, ClusterShape{2, 1, 2}, 16, DefaultOptions())
	res := checkAgainstSerial(t, web, e2, src2)
	if res.Iterations < 30 {
		t.Fatalf("web graph should be long-tail, got %d iterations", res.Iterations)
	}
}

func TestDeterminism(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(8))
	e := buildEngine(t, el, ClusterShape{2, 1, 2}, 8, DefaultOptions())
	src := pickSources(el.OutDegrees(), 1, 11)[0]
	a, err := e.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimSeconds != b.SimSeconds || a.EdgesScanned != b.EdgesScanned || a.Iterations != b.Iterations {
		t.Fatalf("nondeterministic runs: %v/%v vs %v/%v",
			a.SimSeconds, a.EdgesScanned, b.SimSeconds, b.EdgesScanned)
	}
	for v := range a.Levels {
		if a.Levels[v] != b.Levels[v] {
			t.Fatalf("levels differ at %d", v)
		}
	}
}

func TestDOBFSReducesWorkOnRMAT(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(13))
	src := pickSources(el.OutDegrees(), 1, 5)[0]
	// Amplify into the paper's per-GPU workload regime (scale-26 per GPU);
	// local graph is scale-13 on 4 GPUs = scale-11 per GPU.
	doOpts := DefaultOptions()
	doOpts.WorkAmplification = 1 << 15
	plainOpts := PlainBFSOptions()
	plainOpts.WorkAmplification = 1 << 15
	eDO := buildEngine(t, el, ClusterShape{2, 1, 2}, 16, doOpts)
	ePlain := buildEngine(t, el, ClusterShape{2, 1, 2}, 16, plainOpts)
	rDO, err := eDO.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	rPlain, err := ePlain.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if rDO.EdgesScanned >= rPlain.EdgesScanned {
		t.Fatalf("DO did not reduce work: %d vs %d", rDO.EdgesScanned, rPlain.EdgesScanned)
	}
	if rDO.SimSeconds >= rPlain.SimSeconds {
		t.Fatalf("DO did not reduce simulated time: %g vs %g", rDO.SimSeconds, rPlain.SimSeconds)
	}
	// At least one backward iteration must have been chosen.
	sawBackward := false
	for _, it := range rDO.PerIteration {
		if it.DirDD == metrics.Backward || it.DirDN == metrics.Backward || it.DirND == metrics.Backward {
			sawBackward = true
		}
	}
	if !sawBackward {
		t.Fatal("DOBFS never switched to backward on RMAT")
	}
}

func TestUniquifyRemovesDuplicatesOnly(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	src := pickSources(el.OutDegrees(), 1, 13)[0]
	base := DefaultOptions()
	uniq := DefaultOptions()
	uniq.Uniquify = true
	e1 := buildEngine(t, el, ClusterShape{2, 2, 1}, 8, base)
	e2 := buildEngine(t, el, ClusterShape{2, 2, 1}, 8, uniq)
	r1 := checkAgainstSerial(t, el, e1, src)
	r2 := checkAgainstSerial(t, el, e2, src)
	var b1, b2 int64
	for _, it := range r1.PerIteration {
		b1 += it.BytesNormal
	}
	for _, it := range r2.PerIteration {
		b2 += it.BytesNormal
	}
	if r2.DupsRemoved > 0 && b2 >= b1 {
		t.Fatalf("uniquify removed %d dups but bytes did not shrink: %d vs %d", r2.DupsRemoved, b2, b1)
	}
	if r2.DupsRemoved == 0 && b2 != b1 {
		t.Fatal("no dups removed but bytes differ")
	}
}

func TestDelegateCommsSkippedWhenQuiet(t *testing.T) {
	// A path has no delegates at TH=100 → no delegate mask exchanges.
	el := gen.Path(40)
	e := buildEngine(t, el, ClusterShape{2, 1, 2}, 100, DefaultOptions())
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DelegateComms != 0 {
		t.Fatalf("path with no delegates exchanged masks %d times", res.DelegateComms)
	}
	// RMAT with delegates: exchanges happen, but on fewer iterations
	// than the total (S' < S, §V-A).
	rm := rmat.Generate(rmat.DefaultParams(10))
	e2 := buildEngine(t, rm, ClusterShape{2, 1, 2}, 8, DefaultOptions())
	src := pickSources(rm.OutDegrees(), 1, 1)[0]
	res2, err := e2.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res2.DelegateComms == 0 {
		t.Fatal("RMAT run never exchanged delegate masks")
	}
	if res2.DelegateComms >= res2.Iterations {
		t.Fatalf("delegate comms %d not < iterations %d", res2.DelegateComms, res2.Iterations)
	}
}

func TestRunManyAndAggregate(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	e := buildEngine(t, el, ClusterShape{2, 1, 2}, 8, DefaultOptions())
	sources := pickSources(el.OutDegrees(), 5, 21)
	results, err := e.RunMany(sources)
	if err != nil {
		t.Fatal(err)
	}
	agg := metrics.AggregateRuns(results)
	if agg.Runs != 5 {
		t.Fatalf("agg.Runs = %d", agg.Runs)
	}
	if agg.GTEPS <= 0 {
		t.Fatal("aggregate GTEPS not positive")
	}
}

func TestBreakdownConsistency(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(10))
	shape := ClusterShape{4, 1, 2}
	opts := DefaultOptions()
	e := buildEngine(t, el, shape, 8, opts)
	src := pickSources(el.OutDegrees(), 1, 2)[0]
	res, err := e.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimSeconds <= 0 {
		t.Fatal("no simulated time")
	}
	// Sum of per-iteration elapsed equals the run total.
	var sum float64
	for _, it := range res.PerIteration {
		sum += it.Elapsed
	}
	if diff := sum - res.SimSeconds; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("per-iteration sum %g != total %g", sum, res.SimSeconds)
	}
	// Breakdown parts are all populated on a multi-rank RMAT run.
	if res.Parts.Computation <= 0 || res.Parts.RemoteDelegate <= 0 {
		t.Fatalf("missing parts: %+v", res.Parts)
	}
	// Overlap hides time, it never creates it: elapsed minus the fixed
	// per-iteration sync overhead (excluded from the parts by design)
	// cannot exceed the sum of parts.
	sync := syncOverheadFor(&opts, shape) * float64(len(res.PerIteration))
	if res.SimSeconds-sync > res.Parts.Sum()*(1+1e-9) {
		t.Fatalf("elapsed %g minus sync %g exceeds parts sum %g",
			res.SimSeconds, sync, res.Parts.Sum())
	}
}

func TestCollectLevelsOff(t *testing.T) {
	el := gen.Path(10)
	opts := DefaultOptions()
	opts.CollectLevels = false
	e := buildEngine(t, el, ClusterShape{1, 1, 2}, 100, opts)
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels != nil {
		t.Fatal("levels collected despite CollectLevels=false")
	}
}

// pickSources returns count distinct vertices with nonzero degree.
func pickSources(deg []int64, count int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	var out []int64
	seen := map[int64]bool{}
	for len(out) < count {
		v := rng.Int63n(int64(len(deg)))
		if deg[v] > 0 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
