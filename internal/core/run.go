package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gcbfs/internal/faults"
	"gcbfs/internal/metrics"
	"gcbfs/internal/mpi"
	"gcbfs/internal/simgpu"
	"gcbfs/internal/wire"
)

// This file drives the BSP super-step loop (Figs. 3 and 4): per-rank
// goroutines run the local kernels on their GPUs, reduce delegate masks
// locally then globally, exchange binned normal vertices point-to-point,
// and agree on termination — exactly the communication structure of §V.

// recorder collects per-iteration statistics; only rank 0 writes to it, and
// the main goroutine reads it after all ranks join.
type recorder struct {
	iterations    []metrics.IterationStats
	delegateComms int
	edgesScanned  int64
	dupsRemoved   int64
	simSeconds    float64
	parts         metrics.Breakdown
	wire          metrics.WireStats
	exchange      metrics.ExchangeStats
	// cancelled is set by rank 0 when the query aborted on its context; all
	// ranks observe the same reduced cancellation flag, so they break the
	// BSP loop on the same iteration and no collective is left half-entered.
	cancelled bool
}

// Run executes one BFS from the given global source vertex on a pooled
// Session configured with the base options plus ov, and returns the result
// with simulated timing. The run is functionally exact and deterministic:
// identical inputs produce identical distances, counters and simulated
// times, regardless of how many queries run concurrently.
//
// ctx is honored at iteration boundaries: every rank folds its context
// observation into the per-iteration termination reduction, so a cancelled
// or expired context aborts the query within one BSP iteration and Run
// returns ctx.Err().
func (p *Plan) Run(ctx context.Context, source int64, ov Overrides) (*metrics.RunResult, error) {
	opts, err := p.effectiveOptions(ov)
	if err != nil {
		return nil, err
	}
	if source < 0 || source >= p.sg.N {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", source, p.sg.N)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := p.acquire(opts)
	defer p.release(s)
	return s.run(ctx, source)
}

// RunBatch executes one BFS per source with at most parallelism queries in
// flight, each on its own pooled Session. Results are source-ordered and
// bit-identical to a serial loop of Run calls — concurrency changes only
// wall-clock time, never results. parallelism ≤ 1 runs serially. The first
// query error (including context cancellation) cancels the remaining
// queries and is returned.
func (p *Plan) RunBatch(ctx context.Context, sources []int64, parallelism int, ov Overrides) ([]*metrics.RunResult, error) {
	if _, err := p.effectiveOptions(ov); err != nil {
		return nil, err
	}
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > len(sources) {
		parallelism = len(sources)
	}
	results := make([]*metrics.RunResult, len(sources))
	if len(sources) == 0 {
		return results, ctx.Err()
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sources) {
					return
				}
				r, err := p.Run(bctx, sources[i], ov)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					cancel()
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		// When the failure is itself a cancellation, prefer the caller's
		// context error so a dead parent context surfaces as ctx.Err(),
		// not as the internal batch cancellation. A genuine query error
		// (bad source, invalid override) always wins — it caused the
		// cancellation, not the other way around.
		if errors.Is(firstErr, context.Canceled) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		return nil, firstErr
	}
	return results, nil
}

// run executes one BFS on this (already configured and exclusive) session.
func (e *Session) run(ctx context.Context, source int64) (*metrics.RunResult, error) {
	e.reset()

	// Seed the search at depth 0.
	srcIsDelegate := e.sg.Sep.IsDelegate(source)
	if srcIsDelegate {
		di := int64(e.sg.Sep.DelegateID[source])
		for _, gs := range e.gpus {
			gs.visited.Set(di)
			gs.dFront.Set(di)
			gs.delegateLevel[di] = 0
		}
	} else {
		gs := e.gpus[e.cfg.OwnerGPU(source)]
		local := e.cfg.LocalID(source)
		gs.levels[local] = 0
		gs.inFront = append(gs.inFront, local)
		if gs.isNDSource[local] {
			gs.unvisitedNDSources--
		}
	}

	prank := e.shape.Ranks()
	world := e.acquireWorld()
	rec := &recorder{}
	pol := e.newExchangePolicy()
	rec.exchange.Strategy = e.opts.Exchange.String()
	var wg sync.WaitGroup
	for r := 0; r < prank; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer containRank(world, rank)
			e.runRank(ctx, rank, world.Rank(rank), rec, pol, srcIsDelegate, source)
		}(r)
	}
	wg.Wait()

	if err := world.Aborted(); err != nil {
		e.poisoned = true
		return nil, err
	}
	if rec.cancelled {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}

	res := &metrics.RunResult{
		Source:        source,
		Epoch:         e.epoch,
		Iterations:    len(rec.iterations),
		SimSeconds:    rec.simSeconds,
		TEPSEdges:     e.sg.M / 2,
		EdgesScanned:  rec.edgesScanned,
		DupsRemoved:   rec.dupsRemoved,
		Parts:         rec.parts,
		PerIteration:  rec.iterations,
		DelegateComms: rec.delegateComms,
		Wire:          rec.wire,
		Exchange:      rec.exchange,
	}
	res.Wire.Enabled = e.opts.Compression != wire.ModeOff
	res.Wire.PairRawBytes = e.parentPairRawBytes
	res.Wire.PairWireBytes = e.parentPairWireBytes
	if e.opts.CollectLevels {
		res.Levels = e.gatherLevels()
	}
	if e.opts.CollectParents {
		res.Parents = e.gatherParents()
		res.ParentPairs = e.parentExchangePairs
	}
	return res, nil
}

// runRank is the per-rank BSP loop ("the CPU thread that controls GPU0"
// performs the global phases, §V-A).
func (e *Session) runRank(ctx context.Context, rank int, comm *mpi.Comm, rec *recorder, pol *exchangePolicy, srcIsDelegate bool, source int64) {
	pgpu := e.shape.GPUsPerRank
	prank := e.shape.Ranks()
	myGPUs := e.gpus[rank*pgpu : (rank+1)*pgpu]
	sc := e.scratch[rank]
	rankMask := sc.rankMask // fully overwritten by CopyFrom each iteration
	maskBytes := rankMask.ByteSize()
	rx := sc.rx.bind(e, rank, sc)
	cancelled := false

	// Input frontier sizes of the upcoming iteration (globally known), plus
	// the previous iteration's measured volume — the policy's feedback.
	inputNormals, inputDelegates := int64(1), int64(0)
	if srcIsDelegate {
		inputNormals, inputDelegates = 0, 1
	}
	prevNormals, prevOriginated := int64(0), int64(0)
	// Measured-feedback state (skew ratio + per-strategy calibration):
	// every rank keeps its own copy, updated from globally reduced values
	// only, so the copies stay bit-identical and decisions need no extra
	// collective.
	fb := newPolicyFeedback()
	if e.opts.Warm != nil {
		// Warm start: every rank seeds from the same snapshot, so the copies
		// stay bit-identical exactly as with the neutral defaults.
		fb.seed(*e.opts.Warm)
	}

	for iter := int32(0); ; iter++ {
		// ---- Fault injection (chaos testing): an armed injector may crash
		// this rank at the iteration boundary — a real panic the containment
		// boundary must recover and turn into an all-rank abort.
		if in := e.opts.Inject; in != nil {
			in.Crash(rank, int(iter), faults.SiteIter)
		}
		// ---- Exchange policy: every rank derives the identical strategy
		// decision for this iteration from globally known inputs, the way
		// direction optimization derives push vs pull (policy.go).
		strategy, predicted := pol.chooseS(inputNormals, inputDelegates, prevNormals, prevOriginated, fb, &sc.pol)
		ex := rx.get(strategy)
		// ---- Local computation (all GPUs of this rank).
		qD := myGPUs[0].dFront.Count() // globally consistent masks
		sD := e.d - myGPUs[0].visited.Count()
		for _, gs := range myGPUs {
			gs.it = iterWork{}
			e.runKernels(gs, iter, qD, sD)
		}
		dir0 := myGPUs[0]

		// ---- Delegate mask reduction: local OR to "GPU0", then global
		// allreduce across ranks, skipped entirely on iterations without
		// updates anywhere (the S' < S saving of §V-A).
		rankMask.CopyFrom(myGPUs[0].newMask)
		for _, gs := range myGPUs[1:] {
			rankMask.Or(gs.newMask)
		}
		anyGlobal := comm.AllreduceBoolOr(rankMask.Any())
		maskExchanged := false
		var newDelegates int64
		if anyGlobal {
			comm.AllreduceOr(rankMask.Words())
			maskExchanged = true
			newDelegates = rankMask.Count()
			for _, gs := range myGPUs {
				rankMask.ForEach(func(di int64) { gs.delegateLevel[di] = iter + 1 })
				gs.visited.Or(rankMask)
				gs.dFront.CopyFrom(rankMask)
				gs.newMask.Reset()
			}
		} else {
			for _, gs := range myGPUs {
				gs.dFront.Reset()
				gs.newMask.Reset()
			}
		}

		// ---- Delegate-aware mask encoding: with a codec active, the
		// reduced delegate mask rides the same adaptive raw/delta/bitmap
		// selection as the normal payloads. Dense early-BFS masks stay in
		// their native bitmap form (the encoder can't beat d/8 bytes), but
		// the sparse late-iteration masks shrink to delta streams. Every
		// rank encodes the identical reduced mask, so the effective size —
		// what the timing model charges the global allreduce — is
		// deterministic across ranks.
		effMaskBytes := maskBytes
		var maskCodecRaw int64
		if maskExchanged && e.opts.Compression != wire.ModeOff && e.d-1 <= int64(^uint32(0)) {
			ids := sc.maskIDs[:0]
			rankMask.ForEach(func(di int64) { ids = append(ids, uint32(di)) })
			sc.maskIDs = ids
			if enc := wire.EncodedMaskBytes(ids, e.opts.Compression); enc < maskBytes {
				effMaskBytes = enc
				maskCodecRaw = 4 * int64(len(ids))
			}
		}

		// ---- Normal-vertex exchange (§V-B).
		var dupsRemoved int64
		if e.opts.Uniquify {
			for _, gs := range myGPUs {
				n := gs.bins.UniquifyAll()
				gs.it.dupsRemoved += n
				dupsRemoved += n
				// Uniquify is extra local work (sort + compact).
				if c := gs.bins.Count(); c > 0 {
					gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
						Vertices: 2 * c, Strategy: simgpu.TWBDynamic,
					})
				}
			}
		}
		// Inter-rank exchange through this iteration's strategy (all-pairs
		// sends, or the butterfly's log(p) hops — see exchange.go).
		counts := ex.exchange(comm, myGPUs, iter)
		// Intra-rank cross-GPU bins apply directly (NVLink, not NIC).
		var intraBytes int64
		for _, src := range myGPUs {
			for s := 0; s < pgpu; s++ {
				dstGPU := rank*pgpu + s
				if dstGPU == src.pg.GPU {
					continue
				}
				ids := src.bins.PerGPU[dstGPU]
				intraBytes += 4 * int64(len(ids))
				applyIDs(e.gpus[dstGPU], ids, iter+1)
			}
		}
		// Remote arrivals apply in canonical ascending order so every
		// exchange strategy yields the identical output-frontier order (and
		// hence identical parents downstream). On the real GPU the apply is
		// an order-independent parallel scatter, so no extra time is
		// charged for the canonicalization. The apply runs through the
		// radix-bucketed path (scratch.go), which produces exactly the
		// fully-sorted order a whole-set sort would.
		var applied int64
		for s, ids := range counts.arrivals {
			applied += int64(len(ids))
			sc.applySorted(myGPUs[s], ids, iter+1)
		}
		sentBytes, rawSentBytes := counts.sent, counts.sentRaw
		// Scatter cost of applying received ids on the destination GPUs.
		if applied+intraBytes/4 > 0 {
			myGPUs[0].it.normalStream += e.charge(myGPUs[0], simgpu.KernelCost{
				Vertices: applied + intraBytes/4, Strategy: simgpu.TWBDynamic,
			})
		}
		for _, gs := range myGPUs {
			gs.bins.Reset()
		}

		// ---- Timing assembly (model time, reduced across ranks).
		var comp float64
		for _, gs := range myGPUs {
			if c := streamCombine(gs.it.delegateStream, gs.it.normalStream); c > comp {
				comp = c
			}
		}
		// An injected stall charges this rank extra simulated seconds; the
		// max-reduce below propagates the skew exactly like a slow kernel.
		// Timing only — levels and parents stay bit-identical.
		if in := e.opts.Inject; in != nil {
			comp += in.Stall(rank, int(iter), faults.SiteIter)
		}
		// Timing uses amplified volumes (scale-model, see Options).
		aSent, aRecv, aIntra := e.ampBytes(sentBytes), e.ampBytes(counts.recv), e.ampBytes(intraBytes)
		// Local NVLink moves the mask in its native bitmap form; only the
		// inter-rank allreduce ships the codec-encoded size.
		aMask := e.ampBytes(maskBytes)
		aMaskWire := e.ampBytes(effMaskBytes)
		hier := e.hierExchange()
		var localComm float64
		if maskExchanged {
			localComm += e.opts.Net.LocalReduce(aMask, pgpu)
			localComm += e.opts.Net.LocalBroadcast(aMask, pgpu)
		}
		if hier {
			// Hierarchical exchange: the intra-rank aggregation and the
			// send/recv staging copies ride the exchange schedule
			// (remoteTime) as NVLink stages; only the intra-rank direct
			// applies stay here. The tier's exposed remainder — whatever
			// the hop pipeline could not hide — is folded back into
			// LocalComm after the reduce (rt.nvlinkExposed below), so
			// remote-normal stays a pure wire+codec quantity in both modes.
			localComm += e.opts.Net.Staging(aIntra)
		} else {
			if e.opts.LocalAll2All && aSent > 0 && pgpu > 1 {
				// Staging bins through peer GPUs: (pgpu-1)/pgpu of the
				// outgoing volume crosses NVLink first.
				localComm += e.opts.Net.LocalExchange(aSent*int64(pgpu-1)/int64(pgpu), pgpu)
			}
			localComm += e.opts.Net.Staging(aSent) + e.opts.Net.Staging(aRecv) + e.opts.Net.Staging(aIntra)
		}
		var remoteDelegate float64
		if maskExchanged {
			remoteDelegate = e.opts.Net.Allreduce(aMaskWire, prank, e.opts.BlockingReduce)
		}
		// Delegate-mask codec compute is charged exposed (the mask allreduce
		// serializes with its encode); the exchange's own codec work rides
		// the per-hop vectors below, so the pipelined butterfly can hide it
		// under hop transfers.
		maskCodecSecs := e.opts.GPU.CodecTime(e.ampBytes(maskCodecRaw))
		// The per-hop wire volumes and codec stages ride along the reduced
		// vector (amplified) so every rank derives the identical
		// remote-normal time from the global per-hop maxima — the hops are
		// synchronized pairwise exchanges, so the slowest rank paces each
		// transfer and each codec stage.
		nh := len(counts.hopBytes)
		vec := sc.vec[:0]
		vec = append(vec, comp, localComm, remoteDelegate, maskCodecSecs)
		for _, hb := range counts.hopBytes {
			vec = append(vec, float64(e.ampBytes(hb)))
		}
		for _, cr := range counts.hopCodecRaw {
			vec = append(vec, float64(e.ampBytes(cr)))
		}
		for _, rb := range counts.hopRecvBytes {
			vec = append(vec, float64(e.ampBytes(rb)))
		}
		vec = append(vec, float64(e.ampBytes(counts.preCodecRaw)))
		// The hierarchical aggregation's NVLink volume rides the reduce so
		// the slowest rank paces the pre stage like everything else.
		var aggBytes int64
		if hier {
			aggBytes = e.ampBytes(aggregationBytesFor(&e.opts, e.shape, counts.sentRaw-counts.forwarded))
		}
		vec = append(vec, float64(aggBytes))
		// The last entry is this rank's originated fixed-width volume
		// (forwards excluded) — its maximum over the mean per-rank volume is
		// the strategy-independent partition-skew signal the policy feeds
		// back (relays would inflate a wire-byte measure on butterfly
		// iterations).
		vec = append(vec, float64(e.ampBytes(counts.sentRaw-counts.forwarded)))
		sc.vec = vec
		sc.fbits = maxFloatsAllreduce(comm, vec, sc.fbits)
		redWire := grownInt64(sc.redWire, nh)
		sc.redWire = redWire
		redCodec := grownInt64(sc.redCodec, nh)
		sc.redCodec = redCodec
		redRecv := grownInt64(sc.redRecv, nh)
		sc.redRecv = redRecv
		for i := 0; i < nh; i++ {
			redWire[i] = int64(vec[4+i])
			redCodec[i] = int64(vec[4+nh+i])
			redRecv[i] = int64(vec[4+2*nh+i])
		}
		redPre := int64(vec[4+3*nh])
		redMaxOriginated := vec[6+3*nh]
		var maskWire int64
		if maskExchanged {
			maskWire = aMaskWire
		}
		rt := ex.remoteTime(remoteVolumes{
			hopBytes:    redWire,
			hopCodecRaw: redCodec,
			hopRecv:     redRecv,
			preCodecRaw: redPre,
			aggBytes:    int64(vec[5+3*nh]),
			maskWire:    maskWire,
			maskSecs:    vec[2],
		})
		remoteNormal := rt.seconds + vec[3]
		maxMsg := rt.maxMsg
		parts := metrics.Breakdown{
			Computation:    vec[0],
			LocalComm:      vec[1] + rt.nvlinkExposed,
			RemoteNormal:   remoteNormal,
			RemoteDelegate: rt.maskSecs,
		}
		elapsed := e.iterElapsed(parts)

		// ---- Global sums: work stats, termination flag and the context
		// observation (any rank seeing a dead context aborts all ranks on
		// the same iteration).
		var nextNormals, edges int64
		for _, gs := range myGPUs {
			nextNormals += int64(len(gs.outFront))
			edges += gs.it.edgesScanned
		}
		flag := int64(0)
		if nextNormals > 0 || newDelegates > 0 {
			flag = 1
		}
		ctxDead := int64(0)
		if ctx.Err() != nil {
			ctxDead = 1
		}
		sums := append(sc.sums[:0], edges, sentBytes, nextNormals, dupsRemoved, flag,
			rawSentBytes, counts.scheme[wire.SchemeRaw], counts.scheme[wire.SchemeDelta], counts.scheme[wire.SchemeBitmap],
			counts.messages, counts.forwarded, counts.memoHits, counts.codecRaw+maskCodecRaw, ctxDead)
		sc.sums = sums
		comm.AllreduceSum(sums)

		if rank == 0 {
			rec.iterations = append(rec.iterations, metrics.IterationStats{
				Iteration:         int(iter),
				FrontierNormals:   inputNormals,
				FrontierDelegates: inputDelegates,
				DirDD:             dir0.dirDD,
				DirDN:             dir0.dirDN,
				DirND:             dir0.dirND,
				Exchange:          strategy.String(),
				EdgesScanned:      sums[0],
				BytesNormal:       sums[1],
				BytesNormalRaw:    sums[5],
				BytesDelegate:     boolToBytes(maskExchanged, effMaskBytes),
				Elapsed:           elapsed,
				PredictedRemote:   predicted,
				CodecHidden:       rt.hiddenCodec,
				CodecExposed:      rt.codecSeconds - rt.hiddenCodec + vec[3],
				NVLinkHidden:      rt.hiddenNVLink,
				NVLinkExposed:     rt.nvlinkSeconds - rt.hiddenNVLink,
				Parts:             parts,
			})
			rec.edgesScanned += sums[0]
			rec.dupsRemoved += sums[3]
			rec.simSeconds += elapsed
			rec.parts.Add(parts)
			rec.wire.CompressedBytes += sums[1]
			rec.wire.RawBytes += sums[5]
			rec.wire.SchemeRaw += sums[6]
			rec.wire.SchemeDelta += sums[7]
			rec.wire.SchemeBitmap += sums[8]
			rec.exchange.Messages += sums[9]
			rec.exchange.ForwardedBytes += sums[10]
			rec.wire.MemoHits += sums[11]
			rec.wire.CodecBytes += sums[12]
			rec.wire.CodecSeconds += rt.codecSeconds + vec[3]
			rec.exchange.HiddenCodecSeconds += rt.hiddenCodec
			rec.exchange.PipelineStalls += rt.stalls
			rec.exchange.NVLinkSeconds += rt.nvlinkSeconds
			rec.exchange.HiddenNVLinkSeconds += rt.hiddenNVLink
			rec.exchange.MaskFoldSavedSeconds += vec[2] - rt.maskSecs
			if maskExchanged && e.opts.Compression != wire.ModeOff {
				rec.wire.MaskRawBytes += maskBytes
				rec.wire.MaskWireBytes += effMaskBytes
			}
			rec.exchange.PredictedSeconds += predicted
			if strategy == ExchangeButterfly {
				rec.exchange.ButterflyIterations++
			} else {
				rec.exchange.AllPairsIterations++
			}
			if hr := ex.rounds(); hr > rec.exchange.HopsPerIteration {
				rec.exchange.HopsPerIteration = hr
			}
			if maxMsg > rec.exchange.MaxMessageBytes {
				rec.exchange.MaxMessageBytes = maxMsg
			}
			if maskExchanged {
				rec.delegateComms++
			}
		}
		// The policy's volume feedback is the fixed-width originated bytes
		// (raw sent minus forwarded) — a strategy-independent measure, so a
		// butterfly iteration's relayed volume never inflates the next
		// prediction.
		prevNormals, prevOriginated = inputNormals, sums[5]-sums[10]
		inputNormals, inputDelegates = sums[2], newDelegates
		// Measured feedback for the next decision: the reduced maximum
		// per-rank originated volume over the mean (skew, gated on
		// iterations that carried real payload — framing-dominated rounds
		// would measure noise), and the executed strategy's actual vs
		// raw-predicted exchange time (calibration). All inputs are
		// globally reduced, so every rank's feedback copy stays identical.
		skewMax, skewMean, wireRatio := 0.0, 0.0, 0.0
		if originated := sums[5] - sums[10]; originated >= int64(prank)*skewGateRawBytes {
			skewMax = redMaxOriginated
			skewMean = float64(e.ampBytes(originated)) / float64(prank)
			wireRatio = float64(sums[1]) / float64(sums[5])
		}
		fb.observe(strategy, predicted/fb.calib[strategy], rt.seconds, skewMax, skewMean, wireRatio)

		// Rotate frontiers for the next iteration.
		for _, gs := range myGPUs {
			gs.inFront, gs.outFront = gs.outFront, gs.inFront[:0]
		}
		if sums[13] > 0 {
			cancelled = true
			if rank == 0 {
				rec.cancelled = true
			}
			break
		}
		if sums[4] == 0 {
			break
		}
	}

	// Final calibration factors: recorded only for strategies that actually
	// executed (0 means no feedback accumulated — see ExchangeStats).
	if rank == 0 {
		if rec.exchange.AllPairsIterations > 0 {
			rec.exchange.CalibrationAllPairs = fb.calib[ExchangeAllPairs]
		}
		if rec.exchange.ButterflyIterations > 0 {
			rec.exchange.CalibrationButterfly = fb.calib[ExchangeButterfly]
		}
		rec.exchange.SkewEWMA = fb.skew
		rec.exchange.WireRatioEWMA = fb.wireRatio
	}

	if e.opts.CollectParents && !cancelled {
		e.resolveParents(rank, comm, source)
	}
}

// applyIDs marks received local ids visited at the given depth (duplicates
// and already-visited ids are ignored, as on the receiving GPU). Parents are
// resolved canonically after the traversal (parents.go).
func applyIDs(gs *gpuState, ids []uint32, depth int32) {
	for _, id := range ids {
		if gs.levels[id] == -1 {
			gs.discover(id, depth)
		}
	}
}

func boolToBytes(ok bool, b int64) int64 {
	if ok {
		return b
	}
	return 0
}

// gatherLevels assembles the global hop-distance array from the owning GPUs
// (normal vertices) and the replicated delegate directory.
func (e *Session) gatherLevels() []int32 {
	levels := make([]int32, e.sg.N)
	for i := range levels {
		levels[i] = -1
	}
	for _, gs := range e.gpus {
		for slot := int64(0); slot < gs.pg.NumLocal; slot++ {
			if lvl := gs.levels[slot]; lvl >= 0 {
				v := e.cfg.GlobalID(uint32(slot), gs.pg.Rank, gs.pg.Slot)
				levels[v] = lvl
			}
		}
	}
	for di, v := range e.sg.Sep.DelegateGlobal {
		if lvl := e.gpus[0].delegateLevel[di]; lvl >= 0 {
			levels[v] = lvl
		}
	}
	return levels
}
