package core

import (
	"fmt"
	"testing"

	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// TestHierarchicalFlatEquivalence is the property test of the two-level
// exchange: across GPUs-per-rank {1,2,3,4} × rank counts {3,4,6,8} ×
// strategies × pipelining, the hierarchical default (one merged message per
// destination rank) and the flat ablation (one fragment per source GPU) are
// bit-identical on levels and parents, ship the same raw id volume, and obey
// the message-count identity flat = GPUsPerRank × hierarchical for the fixed
// strategies (the hybrid policy may pick different strategies per iteration
// under the two timing models, so only bit-identity binds it).
func TestHierarchicalFlatEquivalence(t *testing.T) {
	scales := []int{10}
	if !testing.Short() {
		scales = append(scales, 12)
	}
	rankCounts := []int{3, 4, 6, 8}
	gpusPerRank := []int{1, 2, 3, 4}
	configs := []struct {
		name  string
		strat Exchange
		pipe  bool
	}{
		{"allpairs", ExchangeAllPairs, false},
		{"butterfly-seq", ExchangeButterfly, false},
		{"butterfly-pipe", ExchangeButterfly, true},
		{"hybrid-pipe", ExchangeHybrid, true},
	}

	for _, scale := range scales {
		el := rmat.Generate(rmat.DefaultParams(scale))
		th := partition.SuggestThreshold(el.OutDegrees(), el.N/8)
		src := pickSources(el.OutDegrees(), 1, 7)[0]
		for _, ranks := range rankCounts {
			for _, pgpu := range gpusPerRank {
				shape := ClusterShape{Nodes: ranks, RanksPerNode: 1, GPUsPerRank: pgpu}
				for _, cfg := range configs {
					label := fmt.Sprintf("scale=%d shape=%s %s", scale, shape, cfg.name)
					opts := DefaultOptions()
					opts.Compression = wire.ModeAdaptive
					opts.CollectParents = true
					opts.Exchange = cfg.strat
					opts.PipelineHops = cfg.pipe
					opts.WorkAmplification = 1 << 8
					flat := opts
					flat.FlatExchange = true
					rh := runExchange(t, buildEngine(t, el, shape, th, opts), src)
					rf := runExchange(t, buildEngine(t, el, shape, th, flat), src)
					requireIdentical(t, label+" flat vs hier", rh, rf)

					if cfg.strat != ExchangeHybrid {
						// Hybrid may pick different strategies per iteration
						// under the two timing models (butterfly relays change
						// raw volume), so these identities bind fixed
						// strategies only.
						if rh.Wire.RawBytes != rf.Wire.RawBytes {
							t.Fatalf("%s: raw id volume diverged: hier %d vs flat %d bytes",
								label, rh.Wire.RawBytes, rf.Wire.RawBytes)
						}
						want := rh.Exchange.Messages * int64(pgpu)
						if pgpu == 1 {
							want = rh.Exchange.Messages
						}
						if rf.Exchange.Messages != want {
							t.Fatalf("%s: flat sent %d messages, want %d (= %d× hier's %d)",
								label, rf.Exchange.Messages, want, pgpu, rh.Exchange.Messages)
						}
					}
					if pgpu == 1 {
						// Single-GPU ranks have no hierarchy: flat and hier
						// are the same schedule to the last bit.
						if rh.SimSeconds != rf.SimSeconds {
							t.Fatalf("%s: pgpu=1 timing diverged: %g vs %g s",
								label, rh.SimSeconds, rf.SimSeconds)
						}
						if rh.Exchange.NVLinkSeconds != 0 || rf.Exchange.NVLinkSeconds != 0 {
							t.Fatalf("%s: pgpu=1 charged NVLink time (%g / %g s)",
								label, rh.Exchange.NVLinkSeconds, rf.Exchange.NVLinkSeconds)
						}
					} else {
						if rh.Exchange.NVLinkSeconds <= 0 {
							t.Fatalf("%s: hierarchical run charged no NVLink time", label)
						}
						if rf.Exchange.NVLinkSeconds != 0 || rf.Exchange.HiddenNVLinkSeconds != 0 {
							t.Fatalf("%s: flat run charged NVLink time (%g s, %g s hidden)",
								label, rf.Exchange.NVLinkSeconds, rf.Exchange.HiddenNVLinkSeconds)
						}
					}
					if h := rh.Exchange.HiddenNVLinkSeconds; h < 0 || h > rh.Exchange.NVLinkSeconds+1e-12 {
						t.Fatalf("%s: hidden NVLink %g s outside [0, %g]",
							label, h, rh.Exchange.NVLinkSeconds)
					}
					if !cfg.pipe && rh.Exchange.HiddenNVLinkSeconds != 0 {
						t.Fatalf("%s: sequential hops hid %g s of NVLink",
							label, rh.Exchange.HiddenNVLinkSeconds)
					}
				}
			}
		}
	}
}
