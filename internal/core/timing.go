package core

import (
	"math"

	"gcbfs/internal/metrics"
	"gcbfs/internal/mpi"
)

// This file converts counted work and bytes into simulated iteration times:
// stream combination on a GPU, the compute/communication overlap model
// (§VI-B reports ~10% total savings from overlap), and the float max
// reduction used to take per-iteration maxima across ranks.

// streamCombine merges the two cudaStream times of one GPU. The streams run
// concurrently but share SMs, so the result lies between max and sum;
// charging max plus a quarter of the min matches the partial overlap the
// paper exploits (Fig. 3).
func streamCombine(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	return a + 0.25*b
}

// iterElapsed applies the overlap model to one iteration's reduced parts.
// Normal-exchange and delegate-reduce time can hide under computation; the
// non-blocking reduction (IR) hides much more of the delegate phase, which
// is its entire point (§VI-B) — it pays for that with the Iallreduce
// bandwidth penalty charged in simnet.
func (e *Session) iterElapsed(parts metrics.Breakdown) float64 {
	return iterElapsedFor(&e.opts, e.shape, parts)
}

// iterElapsedFor is the shared overlap model, parameterized so the
// single-query Session and the multi-source sweepSession charge identically.
func iterElapsedFor(opts *Options, shape ClusterShape, parts metrics.Breakdown) float64 {
	f := opts.OverlapFactor
	hidN := f * math.Min(parts.Computation, parts.RemoteNormal)
	remaining := parts.Computation - hidN
	fD := f
	if !opts.BlockingReduce {
		fD = 0.85
	}
	hidD := fD * math.Min(remaining, parts.RemoteDelegate)
	return parts.Sum() - hidN - hidD + syncOverheadFor(opts, shape)
}

// syncOverheadFor charges the per-iteration control collectives (termination
// flag, workload sums) as small tree-latency messages. This fixed cost is
// what dominates long-tail graphs (§VI-D: per-iteration time "not much more
// than the per-iteration overhead").
func syncOverheadFor(opts *Options, shape ClusterShape) float64 {
	ranks := shape.Ranks()
	if ranks <= 1 {
		return 0
	}
	stages := 2 * math.Ceil(math.Log2(float64(ranks)))
	return 2 * stages * opts.Net.IB.Latency
}

// hierExchangeFor reports whether the two-level hierarchical exchange is in
// effect: the rank's GPUs aggregate their bins over NVLink into one merged
// message per destination rank, and the NVLink copies ride the exchange
// schedule instead of LocalComm. At GPUsPerRank 1 the flat and hierarchical
// shapes coincide, so the flat (legacy) charging applies.
func hierExchangeFor(opts *Options, shape ClusterShape) bool {
	return !opts.FlatExchange && shape.GPUsPerRank > 1
}

func (e *Session) hierExchange() bool {
	return hierExchangeFor(&e.opts, e.shape)
}

// aggregationBytesFor is the NVLink volume of the hierarchical intra-rank
// aggregation for ownRaw originated fixed-width bytes: each GPU's share
// bound for the rank's merge lanes crosses NVLink once — (pgpu−1)/pgpu of
// the originated volume — and twice when Local-All2All is off, where the
// copies bounce through CPU staging buffers instead of peer-to-peer (the
// L option keeps its meaning under the hierarchy).
func aggregationBytesFor(opts *Options, shape ClusterShape, ownRaw int64) int64 {
	pgpu := int64(shape.GPUsPerRank)
	if pgpu <= 1 || ownRaw <= 0 {
		return 0
	}
	agg := ownRaw * (pgpu - 1) / pgpu
	if !opts.LocalAll2All {
		agg *= 2
	}
	return agg
}

// effMessageBytes estimates the per-message payload of the normal exchange:
// total volume divided by the number of communicating GPU pairs, capped at
// the configured packing size. Local-All2All's benefit appears here — it
// cuts pairs from p_gpu²·(p_rank-1) to p_gpu·(p_rank-1) per rank, making
// messages bigger and the NIC more efficient (§V-B). The hierarchical
// exchange goes further: one merged message per destination rank, so pairs
// fall to p_rank−1 regardless of GPU count.
func (e *Session) effMessageBytes(totalBytes int64) int64 {
	return effMessageBytesFor(&e.opts, e.shape, totalBytes)
}

// effMessageBytesFor is the shared per-message payload estimate.
func effMessageBytesFor(opts *Options, shape ClusterShape, totalBytes int64) int64 {
	if totalBytes <= 0 {
		return 0
	}
	pairs := effPairsFor(opts, shape)
	// Ceiling split: the volume divides across exactly `pairs` messages, so
	// the implied message count (ceil(total/msg) inside PointToPoint) is the
	// pair count itself — a floor here would under-size the message and
	// charge a spurious extra latency floor whenever the volume does not
	// divide evenly, pure quantization noise once the hierarchical exchange
	// cuts the pair count to p_rank−1.
	msg := (totalBytes + pairs - 1) / pairs
	if msg < 1 {
		msg = 1
	}
	if msg > opts.MessageBytes {
		msg = opts.MessageBytes
	}
	return msg
}

// effPairsFor counts the communicating pairs per rank behind the normal
// exchange's message split — the denominator of effMessageBytesFor.
func effPairsFor(opts *Options, shape ClusterShape) int64 {
	pgpu := int64(shape.GPUsPerRank)
	prank := int64(shape.Ranks())
	pairs := pgpu * (prank - 1)
	if hierExchangeFor(opts, shape) {
		pairs = prank - 1
	} else if !opts.LocalAll2All {
		pairs *= pgpu
	}
	if pairs <= 0 {
		pairs = 1
	}
	return pairs
}

// maxFloatsAllreduce reduces a non-negative float vector to its element-wise
// maximum across ranks. Non-negative IEEE-754 doubles order identically to
// their bit patterns, so the int64 max-allreduce applies directly. The
// caller-owned scratch holds the bit-pattern view; the grown slice is
// returned for reuse.
func maxFloatsAllreduce(comm *mpi.Comm, vals []float64, scratch []int64) []int64 {
	bits := grownInt64(scratch, len(vals))
	for i, v := range vals {
		bits[i] = int64(math.Float64bits(v))
	}
	comm.AllreduceMax(bits)
	for i := range vals {
		vals[i] = math.Float64frombits(uint64(bits[i]))
	}
	return bits
}
