package core

import (
	"fmt"
	"testing"

	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// runExchange executes one run with the given strategy and full result
// collection.
func runExchange(t *testing.T, e *Engine, src int64) *metrics.RunResult {
	t.Helper()
	res, err := e.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireIdentical asserts two runs agree bit-for-bit on levels and parents.
func requireIdentical(t *testing.T, label string, a, b *metrics.RunResult) {
	t.Helper()
	if a.Iterations != b.Iterations {
		t.Fatalf("%s: iterations %d vs %d", label, a.Iterations, b.Iterations)
	}
	for v := range a.Levels {
		if a.Levels[v] != b.Levels[v] {
			t.Fatalf("%s: vertex %d level %d vs %d", label, v, a.Levels[v], b.Levels[v])
		}
	}
	if (a.Parents == nil) != (b.Parents == nil) {
		t.Fatalf("%s: parents collected on one side only", label)
	}
	for v := range a.Parents {
		if a.Parents[v] != b.Parents[v] {
			t.Fatalf("%s: vertex %d parent %d vs %d", label, v, a.Parents[v], b.Parents[v])
		}
	}
	if a.EdgesScanned != b.EdgesScanned {
		t.Fatalf("%s: edges scanned %d vs %d", label, a.EdgesScanned, b.EdgesScanned)
	}
}

// TestExchangeEquivalence: across scales, cluster shapes (power-of-two and
// non-power-of-two rank counts) and compression modes, the butterfly
// produces levels and parents bit-identical to all-pairs — there is no
// fallback anymore, the generalized butterfly runs everywhere.
func TestExchangeEquivalence(t *testing.T) {
	scales := []int{10, 13}
	if !testing.Short() {
		scales = append(scales, 16)
	}
	shapes := []ClusterShape{
		{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}, // 4 ranks
		{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 1}, // 8 ranks
		{Nodes: 3, RanksPerNode: 1, GPUsPerRank: 2}, // 3 ranks → cleanup hops
	}
	modes := []wire.Mode{wire.ModeOff, wire.ModeAdaptive, wire.ModeDelta}

	for _, scale := range scales {
		el := rmat.Generate(rmat.DefaultParams(scale))
		// Tight delegate cap so the normal exchange carries real volume.
		th := partition.SuggestThreshold(el.OutDegrees(), el.N/8)
		src := pickSources(el.OutDegrees(), 1, 42)[0]
		for _, shape := range shapes {
			for _, mode := range modes {
				for _, uniq := range []bool{false, true} {
					if uniq && mode == wire.ModeOff {
						continue // covered by existing uniquify tests
					}
					label := fmt.Sprintf("scale=%d shape=%s mode=%v uniq=%v", scale, shape, mode, uniq)
					opts := DefaultOptions()
					opts.Compression = mode
					opts.Uniquify = uniq
					opts.CollectParents = true
					ap := opts
					ap.Exchange = ExchangeAllPairs
					bf := opts
					bf.Exchange = ExchangeButterfly
					ra := runExchange(t, buildEngine(t, el, shape, th, ap), src)
					rb := runExchange(t, buildEngine(t, el, shape, th, bf), src)
					requireIdentical(t, label, ra, rb)
					if ra.Exchange.Strategy != "allpairs" || ra.Exchange.ButterflyIterations != 0 {
						t.Fatalf("%s: all-pairs run reported %q with %d butterfly iterations", label,
							ra.Exchange.Strategy, ra.Exchange.ButterflyIterations)
					}
					if rb.Exchange.Strategy != "butterfly" || rb.Exchange.AllPairsIterations != 0 {
						t.Fatalf("%s: butterfly run reported %q with %d all-pairs iterations", label,
							rb.Exchange.Strategy, rb.Exchange.AllPairsIterations)
					}
					if got := int64(rb.Iterations); rb.Exchange.ButterflyIterations != got {
						t.Fatalf("%s: butterfly iterations %d, want %d", label,
							rb.Exchange.ButterflyIterations, got)
					}
				}
			}
		}
	}
}

// TestButterflyNonPowerOfTwo is the generalized-butterfly property test: for
// every remainder shape p ∈ {3, 5, 6, 7, 12} across scales 10–14 and
// compression modes, the two-phase (cleanup hops + hypercube) exchange is
// bit-identical to all-pairs on levels AND parents, runs as a butterfly on
// every iteration, and actually relays bytes.
func TestButterflyNonPowerOfTwo(t *testing.T) {
	shapes := []ClusterShape{
		{Nodes: 3, RanksPerNode: 1, GPUsPerRank: 1}, // 3 ranks, q=2
		{Nodes: 5, RanksPerNode: 1, GPUsPerRank: 1}, // 5 ranks, q=4
		{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 2}, // 6 ranks, q=4
		{Nodes: 7, RanksPerNode: 1, GPUsPerRank: 1}, // 7 ranks, q=4 (max remainder)
		{Nodes: 6, RanksPerNode: 2, GPUsPerRank: 1}, // 12 ranks, q=8
	}
	scales := []int{10, 12, 14}
	if testing.Short() {
		scales = []int{10, 12}
	}
	modes := []wire.Mode{wire.ModeOff, wire.ModeAdaptive}

	for _, scale := range scales {
		el := rmat.Generate(rmat.DefaultParams(scale))
		th := partition.SuggestThreshold(el.OutDegrees(), el.N/8)
		src := pickSources(el.OutDegrees(), 1, 7)[0]
		for _, shape := range shapes {
			for _, mode := range modes {
				label := fmt.Sprintf("scale=%d shape=%s mode=%v", scale, shape, mode)
				opts := DefaultOptions()
				opts.Compression = mode
				opts.CollectParents = true
				ap := opts
				ap.Exchange = ExchangeAllPairs
				bf := opts
				bf.Exchange = ExchangeButterfly
				ra := runExchange(t, buildEngine(t, el, shape, th, ap), src)
				rb := runExchange(t, buildEngine(t, el, shape, th, bf), src)
				requireIdentical(t, label, ra, rb)
				if rb.Exchange.Strategy != "butterfly" || rb.Exchange.AllPairsIterations != 0 {
					t.Fatalf("%s: expected pure butterfly, got %q with %d all-pairs iterations",
						label, rb.Exchange.Strategy, rb.Exchange.AllPairsIterations)
				}
				if rb.Exchange.ForwardedBytes <= 0 {
					t.Fatalf("%s: butterfly forwarded no bytes", label)
				}
				if ra.Exchange.Messages <= rb.Exchange.Messages {
					t.Fatalf("%s: butterfly sent %d messages, not fewer than all-pairs' %d",
						label, rb.Exchange.Messages, ra.Exchange.Messages)
				}
			}
		}
	}
}

// TestHybridMixedSchedule: under amplification the hybrid policy must
// actually mix strategies within single runs (butterfly on latency-bound
// iterations, all-pairs on volume-bound ones) while staying bit-identical
// to both fixed policies — the per-iteration-mixed-schedule property.
func TestHybridMixedSchedule(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(13))
	th := partition.SuggestThreshold(el.OutDegrees(), el.N/8)
	srcs := pickSources(el.OutDegrees(), 2, 99)
	shapes := []ClusterShape{
		{Nodes: 8, RanksPerNode: 2, GPUsPerRank: 1}, // 16 ranks
		{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 1}, // 6 ranks (cleanup hops)
	}
	for _, shape := range shapes {
		var mixed bool
		for _, src := range srcs {
			for _, mode := range []wire.Mode{wire.ModeOff, wire.ModeAdaptive} {
				label := fmt.Sprintf("shape=%s mode=%v src=%d", shape, mode, src)
				opts := DefaultOptions()
				opts.Compression = mode
				opts.CollectParents = true
				opts.WorkAmplification = 1 << 12
				hy := opts
				hy.Exchange = ExchangeHybrid
				ap := opts
				ap.Exchange = ExchangeAllPairs
				bf := opts
				bf.Exchange = ExchangeButterfly
				rh := runExchange(t, buildEngine(t, el, shape, th, hy), src)
				requireIdentical(t, label+" vs allpairs", runExchange(t, buildEngine(t, el, shape, th, ap), src), rh)
				requireIdentical(t, label+" vs butterfly", runExchange(t, buildEngine(t, el, shape, th, bf), src), rh)
				if rh.Exchange.Strategy != "hybrid" {
					t.Fatalf("%s: strategy %q, want hybrid", label, rh.Exchange.Strategy)
				}
				x := rh.Exchange
				if x.AllPairsIterations+x.ButterflyIterations != int64(rh.Iterations) {
					t.Fatalf("%s: iteration split %d+%d does not cover %d iterations",
						label, x.AllPairsIterations, x.ButterflyIterations, rh.Iterations)
				}
				if x.AllPairsIterations > 0 && x.ButterflyIterations > 0 {
					mixed = true
				}
				// Per-iteration records must agree with the counters.
				var ap2, bf2 int64
				for _, it := range rh.PerIteration {
					switch it.Exchange {
					case "allpairs":
						ap2++
					case "butterfly":
						bf2++
					default:
						t.Fatalf("%s: iteration %d recorded strategy %q", label, it.Iteration, it.Exchange)
					}
				}
				if ap2 != x.AllPairsIterations || bf2 != x.ButterflyIterations {
					t.Fatalf("%s: per-iteration records %d/%d disagree with counters %d/%d",
						label, ap2, bf2, x.AllPairsIterations, x.ButterflyIterations)
				}
			}
		}
		if !mixed {
			t.Fatalf("shape %s: hybrid never mixed strategies within a run — policy inert", shape)
		}
	}
}

// TestExchangeMessageCounts checks the headline claim: per iteration, each
// rank sends exactly p−1 messages under all-pairs; the power-of-two
// butterfly sends log2(p) per rank, and the generalized form adds one pre
// and one post cleanup message per remainder rank. Both butterflies pay
// with forwarded bytes.
func TestExchangeMessageCounts(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(12))
	th := partition.SuggestThreshold(el.OutDegrees(), el.N/8)

	run := func(shape ClusterShape, x Exchange) *metrics.RunResult {
		opts := DefaultOptions()
		opts.Exchange = x
		opts.Compression = wire.ModeAdaptive
		return runExchange(t, buildEngine(t, el, shape, th, opts), 1)
	}

	// Power-of-two: 8 ranks.
	shape := ClusterShape{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 1}
	prank := int64(shape.Ranks())
	ap := run(shape, ExchangeAllPairs)
	bf := run(shape, ExchangeButterfly)
	iters := int64(ap.Iterations)
	if got, want := ap.Exchange.Messages, iters*prank*(prank-1); got != want {
		t.Fatalf("all-pairs messages %d, want %d (p−1 per rank per iteration)", got, want)
	}
	if got, want := bf.Exchange.Messages, iters*prank*3; got != want {
		t.Fatalf("butterfly messages %d, want %d (log2(p) per rank per iteration)", got, want)
	}
	if bf.Exchange.HopsPerIteration != 3 {
		t.Fatalf("butterfly hops/iteration = %d, want 3", bf.Exchange.HopsPerIteration)
	}
	if ap.Exchange.ForwardedBytes != 0 {
		t.Fatalf("all-pairs forwarded %d bytes, want 0", ap.Exchange.ForwardedBytes)
	}
	if bf.Exchange.ForwardedBytes <= 0 {
		t.Fatal("butterfly forwarded no bytes — relaying never happened")
	}
	if bf.Exchange.MaxMessageBytes <= ap.Exchange.MaxMessageBytes {
		t.Fatalf("butterfly max message %d not above all-pairs %d — aggregation missing",
			bf.Exchange.MaxMessageBytes, ap.Exchange.MaxMessageBytes)
	}

	// Non-power-of-two: 6 ranks = q·log2(q) hypercube messages plus one pre
	// and one post message per remainder rank, per iteration.
	shape6 := ClusterShape{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 1}
	bf6 := run(shape6, ExchangeButterfly)
	q, rem := int64(4), int64(2)
	perIter := q*2 + 2*rem // log2(4)=2 hops
	if got, want := bf6.Exchange.Messages, int64(bf6.Iterations)*perIter; got != want {
		t.Fatalf("6-rank butterfly messages %d, want %d (q·log2(q) + 2·remainder per iteration)",
			got, want)
	}
	if bf6.Exchange.HopsPerIteration != 4 {
		t.Fatalf("6-rank butterfly hops/iteration = %d, want 4 (pre + 2 hypercube + post)",
			bf6.Exchange.HopsPerIteration)
	}
}

// TestExchangeSingleAndTwoRanks covers the degenerate hypercubes: one rank
// (zero hops) and two ranks (one hop).
func TestExchangeSingleAndTwoRanks(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(10))
	for _, shape := range []ClusterShape{
		{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 2},
		{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 2},
	} {
		opts := DefaultOptions()
		opts.Exchange = ExchangeButterfly
		e := buildEngine(t, el, shape, 64, opts)
		checkAgainstSerial(t, el, e, 5)
	}
}

func TestParseExchange(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Exchange
		ok   bool
	}{
		{"", ExchangeAllPairs, true},
		{"allpairs", ExchangeAllPairs, true},
		{"all-pairs", ExchangeAllPairs, true},
		{"butterfly", ExchangeButterfly, true},
		{"hybrid", ExchangeHybrid, true},
		{"hypercube", ExchangeAllPairs, false},
	} {
		got, err := ParseExchange(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseExchange(%q) = %v, %v", tc.in, got, err)
		}
	}
	if ExchangeButterfly.String() != "butterfly" || ExchangeAllPairs.String() != "allpairs" ||
		ExchangeHybrid.String() != "hybrid" {
		t.Fatal("Exchange.String spelling changed")
	}
}

func TestEngineRejectsBadExchange(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(10))
	shape := ClusterShape{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}
	sep := partition.Separate(el, 32)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Exchange = Exchange(7)
	if _, err := NewEngine(sg, shape, opts); err == nil {
		t.Fatal("engine accepted an invalid exchange strategy")
	}
}
