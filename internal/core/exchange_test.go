package core

import (
	"fmt"
	"testing"

	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// runExchange executes one run with the given strategy and full result
// collection.
func runExchange(t *testing.T, e *Engine, src int64) *metrics.RunResult {
	t.Helper()
	res, err := e.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireIdentical asserts two runs agree bit-for-bit on levels and parents.
func requireIdentical(t *testing.T, label string, a, b *metrics.RunResult) {
	t.Helper()
	if a.Iterations != b.Iterations {
		t.Fatalf("%s: iterations %d vs %d", label, a.Iterations, b.Iterations)
	}
	for v := range a.Levels {
		if a.Levels[v] != b.Levels[v] {
			t.Fatalf("%s: vertex %d level %d vs %d", label, v, a.Levels[v], b.Levels[v])
		}
	}
	if (a.Parents == nil) != (b.Parents == nil) {
		t.Fatalf("%s: parents collected on one side only", label)
	}
	for v := range a.Parents {
		if a.Parents[v] != b.Parents[v] {
			t.Fatalf("%s: vertex %d parent %d vs %d", label, v, a.Parents[v], b.Parents[v])
		}
	}
	if a.EdgesScanned != b.EdgesScanned {
		t.Fatalf("%s: edges scanned %d vs %d", label, a.EdgesScanned, b.EdgesScanned)
	}
}

// TestExchangeEquivalence is the tentpole's property test: across scales,
// cluster shapes (power-of-two and odd rank counts) and compression modes,
// the butterfly produces levels and parents bit-identical to all-pairs.
func TestExchangeEquivalence(t *testing.T) {
	scales := []int{10, 13}
	if !testing.Short() {
		scales = append(scales, 16)
	}
	shapes := []ClusterShape{
		{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}, // 4 ranks
		{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 1}, // 8 ranks
		{Nodes: 3, RanksPerNode: 1, GPUsPerRank: 2}, // 3 ranks → fallback
	}
	modes := []wire.Mode{wire.ModeOff, wire.ModeAdaptive, wire.ModeDelta}

	for _, scale := range scales {
		el := rmat.Generate(rmat.DefaultParams(scale))
		// Tight delegate cap so the normal exchange carries real volume.
		th := partition.SuggestThreshold(el.OutDegrees(), el.N/8)
		src := pickSources(el.OutDegrees(), 1, 42)[0]
		for _, shape := range shapes {
			for _, mode := range modes {
				for _, uniq := range []bool{false, true} {
					if uniq && mode == wire.ModeOff {
						continue // covered by existing uniquify tests
					}
					label := fmt.Sprintf("scale=%d shape=%s mode=%v uniq=%v", scale, shape, mode, uniq)
					opts := DefaultOptions()
					opts.Compression = mode
					opts.Uniquify = uniq
					opts.CollectParents = true
					ap := opts
					ap.Exchange = ExchangeAllPairs
					bf := opts
					bf.Exchange = ExchangeButterfly
					ra := runExchange(t, buildEngine(t, el, shape, th, ap), src)
					rb := runExchange(t, buildEngine(t, el, shape, th, bf), src)
					requireIdentical(t, label, ra, rb)
					if ra.Exchange.Strategy != "allpairs" || ra.Exchange.Fallback != "" {
						t.Fatalf("%s: all-pairs run reported %q/%q", label,
							ra.Exchange.Strategy, ra.Exchange.Fallback)
					}
					prank := shape.Ranks()
					if prank&(prank-1) == 0 {
						if rb.Exchange.Strategy != "butterfly" || rb.Exchange.Fallback != "" {
							t.Fatalf("%s: butterfly run reported %q/%q", label,
								rb.Exchange.Strategy, rb.Exchange.Fallback)
						}
					} else if rb.Exchange.Strategy != "allpairs" || rb.Exchange.Fallback == "" {
						t.Fatalf("%s: expected recorded fallback for %d ranks, got %q/%q",
							label, prank, rb.Exchange.Strategy, rb.Exchange.Fallback)
					}
				}
			}
		}
	}
}

// TestExchangeFallbackNonPowerOfTwo is the regression test for the fallback
// path: a butterfly request on 6 ranks must run all-pairs, record why, and
// still validate against the serial reference.
func TestExchangeFallbackNonPowerOfTwo(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(11))
	shape := ClusterShape{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 1} // 6 ranks
	th := partition.SuggestThreshold(el.OutDegrees(), el.N/8)
	opts := DefaultOptions()
	opts.Exchange = ExchangeButterfly
	e := buildEngine(t, el, shape, th, opts)
	res := checkAgainstSerial(t, el, e, 3)
	if res.Exchange.Strategy != "allpairs" {
		t.Fatalf("strategy %q, want allpairs fallback", res.Exchange.Strategy)
	}
	if res.Exchange.Fallback == "" {
		t.Fatal("fallback reason not recorded")
	}
	if res.Exchange.HopsPerIteration != 1 {
		t.Fatalf("fallback hops/iteration = %d, want 1", res.Exchange.HopsPerIteration)
	}
}

// TestExchangeMessageCounts checks the headline claim: per iteration, each
// rank sends exactly p−1 messages under all-pairs and log2(p) under the
// butterfly, and the butterfly pays for it with forwarded bytes.
func TestExchangeMessageCounts(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(12))
	shape := ClusterShape{Nodes: 4, RanksPerNode: 2, GPUsPerRank: 1} // 8 ranks
	th := partition.SuggestThreshold(el.OutDegrees(), el.N/8)
	prank := int64(shape.Ranks())

	run := func(x Exchange) *metrics.RunResult {
		opts := DefaultOptions()
		opts.Exchange = x
		opts.Compression = wire.ModeAdaptive
		return runExchange(t, buildEngine(t, el, shape, th, opts), 1)
	}
	ap := run(ExchangeAllPairs)
	bf := run(ExchangeButterfly)

	iters := int64(ap.Iterations)
	if got, want := ap.Exchange.Messages, iters*prank*(prank-1); got != want {
		t.Fatalf("all-pairs messages %d, want %d (p−1 per rank per iteration)", got, want)
	}
	if got, want := bf.Exchange.Messages, iters*prank*3; got != want {
		t.Fatalf("butterfly messages %d, want %d (log2(p) per rank per iteration)", got, want)
	}
	if bf.Exchange.HopsPerIteration != 3 {
		t.Fatalf("butterfly hops/iteration = %d, want 3", bf.Exchange.HopsPerIteration)
	}
	if ap.Exchange.ForwardedBytes != 0 {
		t.Fatalf("all-pairs forwarded %d bytes, want 0", ap.Exchange.ForwardedBytes)
	}
	if bf.Exchange.ForwardedBytes <= 0 {
		t.Fatal("butterfly forwarded no bytes — relaying never happened")
	}
	if bf.Exchange.MaxMessageBytes <= ap.Exchange.MaxMessageBytes {
		t.Fatalf("butterfly max message %d not above all-pairs %d — aggregation missing",
			bf.Exchange.MaxMessageBytes, ap.Exchange.MaxMessageBytes)
	}
}

// TestExchangeSingleAndTwoRanks covers the degenerate hypercubes: one rank
// (zero hops) and two ranks (one hop).
func TestExchangeSingleAndTwoRanks(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(10))
	for _, shape := range []ClusterShape{
		{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 2},
		{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 2},
	} {
		opts := DefaultOptions()
		opts.Exchange = ExchangeButterfly
		e := buildEngine(t, el, shape, 64, opts)
		checkAgainstSerial(t, el, e, 5)
	}
}

func TestParseExchange(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Exchange
		ok   bool
	}{
		{"", ExchangeAllPairs, true},
		{"allpairs", ExchangeAllPairs, true},
		{"all-pairs", ExchangeAllPairs, true},
		{"butterfly", ExchangeButterfly, true},
		{"hypercube", ExchangeAllPairs, false},
	} {
		got, err := ParseExchange(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseExchange(%q) = %v, %v", tc.in, got, err)
		}
	}
	if ExchangeButterfly.String() != "butterfly" || ExchangeAllPairs.String() != "allpairs" {
		t.Fatal("Exchange.String spelling changed")
	}
}

func TestEngineRejectsBadExchange(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(10))
	shape := ClusterShape{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 1}
	sep := partition.Separate(el, 32)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Exchange = Exchange(7)
	if _, err := NewEngine(sg, shape, opts); err == nil {
		t.Fatal("engine accepted an invalid exchange strategy")
	}
}
