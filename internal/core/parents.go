package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"gcbfs/internal/frontier"
	"gcbfs/internal/mpi"
	"gcbfs/internal/wire"
)

// Canonical BFS-tree construction (paper §VI-A3). The paper outputs hop
// distances and argues a tree costs little extra: "only the destination
// vertices of nn edges, without possible delegate parents, would need to
// communicate their parent information at the end of BFS". This file goes one
// step further than recording discovery-order parents: EVERY parent —
// delegate or normal, local or remote — is resolved after the traversal as
// the minimum global id among the vertex's neighbors exactly one level
// closer. The tree is therefore a pure function of the hop distances: any
// traversal that produces the same levels (any exchange strategy, any kernel
// direction schedule, and crucially the multi-source shared sweep) yields a
// bit-identical tree.
//
//  1. Delegate parents: every GPU scans its local dd/dn adjacency of each
//     visited delegate for neighbors exactly one level closer; the smallest
//     candidate global id wins via an int64 min-allreduce, so all ranks
//     agree deterministically.
//  2. Normal parents, local candidates: one forward scan per GPU folds dn
//     edges (delegate one level up → local child) and same-GPU nn edges
//     into a running min per local vertex.
//  3. Normal parents, remote candidates: each GPU replays its outgoing nn
//     edges once, sending (destLocal, senderLevel+1, senderGlobal) pairs;
//     receivers fold the smallest valid candidate. Volume ≤ |Enn| pairs,
//     run once — the paper's "low cost" claim.
//
// Resolution traffic is reported (ParentPairs) but excluded from simulated
// BFS time, matching the paper's reporting of distance-only timings.

// parentLevelBits packs the sender's claimed child level into the LOW bits
// of a pair value with the parent global id above it. Low-bits level keeps
// the value small as an integer, so the pairs codec's uvarint values shrink
// with graph size instead of always paying for the high level bits. Vertex
// ids must stay below 2^44 (far above the paper's scale 40 ceiling) and BFS
// depth below 2^20 (far above the §VI-D long-tail graphs' hundreds of
// iterations).
const parentLevelBits = 20

// parentTagBase is the message tag of the resolution exchange, outside the
// iteration tag space. Sweep queries offset it by their query index so K
// back-to-back resolutions never cross wires.
const parentTagBase = 1 << 30

// queryTree is one query's traversal outcome expressed as plain slices, all
// indexed by global GPU index, so the single-query Session and the
// multi-source sweep resolve and gather parents through the same code. Each
// rank reads and writes only its own GPUs' rows (plus the replicated
// delegate levels), exactly like the per-GPU state it views.
type queryTree struct {
	levels  [][]int32 // local slot → hop distance, -1 unvisited
	dLevel  [][]int32 // delegate id → hop distance (this GPU's replica)
	parents [][]int64 // out: local slot → parent global id, pre-filled -1
	// dParents is the caller-owned delegate-parent directory (len d); rank 0
	// fills it during resolution.
	dParents []int64
}

// parentCounters routes the resolution's traffic accounting to the owning
// session's atomics.
type parentCounters struct {
	pairs, rawBytes, wireBytes *int64
}

// parentScratch is the per-rank reusable state of one resolution pass.
type parentScratch struct {
	cand []int64
	bins *frontier.PairBins
}

// resolveQueryParents runs the canonical resolution for one query on this
// rank. All ranks participate (collectives inside, Barrier at the end); rank
// 0 publishes the delegate directory into q.dParents.
func (pe *planEnv) resolveQueryParents(mode wire.Mode, rank int, comm *mpi.Comm, source int64, q *queryTree, tag int, ps *parentScratch, pc parentCounters) {
	pe.resolveDelegateParents(rank, comm, source, q, ps)
	pe.resolveNormalParents(mode, rank, comm, q, tag, ps, pc)

	// Every visited normal vertex below the root must now have a parent:
	// whatever edge discovered it was covered by the dn scan, the same-GPU
	// nn fold, or the remote nn replay.
	pgpu := pe.shape.GPUsPerRank
	for g := rank * pgpu; g < (rank+1)*pgpu; g++ {
		levels, parents := q.levels[g], q.parents[g]
		pg := pe.sg.GPUs[g]
		for slot := range levels {
			if levels[slot] >= 1 && parents[slot] == -1 {
				panic(fmt.Sprintf("core: vertex %d on GPU %d missing parent after resolution",
					pe.cfg.GlobalID(uint32(slot), pg.Rank, pg.Slot), pg.GPU))
			}
		}
	}
}

func (pe *planEnv) resolveDelegateParents(rank int, comm *mpi.Comm, source int64, q *queryTree, ps *parentScratch) {
	if pe.d == 0 {
		return
	}
	const unset = math.MaxInt64
	if cap(ps.cand) < int(pe.d) {
		ps.cand = make([]int64, pe.d)
	}
	cand := ps.cand[:pe.d]
	for i := range cand {
		cand[i] = unset
	}
	sep := pe.sg.Sep
	pgpu := pe.shape.GPUsPerRank
	for g := rank * pgpu; g < (rank+1)*pgpu; g++ {
		pg := pe.sg.GPUs[g]
		dLevel, levels := q.dLevel[g], q.levels[g]
		for di := int64(0); di < pe.d; di++ {
			lvl := dLevel[di]
			switch {
			case lvl < 0:
				continue
			case lvl == 0:
				// Only the source sits at level 0.
				cand[di] = source
			default:
				for _, dv := range pg.DD.Neighbors(di) {
					if dLevel[dv] == lvl-1 {
						if g := sep.DelegateGlobal[dv]; g < cand[di] {
							cand[di] = g
						}
					}
				}
				for _, lv := range pg.DN.Neighbors(di) {
					if levels[lv] == lvl-1 {
						if g := pe.cfg.GlobalID(lv, pg.Rank, pg.Slot); g < cand[di] {
							cand[di] = g
						}
					}
				}
			}
		}
	}
	comm.AllreduceMin(cand)
	if rank == 0 {
		dl := q.dLevel[0]
		for di := range cand {
			v := cand[di]
			if v == unset {
				if dl[di] >= 0 {
					panic(fmt.Sprintf("core: visited delegate %d has no parent candidate", di))
				}
				v = -1
			}
			q.dParents[di] = v
		}
	}
}

// resolveNormalParents folds the local candidate passes (source seed, dn
// forward scan, same-GPU nn edges) and runs the remote nn replay exchange.
func (pe *planEnv) resolveNormalParents(mode wire.Mode, rank int, comm *mpi.Comm, q *queryTree, tag int, ps *parentScratch, pc parentCounters) {
	pgpu := pe.shape.GPUsPerRank
	prank := pe.shape.Ranks()
	p64 := int64(pe.p)
	myStart := rank * pgpu
	sep := pe.sg.Sep

	if ps.bins == nil {
		ps.bins = frontier.NewPairBins(pe.p)
	} else {
		ps.bins.Reset()
	}
	bins := ps.bins
	var pairs int64
	for g := myStart; g < myStart+pgpu; g++ {
		pg := pe.sg.GPUs[g]
		levels, parents := q.levels[g], q.parents[g]
		dLevel := q.dLevel[g]

		// dn candidates: a delegate one level up is a candidate parent of
		// each of its local dn children.
		for di := int64(0); di < pe.d; di++ {
			dl := dLevel[di]
			if dl < 0 {
				continue
			}
			dg := sep.DelegateGlobal[di]
			for _, lv := range pg.DN.Neighbors(di) {
				if levels[lv] == dl+1 {
					if cur := parents[lv]; cur == -1 || dg < cur {
						parents[lv] = dg
					}
				}
			}
		}

		// nn candidates: replay outgoing nn edges once, claiming child level
		// = my level + 1; same-GPU destinations fold directly, everything
		// else (same-rank peers included) goes through the pair bins.
		for slot := int64(0); slot < pg.NumLocal; slot++ {
			lvl := levels[slot]
			if lvl == 0 {
				// The root: a normal source is its own parent.
				parents[slot] = pe.cfg.GlobalID(uint32(slot), pg.Rank, pg.Slot)
			}
			if lvl < 0 || pg.NN.Degree(slot) == 0 {
				continue
			}
			if lvl+1 >= 1<<parentLevelBits {
				panic(fmt.Sprintf("core: BFS level %d exceeds the pairs-codec ceiling", lvl))
			}
			uGlobal := pe.cfg.GlobalID(uint32(slot), pg.Rank, pg.Slot)
			if uGlobal >= 1<<(64-parentLevelBits) {
				panic(fmt.Sprintf("core: vertex id %d exceeds the pairs-codec ceiling", uGlobal))
			}
			val := uint64(uGlobal)<<parentLevelBits | uint64(lvl+1)
			childLevel := lvl + 1
			for _, v := range pg.NN.Neighbors(slot) {
				owner := pe.cfg.OwnerGPU(v)
				if owner == g {
					lv := uint32(v / p64)
					if levels[lv] == childLevel {
						if cur := parents[lv]; cur == -1 || uGlobal < cur {
							parents[lv] = uGlobal
						}
					}
					continue
				}
				bins.Add(owner, uint32(v/p64), val)
				pairs++
			}
		}
	}
	atomic.AddInt64(pc.pairs, pairs)

	accept := func(levels []int32, parents []int64, prs []frontier.Pair) {
		for _, pr := range prs {
			childLevel := int32(pr.Val & (1<<parentLevelBits - 1))
			if levels[pr.ID] != childLevel {
				continue
			}
			parent := int64(pr.Val >> parentLevelBits)
			if cur := parents[pr.ID]; cur == -1 || parent < cur {
				parents[pr.ID] = parent
			}
		}
	}

	// Intra-rank pairs apply directly; inter-rank pairs route through the
	// same codec policy as the frontier exchange (raw 12-byte pairs when
	// compression is off). The volume is reported in WireStats but, like
	// the rest of the resolution round, excluded from simulated BFS time.
	var rawBytes, wireBytes int64
	for dst := 0; dst < prank; dst++ {
		if dst == rank {
			for s := 0; s < pgpu; s++ {
				g := myStart + s
				accept(q.levels[g], q.parents[g], bins.PerGPU[g])
			}
			continue
		}
		slots := pairSlotsForRank(bins, dst, pgpu)
		var payload []byte
		if mode == wire.ModeOff {
			payload = (&frontier.PairBins{PerGPU: slots}).PackRank(0, pgpu)
			idBytes := int64(len(payload)) - 4*int64(pgpu)
			rawBytes += idBytes
			wireBytes += idBytes
		} else {
			var st wire.Stats
			payload, st = wire.EncodePairsRank(slots, mode)
			rawBytes += st.RawBytes
			wireBytes += st.EncodedBytes
		}
		comm.Isend(dst, tag, payload)
	}
	atomic.AddInt64(pc.rawBytes, rawBytes)
	atomic.AddInt64(pc.wireBytes, wireBytes)
	for src := 0; src < prank; src++ {
		if src == rank {
			continue
		}
		buf := comm.Recv(src, tag)
		var slots [][]frontier.Pair
		var err error
		if mode == wire.ModeOff {
			slots, err = frontier.UnpackPairsRank(buf, pgpu)
		} else {
			slots, err = wire.DecodePairsRank(buf, pgpu)
		}
		if err != nil {
			panic(corruptErr("core: corrupt parent payload", err))
		}
		for s, prs := range slots {
			g := myStart + s
			accept(q.levels[g], q.parents[g], prs)
		}
	}
	comm.Barrier()
}

// pairSlotsForRank extracts one destination rank's per-slot pair lists.
func pairSlotsForRank(bins *frontier.PairBins, dst, gpusPerRank int) [][]frontier.Pair {
	slots := make([][]frontier.Pair, gpusPerRank)
	for s := 0; s < gpusPerRank; s++ {
		slots[s] = bins.PerGPU[dst*gpusPerRank+s]
	}
	return slots
}

// resolveParents runs the canonical resolution for this Session's query.
func (e *Session) resolveParents(rank int, comm *mpi.Comm, source int64) {
	pc := parentCounters{
		pairs:     &e.parentExchangePairs,
		rawBytes:  &e.parentPairRawBytes,
		wireBytes: &e.parentPairWireBytes,
	}
	e.planEnv.resolveQueryParents(e.opts.Compression, rank, comm, source, &e.qt,
		parentTagBase, &e.scratch[rank].parents, pc)
}

// gatherTreeParents assembles the global BFS tree from the owner GPUs' rows
// and the resolved delegate directory.
func (pe *planEnv) gatherTreeParents(q *queryTree) []int64 {
	parents := make([]int64, pe.sg.N)
	for i := range parents {
		parents[i] = -1
	}
	for g, pg := range pe.sg.GPUs {
		levels, gp := q.levels[g], q.parents[g]
		for slot := int64(0); slot < pg.NumLocal; slot++ {
			if levels[slot] >= 0 {
				v := pe.cfg.GlobalID(uint32(slot), pg.Rank, pg.Slot)
				parents[v] = gp[slot]
			}
		}
	}
	dl := q.dLevel[0]
	for di, v := range pe.sg.Sep.DelegateGlobal {
		if dl[di] >= 0 {
			parents[v] = q.dParents[di]
		}
	}
	return parents
}

// gatherParents assembles this Session's global BFS tree.
func (e *Session) gatherParents() []int64 {
	return e.planEnv.gatherTreeParents(&e.qt)
}
