package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"gcbfs/internal/frontier"
	"gcbfs/internal/mpi"
	"gcbfs/internal/wire"
)

// BFS-tree construction (paper §VI-A3). The paper outputs hop distances and
// argues a tree costs little extra: "only the destination vertices of nn
// edges, without possible delegate parents, would need to communicate their
// parent information at the end of BFS; vertices visited by dd, dn, and nd
// kernels can get the parent information locally". This file implements that
// post-BFS resolution:
//
//  1. Delegate parents: every GPU scans its local dd/dn adjacency of each
//     visited delegate for a neighbor exactly one level closer; the smallest
//     candidate global id wins via an int64 min-allreduce, so all ranks
//     agree deterministically.
//  2. Remote nn parents: each GPU replays its outgoing nn edges once,
//     sending (destLocal, senderLevel+1, senderGlobal) pairs; receivers
//     accept the smallest valid candidate for vertices flagged as
//     remotely discovered. Volume ≤ |Enn| pairs, run once — the paper's
//     "low cost" claim.
//
// Resolution traffic is reported (ParentPairs) but excluded from simulated
// BFS time, matching the paper's reporting of distance-only timings.

// parentLevelBits packs the sender's claimed child level into the LOW bits
// of a pair value with the parent global id above it. Low-bits level keeps
// the value small as an integer, so the pairs codec's uvarint values shrink
// with graph size instead of always paying for the high level bits. Vertex
// ids must stay below 2^44 (far above the paper's scale 40 ceiling) and BFS
// depth below 2^20 (far above the §VI-D long-tail graphs' hundreds of
// iterations).
const parentLevelBits = 20

// resolveParents runs the two-phase resolution on this rank. All ranks
// participate (collectives inside); rank 0 publishes the delegate result.
func (e *Session) resolveParents(rank int, comm *mpi.Comm, myGPUs []*gpuState, source int64) {
	e.resolveDelegateParents(rank, comm, myGPUs, source)
	e.resolveRemoteParents(rank, comm, myGPUs)
}

func (e *Session) resolveDelegateParents(rank int, comm *mpi.Comm, myGPUs []*gpuState, source int64) {
	if e.d == 0 {
		if rank == 0 {
			e.delegateParents = nil
		}
		return
	}
	const unset = math.MaxInt64
	cand := make([]int64, e.d)
	for i := range cand {
		cand[i] = unset
	}
	sep := e.sg.Sep
	for _, gs := range myGPUs {
		for di := int64(0); di < e.d; di++ {
			lvl := gs.delegateLevel[di]
			switch {
			case lvl < 0:
				continue
			case lvl == 0:
				// Only the source sits at level 0.
				cand[di] = source
			default:
				for _, dv := range gs.pg.DD.Neighbors(di) {
					if gs.delegateLevel[dv] == lvl-1 {
						if g := sep.DelegateGlobal[dv]; g < cand[di] {
							cand[di] = g
						}
					}
				}
				for _, lv := range gs.pg.DN.Neighbors(di) {
					if gs.levels[lv] == lvl-1 {
						if g := e.cfg.GlobalID(lv, gs.pg.Rank, gs.pg.Slot); g < cand[di] {
							cand[di] = g
						}
					}
				}
			}
		}
	}
	comm.AllreduceMin(cand)
	if rank == 0 {
		for di := range cand {
			if cand[di] == unset {
				if myGPUs[0].delegateLevel[di] >= 0 {
					panic(fmt.Sprintf("core: visited delegate %d has no parent candidate", di))
				}
				cand[di] = -1
			}
		}
		e.delegateParents = cand
	}
}

func (e *Session) resolveRemoteParents(rank int, comm *mpi.Comm, myGPUs []*gpuState) {
	pgpu := e.shape.GPUsPerRank
	prank := e.shape.Ranks()
	p64 := int64(e.p)
	const tag = 1 << 30 // outside the iteration tag space

	// Replay outgoing nn edges once, claiming child level = my level + 1.
	bins := frontier.NewPairBins(e.p)
	var pairs int64
	for _, gs := range myGPUs {
		self := gs.pg.GPU
		for slot := int64(0); slot < gs.pg.NumLocal; slot++ {
			lvl := gs.levels[slot]
			if lvl < 0 || gs.pg.NN.Degree(slot) == 0 {
				continue
			}
			if lvl+1 >= 1<<parentLevelBits {
				panic(fmt.Sprintf("core: BFS level %d exceeds the pairs-codec ceiling", lvl))
			}
			uGlobal := e.cfg.GlobalID(uint32(slot), gs.pg.Rank, gs.pg.Slot)
			if uGlobal >= 1<<(64-parentLevelBits) {
				panic(fmt.Sprintf("core: vertex id %d exceeds the pairs-codec ceiling", uGlobal))
			}
			val := uint64(uGlobal)<<parentLevelBits | uint64(lvl+1)
			for _, v := range gs.pg.NN.Neighbors(slot) {
				owner := e.cfg.OwnerGPU(v)
				if owner == self {
					continue // local discoveries already carry parents
				}
				bins.Add(owner, uint32(v/p64), val)
				pairs++
			}
		}
	}
	atomic.AddInt64(&e.parentExchangePairs, pairs)

	accept := func(gs *gpuState, prs []frontier.Pair) {
		for _, pr := range prs {
			if !gs.remoteNeedsParent[pr.ID] {
				continue
			}
			childLevel := int32(pr.Val & (1<<parentLevelBits - 1))
			if gs.levels[pr.ID] != childLevel {
				continue
			}
			parent := int64(pr.Val >> parentLevelBits)
			if cur := gs.parents[pr.ID]; cur == -1 || parent < cur {
				gs.parents[pr.ID] = parent
			}
		}
	}

	// Intra-rank pairs apply directly; inter-rank pairs route through the
	// same codec policy as the frontier exchange (raw 12-byte pairs when
	// compression is off). The volume is reported in WireStats but, like
	// the rest of the resolution round, excluded from simulated BFS time.
	mode := e.opts.Compression
	var rawBytes, wireBytes int64
	for dst := 0; dst < prank; dst++ {
		if dst == rank {
			for s := 0; s < pgpu; s++ {
				accept(myGPUs[s], bins.PerGPU[rank*pgpu+s])
			}
			continue
		}
		slots := pairSlotsForRank(bins, dst, pgpu)
		var payload []byte
		if mode == wire.ModeOff {
			payload = (&frontier.PairBins{PerGPU: slots}).PackRank(0, pgpu)
			idBytes := int64(len(payload)) - 4*int64(pgpu)
			rawBytes += idBytes
			wireBytes += idBytes
		} else {
			var st wire.Stats
			payload, st = wire.EncodePairsRank(slots, mode)
			rawBytes += st.RawBytes
			wireBytes += st.EncodedBytes
		}
		comm.Isend(dst, tag, payload)
	}
	atomic.AddInt64(&e.parentPairRawBytes, rawBytes)
	atomic.AddInt64(&e.parentPairWireBytes, wireBytes)
	for src := 0; src < prank; src++ {
		if src == rank {
			continue
		}
		buf := comm.Recv(src, tag)
		var slots [][]frontier.Pair
		var err error
		if mode == wire.ModeOff {
			slots, err = frontier.UnpackPairsRank(buf, pgpu)
		} else {
			slots, err = wire.DecodePairsRank(buf, pgpu)
		}
		if err != nil {
			panic(fmt.Sprintf("core: corrupt parent payload: %v", err))
		}
		for s, prs := range slots {
			accept(myGPUs[s], prs)
		}
	}
	comm.Barrier()

	// Every remotely discovered vertex must now have a parent: its
	// discoverer replayed the same nn edge that delivered it.
	for _, gs := range myGPUs {
		for slot, need := range gs.remoteNeedsParent {
			if need && gs.parents[slot] == -1 {
				panic(fmt.Sprintf("core: vertex %d on GPU %d missing parent after resolution",
					e.cfg.GlobalID(uint32(slot), gs.pg.Rank, gs.pg.Slot), gs.pg.GPU))
			}
		}
	}
}

// pairSlotsForRank extracts one destination rank's per-slot pair lists.
func pairSlotsForRank(bins *frontier.PairBins, dst, gpusPerRank int) [][]frontier.Pair {
	slots := make([][]frontier.Pair, gpusPerRank)
	for s := 0; s < gpusPerRank; s++ {
		slots[s] = bins.PerGPU[dst*gpusPerRank+s]
	}
	return slots
}

// gatherParents assembles the global BFS tree from owner GPUs and the
// resolved delegate directory.
func (e *Session) gatherParents() []int64 {
	parents := make([]int64, e.sg.N)
	for i := range parents {
		parents[i] = -1
	}
	for _, gs := range e.gpus {
		for slot := int64(0); slot < gs.pg.NumLocal; slot++ {
			if gs.levels[slot] >= 0 {
				v := e.cfg.GlobalID(uint32(slot), gs.pg.Rank, gs.pg.Slot)
				parents[v] = gs.parents[slot]
			}
		}
	}
	for di, v := range e.sg.Sep.DelegateGlobal {
		if e.gpus[0].delegateLevel[di] >= 0 && e.delegateParents != nil {
			parents[v] = e.delegateParents[di]
		}
	}
	return parents
}
