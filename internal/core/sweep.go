package core

// Multi-source shared sweep (MS-BFS): one BSP traversal answers K BFS
// queries at once. Per-vertex visited state widens from a bit to a K-bit
// query-set mask (bitmask.Matrix, w = ⌈K/64⌉ words per vertex), frontier
// records carry (vertex, query-set) payloads through the record codec
// (wire/records.go), and the delegate tier reduces a d×K mask matrix instead
// of a d-bit mask. The sweep is forward-only: hop distances are
// direction-invariant, so its levels — and the canonical parents derived
// from them (parents.go) — are bit-identical to K independent Plan.Run
// calls; what the sweep buys is amortization, since a vertex expanded for
// many queries in one iteration scans its adjacency once, and records
// destined for the same vertex merge into one wire record with OR-ed masks.
//
// The simulated cost model charges the widened work honestly: kernels pay
// edges×w word operations, the delegate allreduce moves d×w×8 bytes, and
// the exchange ships the record payloads. Per-query figures are the sweep
// totals divided by K — GTEPS becomes the amortized per-query rate the cmp5
// ablation compares against independent RunBatch.

import (
	"context"
	"fmt"
	"sync"

	"gcbfs/internal/bitmask"
	"gcbfs/internal/faults"
	"gcbfs/internal/frontier"
	"gcbfs/internal/metrics"
	"gcbfs/internal/mpi"
	"gcbfs/internal/partition"
	"gcbfs/internal/simgpu"
	"gcbfs/internal/wire"
)

// MaxSweepWidth bounds the number of queries one sweep may carry. Beyond ~1k
// the mask matrices stop fitting the simulated devices' memory model and the
// per-word fold loses its amortization edge.
const MaxSweepWidth = 1024

// RunSweep answers one BFS per source in a single shared BSP traversal. The
// per-query levels and parents are bit-identical to Run on the same source;
// the per-query counters and simulated timing are the sweep totals divided
// evenly by the query count (integer division for byte/edge counters — the
// deterministic convention). Duplicate sources are allowed and simply occupy
// two query lanes; Service-level admission dedups them beforehand.
//
// ctx is honored at iteration boundaries exactly as in Run: all ranks fold
// the context observation into the termination reduction and abort on the
// same iteration, and RunSweep returns ctx.Err().
func (p *Plan) RunSweep(ctx context.Context, sources []int64, ov Overrides) ([]*metrics.RunResult, error) {
	opts, err := p.effectiveOptions(ov)
	if err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: sweep needs at least one source")
	}
	if len(sources) > MaxSweepWidth {
		return nil, fmt.Errorf("core: sweep width %d exceeds %d", len(sources), MaxSweepWidth)
	}
	for _, src := range sources {
		if src < 0 || src >= p.sg.N {
			return nil, fmt.Errorf("core: source %d out of range [0,%d)", src, p.sg.N)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e := p.newSweepSession(opts, sources)
	return e.run(ctx)
}

// sweepGPU is one GPU's state for a sweep: per-query hop distances plus the
// mask-matrix analogues of gpuState's frontier and visited structures.
type sweepGPU struct {
	pg  *partition.GPUGraph
	dev *simgpu.Device

	lv   [][]int32 // [k][slot] hop distance, -1 unvisited
	dLev [][]int32 // [k][delegate] hop distance (this GPU's replica)

	vis, front, nxt    *bitmask.Matrix // NumLocal × K
	visD, frontD, newD *bitmask.Matrix // d × K

	inIDs, outIDs []uint32 // active normal frontier slots (set rows of front/nxt)
	bins          *frontier.RecordBins

	it sweepIterWork
}

// sweepIterWork accumulates one iteration's counted work on one GPU.
type sweepIterWork struct {
	delegateStream float64
	normalStream   float64
	edges          int64 // structural edges scanned (adjacency reads)
	logical        int64 // per-query logical edges: Σ popcount(row)·degree
}

// sweepScratch is one rank goroutine's reusable sweep state.
type sweepScratch struct {
	rankD  []uint64 // d×w delegate-mask reduce buffer
	addRow []uint64 // w-word newly-discovered scratch row

	// Sender-side merge scratch: concatenated records per destination slot,
	// the sort permutation, and the merged output handed to the codec.
	mIDs     []uint32
	mMasks   []uint64
	perm     []int32
	outIDs   [][]uint32
	outMasks [][]uint64

	// Arrival bins (per local slot of this rank).
	arrIDs   [][]uint32
	arrMasks [][]uint64

	sel     *wire.RecordSelector
	parents parentScratch
	vec     []float64
	sums    []int64
	fbits   []int64
}

// sweepSession is the mutable state of one in-flight sweep. Sweeps are built
// fresh per RunSweep — the allocation amortizes over K queries, so pooling
// buys nothing here.
type sweepSession struct {
	planEnv
	opts    Options
	amp     float64
	k, w    int
	sources []int64
	gpus    []*sweepGPU
	scratch []*sweepScratch

	// Shared parent-resolution buffers, reused sequentially per query:
	// parents[g] is GPU g's local parent array, dParents the delegate
	// directory, qts[k] the per-query tree view resolution operates on.
	parents  [][]int64
	dParents []int64
	qts      []queryTree

	// Per-query parent-resolution traffic counters (indexed by query).
	pairCount, pairRaw, pairWire []int64
}

func (p *Plan) newSweepSession(opts Options, sources []int64) *sweepSession {
	// The sweep's record exchange still charges flat: its staging stays in
	// LocalComm and its message sizing must match (hierarchical sweep
	// charging is a follow-on; results are identical either way).
	opts.FlatExchange = true
	k := len(sources)
	w := (k + 63) / 64
	e := &sweepSession{
		planEnv: p.env(),
		opts:    opts,
		amp:     opts.WorkAmplification,
		k:       k,
		w:       w,
		sources: sources,
	}
	e.gpus = make([]*sweepGPU, e.p)
	for i, pg := range p.sg.GPUs {
		gs := &sweepGPU{
			pg:     pg,
			dev:    simgpu.NewDevice(opts.GPU, i),
			lv:     make([][]int32, k),
			dLev:   make([][]int32, k),
			vis:    bitmask.NewMatrix(pg.NumLocal, k),
			front:  bitmask.NewMatrix(pg.NumLocal, k),
			nxt:    bitmask.NewMatrix(pg.NumLocal, k),
			visD:   bitmask.NewMatrix(e.d, k),
			frontD: bitmask.NewMatrix(e.d, k),
			newD:   bitmask.NewMatrix(e.d, k),
			bins:   frontier.NewRecordBins(e.p, w),
		}
		for q := 0; q < k; q++ {
			gs.lv[q] = make([]int32, pg.NumLocal)
			for s := range gs.lv[q] {
				gs.lv[q][s] = -1
			}
			gs.dLev[q] = make([]int32, e.d)
			for s := range gs.dLev[q] {
				gs.dLev[q][s] = -1
			}
		}
		e.gpus[i] = gs
	}
	prank := p.shape.Ranks()
	pgpu := p.shape.GPUsPerRank
	e.scratch = make([]*sweepScratch, prank)
	for r := range e.scratch {
		e.scratch[r] = &sweepScratch{
			rankD:    make([]uint64, e.d*int64(w)),
			addRow:   make([]uint64, w),
			outIDs:   make([][]uint32, pgpu),
			outMasks: make([][]uint64, pgpu),
			arrIDs:   make([][]uint32, pgpu),
			arrMasks: make([][]uint64, pgpu),
			sel:      wire.NewRecordSelectorSized(prank * pgpu),
		}
	}
	if opts.CollectParents {
		e.parents = make([][]int64, e.p)
		for i, pg := range p.sg.GPUs {
			e.parents[i] = make([]int64, pg.NumLocal)
		}
		e.dParents = make([]int64, e.d)
		e.qts = make([]queryTree, k)
		for q := 0; q < k; q++ {
			qt := queryTree{
				levels:   make([][]int32, e.p),
				dLevel:   make([][]int32, e.p),
				parents:  e.parents,
				dParents: e.dParents,
			}
			for g, gs := range e.gpus {
				qt.levels[g] = gs.lv[q]
				qt.dLevel[g] = gs.dLev[q]
			}
			e.qts[q] = qt
		}
		e.pairCount = make([]int64, k)
		e.pairRaw = make([]int64, k)
		e.pairWire = make([]int64, k)
	}
	return e
}

func (e *sweepSession) charge(gs *sweepGPU, c simgpu.KernelCost) float64 {
	c.Edges = int64(float64(c.Edges) * e.amp)
	c.Vertices = int64(float64(c.Vertices) * e.amp)
	return gs.dev.Charge(c)
}

func (e *sweepSession) ampBytes(b int64) int64 {
	return int64(float64(b) * e.amp)
}

// seed plants each query's source at depth 0 in its lane.
func (e *sweepSession) seed() {
	for q, src := range e.sources {
		if e.sg.Sep.IsDelegate(src) {
			di := int64(e.sg.Sep.DelegateID[src])
			for _, gs := range e.gpus {
				gs.visD.Set(di, q)
				gs.frontD.Set(di, q)
				gs.dLev[q][di] = 0
			}
			continue
		}
		gs := e.gpus[e.cfg.OwnerGPU(src)]
		local := int64(e.cfg.LocalID(src))
		if !bitmask.RowAny(gs.front.Row(local)) {
			gs.inIDs = append(gs.inIDs, uint32(local))
		}
		gs.vis.Set(local, q)
		gs.front.Set(local, q)
		gs.lv[q][local] = 0
	}
}

// discover folds newly reached query bits into a local vertex: bits not yet
// visited mark the per-query level, join the visited row and the output
// frontier row. The fold is order-independent across arrival sources — a
// query bit's level is written exactly once, on the iteration it first
// appears — which is what makes the sweep deterministic without the
// single-query engine's canonical arrival ordering.
func (e *sweepSession) discover(gs *sweepGPU, sc *sweepScratch, local uint32, mask []uint64, depth int32) {
	visRow := gs.vis.Row(int64(local))
	add := sc.addRow
	if !bitmask.RowAndNotInto(add, mask, visRow) {
		return
	}
	bitmask.RowOr(visRow, add)
	nxtRow := gs.nxt.Row(int64(local))
	if !bitmask.RowAny(nxtRow) {
		gs.outIDs = append(gs.outIDs, local)
	}
	bitmask.RowOr(nxtRow, add)
	bitmask.RowForEach(add, func(q int) { gs.lv[q][local] = depth })
}

// runKernels executes one iteration's forward kernels on one GPU. Edge work
// is charged at w word-operations per structural edge — the widened mask is
// what the SIMD lanes actually move.
func (e *sweepSession) runKernels(gs *sweepGPU, sc *sweepScratch, iter int32) {
	w64 := int64(e.w)
	p64 := int64(e.p)
	self := gs.pg.GPU

	// Delegate previsit + dd/dn kernels: scan the frontier matrix rows (the
	// d×w/64-word sweep is the previsit analogue of the delegate mask scan).
	var ddEdges, dnEdges, dVerts int64
	for di := int64(0); di < e.d; di++ {
		row := gs.frontD.Row(di)
		if !bitmask.RowAny(row) {
			continue
		}
		dVerts++
		pop := int64(bitmask.RowCount(row))
		if deg := gs.pg.DD.Degree(di); deg > 0 {
			for _, dv := range gs.pg.DD.Neighbors(di) {
				bitmask.RowOr(gs.newD.Row(int64(dv)), row)
			}
			ddEdges += deg
			gs.it.logical += deg * pop
		}
		if deg := gs.pg.DN.Degree(di); deg > 0 {
			for _, lv := range gs.pg.DN.Neighbors(di) {
				e.discover(gs, sc, lv, row, iter+1)
			}
			dnEdges += deg
			gs.it.logical += deg * pop
		}
	}
	gs.it.delegateStream += e.charge(gs, simgpu.KernelCost{
		Vertices: dVerts + e.d/64*w64, Strategy: simgpu.TWBDynamic,
	})
	gs.it.delegateStream += e.charge(gs, simgpu.KernelCost{
		Edges: ddEdges * w64, Vertices: dVerts, Strategy: simgpu.MergePath,
	})
	gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
		Edges: dnEdges * w64, Vertices: dVerts, Strategy: simgpu.TWBDynamic,
	})

	// Normal previsit + nd/nn kernels over the active slot list.
	var ndEdges, nnEdges, binned int64
	nVerts := int64(len(gs.inIDs))
	for _, u := range gs.inIDs {
		row := gs.front.Row(int64(u))
		pop := int64(bitmask.RowCount(row))
		if deg := gs.pg.ND.Degree(int64(u)); deg > 0 {
			for _, dv := range gs.pg.ND.Neighbors(int64(u)) {
				bitmask.RowOr(gs.newD.Row(int64(dv)), row)
			}
			ndEdges += deg
			gs.it.logical += deg * pop
		}
		if deg := gs.pg.NN.Degree(int64(u)); deg > 0 {
			for _, v := range gs.pg.NN.Neighbors(int64(u)) {
				owner := e.cfg.OwnerGPU(v)
				local := uint32(v / p64)
				if owner == self {
					e.discover(gs, sc, local, row, iter+1)
				} else {
					gs.bins.Add(owner, local, row)
					binned++
				}
			}
			nnEdges += deg
			gs.it.logical += deg * pop
		}
	}
	gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
		Vertices: 2 * nVerts, Strategy: simgpu.TWBDynamic,
	})
	gs.it.delegateStream += e.charge(gs, simgpu.KernelCost{
		Edges: ndEdges * w64, Vertices: nVerts, Strategy: simgpu.TWBDynamic,
	})
	gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
		Edges: nnEdges * w64, Vertices: nVerts, Strategy: simgpu.TWBDynamic,
	})
	if binned > 0 {
		// Binning + id conversion + the w-word mask copy per record.
		gs.it.normalStream += e.charge(gs, simgpu.KernelCost{
			Vertices: binned * w64, Strategy: simgpu.TWBDynamic,
		})
	}
	gs.it.edges += ddEdges + dnEdges + ndEdges + nnEdges
}

// commitDelegates folds the globally reduced new-delegate matrix into one
// GPU's replicated delegate state and returns the number of newly visited
// (delegate, query) pairs.
func (e *sweepSession) commitDelegates(gs *sweepGPU, sc *sweepScratch, iter int32) int64 {
	w := e.w
	var committed int64
	for di := int64(0); di < e.d; di++ {
		red := sc.rankD[di*int64(w) : (di+1)*int64(w)]
		visRow := gs.visD.Row(di)
		frontRow := gs.frontD.Row(di)
		add := sc.addRow
		if !bitmask.RowAndNotInto(add, red, visRow) {
			clear(frontRow)
			continue
		}
		bitmask.RowOr(visRow, add)
		copy(frontRow, add)
		committed += int64(bitmask.RowCount(add))
		lv := gs.dLev
		bitmask.RowForEach(add, func(q int) { lv[q][di] = iter + 1 })
	}
	return committed
}

// sweepRecorder collects sweep-wide statistics; only rank 0 writes to it.
type sweepRecorder struct {
	iterations int
	edges      int64 // structural
	logical    int64 // per-query logical edges, summed over queries
	dupsMerged int64
	simSeconds float64
	parts      metrics.Breakdown
	wire       metrics.WireStats
	messages   int64
	maxMsg     int64
	maskComms  int
	cancelled  bool
}

// run executes the sweep's BSP loop across rank goroutines and assembles the
// per-query results.
func (e *sweepSession) run(ctx context.Context) ([]*metrics.RunResult, error) {
	e.seed()
	prank := e.shape.Ranks()
	world := mpi.NewWorld(prank)
	armWorldAs(world, e.opts.Inject, faults.SiteSweep)
	rec := &sweepRecorder{}
	parentsOut := make([][]int64, e.k)
	var wg sync.WaitGroup
	for r := 0; r < prank; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer containRank(world, rank)
			e.runRank(ctx, rank, world.Rank(rank), rec, parentsOut)
		}(r)
	}
	wg.Wait()

	if err := world.Aborted(); err != nil {
		return nil, err
	}
	if rec.cancelled {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}

	k64 := int64(e.k)
	kf := float64(e.k)
	results := make([]*metrics.RunResult, e.k)
	for q := range results {
		res := &metrics.RunResult{
			Source:        e.sources[q],
			Epoch:         e.epoch,
			Iterations:    e.queryIterations(q),
			SimSeconds:    rec.simSeconds / kf,
			TEPSEdges:     e.sg.M / 2,
			EdgesScanned:  rec.logical / k64,
			DupsRemoved:   rec.dupsMerged / k64,
			DelegateComms: rec.maskComms,
			Parts: metrics.Breakdown{
				Computation:    rec.parts.Computation / kf,
				LocalComm:      rec.parts.LocalComm / kf,
				RemoteNormal:   rec.parts.RemoteNormal / kf,
				RemoteDelegate: rec.parts.RemoteDelegate / kf,
			},
			Wire: metrics.WireStats{
				Enabled:         e.opts.Compression != wire.ModeOff,
				RawBytes:        rec.wire.RawBytes / k64,
				CompressedBytes: rec.wire.CompressedBytes / k64,
				SchemeRaw:       rec.wire.SchemeRaw,
				SchemeDelta:     rec.wire.SchemeDelta,
				SchemeBitmap:    rec.wire.SchemeBitmap,
				MemoHits:        rec.wire.MemoHits,
				CodecBytes:      rec.wire.CodecBytes / k64,
				CodecSeconds:    rec.wire.CodecSeconds / kf,
			},
			Exchange: metrics.ExchangeStats{
				Strategy:           "sweep",
				AllPairsIterations: int64(rec.iterations),
				Messages:           rec.messages / k64,
				MaxMessageBytes:    rec.maxMsg,
			},
		}
		if e.opts.CollectLevels {
			res.Levels = e.queryLevels(q)
		}
		if e.opts.CollectParents {
			res.Parents = parentsOut[q]
			res.ParentPairs = e.pairCount[q]
			res.Wire.PairRawBytes = e.pairRaw[q]
			res.Wire.PairWireBytes = e.pairWire[q]
		}
		results[q] = res
	}
	return results, nil
}

// queryIterations reconstructs the BSP iteration count query q would have
// run standalone: its deepest level plus one (the final iteration discovers
// nothing and terminates), which is exactly Plan.Run's loop count.
func (e *sweepSession) queryIterations(q int) int {
	var deepest int32
	for _, gs := range e.gpus {
		for _, lvl := range gs.lv[q] {
			if lvl > deepest {
				deepest = lvl
			}
		}
	}
	for _, lvl := range e.gpus[0].dLev[q] {
		if lvl > deepest {
			deepest = lvl
		}
	}
	return int(deepest) + 1
}

// queryLevels assembles query q's global hop-distance array, mirroring
// Session.gatherLevels.
func (e *sweepSession) queryLevels(q int) []int32 {
	levels := make([]int32, e.sg.N)
	for i := range levels {
		levels[i] = -1
	}
	for _, gs := range e.gpus {
		lv := gs.lv[q]
		for slot := int64(0); slot < gs.pg.NumLocal; slot++ {
			if lvl := lv[slot]; lvl >= 0 {
				v := e.cfg.GlobalID(uint32(slot), gs.pg.Rank, gs.pg.Slot)
				levels[v] = lvl
			}
		}
	}
	for di, v := range e.sg.Sep.DelegateGlobal {
		if lvl := e.gpus[0].dLev[q][di]; lvl >= 0 {
			levels[v] = lvl
		}
	}
	return levels
}

// resolveSweepParents runs the canonical per-query parent resolution
// sequentially over the shared parent buffers: reset own GPUs' rows, resolve
// query q (collectives inside), rank 0 gathers the global array, barrier,
// next query. The per-query resolution is the exact single-query pass with a
// per-query tag, so the trees are bit-identical to Run's.
func (e *sweepSession) resolveSweepParents(rank int, comm *mpi.Comm, parentsOut [][]int64) {
	pgpu := e.shape.GPUsPerRank
	sc := e.scratch[rank]
	for q := 0; q < e.k; q++ {
		for g := rank * pgpu; g < (rank+1)*pgpu; g++ {
			buf := e.parents[g]
			for i := range buf {
				buf[i] = -1
			}
		}
		pc := parentCounters{
			pairs:     &e.pairCount[q],
			rawBytes:  &e.pairRaw[q],
			wireBytes: &e.pairWire[q],
		}
		e.planEnv.resolveQueryParents(e.opts.Compression, rank, comm, e.sources[q],
			&e.qts[q], parentTagBase+q, &sc.parents, pc)
		if rank == 0 {
			parentsOut[q] = e.planEnv.gatherTreeParents(&e.qts[q])
		}
		// The shared buffers are reset for q+1 only after rank 0's gather.
		comm.Barrier()
	}
}
