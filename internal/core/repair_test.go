package core

import (
	"context"
	"testing"

	"gcbfs/internal/delta"
	"gcbfs/internal/graph"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// checkRepair runs the full repair property: build epoch 1, run a prior
// query, apply the delta, build epoch 2 incrementally beside it, and require
// RunRepair's levels AND parents to be bit-identical to a full recompute on
// the new epoch.
func checkRepair(t *testing.T, el *graph.EdgeList, shape ClusterShape, th int64, opts Options, source int64, b *delta.Batch) {
	t.Helper()
	ctx := context.Background()
	cfg := shape.PartitionConfig()
	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPlanEpoch(sg, shape, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	prior, err := p1.Run(ctx, source, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if prior.Epoch != 1 {
		t.Fatalf("prior epoch %d, want 1", prior.Epoch)
	}

	el2, err := delta.Apply(el, b)
	if err != nil {
		t.Fatal(err)
	}
	sep2 := partition.Separate(el2, th)
	sg2, _, err := partition.DistributeIncremental(el2, sep2, cfg, sg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlanEpoch(sg2, shape, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := p2.Run(ctx, source, Overrides{})
	if err != nil {
		t.Fatal(err)
	}

	invalid, seeds := delta.Affected(prior.Levels, prior.Parents, b)
	rep, err := p2.RunRepair(ctx, source, prior.Levels, invalid, seeds, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 2 {
		t.Fatalf("repair epoch %d, want 2", rep.Epoch)
	}
	if len(rep.Levels) != len(full.Levels) {
		t.Fatalf("repair levels length %d, want %d", len(rep.Levels), len(full.Levels))
	}
	for v := range full.Levels {
		if rep.Levels[v] != full.Levels[v] {
			t.Fatalf("shape %s: vertex %d repaired level %d, recompute %d (prior %d, invalid %v)",
				shape, v, rep.Levels[v], full.Levels[v], prior.Levels[v], invalid[v])
		}
	}
	if len(rep.Parents) != len(full.Parents) {
		t.Fatalf("repair parents length %d, want %d", len(rep.Parents), len(full.Parents))
	}
	for v := range full.Parents {
		if rep.Parents[v] != full.Parents[v] {
			t.Fatalf("shape %s: vertex %d repaired parent %d, recompute %d",
				shape, v, rep.Parents[v], full.Parents[v])
		}
	}
}

// repairSource picks a well-connected root: the highest-out-degree vertex
// reaches a large component, so deltas actually intersect the BFS tree.
func repairSource(el *graph.EdgeList) int64 {
	deg := el.OutDegrees()
	best, bestDeg := int64(0), int64(-1)
	for v, d := range deg {
		if d > bestDeg {
			best, bestDeg = int64(v), d
		}
	}
	return best
}

func repairOptions() Options {
	o := DefaultOptions()
	o.CollectParents = true
	return o
}

func TestRepairMatchesRecompute(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(10))
	shape := ClusterShape{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 2}
	opts := repairOptions()
	opts.Exchange = ExchangeHybrid
	opts.Compression = wire.ModeAdaptive
	source := repairSource(el)
	for _, kind := range []delta.Kind{delta.KindInsert, delta.KindDelete, delta.KindMixed} {
		for _, frac := range []float64{0.002, 0.02} {
			b := delta.Synthesize(el, frac, kind, 42)
			t.Run(kind.String(), func(t *testing.T) {
				checkRepair(t, el, shape, 32, opts, source, b)
			})
		}
	}
}

func TestRepairShapesAndExchanges(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	source := repairSource(el)
	b := delta.Synthesize(el, 0.01, delta.KindMixed, 7)
	shapes := []ClusterShape{
		{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 2},
		{Nodes: 3, RanksPerNode: 1, GPUsPerRank: 2},
	}
	exchanges := []Exchange{ExchangeAllPairs, ExchangeButterfly}
	for _, shape := range shapes {
		for _, ex := range exchanges {
			opts := repairOptions()
			opts.Exchange = ex
			t.Run(shape.String()+"/"+ex.String(), func(t *testing.T) {
				checkRepair(t, el, shape, 32, opts, source, b)
			})
		}
	}
}

// TestRepairLargeDelta stresses the wave when most of the tree is voided —
// repair must still converge to the exact recompute.
func TestRepairLargeDelta(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	b := delta.Synthesize(el, 0.10, delta.KindMixed, 3)
	opts := repairOptions()
	checkRepair(t, el, ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2}, 32, opts, repairSource(el), b)
}

func TestRepairEmptyDelta(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	shape := ClusterShape{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 2}
	opts := repairOptions()
	sep := partition.Separate(el, 32)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlanEpoch(sg, shape, opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	source := repairSource(el)
	prior, err := p.Run(ctx, source, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	invalid := make([]bool, sg.N)
	rep, err := p.RunRepair(ctx, source, prior.Levels, invalid, nil, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 0 {
		t.Fatalf("empty delta ran %d wave iterations, want 0", rep.Iterations)
	}
	for v := range prior.Levels {
		if rep.Levels[v] != prior.Levels[v] || rep.Parents[v] != prior.Parents[v] {
			t.Fatalf("empty delta changed vertex %d", v)
		}
	}
}

func TestRepairValidation(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	shape := ClusterShape{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 2}
	sep := partition.Separate(el, 32)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlanEpoch(sg, shape, repairOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	source := repairSource(el)
	prior, err := p.Run(ctx, source, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	invalid := make([]bool, sg.N)
	if _, err := p.RunRepair(ctx, source, prior.Levels[:1], invalid, nil, Overrides{}); err == nil {
		t.Fatal("short prior accepted")
	}
	if _, err := p.RunRepair(ctx, source, prior.Levels, invalid[:1], nil, Overrides{}); err == nil {
		t.Fatal("short invalid mask accepted")
	}
	if _, err := p.RunRepair(ctx, source, prior.Levels, invalid, []int64{-1}, Overrides{}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
	bad := make([]bool, sg.N)
	bad[source] = true
	if _, err := p.RunRepair(ctx, source, prior.Levels, bad, nil, Overrides{}); err == nil {
		t.Fatal("invalidated source accepted")
	}
	other := (source + 1) % sg.N
	if _, err := p.RunRepair(ctx, other, prior.Levels, invalid, nil, Overrides{}); err == nil {
		t.Fatal("prior not rooted at source accepted")
	}
}
