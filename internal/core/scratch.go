package core

// Per-rank reusable scratch for the query hot path. A Session is recycled
// through its Plan's pool, but pooling alone only amortizes the big fixed
// buffers (levels, bitmasks, bins); every iteration of every query still
// allocated its exchange scratch fresh — merge headers, arrival bins, codec
// decode buffers, per-hop vectors. rankScratch owns all of that per rank
// goroutine: slice headers are reused via [:0], id payloads come from a bump
// arena reset at each iteration boundary, and the canonical arrival apply
// runs through a radix-bucketed sort whose scatter buffer is reused too.
// None of this changes a single computed value — the scratch is overwritten
// before every read, and the arena hands out zeroed-length slices exactly
// like make() — so determinism and bit-identical results across exchange
// strategies (cmp1–cmp4) are preserved by construction.

import (
	"math/bits"
	"slices"

	"gcbfs/internal/bitmask"
	"gcbfs/internal/frontier"
	"gcbfs/internal/wire"
)

// rankScratch is one rank goroutine's reusable per-iteration state. It is
// owned by exactly one rank of one in-flight query (Session pooling already
// guarantees no cross-query sharing), so no locking is needed.
type rankScratch struct {
	// arena backs every id slice whose lifetime is one BSP iteration:
	// merged send slots, butterfly hop decode output, pending relay
	// payloads. Reset at the start of each iteration's exchange.
	arena frontier.Arena

	// arrivals are the reusable per-local-slot remote-arrival bins the
	// exchange decodes into (zero-copy: the wire header's count pre-sizes
	// the grow). Backing arrays persist across iterations and queries.
	arrivals [][]uint32

	// apSlots/apSorted are the all-pairs merge headers, reused for every
	// destination rank in turn (the encode consumes them immediately).
	apSlots  [][]uint32
	apSorted []bool

	// stageSlots/stageSorted are the butterfly staging headers: one pgpu-row
	// per destination rank, flat, because the butterfly retains all
	// destinations' merged slots across its hops.
	stageSlots  [][]uint32
	stageSorted []bool

	// lists gathers the contributing bins of one merge; pair is the
	// two-list header for pending-relay merges.
	lists [][]uint32
	pair  [2][]uint32

	// secs is the butterfly's per-hop section list.
	secs []wire.Section

	// hopBytes/hopCodecRaw/hopRecvBytes back the exchangeCounts vectors;
	// redWire/redCodec/redRecv are run.go's reduced copies.
	hopBytes     []int64
	hopCodecRaw  []int64
	hopRecvBytes []int64
	redWire      []int64
	redCodec     []int64
	redRecv      []int64

	// rankMask is the delegate-mask reduction buffer (fully overwritten by
	// CopyFrom before every read, so persisting it across queries is safe).
	rankMask *bitmask.Mask
	maskIDs  []uint32

	// vec and sums are the per-iteration allreduce payloads; fbits is the
	// float-max reduction's bit-pattern view of vec.
	vec   []float64
	sums  []int64
	fbits []int64

	// radix is the scatter buffer of the radix-bucketed canonical apply.
	radix []uint32

	// seedMask holds the repair traversal's merged delegate seed set (every
	// rank keeps an identical copy of the AllreduceOr result); dSeeds/dCursor
	// are its (level, delegate id)-sorted injection schedule. Allocated by
	// the first RunRepair on this rank and reused across pooled queries.
	seedMask *bitmask.Mask
	dSeeds   []repairSeed
	dCursor  int

	// parents is the post-BFS canonical parent resolution's reusable state
	// (candidate directory + replay pair bins, see parents.go).
	parents parentScratch

	// rx caches the rank's exchange-strategy instances (and their
	// wire.Selector scheme memories) across pooled queries; rebound and
	// reset per query by rankExchangers.bind.
	rx rankExchangers

	// pol backs the exchange policy's per-iteration butterfly cost
	// evaluation (hop profile, wire-byte equivalent, codec stages). The
	// policy object is shared read-only across rank goroutines; this is
	// its per-rank mutable half.
	pol policyScratch

	// rtStages/nvStages are the butterfly remoteTime's per-hop codec and
	// NVLink stage buffers; maskExtra holds the chunked delegate-mask wire
	// extras of the fold evaluation. All consumed by the simnet pipeline
	// schedule within the call.
	rtStages  []float64
	nvStages  []float64
	maskExtra []float64

	// wireSecs recycles the butterfly's decoded section headers (Section
	// structs, slot rows, sorted rows). Bump-reset with the arena at each
	// iteration's exchange — relayed sections live in pending until the
	// last hop, never longer.
	wireSecs wire.SectionScratch
}

func newRankScratch(prank, pgpu int, d int64) *rankScratch {
	return &rankScratch{
		arrivals:    make([][]uint32, pgpu),
		apSlots:     make([][]uint32, pgpu),
		apSorted:    make([]bool, pgpu),
		stageSlots:  make([][]uint32, prank*pgpu),
		stageSorted: make([]bool, prank*pgpu),
		rankMask:    bitmask.New(d),
	}
}

// resetArrivals empties the arrival bins (capacity retained) and returns
// them for this iteration's exchangeCounts.
func (sc *rankScratch) resetArrivals() [][]uint32 {
	for i := range sc.arrivals {
		sc.arrivals[i] = sc.arrivals[i][:0]
	}
	return sc.arrivals
}

// grownInt64 returns a zeroed length-n slice, reusing s's capacity.
func grownInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// grownFloat64 is grownInt64 for float64 slices.
func grownFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// radixMinLen gates the radix path: tiny arrival sets sort directly (the
// bucket pass would dominate).
const radixMinLen = 128

// applySorted applies remote arrivals to gs in canonical ascending order —
// the order contract every exchange strategy's bit-identity rests on.
func (sc *rankScratch) applySorted(gs *gpuState, ids []uint32, depth int32) {
	sc.applySortedWith(gs, ids, depth, applyIDs)
}

// applySortedWith is applySorted parameterized over the per-id apply: the
// plain BFS uses applyIDs (unvisited-only), the repair traversal uses
// repairApplyIDs (improvement condition). Large arrival sets go through a
// one-level MSB radix partition (256 buckets over the local id space) into
// the reusable scatter buffer, each bucket sorted and applied in sequence;
// the concatenation of sorted buckets in bucket order IS the fully ascending
// sequence, so the result is exactly what slices.Sort over the whole set
// would apply — with no per-iteration allocation and better locality on big
// frontiers. Callers pass named top-level funcs, so the func value never
// allocates.
func (sc *rankScratch) applySortedWith(gs *gpuState, ids []uint32, depth int32, apply func(*gpuState, []uint32, int32)) {
	idBits := bits.Len64(uint64(gs.pg.NumLocal - 1))
	if len(ids) < radixMinLen || idBits <= 8 {
		slices.Sort(ids)
		apply(gs, ids, depth)
		return
	}
	shift := uint(idBits - 8)
	// bounds[k+1] counts bucket k, then prefix-sums into segment bounds.
	var bounds [257]int
	for _, v := range ids {
		bounds[(v>>shift)+1]++
	}
	for i := 1; i < len(bounds); i++ {
		bounds[i] += bounds[i-1]
	}
	if cap(sc.radix) < len(ids) {
		sc.radix = make([]uint32, len(ids))
	}
	buf := sc.radix[:len(ids)]
	off := bounds // array copy: scatter cursors
	for _, v := range ids {
		k := v >> shift
		buf[off[k]] = v
		off[k]++
	}
	for k := 0; k < 256; k++ {
		seg := buf[bounds[k]:bounds[k+1]]
		if len(seg) == 0 {
			continue
		}
		slices.Sort(seg)
		apply(gs, seg, depth)
	}
}
