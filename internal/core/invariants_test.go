package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gcbfs/internal/baseline"
	"gcbfs/internal/g500"
	"gcbfs/internal/graph"
	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
)

// Property: on arbitrary random symmetric graphs, shapes and thresholds, the
// engine's distances match serial BFS and pass the Graph500-style validator;
// iteration count equals the source's eccentricity + 1; per-iteration
// frontier sizes sum to the visited count.
func TestQuickEngineInvariants(t *testing.T) {
	f := func(seed int64, shapeRaw, thRaw uint8, doRaw bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(rng.Intn(80) + 2)
		base := graph.NewEdgeList(n)
		for i := 0; i < rng.Intn(200); i++ {
			base.Add(rng.Int63n(n), rng.Int63n(n))
		}
		el := base.Symmetrize()
		shapes := []ClusterShape{
			{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 1},
			{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 1},
			{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 2},
			{Nodes: 3, RanksPerNode: 1, GPUsPerRank: 2},
		}
		shape := shapes[int(shapeRaw)%len(shapes)]
		opts := DefaultOptions()
		opts.DirectionOptimized = doRaw
		opts.CollectParents = true
		deg := el.OutDegrees()
		src := rng.Int63n(n)
		if deg[src] == 0 {
			return true // isolated source exercised elsewhere
		}

		sepTh := int64(thRaw % 12)
		e := buildEngineQuiet(el, shape, sepTh, opts)
		if e == nil {
			return false
		}
		res, err := e.Run(src)
		if err != nil {
			return false
		}
		want := baseline.SerialBFS(graph.BuildCSR(el), src)
		if g500.CompareLevels(res.Levels, want) != nil {
			return false
		}
		if g500.Validate(el, src, res.Levels) != nil {
			return false
		}
		if g500.ValidateTree(el, src, res.Parents, res.Levels) != nil {
			return false
		}
		// Eccentricity check: max level + 1 iterations performed, plus
		// one trailing iteration that discovers nothing.
		var maxLevel int32
		for _, l := range want {
			if l > maxLevel {
				maxLevel = l
			}
		}
		if res.Iterations != int(maxLevel)+1 {
			return false
		}
		// Frontier conservation: input frontier sizes over all
		// iterations equal the visited count.
		var frontierSum int64
		for _, it := range res.PerIteration {
			frontierSum += it.FrontierNormals + it.FrontierDelegates
		}
		return frontierSum == g500.VisitedCount(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// buildEngineQuiet is buildEngine without the testing.TB plumbing (for use
// inside quick.Check closures).
func buildEngineQuiet(el *graph.EdgeList, shape ClusterShape, th int64, opts Options) *Engine {
	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		return nil
	}
	e, err := NewEngine(sg, shape, opts)
	if err != nil {
		return nil
	}
	return e
}

// Per-iteration parts must be non-negative and elapsed must dominate the
// largest single component (overlap can hide time, never create it).
func TestIterationTimingInvariants(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(10))
	src := pickSources(el.OutDegrees(), 1, 6)[0]
	for _, shape := range []ClusterShape{{1, 1, 4}, {4, 2, 2}} {
		e := buildEngine(t, el, shape, 8, DefaultOptions())
		res, err := e.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range res.PerIteration {
			p := it.Parts
			for _, v := range []float64{p.Computation, p.LocalComm, p.RemoteNormal, p.RemoteDelegate} {
				if v < 0 {
					t.Fatalf("negative component: %+v", p)
				}
			}
			biggest := p.Computation
			for _, v := range []float64{p.LocalComm, p.RemoteNormal, p.RemoteDelegate} {
				if v > biggest {
					biggest = v
				}
			}
			if it.Elapsed < biggest {
				t.Fatalf("elapsed %g below largest component %g", it.Elapsed, biggest)
			}
			if it.Elapsed > p.Sum()+1e-3 {
				t.Fatalf("elapsed %g above parts sum %g + sync", it.Elapsed, p.Sum())
			}
		}
	}
}

// Amplification must scale simulated time roughly linearly once work
// dominates overhead, and must never change functional results.
func TestAmplificationScalesTimeOnly(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(11))
	src := pickSources(el.OutDegrees(), 1, 8)[0]
	base := DefaultOptions()
	big := DefaultOptions()
	big.WorkAmplification = 1024
	e1 := buildEngine(t, el, ClusterShape{2, 1, 2}, 8, base)
	e2 := buildEngine(t, el, ClusterShape{2, 1, 2}, 8, big)
	r1, err := e1.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if r2.SimSeconds <= r1.SimSeconds {
		t.Fatalf("amplification did not increase time: %g vs %g", r2.SimSeconds, r1.SimSeconds)
	}
	if r1.EdgesScanned != r2.EdgesScanned || r1.Iterations != r2.Iterations {
		t.Fatal("amplification changed functional counters")
	}
	for v := range r1.Levels {
		if r1.Levels[v] != r2.Levels[v] {
			t.Fatal("amplification changed distances")
		}
	}
}

// Message packing size influences remote-normal time the way §VI-A1
// describes: tiny packing is slower than the 4 MB optimum for bulk traffic.
func TestMessageBytesOptionMatters(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(12))
	src := pickSources(el.OutDegrees(), 1, 10)[0]
	mk := func(msg int64) *metrics.RunResult {
		opts := DefaultOptions()
		opts.MessageBytes = msg
		opts.WorkAmplification = 1 << 14
		// High TH → nn-heavy graph → remote exchange dominates.
		e := buildEngine(t, el, ClusterShape{4, 2, 1}, 1<<40, opts)
		r, err := e.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	tiny := mk(64 << 10)
	tuned := mk(4 << 20)
	if tuned.Parts.RemoteNormal >= tiny.Parts.RemoteNormal {
		t.Fatalf("4MB packing (%g) not faster than 64kB (%g)",
			tuned.Parts.RemoteNormal, tiny.Parts.RemoteNormal)
	}
}

// All-delegate and no-delegate extremes must exchange bytes on exactly one
// of the two channels.
func TestChannelExtremes(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	src := pickSources(el.OutDegrees(), 1, 12)[0]

	allDel := buildEngine(t, el, ClusterShape{2, 1, 2}, 0, DefaultOptions())
	rAll, err := allDel.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	var normalBytes, delegateBytes int64
	for _, it := range rAll.PerIteration {
		normalBytes += it.BytesNormal
		delegateBytes += it.BytesDelegate
	}
	if normalBytes != 0 {
		t.Fatalf("TH=0 produced %d normal-exchange bytes", normalBytes)
	}
	if delegateBytes == 0 {
		t.Fatal("TH=0 produced no delegate traffic")
	}

	noDel := buildEngine(t, el, ClusterShape{2, 1, 2}, 1<<40, DefaultOptions())
	rNone, err := noDel.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	normalBytes, delegateBytes = 0, 0
	for _, it := range rNone.PerIteration {
		normalBytes += it.BytesNormal
		delegateBytes += it.BytesDelegate
	}
	if delegateBytes != 0 {
		t.Fatalf("TH=inf produced %d delegate bytes", delegateBytes)
	}
	if normalBytes == 0 {
		t.Fatal("TH=inf produced no normal traffic on a 4-GPU run")
	}
}
