// Package rmat implements the Graph500 RMAT graph generator used throughout
// the paper's evaluation (§VI-A3): Kronecker/RMAT recursion with parameters
// A, B, C, D = 0.57, 0.19, 0.19, 0.05 and edge factor 16, followed by
// deterministic vertex-number randomization and symmetrization by edge
// doubling.
//
// The generator is deterministic given (scale, edge factor, seed) and each
// edge is derived independently from a counter-based RNG, mirroring the
// paper's distributed generator: any contiguous range of edge indices can be
// produced by any worker with no shared state.
package rmat

import (
	"runtime"
	"sync"

	"gcbfs/internal/graph"
)

// Params configures the generator. Zero-value fields fall back to the
// Graph500 defaults from DefaultParams.
type Params struct {
	Scale      int     // n = 2^Scale vertices
	EdgeFactor int64   // m = EdgeFactor * n directed edges before doubling
	A, B, C, D float64 // quadrant probabilities, must sum to 1
	Seed       uint64
	// Permute applies the deterministic vertex-id randomization after
	// generation (Graph500 requires it; tests may disable it to inspect
	// raw recursion output).
	Permute bool
	// Symmetric doubles every edge (u→v plus v→u), the paper's
	// preparation step for studying DOBFS without a global direction.
	Symmetric bool
}

// DefaultParams returns the Graph500 parameter set used by the paper for the
// given scale: edge factor 16, A,B,C,D = 0.57,0.19,0.19,0.05, permuted and
// symmetrized.
func DefaultParams(scale int) Params {
	return Params{
		Scale:      scale,
		EdgeFactor: 16,
		A:          0.57,
		B:          0.19,
		C:          0.19,
		D:          0.05,
		Seed:       0x47726170683530, // "Graph50"
		Permute:    true,
		Symmetric:  true,
	}
}

// NumVertices returns 2^Scale.
func (p Params) NumVertices() int64 { return int64(1) << uint(p.Scale) }

// NumDirectedEdges returns the number of generated directed edges before
// symmetrization.
func (p Params) NumDirectedEdges() int64 { return p.EdgeFactor * p.NumVertices() }

// counterRNG is a counter-based splitmix64: stateless, so edge i's random
// stream is reproducible in isolation.
type counterRNG struct {
	state uint64
}

func newCounterRNG(seed, counter uint64) counterRNG {
	// Mix seed and counter so nearby counters decorrelate.
	z := seed ^ (counter * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return counterRNG{state: z ^ (z >> 31)}
}

func (r *counterRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 in [0,1) with 53 bits of precision.
func (r *counterRNG) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// GenerateEdge produces the i-th directed RMAT edge (before permutation).
func GenerateEdge(p Params, i int64) graph.Edge {
	rng := newCounterRNG(p.Seed, uint64(i))
	var u, v int64
	for level := 0; level < p.Scale; level++ {
		r := rng.float()
		var du, dv int64
		switch {
		case r < p.A:
			du, dv = 0, 0
		case r < p.A+p.B:
			du, dv = 0, 1
		case r < p.A+p.B+p.C:
			du, dv = 1, 0
		default:
			du, dv = 1, 1
		}
		u = u<<1 | du
		v = v<<1 | dv
	}
	return graph.Edge{U: u, V: v}
}

// Generate materializes the full edge list. Generation parallelizes across
// available CPUs; output order is deterministic (edge i always lands at
// index i, with the symmetric partner at i + m when Symmetric is set).
func Generate(p Params) *graph.EdgeList {
	p = normalize(p)
	n := p.NumVertices()
	m := p.NumDirectedEdges()
	total := m
	if p.Symmetric {
		total = 2 * m
	}
	edges := make([]graph.Edge, total)

	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	chunk := (m + int64(workers) - 1) / int64(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := int64(w) * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			var perm *graph.Permutation
			if p.Permute {
				perm = graph.NewPermutation(n, p.Seed^0xa5a5a5a5)
			}
			for i := lo; i < hi; i++ {
				e := GenerateEdge(p, i)
				if perm != nil {
					e.U = perm.Map(e.U)
					e.V = perm.Map(e.V)
				}
				edges[i] = e
				if p.Symmetric {
					edges[m+i] = graph.Edge{U: e.V, V: e.U}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return &graph.EdgeList{N: n, Edges: edges}
}

func normalize(p Params) Params {
	if p.EdgeFactor == 0 {
		p.EdgeFactor = 16
	}
	if p.A == 0 && p.B == 0 && p.C == 0 && p.D == 0 {
		p.A, p.B, p.C, p.D = 0.57, 0.19, 0.19, 0.05
	}
	return p
}

// TEPSEdgeCount returns the edge count the Graph500 rules use in the
// traversed-edges-per-second metric for a given scale: m/2 = 2^scale * 16
// (paper §VI-A3 — the undirected edge count, not the doubled one).
func TEPSEdgeCount(scale int) int64 {
	return (int64(1) << uint(scale)) * 16
}
