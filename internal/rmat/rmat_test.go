package rmat

import (
	"testing"
	"testing/quick"

	"gcbfs/internal/graph"
)

func TestSizes(t *testing.T) {
	p := DefaultParams(10)
	if p.NumVertices() != 1024 {
		t.Fatalf("NumVertices = %d", p.NumVertices())
	}
	if p.NumDirectedEdges() != 16*1024 {
		t.Fatalf("NumDirectedEdges = %d", p.NumDirectedEdges())
	}
	el := Generate(p)
	if el.N != 1024 {
		t.Fatalf("N = %d", el.N)
	}
	if el.M() != 2*16*1024 { // doubled
		t.Fatalf("M = %d", el.M())
	}
	if err := el.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(DefaultParams(8))
	b := Generate(DefaultParams(8))
	if a.M() != b.M() {
		t.Fatalf("M mismatch %d vs %d", a.M(), b.M())
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	p1 := DefaultParams(8)
	p2 := DefaultParams(8)
	p2.Seed = 999
	a := Generate(p1)
	b := Generate(p2)
	same := 0
	for i := range a.Edges {
		if a.Edges[i] == b.Edges[i] {
			same++
		}
	}
	if same == len(a.Edges) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestSymmetricPairs(t *testing.T) {
	p := DefaultParams(8)
	el := Generate(p)
	m := p.NumDirectedEdges()
	for i := int64(0); i < m; i++ {
		e, r := el.Edges[i], el.Edges[m+i]
		if e.U != r.V || e.V != r.U {
			t.Fatalf("edge %d not mirrored: %v vs %v", i, e, r)
		}
	}
}

func TestNoPermuteNoSymmetric(t *testing.T) {
	p := DefaultParams(8)
	p.Permute = false
	p.Symmetric = false
	el := Generate(p)
	if el.M() != p.NumDirectedEdges() {
		t.Fatalf("M = %d", el.M())
	}
	// Without permutation edge i must equal GenerateEdge(p, i) exactly.
	for i := int64(0); i < el.M(); i++ {
		if el.Edges[i] != GenerateEdge(p, i) {
			t.Fatalf("edge %d does not match GenerateEdge", i)
		}
	}
}

// RMAT with A=0.57 concentrates edges on low vertex ids; after permutation
// the skew must remain in the degree distribution (scale-free) even though
// specific ids are randomized.
func TestSkewedDegreeDistribution(t *testing.T) {
	p := DefaultParams(12)
	el := Generate(p)
	deg := el.OutDegrees()
	s := graph.Stats(deg)
	if s.Max < 10*int64(s.Mean) {
		t.Fatalf("expected scale-free skew: max=%d mean=%.1f", s.Max, s.Mean)
	}
	if s.Zero == 0 {
		t.Fatal("expected some zero-degree vertices in RMAT")
	}
}

// Property: every generated edge lies in range for arbitrary small scales.
func TestQuickEdgeRange(t *testing.T) {
	f := func(scaleRaw uint8, idx uint16, seed uint64) bool {
		scale := int(scaleRaw%10) + 1
		p := DefaultParams(scale)
		p.Seed = seed
		e := GenerateEdge(p, int64(idx))
		n := p.NumVertices()
		return e.U >= 0 && e.U < n && e.V >= 0 && e.V < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTEPSEdgeCount(t *testing.T) {
	if TEPSEdgeCount(20) != (1<<20)*16 {
		t.Fatalf("TEPSEdgeCount(20) = %d", TEPSEdgeCount(20))
	}
}

func BenchmarkGenerateScale14(b *testing.B) {
	p := DefaultParams(14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(p)
	}
}
