package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/rmat"
)

func TestConfigOwnership(t *testing.T) {
	cfg := Config{Ranks: 3, GPUsPerRank: 2}
	if cfg.P() != 6 {
		t.Fatalf("P = %d", cfg.P())
	}
	// v=17: P(v)=17%3=2, G(v)=(17/3)%2=5%2=1, local=17/6=2.
	if cfg.OwnerRank(17) != 2 || cfg.OwnerSlot(17) != 1 {
		t.Fatalf("owner(17) = rank %d slot %d", cfg.OwnerRank(17), cfg.OwnerSlot(17))
	}
	if cfg.LocalID(17) != 2 {
		t.Fatalf("LocalID(17) = %d", cfg.LocalID(17))
	}
	if got := cfg.GlobalID(2, 2, 1); got != 17 {
		t.Fatalf("GlobalID(2,2,1) = %d", got)
	}
}

func TestConfigValidate(t *testing.T) {
	if (Config{Ranks: 0, GPUsPerRank: 1}).Validate() == nil {
		t.Fatal("accepted zero ranks")
	}
	if (Config{Ranks: 1, GPUsPerRank: 0}).Validate() == nil {
		t.Fatal("accepted zero gpus")
	}
	if (Config{Ranks: 2, GPUsPerRank: 2}).Validate() != nil {
		t.Fatal("rejected valid config")
	}
}

// Property: GlobalID ∘ (LocalID, OwnerRank, OwnerSlot) is the identity.
func TestQuickOwnershipRoundTrip(t *testing.T) {
	f := func(vRaw uint32, ranksRaw, gpusRaw uint8) bool {
		cfg := Config{Ranks: int(ranksRaw%7) + 1, GPUsPerRank: int(gpusRaw%5) + 1}
		v := int64(vRaw)
		return cfg.GlobalID(cfg.LocalID(v), cfg.OwnerRank(v), cfg.OwnerSlot(v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalCountPartitionsN(t *testing.T) {
	for _, n := range []int64{1, 7, 64, 1000, 1023} {
		for _, cfg := range []Config{{1, 1}, {2, 2}, {3, 2}, {5, 3}} {
			var sum int64
			for r := 0; r < cfg.Ranks; r++ {
				for s := 0; s < cfg.GPUsPerRank; s++ {
					sum += cfg.LocalCount(n, r, s)
				}
			}
			if sum != n {
				t.Fatalf("n=%d cfg=%+v: local counts sum to %d", n, cfg, sum)
			}
		}
	}
}

func TestSeparateStar(t *testing.T) {
	el := gen.Star(10) // hub 0 has degree 9, leaves 1
	s := Separate(el, 5)
	if s.D() != 1 {
		t.Fatalf("D = %d, want 1", s.D())
	}
	if !s.IsDelegate(0) || s.IsDelegate(1) {
		t.Fatal("wrong delegate set")
	}
	if s.DelegateGlobal[0] != 0 {
		t.Fatalf("DelegateGlobal = %v", s.DelegateGlobal)
	}
}

func TestSeparateThresholdBoundary(t *testing.T) {
	// Degree exactly TH stays normal ("more than TH direct neighbors").
	el := gen.Star(6) // hub degree 5
	if s := Separate(el, 5); s.D() != 0 {
		t.Fatal("degree == TH must stay normal")
	}
	if s := Separate(el, 4); s.D() != 1 {
		t.Fatal("degree > TH must become delegate")
	}
}

func TestSeparateExtremes(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(8))
	if s := Separate(el, 1<<40); s.D() != 0 {
		t.Fatal("TH=inf should create no delegates")
	}
	s := Separate(el, 0)
	deg := el.OutDegrees()
	var nonzero int64
	for _, d := range deg {
		if d > 0 {
			nonzero++
		}
	}
	if s.D() != nonzero {
		t.Fatalf("TH=0: D=%d, want %d (all non-isolated)", s.D(), nonzero)
	}
}

func TestRouteCategories(t *testing.T) {
	el := graph.NewEdgeList(8)
	// Make 0 and 1 delegates (degree 3 each), 2..7 normal.
	for _, v := range []int64{2, 3, 4} {
		el.Add(0, v)
		el.Add(v, 0)
	}
	for _, v := range []int64{5, 6, 7} {
		el.Add(1, v)
		el.Add(v, 1)
	}
	el.Add(2, 3)
	el.Add(3, 2)
	el.Add(0, 1)
	el.Add(1, 0)
	s := Separate(el, 2)
	if s.D() != 2 {
		t.Fatalf("D = %d", s.D())
	}
	cfg := Config{Ranks: 2, GPUsPerRank: 2}

	gpu, cat := Route(cfg, s, 2, 3) // normal→normal: owner(2)
	if cat != NN || gpu != cfg.OwnerGPU(2) {
		t.Fatalf("nn: gpu=%d cat=%v", gpu, cat)
	}
	gpu, cat = Route(cfg, s, 2, 0) // normal→delegate: owner(2)
	if cat != ND || gpu != cfg.OwnerGPU(2) {
		t.Fatalf("nd: gpu=%d cat=%v", gpu, cat)
	}
	gpu, cat = Route(cfg, s, 0, 2) // delegate→normal: owner(2)
	if cat != DN || gpu != cfg.OwnerGPU(2) {
		t.Fatalf("dn: gpu=%d cat=%v", gpu, cat)
	}
	// 0 and 1 have degree 4 each (3 leaves + each other) → tie → min id 0.
	gpu, cat = Route(cfg, s, 0, 1)
	if cat != DD || gpu != cfg.OwnerGPU(0) {
		t.Fatalf("dd tie: gpu=%d cat=%v", gpu, cat)
	}
	gpu2, _ := Route(cfg, s, 1, 0)
	if gpu2 != gpu {
		t.Fatal("dd edge pair split across GPUs")
	}
}

func TestRouteDegreePreference(t *testing.T) {
	el := graph.NewEdgeList(10)
	// Delegate 0 with degree 5, delegate 1 with degree 3.
	for _, v := range []int64{2, 3, 4, 5} {
		el.Add(0, v)
		el.Add(v, 0)
	}
	for _, v := range []int64{6, 7} {
		el.Add(1, v)
		el.Add(v, 1)
	}
	el.Add(0, 1)
	el.Add(1, 0)
	s := Separate(el, 2)
	cfg := Config{Ranks: 3, GPUsPerRank: 1}
	// deg(0)=5 > deg(1)=3 → edge goes to owner of 1 (the lower degree).
	gpu, cat := Route(cfg, s, 0, 1)
	if cat != DD || gpu != cfg.OwnerGPU(1) {
		t.Fatalf("dd: gpu=%d want owner(1)=%d", gpu, cfg.OwnerGPU(1))
	}
	gpu2, _ := Route(cfg, s, 1, 0)
	if gpu2 != gpu {
		t.Fatal("dd pair not colocated")
	}
}

func distributeRMAT(t testing.TB, scale int, th int64, cfg Config) (*graph.EdgeList, *Subgraphs) {
	t.Helper()
	el := rmat.Generate(rmat.DefaultParams(scale))
	s := Separate(el, th)
	sg, err := Distribute(el, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return el, sg
}

// Invariant: every edge is placed on exactly one GPU, in exactly one
// category, and per-category counts match a recount via Route.
func TestDistributeConservation(t *testing.T) {
	el, sg := distributeRMAT(t, 10, 8, Config{Ranks: 3, GPUsPerRank: 2})
	var stored int64
	for _, g := range sg.GPUs {
		stored += g.NN.M() + g.ND.M() + g.DN.M() + g.DD.M()
	}
	if stored != el.M() {
		t.Fatalf("stored %d edges, graph has %d", stored, el.M())
	}
	if sg.CountNN+sg.CountND+sg.CountDN+sg.CountDD != el.M() {
		t.Fatal("category counts do not sum to M")
	}
}

// Invariant: the multiset of edges can be reconstructed exactly from the
// four subgraphs on all GPUs.
func TestDistributeRoundTrip(t *testing.T) {
	el, sg := distributeRMAT(t, 9, 6, Config{Ranks: 2, GPUsPerRank: 2})
	cfg := sg.Cfg
	sep := sg.Sep
	got := map[graph.Edge]int{}
	for _, g := range sg.GPUs {
		for row := int64(0); row < g.NumLocal; row++ {
			u := cfg.GlobalID(uint32(row), g.Rank, g.Slot)
			for _, v := range g.NN.Neighbors(row) {
				got[graph.Edge{U: u, V: v}]++
			}
			for _, dv := range g.ND.Neighbors(row) {
				got[graph.Edge{U: u, V: sep.DelegateGlobal[dv]}]++
			}
		}
		for di := int64(0); di < sg.D(); di++ {
			u := sep.DelegateGlobal[di]
			for _, lv := range g.DN.Neighbors(di) {
				got[graph.Edge{U: u, V: cfg.GlobalID(lv, g.Rank, g.Slot)}]++
			}
			for _, dv := range g.DD.Neighbors(di) {
				got[graph.Edge{U: u, V: sep.DelegateGlobal[dv]}]++
			}
		}
	}
	want := map[graph.Edge]int{}
	for _, e := range el.Edges {
		want[e]++
	}
	if len(got) != len(want) {
		t.Fatalf("distinct edges: got %d want %d", len(got), len(want))
	}
	for e, c := range want {
		if got[e] != c {
			t.Fatalf("edge %v: got %d copies, want %d", e, got[e], c)
		}
	}
}

// Invariant (paper §III-B "Symmetric"): on each GPU, the nd/dn and dd
// subgraphs are symmetric — every stored non-nn edge's reverse is stored on
// the same GPU.
func TestDistributeSymmetry(t *testing.T) {
	_, sg := distributeRMAT(t, 9, 4, Config{Ranks: 3, GPUsPerRank: 2})
	for _, g := range sg.GPUs {
		// nd ↔ dn pairing.
		ndSet := map[[2]uint32]int{}
		for row := int64(0); row < g.NumLocal; row++ {
			for _, dv := range g.ND.Neighbors(row) {
				ndSet[[2]uint32{uint32(row), dv}]++
			}
		}
		dnSet := map[[2]uint32]int{}
		for di := int64(0); di < sg.D(); di++ {
			for _, lv := range g.DN.Neighbors(di) {
				dnSet[[2]uint32{lv, uint32(di)}]++
			}
		}
		if len(ndSet) != len(dnSet) {
			t.Fatalf("gpu %d: nd/dn asymmetric (%d vs %d distinct pairs)", g.GPU, len(ndSet), len(dnSet))
		}
		for k, c := range ndSet {
			if dnSet[k] != c {
				t.Fatalf("gpu %d: nd pair %v count %d, dn has %d", g.GPU, k, c, dnSet[k])
			}
		}
		// dd self-symmetry.
		ddSet := map[[2]uint32]int{}
		for di := int64(0); di < sg.D(); di++ {
			for _, dv := range g.DD.Neighbors(di) {
				ddSet[[2]uint32{uint32(di), dv}]++
			}
		}
		for k, c := range ddSet {
			if ddSet[[2]uint32{k[1], k[0]}] != c {
				t.Fatalf("gpu %d: dd edge %v lacks mirror", g.GPU, k)
			}
		}
	}
}

// Invariant: dn destinations and nn/nd sources are local to the GPU.
func TestDistributeLocality(t *testing.T) {
	_, sg := distributeRMAT(t, 9, 6, Config{Ranks: 2, GPUsPerRank: 3})
	for _, g := range sg.GPUs {
		for row := int64(0); row < g.NumLocal; row++ {
			if g.NN.Degree(row) > 0 || g.ND.Degree(row) > 0 {
				v := sg.Cfg.GlobalID(uint32(row), g.Rank, g.Slot)
				if sg.Cfg.OwnerGPU(v) != g.GPU {
					t.Fatalf("gpu %d stores row for non-owned vertex %d", g.GPU, v)
				}
				if sg.Sep.IsDelegate(v) {
					t.Fatalf("gpu %d has nn/nd edges sourced at delegate %d", g.GPU, v)
				}
			}
		}
		for di := int64(0); di < sg.D(); di++ {
			for _, lv := range g.DN.Neighbors(di) {
				if int64(lv) >= g.NumLocal {
					t.Fatalf("gpu %d: dn destination %d out of local range %d", g.GPU, lv, g.NumLocal)
				}
			}
		}
	}
}

func TestSourceStructures(t *testing.T) {
	_, sg := distributeRMAT(t, 9, 6, Config{Ranks: 2, GPUsPerRank: 2})
	for _, g := range sg.GPUs {
		seen := map[uint32]bool{}
		for _, row := range g.NDSources {
			if g.ND.Degree(int64(row)) == 0 {
				t.Fatalf("gpu %d: NDSources contains row %d with no nd edges", g.GPU, row)
			}
			if seen[row] {
				t.Fatalf("gpu %d: duplicate nd source %d", g.GPU, row)
			}
			seen[row] = true
		}
		for row := int64(0); row < g.NumLocal; row++ {
			if g.ND.Degree(row) > 0 && !seen[uint32(row)] {
				t.Fatalf("gpu %d: row %d missing from NDSources", g.GPU, row)
			}
		}
		for di := int64(0); di < sg.D(); di++ {
			if (g.DD.Degree(di) > 0) != g.DDSourceMask.Get(di) {
				t.Fatalf("gpu %d: DDSourceMask wrong at %d", g.GPU, di)
			}
			if (g.DN.Degree(di) > 0) != g.DNSourceMask.Get(di) {
				t.Fatalf("gpu %d: DNSourceMask wrong at %d", g.GPU, di)
			}
		}
	}
}

// Property: distribution invariants hold across random graphs and shapes.
func TestQuickDistributeInvariants(t *testing.T) {
	f := func(seed int64, ranksRaw, gpusRaw, thRaw uint8) bool {
		cfg := Config{Ranks: int(ranksRaw%4) + 1, GPUsPerRank: int(gpusRaw%3) + 1}
		th := int64(thRaw % 16)
		rng := rand.New(rand.NewSource(seed))
		n := int64(rng.Intn(60) + 2)
		base := graph.NewEdgeList(n)
		for i := 0; i < rng.Intn(150); i++ {
			base.Add(rng.Int63n(n), rng.Int63n(n))
		}
		el := base.Symmetrize()
		s := Separate(el, th)
		sg, err := Distribute(el, s, cfg)
		if err != nil {
			return false
		}
		var stored int64
		for _, g := range sg.GPUs {
			stored += g.NN.M() + g.ND.M() + g.DN.M() + g.DD.M()
		}
		if stored != el.M() {
			return false
		}
		// Measured memory total must be ≥ formula (sentinel slack) and
		// within 8*(2p + 2) bytes per extra sentinel row entries.
		mem := sg.Memory().Total()
		pred := sg.PredictedTotal()
		slack := int64(sg.Cfg.P())*16 + 16
		return mem >= pred-slack && mem <= pred+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryAccounting(t *testing.T) {
	_, sg := distributeRMAT(t, 12, 32, Config{Ranks: 2, GPUsPerRank: 2})
	mem := sg.Memory()
	// Column bytes are exact: nn 8/edge, others 4/edge.
	if mem.NNCols != 8*sg.CountNN {
		t.Fatalf("NNCols = %d, want %d", mem.NNCols, 8*sg.CountNN)
	}
	if mem.NDCols != 4*sg.CountND || mem.DNCols != 4*sg.CountDN || mem.DDCols != 4*sg.CountDD {
		t.Fatal("32-bit column accounting wrong")
	}
	// dn/dd row bytes: d rows × 4 bytes per GPU (Table I).
	wantDRows := int64(sg.Cfg.P()) * sg.D() * 4
	if mem.DNRows != wantDRows || mem.DDRows != wantDRows {
		t.Fatalf("delegate row bytes = %d/%d, want %d", mem.DNRows, mem.DDRows, wantDRows)
	}
	// The headline claim: under the paper's TH guidance the representation
	// is far smaller than a 16m edge list (about one third at tuned TH).
	if got, lim := mem.Total(), sg.EdgeListBytes(); got >= lim/2 {
		t.Fatalf("memory %d not < half of edge list %d", got, lim)
	}
}

func TestBalanceRMAT(t *testing.T) {
	_, sg := distributeRMAT(t, 12, 32, Config{Ranks: 4, GPUsPerRank: 2})
	if r := sg.BalanceRatio(); r > 1.5 {
		t.Fatalf("balance ratio %.2f > 1.5 — distributor not balanced", r)
	}
}

func TestDistributeErrors(t *testing.T) {
	el := gen.Path(10)
	s := Separate(el, 100)
	if _, err := Distribute(el, s, Config{Ranks: 0, GPUsPerRank: 1}); err == nil {
		t.Fatal("accepted bad config")
	}
	other := gen.Path(11)
	if _, err := Distribute(other, s, Config{Ranks: 1, GPUsPerRank: 1}); err == nil {
		t.Fatal("accepted mismatched separation")
	}
}

func TestDistributeMoreGPUsThanVertices(t *testing.T) {
	el := gen.Path(3)
	s := Separate(el, 100)
	sg, err := Distribute(el, s, Config{Ranks: 4, GPUsPerRank: 2})
	if err != nil {
		t.Fatal(err)
	}
	var stored int64
	for _, g := range sg.GPUs {
		stored += g.NN.M() + g.ND.M() + g.DN.M() + g.DD.M()
	}
	if stored != el.M() {
		t.Fatalf("stored %d, want %d", stored, el.M())
	}
}

func BenchmarkDistributeScale14(b *testing.B) {
	el := rmat.Generate(rmat.DefaultParams(14))
	s := Separate(el, 32)
	cfg := Config{Ranks: 4, GPUsPerRank: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Distribute(el, s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
