package partition

import (
	"testing"

	"gcbfs/internal/graph"
	"gcbfs/internal/rmat"
)

// equalGPUGraph compares every array of two GPUGraphs (byte-identity of the
// rebuilt representation, not just shape).
func equalGPUGraph(t *testing.T, gpu int, a, b *GPUGraph) {
	t.Helper()
	if a.NumLocal != b.NumLocal {
		t.Fatalf("gpu %d: NumLocal %d vs %d", gpu, a.NumLocal, b.NumLocal)
	}
	cmp32 := func(name string, x, y *SubCSR32) {
		if len(x.RowOffsets) != len(y.RowOffsets) || len(x.Cols) != len(y.Cols) {
			t.Fatalf("gpu %d %s: shape mismatch", gpu, name)
		}
		for i := range x.RowOffsets {
			if x.RowOffsets[i] != y.RowOffsets[i] {
				t.Fatalf("gpu %d %s: row offset %d differs", gpu, name, i)
			}
		}
		for i := range x.Cols {
			if x.Cols[i] != y.Cols[i] {
				t.Fatalf("gpu %d %s: col %d differs", gpu, name, i)
			}
		}
	}
	if len(a.NN.Cols) != len(b.NN.Cols) || len(a.NN.RowOffsets) != len(b.NN.RowOffsets) {
		t.Fatalf("gpu %d nn: shape mismatch", gpu)
	}
	for i := range a.NN.RowOffsets {
		if a.NN.RowOffsets[i] != b.NN.RowOffsets[i] {
			t.Fatalf("gpu %d nn: row offset %d differs", gpu, i)
		}
	}
	for i := range a.NN.Cols {
		if a.NN.Cols[i] != b.NN.Cols[i] {
			t.Fatalf("gpu %d nn: col %d differs", gpu, i)
		}
	}
	cmp32("nd", a.ND, b.ND)
	cmp32("dn", a.DN, b.DN)
	cmp32("dd", a.DD, b.DD)
	if len(a.NDSources) != len(b.NDSources) {
		t.Fatalf("gpu %d: nd source count differs", gpu)
	}
	for i := range a.NDSources {
		if a.NDSources[i] != b.NDSources[i] {
			t.Fatalf("gpu %d: nd source %d differs", gpu, i)
		}
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("gpu %d: fingerprint differs", gpu)
	}
}

// TestDistributeIncrementalMatchesFull mutates an RMAT graph (delete a few
// undirected pairs, insert a few fresh ones), then checks that the
// incremental distributor produces exactly what a from-scratch Distribute
// over the new edge list produces, while sharing at least one clean GPU.
func TestDistributeIncrementalMatchesFull(t *testing.T) {
	el := rmat.Generate(rmat.Params{Scale: 11, EdgeFactor: 8, Seed: 3, Permute: true, Symmetric: true})
	cfg := Config{Ranks: 3, GPUsPerRank: 2}
	th := SuggestThreshold(el.OutDegrees(), 4*el.N/int64(cfg.P()))
	sep := Separate(el, th)
	prev, err := Distribute(el, sep, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// A tiny localized delta: drop the first two non-self undirected pairs
	// whose endpoints are both normal (so the delegate set is stable), add
	// two fresh pairs between low-degree vertices.
	next := &graph.EdgeList{N: el.N, Edges: append([]graph.Edge(nil), el.Edges...)}
	deg := el.OutDegrees()
	var lowDeg []int64
	for v := int64(0); v < el.N && len(lowDeg) < 4; v++ {
		if deg[v] >= 1 && deg[v] <= 2 && !sep.IsDelegate(v) {
			lowDeg = append(lowDeg, v)
		}
	}
	if len(lowDeg) < 4 {
		t.Skip("graph has no low-degree normal vertices to mutate")
	}
	next.Edges = append(next.Edges,
		graph.Edge{U: lowDeg[0], V: lowDeg[1]}, graph.Edge{U: lowDeg[1], V: lowDeg[0]},
		graph.Edge{U: lowDeg[2], V: lowDeg[3]}, graph.Edge{U: lowDeg[3], V: lowDeg[2]})

	nextSep := Separate(next, th)
	if !SameDelegates(sep, nextSep) {
		t.Skip("delta shifted the delegate set; pick different vertices")
	}

	inc, reported, err := DistributeIncremental(next, nextSep, cfg, prev)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Distribute(next, nextSep, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if reported == 0 {
		t.Errorf("incremental rebuild touched all %d GPUs for a 2-pair delta", cfg.P())
	}
	shared := 0
	for i := range inc.GPUs {
		equalGPUGraph(t, i, inc.GPUs[i], full.GPUs[i])
		if inc.GPUs[i] == prev.GPUs[i] {
			shared++
		}
	}
	if shared != reported {
		t.Errorf("shared %d GPUGraphs, reported %d", shared, reported)
	}
	if inc.CountNN != full.CountNN || inc.CountND != full.CountND ||
		inc.CountDN != full.CountDN || inc.CountDD != full.CountDD {
		t.Errorf("category counts differ from full distribute")
	}
	for i := range full.DelegateOutDeg {
		if inc.DelegateOutDeg[i] != full.DelegateOutDeg[i] {
			t.Fatalf("delegate out-degree %d differs", i)
		}
	}
}

// TestDistributeIncrementalDelegateShift forces a delegate-set change and
// checks the incremental path falls back to a full rebuild with correct
// output.
func TestDistributeIncrementalDelegateShift(t *testing.T) {
	el := rmat.Generate(rmat.Params{Scale: 10, EdgeFactor: 8, Seed: 9, Permute: true, Symmetric: true})
	cfg := Config{Ranks: 2, GPUsPerRank: 2}
	th := SuggestThreshold(el.OutDegrees(), 4*el.N/int64(cfg.P()))
	sep := Separate(el, th)
	prev, err := Distribute(el, sep, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Attach a star to vertex 0 until it crosses the threshold.
	next := &graph.EdgeList{N: el.N, Edges: append([]graph.Edge(nil), el.Edges...)}
	deg := el.OutDegrees()
	var hub int64 = -1
	for v := int64(0); v < el.N; v++ {
		if !sep.IsDelegate(v) && deg[v] > 0 {
			hub = v
			break
		}
	}
	if hub < 0 {
		t.Skip("no normal vertex to promote")
	}
	for i := int64(0); deg[hub]+i <= th+1; i++ {
		other := (hub + 1 + i) % el.N
		next.Edges = append(next.Edges, graph.Edge{U: hub, V: other}, graph.Edge{U: other, V: hub})
	}
	nextSep := Separate(next, th)
	if SameDelegates(sep, nextSep) {
		t.Fatal("test setup failed to change the delegate set")
	}

	inc, shared, err := DistributeIncremental(next, nextSep, cfg, prev)
	if err != nil {
		t.Fatal(err)
	}
	if shared != 0 {
		t.Errorf("delegate shift shared %d GPUs, want a full rebuild", shared)
	}
	full, err := Distribute(next, nextSep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inc.GPUs {
		equalGPUGraph(t, i, inc.GPUs[i], full.GPUs[i])
	}
}
