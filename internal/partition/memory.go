package partition

// Table-I memory accounting (§III-C). The paper's claim: with a suitable TH
// the degree-separated representation totals 8n + 8d·p + 4m + 4|Enn| bytes
// across all GPUs — about one third of a conventional 16m edge list and a
// little more than half of undistributed 8n + 8m CSR.

// MemoryUsage breaks down measured subgraph storage in bytes, summed over
// all GPUs, in the same rows as Table I.
type MemoryUsage struct {
	NNRows, NNCols int64
	NDRows, NDCols int64
	DNRows, DNCols int64
	DDRows, DDCols int64
}

// Total sums all components.
func (m MemoryUsage) Total() int64 {
	return m.NNRows + m.NNCols + m.NDRows + m.NDCols +
		m.DNRows + m.DNCols + m.DDRows + m.DDCols
}

// Memory measures the actual byte footprint of every subgraph array.
func (sg *Subgraphs) Memory() MemoryUsage {
	var m MemoryUsage
	for _, g := range sg.GPUs {
		m.NNRows += g.NN.RowBytes()
		m.NNCols += g.NN.ColBytes()
		m.NDRows += g.ND.RowBytes()
		m.NDCols += g.ND.ColBytes()
		m.DNRows += g.DN.RowBytes()
		m.DNCols += g.DN.ColBytes()
		m.DDRows += g.DD.RowBytes()
		m.DDCols += g.DD.ColBytes()
	}
	return m
}

// PredictTotal evaluates the closed-form Table-I total
// 8n + 8d·p + 4m + 4|Enn| for the given quantities.
func PredictTotal(n, d, m, enn int64, p int) int64 {
	return 8*n + 8*d*int64(p) + 4*m + 4*enn
}

// PredictedTotal evaluates the Table-I formula on this partitioning.
// Row-offset arrays carry one extra sentinel entry per row array versus the
// paper's n/p accounting, so measured ≈ predicted + small O(p) slack; tests
// bound the difference.
func (sg *Subgraphs) PredictedTotal() int64 {
	return PredictTotal(sg.N, sg.D(), sg.M, sg.CountNN, sg.Cfg.P())
}

// EdgeListBytes is the conventional edge-list cost the paper compares
// against: 16 bytes per directed edge.
func (sg *Subgraphs) EdgeListBytes() int64 { return 16 * sg.M }

// PlainCSRBytes is the cost of undistributed CSR without degree separation:
// 8n + 8m.
func (sg *Subgraphs) PlainCSRBytes() int64 { return 8*sg.N + 8*sg.M }

// MaxGPUBytes returns the largest single-GPU footprint — the quantity that
// must fit in device memory (16 GB on P100), which bounds the processable
// scale (§III-C, §VI-C).
func (sg *Subgraphs) MaxGPUBytes() int64 {
	var max int64
	for _, g := range sg.GPUs {
		if b := g.MemoryBytes(); b > max {
			max = b
		}
	}
	return max
}

// BalanceRatio returns max/mean edges per GPU — Algorithm 1's "balanced"
// property says this stays close to 1.
func (sg *Subgraphs) BalanceRatio() float64 {
	if len(sg.GPUs) == 0 {
		return 1
	}
	var max, total int64
	for _, g := range sg.GPUs {
		edges := g.NN.M() + g.ND.M() + g.DN.M() + g.DD.M()
		total += edges
		if edges > max {
			max = edges
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(sg.GPUs))
	return float64(max) / mean
}
