package partition

import (
	"fmt"

	"gcbfs/internal/bitmask"
	"gcbfs/internal/graph"
)

// SubCSR32 is a per-GPU CSR whose column indices are 32-bit local values
// (local normal slots or dense delegate ids). Row offsets are also 32-bit,
// matching the 4-byte-per-row costs in Table I.
type SubCSR32 struct {
	NumRows    int64
	RowOffsets []uint32 // len NumRows+1
	Cols       []uint32
}

// Neighbors returns row u's adjacency.
func (c *SubCSR32) Neighbors(u int64) []uint32 {
	return c.Cols[c.RowOffsets[u]:c.RowOffsets[u+1]]
}

// Degree returns row u's length.
func (c *SubCSR32) Degree(u int64) int64 {
	return int64(c.RowOffsets[u+1] - c.RowOffsets[u])
}

// M returns the number of edges stored.
func (c *SubCSR32) M() int64 { return int64(len(c.Cols)) }

// RowBytes and ColBytes are the Table-I byte costs of this subgraph.
func (c *SubCSR32) RowBytes() int64 { return c.NumRows * 4 }
func (c *SubCSR32) ColBytes() int64 { return int64(len(c.Cols)) * 4 }

// SubCSR64 is the nn subgraph: rows are local normal slots, columns are
// global 64-bit vertex ids (destinations may live on any GPU, so they cannot
// be narrowed — the 8-byte nn column cost in Table I).
type SubCSR64 struct {
	NumRows    int64
	RowOffsets []uint32
	Cols       []int64
}

// Neighbors returns row u's adjacency (global ids).
func (c *SubCSR64) Neighbors(u int64) []int64 {
	return c.Cols[c.RowOffsets[u]:c.RowOffsets[u+1]]
}

// Degree returns row u's length.
func (c *SubCSR64) Degree(u int64) int64 {
	return int64(c.RowOffsets[u+1] - c.RowOffsets[u])
}

// M returns the number of edges stored.
func (c *SubCSR64) M() int64 { return int64(len(c.Cols)) }

// RowBytes and ColBytes are the Table-I byte costs of this subgraph.
func (c *SubCSR64) RowBytes() int64 { return c.NumRows * 4 }
func (c *SubCSR64) ColBytes() int64 { return int64(len(c.Cols)) * 8 }

// GPUGraph is everything one simulated GPU stores: the four subgraphs plus
// the direction-optimization side structures (§IV-B): the nd source list
// (potential destinations of backward dn pulls) and the dd/dn source masks.
type GPUGraph struct {
	GPU        int // global GPU index
	Rank, Slot int
	NumLocal   int64 // local vertex slots (≈ n/p)

	// Fingerprint hashes this GPU's routed (category, u, v) edge stream in
	// edge-list order plus its per-category edge counts. Because the CSR fill
	// pass consumes edges in exactly that order, an unchanged fingerprint
	// under an unchanged delegate set means the rebuilt GPUGraph would be
	// byte-identical — DistributeIncremental shares the old one instead.
	Fingerprint uint64

	NN *SubCSR64 // local normal → global normal
	ND *SubCSR32 // local normal → delegate id
	DN *SubCSR32 // delegate id → local normal
	DD *SubCSR32 // delegate id → delegate id

	// NDSources lists local slots with at least one nd edge, ascending.
	// In the reverse direction these are exactly the vertices a dn
	// backward pull may discover ("we keep a source list of the
	// normal-to-delegate subgraph").
	NDSources []uint32
	// DDSourceMask/DNSourceMask mark delegates with local dd/dn edges
	// ("we keep source masks for the dd and dn subgraphs").
	DDSourceMask *bitmask.Mask
	DNSourceMask *bitmask.Mask
}

// MemoryBytes returns the measured Table-I footprint of this GPU's subgraphs
// (row offsets + column indices, at their true element widths).
func (g *GPUGraph) MemoryBytes() int64 {
	return g.NN.RowBytes() + g.NN.ColBytes() +
		g.ND.RowBytes() + g.ND.ColBytes() +
		g.DN.RowBytes() + g.DN.ColBytes() +
		g.DD.RowBytes() + g.DD.ColBytes()
}

// Subgraphs is the fully distributed graph: one GPUGraph per simulated GPU
// plus the global separation metadata every GPU keeps (delegate directory).
type Subgraphs struct {
	Cfg Config
	Sep *Separation
	N   int64 // global vertex count
	M   int64 // global directed edge count

	GPUs []*GPUGraph

	// Per-category global edge counts (Fig 5/7/12 report their shares).
	CountNN, CountND, CountDN, CountDD int64

	// DelegateOutDeg[d] is the global out-degree of delegate d — previsit
	// kernels use it for forward-workload estimates; it is part of the
	// replicated delegate directory.
	DelegateOutDeg []int64
}

// D returns the delegate count.
func (sg *Subgraphs) D() int64 { return sg.Sep.D() }

// fnv-1a style 64-bit word folding for the per-GPU edge-stream fingerprints.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fpMix(h, x uint64) uint64 {
	h ^= x
	h *= fnvPrime64
	return h
}

// SameDelegates reports whether two separations induce the same delegate set
// (and therefore the same dense delegate-id mapping). Out-degrees may still
// differ — that only moves dd edges between owners, which the per-GPU
// fingerprints catch.
func SameDelegates(a, b *Separation) bool {
	if a.N != b.N || len(a.DelegateGlobal) != len(b.DelegateGlobal) {
		return false
	}
	for i, v := range a.DelegateGlobal {
		if b.DelegateGlobal[i] != v {
			return false
		}
	}
	return true
}

// Distribute runs Algorithm 1 over the edge list and materializes the four
// subgraphs on every GPU. The input must be symmetric (every u→v paired with
// v→u) for the dn/nd/dd subgraph symmetry the engine relies on; Distribute
// does not verify that (generators guarantee it; tests cover it).
func Distribute(el *graph.EdgeList, sep *Separation, cfg Config) (*Subgraphs, error) {
	sg, _, err := distribute(el, sep, cfg, nil)
	return sg, err
}

// DistributeIncremental is Distribute for the next epoch of a mutated graph:
// it routes the new edge list once, fingerprints every GPU's routed edge
// stream, and rebuilds only the GPUs whose stream changed — every clean GPU
// shares its immutable *GPUGraph with prev. A changed delegate set (the
// dense delegate-id mapping shifts on every GPU) falls back to a full
// rebuild. Returns the number of GPUs shared (reused from prev; the rest
// were rebuilt).
func DistributeIncremental(el *graph.EdgeList, sep *Separation, cfg Config, prev *Subgraphs) (*Subgraphs, int, error) {
	if prev == nil || prev.Cfg != cfg || prev.N != el.N || !SameDelegates(sep, prev.Sep) {
		return distribute(el, sep, cfg, nil)
	}
	return distribute(el, sep, cfg, prev)
}

// distribute implements Distribute; when prev is non-nil (same cfg, vertex
// count and delegate set) it reuses prev's GPUGraphs wherever the routed
// edge stream fingerprint is unchanged. Because both the counting and the
// fill pass consume edges in edge-list order, an unchanged per-GPU stream
// rebuilds byte-identically — sharing the pointer is exact, not approximate.
func distribute(el *graph.EdgeList, sep *Separation, cfg Config, prev *Subgraphs) (*Subgraphs, int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	if sep.N != el.N {
		return nil, 0, fmt.Errorf("partition: separation over %d vertices, graph has %d", sep.N, el.N)
	}
	p := cfg.P()
	d := sep.D()
	sg := &Subgraphs{Cfg: cfg, Sep: sep, N: el.N, M: el.M()}

	// Pass 1: route every edge once (cached for the later passes), fold the
	// per-GPU stream fingerprints, and tally global category counts.
	route := make([]uint8, len(el.Edges)) // cache gpu*4+cat per edge? gpu may exceed 63 → store separately
	gpus := make([]int32, len(el.Edges))
	fp := make([]uint64, p)
	var perCat [4][]int64
	for c := range perCat {
		perCat[c] = make([]int64, p)
	}
	for i := range fp {
		fp[i] = fnvOffset64
	}
	for i, e := range el.Edges {
		gpu, cat := Route(cfg, sep, e.U, e.V)
		route[i] = uint8(cat)
		gpus[i] = int32(gpu)
		fp[gpu] = fpMix(fpMix(fpMix(fp[gpu], uint64(cat)), uint64(e.U)), uint64(e.V))
		perCat[cat][gpu]++
		switch cat {
		case NN:
			sg.CountNN++
		case ND:
			sg.CountND++
		case DN:
			sg.CountDN++
		case DD:
			sg.CountDD++
		}
	}
	for i := 0; i < p; i++ {
		for c := 0; c < 4; c++ {
			fp[i] = fpMix(fp[i], uint64(perCat[c][i]))
		}
	}

	// Decide which GPUs need a rebuild; share the rest.
	sg.GPUs = make([]*GPUGraph, p)
	dirty := make([]bool, p)
	rebuilt := 0
	for i := 0; i < p; i++ {
		if prev != nil && prev.GPUs[i].Fingerprint == fp[i] {
			sg.GPUs[i] = prev.GPUs[i]
			continue
		}
		dirty[i] = true
		rebuilt++
	}

	// Pass 2: count rows per (dirty gpu, category) to size the CSR arrays.
	type counts struct {
		nn, nd, dn, dd []uint32 // per-row edge counts
	}
	per := make([]counts, p)
	for i := range per {
		if !dirty[i] {
			continue
		}
		rank, slot := i/cfg.GPUsPerRank, i%cfg.GPUsPerRank
		nLocal := cfg.LocalCount(el.N, rank, slot)
		per[i].nn = make([]uint32, nLocal+1)
		per[i].nd = make([]uint32, nLocal+1)
		per[i].dn = make([]uint32, d+1)
		per[i].dd = make([]uint32, d+1)
	}
	for i, e := range el.Edges {
		gpu := int(gpus[i])
		if !dirty[gpu] {
			continue
		}
		pc := &per[gpu]
		switch EdgeCategory(route[i]) {
		case NN:
			pc.nn[cfg.LocalID(e.U)+1]++
		case ND:
			pc.nd[cfg.LocalID(e.U)+1]++
		case DN:
			pc.dn[sep.DelegateID[e.U]+1]++
		case DD:
			pc.dd[sep.DelegateID[e.U]+1]++
		}
	}

	// Prefix sums → row offsets; allocate column arrays.
	for i := 0; i < p; i++ {
		if !dirty[i] {
			continue
		}
		rank, slot := i/cfg.GPUsPerRank, i%cfg.GPUsPerRank
		nLocal := cfg.LocalCount(el.N, rank, slot)
		pc := &per[i]
		prefix := func(a []uint32) {
			for j := 1; j < len(a); j++ {
				a[j] += a[j-1]
			}
		}
		prefix(pc.nn)
		prefix(pc.nd)
		prefix(pc.dn)
		prefix(pc.dd)
		g := &GPUGraph{
			GPU: i, Rank: rank, Slot: slot, NumLocal: nLocal, Fingerprint: fp[i],
			NN:           &SubCSR64{NumRows: nLocal, RowOffsets: pc.nn, Cols: make([]int64, pc.nn[nLocal])},
			ND:           &SubCSR32{NumRows: nLocal, RowOffsets: pc.nd, Cols: make([]uint32, pc.nd[nLocal])},
			DN:           &SubCSR32{NumRows: d, RowOffsets: pc.dn, Cols: make([]uint32, pc.dn[d])},
			DD:           &SubCSR32{NumRows: d, RowOffsets: pc.dd, Cols: make([]uint32, pc.dd[d])},
			DDSourceMask: bitmask.New(d),
			DNSourceMask: bitmask.New(d),
		}
		sg.GPUs[i] = g
	}

	// Pass 3: fill columns. Cursor arrays track the next free slot per row.
	cursors := make([]counts, p)
	for i := range cursors {
		if !dirty[i] {
			continue
		}
		g := sg.GPUs[i]
		cursors[i].nn = make([]uint32, g.NumLocal)
		cursors[i].nd = make([]uint32, g.NumLocal)
		cursors[i].dn = make([]uint32, d)
		cursors[i].dd = make([]uint32, d)
	}
	for i, e := range el.Edges {
		gpu := int(gpus[i])
		if !dirty[gpu] {
			continue
		}
		g := sg.GPUs[gpu]
		cur := &cursors[gpu]
		switch EdgeCategory(route[i]) {
		case NN:
			row := int64(cfg.LocalID(e.U))
			g.NN.Cols[g.NN.RowOffsets[row]+cur.nn[row]] = e.V
			cur.nn[row]++
		case ND:
			row := int64(cfg.LocalID(e.U))
			g.ND.Cols[g.ND.RowOffsets[row]+cur.nd[row]] = uint32(sep.DelegateID[e.V])
			cur.nd[row]++
		case DN:
			row := int64(sep.DelegateID[e.U])
			g.DN.Cols[g.DN.RowOffsets[row]+cur.dn[row]] = cfg.LocalID(e.V)
			cur.dn[row]++
			g.DNSourceMask.Set(row)
		case DD:
			row := int64(sep.DelegateID[e.U])
			g.DD.Cols[g.DD.RowOffsets[row]+cur.dd[row]] = uint32(sep.DelegateID[e.V])
			cur.dd[row]++
			g.DDSourceMask.Set(row)
		}
	}

	// Side structures: nd source lists (rebuilt GPUs only; shared GPUs keep
	// theirs).
	for i, g := range sg.GPUs {
		if !dirty[i] {
			continue
		}
		for row := int64(0); row < g.NumLocal; row++ {
			if g.ND.Degree(row) > 0 {
				g.NDSources = append(g.NDSources, uint32(row))
			}
		}
	}

	// Replicated delegate directory (out-degrees can change without any
	// subgraph changing hands, so this is always rebuilt).
	sg.DelegateOutDeg = make([]int64, d)
	for di, v := range sep.DelegateGlobal {
		sg.DelegateOutDeg[di] = sep.OutDeg[v]
	}
	return sg, p - rebuilt, nil
}
