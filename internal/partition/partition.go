// Package partition implements the paper's graph representation (§III):
// separation of vertices into delegates (out-degree > TH, replicated on
// every GPU) and normal vertices (owned by exactly one GPU), the
// deterministic edge distributor of Algorithm 1, the four per-GPU subgraphs
// (nn, nd, dn, dd) with 32-bit local indices, and the Table-I memory
// accounting that makes the representation about one third the size of a
// conventional edge list.
package partition

import (
	"fmt"

	"gcbfs/internal/graph"
)

// Config fixes the cluster shape for partitioning purposes: the number of
// MPI ranks (p_rank) and GPUs per rank (p_gpu). Vertex ownership follows the
// paper's layout: P(v) = v mod p_rank, G(v) = (v / p_rank) mod p_gpu.
type Config struct {
	Ranks       int // p_rank
	GPUsPerRank int // p_gpu
}

// P returns the total GPU count p = p_rank * p_gpu.
func (c Config) P() int { return c.Ranks * c.GPUsPerRank }

// Validate checks the configuration is usable.
func (c Config) Validate() error {
	if c.Ranks <= 0 || c.GPUsPerRank <= 0 {
		return fmt.Errorf("partition: invalid config %d ranks × %d gpus", c.Ranks, c.GPUsPerRank)
	}
	return nil
}

// OwnerRank returns P(v) = v mod p_rank.
func (c Config) OwnerRank(v int64) int { return int(v % int64(c.Ranks)) }

// OwnerSlot returns G(v) = (v / p_rank) mod p_gpu, the GPU index within the
// owning rank.
func (c Config) OwnerSlot(v int64) int {
	return int((v / int64(c.Ranks)) % int64(c.GPUsPerRank))
}

// GPUIndex flattens (rank, slot) into a global GPU id in [0, P).
func (c Config) GPUIndex(rank, slot int) int { return rank*c.GPUsPerRank + slot }

// OwnerGPU returns the global GPU id owning vertex v.
func (c Config) OwnerGPU(v int64) int {
	return c.GPUIndex(c.OwnerRank(v), c.OwnerSlot(v))
}

// LocalID returns the local slot of v on its owner GPU: v / p. Local ids fit
// in 32 bits for every graph the system targets (n/p ≤ 2^31), which is what
// shrinks the nd/dn/dd column indices to 4 bytes (Table I).
func (c Config) LocalID(v int64) uint32 { return uint32(v / int64(c.P())) }

// GlobalID inverts LocalID for the GPU identified by (rank, slot):
// v = local*p + (rank + p_rank*slot).
func (c Config) GlobalID(local uint32, rank, slot int) int64 {
	return int64(local)*int64(c.P()) + int64(rank) + int64(c.Ranks)*int64(slot)
}

// Residue returns the vertex residue class owned by (rank, slot).
func (c Config) Residue(rank, slot int) int64 {
	return int64(rank) + int64(c.Ranks)*int64(slot)
}

// LocalCount returns the number of local vertex slots on (rank, slot):
// the size of level arrays and nn/nd row spaces on that GPU (≈ n/p).
func (c Config) LocalCount(n int64, rank, slot int) int64 {
	res := c.Residue(rank, slot)
	if res >= n {
		return 0
	}
	return (n-1-res)/int64(c.P()) + 1
}

// Separation is the outcome of degree separation at a given threshold TH
// (§III-A): vertices with out-degree > TH become delegates with dense ids
// 0..D-1 (in ascending order of global id); everything else stays normal.
type Separation struct {
	Threshold int64
	N         int64
	OutDeg    []int64 // out-degree of every global vertex
	// DelegateID[v] is the dense delegate id of v, or -1 if v is normal.
	DelegateID []int32
	// DelegateGlobal[d] is the global vertex id of delegate d.
	DelegateGlobal []int64
}

// Separate computes out-degrees and splits vertices at threshold th.
func Separate(el *graph.EdgeList, th int64) *Separation {
	deg := el.OutDegrees()
	s := &Separation{Threshold: th, N: el.N, OutDeg: deg, DelegateID: make([]int32, el.N)}
	for v := int64(0); v < el.N; v++ {
		if deg[v] > th {
			s.DelegateID[v] = int32(len(s.DelegateGlobal))
			s.DelegateGlobal = append(s.DelegateGlobal, v)
		} else {
			s.DelegateID[v] = -1
		}
	}
	return s
}

// D returns the number of delegates.
func (s *Separation) D() int64 { return int64(len(s.DelegateGlobal)) }

// IsDelegate reports whether global vertex v is a delegate.
func (s *Separation) IsDelegate(v int64) bool { return s.DelegateID[v] >= 0 }

// SuggestThreshold picks the degree threshold the way §VI-B tunes it: the
// smallest power-of-√2 TH whose delegate count stays at or below
// maxDelegates (the paper keeps d under 4n/p). Larger TH also shrinks the
// delegate mask but grows the nn share; the paper's sweeps (Figs. 6/13) show
// a wide near-optimal plateau, so the d-bound is the binding constraint.
func SuggestThreshold(outDeg []int64, maxDelegates int64) int64 {
	var maxDeg int64
	for _, d := range outDeg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	countAbove := func(th int64) int64 {
		var c int64
		for _, d := range outDeg {
			if d > th {
				c++
			}
		}
		return c
	}
	th := int64(1)
	step := false // alternate ×2 and ×1.5 ≈ √2 growth on average
	for th < maxDeg {
		if countAbove(th) <= maxDelegates {
			return th
		}
		if step {
			th = th * 3 / 2
		} else {
			th *= 2
		}
		step = !step
	}
	return th
}

// EdgeCategory classifies a directed edge by its endpoint kinds (§III-B).
type EdgeCategory uint8

const (
	NN EdgeCategory = iota // normal → normal
	ND                     // normal → delegate
	DN                     // delegate → normal
	DD                     // delegate → delegate
)

func (c EdgeCategory) String() string {
	switch c {
	case NN:
		return "nn"
	case ND:
		return "nd"
	case DN:
		return "dn"
	case DD:
		return "dd"
	}
	return "??"
}

// Route implements Algorithm 1: it returns the destination GPU and the edge
// category for directed edge u→v.
//
//	if u is normal:            to owner(u)   (nn or nd)
//	else if v is normal:       to owner(v)   (dn)
//	else lower-out-degree endpoint's owner, ties to owner(min(u,v))  (dd)
func Route(cfg Config, s *Separation, u, v int64) (gpu int, cat EdgeCategory) {
	uDel, vDel := s.IsDelegate(u), s.IsDelegate(v)
	switch {
	case !uDel && !vDel:
		return cfg.OwnerGPU(u), NN
	case !uDel: // u normal, v delegate
		return cfg.OwnerGPU(u), ND
	case !vDel: // u delegate, v normal
		return cfg.OwnerGPU(v), DN
	default:
		du, dv := s.OutDeg[u], s.OutDeg[v]
		switch {
		case du < dv:
			return cfg.OwnerGPU(u), DD
		case du > dv:
			return cfg.OwnerGPU(v), DD
		default:
			if u <= v {
				return cfg.OwnerGPU(u), DD
			}
			return cfg.OwnerGPU(v), DD
		}
	}
}
