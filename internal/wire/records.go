package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"slices"
)

// Record codec for the multi-source shared sweep (MS-BFS): the sweep's
// frontier records are (vertex id, query-set mask) pairs, where the mask is a
// w-word bitset saying which of the K concurrent queries reached the vertex.
// One encoded record block carries the records destined for one GPU slot:
//
//	id block        exactly the single-query block format (wire.go): scheme
//	                byte, uvarint n, payload, CRC32. Ids are sorted ascending
//	                and duplicate-free (the sweep merges same-id records
//	                sender-side by OR-ing their masks), so the delta and
//	                bitmap schemes apply unchanged.
//	mask section    1 byte mask scheme, then the per-record masks in id
//	                order, then CRC32 (IEEE, little-endian) of the section.
//
// Mask scheme payloads (w = words per record, fixed per sweep):
//
//	MaskRaw     n × w × uint64 little-endian. Right for the dense early
//	            iterations where most queries share the frontier.
//	MaskSparse  per record: uvarint popcount c, then c uvarint bit positions
//	            strictly ascending. Right for the late iterations where each
//	            vertex is reached by a handful of stragglers — and for wide
//	            sweeps (large w) whose raw rows are mostly zero words.
//
// The fixed-width equivalent charged to Stats.RawBytes is n·(4 + 8w) — the
// id convention of the single-query codec extended by the raw mask row.
type MaskScheme uint8

const (
	MaskRaw MaskScheme = iota
	MaskSparse

	// NumMaskSchemes bounds per-scheme counters.
	NumMaskSchemes = 2
)

func (s MaskScheme) String() string {
	switch s {
	case MaskRaw:
		return "mask-raw"
	case MaskSparse:
		return "mask-sparse"
	}
	return fmt.Sprintf("maskscheme(%d)", uint8(s))
}

// maskSparsePayloadLen returns the MaskSparse payload size for n records of w
// words each.
func maskSparsePayloadLen(masks []uint64, n, w int) int {
	size := 0
	for i := 0; i < n; i++ {
		row := masks[i*w : (i+1)*w]
		c := 0
		for _, word := range row {
			c += bits.OnesCount64(word)
		}
		size += uvarintLen(uint64(c))
		for wi, word := range row {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				size += uvarintLen(uint64(wi*64 + b))
				word &= word - 1
			}
		}
	}
	return size
}

// chooseMaskScheme picks the smaller mask encoding (ModeRaw forces MaskRaw,
// matching the forced-raw id ablation).
func chooseMaskScheme(masks []uint64, n, w int, mode Mode) MaskScheme {
	if mode == ModeRaw {
		return MaskRaw
	}
	if maskSparsePayloadLen(masks, n, w) < 8*n*w {
		return MaskSparse
	}
	return MaskRaw
}

// appendMaskSection encodes the mask section (scheme byte, payload, CRC) for
// n records of w words each, in id order.
func appendMaskSection(dst []byte, masks []uint64, n, w int, ms MaskScheme) []byte {
	start := len(dst)
	dst = append(dst, byte(ms))
	switch ms {
	case MaskRaw:
		for i := 0; i < n*w; i++ {
			dst = binary.LittleEndian.AppendUint64(dst, masks[i])
		}
	case MaskSparse:
		for i := 0; i < n; i++ {
			row := masks[i*w : (i+1)*w]
			c := 0
			for _, word := range row {
				c += bits.OnesCount64(word)
			}
			dst = binary.AppendUvarint(dst, uint64(c))
			for wi, word := range row {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					dst = binary.AppendUvarint(dst, uint64(wi*64+b))
					word &= word - 1
				}
			}
		}
	}
	sum := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// AppendRecords encodes one record block according to mode and appends it to
// dst, returning the extended buffer and the schemes used for the id block
// and the mask section. ids must be sorted ascending and duplicate-free (the
// sweep's sender-side merge guarantees it); masks holds w words per id, in id
// order. Mode must not be ModeOff.
func AppendRecords(dst []byte, ids []uint32, masks []uint64, w int, mode Mode) ([]byte, Scheme, MaskScheme) {
	var idScheme Scheme
	dst, idScheme = AppendSorted(dst, ids, mode, true)
	ms := chooseMaskScheme(masks, len(ids), w, mode)
	return appendMaskSection(dst, masks, len(ids), w, ms), idScheme, ms
}

// DecodeRecordsAppend parses one record block at the start of buf, appending
// the ids to idDst and the masks (w words per record, zero-initialized) to
// maskDst. It returns the extended slices and the bytes consumed. Like the
// single-query decoder, any truncation, unknown scheme, malformed varint,
// out-of-range bit position or checksum mismatch yields an error — a block
// never decodes to wrong records silently. On error the contents of the
// destination slices are unspecified.
func DecodeRecordsAppend(buf []byte, w int, idDst []uint32, maskDst []uint64) ([]uint32, []uint64, int, error) {
	base := len(idDst)
	ids, off, _, err := DecodeAppend(buf, idDst)
	if err != nil {
		return nil, nil, 0, err
	}
	n := len(ids) - base
	if off+1+crcLen > len(buf) {
		return nil, nil, 0, corruptf("wire: mask section truncated (%d bytes left)", len(buf)-off)
	}
	start := off
	ms := MaskScheme(buf[off])
	off++
	if ms >= NumMaskSchemes {
		return nil, nil, 0, corruptf("wire: unknown mask scheme byte %d", buf[off-1])
	}
	mbase := len(maskDst)
	maskDst = slices.Grow(maskDst, n*w)
	maskDst = maskDst[:mbase+n*w]
	clear(maskDst[mbase:])
	switch ms {
	case MaskRaw:
		if off+8*n*w+crcLen > len(buf) {
			return nil, nil, 0, corruptf("wire: raw mask section truncated (%d records × %d words)", n, w)
		}
		for i := 0; i < n*w; i++ {
			maskDst[mbase+i] = binary.LittleEndian.Uint64(buf[off:])
			off += 8
		}
	case MaskSparse:
		for i := 0; i < n; i++ {
			c, k := binary.Uvarint(buf[off:])
			if k <= 0 || off+k+crcLen > len(buf) {
				return nil, nil, 0, corruptf("wire: sparse mask truncated at record %d/%d", i, n)
			}
			off += k
			if c > uint64(64*w) {
				return nil, nil, 0, corruptf("wire: sparse mask popcount %d exceeds %d bits", c, 64*w)
			}
			row := maskDst[mbase+i*w : mbase+(i+1)*w]
			prev := -1
			for j := uint64(0); j < c; j++ {
				pos, k := binary.Uvarint(buf[off:])
				if k <= 0 || off+k+crcLen > len(buf) {
					return nil, nil, 0, corruptf("wire: sparse mask truncated at record %d bit %d", i, j)
				}
				off += k
				if pos >= uint64(64*w) || int(pos) <= prev {
					return nil, nil, 0, corruptf("wire: sparse mask bit %d out of order or range", pos)
				}
				prev = int(pos)
				row[pos/64] |= 1 << (pos % 64)
			}
		}
	}
	if off+crcLen > len(buf) {
		return nil, nil, 0, corruptf("wire: mask section truncated before checksum")
	}
	want := binary.LittleEndian.Uint32(buf[off:])
	if got := crc32.Checksum(buf[start:off], crcTable); got != want {
		return nil, nil, 0, corruptf("wire: mask checksum mismatch (got %08x, want %08x)", got, want)
	}
	return ids, maskDst, off + crcLen, nil
}

// DecodeRecordsRank parses a record message of one block per destination GPU
// slot, appending each slot's ids and masks to the corresponding entries of
// idsInto and masksInto (len(idsInto) is the slot count). The zero-copy
// arrival path of the sweep exchange: each block's count header pre-sizes the
// grows. On error the contents of the destinations are unspecified.
func DecodeRecordsRank(buf []byte, w int, idsInto [][]uint32, masksInto [][]uint64) error {
	off := 0
	for s := range idsInto {
		ids, masks, n, err := DecodeRecordsAppend(buf[off:], w, idsInto[s], masksInto[s])
		if err != nil {
			return fmt.Errorf("wire: slot %d: %w", s, err)
		}
		idsInto[s], masksInto[s] = ids, masks
		off += n
	}
	if off != len(buf) {
		return corruptf("wire: %d trailing bytes after %d record slots", len(buf)-off, len(idsInto))
	}
	return nil
}

// maskMemo remembers one block's winning mask scheme plus the raw mask size
// it won at, mirroring blockMemo for the id sub-block.
type maskMemo struct {
	scheme   MaskScheme
	rawBytes int64
}

// RecordSelector adds per-(destination, slot) scheme memory to adaptive
// record encoding: the id sub-block rides an embedded Selector and the mask
// section keeps its own memo with the same [half, 2×] size window, so a
// stable sweep frontier skips both probes. Not safe for concurrent use; the
// sweep keeps one per rank.
type RecordSelector struct {
	ids  *Selector
	memo map[blockKey]maskMemo
}

// NewRecordSelector returns an empty record selector.
func NewRecordSelector() *RecordSelector {
	return NewRecordSelectorSized(0)
}

// NewRecordSelectorSized returns an empty record selector with both scheme
// memories (id and mask) pre-sized for the expected block count —
// destinations × slots, known from the cluster shape — so the steady state
// never pays map growth.
func NewRecordSelectorSized(blocks int) *RecordSelector {
	return &RecordSelector{ids: NewSelectorSized(blocks), memo: make(map[blockKey]maskMemo, blocks)}
}

// Reset forgets all scheme memory (id and mask), keeping the map storage, so
// a pooled selector starts every sweep from the blank state a fresh one
// would — per-sweep wire bytes stay bit-identical regardless of history.
func (rs *RecordSelector) Reset() {
	if rs == nil {
		return
	}
	rs.ids.Reset()
	if rs.memo != nil {
		clear(rs.memo)
	}
}

// chooseMask picks the mask scheme for one block through the memo. The memo
// window keys on the raw mask size (8nw): while it stays within 2× of the
// remembered size the remembered scheme is reused without the sparse-size
// scan; a ratio change re-probes immediately.
func (rs *RecordSelector) chooseMask(masks []uint64, n, w int, mode Mode, dst, slot int, raw int64) (MaskScheme, bool) {
	if mode == ModeRaw {
		return MaskRaw, false
	}
	if rs == nil || rs.memo == nil || mode != ModeAdaptive {
		return chooseMaskScheme(masks, n, w, mode), false
	}
	key := blockKey{dst: dst, slot: slot}
	if m, ok := rs.memo[key]; ok && m.rawBytes > 0 && raw > 0 &&
		raw >= m.rawBytes/2 && raw <= 2*m.rawBytes {
		rs.memo[key] = maskMemo{scheme: m.scheme, rawBytes: raw}
		return m.scheme, true
	}
	ms := chooseMaskScheme(masks, n, w, mode)
	rs.memo[key] = maskMemo{scheme: ms, rawBytes: raw}
	return ms, false
}

// EncodeSlots encodes one destination rank's per-slot record lists as a
// single message payload: one record block per slot, id schemes and mask
// schemes both consulting their per-(dst, slot) memories. Stats counts the
// fixed-width equivalent n·(4+8w) as raw bytes, the id scheme per block, and
// a memo hit only when both sub-blocks encoded straight from memory. Mode
// must not be ModeOff (fixed-width packing is frontier.PackRecordsRank).
func (rs *RecordSelector) EncodeSlots(dst int, slotIDs [][]uint32, slotMasks [][]uint64, w int, mode Mode) ([]byte, Stats) {
	var st Stats
	var buf []byte
	for s := range slotIDs {
		ids := slotIDs[s]
		n := len(ids)
		var idScheme Scheme
		var idHit bool
		buf, idScheme, idHit = rs.ids.Append(buf, ids, mode, dst, s, true)
		raw := 8 * int64(n) * int64(w)
		ms, maskHit := rs.chooseMask(slotMasks[s], n, w, mode, dst, s, raw)
		buf = appendMaskSection(buf, slotMasks[s], n, w, ms)
		st.RawBytes += int64(n) * (4 + 8*int64(w))
		st.Selected[idScheme]++
		if idHit && maskHit {
			st.MemoHits++
		}
	}
	st.EncodedBytes = int64(len(buf))
	return buf, st
}
