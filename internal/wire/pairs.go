package wire

// This file extends the codec to (id, value) pairs — the parent-resolution
// exchange and the §VI-D "associative values" traffic. A pairs block mirrors
// the id-block layout (scheme byte, uvarint count, payload, CRC32):
//
//	raw    n × (uint32 id, uint64 val), little-endian, input order.
//	delta  pairs sorted by (id, val): uvarint of the first id, then uvarint
//	       gaps to the previous id, each followed by the uvarint value.
//	       Decodes to the sorted permutation of the input multiset.
//
// Values are uvarint-encoded, so callers that pack their payload into the
// low bits (parents.go packs parent<<20|level) compress well; bitmap has no
// pairs analogue. The adaptive mode picks the smaller of the two per block.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"gcbfs/internal/frontier"
)

// pairsScheme maps a mode to the scheme a pairs block uses for it.
func pairsScheme(mode Mode) Scheme {
	switch mode {
	case ModeRaw:
		return SchemeRaw
	case ModeDelta, ModeBitmap:
		// No pairs bitmap; forced-bitmap ablations degrade to delta, the
		// same fallback the id codec uses for bitmap-hostile blocks.
		return SchemeDelta
	}
	panic(fmt.Sprintf("wire: AppendPairs called with mode %v", mode))
}

// sortedPairsCopy returns pairs ordered by (ID, Val) without mutating the
// input.
func sortedPairsCopy(pairs []frontier.Pair) []frontier.Pair {
	sorted := append(make([]frontier.Pair, 0, len(pairs)), pairs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].ID != sorted[j].ID {
			return sorted[i].ID < sorted[j].ID
		}
		return sorted[i].Val < sorted[j].Val
	})
	return sorted
}

// deltaPairsPayloadLen returns the delta payload size for sorted pairs.
func deltaPairsPayloadLen(sorted []frontier.Pair) int {
	if len(sorted) == 0 {
		return 0
	}
	size := uvarintLen(uint64(sorted[0].ID)) + uvarintLen(sorted[0].Val)
	for i := 1; i < len(sorted); i++ {
		size += uvarintLen(uint64(sorted[i].ID-sorted[i-1].ID)) + uvarintLen(sorted[i].Val)
	}
	return size
}

// AppendPairs encodes pairs as one block according to mode and appends it to
// dst, returning the extended buffer and the scheme used. Mode must not be
// ModeOff.
func AppendPairs(dst []byte, pairs []frontier.Pair, mode Mode) ([]byte, Scheme) {
	scheme := SchemeRaw
	var sorted []frontier.Pair
	switch mode {
	case ModeAdaptive:
		sorted = sortedPairsCopy(pairs)
		if deltaPairsPayloadLen(sorted) < 12*len(pairs) {
			scheme = SchemeDelta
		}
	default:
		scheme = pairsScheme(mode)
		if scheme == SchemeDelta {
			sorted = sortedPairsCopy(pairs)
		}
	}

	start := len(dst)
	dst = append(dst, byte(scheme))
	dst = binary.AppendUvarint(dst, uint64(len(pairs)))
	switch scheme {
	case SchemeRaw:
		for _, pr := range pairs {
			dst = binary.LittleEndian.AppendUint32(dst, pr.ID)
			dst = binary.LittleEndian.AppendUint64(dst, pr.Val)
		}
	case SchemeDelta:
		prev := uint32(0)
		for i, pr := range sorted {
			if i == 0 {
				dst = binary.AppendUvarint(dst, uint64(pr.ID))
			} else {
				dst = binary.AppendUvarint(dst, uint64(pr.ID-prev))
			}
			prev = pr.ID
			dst = binary.AppendUvarint(dst, pr.Val)
		}
	}
	sum := crc32.Checksum(dst[start:], crcTable)
	dst = binary.LittleEndian.AppendUint32(dst, sum)
	return dst, scheme
}

// DecodePairs parses one pairs block at the start of buf, returning the
// decoded pairs, the bytes consumed, and the scheme. Corruption in any form
// yields an error, never silently wrong pairs.
func DecodePairs(buf []byte) ([]frontier.Pair, int, Scheme, error) {
	if len(buf) < 1+1+crcLen {
		return nil, 0, 0, corruptf("wire: pairs block truncated (%d bytes)", len(buf))
	}
	scheme := Scheme(buf[0])
	if scheme != SchemeRaw && scheme != SchemeDelta {
		return nil, 0, 0, corruptf("wire: unknown pairs scheme byte %d", buf[0])
	}
	off := 1
	count, k := binary.Uvarint(buf[off:])
	if k <= 0 {
		return nil, 0, 0, corruptf("wire: bad pair count varint")
	}
	off += k
	body := len(buf) - off - crcLen
	if body < 0 {
		return nil, 0, 0, corruptf("wire: pairs block truncated before checksum")
	}
	n := int(count)
	pairs := make([]frontier.Pair, 0, min(n, body))

	switch scheme {
	case SchemeRaw:
		if count > uint64(body)/12 {
			return nil, 0, 0, corruptf("wire: raw pairs block truncated (%d pairs, %d payload bytes)", count, body)
		}
		for i := 0; i < n; i++ {
			pairs = append(pairs, frontier.Pair{
				ID:  binary.LittleEndian.Uint32(buf[off:]),
				Val: binary.LittleEndian.Uint64(buf[off+4:]),
			})
			off += 12
		}
	case SchemeDelta:
		if count > uint64(body)/2 {
			return nil, 0, 0, corruptf("wire: delta pairs block truncated (%d pairs, %d payload bytes)", count, body)
		}
		prev := uint64(0)
		for i := 0; i < n; i++ {
			gap, k := binary.Uvarint(buf[off:])
			if k <= 0 || off+k+crcLen > len(buf) {
				return nil, 0, 0, corruptf("wire: delta pairs block truncated at pair %d/%d", i, n)
			}
			off += k
			if gap > 1<<32-1 {
				return nil, 0, 0, corruptf("wire: pair id gap %d overflows uint32", gap)
			}
			if i > 0 {
				gap += prev
			}
			if gap > 1<<32-1 {
				return nil, 0, 0, corruptf("wire: pair id %d overflows uint32", gap)
			}
			prev = gap
			val, k := binary.Uvarint(buf[off:])
			if k <= 0 || off+k+crcLen > len(buf) {
				return nil, 0, 0, corruptf("wire: delta pairs value truncated at pair %d/%d", i, n)
			}
			off += k
			pairs = append(pairs, frontier.Pair{ID: uint32(gap), Val: val})
		}
	}

	if off+crcLen > len(buf) {
		return nil, 0, 0, corruptf("wire: pairs block truncated before checksum")
	}
	want := binary.LittleEndian.Uint32(buf[off:])
	if got := crc32.Checksum(buf[:off], crcTable); got != want {
		return nil, 0, 0, corruptf("wire: pairs checksum mismatch (got %08x, want %08x)", got, want)
	}
	return pairs, off + crcLen, scheme, nil
}

// EncodePairsRank encodes one pairs block per destination GPU slot into a
// single rank-to-rank message. RawBytes counts the fixed-width 12-bytes-per-
// pair equivalent.
func EncodePairsRank(slots [][]frontier.Pair, mode Mode) ([]byte, Stats) {
	var st Stats
	var buf []byte
	for _, pairs := range slots {
		var scheme Scheme
		buf, scheme = AppendPairs(buf, pairs, mode)
		st.RawBytes += 12 * int64(len(pairs))
		st.Selected[scheme]++
	}
	st.EncodedBytes = int64(len(buf))
	return buf, st
}

// DecodePairsRank parses an EncodePairsRank message back into per-slot pairs.
func DecodePairsRank(buf []byte, gpusPerRank int) ([][]frontier.Pair, error) {
	out := make([][]frontier.Pair, gpusPerRank)
	off := 0
	for s := 0; s < gpusPerRank; s++ {
		pairs, n, _, err := DecodePairs(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("wire: pairs slot %d: %w", s, err)
		}
		out[s] = pairs
		off += n
	}
	if off != len(buf) {
		return nil, corruptf("wire: %d trailing bytes after %d pairs slots", len(buf)-off, gpusPerRank)
	}
	return out, nil
}
