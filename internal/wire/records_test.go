package wire

import (
	"bytes"
	"testing"
)

func recordFixture(n, w int, sparse bool) ([]uint32, []uint64) {
	ids := make([]uint32, n)
	masks := make([]uint64, n*w)
	for i := 0; i < n; i++ {
		ids[i] = uint32(97*i + 5)
		if sparse {
			masks[i*w+(i%w)] = 1 << uint(i%64)
		} else {
			for j := 0; j < w; j++ {
				masks[i*w+j] = ^uint64(0) >> uint(i%7)
			}
		}
	}
	return ids, masks
}

func TestRecordRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		n, w   int
		sparse bool
		mode   Mode
		want   MaskScheme
	}{
		{"sparse-adaptive", 40, 4, true, ModeAdaptive, MaskSparse},
		{"dense-adaptive", 40, 1, false, ModeAdaptive, MaskRaw},
		{"forced-raw", 40, 2, true, ModeRaw, MaskRaw},
		{"empty", 0, 3, true, ModeAdaptive, MaskRaw},
		{"delta-ids", 100, 8, true, ModeDelta, MaskSparse},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ids, masks := recordFixture(tc.n, tc.w, tc.sparse)
			buf, _, ms := AppendRecords(nil, ids, masks, tc.w, tc.mode)
			if ms != tc.want {
				t.Fatalf("mask scheme = %v, want %v", ms, tc.want)
			}
			gotIDs, gotMasks, consumed, err := DecodeRecordsAppend(buf, tc.w, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if consumed != len(buf) {
				t.Fatalf("consumed %d of %d bytes", consumed, len(buf))
			}
			if len(gotIDs) != len(ids) {
				t.Fatalf("decoded %d ids, want %d", len(gotIDs), len(ids))
			}
			for i := range ids {
				if gotIDs[i] != ids[i] {
					t.Fatalf("id[%d] = %d, want %d", i, gotIDs[i], ids[i])
				}
			}
			for i := range masks {
				if gotMasks[i] != masks[i] {
					t.Fatalf("mask word %d = %x, want %x", i, gotMasks[i], masks[i])
				}
			}
		})
	}
}

func TestRecordCorruption(t *testing.T) {
	ids, masks := recordFixture(30, 2, true)
	buf, _, _ := AppendRecords(nil, ids, masks, 2, ModeAdaptive)
	// Flip one byte anywhere: the decode must error, never return wrong data.
	for i := range buf {
		bad := bytes.Clone(buf)
		bad[i] ^= 0x40
		gotIDs, gotMasks, _, err := DecodeRecordsAppend(bad, 2, nil, nil)
		if err != nil {
			continue
		}
		if len(gotIDs) != len(ids) {
			t.Fatalf("byte %d: silent length change", i)
		}
		same := true
		for j := range ids {
			if gotIDs[j] != ids[j] {
				same = false
			}
		}
		for j := range masks {
			if gotMasks[j] != masks[j] {
				same = false
			}
		}
		if !same {
			t.Fatalf("byte %d: corruption decoded to different records without error", i)
		}
	}
	// Truncations at every length.
	for n := 0; n < len(buf); n++ {
		if _, _, _, err := DecodeRecordsAppend(buf[:n], 2, nil, nil); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}

func TestRecordSelectorRankRoundTrip(t *testing.T) {
	const w = 3
	rs := NewRecordSelector()
	slotIDs := make([][]uint32, 2)
	slotMasks := make([][]uint64, 2)
	slotIDs[0], slotMasks[0] = recordFixture(50, w, true)
	slotIDs[1], slotMasks[1] = recordFixture(7, w, false)

	var lastLen int
	for iter := 0; iter < 3; iter++ {
		buf, st := rs.EncodeSlots(1, slotIDs, slotMasks, w, ModeAdaptive)
		if st.RawBytes != (4+8*w)*(50+7) {
			t.Fatalf("raw bytes = %d", st.RawBytes)
		}
		if st.EncodedBytes != int64(len(buf)) {
			t.Fatalf("encoded bytes = %d, len = %d", st.EncodedBytes, len(buf))
		}
		if iter > 0 {
			if st.MemoHits != 2 {
				t.Fatalf("iter %d: memo hits = %d, want 2", iter, st.MemoHits)
			}
			if len(buf) != lastLen {
				t.Fatalf("memoized encode changed size: %d vs %d", len(buf), lastLen)
			}
		}
		lastLen = len(buf)
		idsInto := make([][]uint32, 2)
		masksInto := make([][]uint64, 2)
		if err := DecodeRecordsRank(buf, w, idsInto, masksInto); err != nil {
			t.Fatal(err)
		}
		for s := range slotIDs {
			if len(idsInto[s]) != len(slotIDs[s]) {
				t.Fatalf("slot %d: %d ids, want %d", s, len(idsInto[s]), len(slotIDs[s]))
			}
			for i := range slotIDs[s] {
				if idsInto[s][i] != slotIDs[s][i] {
					t.Fatalf("slot %d id %d mismatch", s, i)
				}
			}
			for i := range slotMasks[s] {
				if masksInto[s][i] != slotMasks[s][i] {
					t.Fatalf("slot %d mask word %d mismatch", s, i)
				}
			}
		}
	}

	// Reset forgets the memory: the next encode probes afresh (no hits) but
	// produces the identical bytes.
	rs.Reset()
	buf, st := rs.EncodeSlots(1, slotIDs, slotMasks, w, ModeAdaptive)
	if st.MemoHits != 0 {
		t.Fatalf("post-reset memo hits = %d", st.MemoHits)
	}
	if len(buf) != lastLen {
		t.Fatalf("post-reset encode changed size: %d vs %d", len(buf), lastLen)
	}
}
