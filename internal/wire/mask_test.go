package wire

import "testing"

// TestEncodedMaskBytes: sparse masks must shrink well below their native
// bitmap size, dense masks must land within framing overhead of it, and the
// block must round-trip to the identical id set.
func TestEncodedMaskBytes(t *testing.T) {
	const d = 1 << 16 // delegate space; native mask = d/8 bytes
	native := int64(d / 8)

	sparse := []uint32{5, 900, 4096, 40000, 65535}
	if got := EncodedMaskBytes(sparse, ModeAdaptive); got >= native/10 {
		t.Fatalf("sparse mask encoded to %d B, want well below native %d B", got, native)
	}

	dense := make([]uint32, 0, d/2)
	for i := uint32(0); i < d; i += 2 {
		dense = append(dense, i)
	}
	if got := EncodedMaskBytes(dense, ModeAdaptive); got > native+64 {
		t.Fatalf("dense mask encoded to %d B, want within framing of native %d B", got, native)
	}

	// Round trip through the underlying block.
	buf, scheme := AppendSorted(nil, sparse, ModeAdaptive, true)
	ids, n, gotScheme, err := Decode(buf)
	if err != nil || n != len(buf) || gotScheme != scheme {
		t.Fatalf("decode: ids=%v n=%d scheme=%v err=%v", ids, n, gotScheme, err)
	}
	if len(ids) != len(sparse) {
		t.Fatalf("round trip lost ids: %v", ids)
	}
	for i := range sparse {
		if ids[i] != sparse[i] {
			t.Fatalf("round trip id %d: %d, want %d", i, ids[i], sparse[i])
		}
	}

	// ModeOff reports the fixed-width equivalent (callers skip encoding).
	if got := EncodedMaskBytes(sparse, ModeOff); got != 4*int64(len(sparse)) {
		t.Fatalf("ModeOff size %d, want %d", got, 4*len(sparse))
	}
}
