package wire

// This file applies the codec to the delegate-mask reduction (§V-A). The
// mask's native wire form is its d/8-byte bitmap, which is already optimal
// for the dense masks of early BFS iterations — but late iterations set only
// a handful of delegate bits, and those masks shrink dramatically as sorted
// varint delta streams. Running the set-bit ids through the same adaptive
// raw/delta/bitmap selection as the normal-vertex payloads lets the engine
// charge the allreduce for the smaller of the two forms.

// EncodedMaskBytes returns the wire size of one block encoding the set-bit
// ids of a delegate mask under mode (ids must be sorted ascending, as a
// mask's bit order guarantees). Callers compare the result against the
// mask's native bitmap size and ship the smaller form; a dense mask encodes
// as a bitmap block a few framing bytes over its native size, so the native
// form wins exactly when the codec has nothing to offer.
func EncodedMaskBytes(ids []uint32, mode Mode) int64 {
	if mode == ModeOff {
		return 4 * int64(len(ids))
	}
	buf, _ := AppendSorted(nil, ids, mode, true)
	return int64(len(buf))
}
