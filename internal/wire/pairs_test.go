package wire

import (
	"math/rand"
	"sort"
	"testing"

	"gcbfs/internal/frontier"
)

func randPairs(rng *rand.Rand, n int) []frontier.Pair {
	pairs := make([]frontier.Pair, n)
	for i := range pairs {
		pairs[i] = frontier.Pair{
			ID:  uint32(rng.Intn(5000)),
			Val: uint64(rng.Intn(1 << 30)),
		}
	}
	return pairs
}

func canonPairs(pairs []frontier.Pair) []frontier.Pair {
	out := append([]frontier.Pair(nil), pairs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Val < out[j].Val
	})
	return out
}

func samePairMultiset(a, b []frontier.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	ca, cb := canonPairs(a), canonPairs(b)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// TestPairsRoundTrip checks every pairs mode round-trips the multiset.
func TestPairsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, mode := range []Mode{ModeAdaptive, ModeRaw, ModeDelta, ModeBitmap} {
		for trial := 0; trial < 80; trial++ {
			pairs := randPairs(rng, rng.Intn(50))
			buf, scheme := AppendPairs(nil, pairs, mode)
			got, n, gotScheme, err := DecodePairs(buf)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			if n != len(buf) || gotScheme != scheme {
				t.Fatalf("mode %v: consumed %d of %d, scheme %v vs %v", mode, n, len(buf), gotScheme, scheme)
			}
			if !samePairMultiset(pairs, got) {
				t.Fatalf("mode %v: pair multiset mismatch", mode)
			}
			if mode == ModeBitmap && scheme == SchemeBitmap {
				t.Fatal("pairs codec has no bitmap scheme")
			}
		}
	}
}

// TestPairsAdaptivePicksSmaller: clustered low values must pick delta and
// beat the 12-byte fixed width; scattered ids with huge values must not.
func TestPairsAdaptivePicksSmaller(t *testing.T) {
	clustered := make([]frontier.Pair, 200)
	for i := range clustered {
		clustered[i] = frontier.Pair{ID: uint32(1000 + i), Val: uint64(i % 7)}
	}
	buf, scheme := AppendPairs(nil, clustered, ModeAdaptive)
	if scheme != SchemeDelta {
		t.Fatalf("clustered pairs picked %v, want delta", scheme)
	}
	if len(buf) >= 12*len(clustered) {
		t.Fatalf("delta block %d B not below fixed-width %d B", len(buf), 12*len(clustered))
	}

	rng := rand.New(rand.NewSource(9))
	scattered := make([]frontier.Pair, 50)
	for i := range scattered {
		scattered[i] = frontier.Pair{ID: rng.Uint32(), Val: rng.Uint64() | 1<<63}
	}
	_, scheme = AppendPairs(nil, scattered, ModeAdaptive)
	if scheme != SchemeRaw {
		t.Fatalf("scattered huge-value pairs picked %v, want raw", scheme)
	}
}

// TestPairsRankRoundTrip covers the whole-message path with stats.
func TestPairsRankRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	slots := [][]frontier.Pair{randPairs(rng, 20), nil, randPairs(rng, 3)}
	buf, st := EncodePairsRank(slots, ModeAdaptive)
	if st.RawBytes != 12*23 {
		t.Fatalf("RawBytes %d, want %d", st.RawBytes, 12*23)
	}
	if st.EncodedBytes != int64(len(buf)) {
		t.Fatalf("EncodedBytes %d, frame %d", st.EncodedBytes, len(buf))
	}
	got, err := DecodePairsRank(buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s := range slots {
		if !samePairMultiset(slots[s], got[s]) {
			t.Fatalf("slot %d multiset mismatch", s)
		}
	}
	if _, err := DecodePairsRank(append(buf, 1), 3); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodePairsRank(buf[:len(buf)-1], 3); err == nil {
		t.Fatal("truncation accepted")
	}
}

// TestPairsRejectCorruption flips every byte of an encoded block and expects
// a decode error or an identical multiset (a flip may land in a value and
// still fail the CRC — it must never silently change the pairs).
func TestPairsRejectCorruption(t *testing.T) {
	pairs := []frontier.Pair{{ID: 4, Val: 99}, {ID: 7, Val: 2}, {ID: 7, Val: 3}}
	buf, _ := AppendPairs(nil, pairs, ModeDelta)
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		got, _, _, err := DecodePairs(bad)
		if err == nil && !samePairMultiset(pairs, got) {
			t.Fatalf("flipping byte %d silently changed the pairs", i)
		}
	}
}
