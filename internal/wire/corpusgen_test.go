package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"gcbfs/internal/frontier"
)

// TestGenerateSeedCorpus writes the committed seed corpus under
// testdata/fuzz/. Gated behind WIRE_GEN_CORPUS=1 so normal test runs skip it.
func TestGenerateSeedCorpus(t *testing.T) {
	if os.Getenv("WIRE_GEN_CORPUS") != "1" {
		t.Skip("set WIRE_GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	write := func(target string, inputs [][]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, in := range inputs {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(in)) + ")\n"
			name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	blockSeeds := func(encode func(ids []uint32, mode Mode) []byte) [][]byte {
		idSets := [][]uint32{
			{},
			{1, 2, 3},
			{0, 7, 63, 64, 65, 1 << 20, 1<<32 - 1},
			{5, 5, 5, 9},
		}
		var out [][]byte
		for _, ids := range idSets {
			for _, mode := range []Mode{ModeRaw, ModeDelta, ModeBitmap, ModeAdaptive} {
				b := encode(ids, mode)
				out = append(out, b)
				if len(b) > 2 {
					out = append(out, b[:len(b)/2])
					flipped := append([]byte(nil), b...)
					flipped[len(flipped)/2] ^= 0x10
					out = append(out, flipped)
				}
			}
		}
		out = append(out, []byte{}, []byte{0xff})
		return out
	}

	write("FuzzDecode", blockSeeds(func(ids []uint32, mode Mode) []byte {
		b, _ := Append(nil, ids, mode)
		return b
	}))
	write("FuzzDecodeRank", blockSeeds(func(ids []uint32, mode Mode) []byte {
		b, _ := EncodeRank([][]uint32{ids, ids}, mode)
		return b
	}))

	var pairSeeds [][]byte
	for _, pairs := range [][]frontier.Pair{
		{},
		{{ID: 1, Val: 10}, {ID: 2, Val: 20}},
		{{ID: 1 << 30, Val: 1 << 60}, {ID: 1<<32 - 1, Val: 0}},
	} {
		for _, mode := range []Mode{ModeRaw, ModeDelta, ModeAdaptive} {
			b, _ := AppendPairs(nil, pairs, mode)
			pairSeeds = append(pairSeeds, b)
			if len(b) > 2 {
				pairSeeds = append(pairSeeds, b[:len(b)-2])
			}
		}
	}
	write("FuzzDecodePairs", append(pairSeeds, []byte{}))

	var recSeeds [][]byte
	for _, w := range []int{1, 2} {
		ids := []uint32{3, 9, 300}
		masks := make([]uint64, len(ids)*w)
		for i := range masks {
			masks[i] = uint64(i + 1)
		}
		for _, mode := range []Mode{ModeRaw, ModeDelta, ModeAdaptive} {
			b, _, _ := AppendRecords(nil, ids, masks, w, mode)
			recSeeds = append(recSeeds, b)
			if len(b) > 2 {
				recSeeds = append(recSeeds, b[:len(b)-2])
			}
		}
	}
	write("FuzzDecodeRecords", append(recSeeds, []byte{}, []byte{0x01, 0x00}))

	secs := []Section{
		{Rank: 0, Slots: [][]uint32{{1, 2}, {3}}},
		{Rank: 1, Slots: [][]uint32{{}, {4, 5, 6}}},
	}
	var secSeeds [][]byte
	for _, mode := range []Mode{ModeOff, ModeRaw, ModeAdaptive} {
		b, _ := (*Selector)(nil).EncodeSections(secs, 2, mode)
		secSeeds = append(secSeeds, b)
		if len(b) > 2 {
			secSeeds = append(secSeeds, b[:len(b)-2])
		}
	}
	write("FuzzDecodeSections", append(secSeeds, []byte{}))
}
