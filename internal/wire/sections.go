package wire

// This file frames the butterfly exchange's hop messages. An all-pairs
// message carries one destination rank's slots; a butterfly hop message
// aggregates several destination ranks' payloads into one larger message —
// the log(p) topology's whole point is that these aggregated messages climb
// out of the sub-2 MB efficiency plateau. Wire layout:
//
//	uvarint   section count
//	per section:
//	  uvarint destination rank
//	  uvarint payload length
//	  payload: EncodeRank blocks (codec modes) or the fixed-width
//	           frontier.PackRank layout (ModeOff)
//
// Re-encoding happens per hop: a relaying rank decodes, merges with its own
// pending ids, and encodes afresh, so the adaptive selector always sees the
// aggregated block — denser id coverage, smaller deltas.

import (
	"encoding/binary"
	"fmt"

	"gcbfs/internal/frontier"
)

// Section is one destination rank's share of a butterfly hop message.
type Section struct {
	Rank   int
	Slots  [][]uint32
	Sorted []bool // per-slot pre-sorted hints (nil = unknown)
}

// EncodeSections frames sections into one hop message. The selector may be
// nil (no scheme memory). Stats follow the engine's accounting conventions:
// with a codec active, EncodedBytes is the full message (framing included);
// with ModeOff it is the 4-bytes-per-id equivalent, matching the paper's
// 4·|Enn| convention for uncompressed traffic.
func (sel *Selector) EncodeSections(secs []Section, gpusPerRank int, mode Mode) ([]byte, Stats) {
	return sel.AppendSections(nil, secs, gpusPerRank, mode)
}

// AppendSections is EncodeSections into a caller-owned buffer: the framed
// message is appended to buf and Stats count only this call's bytes. The
// butterfly exchange keeps one buffer per hop slot, reused across
// iterations — safe because every hop message is received (and its ids
// arena-copied) before the iteration's terminating collective, which every
// rank passes before the buffer's next rewrite. Each section's payload is
// staged in the selector's scratch and copied into the frame immediately,
// so one scratch serves all sections.
func (sel *Selector) AppendSections(buf []byte, secs []Section, gpusPerRank int, mode Mode) ([]byte, Stats) {
	var st Stats
	start := len(buf)
	buf = binary.AppendUvarint(buf, uint64(len(secs)))
	for _, sec := range secs {
		var payload []byte
		var pst Stats
		if sel != nil {
			payload, pst = sel.AppendSlots(sel.secBuf[:0], sec.Rank, sec.Slots, sec.Sorted, mode)
			sel.secBuf = payload[:0]
		} else {
			payload, pst = sel.EncodeSlots(sec.Rank, sec.Slots, sec.Sorted, mode)
		}
		st.RawBytes += pst.RawBytes
		for i, c := range pst.Selected {
			st.Selected[i] += c
		}
		st.MemoHits += pst.MemoHits
		buf = binary.AppendUvarint(buf, uint64(sec.Rank))
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		buf = append(buf, payload...)
	}
	if mode == ModeOff {
		st.EncodedBytes = st.RawBytes
	} else {
		st.EncodedBytes = int64(len(buf) - start)
	}
	return buf, st
}

// DecodeSections parses an EncodeSections message; ranks bounds the valid
// destination-rank space (the framing varints sit outside the per-block
// CRCs, so the bound is what turns a corrupted rank into an error instead
// of an out-of-range index at the caller). Decoded Sorted flags report
// which slots are known ascending (delta/bitmap blocks canonicalize; raw
// blocks preserve sender order), so relays can keep merge-sorting.
func DecodeSections(buf []byte, gpusPerRank, ranks int, mode Mode) ([]Section, error) {
	return DecodeSectionsArena(buf, gpusPerRank, ranks, mode, nil)
}

// SectionScratch recycles the per-hop decode headers — Section structs,
// slot rows, sorted rows, scheme row — that DecodeSectionsScratch would
// otherwise heap-allocate per message. It is a bump allocator: chunks are
// carved off growing backing arrays and stay valid until Reset, which the
// caller issues once per exchange iteration (relayed sections live in the
// butterfly's pending set until the last hop, never longer). The zero value
// is ready to use; not safe for concurrent use — the engine keeps one per
// rank.
type SectionScratch struct {
	secs    []Section
	slots   [][]uint32
	sorted  []bool
	schemes []Scheme
}

// Reset reclaims every outstanding chunk (backing storage is kept).
func (h *SectionScratch) Reset() {
	h.secs, h.slots, h.sorted = h.secs[:0], h.slots[:0], h.sorted[:0]
}

// takeSections carves a zero-length Section chunk with capacity n: appends
// within the chunk never reallocate, and earlier chunks keep their (old)
// backing when growth replaces the array.
func (h *SectionScratch) takeSections(n int) []Section {
	if cap(h.secs)-len(h.secs) < n {
		h.secs = make([]Section, 0, 2*(len(h.secs)+n))
	}
	off := len(h.secs)
	h.secs = h.secs[:off+n]
	return h.secs[off : off : off+n]
}

// takeSlotRow carves a zeroed length-n slot row.
func (h *SectionScratch) takeSlotRow(n int) [][]uint32 {
	if cap(h.slots)-len(h.slots) < n {
		h.slots = make([][]uint32, 0, 2*(len(h.slots)+n))
	}
	off := len(h.slots)
	h.slots = h.slots[:off+n]
	row := h.slots[off : off+n : off+n]
	clear(row)
	return row
}

// takeSortedRow carves a zeroed length-n bool row.
func (h *SectionScratch) takeSortedRow(n int) []bool {
	if cap(h.sorted)-len(h.sorted) < n {
		h.sorted = make([]bool, 0, 2*(len(h.sorted)+n))
	}
	off := len(h.sorted)
	h.sorted = h.sorted[:off+n]
	row := h.sorted[off : off+n : off+n]
	clear(row)
	return row
}

// schemeRow returns the reusable length-n scheme buffer — unlike the rows
// above it is consumed by the caller before the next decode, so a single
// buffer (not a bump chunk) suffices.
func (h *SectionScratch) schemeRow(n int) []Scheme {
	if cap(h.schemes) < n {
		h.schemes = make([]Scheme, n)
	}
	return h.schemes[:n]
}

// DecodeSectionsArena is DecodeSections with every decoded id slice drawn
// from the arena (per-iteration lifetime); a nil arena falls back to plain
// allocation. Section headers and Sorted flags still come from the heap —
// they are small and bounded by the hop fan-in, not the frontier size.
func DecodeSectionsArena(buf []byte, gpusPerRank, ranks int, mode Mode, arena *frontier.Arena) ([]Section, error) {
	return DecodeSectionsScratch(buf, gpusPerRank, ranks, mode, arena, nil)
}

// DecodeSectionsScratch is DecodeSectionsArena with the section headers
// drawn from the scratch as well (a nil scratch falls back to plain
// allocation), leaving the steady-state decode of a hop message fully
// allocation-free.
func DecodeSectionsScratch(buf []byte, gpusPerRank, ranks int, mode Mode, arena *frontier.Arena, h *SectionScratch) ([]Section, error) {
	off := 0
	count, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, corruptf("wire: bad section count varint")
	}
	off += k
	// Each section carries at least two framing bytes, so this bound runs
	// before the allocation and keeps a corrupt count from reserving huge
	// Section headers (the framing varints sit outside any CRC).
	if count > uint64(len(buf))/2 {
		return nil, corruptf("wire: section count %d exceeds message size", count)
	}
	var out []Section
	if h != nil {
		out = h.takeSections(int(count))
	} else {
		out = make([]Section, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		rank, k := binary.Uvarint(buf[off:])
		if k <= 0 || rank >= uint64(ranks) {
			return nil, corruptf("wire: section %d: bad destination rank", i)
		}
		off += k
		plen, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, corruptf("wire: section %d: bad payload length", i)
		}
		off += k
		if plen > uint64(len(buf)-off) {
			return nil, corruptf("wire: section %d: payload truncated (%d of %d bytes)",
				i, len(buf)-off, plen)
		}
		payload := buf[off : off+int(plen)]
		off += int(plen)
		sec := Section{Rank: int(rank)}
		if h != nil {
			sec.Sorted = h.takeSortedRow(gpusPerRank)
		} else {
			sec.Sorted = make([]bool, gpusPerRank)
		}
		if mode == ModeOff {
			slots, err := frontier.UnpackRank(payload, gpusPerRank)
			if err != nil {
				// frontier cannot import wire, so its errors carry no
				// ErrCorrupt — retype them at the boundary.
				return nil, corruptf("wire: section %d: %v", i, err)
			}
			sec.Slots = slots
		} else {
			slots, schemes, err := decodeRankSchemes(payload, gpusPerRank, arena, h)
			if err != nil {
				return nil, fmt.Errorf("wire: section %d: %w", i, err)
			}
			sec.Slots = slots
			for s, sch := range schemes {
				sec.Sorted[s] = sch != SchemeRaw
			}
		}
		for s := range sec.Sorted {
			if len(sec.Slots[s]) < 2 {
				sec.Sorted[s] = true
			}
		}
		out = append(out, sec)
	}
	if off != len(buf) {
		return nil, corruptf("wire: %d trailing bytes after %d sections", len(buf)-off, count)
	}
	return out, nil
}
