package wire

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchShapes are frontier payloads representative of the exchange: a dense
// slice of a destination's id space (mid-BFS peak), a clustered sorted
// range (delta's home turf) and a scattered unordered set (raw's).
func benchShapes() map[string][]uint32 {
	rng := rand.New(rand.NewSource(1))
	dense := make([]uint32, 0, 48<<10)
	for v := uint32(0); v < 64<<10; v++ {
		if rng.Intn(4) != 0 {
			dense = append(dense, v)
		}
	}
	clustered := make([]uint32, 16<<10)
	cur := uint32(0)
	for i := range clustered {
		cur += uint32(1 + rng.Intn(8))
		clustered[i] = cur
	}
	scattered := make([]uint32, 16<<10)
	for i := range scattered {
		scattered[i] = rng.Uint32()
	}
	return map[string][]uint32{
		"dense": dense, "clustered": clustered, "scattered": scattered,
	}
}

// BenchmarkEncode measures every codec scheme (plus adaptive selection) on
// each payload shape, reporting output bytes per input id.
func BenchmarkEncode(b *testing.B) {
	for name, ids := range benchShapes() {
		for _, mode := range []Mode{ModeAdaptive, ModeRaw, ModeDelta, ModeBitmap} {
			b.Run(fmt.Sprintf("%s/%v", name, mode), func(b *testing.B) {
				b.SetBytes(4 * int64(len(ids)))
				var buf []byte
				for i := 0; i < b.N; i++ {
					buf, _ = Append(buf[:0], ids, mode)
				}
				b.ReportMetric(float64(len(buf))/float64(len(ids)), "bytes/id")
			})
		}
	}
}

// BenchmarkDecode measures decoding each scheme's output per payload shape.
func BenchmarkDecode(b *testing.B) {
	for name, ids := range benchShapes() {
		for _, mode := range []Mode{ModeRaw, ModeDelta, ModeBitmap} {
			buf, scheme := Append(nil, ids, mode)
			b.Run(fmt.Sprintf("%s/%v", name, scheme), func(b *testing.B) {
				b.SetBytes(4 * int64(len(ids)))
				for i := 0; i < b.N; i++ {
					if _, _, _, err := Decode(buf); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEncodeRank measures the whole-message path used by the engine's
// exchange (four slots of mixed shape).
func BenchmarkEncodeRank(b *testing.B) {
	shapes := benchShapes()
	slots := [][]uint32{shapes["dense"], shapes["clustered"], shapes["scattered"], nil}
	for _, mode := range []Mode{ModeAdaptive, ModeRaw} {
		b.Run(mode.String(), func(b *testing.B) {
			var raw int64
			for _, s := range slots {
				raw += 4 * int64(len(s))
			}
			b.SetBytes(raw)
			for i := 0; i < b.N; i++ {
				buf, _ := EncodeRank(slots, mode)
				if _, err := DecodeRank(buf, len(slots)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
