package wire

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// sortedOf returns the sorted permutation of ids (multiset preserved).
func sortedOf(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// uniqueOf returns the sorted duplicate-free version of ids.
func uniqueOf(ids []uint32) []uint32 {
	s := sortedOf(ids)
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// roundTrip encodes ids under mode and decodes the block back.
func roundTrip(t *testing.T, ids []uint32, mode Mode) ([]uint32, Scheme) {
	t.Helper()
	buf, scheme := Append(nil, ids, mode)
	got, n, decScheme, err := Decode(buf)
	if err != nil {
		t.Fatalf("mode %v: decode failed: %v", mode, err)
	}
	if n != len(buf) {
		t.Fatalf("mode %v: decode consumed %d of %d bytes", mode, n, len(buf))
	}
	if decScheme != scheme {
		t.Fatalf("mode %v: scheme mismatch: encoded %v, decoded %v", mode, scheme, decScheme)
	}
	return got, scheme
}

// checkRoundTrip asserts the per-mode round-trip contract: raw is exact,
// delta is the sorted permutation, bitmap/adaptive preserve at least the
// set (and the multiset whenever the encoding is lossless).
func checkRoundTrip(t *testing.T, ids []uint32, mode Mode) {
	t.Helper()
	got, scheme := roundTrip(t, ids, mode)
	switch scheme {
	case SchemeRaw:
		if !equalIDs(got, ids) {
			t.Fatalf("mode %v/raw: got %v, want %v", mode, got, ids)
		}
	case SchemeDelta:
		if want := sortedOf(ids); !equalIDs(got, want) {
			t.Fatalf("mode %v/delta: got %v, want sorted %v", mode, got, want)
		}
	case SchemeBitmap:
		if want := uniqueOf(ids); !equalIDs(got, want) {
			t.Fatalf("mode %v/bitmap: got %v, want unique %v", mode, got, want)
		}
		if mode == ModeAdaptive && len(got) != len(ids) {
			t.Fatalf("adaptive picked bitmap for input with duplicates (%d ids → %d)", len(ids), len(got))
		}
	}
}

var encodeModes = []Mode{ModeAdaptive, ModeRaw, ModeDelta, ModeBitmap}

func TestRoundTripFixedCases(t *testing.T) {
	cases := map[string][]uint32{
		"empty":            {},
		"single-zero":      {0},
		"single-max":       {1<<32 - 1},
		"pair":             {7, 3},
		"duplicates":       {5, 5, 5, 5},
		"dense-range":      seq(0, 512),
		"dense-offset":     seq(100000, 300),
		"sparse-huge-gaps": {0, 1 << 20, 1 << 28, 1<<32 - 1},
		"unsorted-mixed":   {9, 2, 2, 1<<31 - 1, 0, 63, 64, 65},
		"word-boundary":    {63, 64, 127, 128, 191, 192},
	}
	for name, ids := range cases {
		for _, mode := range encodeModes {
			in := append([]uint32(nil), ids...)
			checkRoundTrip(t, in, mode)
			if !equalIDs(in, ids) {
				t.Fatalf("%s/%v: Append mutated its input", name, mode)
			}
		}
	}
}

func seq(start uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = start + uint32(i)
	}
	return out
}

// TestRoundTripProperty fuzzes random id sets of varying density and size
// through every mode.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(2000)
		max := uint32(1) << uint(3+rng.Intn(29)) // universe from 8 to 2^31
		ids := make([]uint32, n)
		for i := range ids {
			ids[i] = rng.Uint32() % max
		}
		for _, mode := range encodeModes {
			checkRoundTrip(t, ids, mode)
		}
	}
}

// TestAdaptiveSelectsSmallest verifies the adaptive block is never larger
// than any forced scheme's block for the same input.
func TestAdaptiveSelectsSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(1000)
		max := uint32(1) << uint(4+rng.Intn(27))
		ids := make([]uint32, n)
		for i := range ids {
			ids[i] = rng.Uint32() % max
		}
		adaptive, _ := Append(nil, ids, ModeAdaptive)
		for _, mode := range []Mode{ModeRaw, ModeDelta, ModeBitmap} {
			forced, _ := Append(nil, ids, mode)
			if len(adaptive) > len(forced) {
				t.Fatalf("adaptive block (%d bytes) larger than %v block (%d bytes) for %d ids",
					len(adaptive), mode, len(forced), n)
			}
		}
	}
}

// TestSchemeSelectionBoundaries pins the scheme choice on shapes engineered
// to favour each encoding.
func TestSchemeSelectionBoundaries(t *testing.T) {
	cases := []struct {
		name string
		ids  []uint32
		want Scheme
	}{
		{"empty picks raw", nil, SchemeRaw},
		{"scattered high ids pick raw",
			[]uint32{4000000000, 1000000000, 3000000000, 2000000000}, SchemeRaw},
		{"clustered sorted ids pick delta", seqStride(1<<20, 1000, 3), SchemeDelta},
		{"dense range picks bitmap", seq(0, 4096), SchemeBitmap},
		{"dense range with duplicates cannot pick bitmap",
			append(seq(0, 4096), 0), SchemeDelta},
	}
	for _, tc := range cases {
		_, scheme := Append(nil, tc.ids, ModeAdaptive)
		if scheme != tc.want {
			t.Errorf("%s: adaptive chose %v, want %v", tc.name, scheme, tc.want)
		}
	}
}

func seqStride(start uint32, n int, stride uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = start + uint32(i)*stride
	}
	return out
}

// TestDecodeRejectsTruncation truncates valid blocks at every possible
// length; none may decode successfully.
func TestDecodeRejectsTruncation(t *testing.T) {
	inputs := [][]uint32{{}, {1}, seq(0, 200), {4, 9, 1 << 30, 77, 77}}
	for _, ids := range inputs {
		for _, mode := range encodeModes {
			buf, scheme := Append(nil, ids, mode)
			for cut := 0; cut < len(buf); cut++ {
				if _, _, _, err := Decode(buf[:cut]); err == nil {
					t.Fatalf("scheme %v: truncation to %d/%d bytes decoded successfully",
						scheme, cut, len(buf))
				}
			}
		}
	}
}

// TestDecodeRejectsCorruption flips every bit of valid blocks; decode must
// either error or (never) silently return the original ids from a mutated
// buffer whose checksum still matched.
func TestDecodeRejectsCorruption(t *testing.T) {
	inputs := [][]uint32{{3}, seq(50, 100), {1, 1000, 1 << 25}}
	for _, ids := range inputs {
		for _, mode := range encodeModes {
			buf, scheme := Append(nil, ids, mode)
			for i := 0; i < len(buf); i++ {
				for bit := 0; bit < 8; bit++ {
					corrupt := append([]byte(nil), buf...)
					corrupt[i] ^= 1 << bit
					if _, _, _, err := Decode(corrupt); err == nil {
						t.Fatalf("scheme %v: flipping byte %d bit %d went undetected", scheme, i, bit)
					}
				}
			}
		}
	}
}

func TestDecodeRejectsHugeCount(t *testing.T) {
	// A handcrafted raw block claiming 2^40 ids must be rejected by the
	// pre-allocation bound, not by an attempted 4 TB allocation.
	buf, _ := Append(nil, []uint32{1, 2, 3}, ModeRaw)
	corrupt := append([]byte{buf[0]}, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10)
	corrupt = append(corrupt, buf[2:]...)
	if _, _, _, err := Decode(corrupt); err == nil {
		t.Fatal("absurd id count decoded successfully")
	}
}

func TestEncodeDecodeRank(t *testing.T) {
	slots := [][]uint32{seq(0, 300), nil, {9, 2, 9}, {1 << 31}}
	for _, mode := range encodeModes {
		buf, st := EncodeRank(slots, mode)
		if st.EncodedBytes != int64(len(buf)) {
			t.Fatalf("mode %v: stats say %d bytes, buffer has %d", mode, st.EncodedBytes, len(buf))
		}
		if want := int64(4 * (300 + 0 + 3 + 1)); st.RawBytes != want {
			t.Fatalf("mode %v: raw bytes %d, want %d", mode, st.RawBytes, want)
		}
		var blocks int64
		for _, c := range st.Selected {
			blocks += c
		}
		if blocks != int64(len(slots)) {
			t.Fatalf("mode %v: %d scheme selections for %d slots", mode, blocks, len(slots))
		}
		got, err := DecodeRank(buf, len(slots))
		if err != nil {
			t.Fatalf("mode %v: DecodeRank: %v", mode, err)
		}
		for s := range slots {
			want := uniqueOf(slots[s])
			if mode == ModeRaw {
				want = slots[s]
			} else if got2 := sortedOf(slots[s]); len(got[s]) == len(got2) {
				want = got2
			}
			if !equalIDs(got[s], want) {
				t.Fatalf("mode %v slot %d: got %v, want %v", mode, s, got[s], want)
			}
		}
	}
}

func TestDecodeRankRejectsTrailing(t *testing.T) {
	buf, _ := EncodeRank([][]uint32{{1}, {2}}, ModeAdaptive)
	if _, err := DecodeRank(append(buf, 0), 2); err == nil {
		t.Fatal("trailing byte went undetected")
	}
	if _, err := DecodeRank(buf, 3); err == nil {
		t.Fatal("missing slot went undetected")
	}
	if _, err := DecodeRank(buf[:len(buf)-1], 2); err == nil {
		t.Fatal("truncated final slot went undetected")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{RawBytes: 4, EncodedBytes: 2, Selected: [NumSchemes]int64{1, 0, 2}}
	a.Add(Stats{RawBytes: 6, EncodedBytes: 3, Selected: [NumSchemes]int64{0, 5, 1}})
	want := Stats{RawBytes: 10, EncodedBytes: 5, Selected: [NumSchemes]int64{1, 5, 3}}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("Stats.Add: got %+v, want %+v", a, want)
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{
		"": ModeOff, "off": ModeOff, "adaptive": ModeAdaptive,
		"raw": ModeRaw, "delta": ModeDelta, "bitmap": ModeBitmap,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("zstd"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

// TestDecodeRejectsDeltaGapWrap hand-crafts a delta block whose gap varint
// wraps uint64 addition back into uint32 range; even with a valid checksum
// it must be rejected, never silently decoded to a wrong id.
func TestDecodeRejectsDeltaGapWrap(t *testing.T) {
	block := []byte{byte(SchemeDelta)}
	block = binary.AppendUvarint(block, 2)              // two ids
	block = binary.AppendUvarint(block, 4)              // first id = 4
	block = binary.AppendUvarint(block, math.MaxUint64) // gap wraps 4 → 3
	block = binary.LittleEndian.AppendUint32(block, crc32.Checksum(block, crcTable))
	if ids, _, _, err := Decode(block); err == nil {
		t.Fatalf("wrapping delta gap decoded successfully to %v", ids)
	}
}
