package wire

// Native fuzz targets for every wire decoder. The contract under arbitrary
// bytes: a decoder returns a wire.ErrCorrupt-typed error or a valid decode —
// it never panics, and it never lets a corrupt length field drive a huge
// allocation (the bitmap scheme's 64 ids per 8-byte word bounds any honest
// decode to at most 8 ids per input byte, plus small framing slack).
//
// Seed corpora live in testdata/fuzz/<target>/ (valid one-block encodings of
// every scheme plus truncations); `go test` replays them on every run, and
// `go test -fuzz=FuzzDecode...` explores from there.

import (
	"errors"
	"testing"

	"gcbfs/internal/frontier"
)

// idBound is the allocation ceiling for id-producing decoders.
func idBound(inputLen int) int { return 8*inputLen + 64 }

// checkErr fails the target when a decoder error is not ErrCorrupt-typed.
func checkErr(t *testing.T, err error) {
	t.Helper()
	if err != nil && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decoder error not wire.ErrCorrupt-typed: %v", err)
	}
}

// seedBlocks yields valid single-block encodings across schemes, plus
// truncated and bit-flipped variants — the corpus floor every target shares.
func seedBlocks(f *testing.F, encode func(ids []uint32, mode Mode) []byte) {
	idSets := [][]uint32{
		{},
		{1, 2, 3},
		{0, 7, 63, 64, 65, 1 << 20, 1<<32 - 1},
		{5, 5, 5, 9},
	}
	for _, ids := range idSets {
		for _, mode := range []Mode{ModeRaw, ModeDelta, ModeBitmap, ModeAdaptive} {
			b := encode(ids, mode)
			f.Add(b)
			if len(b) > 2 {
				f.Add(b[:len(b)/2])
				flipped := append([]byte(nil), b...)
				flipped[len(flipped)/2] ^= 0x10
				f.Add(flipped)
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
}

func FuzzDecode(f *testing.F) {
	seedBlocks(f, func(ids []uint32, mode Mode) []byte {
		b, _ := Append(nil, ids, mode)
		return b
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		ids, n, _, err := Decode(data)
		checkErr(t, err)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d bytes of a %d-byte input", n, len(data))
		}
		if len(ids) > idBound(len(data)) {
			t.Fatalf("decoded %d ids from %d bytes — over-allocation", len(ids), len(data))
		}
	})
}

func FuzzDecodeRank(f *testing.F) {
	seedBlocks(f, func(ids []uint32, mode Mode) []byte {
		b, _ := EncodeRank([][]uint32{ids, ids}, mode)
		return b
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, gpus := range []int{1, 2, 4} {
			slots, err := DecodeRank(data, gpus)
			checkErr(t, err)
			if err != nil {
				continue
			}
			total := 0
			for _, s := range slots {
				total += len(s)
			}
			if total > idBound(len(data)) {
				t.Fatalf("decoded %d ids from %d bytes (%d slots) — over-allocation", total, len(data), gpus)
			}
			// The zero-copy path must agree with the allocating one.
			into := make([][]uint32, gpus)
			if err := DecodeRankInto(data, into); err != nil {
				t.Fatalf("DecodeRank accepted but DecodeRankInto rejected: %v", err)
			}
		}
	})
}

func FuzzDecodePairs(f *testing.F) {
	pairSets := [][]frontier.Pair{
		{},
		{{ID: 1, Val: 10}, {ID: 2, Val: 20}},
		{{ID: 1 << 30, Val: 1 << 60}, {ID: 1<<32 - 1, Val: 0}},
	}
	for _, pairs := range pairSets {
		for _, mode := range []Mode{ModeRaw, ModeDelta, ModeAdaptive} {
			b, _ := AppendPairs(nil, pairs, mode)
			f.Add(b)
			if len(b) > 2 {
				f.Add(b[:len(b)-2])
			}
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pairs, n, _, err := DecodePairs(data)
		checkErr(t, err)
		if err == nil {
			if n > len(data) {
				t.Fatalf("consumed %d bytes of a %d-byte input", n, len(data))
			}
			if len(pairs) > len(data) {
				t.Fatalf("decoded %d pairs from %d bytes — over-allocation", len(pairs), len(data))
			}
		}
		for _, gpus := range []int{1, 2} {
			slots, err := DecodePairsRank(data, gpus)
			checkErr(t, err)
			if err != nil {
				continue
			}
			total := 0
			for _, s := range slots {
				total += len(s)
			}
			if total > len(data) {
				t.Fatalf("decoded %d pairs from %d bytes (%d slots) — over-allocation", total, len(data), gpus)
			}
		}
	})
}

func FuzzDecodeRecords(f *testing.F) {
	for _, w := range []int{1, 2} {
		ids := []uint32{3, 9, 300}
		masks := make([]uint64, len(ids)*w)
		for i := range masks {
			masks[i] = uint64(i + 1)
		}
		for _, mode := range []Mode{ModeRaw, ModeDelta, ModeAdaptive} {
			b, _, _ := AppendRecords(nil, ids, masks, w, mode)
			f.Add(b)
			if len(b) > 2 {
				f.Add(b[:len(b)-2])
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, w := range []int{1, 2} {
			ids, masks, n, err := DecodeRecordsAppend(data, w, nil, nil)
			checkErr(t, err)
			if err != nil {
				continue
			}
			if n > len(data) {
				t.Fatalf("consumed %d bytes of a %d-byte input", n, len(data))
			}
			if len(ids) > idBound(len(data)) || len(masks) > w*idBound(len(data)) {
				t.Fatalf("decoded %d ids / %d mask words from %d bytes — over-allocation",
					len(ids), len(masks), len(data))
			}
			idsInto := make([][]uint32, 2)
			masksInto := make([][]uint64, 2)
			err = DecodeRecordsRank(data, w, idsInto, masksInto)
			checkErr(t, err)
		}
	})
}

func FuzzDecodeSections(f *testing.F) {
	secs := []Section{
		{Rank: 0, Slots: [][]uint32{{1, 2}, {3}}},
		{Rank: 1, Slots: [][]uint32{{}, {4, 5, 6}}},
	}
	for _, mode := range []Mode{ModeOff, ModeRaw, ModeAdaptive} {
		b, _ := (*Selector)(nil).EncodeSections(secs, 2, mode)
		f.Add(b)
		if len(b) > 2 {
			f.Add(b[:len(b)-2])
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mode := range []Mode{ModeOff, ModeAdaptive} {
			for _, gpus := range []int{1, 2} {
				out, err := DecodeSections(data, gpus, 4, mode)
				checkErr(t, err)
				if err != nil {
					continue
				}
				total := 0
				for _, sec := range out {
					for _, slot := range sec.Slots {
						total += len(slot)
					}
				}
				if total > idBound(len(data)) {
					t.Fatalf("decoded %d ids from %d bytes — over-allocation", total, len(data))
				}
			}
		}
	})
}
