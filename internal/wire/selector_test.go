package wire

import (
	"reflect"
	"testing"
)

// TestSelectorMemoHit: a second encode of a same-shaped block must come from
// memory, use the remembered scheme, and decode to the same ids.
func TestSelectorMemoHit(t *testing.T) {
	ids := make([]uint32, 100)
	for i := range ids {
		ids[i] = uint32(600 * i) // small gaps, bitmap-hostile range → delta wins
	}
	sel := NewSelector()
	buf1, s1, hit1 := sel.Append(nil, ids, ModeAdaptive, 2, 0, false)
	if hit1 {
		t.Fatal("first encode reported a memo hit")
	}
	buf2, s2, hit2 := sel.Append(nil, ids, ModeAdaptive, 2, 0, false)
	if !hit2 {
		t.Fatal("second encode of the same block missed the memo")
	}
	if s1 != s2 || !reflect.DeepEqual(buf1, buf2) {
		t.Fatalf("memoized encode differs: %v vs %v", s1, s2)
	}
	got, _, _, err := Decode(buf2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("decoded %d ids, want %d", len(got), len(ids))
	}
	// A different (dst, slot) key must not hit.
	if _, _, hit := sel.Append(nil, ids, ModeAdaptive, 3, 0, false); hit {
		t.Fatal("different destination hit the memo")
	}
}

// TestSelectorSizeRatioFallback: a block that shrinks or grows beyond 2×
// must re-run full selection.
func TestSelectorSizeRatioFallback(t *testing.T) {
	big := make([]uint32, 400)
	for i := range big {
		big[i] = uint32(600 * i) // delta-winning shape (see TestSelectorMemoHit)
	}
	sel := NewSelector()
	sel.Append(nil, big, ModeAdaptive, 0, 0, false)
	if _, _, hit := sel.Append(nil, big[:80], ModeAdaptive, 0, 0, false); hit {
		t.Fatal("5× shrink still hit the memo")
	}
	// The fallback re-probes and refreshes the memory.
	if _, _, hit := sel.Append(nil, big[:80], ModeAdaptive, 0, 0, false); !hit {
		t.Fatal("refreshed memo did not hit")
	}
	// Empty blocks never consult the memory (no size to compare).
	if _, _, hit := sel.Append(nil, nil, ModeAdaptive, 0, 0, false); hit {
		t.Fatal("empty block hit the memo")
	}
}

// TestSelectorForcedModesBypass: only adaptive mode uses the memory.
func TestSelectorForcedModesBypass(t *testing.T) {
	ids := []uint32{5, 1, 9, 1}
	sel := NewSelector()
	for _, mode := range []Mode{ModeRaw, ModeDelta, ModeBitmap} {
		for i := 0; i < 2; i++ {
			if _, _, hit := sel.Append(nil, ids, mode, 0, 0, false); hit {
				t.Fatalf("mode %v consulted the memo", mode)
			}
		}
	}
}

// TestSelectorBitmapNeverPinned: bitmap winners always re-run full
// selection — pinning one through the forced-bitmap mode's lenient
// acceptance (up to ~4× raw) could lock in inflated blocks when the id
// range widens at a stable count.
func TestSelectorBitmapNeverPinned(t *testing.T) {
	dense := make([]uint32, 300)
	for i := range dense {
		dense[i] = uint32(i)
	}
	sel := NewSelector()
	_, s1, _ := sel.Append(nil, dense, ModeAdaptive, 0, 0, false)
	if s1 != SchemeBitmap {
		t.Skipf("dense block picked %v, bitmap expected for this shape", s1)
	}
	// Same count, 25× wider id range: full adaptive must get to pick a
	// non-bitmap scheme instead of a pinned bitmap being accepted.
	wide := make([]uint32, 300)
	for i := range wide {
		wide[i] = uint32(25 * i)
	}
	buf, s2, hit := sel.Append(nil, wide, ModeAdaptive, 0, 0, false)
	if hit {
		t.Fatal("bitmap memo was pinned")
	}
	if s2 == SchemeBitmap {
		t.Fatalf("wide block picked bitmap (%d B); full selection should beat it", len(buf))
	}
	if len(buf) > 4*len(wide)+16 {
		t.Fatalf("wide block encoded to %d B, above raw size %d", len(buf), 4*len(wide))
	}
	got, _, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wide) {
		t.Fatalf("decoded %d ids, want %d", len(got), len(wide))
	}
}

// TestSelectorEncodeRankStats: EncodeRank must count hits in Stats and
// produce output DecodeRank accepts.
func TestSelectorEncodeRankStats(t *testing.T) {
	slots := [][]uint32{{1, 2, 3, 4, 5, 6, 7, 8}, {100, 200}}
	sel := NewSelector()
	_, st1 := sel.EncodeRank(4, slots, nil, ModeAdaptive)
	if st1.MemoHits != 0 {
		t.Fatalf("first message reported %d memo hits", st1.MemoHits)
	}
	buf, st2 := sel.EncodeRank(4, slots, nil, ModeAdaptive)
	if st2.MemoHits != 2 {
		t.Fatalf("second message reported %d memo hits, want 2", st2.MemoHits)
	}
	if _, err := DecodeRank(buf, 2); err != nil {
		t.Fatal(err)
	}
}
