package wire

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func randSections(rng *rand.Rand, gpusPerRank int) []Section {
	nsec := rng.Intn(5)
	secs := make([]Section, 0, nsec)
	used := map[int]bool{}
	for i := 0; i < nsec; i++ {
		rank := rng.Intn(64)
		if used[rank] {
			continue
		}
		used[rank] = true
		sec := Section{Rank: rank, Slots: make([][]uint32, gpusPerRank)}
		for s := 0; s < gpusPerRank; s++ {
			n := rng.Intn(40)
			ids := make([]uint32, n)
			for j := range ids {
				ids[j] = uint32(rng.Intn(2000))
			}
			sec.Slots[s] = ids
		}
		secs = append(secs, sec)
	}
	return secs
}

// TestSectionsRoundTrip checks every mode round-trips the per-slot id
// multiset of a multi-destination hop message.
func TestSectionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, mode := range []Mode{ModeOff, ModeAdaptive, ModeRaw, ModeDelta, ModeBitmap} {
		for trial := 0; trial < 50; trial++ {
			pgpu := 1 + rng.Intn(3)
			secs := randSections(rng, pgpu)
			buf, st := (*Selector)(nil).EncodeSections(secs, pgpu, mode)
			got, err := DecodeSections(buf, pgpu, 64, mode)
			if err != nil {
				t.Fatalf("mode %v trial %d: %v", mode, trial, err)
			}
			if len(got) != len(secs) {
				t.Fatalf("mode %v: %d sections, want %d", mode, len(got), len(secs))
			}
			var wantIDs int64
			for i, sec := range secs {
				if got[i].Rank != sec.Rank {
					t.Fatalf("mode %v: section %d rank %d, want %d", mode, i, got[i].Rank, sec.Rank)
				}
				for s := range sec.Slots {
					wantIDs += int64(len(sec.Slots[s]))
					if !reflect.DeepEqual(sortedOf(got[i].Slots[s]), sortedOf(sec.Slots[s])) {
						t.Fatalf("mode %v: section %d slot %d multiset mismatch", mode, i, s)
					}
					if got[i].Sorted[s] && !sort.SliceIsSorted(got[i].Slots[s], func(a, b int) bool {
						return got[i].Slots[s][a] < got[i].Slots[s][b]
					}) {
						t.Fatalf("mode %v: section %d slot %d flagged sorted but is not", mode, i, s)
					}
				}
			}
			if st.RawBytes != 4*wantIDs {
				t.Fatalf("mode %v: RawBytes %d, want %d", mode, st.RawBytes, 4*wantIDs)
			}
			if mode == ModeOff && st.EncodedBytes != st.RawBytes {
				t.Fatalf("off mode: EncodedBytes %d should equal RawBytes %d", st.EncodedBytes, st.RawBytes)
			}
			if mode != ModeOff && st.EncodedBytes != int64(len(buf)) {
				t.Fatalf("mode %v: EncodedBytes %d, frame is %d", mode, st.EncodedBytes, len(buf))
			}
		}
	}
}

// TestSectionsEmptyMessage covers the zero-section hop (a synchronization
// message a butterfly hop still sends).
func TestSectionsEmptyMessage(t *testing.T) {
	buf, st := (*Selector)(nil).EncodeSections(nil, 2, ModeAdaptive)
	if st.RawBytes != 0 {
		t.Fatalf("empty message RawBytes = %d", st.RawBytes)
	}
	got, err := DecodeSections(buf, 2, 8, ModeAdaptive)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %d sections", err, len(got))
	}
}

// TestSectionsRejectCorruption checks truncation and trailing garbage are
// detected, never silently decoded.
func TestSectionsRejectCorruption(t *testing.T) {
	secs := []Section{{Rank: 3, Slots: [][]uint32{{1, 2, 3}, {9}}}}
	for _, mode := range []Mode{ModeOff, ModeAdaptive} {
		buf, _ := (*Selector)(nil).EncodeSections(secs, 2, mode)
		if _, err := DecodeSections(append(append([]byte(nil), buf...), 0xff), 2, 8, mode); err == nil {
			t.Fatalf("mode %v: trailing byte accepted", mode)
		}
		if _, err := DecodeSections(buf[:len(buf)-2], 2, 8, mode); err == nil {
			t.Fatalf("mode %v: truncation accepted", mode)
		}
		if len(buf) > 1 {
			// Corrupt the section count.
			bad := append([]byte(nil), buf...)
			bad[0] = 0xde
			if _, err := DecodeSections(bad, 2, 8, mode); err == nil {
				t.Fatalf("mode %v: corrupt section count accepted", mode)
			}
		}
		// A destination rank outside the world (the framing varints sit
		// outside any CRC) must be an error, not a caller panic.
		if _, err := DecodeSections(buf, 2, 3, mode); err == nil {
			t.Fatalf("mode %v: out-of-range section rank accepted", mode)
		}
	}
}

// TestAppendSortedMatchesUnsorted: encoding already-sorted input with the
// presorted hint must produce byte-identical output to the hintless path.
func TestAppendSortedMatchesUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, mode := range []Mode{ModeAdaptive, ModeRaw, ModeDelta, ModeBitmap} {
		for trial := 0; trial < 100; trial++ {
			n := rng.Intn(60)
			ids := make([]uint32, n)
			for i := range ids {
				ids[i] = uint32(rng.Intn(500))
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			plain, s1 := Append(nil, ids, mode)
			hinted, s2 := AppendSorted(nil, ids, mode, true)
			if s1 != s2 || !reflect.DeepEqual(plain, hinted) {
				t.Fatalf("mode %v: presorted hint changed the encoding (%v vs %v)", mode, s1, s2)
			}
		}
	}
}
