// Package wire implements the adaptive frontier-exchange codec used by the
// inter-rank normal-vertex exchange (§V-B). The exchanged payloads are lists
// of 32-bit destination-local vertex ids; depending on frontier shape, the
// same list is smallest as a raw array (scattered, unordered), a sorted
// varint delta stream (clustered ids), or a dense bitmap (a large fraction
// of the destination's id space). The encoder picks the smallest
// representation per message, which is the communication-volume reduction
// that Romera-style frontier compression and ButterFly BFS both exploit.
//
// # Wire format
//
// One encoded block carries the ids destined for one GPU slot:
//
//	offset  size      field
//	0       1         scheme byte: 0 = raw, 1 = delta, 2 = bitmap
//	1       uvarint   n, the number of ids the block decodes to
//	…       payload   scheme-specific body (below)
//	end-4   4         CRC32 (IEEE, little-endian) of every preceding
//	                  byte of the block — corruption detection
//
// Scheme payloads:
//
//	raw     n × uint32 little-endian. Exact order and multiplicity of the
//	        input are preserved.
//	delta   the input sorted ascending: uvarint of the first id, then n−1
//	        uvarint gaps to the previous id (a gap of 0 encodes a
//	        duplicate). Decodes to the sorted permutation of the input —
//	        multiplicity preserved, order canonicalized.
//	bitmap  uvarint word count w, then w × uint64 little-endian forming a
//	        bitset over ids [0, 64·w). Set semantics: duplicates collapse.
//	        The adaptive selector only picks bitmap for duplicate-free
//	        input, so adaptive encoding always round-trips the multiset.
//
// A rank-to-rank message (EncodeRank/DecodeRank) is gpusPerRank blocks
// back to back, one per destination GPU slot.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
	"slices"

	"gcbfs/internal/frontier"
)

// ErrCorrupt is the sentinel wrapped by every decoder error: truncation,
// unknown scheme bytes, malformed varints, out-of-range counts and checksum
// mismatches all satisfy errors.Is(err, ErrCorrupt). Consumers use it to
// classify a failed exchange as payload corruption — the retryable fault
// class — without matching message strings.
var ErrCorrupt = errors.New("corrupt payload")

// corruptf builds a decoder error wrapping ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorrupt)...)
}

// Scheme identifies one block encoding.
type Scheme uint8

const (
	SchemeRaw Scheme = iota
	SchemeDelta
	SchemeBitmap

	// NumSchemes bounds per-scheme counters.
	NumSchemes = 3
)

func (s Scheme) String() string {
	switch s {
	case SchemeRaw:
		return "raw"
	case SchemeDelta:
		return "delta"
	case SchemeBitmap:
		return "bitmap"
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// Mode is the codec policy a caller selects: disabled, adaptive (smallest
// per block), or one scheme forced for ablations.
type Mode int

const (
	// ModeOff disables the codec entirely; callers keep their legacy
	// fixed-width packing.
	ModeOff Mode = iota
	// ModeAdaptive picks the smallest of the three schemes per block. A
	// Selector adds per-destination scheme memory on top: on memo hits the
	// remembered scheme is reused without re-probing, so a block whose
	// shape shifted inside the memory's size window may be encoded with
	// last iteration's winner rather than today's smallest.
	ModeAdaptive
	// ModeRaw, ModeDelta and ModeBitmap force one scheme for every block
	// (ablation knobs). ModeBitmap falls back to delta for blocks a bitmap
	// cannot sensibly carry: duplicated ids, or an id range so sparse the
	// bitmap would exceed four times the raw encoding (that guard keeps a
	// forced-bitmap ablation from allocating gigabyte bitsets for a
	// handful of huge ids).
	ModeRaw
	ModeDelta
	ModeBitmap
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeAdaptive:
		return "adaptive"
	case ModeRaw:
		return "raw"
	case ModeDelta:
		return "delta"
	case ModeBitmap:
		return "bitmap"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode converts a CLI/Config spelling into a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "off":
		return ModeOff, nil
	case "adaptive":
		return ModeAdaptive, nil
	case "raw":
		return ModeRaw, nil
	case "delta":
		return ModeDelta, nil
	case "bitmap":
		return ModeBitmap, nil
	}
	return ModeOff, fmt.Errorf("wire: unknown compression mode %q", s)
}

// Stats accounts one or more encode calls: the fixed-width byte equivalent
// (4 bytes per id, the paper's 4·|Enn| convention; 12 bytes per pair for the
// pairs codec), the bytes actually produced (headers and checksums included),
// per-scheme block counts, and how many blocks a Selector encoded straight
// from its per-destination scheme memory.
type Stats struct {
	RawBytes     int64
	EncodedBytes int64
	Selected     [NumSchemes]int64
	MemoHits     int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.RawBytes += other.RawBytes
	s.EncodedBytes += other.EncodedBytes
	for i := range s.Selected {
		s.Selected[i] += other.Selected[i]
	}
	s.MemoHits += other.MemoHits
}

const crcLen = 4

var crcTable = crc32.MakeTable(crc32.IEEE)

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	if v == 0 {
		return 1
	}
	return (bits.Len64(v) + 6) / 7
}

// sortedCopy returns ids sorted ascending (a copy; input is not mutated)
// and whether the sorted sequence is duplicate-free. A non-nil buf supplies
// the copy's storage (grown as needed and written back), so repeat callers
// — a Selector encoding block after block — sort without allocating; the
// sorted view must then not outlive the encode that requested it.
func sortedCopy(ids []uint32, buf *[]uint32) (sorted []uint32, unique bool) {
	if buf != nil {
		sorted = append((*buf)[:0], ids...)
		*buf = sorted
	} else {
		sorted = append(make([]uint32, 0, len(ids)), ids...)
	}
	slices.Sort(sorted)
	return sorted, isUnique(sorted)
}

// isUnique reports whether a sorted id list is duplicate-free.
func isUnique(sorted []uint32) bool {
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return false
		}
	}
	return true
}

// sortedView returns a sorted view of ids plus its uniqueness. With the
// presorted hint (the caller asserts ids are already ascending — uniquified
// frontier bins are) the input is used directly, skipping the sort copy that
// dominates delta encoding; only the linear duplicate scan remains.
func sortedView(ids []uint32, presorted bool, buf *[]uint32) ([]uint32, bool) {
	if presorted {
		return ids, isUnique(ids)
	}
	return sortedCopy(ids, buf)
}

// deltaPayloadLen returns the payload size of the delta scheme for a sorted
// id list.
func deltaPayloadLen(sorted []uint32) int {
	if len(sorted) == 0 {
		return 0
	}
	size := uvarintLen(uint64(sorted[0]))
	for i := 1; i < len(sorted); i++ {
		size += uvarintLen(uint64(sorted[i] - sorted[i-1]))
	}
	return size
}

// bitmapPayloadLen returns the payload size of the bitmap scheme for a
// sorted id list (word count header plus the words themselves).
func bitmapPayloadLen(sorted []uint32) int {
	if len(sorted) == 0 {
		return uvarintLen(0)
	}
	words := int(sorted[len(sorted)-1])/64 + 1
	return uvarintLen(uint64(words)) + 8*words
}

// blockLen returns the full block size for a payload of the given length.
func blockLen(n int, payload int) int {
	return 1 + uvarintLen(uint64(n)) + payload + crcLen
}

// Append encodes ids as one block according to mode and appends it to dst,
// returning the extended buffer and the scheme actually used. Mode must not
// be ModeOff. See the package comment for per-scheme round-trip semantics.
func Append(dst []byte, ids []uint32, mode Mode) ([]byte, Scheme) {
	return AppendSorted(dst, ids, mode, false)
}

// AppendSorted is Append with a pre-sorted hint: when presorted is true the
// caller asserts ids are already sorted ascending (duplicates allowed), so
// the delta/bitmap paths skip their sort copy and encode the input directly.
// A false hint on unsorted input would corrupt the delta stream — callers
// plumb the hint from frontier.Bins, which tracks it per bin.
func AppendSorted(dst []byte, ids []uint32, mode Mode, presorted bool) ([]byte, Scheme) {
	return appendSorted(dst, ids, mode, presorted, nil)
}

// appendSorted is AppendSorted with an optional sort scratch (see
// sortedCopy); the Selector threads its per-rank buffer through here so
// unsorted blocks stop allocating their canonical view.
func appendSorted(dst []byte, ids []uint32, mode Mode, presorted bool, sortBuf *[]uint32) ([]byte, Scheme) {
	scheme := SchemeRaw
	var sorted []uint32
	switch mode {
	case ModeRaw:
		// No canonicalization needed.
	case ModeDelta:
		scheme = SchemeDelta
		sorted, _ = sortedView(ids, presorted, sortBuf)
	case ModeBitmap:
		var unique bool
		sorted, unique = sortedView(ids, presorted, sortBuf)
		if unique && bitmapPayloadLen(sorted) <= 4*4*len(ids)+16 {
			scheme = SchemeBitmap
		} else {
			scheme = SchemeDelta
		}
	case ModeAdaptive:
		var unique bool
		sorted, unique = sortedView(ids, presorted, sortBuf)
		rawSize := 4 * len(ids)
		bestSize := rawSize
		if d := deltaPayloadLen(sorted); d < bestSize {
			bestSize, scheme = d, SchemeDelta
		}
		if unique {
			if b := bitmapPayloadLen(sorted); b < bestSize {
				scheme = SchemeBitmap
			}
		}
	default:
		panic(fmt.Sprintf("wire: Append called with mode %v", mode))
	}

	start := len(dst)
	dst = append(dst, byte(scheme))
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	switch scheme {
	case SchemeRaw:
		for _, v := range ids {
			dst = binary.LittleEndian.AppendUint32(dst, v)
		}
	case SchemeDelta:
		if len(sorted) > 0 {
			dst = binary.AppendUvarint(dst, uint64(sorted[0]))
			for i := 1; i < len(sorted); i++ {
				dst = binary.AppendUvarint(dst, uint64(sorted[i]-sorted[i-1]))
			}
		}
	case SchemeBitmap:
		words := 0
		if len(sorted) > 0 {
			words = int(sorted[len(sorted)-1])/64 + 1
		}
		dst = binary.AppendUvarint(dst, uint64(words))
		wordsStart := len(dst)
		dst = slices.Grow(dst, 8*words)[:wordsStart+8*words]
		clear(dst[wordsStart:])
		for _, v := range sorted {
			off := wordsStart + int(v/64)*8
			w := binary.LittleEndian.Uint64(dst[off:])
			binary.LittleEndian.PutUint64(dst[off:], w|1<<(v%64))
		}
	}
	sum := crc32.Checksum(dst[start:], crcTable)
	dst = binary.LittleEndian.AppendUint32(dst, sum)
	return dst, scheme
}

// Decode parses one block at the start of buf. It returns the decoded ids,
// the number of bytes consumed, and the scheme. Any truncation, trailing
// garbage inside the block, unknown scheme byte or checksum mismatch yields
// an error — a block never decodes to wrong ids silently.
func Decode(buf []byte) ([]uint32, int, Scheme, error) {
	return DecodeAppend(buf, nil)
}

// DecodeAppend is Decode writing into a caller-provided buffer: the decoded
// ids are appended to dst (grown once, pre-sized by the block's id-count
// header) and the extended slice is returned. This is the zero-copy arrival
// path — a receiver hands its reusable per-slot arrival bin and a
// steady-state exchange decodes without allocating. On error the contents of
// dst are unspecified and the returned slice must be discarded.
func DecodeAppend(buf []byte, dst []uint32) ([]uint32, int, Scheme, error) {
	return decodeBlock(buf, func(n int) []uint32 { return slices.Grow(dst, n) })
}

// decodeBlock parses one block, drawing the id buffer from grow(n) — a
// function returning a slice (existing contents preserved) with capacity for
// n more ids. Per-scheme count bounds run BEFORE grow is called, so a
// corrupt count field can never trigger a huge allocation: raw ids take 4
// bytes each, delta ids at least 1 byte each, bitmap ids at most 64 per
// 8-byte word.
func decodeBlock(buf []byte, grow func(n int) []uint32) ([]uint32, int, Scheme, error) {
	if len(buf) < 1+1+crcLen {
		return nil, 0, 0, corruptf("wire: block truncated (%d bytes)", len(buf))
	}
	scheme := Scheme(buf[0])
	if scheme >= NumSchemes {
		return nil, 0, 0, corruptf("wire: unknown scheme byte %d", buf[0])
	}
	off := 1
	count, k := binary.Uvarint(buf[off:])
	if k <= 0 {
		return nil, 0, 0, corruptf("wire: bad id count varint")
	}
	off += k
	body := len(buf) - off - crcLen
	if body < 0 {
		return nil, 0, 0, corruptf("wire: block truncated before checksum")
	}
	var ids []uint32
	n := int(count)

	switch scheme {
	case SchemeRaw:
		if count > uint64(body)/4 {
			return nil, 0, 0, corruptf("wire: raw block truncated (%d ids, %d payload bytes)", count, body)
		}
		ids = grow(n)
		for i := 0; i < n; i++ {
			ids = append(ids, binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
	case SchemeDelta:
		if count > uint64(body) {
			return nil, 0, 0, corruptf("wire: delta block truncated (%d ids, %d payload bytes)", count, body)
		}
		ids = grow(n)
		prev := uint64(0)
		for i := 0; i < n; i++ {
			v, k := binary.Uvarint(buf[off:])
			if k <= 0 || off+k+crcLen > len(buf) {
				return nil, 0, 0, corruptf("wire: delta block truncated at id %d/%d", i, n)
			}
			off += k
			// Bound the gap before adding prev: a 10-byte uvarint can
			// exceed 2^64-2^32 and wrap the sum back into uint32 range,
			// which would decode to wrong ids instead of an error.
			if v > 1<<32-1 {
				return nil, 0, 0, corruptf("wire: delta gap %d overflows uint32", v)
			}
			if i > 0 {
				v += prev
			}
			if v > 1<<32-1 {
				return nil, 0, 0, corruptf("wire: delta id %d overflows uint32", v)
			}
			prev = v
			ids = append(ids, uint32(v))
		}
	case SchemeBitmap:
		words, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, 0, 0, corruptf("wire: bad bitmap word count varint")
		}
		off += k
		if words > uint64(len(buf))/8 || off+8*int(words)+crcLen > len(buf) {
			return nil, 0, 0, corruptf("wire: bitmap block truncated (%d words)", words)
		}
		if count > 64*words {
			return nil, 0, 0, corruptf("wire: bitmap id count %d exceeds capacity of %d words", count, words)
		}
		ids = grow(n)
		base := len(ids)
		for w := 0; w < int(words); w++ {
			word := binary.LittleEndian.Uint64(buf[off:])
			off += 8
			for word != 0 {
				bit := bits.TrailingZeros64(word)
				ids = append(ids, uint32(w*64+bit))
				word &= word - 1
			}
		}
		if len(ids)-base != n {
			return nil, 0, 0, corruptf("wire: bitmap population %d does not match id count %d", len(ids)-base, n)
		}
	}

	if off+crcLen > len(buf) {
		return nil, 0, 0, corruptf("wire: block truncated before checksum")
	}
	want := binary.LittleEndian.Uint32(buf[off:])
	if got := crc32.Checksum(buf[:off], crcTable); got != want {
		return nil, 0, 0, corruptf("wire: checksum mismatch (got %08x, want %08x)", got, want)
	}
	return ids, off + crcLen, scheme, nil
}

// EncodeRank encodes one block per destination GPU slot into a single
// rank-to-rank message and reports the accounting for the whole message.
// Pre-sorted hints and scheme memory are the Selector method's job; this
// entry point encodes without either.
func EncodeRank(slots [][]uint32, mode Mode) ([]byte, Stats) {
	return (*Selector)(nil).EncodeRank(0, slots, nil, mode)
}

// DecodeRank parses an EncodeRank message back into per-slot id lists.
// Trailing bytes after the last block are rejected, as are all per-block
// corruption forms Decode detects.
func DecodeRank(buf []byte, gpusPerRank int) ([][]uint32, error) {
	out, _, err := decodeRankSchemes(buf, gpusPerRank, nil, nil)
	return out, err
}

// DecodeRankInto parses an EncodeRank message, appending each slot's ids to
// the corresponding entry of into (len(into) is the slot count) and
// returning the per-slot id counts. The zero-copy counterpart of DecodeRank:
// each block's count header pre-sizes the grow, so decoding into reusable
// arrival bins allocates nothing on the steady state. On error the contents
// of into are unspecified (the caller abandons the exchange).
func DecodeRankInto(buf []byte, into [][]uint32) error {
	off := 0
	for s := range into {
		ids, n, _, err := DecodeAppend(buf[off:], into[s])
		if err != nil {
			return fmt.Errorf("wire: slot %d: %w", s, err)
		}
		into[s] = ids
		off += n
	}
	if off != len(buf) {
		return corruptf("wire: %d trailing bytes after %d slots", len(buf)-off, len(into))
	}
	return nil
}

// decodeRankSchemes is DecodeRank plus the per-slot scheme bytes, which tell
// the butterfly exchange whether a decoded slot is already sorted (delta and
// bitmap canonicalize to ascending order; raw preserves sender order). A
// non-nil arena supplies the id buffers (per-iteration lifetime); a non-nil
// scratch supplies the slot row (bump, per-iteration) and the scheme row
// (reused per call — the caller consumes it before the next decode).
func decodeRankSchemes(buf []byte, gpusPerRank int, arena *frontier.Arena, h *SectionScratch) ([][]uint32, []Scheme, error) {
	var out [][]uint32
	var schemes []Scheme
	if h != nil {
		out = h.takeSlotRow(gpusPerRank)
		schemes = h.schemeRow(gpusPerRank)
		clear(schemes)
	} else {
		out = make([][]uint32, gpusPerRank)
		schemes = make([]Scheme, gpusPerRank)
	}
	off := 0
	for s := 0; s < gpusPerRank; s++ {
		var ids []uint32
		var n int
		var scheme Scheme
		var err error
		if arena != nil {
			ids, n, scheme, err = decodeBlock(buf[off:], arena.Alloc)
		} else {
			ids, n, scheme, err = Decode(buf[off:])
		}
		if err != nil {
			return nil, nil, fmt.Errorf("wire: slot %d: %w", s, err)
		}
		out[s] = ids
		schemes[s] = scheme
		off += n
	}
	if off != len(buf) {
		return nil, nil, corruptf("wire: %d trailing bytes after %d slots", len(buf)-off, gpusPerRank)
	}
	return out, schemes, nil
}
