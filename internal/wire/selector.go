package wire

import "gcbfs/internal/frontier"

// This file implements per-destination scheme memory for the adaptive codec.
// Frontier shape is stable across consecutive BFS iterations: the block that
// delta-encoded best for (dst, slot) last iteration almost always does again.
// A Selector therefore remembers each block's winning scheme and, while the
// block's size stays within 2× of the remembered one, encodes with that
// scheme directly — skipping the full three-way size probe (and its sort
// copy for raw winners). A size-ratio change falls back to full selection,
// so phase transitions (frontier growth/collapse) re-probe immediately.

type blockKey struct {
	dst, slot int
}

type blockMemo struct {
	scheme   Scheme
	rawBytes int64
}

// Selector adds per-(destination, slot) scheme memory to adaptive encoding.
// It is not safe for concurrent use; the engine keeps one per rank.
type Selector struct {
	memo map[blockKey]blockMemo
	// sortBuf is the reusable sort scratch for unsorted blocks: the sorted
	// view lives only for the duration of one Append, so one buffer per
	// selector serves every block in turn.
	sortBuf []uint32
	// secBuf is the reusable per-section payload buffer AppendSections
	// encodes each section into before framing it (the framing copies the
	// payload out immediately, so one buffer serves every section in turn).
	secBuf []byte
}

// NewSelector returns an empty selector.
func NewSelector() *Selector {
	return NewSelectorSized(0)
}

// NewSelectorSized returns an empty selector whose scheme-memory map is
// pre-sized for the expected block count — destinations × slots, known from
// the cluster shape — so the steady state never pays map growth.
func NewSelectorSized(blocks int) *Selector {
	return &Selector{memo: make(map[blockKey]blockMemo, blocks)}
}

// Reset forgets all scheme memory while keeping the map's storage, so a
// pooled selector starts every query from the same blank state a fresh one
// would — per-query wire bytes stay bit-identical regardless of what ran on
// the scratch before.
func (sel *Selector) Reset() {
	if sel != nil && sel.memo != nil {
		clear(sel.memo)
	}
}

// forcedMode returns the mode that pins a remembered scheme.
func forcedMode(s Scheme) Mode {
	if s == SchemeDelta {
		return ModeDelta
	}
	return ModeRaw
}

// Append encodes ids for the (dst, slot) block, consulting the scheme memory
// when mode is adaptive. It returns the extended buffer, the scheme used,
// and whether the memory short-circuited full selection.
//
// Bitmap winners are never pinned: the forced-bitmap mode accepts blocks up
// to ~4× the raw size (an ablation affordance), so a remembered bitmap
// could lock in inflated encodings when the id range widens while the count
// stays stable — and bitmap sizing needs the sorted view anyway, so the
// full probe costs nothing extra for those blocks.
func (sel *Selector) Append(buf []byte, ids []uint32, mode Mode, dst, slot int, presorted bool) ([]byte, Scheme, bool) {
	if sel == nil || sel.memo == nil || mode != ModeAdaptive {
		var sortBuf *[]uint32
		if sel != nil {
			sortBuf = &sel.sortBuf
		}
		out, scheme := appendSorted(buf, ids, mode, presorted, sortBuf)
		return out, scheme, false
	}
	key := blockKey{dst: dst, slot: slot}
	raw := 4 * int64(len(ids))
	if m, ok := sel.memo[key]; ok && m.scheme != SchemeBitmap && m.rawBytes > 0 && raw > 0 &&
		raw >= m.rawBytes/2 && raw <= 2*m.rawBytes {
		out, scheme := appendSorted(buf, ids, forcedMode(m.scheme), presorted, &sel.sortBuf)
		sel.memo[key] = blockMemo{scheme: scheme, rawBytes: raw}
		return out, scheme, true
	}
	out, scheme := appendSorted(buf, ids, ModeAdaptive, presorted, &sel.sortBuf)
	sel.memo[key] = blockMemo{scheme: scheme, rawBytes: raw}
	return out, scheme, false
}

// EncodeRank encodes one block per destination GPU slot through the scheme
// memory, keyed by the destination rank.
func (sel *Selector) EncodeRank(dst int, slots [][]uint32, sorted []bool, mode Mode) ([]byte, Stats) {
	return sel.AppendRank(nil, dst, slots, sorted, mode)
}

// AppendRank is EncodeRank into a caller-owned buffer: the encoded blocks
// are appended to buf and Stats count only the bytes this call produced.
// Callers that reuse buffers across iterations hit zero steady-state
// allocation; the engine's exchanges own one buffer per in-flight message
// slot (per hop for the butterfly, per destination for all-pairs), so a
// buffer is never rewritten before the simulated barrier that guarantees
// its receipt.
func (sel *Selector) AppendRank(buf []byte, dst int, slots [][]uint32, sorted []bool, mode Mode) ([]byte, Stats) {
	var st Stats
	start := len(buf)
	for s, ids := range slots {
		var scheme Scheme
		var hit bool
		buf, scheme, hit = sel.Append(buf, ids, mode, dst, s, sorted != nil && sorted[s])
		st.RawBytes += 4 * int64(len(ids))
		st.Selected[scheme]++
		if hit {
			st.MemoHits++
		}
	}
	st.EncodedBytes = int64(len(buf) - start)
	return buf, st
}

// EncodeSlots encodes one destination rank's per-slot id lists as a single
// message payload under the engine's accounting conventions, shared by the
// all-pairs sender and the butterfly's per-section encoder: with ModeOff the
// fixed-width PackRank layout whose Stats count id bytes only (the paper's
// 4·|Enn| convention — the per-slot headers are wire framing); otherwise
// EncodeRank blocks through the scheme memory, with Stats counting the full
// encoded payload.
func (sel *Selector) EncodeSlots(dst int, slots [][]uint32, sorted []bool, mode Mode) ([]byte, Stats) {
	return sel.AppendSlots(nil, dst, slots, sorted, mode)
}

// AppendSlots is EncodeSlots into a caller-owned buffer (see AppendRank for
// the reuse contract).
func (sel *Selector) AppendSlots(buf []byte, dst int, slots [][]uint32, sorted []bool, mode Mode) ([]byte, Stats) {
	if mode == ModeOff {
		payload := (&frontier.Bins{PerGPU: slots}).PackRank(0, len(slots))
		var st Stats
		for _, ids := range slots {
			st.RawBytes += 4 * int64(len(ids))
		}
		st.EncodedBytes = st.RawBytes
		if buf == nil {
			return payload, st
		}
		return append(buf, payload...), st
	}
	return sel.AppendRank(buf, dst, slots, sorted, mode)
}
