package graph

// BFS-source selection shared by the public Sources helper, bfsrun and the
// experiment harness: the paper's random-source methodology (§VI-A runs 64
// random sources per data point) with deterministic seeding, plus the guard
// the original per-caller loops lacked — a graph with fewer positive-degree
// vertices than requested must not spin forever re-rolling the RNG.

// PickSources selects count distinct vertices with out-degree > 0,
// deterministically from seed (splitmix64 rejection sampling, identical to
// the historical gcbfs.Sources / bfsrun behaviour when spare candidates
// exist). When the graph has no more than count positive-degree vertices it
// returns all of them in ascending order — a short (or exact) list, never an
// infinite loop and never the degenerate coupon-collector tail the rejection
// loop would hit with nothing to spare. count ≤ 0 or an empty degree slice
// returns nil.
func PickSources(deg []int64, count int, seed uint64) []int64 {
	if count <= 0 || len(deg) == 0 {
		return nil
	}
	eligible := 0
	for _, d := range deg {
		if d > 0 {
			eligible++
		}
	}
	if eligible == 0 {
		return nil
	}
	if eligible <= count {
		out := make([]int64, 0, eligible)
		for v, d := range deg {
			if d > 0 {
				out = append(out, int64(v))
			}
		}
		return out
	}
	rng := splitMix64{state: seed}
	n := uint64(len(deg))
	out := make([]int64, 0, count)
	seen := make(map[int64]bool, count)
	for len(out) < count {
		v := int64(rng.next() % n)
		if deg[v] > 0 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// splitMix64 is the standard SplitMix64 generator — tiny, deterministic and
// identical across every caller that used to inline it.
type splitMix64 struct{ state uint64 }

func (s *splitMix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
