package graph

// Binary graph serialization for the command-line tools: a small
// little-endian format (magic, version, n, m, then 16 bytes per directed
// edge). The format stores the same information as the "conventional edge
// list representation" whose size Table I uses as the baseline.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

const (
	magic   = uint32(0x47434246) // "GCBF"
	version = uint32(1)
)

// WriteBinary serializes the edge list.
func WriteBinary(w io.Writer, el *EdgeList) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(el.N))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(el.M()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [16]byte
	for _, e := range el.Edges {
		binary.LittleEndian.PutUint64(buf[0:], uint64(e.U))
		binary.LittleEndian.PutUint64(buf[8:], uint64(e.V))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes an edge list written by WriteBinary.
func ReadBinary(r io.Reader) (*EdgeList, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != magic {
		return nil, fmt.Errorf("graph: bad magic %#x", got)
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != version {
		return nil, fmt.Errorf("graph: unsupported version %d", got)
	}
	n := int64(binary.LittleEndian.Uint64(hdr[8:]))
	m := int64(binary.LittleEndian.Uint64(hdr[16:]))
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: corrupt sizes n=%d m=%d", n, m)
	}
	el := &EdgeList{N: n, Edges: make([]Edge, m)}
	var buf [16]byte
	for i := int64(0); i < m; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		el.Edges[i] = Edge{
			U: int64(binary.LittleEndian.Uint64(buf[0:])),
			V: int64(binary.LittleEndian.Uint64(buf[8:])),
		}
	}
	if err := el.Validate(); err != nil {
		return nil, err
	}
	return el, nil
}
