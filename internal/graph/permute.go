package graph

// Deterministic vertex-number randomization (paper §VI-A3: "Vertex numbers
// are randomized using a deterministic hashing function after edge
// generation"). Randomizing vertex ids destroys the locality the RMAT
// recursion bakes into low vertex numbers, so partition balance reflects the
// distributor, not generator artifacts.
//
// We need a *bijection* on [0, n) that is cheap, seedable and stateless. A
// 4-round Feistel network over the index bits gives exactly that for any n
// (cycle-walking handles non-power-of-two domains).

// Permutation is a deterministic bijection on [0, n).
type Permutation struct {
	n    int64
	bits uint // Feistel domain is 2^bits ≥ n
	half uint // bits/2 rounded up
	keys [4]uint64
}

// NewPermutation builds the identity-free bijection on [0, n) seeded by seed.
// n must be positive.
func NewPermutation(n int64, seed uint64) *Permutation {
	if n <= 0 {
		panic("graph: permutation over empty domain")
	}
	bits := uint(1)
	for int64(1)<<bits < n {
		bits++
	}
	if bits%2 != 0 {
		bits++ // even split for the Feistel halves
	}
	p := &Permutation{n: n, bits: bits, half: bits / 2}
	x := seed
	for i := range p.keys {
		// splitmix64 round per key
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p.keys[i] = z ^ (z >> 31)
	}
	return p
}

func (p *Permutation) feistel(x uint64) uint64 {
	mask := (uint64(1) << p.half) - 1
	l := x >> p.half
	r := x & mask
	for _, k := range p.keys {
		f := mix(r ^ k)
		l, r = r, (l^f)&mask
	}
	return l<<p.half | r
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}

// Map returns the permuted image of v. Cycle-walking: apply the Feistel
// permutation over the enclosing power of two until the value lands back in
// [0, n); because the Feistel network is a bijection on the bigger domain,
// the walk terminates and the restriction to [0, n) is a bijection.
func (p *Permutation) Map(v int64) int64 {
	x := uint64(v)
	for {
		x = p.feistel(x)
		if int64(x) < p.n {
			return int64(x)
		}
	}
}

// Apply permutes every endpoint of the edge list in place.
func (p *Permutation) Apply(el *EdgeList) {
	for i := range el.Edges {
		el.Edges[i].U = p.Map(el.Edges[i].U)
		el.Edges[i].V = p.Map(el.Edges[i].V)
	}
}
