package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallList() *EdgeList {
	el := NewEdgeList(5)
	el.Add(0, 1)
	el.Add(0, 2)
	el.Add(1, 2)
	el.Add(3, 0)
	el.Add(3, 4)
	el.Add(3, 4) // parallel edge
	return el
}

func TestEdgeListBasics(t *testing.T) {
	el := smallList()
	if el.M() != 6 {
		t.Fatalf("M = %d, want 6", el.M())
	}
	if err := el.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if el.ByteSize() != 6*16 {
		t.Fatalf("ByteSize = %d", el.ByteSize())
	}
}

func TestValidateCatchesRangeErrors(t *testing.T) {
	el := NewEdgeList(3)
	el.Add(0, 3)
	if el.Validate() == nil {
		t.Fatal("Validate accepted out-of-range destination")
	}
	el2 := NewEdgeList(3)
	el2.Add(-1, 0)
	if el2.Validate() == nil {
		t.Fatal("Validate accepted negative source")
	}
}

func TestSymmetrizeDoubles(t *testing.T) {
	el := smallList()
	sym := el.Symmetrize()
	if sym.M() != 2*el.M() {
		t.Fatalf("Symmetrize M = %d, want %d", sym.M(), 2*el.M())
	}
	// Every original edge and its reverse must be present.
	type pair = Edge
	count := map[pair]int{}
	for _, e := range sym.Edges {
		count[e]++
	}
	for _, e := range el.Edges {
		if count[e] < 1 || count[Edge{e.V, e.U}] < 1 {
			t.Fatalf("edge %v or its reverse missing after Symmetrize", e)
		}
	}
}

func TestOutDegrees(t *testing.T) {
	deg := smallList().OutDegrees()
	want := []int64{2, 1, 0, 3, 0}
	for i, w := range want {
		if deg[i] != w {
			t.Fatalf("deg[%d] = %d, want %d", i, deg[i], w)
		}
	}
}

func TestBuildCSR(t *testing.T) {
	c := BuildCSR(smallList())
	if c.M() != 6 {
		t.Fatalf("CSR M = %d", c.M())
	}
	if got := c.OutDegree(3); got != 3 {
		t.Fatalf("OutDegree(3) = %d", got)
	}
	c.SortRows()
	nbr := c.Neighbors(3)
	want := []int64{0, 4, 4}
	for i, w := range want {
		if nbr[i] != w {
			t.Fatalf("Neighbors(3) = %v, want %v", nbr, want)
		}
	}
	if len(c.Neighbors(2)) != 0 {
		t.Fatal("Neighbors(2) should be empty")
	}
	if c.ByteSize() != int64(6*8)+int64(6*8) {
		t.Fatalf("CSR ByteSize = %d", c.ByteSize())
	}
}

// Property: CSR preserves the multiset of edges.
func TestQuickCSRRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(rng.Intn(50) + 1)
		el := NewEdgeList(n)
		for i := 0; i < rng.Intn(200); i++ {
			el.Add(rng.Int63n(n), rng.Int63n(n))
		}
		c := BuildCSR(el)
		if c.M() != el.M() {
			return false
		}
		want := map[Edge]int{}
		for _, e := range el.Edges {
			want[e]++
		}
		got := map[Edge]int{}
		for u := int64(0); u < n; u++ {
			for _, v := range c.Neighbors(u) {
				got[Edge{u, v}]++
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, cnt := range want {
			if got[k] != cnt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	s := Stats([]int64{0, 3, 5, 0, 2})
	if s.Min != 0 || s.Max != 5 || s.Zero != 2 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.Mean != 2.0 {
		t.Fatalf("Mean = %f", s.Mean)
	}
	if z := Stats(nil); z.Max != 0 || z.Mean != 0 {
		t.Fatalf("Stats(nil) = %+v", z)
	}
}

func TestPermutationIsBijection(t *testing.T) {
	for _, n := range []int64{1, 2, 7, 64, 100, 1 << 12} {
		p := NewPermutation(n, 12345)
		seen := make([]bool, n)
		for v := int64(0); v < n; v++ {
			img := p.Map(v)
			if img < 0 || img >= n {
				t.Fatalf("n=%d: Map(%d)=%d out of range", n, v, img)
			}
			if seen[img] {
				t.Fatalf("n=%d: Map not injective at %d", n, v)
			}
			seen[img] = true
		}
	}
}

func TestPermutationDeterministicAndSeeded(t *testing.T) {
	p1 := NewPermutation(1000, 7)
	p2 := NewPermutation(1000, 7)
	p3 := NewPermutation(1000, 8)
	same, diff := true, false
	for v := int64(0); v < 1000; v++ {
		if p1.Map(v) != p2.Map(v) {
			same = false
		}
		if p1.Map(v) != p3.Map(v) {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different permutations")
	}
	if !diff {
		t.Fatal("different seeds produced identical permutations")
	}
}

func TestPermutationApply(t *testing.T) {
	el := smallList()
	orig := make([]Edge, len(el.Edges))
	copy(orig, el.Edges)
	p := NewPermutation(el.N, 99)
	p.Apply(el)
	for i, e := range el.Edges {
		if e.U != p.Map(orig[i].U) || e.V != p.Map(orig[i].V) {
			t.Fatalf("Apply mismatch at edge %d", i)
		}
	}
	if err := el.Validate(); err != nil {
		t.Fatalf("permuted list invalid: %v", err)
	}
}

// Property: permutation is a bijection for arbitrary domains and seeds.
func TestQuickPermutationBijection(t *testing.T) {
	f := func(nRaw uint16, seed uint64) bool {
		n := int64(nRaw%2000) + 1
		p := NewPermutation(n, seed)
		seen := make([]bool, n)
		for v := int64(0); v < n; v++ {
			img := p.Map(v)
			if img < 0 || img >= n || seen[img] {
				return false
			}
			seen[img] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	el := NewEdgeList(1 << 14)
	for i := 0; i < 1<<18; i++ {
		el.Add(rng.Int63n(el.N), rng.Int63n(el.N))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCSR(el)
	}
}
