package graph

import (
	"bytes"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	el := smallList()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, el); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != el.N || got.M() != el.M() {
		t.Fatalf("sizes: %d/%d vs %d/%d", got.N, got.M(), el.N, el.M())
	}
	for i := range el.Edges {
		if got.Edges[i] != el.Edges[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	el := NewEdgeList(5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, el); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 5 || got.M() != 0 {
		t.Fatalf("got %d/%d", got.N, got.M())
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("accepted zero magic")
	}
	// Valid header but truncated edges.
	el := smallList()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, el); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("accepted truncated payload")
	}
}
