package graph

import "testing"

func TestPickSourcesDeterministic(t *testing.T) {
	deg := make([]int64, 100)
	for i := range deg {
		deg[i] = int64(i % 3) // two thirds positive degree
	}
	a := PickSources(deg, 10, 7)
	b := PickSources(deg, 10, 7)
	if len(a) != 10 {
		t.Fatalf("got %d sources, want 10", len(a))
	}
	seen := map[int64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic for a fixed seed")
		}
		if deg[a[i]] == 0 {
			t.Fatalf("picked zero-degree vertex %d", a[i])
		}
		if seen[a[i]] {
			t.Fatalf("duplicate source %d", a[i])
		}
		seen[a[i]] = true
	}
	if c := PickSources(deg, 10, 8); len(c) == 10 && c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seeds produced the same prefix")
	}
}

func TestPickSourcesShortList(t *testing.T) {
	deg := []int64{0, 5, 0, 2, 0, 1}
	got := PickSources(deg, 10, 1) // more requested than exist
	want := []int64{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (ascending short list)", got, want)
		}
	}
	// Exactly as many as requested: the random path, still complete.
	if got := PickSources(deg, 3, 1); len(got) != 3 {
		t.Fatalf("exact-count pick returned %v", got)
	}
}

func TestPickSourcesDegenerate(t *testing.T) {
	if got := PickSources(nil, 4, 1); got != nil {
		t.Fatalf("nil degrees returned %v", got)
	}
	if got := PickSources([]int64{0, 0, 0}, 4, 1); got != nil {
		t.Fatalf("all-isolated graph returned %v", got)
	}
	if got := PickSources([]int64{1, 2}, 0, 1); got != nil {
		t.Fatalf("count=0 returned %v", got)
	}
}
