// Package graph provides the shared graph core: directed edge lists,
// compressed sparse row (CSR) adjacency, degree statistics, symmetrization
// by edge doubling, and the deterministic vertex-permutation hash required
// by the Graph500 reporting rules (paper §VI-A3).
//
// Global vertex ids are int64 throughout, matching the paper's use of 64-bit
// global ids; partitioned subgraphs narrow them to 32 bits locally
// (see internal/partition), which is where the memory savings of Table I
// come from.
package graph

import (
	"fmt"
	"sort"
)

// Edge is one directed edge u → v in global vertex numbering.
type Edge struct {
	U, V int64
}

// EdgeList is a directed multigraph over vertices [0, N).
// It is the interchange format between generators, the edge distributor and
// the baselines — the "conventional edge list representation" whose 16m-byte
// footprint Table I compares against (8 bytes per endpoint).
type EdgeList struct {
	N     int64 // number of vertices
	Edges []Edge
}

// NewEdgeList returns an empty edge list over n vertices.
func NewEdgeList(n int64) *EdgeList {
	return &EdgeList{N: n}
}

// M returns the number of directed edges.
func (el *EdgeList) M() int64 { return int64(len(el.Edges)) }

// Add appends the directed edge u → v.
func (el *EdgeList) Add(u, v int64) {
	el.Edges = append(el.Edges, Edge{u, v})
}

// Validate checks that every endpoint lies in [0, N).
func (el *EdgeList) Validate() error {
	for i, e := range el.Edges {
		if e.U < 0 || e.U >= el.N || e.V < 0 || e.V >= el.N {
			return fmt.Errorf("graph: edge %d (%d→%d) out of range [0,%d)", i, e.U, e.V, el.N)
		}
	}
	return nil
}

// ByteSize returns the conventional edge-list storage cost in bytes
// (two 8-byte endpoints per directed edge), the 16m baseline of Table I.
func (el *EdgeList) ByteSize() int64 { return el.M() * 16 }

// Symmetrize returns a new edge list with every edge doubled (u→v and v→u),
// the paper's preparation step for undirected inputs ("we make an edge pair
// of opposite directions for an undirected edge"). Self-loops are doubled
// too: Graph500 permits self-loops and they are harmless to BFS.
func (el *EdgeList) Symmetrize() *EdgeList {
	out := &EdgeList{N: el.N, Edges: make([]Edge, 0, 2*len(el.Edges))}
	for _, e := range el.Edges {
		out.Edges = append(out.Edges, e, Edge{e.V, e.U})
	}
	return out
}

// OutDegrees counts the out-degree of every vertex.
func (el *EdgeList) OutDegrees() []int64 {
	deg := make([]int64, el.N)
	for _, e := range el.Edges {
		deg[e.U]++
	}
	return deg
}

// CSR is compressed-sparse-row adjacency over global 64-bit vertex ids: the
// "standard graph representation" the paper deliberately keeps (§II-D) so
// BFS can sit inside larger workflows without format conversion.
type CSR struct {
	N          int64
	RowOffsets []int64 // len N+1
	Cols       []int64 // len M
}

// BuildCSR converts an edge list into CSR form using a counting sort on the
// source vertex; neighbor order within a row follows the edge list order.
func BuildCSR(el *EdgeList) *CSR {
	n := el.N
	offsets := make([]int64, n+1)
	for _, e := range el.Edges {
		offsets[e.U+1]++
	}
	for i := int64(0); i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	cols := make([]int64, len(el.Edges))
	cursor := make([]int64, n)
	for _, e := range el.Edges {
		cols[offsets[e.U]+cursor[e.U]] = e.V
		cursor[e.U]++
	}
	return &CSR{N: n, RowOffsets: offsets, Cols: cols}
}

// M returns the number of directed edges.
func (c *CSR) M() int64 { return int64(len(c.Cols)) }

// Neighbors returns the (shared, read-only) adjacency slice of u.
func (c *CSR) Neighbors(u int64) []int64 {
	return c.Cols[c.RowOffsets[u]:c.RowOffsets[u+1]]
}

// OutDegree returns the out-degree of u.
func (c *CSR) OutDegree(u int64) int64 {
	return c.RowOffsets[u+1] - c.RowOffsets[u]
}

// ByteSize returns the storage cost of plain CSR without degree separation:
// 8 bytes per row offset and 8 per column index — the 8n+8m baseline of
// Table I.
func (c *CSR) ByteSize() int64 {
	return int64(len(c.RowOffsets))*8 + int64(len(c.Cols))*8
}

// SortRows orders every adjacency list ascending; useful for deterministic
// comparisons in tests.
func (c *CSR) SortRows() {
	for u := int64(0); u < c.N; u++ {
		row := c.Cols[c.RowOffsets[u]:c.RowOffsets[u+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
}

// DegreeStats summarizes an out-degree distribution.
type DegreeStats struct {
	Min, Max int64
	Mean     float64
	Zero     int64 // number of zero-out-degree vertices
}

// Stats computes degree statistics from a degree array.
func Stats(deg []int64) DegreeStats {
	if len(deg) == 0 {
		return DegreeStats{}
	}
	s := DegreeStats{Min: deg[0], Max: deg[0]}
	var sum int64
	for _, d := range deg {
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
		if d == 0 {
			s.Zero++
		}
		sum += d
	}
	s.Mean = float64(sum) / float64(len(deg))
	return s
}
