package faults

import (
	"bytes"
	"errors"
	"testing"
)

func TestPayloadDeterministicReplay(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	a := New(42, KindCorrupt, 1)
	b := New(42, KindCorrupt, 1)
	ma := a.Payload(3, 7, SiteExchange, data)
	mb := b.Payload(3, 7, SiteExchange, data)
	if !bytes.Equal(ma, mb) {
		t.Fatalf("same (seed, decision) produced different mutations: %v vs %v", ma, mb)
	}
	if bytes.Equal(ma, data) {
		t.Fatal("rate-1 corrupt left the payload untouched")
	}
	if data[0] != 1 || data[7] != 8 {
		t.Fatal("injector mutated the sender-owned buffer")
	}
	if a.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", a.Injected())
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	data := make([]byte, 64)
	m := New(7, KindCorrupt, 1).Payload(0, 0, SiteExchange, data)
	diff := 0
	for i := range data {
		x := data[i] ^ m[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bits, want exactly 1", diff)
	}
}

func TestTruncateAndDrop(t *testing.T) {
	data := []byte{9, 9, 9, 9, 9, 9}
	tr := New(5, KindTruncate, 1).Payload(0, 0, SiteExchange, data)
	if len(tr) >= len(data) {
		t.Fatalf("truncate kept %d of %d bytes", len(tr), len(data))
	}
	dr := New(5, KindDrop, 1).Payload(0, 0, SiteExchange, data)
	if len(dr) != 0 {
		t.Fatalf("drop kept %d bytes", len(dr))
	}
}

func TestEmptyPayloadNeverCountsAsInjected(t *testing.T) {
	for _, k := range []Kind{KindCorrupt, KindTruncate, KindDrop} {
		in := New(1, k, 1)
		if out := in.Payload(0, 0, SiteExchange, nil); len(out) != 0 {
			t.Fatalf("%v: empty payload mutated", k)
		}
		if in.Injected() != 0 {
			t.Fatalf("%v: empty payload counted as an injection", k)
		}
	}
}

func TestNextAttemptRekeysDecisions(t *testing.T) {
	in := New(99, KindCorrupt, 0.5)
	pattern := func() []bool {
		var p []bool
		for rank := 0; rank < 8; rank++ {
			for iter := 0; iter < 8; iter++ {
				p = append(p, in.roll(rank, iter, SiteExchange))
			}
		}
		return p
	}
	before := pattern()
	replay := pattern()
	for i := range before {
		if before[i] != replay[i] {
			t.Fatal("same attempt replayed a different decision pattern")
		}
	}
	in.NextAttempt()
	after := pattern()
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("NextAttempt did not re-roll the decision pattern")
	}
}

func TestStallOnlyForStallKind(t *testing.T) {
	if s := New(3, KindCorrupt, 1).Stall(0, 0, SiteIter); s != 0 {
		t.Fatalf("corrupt injector stalled %g s", s)
	}
	in := New(3, KindStall, 1).WithStall(0.25)
	if s := in.Stall(0, 0, SiteIter); s != 0.25 {
		t.Fatalf("stall = %g s, want 0.25", s)
	}
	if in.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", in.Injected())
	}
}

func TestCrashPanicsWithTypedValue(t *testing.T) {
	in := New(11, KindCrash, 1)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("rate-1 crash did not panic")
		}
		err, ok := v.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("crash panic value %v not ErrInjected-typed", v)
		}
		c, ok := v.(Crash)
		if !ok || c.Rank != 2 || c.Iter != 5 || c.Site != SiteIter {
			t.Fatalf("crash coordinates %+v, want rank 2 iter 5 site %q", v, SiteIter)
		}
	}()
	in.Crash(2, 5, SiteIter)
}

func TestSiteFilter(t *testing.T) {
	in := New(17, KindCorrupt, 1).WithSites(SiteParents)
	data := []byte{1, 2, 3, 4}
	if out := in.Payload(0, 0, SiteExchange, data); !bytes.Equal(out, data) {
		t.Fatal("filtered site fired")
	}
	if out := in.Payload(0, 0, SiteParents, data); bytes.Equal(out, data) {
		t.Fatal("allowed site did not fire at rate 1")
	}
	in.WithSites()
	if out := in.Payload(0, 0, SiteExchange, data); bytes.Equal(out, data) {
		t.Fatal("cleared filter still suppressed firing")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	data := []byte{1}
	if out := in.Payload(0, 0, SiteExchange, data); &out[0] != &data[0] {
		t.Fatal("nil injector copied the payload")
	}
	if in.Stall(0, 0, SiteIter) != 0 || in.Injected() != 0 || in.ArmedKind() != KindNone {
		t.Fatal("nil injector not inert")
	}
	in.Crash(0, 0, SiteIter)
	in.NextAttempt()
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range append(Kinds(), KindNone) {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("meteor"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
