// Package faults provides deterministic, replayable fault injection for the
// simulated cluster. An Injector is armed with a seed, a fault kind and a
// rate; every decision point in the engine — a payload about to be sent, an
// iteration boundary, a hop — asks the injector whether to fire. Decisions
// are a pure function of (seed, attempt, kind, rank, iteration, site), so a
// given configuration injects exactly the same faults on every replay, and
// bumping the attempt counter (the retry path) re-rolls every decision
// without losing determinism.
//
// Fault kinds model the transient failures a production GPU cluster sees:
//
//	KindCorrupt   flip bits in an encoded payload after the CRC was computed
//	              — the receiver's checksum must catch it.
//	KindTruncate  cut the tail off a payload, exercising every truncation
//	              branch of the decoders.
//	KindDrop      deliver the message envelope with an empty payload (the
//	              in-process transport cannot lose an envelope without
//	              deadlocking the receiver, so a drop degenerates to the
//	              maximal truncation — which the decoder rejects the same
//	              way a real receive timeout would surface).
//	KindStall     charge a rank extra simulated seconds at an iteration
//	              boundary — no error, only timing skew.
//	KindCrash     panic the rank goroutine mid-iteration with a typed Crash
//	              value, exercising the containment and abort machinery.
//
// The injector mutates only copies of payloads — sender-owned buffers are
// never touched — and is safe for concurrent use by every rank goroutine.
package faults

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Kind identifies one fault class.
type Kind uint8

const (
	KindNone Kind = iota
	KindCorrupt
	KindTruncate
	KindDrop
	KindStall
	KindCrash

	// NumKinds bounds per-kind counters.
	NumKinds
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindCorrupt:
		return "corrupt"
	case KindTruncate:
		return "truncate"
	case KindDrop:
		return "drop"
	case KindStall:
		return "stall"
	case KindCrash:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind converts a CLI spelling into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "none":
		return KindNone, nil
	case "corrupt":
		return KindCorrupt, nil
	case "truncate":
		return KindTruncate, nil
	case "drop":
		return KindDrop, nil
	case "stall":
		return KindStall, nil
	case "crash":
		return KindCrash, nil
	}
	return KindNone, fmt.Errorf("faults: unknown fault kind %q", s)
}

// Kinds lists every injectable kind, in ablation sweep order.
func Kinds() []Kind {
	return []Kind{KindCorrupt, KindTruncate, KindDrop, KindStall, KindCrash}
}

// ErrInjected is the sentinel every injector-originated error wraps:
// errors.Is(err, ErrInjected) identifies a failure manufactured by the
// chaos machinery (as opposed to organic corruption, which wraps
// wire.ErrCorrupt only).
var ErrInjected = errors.New("injected fault")

// Crash is the typed panic value KindCrash throws inside a rank goroutine.
// It is an error wrapping ErrInjected, so the containment boundary that
// recovers it can propagate it like any other typed fault.
type Crash struct {
	Rank int
	Iter int
	Site string
}

func (c Crash) Error() string {
	return fmt.Sprintf("faults: injected crash at rank %d iteration %d site %q", c.Rank, c.Iter, c.Site)
}

// Unwrap makes errors.Is(c, ErrInjected) true.
func (c Crash) Unwrap() error { return ErrInjected }

// Sites named by the engine's decision points. Payload sites key on the
// message class the bytes belong to; boundary sites key on where in the BSP
// loop a stall or crash lands.
const (
	SiteExchange = "exchange" // inter-rank frontier payload (all-pairs or butterfly hop)
	SiteSweep    = "sweep"    // multi-source record payload
	SiteProbe    = "probe"    // repair probe payload
	SiteParents  = "parents"  // parent-resolution payload
	SiteIter     = "iter"     // BSP iteration boundary (stall/crash)
)

// Injector decides, deterministically, where faults fire. The zero Injector
// is not valid; construct with New. A nil *Injector is inert: every hook is
// a nil-check away from the fault-free fast path, so an unarmed engine pays
// one predictable branch per decision point.
type Injector struct {
	seed uint64
	kind Kind
	rate float64
	// stallSeconds is the simulated time one KindStall hit charges.
	stallSeconds float64
	// sites, when non-empty, restricts firing to the named decision sites —
	// targeted chaos for exercising one panic path at a time.
	sites map[string]bool

	// attempt re-keys every decision; the retry path bumps it so a retried
	// query sees an independent (but still deterministic) fault pattern.
	attempt atomic.Uint64

	injected atomic.Int64
}

// New returns an injector firing faults of the given kind at the given rate
// (probability per decision point, clamped to [0,1]), keyed by seed.
func New(seed uint64, kind Kind, rate float64) *Injector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Injector{seed: seed, kind: kind, rate: rate, stallSeconds: 1e-3}
}

// WithStall sets the simulated seconds one stall hit charges and returns the
// injector (builder style).
func (in *Injector) WithStall(seconds float64) *Injector {
	in.stallSeconds = seconds
	return in
}

// WithSites restricts the injector to the named decision sites (builder
// style). An empty call clears the filter, restoring fire-anywhere behavior.
func (in *Injector) WithSites(sites ...string) *Injector {
	if len(sites) == 0 {
		in.sites = nil
		return in
	}
	in.sites = make(map[string]bool, len(sites))
	for _, s := range sites {
		in.sites[s] = true
	}
	return in
}

// NextAttempt advances the attempt counter, re-rolling every subsequent
// decision. The retry loop calls it before each re-run so a retried query is
// not doomed to replay the exact faults that killed the previous attempt.
func (in *Injector) NextAttempt() {
	if in == nil {
		return
	}
	in.attempt.Add(1)
}

// Injected returns how many faults have fired so far.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	return in.injected.Load()
}

// Kind returns the armed fault kind (KindNone for a nil injector).
func (in *Injector) ArmedKind() Kind {
	if in == nil {
		return KindNone
	}
	return in.kind
}

// splitmix64 is the avalanche of the SplitMix64 generator — a cheap, strong
// bit mixer for decision hashing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// key hashes one decision point into a uniform uint64.
func (in *Injector) key(rank, iter int, site string) uint64 {
	h := splitmix64(in.seed ^ in.attempt.Load()*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(in.kind))
	h = splitmix64(h ^ uint64(rank)<<32 ^ uint64(uint32(iter)))
	for i := 0; i < len(site); i++ {
		h = splitmix64(h ^ uint64(site[i]))
	}
	return h
}

// roll reports whether the fault fires at this decision point.
func (in *Injector) roll(rank, iter int, site string) bool {
	if in == nil || in.rate == 0 || in.kind == KindNone {
		return false
	}
	if in.sites != nil && !in.sites[site] {
		return false
	}
	// Compare the top 53 bits against the rate as a dyadic fraction — exact
	// for rate 1.0, uniform for everything below.
	return float64(in.key(rank, iter, site)>>11)/float64(1<<53) < in.rate
}

// Payload applies the armed payload fault (corrupt, truncate, drop) to data
// when this decision point fires, returning a mutated copy; otherwise data is
// returned untouched. Boundary kinds (stall, crash) never fire here.
func (in *Injector) Payload(rank, iter int, site string, data []byte) []byte {
	if in == nil {
		return data
	}
	switch in.kind {
	case KindCorrupt, KindTruncate, KindDrop:
	default:
		return data
	}
	if !in.roll(rank, iter, site) {
		return data
	}
	// An already-empty payload cannot be mutated: return it untouched and do
	// NOT count an injection, so Injected() > 0 always means a real fault is
	// in flight (the chaos proof's detected-or-failed invariant relies on it).
	if len(data) == 0 {
		return data
	}
	in.injected.Add(1)
	k := in.key(rank, iter, site)
	switch in.kind {
	case KindCorrupt:
		c := append([]byte(nil), data...)
		// Flip one deterministic bit — the minimal corruption a CRC must
		// still catch.
		pos := int(splitmix64(k) % uint64(len(c)))
		c[pos] ^= 1 << (splitmix64(k+1) % 8)
		return c
	case KindTruncate:
		cut := int(splitmix64(k) % uint64(len(data)))
		return append([]byte(nil), data[:cut]...)
	case KindDrop:
		return []byte{}
	}
	return data
}

// Stall returns the simulated seconds to charge a rank at this boundary —
// zero unless the injector is armed with KindStall and the point fires.
func (in *Injector) Stall(rank, iter int, site string) float64 {
	if in == nil || in.kind != KindStall || !in.roll(rank, iter, site) {
		return 0
	}
	in.injected.Add(1)
	return in.stallSeconds
}

// Crash panics with a typed Crash value when the injector is armed with
// KindCrash and this boundary fires — a real panic on the calling rank
// goroutine, which the engine's containment boundary must recover.
func (in *Injector) Crash(rank, iter int, site string) {
	if in == nil || in.kind != KindCrash || !in.roll(rank, iter, site) {
		return
	}
	in.injected.Add(1)
	panic(Crash{Rank: rank, Iter: iter, Site: site})
}
