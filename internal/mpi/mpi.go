// Package mpi provides an in-process message-passing runtime with MPI-like
// semantics for the simulated cluster: a World of ranks (one goroutine
// each), non-blocking point-to-point sends with unbounded buffering
// (MPI_Isend/Irecv as used for the normal-vertex exchange, §V-B), and
// OR/SUM/MAX allreduce collectives (the delegate-mask reduction, §V-A).
//
// The package is purely functional — data really moves between rank heaps
// and collectives really fold — while *timing* is modeled separately by
// internal/simnet from the byte volumes this package counts.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// World is a fixed-size communicator. Create one per simulated job and hand
// each rank goroutine its Comm via Rank. Worlds are poolable: a World whose
// queries all ran to completion is empty again (every message received,
// every collective folded), so Reset plus reuse replaces per-query
// construction on the engine's hot path.
type World struct {
	size int
	// boxes and comms are flat arrays — one allocation each, with the
	// per-mailbox condition variables embedded — so constructing a World
	// costs O(1) allocations instead of O(ranks).
	boxes []mailbox
	comms []Comm
	coll  *collective

	bytesSent atomic.Int64
	msgsSent  atomic.Int64

	// hook, when set, intercepts every Isend payload (fault injection).
	hook SendHook

	// Abort poison: once aborted is set every blocked or future MPI call on
	// this World panics with a typed abort value carrying abortErr, so no
	// rank goroutine is ever stranded waiting on a peer that unwound.
	aborted  atomic.Bool
	abortMu  sync.Mutex
	abortErr error
}

// SendHook intercepts every point-to-point payload before delivery — the
// fault-injection seam. It receives the sender, destination, tag and encoded
// payload and returns the payload to deliver; implementations must mutate
// only copies (senders may reuse their buffers).
type SendHook func(src, dst, tag int, data []byte) []byte

// SetSendHook installs (nil clears) the send hook. Install before launching
// rank goroutines; the hook is read without synchronization on the send path.
func (w *World) SetSendHook(h SendHook) { w.hook = h }

// abortPanic is the typed panic value MPI calls throw on an aborted World.
type abortPanic struct{ err error }

// AbortError reports whether a recovered panic value came from an aborted
// World, returning the abort cause. Rank containment boundaries use it to
// tell a secondary unwind (a peer woken by Abort) from a genuine bug.
func AbortError(v any) (error, bool) {
	if ap, ok := v.(abortPanic); ok {
		return ap.err, true
	}
	return nil, false
}

// Abort poisons the World: the first call records err as the cause, and every
// rank currently blocked in Recv or a collective — plus every later MPI call
// — panics with a typed abort value. A rank goroutine that hit a fault calls
// Abort before unwinding so its peers never deadlock on messages or
// collective arrivals that will not come. An aborted World must be discarded
// (or Reset) before reuse.
func (w *World) Abort(err error) {
	if err == nil {
		err = errors.New("mpi: world aborted")
	}
	w.abortMu.Lock()
	if w.abortErr == nil {
		w.abortErr = err
	}
	w.abortMu.Unlock()
	w.aborted.Store(true)
	// Wake every waiter under its own lock so nobody sleeps through the
	// poison flag.
	for i := range w.boxes {
		mb := &w.boxes[i]
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	cl := w.coll
	cl.mu.Lock()
	cl.cond.Broadcast()
	cl.mu.Unlock()
}

// Aborted returns the abort cause, or nil if the World is healthy.
func (w *World) Aborted() error {
	if !w.aborted.Load() {
		return nil
	}
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.abortErr
}

// checkAbort panics with the typed abort value on a poisoned World — one
// predictable atomic load on the healthy path.
func (w *World) checkAbort() {
	if w.aborted.Load() {
		panic(abortPanic{w.Aborted()})
	}
}

// NewWorld creates a communicator with size ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	w := &World{size: size, boxes: make([]mailbox, size), comms: make([]Comm, size)}
	for i := range w.boxes {
		w.boxes[i].cond.L = &w.boxes[i].mu
	}
	for i := range w.comms {
		w.comms[i] = Comm{w: w, rank: i}
	}
	w.coll = newCollective(size)
	w.coll.w = w
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// BytesSent returns the total point-to-point payload bytes sent so far.
func (w *World) BytesSent() int64 { return w.bytesSent.Load() }

// MessagesSent returns the total point-to-point message count so far.
func (w *World) MessagesSent() int64 { return w.msgsSent.Load() }

// Rank returns the communicator handle for rank r.
func (w *World) Rank(r int) *Comm {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, w.size))
	}
	return &w.comms[r]
}

// Reset drops any queued messages and zeroes the traffic counters,
// returning the World to its freshly constructed state (mailbox and
// accumulator capacity retained). Callers pooling Worlds across queries
// call it before reuse; after a query that ran to completion it is a no-op
// apart from the counters, and after an abandoned (cancelled) query it
// discards the stragglers.
func (w *World) Reset() {
	for i := range w.boxes {
		mb := &w.boxes[i]
		mb.mu.Lock()
		clear(mb.queue)
		mb.queue = mb.queue[:0]
		mb.mu.Unlock()
	}
	w.bytesSent.Store(0)
	w.msgsSent.Store(0)
	// Clear abort poison and any half-folded collective state an aborted
	// query left behind (ranks that unwound never arrived).
	cl := w.coll
	cl.mu.Lock()
	cl.arrived = 0
	cl.acc = nil
	cl.mu.Unlock()
	w.abortMu.Lock()
	w.abortErr = nil
	w.abortMu.Unlock()
	w.aborted.Store(false)
}

// Comm is one rank's endpoint. The b1 scratch makes the single-flag
// allreduce boxing-free; a Comm is owned by exactly one rank goroutine.
type Comm struct {
	w    *World
	rank int
	b1   [1]uint64
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

type message struct {
	src, tag int
	data     []byte
}

type mailbox struct {
	mu    sync.Mutex
	cond  sync.Cond // L set to &mu at World construction
	queue []message
}

// Isend delivers data to dst's mailbox immediately (buffered semantics — it
// never blocks, so any send/recv ordering is deadlock-free, mirroring the
// paper's use of non-blocking MPI to keep the pipeline running). The data
// slice is retained by the receiver; callers must not mutate it afterwards.
func (c *Comm) Isend(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.w.size {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d", dst))
	}
	c.w.checkAbort()
	if c.w.hook != nil {
		data = c.w.hook(c.rank, dst, tag, data)
	}
	c.w.bytesSent.Add(int64(len(data)))
	c.w.msgsSent.Add(1)
	mb := &c.w.boxes[dst]
	mb.mu.Lock()
	mb.queue = append(mb.queue, message{src: c.rank, tag: tag, data: data})
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// Recv blocks until a message with the given source and tag arrives and
// returns its payload. Messages from the same (src, tag) are delivered in
// send order.
func (c *Comm) Recv(src, tag int) []byte {
	mb := &c.w.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		c.w.checkAbort()
		for i, m := range mb.queue {
			if m.src == src && m.tag == tag {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m.data
			}
		}
		mb.cond.Wait()
	}
}

// collective implements generation-counted fold-and-broadcast, reused for
// every allreduce flavor and for barriers.
type collective struct {
	mu      sync.Mutex
	cond    *sync.Cond
	w       *World
	size    int
	gen     uint64
	arrived int
	acc     any
	result  any
	// Reusable accumulators for the typed fast paths, double-buffered by
	// generation parity: generation g+2 (the first reuse of g's buffer)
	// cannot start until every rank finished g, because each rank copies
	// the result out under the lock before it can arrive for g+1.
	accI64 [2][]int64
	accU64 [2][]uint64
}

func newCollective(size int) *collective {
	cl := &collective{size: size}
	cl.cond = sync.NewCond(&cl.mu)
	return cl
}

// run folds contribution into the shared accumulator with combine (called
// under the lock) and returns the final accumulator once all ranks arrive.
// init clones the first contribution. The returned value is shared — callers
// copy out of it.
func (cl *collective) run(contrib any, init func(any) any, combine func(acc, in any)) any {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.w.checkAbort()
	gen := cl.gen
	if cl.arrived == 0 {
		cl.acc = init(contrib)
	} else {
		combine(cl.acc, contrib)
	}
	cl.arrived++
	if cl.arrived == cl.size {
		cl.result = cl.acc
		cl.acc = nil
		cl.arrived = 0
		cl.gen++
		cl.cond.Broadcast()
		return cl.result
	}
	for cl.gen == gen {
		cl.cond.Wait()
		cl.w.checkAbort()
	}
	return cl.result
}

// runI64 is the typed counterpart of run for the per-iteration int64
// collectives: no interface boxing, and the accumulator is a reusable
// generation-parity buffer, so the steady state allocates nothing. Each rank
// copies the result into its own vals under the lock before returning.
func (cl *collective) runI64(vals []int64, op func(acc, in []int64)) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.w.checkAbort()
	gen := cl.gen
	acc := &cl.accI64[gen%2]
	if cl.arrived == 0 {
		*acc = append((*acc)[:0], vals...)
	} else {
		if len(*acc) != len(vals) {
			panic(fmt.Sprintf("mpi: collective length mismatch %d vs %d", len(*acc), len(vals)))
		}
		op(*acc, vals)
	}
	cl.arrived++
	if cl.arrived == cl.size {
		cl.arrived = 0
		cl.gen++
		cl.cond.Broadcast()
		copy(vals, *acc)
		return
	}
	for cl.gen == gen {
		cl.cond.Wait()
		cl.w.checkAbort()
	}
	copy(vals, cl.accI64[gen%2])
}

// runU64 is runI64 for uint64 vectors (the delegate-mask OR reduction).
func (cl *collective) runU64(vals []uint64, op func(acc, in []uint64)) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.w.checkAbort()
	gen := cl.gen
	acc := &cl.accU64[gen%2]
	if cl.arrived == 0 {
		*acc = append((*acc)[:0], vals...)
	} else {
		if len(*acc) != len(vals) {
			panic(fmt.Sprintf("mpi: collective length mismatch %d vs %d", len(*acc), len(vals)))
		}
		op(*acc, vals)
	}
	cl.arrived++
	if cl.arrived == cl.size {
		cl.arrived = 0
		cl.gen++
		cl.cond.Broadcast()
		copy(vals, *acc)
		return
	}
	for cl.gen == gen {
		cl.cond.Wait()
		cl.w.checkAbort()
	}
	copy(vals, cl.accU64[gen%2])
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	c.w.coll.run(nil,
		func(any) any { return nil },
		func(any, any) {})
}

// AllreduceOr ORs the word slices of all ranks element-wise and stores the
// result in-place in every rank's slice. All ranks must pass equal lengths.
// This is the delegate-mask reduction primitive (§V-A).
func (c *Comm) AllreduceOr(words []uint64) {
	c.w.coll.runU64(words, func(a, b []uint64) {
		for i, w := range b {
			a[i] |= w
		}
	})
}

// AllreduceSum sums int64 slices element-wise across ranks, in-place.
func (c *Comm) AllreduceSum(vals []int64) {
	c.w.coll.runI64(vals, func(a, b []int64) {
		for i, w := range b {
			a[i] += w
		}
	})
}

// AllreduceMax takes the element-wise max of int64 slices across ranks.
func (c *Comm) AllreduceMax(vals []int64) {
	c.w.coll.runI64(vals, func(a, b []int64) {
		for i, w := range b {
			if w > a[i] {
				a[i] = w
			}
		}
	})
}

// AllreduceMin takes the element-wise min of int64 slices across ranks —
// the label-propagation primitive of connected components and the parent
// resolution of the BFS-tree output (smallest candidate parent wins,
// deterministically).
func (c *Comm) AllreduceMin(vals []int64) {
	c.w.coll.runI64(vals, func(a, b []int64) {
		for i, w := range b {
			if w < a[i] {
				a[i] = w
			}
		}
	})
}

// AllreduceSumFloat64 sums float64 slices element-wise across ranks — the
// delegate-state reduction for rank-valued algorithms like PageRank, where
// delegates carry scores instead of one visited bit (§VI-D's
// generalization). Floating-point addition is not associative, so the fold
// happens in rank order regardless of arrival order — results are
// bit-reproducible across runs.
func (c *Comm) AllreduceSumFloat64(vals []float64) {
	type contrib struct {
		rank int
		vals []float64
	}
	mine := contrib{rank: c.rank, vals: append([]float64(nil), vals...)}
	res := c.w.coll.run(mine,
		func(in any) any {
			all := make([][]float64, c.w.size)
			first := in.(contrib)
			all[first.rank] = first.vals
			return all
		},
		func(acc, in any) {
			all := acc.([][]float64)
			cb := in.(contrib)
			if all[cb.rank] != nil {
				panic(fmt.Sprintf("mpi: duplicate contribution from rank %d", cb.rank))
			}
			all[cb.rank] = cb.vals
		}).([][]float64)
	for i := range vals {
		vals[i] = 0
	}
	for r := 0; r < c.w.size; r++ {
		row := res[r]
		if len(row) != len(vals) {
			panic(fmt.Sprintf("mpi: AllreduceSumFloat64 length mismatch %d vs %d", len(row), len(vals)))
		}
		for i, w := range row {
			vals[i] += w
		}
	}
}

// AllreduceBoolOr returns the logical OR of every rank's flag — the global
// "anyone still has work?" termination test. It rides the typed u64 path
// through the Comm's one-word scratch, so the per-iteration termination
// vote never boxes.
func (c *Comm) AllreduceBoolOr(flag bool) bool {
	c.b1[0] = 0
	if flag {
		c.b1[0] = 1
	}
	c.w.coll.runU64(c.b1[:], func(a, b []uint64) { a[0] |= b[0] })
	return c.b1[0] != 0
}

// Request is a handle for a non-blocking allreduce started with
// IallreduceOr; Wait blocks until completion. Functionally the reduction
// completes eagerly on a helper goroutine — the blocking/non-blocking
// distinction matters only to the timing model (§VI-B's BR vs IR options).
type Request struct {
	done chan struct{}
	err  error
}

// Wait blocks until the operation completes. If the World was aborted while
// the reduction was in flight, Wait re-throws the typed abort panic on the
// caller's goroutine — the rank's containment boundary, not the helper
// goroutine, owns the unwind.
func (r *Request) Wait() {
	<-r.done
	if r.err != nil {
		panic(abortPanic{r.err})
	}
}

// IallreduceOr starts a non-blocking OR-allreduce on words; the slice is
// updated in place by the time Wait returns.
func (c *Comm) IallreduceOr(words []uint64) *Request {
	req := &Request{done: make(chan struct{})}
	go func() {
		defer close(req.done)
		defer func() {
			if v := recover(); v != nil {
				if err, ok := AbortError(v); ok {
					req.err = err
					return
				}
				panic(v)
			}
		}()
		c.AllreduceOr(words)
	}()
	return req
}
