package mpi

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// spawn runs fn on every rank of a fresh world and waits for completion.
func spawn(t *testing.T, size int, fn func(c *Comm)) *World {
	t.Helper()
	w := NewWorld(size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(w.Rank(r))
		}(r)
	}
	wg.Wait()
	return w
}

func TestWorldBasics(t *testing.T) {
	w := NewWorld(4)
	if w.Size() != 4 {
		t.Fatalf("Size = %d", w.Size())
	}
	if w.Rank(2).Rank() != 2 || w.Rank(2).Size() != 4 {
		t.Fatal("Comm identity wrong")
	}
}

func TestInvalidWorldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestInvalidRankPanics(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Rank(5) did not panic")
		}
	}()
	w.Rank(5)
}

func TestSendRecvPair(t *testing.T) {
	spawn(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 7, []byte("hello"))
		} else {
			got := c.Recv(0, 7)
			if string(got) != "hello" {
				t.Errorf("got %q", got)
			}
		}
	})
}

func TestRecvFiltersBySourceAndTag(t *testing.T) {
	spawn(t, 3, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Isend(2, 1, []byte("from0tag1"))
		case 1:
			c.Isend(2, 2, []byte("from1tag2"))
			c.Isend(2, 1, []byte("from1tag1"))
		case 2:
			if got := string(c.Recv(1, 2)); got != "from1tag2" {
				t.Errorf("recv(1,2) = %q", got)
			}
			if got := string(c.Recv(0, 1)); got != "from0tag1" {
				t.Errorf("recv(0,1) = %q", got)
			}
			if got := string(c.Recv(1, 1)); got != "from1tag1" {
				t.Errorf("recv(1,1) = %q", got)
			}
		}
	})
}

func TestMessageOrderPreservedPerPair(t *testing.T) {
	const n = 100
	spawn(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Isend(1, 0, []byte{byte(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				if got := c.Recv(0, 0); got[0] != byte(i) {
					t.Errorf("message %d out of order: %d", i, got[0])
					return
				}
			}
		}
	})
}

func TestByteAccounting(t *testing.T) {
	w := spawn(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 0, make([]byte, 123))
			c.Isend(1, 0, make([]byte, 77))
		} else {
			c.Recv(0, 0)
			c.Recv(0, 0)
		}
	})
	if w.BytesSent() != 200 {
		t.Fatalf("BytesSent = %d, want 200", w.BytesSent())
	}
	if w.MessagesSent() != 2 {
		t.Fatalf("MessagesSent = %d", w.MessagesSent())
	}
}

func TestBarrier(t *testing.T) {
	const size = 8
	var before, after atomic64
	spawn(t, size, func(c *Comm) {
		before.add(1)
		c.Barrier()
		// Every rank must have passed `before` by now.
		if before.load() != size {
			t.Errorf("rank %d passed barrier with before=%d", c.Rank(), before.load())
		}
		after.add(1)
	})
	if after.load() != size {
		t.Fatalf("after = %d", after.load())
	}
}

type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

func TestAllreduceOr(t *testing.T) {
	const size = 4
	spawn(t, size, func(c *Comm) {
		words := []uint64{0, 0}
		words[0] = 1 << uint(c.Rank())
		words[1] = 1 << uint(10+c.Rank())
		c.AllreduceOr(words)
		if words[0] != 0b1111 {
			t.Errorf("rank %d: words[0] = %b", c.Rank(), words[0])
		}
		if words[1] != 0b1111<<10 {
			t.Errorf("rank %d: words[1] = %b", c.Rank(), words[1])
		}
	})
}

func TestAllreduceSumAndMax(t *testing.T) {
	const size = 5
	spawn(t, size, func(c *Comm) {
		sums := []int64{int64(c.Rank()), 1}
		c.AllreduceSum(sums)
		if sums[0] != 0+1+2+3+4 || sums[1] != size {
			t.Errorf("rank %d: sums = %v", c.Rank(), sums)
		}
		maxs := []int64{int64(c.Rank() * 10)}
		c.AllreduceMax(maxs)
		if maxs[0] != 40 {
			t.Errorf("rank %d: max = %d", c.Rank(), maxs[0])
		}
	})
}

func TestAllreduceMin(t *testing.T) {
	const size = 4
	spawn(t, size, func(c *Comm) {
		vals := []int64{int64(10 + c.Rank()), int64(-c.Rank())}
		c.AllreduceMin(vals)
		if vals[0] != 10 || vals[1] != -3 {
			t.Errorf("rank %d: min = %v", c.Rank(), vals)
		}
	})
}

func TestAllreduceSumFloat64(t *testing.T) {
	const size = 3
	spawn(t, size, func(c *Comm) {
		vals := []float64{float64(c.Rank()) + 0.5, 1.0}
		c.AllreduceSumFloat64(vals)
		if vals[0] != 0.5+1.5+2.5 || vals[1] != 3.0 {
			t.Errorf("rank %d: sum = %v", c.Rank(), vals)
		}
	})
}

func TestAllreduceBoolOr(t *testing.T) {
	spawn(t, 4, func(c *Comm) {
		if got := c.AllreduceBoolOr(c.Rank() == 2); !got {
			t.Errorf("rank %d: OR = false", c.Rank())
		}
	})
	spawn(t, 4, func(c *Comm) {
		if got := c.AllreduceBoolOr(false); got {
			t.Errorf("rank %d: OR = true with all false", c.Rank())
		}
	})
}

func TestRepeatedCollectives(t *testing.T) {
	// Generations must not bleed into each other across iterations.
	const size, iters = 4, 50
	spawn(t, size, func(c *Comm) {
		for i := 0; i < iters; i++ {
			v := []int64{int64(i)}
			c.AllreduceMax(v)
			if v[0] != int64(i) {
				t.Errorf("iter %d: max = %d", i, v[0])
				return
			}
			c.Barrier()
		}
	})
}

func TestIallreduceOr(t *testing.T) {
	spawn(t, 3, func(c *Comm) {
		words := []uint64{1 << uint(c.Rank())}
		req := c.IallreduceOr(words)
		req.Wait()
		if words[0] != 0b111 {
			t.Errorf("rank %d: %b", c.Rank(), words[0])
		}
	})
}

// Property: OR-allreduce equals the serial fold for random contributions.
func TestQuickAllreduceOrEqualsFold(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		size := int(sizeRaw%6) + 1
		rng := rand.New(rand.NewSource(seed))
		const words = 8
		contribs := make([][]uint64, size)
		want := make([]uint64, words)
		for r := range contribs {
			contribs[r] = make([]uint64, words)
			for i := range contribs[r] {
				contribs[r][i] = rng.Uint64()
				want[i] |= contribs[r][i]
			}
		}
		w := NewWorld(size)
		var wg sync.WaitGroup
		ok := true
		var mu sync.Mutex
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				local := make([]uint64, words)
				copy(local, contribs[r])
				w.Rank(r).AllreduceOr(local)
				mu.Lock()
				for i := range local {
					if local[i] != want[i] {
						ok = false
					}
				}
				mu.Unlock()
			}(r)
		}
		wg.Wait()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllPattern(t *testing.T) {
	// The normal-vertex exchange pattern: every rank sends a distinct
	// payload to every other rank, then receives from all.
	const size = 5
	spawn(t, size, func(c *Comm) {
		for dst := 0; dst < size; dst++ {
			if dst == c.Rank() {
				continue
			}
			c.Isend(dst, 9, []byte{byte(c.Rank()), byte(dst)})
		}
		for src := 0; src < size; src++ {
			if src == c.Rank() {
				continue
			}
			got := c.Recv(src, 9)
			if got[0] != byte(src) || got[1] != byte(c.Rank()) {
				t.Errorf("rank %d: bad payload from %d: %v", c.Rank(), src, got)
			}
		}
	})
}
