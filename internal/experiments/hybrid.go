package experiments

import (
	"fmt"

	"gcbfs/internal/core"
	"gcbfs/internal/metrics"
)

// Cmp3Hybrid ablates the per-iteration exchange policy (internal/core/
// policy.go): fixed all-pairs vs fixed butterfly vs the volume-driven
// hybrid, across rank counts — power-of-two and odd, now that the
// generalized butterfly handles any p — and scales. Work amplification
// lifts the runs into an effective scale ≥ 18 regime where mid-BFS
// iterations are bandwidth-bound (all-pairs territory) while the long
// latency-bound head and tail favor the butterfly, so the hybrid's
// per-iteration switching has both regimes to win in. The runner asserts
// two properties on every cell: levels bit-identical across all three
// policies, and hybrid elapsed time no worse than the best fixed policy
// (within a small tolerance for the cost model's volume estimator).
func Cmp3Hybrid(p Params) (*Table, error) {
	scales := []int{12, 14}
	rankCounts := []int{4, 5, 12}
	if p.Quick {
		scales = []int{11}
		rankCounts = []int{4, 5}
	}
	t := &Table{
		ID:    "cmp3",
		Title: "exchange-policy ablation: fixed all-pairs vs fixed butterfly vs per-iteration hybrid",
		Paper: "beyond the paper — §IV-B's per-iteration switching idea applied to the exchange topology",
		Headers: []string{"scale", "ranks", "policy", "iters ap/bf", "msg/rank/iter",
			"predicted ms", "remote-normal ms", "elapsed ms"},
		Notes: []string{
			"levels asserted bit-identical across all three policies on every cell",
			"hybrid asserted ≤ 1.05× the best fixed policy's elapsed time on every cell",
			"iters ap/bf: BFS iterations run under each strategy — fixed policies sit on one side, hybrid splits by the volume-driven cost model",
			"predicted ms is the policy cost model's remote-normal estimate; compare to the measured remote-normal column (which also includes codec compute)",
			"odd rank counts (5) exercise the generalized butterfly's pre/post cleanup hops — there is no all-pairs fallback anymore",
		},
	}

	policies := []core.Exchange{core.ExchangeAllPairs, core.ExchangeButterfly, core.ExchangeHybrid}
	for _, scale := range scales {
		el := rmatGraph(scale)
		amp := ampFor(18, scale)
		// Tight delegate cap so the normal exchange — the traffic under
		// ablation — carries volume (as in cmp2).
		th := suggestTH(el, 32)
		sources := pickSources(el.OutDegrees(), p.sources(), p.seed())
		for _, ranks := range rankCounts {
			shape := core.ClusterShape{Nodes: ranks, RanksPerNode: 1, GPUsPerRank: 2}
			var refLevels [][]int32
			elapsedBy := map[core.Exchange]float64{}
			for _, policy := range policies {
				opts := core.DefaultOptions()
				opts.Exchange = policy
				opts.WorkAmplification = amp
				opts.CollectLevels = true
				e, _, err := buildPlan(el, shape, th, opts)
				if err != nil {
					return nil, err
				}
				results, err := runAll(e, sources)
				if err != nil {
					return nil, err
				}
				if policy == core.ExchangeAllPairs {
					for _, r := range results {
						refLevels = append(refLevels, r.Levels)
					}
				} else {
					for i, r := range results {
						for v := range r.Levels {
							if r.Levels[v] != refLevels[i][v] {
								return nil, fmt.Errorf(
									"cmp3: scale=%d ranks=%d policy=%s: vertex %d level %d vs %d (allpairs)",
									scale, ranks, policy, v, r.Levels[v], refLevels[i][v])
							}
						}
					}
				}
				var xs metrics.ExchangeStats
				var iters int64
				var remoteNormal, elapsed float64
				for _, r := range results {
					xs.Accumulate(r.Exchange)
					iters += int64(r.Iterations)
					remoteNormal += r.Parts.RemoteNormal
					elapsed += r.SimSeconds
				}
				n := float64(len(results))
				elapsedBy[policy] = elapsed
				t.Rows = append(t.Rows, []string{
					i64(int64(scale)), i64(int64(ranks)), xs.Strategy,
					fmt.Sprintf("%d/%d", xs.AllPairsIterations, xs.ButterflyIterations),
					f1(float64(xs.Messages) / float64(iters*int64(ranks))),
					ms(xs.PredictedSeconds / n), ms(remoteNormal / n), ms(elapsed / n),
				})
			}
			best := elapsedBy[core.ExchangeAllPairs]
			if b := elapsedBy[core.ExchangeButterfly]; b < best {
				best = b
			}
			if hy := elapsedBy[core.ExchangeHybrid]; hy > best*1.05 {
				return nil, fmt.Errorf(
					"cmp3: scale=%d ranks=%d: hybrid elapsed %.3f ms above best fixed %.3f ms (+%.1f%%)",
					scale, ranks, hy*1e3, best*1e3, 100*(hy/best-1))
			}
		}
	}
	return t, nil
}
