package experiments

import (
	"fmt"

	"gcbfs/internal/core"
	"gcbfs/internal/graph"
	"gcbfs/internal/metrics"
	"gcbfs/internal/wire"
)

// Cmp2Exchange ablates the exchange topology (internal/core/exchange.go):
// all-pairs vs butterfly across rank counts and compression modes, on the
// skewed Graph500 R-MAT graph and a uniform random graph. Work amplification
// lifts the run into an effective scale ≥ 18 regime, where the all-pairs
// per-message size sits deep in the sub-2 MB efficiency plateau while the
// butterfly's aggregated hops climb toward the 4 MB optimum. Levels are
// asserted identical across strategies on every run — the topologies differ
// only in message pattern and simulated time.
func Cmp2Exchange(p Params) (*Table, error) {
	scale := p.pick(14, 11)
	amp := ampFor(18, scale)
	rankCounts := []int{4, 8, 16, 32}
	if p.Quick {
		rankCounts = []int{4, 32}
	}
	t := &Table{
		ID:    "cmp2",
		Title: fmt.Sprintf("exchange-topology ablation, scale %d (amplified to 18), 1×2 GPUs per rank", scale),
		Paper: "beyond the paper — ButterFly BFS (Green 2021) log(p)-hop exchange vs §V-B all-pairs",
		Headers: []string{"graph", "ranks", "mode", "exchange", "msg/rank/iter",
			"wire kB", "fwd kB", "max msg MB", "remote-normal ms", "codec µs", "elapsed ms"},
		Notes: []string{
			"levels asserted bit-identical between strategies on every run",
			"msg/rank/iter: all-pairs sends p−1, the butterfly log2(p) aggregated hop messages",
			"fwd kB is the fixed-width equivalent of ids relayed through intermediate ranks — the butterfly's price for fewer, larger messages",
			"max msg MB is the largest message the timing model saw (amplification applied), i.e. where the exchange lands on the §VI-A1 efficiency curve",
			"codec µs is the pack/unpack compute charged at simgpu CodecRate, included in remote-normal ms — the butterfly re-encodes per hop, so its codec work exceeds all-pairs'",
		},
	}

	graphs := []struct {
		name string
		el   *graph.EdgeList
	}{
		{"rmat", rmatGraph(scale)},
		{"uniform", uniformGraph(scale)},
	}
	modes := []struct {
		name string
		mode wire.Mode
	}{
		{"off", wire.ModeOff},
		{"adaptive", wire.ModeAdaptive},
	}
	strategies := []core.Exchange{core.ExchangeAllPairs, core.ExchangeButterfly}

	for _, g := range graphs {
		// suggestTH caps d at 4n/p; passing p=32 tightens the cap to n/8 so
		// the normal exchange — the traffic under ablation — carries volume.
		th := suggestTH(g.el, 32)
		sources := pickSources(g.el.OutDegrees(), p.sources(), p.seed())
		for _, ranks := range rankCounts {
			shape := core.ClusterShape{Nodes: ranks, RanksPerNode: 1, GPUsPerRank: 2}
			for _, m := range modes {
				var refLevels [][]int32
				for _, strat := range strategies {
					opts := core.DefaultOptions()
					opts.Compression = m.mode
					opts.Exchange = strat
					opts.WorkAmplification = amp
					opts.CollectLevels = true
					e, _, err := buildPlan(g.el, shape, th, opts)
					if err != nil {
						return nil, err
					}
					results, err := runAll(e, sources)
					if err != nil {
						return nil, err
					}
					if strat == core.ExchangeAllPairs {
						for _, r := range results {
							refLevels = append(refLevels, r.Levels)
						}
					} else {
						for i, r := range results {
							for v := range r.Levels {
								if r.Levels[v] != refLevels[i][v] {
									return nil, fmt.Errorf(
										"cmp2: %s ranks=%d mode=%s: vertex %d level %d (butterfly) vs %d (allpairs)",
										g.name, ranks, m.name, v, r.Levels[v], refLevels[i][v])
								}
							}
						}
					}
					var xs metrics.ExchangeStats
					var w metrics.WireStats
					var iters int64
					var remoteNormal, elapsed float64
					for _, r := range results {
						xs.Accumulate(r.Exchange)
						w.Accumulate(r.Wire)
						iters += int64(r.Iterations)
						remoteNormal += r.Parts.RemoteNormal
						elapsed += r.SimSeconds
					}
					n := float64(len(results))
					msgPerRankIter := float64(xs.Messages) / float64(iters*int64(ranks))
					t.Rows = append(t.Rows, []string{
						g.name, i64(int64(ranks)), m.name, xs.Strategy,
						f1(msgPerRankIter),
						f1(float64(w.CompressedBytes) / 1024),
						f1(float64(xs.ForwardedBytes) / 1024),
						f2(float64(xs.MaxMessageBytes) / (1 << 20)),
						ms(remoteNormal / n), us(w.CodecSeconds / n), ms(elapsed / n),
					})
				}
			}
		}
	}
	return t, nil
}
