package experiments

import (
	"fmt"

	"gcbfs/internal/concomp"
	"gcbfs/internal/core"
	"gcbfs/internal/pagerank"
	"gcbfs/internal/partition"
)

// Abl2LoadBalance ablates the §IV-A load-balancing choice: the dd subgraph
// "covers a wide range of degree distribution, and has large average
// out-degrees", which is why it gets merge-based workload partitioning;
// forcing TWB dynamic mapping onto it must cost computation time via the
// skew penalty, without changing results.
func Abl2LoadBalance(p Params) (*Table, error) {
	scale := p.pick(15, 12)
	el := rmatGraph(scale)
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2}
	amp := ampFor(26, scale-2)
	th := suggestTH(el, shape.P())
	sources := pickSources(el.OutDegrees(), p.sources(), p.seed())
	t := &Table{
		ID:      "abl2",
		Title:   fmt.Sprintf("dd-kernel load-balance ablation, RMAT scale %d, %s, TH=%d", scale, shape, th),
		Paper:   "§IV-A — merge-path for dd (wide degree range); TWB for nd/dn/nn (bounded, low degrees)",
		Headers: []string{"dd strategy", "mode", "comp ms", "elapsed ms"},
		Notes: []string{
			"forcing TWB onto the skewed dd subgraph pays the imbalance penalty the design avoids",
		},
	}
	for _, forced := range []bool{false, true} {
		name := "merge-path (paper)"
		if forced {
			name = "twb-dynamic (forced)"
		}
		for _, do := range []bool{true, false} {
			opts := core.DefaultOptions()
			opts.DirectionOptimized = do
			opts.ForceTWBForDD = forced
			opts.WorkAmplification = amp
			opts.CollectLevels = false
			e, _, err := buildPlan(el, shape, th, opts)
			if err != nil {
				return nil, err
			}
			agg, err := measure(e, sources)
			if err != nil {
				return nil, err
			}
			mode := "BFS"
			if do {
				mode = "DOBFS"
			}
			t.Rows = append(t.Rows, []string{name, mode, ms(agg.Parts.Computation), f2(agg.MeanMS)})
		}
	}
	return t, nil
}

// App1BeyondBFS reproduces the §VI-D discussion quantitatively: PageRank and
// connected components on the same degree-separated substrate, compared to
// DOBFS on computation workload and communication volume. The paper's
// argument — local computation is O(m) per iteration (≫ DOBFS) and delegate
// state is 64 bits instead of 1, but compute and communication grow in
// roughly the same proportion, so the model still scales.
func App1BeyondBFS(p Params) (*Table, error) {
	scale := p.pick(14, 11)
	el := rmatGraph(scale)
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}
	amp := ampFor(26, scale-3)
	th := suggestTH(el, shape.P())
	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "app1",
		Title:   fmt.Sprintf("beyond BFS on the delegate substrate, RMAT scale %d, %s, TH=%d", scale, shape, th),
		Paper:   "§VI-D — general algorithms: more compute (O(m)/iter), more state (64-bit vs 1-bit delegates)",
		Headers: []string{"algorithm", "iterations", "comp ms", "normal kB", "delegate kB", "elapsed ms"},
	}

	// DOBFS reference point.
	src := pickSources(el.OutDegrees(), 1, p.seed())[0]
	bopts := core.DefaultOptions()
	bopts.WorkAmplification = amp
	bopts.CollectLevels = false
	be, err := core.NewPlan(sg, shape, bopts)
	if err != nil {
		return nil, err
	}
	bres, err := runOne(be, src)
	if err != nil {
		return nil, err
	}
	var bfsNormal, bfsDelegate int64
	for _, it := range bres.PerIteration {
		bfsNormal += it.BytesNormal
		bfsDelegate += it.BytesDelegate
	}
	t.Rows = append(t.Rows, []string{
		"DOBFS", i64(int64(bres.Iterations)), ms(bres.Parts.Computation),
		f1(float64(bfsNormal) / 1024), f1(float64(bfsDelegate) / 1024),
		ms(bres.SimSeconds),
	})

	// PageRank.
	popts := pagerank.DefaultOptions()
	popts.MaxIterations = p.pick(20, 10)
	popts.WorkAmplification = amp
	pres, err := pagerank.Run(sg, shape, popts)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"PageRank", i64(int64(pres.Iterations)), ms(pres.Parts.Computation),
		f1(float64(pres.BytesNormal) / 1024), f1(float64(pres.BytesDelegate) / 1024),
		ms(pres.SimSeconds),
	})

	// Connected components.
	copts := concomp.DefaultOptions()
	copts.WorkAmplification = amp
	cres, err := concomp.Run(sg, shape, copts)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"ConnComp", i64(int64(cres.Iterations)), ms(cres.Parts.Computation),
		f1(float64(cres.BytesNormal) / 1024), f1(float64(cres.BytesDelegate) / 1024),
		ms(cres.SimSeconds),
	})
	t.Notes = append(t.Notes,
		"per-delegate reduction payload: BFS 1 bit, PageRank/ConnComp 64 bits (§VI-D)",
	)
	return t, nil
}
