package experiments

import (
	"fmt"

	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/partition"
)

// distRow computes the Fig 5/12 quantities for one threshold: shares of dd,
// dn/nd, nn edges and the delegate share of vertices.
func distRow(el *graph.EdgeList, sep *partition.Separation) (ddShare, dnndShare, nnShare, delShare float64) {
	var dd, dnnd, nn int64
	for _, e := range el.Edges {
		uDel, vDel := sep.IsDelegate(e.U), sep.IsDelegate(e.V)
		switch {
		case uDel && vDel:
			dd++
		case uDel || vDel:
			dnnd++
		default:
			nn++
		}
	}
	m := float64(el.M())
	return float64(dd) / m, float64(dnnd) / m, float64(nn) / m,
		float64(sep.D()) / float64(el.N)
}

// Fig5Distribution reproduces Fig. 5: the distribution of edge kinds and
// delegates as a function of degree threshold on an RMAT graph (paper:
// scale 30; local: scale 16/12). Expected shape: dd falls and nn rises as TH
// grows, with a wide middle band where delegates are few and nn is small.
func Fig5Distribution(p Params) (*Table, error) {
	scale := p.pick(16, 12)
	el := rmatGraph(scale)
	t := &Table{
		ID:      "fig5",
		Title:   fmt.Sprintf("edge/delegate distribution vs degree threshold (RMAT scale %d)", scale),
		Paper:   "Fig. 5 — scale-30 RMAT; TH∈[16,512] keeps delegates ~few % and nn <10%",
		Headers: []string{"TH", "dd edges", "dn/nd edges", "nn edges", "delegates"},
		Notes: []string{
			fmt.Sprintf("paper scale 30 → local scale %d; thresholds sweep the same 1..max-degree range", scale),
		},
	}
	for th := int64(1); ; th *= 4 {
		sep := partition.Separate(el, th)
		dd, dnnd, nn, del := distRow(el, sep)
		t.Rows = append(t.Rows, []string{i64(th), pct(dd), pct(dnnd), pct(nn), pct(del)})
		if sep.D() == 0 {
			break
		}
	}
	return t, nil
}

// Fig7SuggestedTH reproduces Fig. 7: suggested degree thresholds for a range
// of scales under weak scaling (scale-26 per GPU in the paper, scale-12 per
// GPU locally), with the resulting delegate and nn-edge percentages and the
// 4n/p guidance line.
func Fig7SuggestedTH(p Params) (*Table, error) {
	perGPU := 12
	maxScale := p.pick(17, 14)
	t := &Table{
		ID:      "fig7",
		Title:   fmt.Sprintf("suggested thresholds, scale-%d RMAT per GPU", perGPU),
		Paper:   "Fig. 7 — optimal TH grows ≈√2 per scale; delegates stay under the 4n/p line; nn grows slowly",
		Headers: []string{"scale", "GPUs", "TH", "delegates", "nn edges", "4n/p line"},
		Notes: []string{
			"paper scales 25–33 with scale-26 per GPU → local scales with scale-12 per GPU",
		},
	}
	for scale := perGPU; scale <= maxScale; scale++ {
		gpus := 1 << uint(scale-perGPU)
		el := rmatGraph(scale)
		th := suggestTH(el, gpus)
		sep := partition.Separate(el, th)
		_, _, nnShare, delShare := distRow(el, sep)
		line := 4.0 / float64(gpus)
		if line > 1 {
			line = 1
		}
		t.Rows = append(t.Rows, []string{
			i64(int64(scale)), i64(int64(gpus)), i64(th), pct(delShare), pct(nnShare), pct(line),
		})
	}
	return t, nil
}

// Fig12FriendsterDist reproduces Fig. 12 on the synthetic Friendster
// stand-in: edge/delegate distribution vs threshold.
func Fig12FriendsterDist(p Params) (*Table, error) {
	scale := p.pick(14, 11)
	el := gen.SocialNetwork(gen.DefaultSocialParams(scale))
	t := &Table{
		ID:      "fig12",
		Title:   fmt.Sprintf("friendster-like edge/delegate distribution (core scale %d)", scale),
		Paper:   "Fig. 12 — friendster; a wide suitable-TH range like RMAT",
		Headers: []string{"TH", "dd edges", "dn/nd edges", "nn edges", "delegates"},
		Notes: []string{
			"Friendster (66M vertices, 5.17B edges after prep) → synthetic social graph (substitution per DESIGN.md)",
		},
	}
	for _, th := range []int64{2, 4, 8, 16, 32, 64, 128, 256} {
		sep := partition.Separate(el, th)
		dd, dnnd, nn, del := distRow(el, sep)
		t.Rows = append(t.Rows, []string{i64(th), pct(dd), pct(dnnd), pct(nn), pct(del)})
	}
	return t, nil
}

// Mem1Capacity reproduces the §VI-C capacity claim: "Because of our
// efficient graph representation, we can fit the 34 billion edge [scale-30]
// graph onto 12 GPUs, at about 2.9 billion edges per GPU" — while neither a
// conventional edge list nor undistributed CSR fits 16 GB P100s at that
// density. Delegate and nn fractions are measured on a local instance at the
// suggested threshold and plugged into the byte-exact Table-I formula.
func Mem1Capacity(p Params) (*Table, error) {
	localScale := p.pick(16, 13)
	el := rmatGraph(localScale)
	gpuMem := float64(15 << 30) // 16 GB minus working-set headroom
	t := &Table{
		ID:      "mem1",
		Title:   "device-memory capacity per representation (Table I formula, measured fractions)",
		Paper:   "§VI-C — scale-30 (34.4B directed edges) fits on 12 P100s with degree separation",
		Headers: []string{"scale", "GPUs", "sep bytes/GPU", "CSR bytes/GPU", "edge-list bytes/GPU", "fits (sep/csr/el)"},
	}
	for _, cfg := range []struct {
		scale, gpus int
	}{{28, 4}, {30, 12}, {30, 8}, {32, 48}, {33, 124}} {
		n := float64(int64(1) << uint(cfg.scale))
		m := n * 32 // doubled edges
		pp := float64(cfg.gpus)
		// Measure the fractions at the local stand-in scale with the
		// threshold rule the target configuration would use.
		th := suggestTH(el, cfg.gpus)
		sep := partition.Separate(el, th)
		_, _, nnShare, delShare := distRow(el, sep)
		sepBytes := (8*n + 8*(delShare*n)*pp + 4*m + 4*nnShare*m) / pp
		csrBytes := (8*n + 8*m) / pp
		elBytes := 16 * m / pp
		t.Rows = append(t.Rows, []string{
			i64(int64(cfg.scale)), i64(int64(cfg.gpus)),
			gb(sepBytes), gb(csrBytes), gb(elBytes),
			fmt.Sprintf("%v/%v/%v", sepBytes <= gpuMem, csrBytes <= gpuMem, elBytes <= gpuMem),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("delegate/nn fractions measured at local scale %d and the matching suggested TH", localScale),
		"the paper's headline row: scale-30 on 12 GPUs fits only with degree separation",
	)
	return t, nil
}

func gb(b float64) string { return fmt.Sprintf("%.1fGB", b/(1<<30)) }

// Table1Memory reproduces Table I: measured per-subgraph storage against the
// closed-form model and the conventional representations.
func Table1Memory(p Params) (*Table, error) {
	scale := p.pick(16, 12)
	el := rmatGraph(scale)
	shape := gpuCountShapes(8)[0] // 2×2×2
	th := suggestTH(el, shape.P())
	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		return nil, err
	}
	mem := sg.Memory()
	t := &Table{
		ID:      "tab1",
		Title:   fmt.Sprintf("subgraph memory, RMAT scale %d, %s, TH=%d", scale, shape, th),
		Paper:   "Table I — totals 8n+8d·p+4m+4|Enn|; ≈1/3 of a 16m edge list, ~half of 8n+8m CSR",
		Headers: []string{"subgraph", "row bytes", "col bytes", "paper formula"},
	}
	pp := int64(shape.P())
	t.Rows = append(t.Rows,
		[]string{"nn", i64(mem.NNRows), i64(mem.NNCols), "n/p·4 + |Enn|/p·8 per GPU"},
		[]string{"nd", i64(mem.NDRows), i64(mem.NDCols), "n/p·4 + |End|/p·4 per GPU"},
		[]string{"dn", i64(mem.DNRows), i64(mem.DNCols), "d·4 + |Edn|/p·4 per GPU"},
		[]string{"dd", i64(mem.DDRows), i64(mem.DDCols), "d·4 + |Edd|/p·4 per GPU"},
		[]string{"total", i64(mem.Total()), "", fmt.Sprintf("predicted %d", sg.PredictedTotal())},
		[]string{"edge list (16m)", i64(sg.EdgeListBytes()), "", fmt.Sprintf("ratio %.2f×", float64(sg.EdgeListBytes())/float64(mem.Total()))},
		[]string{"plain CSR (8n+8m)", i64(sg.PlainCSRBytes()), "", fmt.Sprintf("ratio %.2f×", float64(sg.PlainCSRBytes())/float64(mem.Total()))},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("d=%d delegates (%s of n), |Enn|=%d (%s of m), p=%d",
			sg.D(), pct(float64(sg.D())/float64(sg.N)), sg.CountNN, pct(float64(sg.CountNN)/float64(sg.M)), pp),
		fmt.Sprintf("balance ratio (max/mean edges per GPU) = %.3f", sg.BalanceRatio()),
	)
	return t, nil
}
