package experiments

import (
	"context"
	"fmt"

	"gcbfs/internal/core"
	"gcbfs/internal/metrics"
	"gcbfs/internal/wire"
)

// Cmp5MultiSource ablates the multi-source sweep engine (internal/core/sweep.go)
// against the independent-query batch path at growing batch widths K: the
// sweep answers all K queries in one BSP traversal over K-bit visited masks,
// so its per-query throughput should pull away as K grows while levels and
// parents stay bit-identical to independent runs. The runner asserts, on
// every K: bit-identical levels AND parents between sweep and batch for every
// query, sweep per-query GTEPS strictly above the batch's at K ≥ 64, and at
// least 2× the batch's at K = 512 — the amortization claim the engine exists
// for. gteps/query is aggregate: Σ TEPS edges / Σ per-query seconds (the
// sweep's per-query seconds sum to the sweep's total traversal time).
func Cmp5MultiSource(p Params) (*Table, error) {
	scale := 12
	widths := []int{8, 64, 512}
	if p.Quick {
		scale = 10
		widths = []int{8, 64}
	}
	t := &Table{
		ID:    "cmp5",
		Title: "multi-source sweep (MS-BFS) vs independent batch queries",
		Paper: "beyond the paper — the §VI-A service workload (64 sources per data point) answered by one shared traversal (Then et al., VLDB 2015)",
		Headers: []string{"K", "mode", "mean iters", "edges/query", "wire kB/query",
			"ms/query", "gteps/query", "speedup"},
		Notes: []string{
			"levels and parents asserted bit-identical between sweep and batch for every query at every K",
			"per-query counters and simulated seconds of a sweep are equal shares of the sweep totals",
			"sweep gteps/query asserted > batch at K ≥ 64 and ≥ 2× batch at K = 512",
			"adaptive codec on both paths: sweep records carry (id, K-bit mask) payloads through the same scheme-memoized selector",
		},
	}

	el := rmatGraph(scale)
	amp := ampFor(18, scale)
	th := suggestTH(el, 32)
	shape := core.ClusterShape{Nodes: 3, RanksPerNode: 1, GPUsPerRank: 2}
	opts := core.DefaultOptions()
	opts.Compression = wire.ModeAdaptive
	opts.WorkAmplification = amp
	opts.CollectLevels = true
	opts.CollectParents = true
	pl, _, err := buildPlan(el, shape, th, opts)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	for _, k := range widths {
		sources := pickSources(el.OutDegrees(), k, p.seed())
		if len(sources) < k {
			return nil, fmt.Errorf("cmp5: scale %d has only %d eligible sources for K=%d",
				scale, len(sources), k)
		}
		batch, err := pl.RunBatch(ctx, sources, expParallelism, core.Overrides{})
		if err != nil {
			return nil, err
		}
		sweep, err := pl.RunSweep(ctx, sources, core.Overrides{})
		if err != nil {
			return nil, err
		}
		for q := range sources {
			b, s := batch[q], sweep[q]
			if b.Iterations != s.Iterations {
				return nil, fmt.Errorf("cmp5: K=%d src=%d: sweep iterations %d vs batch %d",
					k, sources[q], s.Iterations, b.Iterations)
			}
			for v := range b.Levels {
				if s.Levels[v] != b.Levels[v] {
					return nil, fmt.Errorf("cmp5: K=%d src=%d: vertex %d level %d (sweep) vs %d (batch)",
						k, sources[q], v, s.Levels[v], b.Levels[v])
				}
			}
			for v := range b.Parents {
				if s.Parents[v] != b.Parents[v] {
					return nil, fmt.Errorf("cmp5: K=%d src=%d: vertex %d parent %d (sweep) vs %d (batch)",
						k, sources[q], v, s.Parents[v], b.Parents[v])
				}
			}
		}
		rate := func(rs []*metrics.RunResult) (gteps, msPerQ, edgesPerQ, wireKBPerQ, meanIters float64) {
			var teps, edges, wireBytes int64
			var sim float64
			for _, r := range rs {
				teps += r.TEPSEdges
				edges += r.EdgesScanned
				wireBytes += r.Wire.CompressedBytes
				sim += r.SimSeconds
				meanIters += float64(r.Iterations)
			}
			n := float64(len(rs))
			return float64(teps) / sim / 1e9, sim / n * 1e3,
				float64(edges) / n, float64(wireBytes) / n / 1024, meanIters / n
		}
		bG, bMS, bE, bW, bI := rate(batch)
		sG, sMS, sE, sW, sI := rate(sweep)
		speedup := sG / bG
		t.Rows = append(t.Rows,
			[]string{i64(int64(k)), "batch", f1(bI), f1(bE), f2(bW), fmt.Sprintf("%.4f", bMS), f2(bG), "1.00"},
			[]string{i64(int64(k)), "sweep", f1(sI), f1(sE), f2(sW), fmt.Sprintf("%.4f", sMS), f2(sG), f2(speedup)})
		if k >= 64 && sG <= bG {
			return nil, fmt.Errorf("cmp5: K=%d: sweep %.3f gteps/query not above batch %.3f",
				k, sG, bG)
		}
		if k >= 512 && speedup < 2 {
			return nil, fmt.Errorf("cmp5: K=%d: sweep speedup %.2f× below the 2× amortization bar",
				k, speedup)
		}
	}
	return t, nil
}
