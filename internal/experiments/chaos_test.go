package experiments

import (
	"io"
	"testing"
)

// TestCmp8Chaos runs the chaos ablation in quick mode: its assertions — every
// injected fault detected-and-retried or surfaced as a typed error, every
// recovery bit-identical in levels and parents — are the test.
func TestCmp8Chaos(t *testing.T) {
	tab, err := Cmp8Chaos(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tab.Render(io.Discard)
	if len(tab.Rows) == 0 {
		t.Fatal("cmp8 produced no cells")
	}
}
