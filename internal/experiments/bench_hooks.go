package experiments

// Exported hooks for the pinned benchmark-trajectory suite (internal/bench).
// The suite must measure exactly the graphs, sources and plans the
// experiments measure — same RMAT cache, same seed conventions, same
// threshold tuning — or its recorded wire-byte counts (diffed exactly
// across PRs) would drift from what the cmp tables report.

import (
	"gcbfs/internal/core"
	"gcbfs/internal/graph"
	"gcbfs/internal/partition"
)

// BenchGraph returns the shared cached Graph500 RMAT instance for a scale.
func BenchGraph(scale int) *graph.EdgeList { return rmatGraph(scale) }

// BenchSources selects k deterministic positive-degree sources (sorted
// ascending) with the experiments' rejection-sampling convention.
func BenchSources(el *graph.EdgeList, k int, seed int64) []int64 {
	return pickSources(el.OutDegrees(), k, seed)
}

// BenchPlan partitions el for the shape at the suggested degree threshold
// and builds a query plan — the same tuning path every experiment uses.
func BenchPlan(el *graph.EdgeList, shape core.ClusterShape, opts core.Options) (*core.Plan, *partition.Subgraphs, error) {
	return buildPlan(el, shape, suggestTH(el, shape.P()), opts)
}

// DefaultSources reports the per-experiment default source count for a
// parameter set — what Params.sources() resolves 0 to.
func (p Params) DefaultSources() int { return p.sources() }
