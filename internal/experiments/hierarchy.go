package experiments

import (
	"fmt"

	"gcbfs/internal/core"
	"gcbfs/internal/metrics"
)

// Cmp7Hierarchy ablates the two-level NVLink-aware exchange (internal/core/
// exchange.go): the flat baseline — every GPU's per-destination fragment as
// its own inter-rank message — against the hierarchical default, where the
// GPUs of a rank combine their bins over NVLink into one merged message per
// destination rank, across {all-pairs, pipelined butterfly, hybrid} and
// GPUs-per-rank counts. The hierarchy cuts messages per rank per iteration
// by exactly GPUsPerRank× and grows per-message size into the network's
// high-efficiency regime, paying simulated NVLink aggregation time that the
// pipelined butterfly mostly hides as a third pipeline resource. The runner
// asserts on every cell: levels bit-identical across every mode × policy,
// the flat = GPUsPerRank × hierarchical message identity for the fixed
// policies, and hybrid elapsed no worse than 1.05× the best fixed policy
// within its mode.
func Cmp7Hierarchy(p Params) (*Table, error) {
	scales := []int{12, 14}
	rankCounts := []int{4, 6}
	if p.Quick {
		scales = []int{11}
		rankCounts = []int{4}
	}
	gpusPerRank := []int{2, 4}
	t := &Table{
		ID:    "cmp7",
		Title: "hierarchical-exchange ablation: flat per-GPU fragments vs intra-rank NVLink aggregation",
		Paper: "beyond the paper — the Local-All2All idea promoted into a two-level inter-rank exchange",
		Headers: []string{"scale", "ranks", "gpus/rank", "policy", "mode", "msg/rank/iter",
			"nvlink µs", "hidden µs", "remote-normal ms", "elapsed ms"},
		Notes: []string{
			"levels asserted bit-identical across every mode × policy on every cell",
			"messages asserted exactly flat = gpus/rank × hierarchical for the fixed policies",
			"hybrid asserted ≤ 1.05× the best fixed policy's elapsed time within its mode",
			"nvlink µs is the simulated intra-rank aggregation/staging time; hidden µs the share the pipelined butterfly ran under hop transfers",
			"both modes charge staging/NVLink time inside local-comm, so remote-normal is the pure wire+codec schedule and directly comparable",
		},
	}

	policies := []core.Exchange{core.ExchangeAllPairs, core.ExchangeButterfly, core.ExchangeHybrid}
	for _, scale := range scales {
		el := rmatGraph(scale)
		amp := ampFor(18, scale)
		th := suggestTH(el, 32)
		sources := pickSources(el.OutDegrees(), p.sources(), p.seed())
		for _, ranks := range rankCounts {
			for _, pgpu := range gpusPerRank {
				shape := core.ClusterShape{Nodes: ranks, RanksPerNode: 1, GPUsPerRank: pgpu}
				var refLevels [][]int32
				msgsBy := map[[2]interface{}]int64{}
				elapsedBy := map[bool]map[core.Exchange]float64{true: {}, false: {}}
				for _, flat := range []bool{true, false} {
					for _, policy := range policies {
						opts := core.DefaultOptions()
						opts.Exchange = policy
						opts.PipelineHops = true
						opts.FlatExchange = flat
						opts.WorkAmplification = amp
						opts.CollectLevels = true
						e, _, err := buildPlan(el, shape, th, opts)
						if err != nil {
							return nil, err
						}
						results, err := runAll(e, sources)
						if err != nil {
							return nil, err
						}
						if refLevels == nil {
							for _, r := range results {
								refLevels = append(refLevels, r.Levels)
							}
						} else {
							for i, r := range results {
								for v := range r.Levels {
									if r.Levels[v] != refLevels[i][v] {
										return nil, fmt.Errorf(
											"cmp7: scale=%d ranks=%d pgpu=%d policy=%s flat=%v: vertex %d level %d vs %d",
											scale, ranks, pgpu, policy, flat, v, r.Levels[v], refLevels[i][v])
									}
								}
							}
						}
						var xs metrics.ExchangeStats
						var iters int64
						var remoteNormal, elapsed float64
						for _, r := range results {
							xs.Accumulate(r.Exchange)
							iters += int64(r.Iterations)
							remoteNormal += r.Parts.RemoteNormal
							elapsed += r.SimSeconds
						}
						n := float64(len(results))
						mode := "hier"
						if flat {
							mode = "flat"
						}
						msgsBy[[2]interface{}{flat, policy}] = xs.Messages
						elapsedBy[flat][policy] = elapsed
						t.Rows = append(t.Rows, []string{
							i64(int64(scale)), i64(int64(ranks)), i64(int64(pgpu)), xs.Strategy, mode,
							f1(float64(xs.Messages) / float64(iters*int64(ranks))),
							f1(xs.NVLinkSeconds / n * 1e6), f1(xs.HiddenNVLinkSeconds / n * 1e6),
							ms(remoteNormal / n), ms(elapsed / n),
						})
					}
				}
				for _, policy := range []core.Exchange{core.ExchangeAllPairs, core.ExchangeButterfly} {
					fm := msgsBy[[2]interface{}{true, policy}]
					hm := msgsBy[[2]interface{}{false, policy}]
					if fm != hm*int64(pgpu) {
						return nil, fmt.Errorf(
							"cmp7: scale=%d ranks=%d pgpu=%d policy=%v: flat %d messages, want %d (= %d× hier's %d)",
							scale, ranks, pgpu, policy, fm, hm*int64(pgpu), pgpu, hm)
					}
				}
				for flat, by := range elapsedBy {
					best := by[core.ExchangeAllPairs]
					if b := by[core.ExchangeButterfly]; b < best {
						best = b
					}
					if hy := by[core.ExchangeHybrid]; hy > best*1.05 {
						return nil, fmt.Errorf(
							"cmp7: scale=%d ranks=%d pgpu=%d flat=%v: hybrid elapsed %.3f ms above best fixed %.3f ms (+%.1f%%)",
							scale, ranks, pgpu, flat, hy*1e3, best*1e3, 100*(hy/best-1))
					}
				}
			}
		}
	}
	return t, nil
}
