package experiments

import (
	"context"
	"fmt"

	"gcbfs/internal/core"
	"gcbfs/internal/delta"
	"gcbfs/internal/partition"
	"gcbfs/internal/wire"
)

// Cmp6Dynamic ablates the incremental-graph machinery (internal/delta,
// partition.DistributeIncremental, core.Plan.RunRepair) against full
// recomputation across delta sizes and kinds: for each cell a synthetic
// batch of edge mutations advances the base graph one epoch, the next
// epoch's plan is built incrementally beside the old one, and the prior
// query's result is repaired by a corrective traversal seeded only from the
// vertices the delta can move. The runner asserts, in every cell, that the
// repaired levels AND parents are bit-identical to a full recompute on the
// new epoch, and that at the smallest delta the repair is at least as fast
// as recomputing in simulated seconds — the reason dynamic BFS exists.
// Large deltas (10%) are allowed to lose: when most of the tree is voided
// the corrective wave converges on recompute work plus probe overhead.
func Cmp6Dynamic(p Params) (*Table, error) {
	scale := 12
	fracs := []float64{0.001, 0.01, 0.1}
	if p.Quick {
		scale = 10
		fracs = []float64{0.001, 0.01}
	}
	kinds := []delta.Kind{delta.KindInsert, delta.KindDelete, delta.KindMixed}
	t := &Table{
		ID:    "cmp6",
		Title: "dynamic BFS repair vs full recompute across edge deltas",
		Paper: "beyond the paper — epoch-versioned plans with delta repair over the §III partition (cf. Hanauer et al., dynamic-graph survey 2022)",
		Headers: []string{"frac", "kind", "Δedges", "invalid%", "seeds",
			"shared GPUs", "repair iters", "repair ms", "recompute ms", "speedup"},
		Notes: []string{
			"levels and parents asserted bit-identical between repair and full recompute in every cell",
			"epoch 2 is built incrementally: per-GPU subgraphs whose routed edge sequence is unchanged are shared with epoch 1",
			"invalid% counts vertices whose prior level the delta voids (orphaned tree subtrees); seeds are still-valid insert endpoints",
			"repair asserted ≥ 1× recompute in simulated seconds at the smallest delta",
		},
	}

	el := rmatGraph(scale)
	amp := ampFor(18, scale)
	th := suggestTH(el, 32)
	shape := core.ClusterShape{Nodes: 3, RanksPerNode: 1, GPUsPerRank: 2}
	cfg := shape.PartitionConfig()
	opts := core.DefaultOptions()
	opts.Exchange = core.ExchangeHybrid
	opts.Compression = wire.ModeAdaptive
	opts.WorkAmplification = amp
	opts.CollectLevels = true
	opts.CollectParents = true

	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, cfg)
	if err != nil {
		return nil, err
	}
	p1, err := core.NewPlanEpoch(sg, shape, opts, 1)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	// A well-connected root, so deltas actually intersect the BFS tree.
	source := int64(0)
	for v, d := range el.OutDegrees() {
		if d > el.OutDegrees()[source] {
			source = int64(v)
		}
	}
	prior, err := p1.Run(ctx, source, core.Overrides{})
	if err != nil {
		return nil, err
	}

	cell := 0
	for _, frac := range fracs {
		for _, kind := range kinds {
			cell++
			b := delta.Synthesize(el, frac, kind, uint64(p.seed())+uint64(cell))
			el2, err := delta.Apply(el, b)
			if err != nil {
				return nil, err
			}
			sep2 := partition.Separate(el2, th)
			sg2, shared, err := partition.DistributeIncremental(el2, sep2, cfg, sg)
			if err != nil {
				return nil, err
			}
			p2, err := core.NewPlanEpoch(sg2, shape, opts, 2)
			if err != nil {
				return nil, err
			}
			full, err := p2.Run(ctx, source, core.Overrides{})
			if err != nil {
				return nil, err
			}
			invalid, seeds := delta.Affected(prior.Levels, prior.Parents, b)
			rep, err := p2.RunRepair(ctx, source, prior.Levels, invalid, seeds, core.Overrides{})
			if err != nil {
				return nil, err
			}
			for v := range full.Levels {
				if rep.Levels[v] != full.Levels[v] {
					return nil, fmt.Errorf("cmp6: frac=%g kind=%s: vertex %d level %d (repair) vs %d (recompute)",
						frac, kind, v, rep.Levels[v], full.Levels[v])
				}
			}
			for v := range full.Parents {
				if rep.Parents[v] != full.Parents[v] {
					return nil, fmt.Errorf("cmp6: frac=%g kind=%s: vertex %d parent %d (repair) vs %d (recompute)",
						frac, kind, v, rep.Parents[v], full.Parents[v])
				}
			}
			nInvalid := 0
			for _, iv := range invalid {
				if iv {
					nInvalid++
				}
			}
			speedup := full.SimSeconds / rep.SimSeconds
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.3f", frac), kind.String(), i64(int64(b.Size())),
				pct(float64(nInvalid) / float64(el.N)), i64(int64(len(seeds))),
				fmt.Sprintf("%d/%d", shared, cfg.P()),
				i64(int64(rep.Iterations)), ms(rep.SimSeconds), ms(full.SimSeconds), f2(speedup),
			})
			if frac == fracs[0] && speedup < 1 {
				return nil, fmt.Errorf("cmp6: frac=%g kind=%s: repair %.3f ms slower than recompute %.3f ms (%.2f×)",
					frac, kind, rep.SimSeconds*1e3, full.SimSeconds*1e3, speedup)
			}
		}
	}
	return t, nil
}
