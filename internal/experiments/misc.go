package experiments

import (
	"fmt"

	"gcbfs/internal/baseline"
	"gcbfs/internal/core"
	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/related"
	"gcbfs/internal/simnet"
)

// Net1MessageSize reproduces the §VI-A1 message-size sweep: effective
// bandwidth through the rank NIC as the message size varies, for a bulk
// volume matching the paper's MB-sized exchanges. Expected: optimum ≈4 MB,
// small differences below 2 MB.
func Net1MessageSize(p Params) (*Table, error) {
	net := simnet.Ray()
	const volume = 256 << 20
	t := &Table{
		ID:      "net1",
		Title:   "message-size sweep through one rank NIC (256 MB bulk volume)",
		Paper:   "§VI-A1 — optimal ≈4 MB for data >2 MB; under 2 MB differences are not significant",
		Headers: []string{"message size", "efficiency", "transfer ms", "effective GB/s"},
	}
	for _, size := range []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20} {
		tm := net.PointToPoint(volume, size)
		t.Rows = append(t.Rows, []string{
			byteSize(size), f2(net.Efficiency(size)), ms(tm),
			f2(float64(volume) / tm / 1e9),
		})
	}
	return t, nil
}

func byteSize(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dkB", b>>10)
	}
	return fmt.Sprintf("%dB", b)
}

// WDC1LongTail reproduces the §VI-D WDC observation: on a long-tail web
// graph the per-iteration overhead dominates and DOBFS's direction-decision
// work makes it slightly slower than plain BFS.
func WDC1LongTail(p Params) (*Table, error) {
	wp := gen.DefaultWebParams(p.pick(12, 10))
	wp.NumChains = p.pick(16, 8)
	wp.ChainLength = int64(p.pick(300, 120))
	el := gen.WebGraph(wp)
	nodes := p.pick(10, 4)
	shape := core.ClusterShape{Nodes: nodes, RanksPerNode: 2, GPUsPerRank: 2}
	sources := pickSources(el.OutDegrees(), p.sources(), p.seed())
	th := suggestTH(el, shape.P())
	t := &Table{
		ID:      "wdc1",
		Title:   fmt.Sprintf("long-tail web graph, %s, TH=%d", shape, th),
		Paper:   "§VI-D — WDC 2012 on 40×2×2: ~330 iterations, BFS 84.2 vs DOBFS 79.7 GTEPS (DO slightly slower)",
		Headers: []string{"mode", "simMTEPS", "iterations", "mean ms"},
		Notes: []string{
			"WDC 2012 (4.29B vertices, 224B edges) → synthetic RMAT-core+chains web graph (DESIGN.md)",
			"amplification deliberately 1: the long tail's per-iteration overhead is the object under study",
		},
	}
	for _, do := range []bool{false, true} {
		opts := core.DefaultOptions()
		opts.DirectionOptimized = do
		opts.CollectLevels = false
		e, _, err := buildPlan(el, shape, th, opts)
		if err != nil {
			return nil, err
		}
		agg, err := measure(e, sources)
		if err != nil {
			return nil, err
		}
		name := "BFS"
		if do {
			name = "DOBFS"
		}
		t.Rows = append(t.Rows, []string{name, f2(agg.GTEPS * 1e3), f1(agg.Iterations), f2(agg.MeanMS)})
	}
	return t, nil
}

// Abl1CommModel reproduces the §II-B scaling argument with measured data:
// total communication volume of our engine vs a 1D-partitioned BFS vs the
// 2D-partitioning model, on the same graph and processor counts.
func Abl1CommModel(p Params) (*Table, error) {
	scale := p.pick(14, 12)
	el := rmatGraph(scale)
	csr := graph.BuildCSR(el)
	deg := el.OutDegrees()
	src := pickSources(deg, 1, p.seed())[0]
	serial := baseline.SerialBFS(csr, src)
	sizes := baseline.LevelSizes(serial)
	t := &Table{
		ID:      "abl1",
		Title:   fmt.Sprintf("communication volume: ours vs 1D vs 2D model, RMAT scale %d", scale),
		Paper:   "§II-B — 2D comm grows ~√p under weak scaling; delegate model grows ~log p_rank",
		Headers: []string{"GPUs", "ours (bytes)", "1D push (bytes)", "1D DO bcast (bytes)", "2D model (bytes)"},
		Notes: []string{
			"single source; ours = measured engine exchange volume (normal + delegate masks)",
			"2D model assumes direction switch after iteration 2 (typical for RMAT)",
		},
	}
	for _, gpus := range []int{4, 16, 64} {
		shape := gpuCountShapes(gpus)[0]
		th := suggestTH(el, gpus)
		opts := core.DefaultOptions()
		opts.CollectLevels = false
		e, _, err := buildPlan(el, shape, th, opts)
		if err != nil {
			return nil, err
		}
		res, err := runOne(e, src)
		if err != nil {
			return nil, err
		}
		var ours int64
		for _, it := range res.PerIteration {
			ours += it.BytesNormal
			// Each mask-exchange iteration moves ~2·log2(ranks) tree
			// messages of the mask; count the paper's d·p_rank/4 bound.
			if it.BytesDelegate > 0 {
				ours += it.BytesDelegate * int64(shape.Ranks()) / 4
			}
		}
		oneD, err := baseline.OneD(csr, src, gpus, false)
		if err != nil {
			return nil, err
		}
		oneDDO, err := baseline.OneD(csr, src, gpus, true)
		if err != nil {
			return nil, err
		}
		twoD, err := baseline.TwoDModel(el.N, sizes, 2, gpus)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			i64(int64(gpus)), i64(ours), i64(oneD.CommBytes),
			i64(oneDDO.CommBytes + oneDDO.BroadcastBytes), i64(twoD.TotalBytes()),
		})
	}
	return t, nil
}

// Figure1 renders the related-work landscape (Fig. 1) with our simulated
// point appended.
func Figure1(p Params) (*Table, error) {
	t := &Table{
		ID:      "fig1",
		Title:   "large-scale BFS landscape (related work + this reproduction)",
		Paper:   "Fig. 1 — scale vs processors and GTEPS/processor across published systems",
		Headers: []string{"ref", "system", "kind", "scale", "processors", "GTEPS", "GTEPS/proc"},
	}
	for _, pt := range related.Figure1() {
		t.Rows = append(t.Rows, []string{
			pt.Ref, pt.System, pt.Kind.String(), i64(int64(pt.Scale)),
			i64(int64(pt.Processors)), f1(pt.GTEPS), f2(pt.GTEPSPerProcessor()),
		})
	}
	// Our simulated point: a small weak-scaled run projected by the
	// amplification factor.
	perGPU := p.pick(13, 12)
	gpus := p.pick(16, 8)
	scale := perGPU + lg(gpus)
	amp := ampFor(26, perGPU)
	shape := gpuCountShapes(gpus)[0]
	_, dobfs, err := weakPoint(scale, shape, amp, p.sources(), p.seed())
	if err != nil {
		return nil, err
	}
	sim := simGTEPS(dobfs, amp)
	t.Rows = append(t.Rows, []string{
		"[sim]", "this reproduction (simulated)", "GPU Cluster",
		i64(int64(scale + 13)), i64(int64(gpus)), f1(sim), f2(sim / float64(gpus)),
	})
	t.Notes = append(t.Notes, "[sim] row: local run amplified to the paper's per-GPU regime; see EXPERIMENTS.md")
	return t, nil
}

// Table2Comparison reproduces Table II with a simulated column: each paper
// row is re-run at reduced scale on the same cluster layout.
func Table2Comparison(p Params) (*Table, error) {
	t := &Table{
		ID:      "tab2",
		Title:   "comparison with previous work (paper rows + our simulation)",
		Paper:   "Table II — the paper's hardware/GTEPS comparison",
		Headers: []string{"scale", "reference", "ref GTEPS", "paper hw", "paper GTEPS", "sim GTEPS"},
		Notes: []string{
			"sim column: same layout as the paper's hardware at reduced scale, amplified to the paper regime",
		},
	}
	type simRun struct {
		shape    core.ClusterShape
		perGPU   int // local per-GPU scale
		paperPer int // paper per-GPU scale
	}
	runs := map[string]simRun{
		"Pan [5]/24":     {core.ClusterShape{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 1}, p.pick(14, 12), 24},
		"Pan [5]/25":     {core.ClusterShape{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 2}, p.pick(14, 12), 24},
		"Pan [5]/26":     {core.ClusterShape{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 4}, p.pick(14, 12), 24},
		"Bernaschi [18]": {core.ClusterShape{Nodes: p.pick(8, 4), RanksPerNode: 2, GPUsPerRank: 2}, p.pick(13, 12), 28},
		"Krajecki [20]":  {core.ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 4}, p.pick(14, 12), 26},
		"Yasui [9]":      {core.ClusterShape{Nodes: p.pick(8, 4), RanksPerNode: 2, GPUsPerRank: 2}, p.pick(13, 12), 28},
		"Buluç [16]":     {core.ClusterShape{Nodes: p.pick(8, 4), RanksPerNode: 2, GPUsPerRank: 2}, p.pick(13, 12), 28},
	}
	simCache := map[string]float64{}
	for _, row := range related.Table2() {
		key := row.Ref
		if row.Ref == "Pan [5]" {
			key = fmt.Sprintf("Pan [5]/%d", row.Scale)
		}
		r, ok := runs[key]
		if !ok {
			return nil, fmt.Errorf("tab2: no sim mapping for %q", key)
		}
		cacheKey := fmt.Sprintf("%s-%d-%d", r.shape, r.perGPU, r.paperPer)
		sim, ok := simCache[cacheKey]
		if !ok {
			scale := r.perGPU + lg(r.shape.P())
			amp := ampFor(r.paperPer, r.perGPU)
			_, dobfs, err := weakPoint(scale, r.shape, amp, p.sources(), p.seed())
			if err != nil {
				return nil, err
			}
			sim = simGTEPS(dobfs, amp)
			simCache[cacheKey] = sim
		}
		t.Rows = append(t.Rows, []string{
			i64(int64(row.Scale)), row.Ref, f1(row.RefGTEPS),
			row.PaperHW, f1(row.PaperGTEPS), f1(sim),
		})
	}
	return t, nil
}
