// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) on the simulated cluster. Each experiment has an ID
// (fig5..fig13, tab1, tab2, net1, wdc1, do1, abl1, fig1), a Runner that
// produces a rendered table, and notes recording the paper→local scale
// substitutions. EXPERIMENTS.md tracks paper-reported vs measured values.
//
// Scale mapping: the paper runs RMAT scales 24–33 on P100s; locally we run
// scales ~11–20 and set the engine's WorkAmplification to
// 2^(paperPerGPUScale − localPerGPUScale), which puts each simulated GPU in
// the paper's workload regime (see core.Options.WorkAmplification). Reported
// "sim GTEPS" are rates of the amplified graph: raw GTEPS × amplification.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"gcbfs/internal/core"
	"gcbfs/internal/graph"
	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
)

// Params tunes experiment size. Quick mode shrinks scales and source counts
// for use in the bench harness; full mode is the CLI default.
type Params struct {
	Quick   bool
	Sources int   // BFS runs per data point; 0 = default
	Seed    int64 // source-selection seed; 0 = default
}

func (p Params) sources() int {
	if p.Sources > 0 {
		return p.Sources
	}
	if p.Quick {
		return 3
	}
	return 6
}

func (p Params) seed() int64 {
	if p.Seed != 0 {
		return p.Seed
	}
	return 20180405 // the paper's arXiv v2 date
}

// pick returns quick or full value.
func (p Params) pick(full, quick int) int {
	if p.Quick {
		return quick
	}
	return full
}

// Table is a rendered experiment artifact.
type Table struct {
	ID      string
	Title   string
	Paper   string // what the paper artifact reports
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(w, "paper: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner produces one experiment's table.
type Runner func(p Params) (*Table, error)

// registry holds all experiments in presentation order.
var registry = []struct {
	ID     string
	Run    Runner
	Remark string
}{
	{"fig1", Figure1, "related-work scatter + our point"},
	{"net1", Net1MessageSize, "§VI-A1 message-size sweep"},
	{"fig5", Fig5Distribution, "edge/delegate % vs degree threshold (RMAT)"},
	{"fig6", Fig6ThresholdSweep, "traversal rate vs degree threshold (RMAT)"},
	{"fig7", Fig7SuggestedTH, "suggested thresholds per scale"},
	{"fig8", Fig8Options, "optimization options ablation"},
	{"fig9", Fig9WeakScaling, "weak scaling to 64+ GPUs"},
	{"fig10", Fig10Breakdown, "runtime breakdown along weak scaling"},
	{"fig11", Fig11StrongScaling, "strong scaling on a fixed graph"},
	{"fig12", Fig12FriendsterDist, "friendster-like edge/delegate %"},
	{"fig13", Fig13FriendsterRate, "friendster-like traversal rates"},
	{"tab1", Table1Memory, "Table I memory accounting"},
	{"tab2", Table2Comparison, "Table II comparison"},
	{"wdc1", WDC1LongTail, "§VI-D WDC long-tail behaviour"},
	{"do1", DO1FactorSweep, "§VI-B direction-factor sweep"},
	{"abl1", Abl1CommModel, "§II-B communication-model ablation"},
	{"abl2", Abl2LoadBalance, "§IV-A load-balance strategy ablation"},
	{"cmp1", Cmp1Compression, "frontier-exchange compression ablation (internal/wire)"},
	{"cmp2", Cmp2Exchange, "exchange-topology ablation: all-pairs vs butterfly (internal/core/exchange.go)"},
	{"cmp3", Cmp3Hybrid, "exchange-policy ablation: fixed strategies vs per-iteration hybrid (internal/core/policy.go)"},
	{"cmp4", Cmp4Pipeline, "pipelined-butterfly ablation: sequential vs pipelined hops vs overlap-aware hybrid (simnet.ButterflyPipelined)"},
	{"cmp5", Cmp5MultiSource, "multi-source sweep ablation: MS-BFS shared traversal vs independent batch queries (internal/core/sweep.go)"},
	{"cmp6", Cmp6Dynamic, "dynamic-graph ablation: delta BFS repair vs full recompute across edge-delta sizes (internal/delta, internal/core/repair.go)"},
	{"cmp7", Cmp7Hierarchy, "hierarchical-exchange ablation: flat per-GPU fragments vs intra-rank NVLink aggregation (internal/core/exchange.go)"},
	{"cmp8", Cmp8Chaos, "chaos ablation: fault kind × rate × strategy under contain/retry/degrade (internal/faults, internal/core containment)"},
	{"app1", App1BeyondBFS, "§VI-D beyond-BFS: PageRank and components"},
	{"mem1", Mem1Capacity, "§VI-C device-memory capacity per representation"},
}

// IDs lists experiment ids in presentation order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Describe returns a one-line description per experiment id.
func Describe() map[string]string {
	out := map[string]string{}
	for _, e := range registry {
		out[e.ID] = e.Remark
	}
	return out
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// RunAll executes every experiment and renders it to w.
func RunAll(p Params, w io.Writer) error {
	for _, e := range registry {
		t, err := e.Run(p)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		t.Render(w)
	}
	return nil
}

// ---- shared helpers ----

var (
	cacheMu    sync.Mutex
	graphCache = map[string]*graph.EdgeList{}
)

// rmatGraph returns a cached Graph500 RMAT instance (small scales only, so
// repeated experiments don't regenerate).
func rmatGraph(scale int) *graph.EdgeList {
	key := fmt.Sprintf("rmat-%d", scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if el, ok := graphCache[key]; ok {
		return el
	}
	el := rmat.Generate(rmat.DefaultParams(scale))
	if scale <= 18 {
		graphCache[key] = el
	}
	return el
}

// pickSources selects up to k distinct positive-degree vertices, sorted
// ascending. When the graph has no more candidates than requested it returns
// them all directly — the rejection loop below must otherwise hit every
// eligible vertex by chance (and spins forever when k exceeds them, the bug
// graph.PickSources guards the public API against).
func pickSources(deg []int64, k int, seed int64) []int64 {
	eligible := 0
	for _, d := range deg {
		if d > 0 {
			eligible++
		}
	}
	if k >= eligible {
		out := make([]int64, 0, eligible)
		for v, d := range deg {
			if d > 0 {
				out = append(out, int64(v))
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	var out []int64
	seen := map[int64]bool{}
	n := int64(len(deg))
	for len(out) < k {
		v := rng.Int63n(n)
		if deg[v] > 0 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// buildPlan partitions and instantiates a query plan in one step.
func buildPlan(el *graph.EdgeList, shape core.ClusterShape, th int64, opts core.Options) (*core.Plan, *partition.Subgraphs, error) {
	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		return nil, nil, err
	}
	pl, err := core.NewPlan(sg, shape, opts)
	if err != nil {
		return nil, nil, err
	}
	return pl, sg, nil
}

// expParallelism is the in-flight query count every experiment batch uses —
// results are bit-identical to a serial loop by the Plan/Session contract,
// so this only shortens wall-clock time.
const expParallelism = 4

// runOne executes a single source on the plan with no per-query overrides.
func runOne(pl *core.Plan, src int64) (*metrics.RunResult, error) {
	return pl.Run(context.Background(), src, core.Overrides{})
}

// runAll executes every source through the plan's concurrent batch path
// (source-ordered, deterministic results).
func runAll(pl *core.Plan, sources []int64) ([]*metrics.RunResult, error) {
	return pl.RunBatch(context.Background(), sources, expParallelism, core.Overrides{})
}

// suggestTH applies the paper's tuning guidance: keep d at or under 4n/p
// ("we keep d under 4n/p in practice", §VI-B). At small p this permits a
// delegate-heavy graph, which is exactly what the algorithm wants there —
// with few ranks the mask reduction is nearly free.
func suggestTH(el *graph.EdgeList, p int) int64 {
	return partition.SuggestThreshold(el.OutDegrees(), 4*el.N/int64(p))
}

// ampFor computes 2^(paperPerGPUScale − localPerGPUScale), the timing-model
// amplification that puts local runs in the paper's per-GPU regime.
func ampFor(paperPerGPU, localPerGPU int) float64 {
	diff := paperPerGPU - localPerGPU
	if diff <= 0 {
		return 1
	}
	return float64(int64(1) << uint(diff))
}

// measure runs the plan over the sources (batched) and aggregates.
func measure(pl *core.Plan, sources []int64) (metrics.Aggregate, error) {
	results, err := runAll(pl, sources)
	if err != nil {
		return metrics.Aggregate{}, err
	}
	return metrics.AggregateRuns(results), nil
}

// simGTEPS converts an aggregate rate to the amplified (simulated) graph's
// rate.
func simGTEPS(agg metrics.Aggregate, amp float64) float64 { return agg.GTEPS * amp }

func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
func ms(x float64) string  { return fmt.Sprintf("%.2f", x*1e3) }
func us(x float64) string  { return fmt.Sprintf("%.2f", x*1e6) }
func i64(x int64) string   { return fmt.Sprintf("%d", x) }

// gpuCountShapes returns the two hardware layouts the paper compares
// (∗×2×2 and ∗×1×4) for a GPU count divisible by 4, or the natural shapes
// for 1 and 2 GPUs.
func gpuCountShapes(gpus int) []core.ClusterShape {
	switch {
	case gpus == 1:
		return []core.ClusterShape{{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 1}}
	case gpus == 2:
		return []core.ClusterShape{{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 2}}
	case gpus%4 == 0:
		return []core.ClusterShape{
			{Nodes: gpus / 4, RanksPerNode: 2, GPUsPerRank: 2},
			{Nodes: gpus / 4, RanksPerNode: 1, GPUsPerRank: 4},
		}
	default:
		return []core.ClusterShape{{Nodes: gpus, RanksPerNode: 1, GPUsPerRank: 1}}
	}
}
