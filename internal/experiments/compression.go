package experiments

import (
	"fmt"

	"gcbfs/internal/core"
	"gcbfs/internal/graph"
	"gcbfs/internal/metrics"
	"gcbfs/internal/rmat"
	"gcbfs/internal/wire"
)

// uniformGraph returns a cached uniform-degree random graph (the RMAT
// recursion with equal quadrant probabilities is an Erdős–Rényi-style
// generator), the skew-free counterpart to the Graph500 instance.
func uniformGraph(scale int) *graph.EdgeList {
	key := fmt.Sprintf("uniform-%d", scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if el, ok := graphCache[key]; ok {
		return el
	}
	p := rmat.DefaultParams(scale)
	p.A, p.B, p.C, p.D = 0.25, 0.25, 0.25, 0.25
	el := rmat.Generate(p)
	if scale <= 18 {
		graphCache[key] = el
	}
	return el
}

// Cmp1Compression ablates the frontier-exchange codec (internal/wire):
// bytes on the wire and end-to-end simulated time for every compression
// mode, on the skewed Graph500 R-MAT graph and on a uniform random graph.
// The delegate cap is tightened to n/8 so the normal exchange — the traffic
// the codec targets — carries real volume at local scales; results are
// identical across modes by construction (asserted by the engine tests).
func Cmp1Compression(p Params) (*Table, error) {
	scale := p.pick(15, 12)
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}
	amp := ampFor(26, scale-3)
	t := &Table{
		ID:    "cmp1",
		Title: fmt.Sprintf("frontier-exchange compression ablation, scale %d, %s", scale, shape),
		Paper: "beyond the paper — adaptive frontier compression à la Romera et al. / ButterFly BFS",
		Headers: []string{"graph", "mode", "raw kB", "wire kB", "saved",
			"schemes r/d/b", "remote-normal ms", "codec µs", "elapsed ms"},
		Notes: []string{
			"raw kB is the fixed-width 4·|ids| equivalent; wire kB includes headers and checksums",
			"adaptive+U row: uniquified bins are duplicate-free, making bitmap eligible (delta still wins at small local id spaces)",
			"codec µs is the pack/unpack compute charged at simgpu CodecRate, included in remote-normal ms (0 with the codec off)",
		},
	}

	type variant struct {
		name     string
		mode     wire.Mode
		uniquify bool
	}
	variants := []variant{
		{"off", wire.ModeOff, false},
		{"adaptive", wire.ModeAdaptive, false},
		{"raw", wire.ModeRaw, false},
		{"delta", wire.ModeDelta, false},
		{"bitmap", wire.ModeBitmap, false},
		{"adaptive+U", wire.ModeAdaptive, true},
	}
	graphs := []struct {
		name string
		el   *graph.EdgeList
	}{
		{"rmat", rmatGraph(scale)},
		{"uniform", uniformGraph(scale)},
	}

	for _, g := range graphs {
		// suggestTH caps d at 4n/p; passing p=32 tightens the cap to n/8.
		th := suggestTH(g.el, 32)
		sources := pickSources(g.el.OutDegrees(), p.sources(), p.seed())
		for _, v := range variants {
			opts := core.DefaultOptions()
			opts.Compression = v.mode
			opts.Uniquify = v.uniquify
			opts.WorkAmplification = amp
			opts.CollectLevels = false
			e, _, err := buildPlan(g.el, shape, th, opts)
			if err != nil {
				return nil, err
			}
			results, err := runAll(e, sources)
			if err != nil {
				return nil, err
			}
			var w metrics.WireStats
			var remoteNormal, elapsed float64
			for _, r := range results {
				w.Accumulate(r.Wire)
				remoteNormal += r.Parts.RemoteNormal
				elapsed += r.SimSeconds
			}
			n := float64(len(results))
			t.Rows = append(t.Rows, []string{
				g.name, v.name,
				f1(float64(w.RawBytes) / 1024), f1(float64(w.CompressedBytes) / 1024),
				pct(w.Savings()),
				fmt.Sprintf("%d/%d/%d", w.SchemeRaw, w.SchemeDelta, w.SchemeBitmap),
				ms(remoteNormal / n), us(w.CodecSeconds / n), ms(elapsed / n),
			})
		}
	}
	return t, nil
}
