package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func quickParams() Params { return Params{Quick: true, Sources: 2} }

// runExp executes a registered experiment in quick mode and sanity-checks
// the table envelope.
func runExp(t *testing.T, id string) *Table {
	t.Helper()
	run, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tab, err := run(quickParams())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id {
		t.Fatalf("table id %q, want %q", tab.ID, id)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Headers) {
			t.Fatalf("%s row %d: %d cells, %d headers", id, i, len(row), len(tab.Headers))
		}
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	if !strings.Contains(buf.String(), id) {
		t.Fatalf("%s: render missing id", id)
	}
	return tab
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	clean := strings.TrimSuffix(cell, "%")
	v, err := strconv.ParseFloat(clean, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "net1", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "tab1", "tab2", "wdc1", "do1",
		"abl1", "abl2", "cmp1", "cmp2", "cmp3", "cmp4", "cmp5", "cmp6", "cmp7", "cmp8", "app1", "mem1"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	desc := Describe()
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
		if desc[id] == "" {
			t.Errorf("missing description for %s", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup accepted unknown id")
	}
}

func TestFig5Shape(t *testing.T) {
	tab := runExp(t, "fig5")
	// As TH grows: nn share must be non-decreasing, dd share non-increasing
	// (cells are percentages).
	var prevNN, prevDD float64 = -1, 200
	for _, row := range tab.Rows {
		dd := cellFloat(t, row[1])
		nn := cellFloat(t, row[3])
		if nn < prevNN-1e-9 {
			t.Fatalf("nn share decreased at TH=%s", row[0])
		}
		if dd > prevDD+1e-9 {
			t.Fatalf("dd share increased at TH=%s", row[0])
		}
		prevNN, prevDD = nn, dd
	}
	// Last row: no delegates → everything nn.
	last := tab.Rows[len(tab.Rows)-1]
	if cellFloat(t, last[4]) != 0 {
		t.Fatalf("final TH still has delegates: %v", last)
	}
}

func TestFig6DOBeatsBFS(t *testing.T) {
	tab := runExp(t, "fig6")
	// On RMAT, DOBFS must beat plain BFS at every threshold (paper Fig 6).
	for _, row := range tab.Rows {
		bfs, dobfs := cellFloat(t, row[1]), cellFloat(t, row[2])
		if dobfs <= bfs {
			t.Fatalf("TH=%s: DOBFS %.1f not above BFS %.1f", row[0], dobfs, bfs)
		}
	}
}

func TestFig7ThresholdGrowsWithScale(t *testing.T) {
	tab := runExp(t, "fig7")
	var prevTH float64 = 0
	for _, row := range tab.Rows {
		th := cellFloat(t, row[2])
		if th < prevTH {
			t.Fatalf("suggested TH decreased at scale %s", row[0])
		}
		prevTH = th
		// Delegates stay at or below the 4n/p line.
		if del, line := cellFloat(t, row[3]), cellFloat(t, row[5]); del > line+1e-9 {
			t.Fatalf("scale %s: delegates %.2f%% above 4n/p line %.2f%%", row[0], del, line)
		}
	}
}

func TestFig8DOCutsComputation(t *testing.T) {
	tab := runExp(t, "fig8")
	// Within each layout, DO must cut computation versus BFS by ≥2×
	// (paper: ~3×).
	byLayout := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		layout, opts := row[0], row[1]
		if byLayout[layout] == nil {
			byLayout[layout] = map[string]float64{}
		}
		byLayout[layout][opts] = cellFloat(t, row[2])
	}
	for layout, m := range byLayout {
		if m["BFS+BR"] < 2*m["DO+BR"] {
			t.Fatalf("%s: BFS comp %.2f not ≥2× DO comp %.2f", layout, m["BFS+BR"], m["DO+BR"])
		}
	}
}

func TestFig9WeakScalingGrows(t *testing.T) {
	tab := runExp(t, "fig9")
	// DOBFS aggregate rate must grow with GPU count (take 2×2 layouts and
	// the 1-GPU row).
	var series []float64
	for _, row := range tab.Rows {
		if strings.Contains(row[1], "×2×2") || row[0] == "1" {
			series = append(series, cellFloat(t, row[3]))
		}
	}
	if len(series) < 3 {
		t.Fatalf("too few weak-scaling points: %d", len(series))
	}
	if series[len(series)-1] <= series[0] {
		t.Fatalf("weak scaling flat: %v", series)
	}
}

func TestFig10ComputationGrowsSlowly(t *testing.T) {
	tab := runExp(t, "fig10")
	var first, last float64
	count := 0
	for _, row := range tab.Rows {
		if row[0] != "DOBFS" {
			continue
		}
		v := cellFloat(t, row[2])
		if count == 0 {
			first = v
		}
		last = v
		count++
	}
	if count < 2 {
		t.Fatalf("too few DOBFS rows: %d", count)
	}
	// Paper: computation grows ~4× over 7 scales; allow up to 6× over our
	// shorter sweep, and require it not to blow up.
	if last > 6*first {
		t.Fatalf("computation grew %.1f× along weak scaling", last/first)
	}
}

func TestFig11StrongScalingPattern(t *testing.T) {
	tab := runExp(t, "fig11")
	// BFS rate at max GPUs ≥ BFS at min GPUs (BFS strong-scales better).
	var bfs []float64
	for _, row := range tab.Rows {
		if strings.Contains(row[1], "×2×2") {
			bfs = append(bfs, cellFloat(t, row[2]))
		}
	}
	if len(bfs) >= 2 && bfs[len(bfs)-1] < bfs[0]*0.8 {
		t.Fatalf("BFS strong scaling collapsed: %v", bfs)
	}
}

func TestFig12Fig13Friendster(t *testing.T) {
	tab12 := runExp(t, "fig12")
	// Social graph: delegate share shrinks with TH (cells are percentages).
	var prevDel float64 = 200
	for _, row := range tab12.Rows {
		del := cellFloat(t, row[4])
		if del > prevDel+1e-9 {
			t.Fatalf("delegate share grew with TH: %v", row)
		}
		prevDel = del
	}
	tab13 := runExp(t, "fig13")
	for _, row := range tab13.Rows {
		if cellFloat(t, row[2]) <= 0 {
			t.Fatalf("zero DOBFS rate at TH=%s", row[0])
		}
	}
}

func TestTable1Ratios(t *testing.T) {
	tab := runExp(t, "tab1")
	// Edge-list ratio row must show ≥2× savings (paper: ~3×).
	found := false
	for _, row := range tab.Rows {
		if row[0] == "edge list (16m)" {
			found = true
			if !strings.Contains(row[3], "ratio") {
				t.Fatalf("missing ratio cell: %v", row)
			}
			var ratio float64
			if _, err := fmtSscanf(row[3], &ratio); err != nil {
				t.Fatalf("cannot parse ratio from %q", row[3])
			}
			if ratio < 2 {
				t.Fatalf("edge-list ratio %.2f < 2", ratio)
			}
		}
	}
	if !found {
		t.Fatal("edge-list comparison row missing")
	}
}

func fmtSscanf(s string, out *float64) (int, error) {
	idx := strings.Index(s, "ratio ")
	if idx < 0 {
		return 0, strings.NewReader("").UnreadByte()
	}
	val := strings.TrimSuffix(s[idx+6:], "×")
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	*out = v
	return 1, nil
}

func TestTable2HasSimColumn(t *testing.T) {
	tab := runExp(t, "tab2")
	if len(tab.Rows) != 7 {
		t.Fatalf("tab2 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if cellFloat(t, row[5]) <= 0 {
			t.Fatalf("missing sim GTEPS in row %v", row)
		}
	}
}

func TestNet1OptimumAt4MB(t *testing.T) {
	tab := runExp(t, "net1")
	best, bestSize := 0.0, ""
	for _, row := range tab.Rows {
		if bw := cellFloat(t, row[3]); bw > best {
			best, bestSize = bw, row[0]
		}
	}
	if bestSize != "4MB" {
		t.Fatalf("optimum at %s, want 4MB", bestSize)
	}
}

func TestWDC1LongTail(t *testing.T) {
	tab := runExp(t, "wdc1")
	vals := map[string][]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = []float64{cellFloat(t, row[1]), cellFloat(t, row[2])}
	}
	// Long tail: both run hundreds of iterations.
	if vals["BFS"][1] < 60 {
		t.Fatalf("BFS iterations %.0f, want long tail", vals["BFS"][1])
	}
	// The §VI-D observation: DOBFS does not beat BFS here.
	if vals["DOBFS"][0] > vals["BFS"][0]*1.05 {
		t.Fatalf("DOBFS %.2f unexpectedly above BFS %.2f on long-tail graph",
			vals["DOBFS"][0], vals["BFS"][0])
	}
}

func TestDO1WidePlateau(t *testing.T) {
	tab := runExp(t, "do1")
	// The paper's chosen factors and neighbors should all be within 2× of
	// the best row.
	var best float64
	rates := make([]float64, len(tab.Rows))
	for i, row := range tab.Rows {
		rates[i] = cellFloat(t, row[3])
		if rates[i] > best {
			best = rates[i]
		}
	}
	// The paper's chosen factors and their decade neighbors (rows 2–4)
	// sit on the wide near-optimal plateau.
	for i := 2; i <= 4; i++ {
		if rates[i] < best/2 {
			t.Fatalf("row %d rate %.1f not within 2× of best %.1f", i, rates[i], best)
		}
	}
}

func TestAbl1ScalingDirections(t *testing.T) {
	tab := runExp(t, "abl1")
	// 1D-DO broadcast volume must dwarf ours at the largest GPU count.
	last := tab.Rows[len(tab.Rows)-1]
	ours := cellFloat(t, last[1])
	oneDDO := cellFloat(t, last[3])
	if oneDDO <= ours {
		t.Fatalf("1D DO broadcast %v not above ours %v at max GPUs", oneDDO, ours)
	}
}

func TestAbl2MergePathWins(t *testing.T) {
	tab := runExp(t, "abl2")
	comp := map[string]float64{}
	for _, row := range tab.Rows {
		comp[row[0]+"/"+row[1]] = cellFloat(t, row[2])
	}
	if comp["twb-dynamic (forced)/DOBFS"] <= comp["merge-path (paper)/DOBFS"] {
		t.Fatalf("forcing TWB on dd did not cost computation: %v", comp)
	}
	if comp["twb-dynamic (forced)/BFS"] <= comp["merge-path (paper)/BFS"] {
		t.Fatalf("forcing TWB on dd did not cost BFS computation: %v", comp)
	}
}

func TestApp1TrafficOrdering(t *testing.T) {
	tab := runExp(t, "app1")
	vals := map[string][]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = []float64{
			cellFloat(t, row[1]), cellFloat(t, row[2]),
			cellFloat(t, row[3]), cellFloat(t, row[4]),
		}
	}
	// §VI-D: general algorithms do more local computation than DOBFS...
	if vals["PageRank"][1] <= vals["DOBFS"][1] {
		t.Fatalf("PageRank comp %.3f not above DOBFS %.3f", vals["PageRank"][1], vals["DOBFS"][1])
	}
	// ...and ship more delegate state (64-bit scores vs 1-bit masks).
	if vals["PageRank"][3] <= vals["DOBFS"][3] {
		t.Fatalf("PageRank delegate traffic %.1f not above DOBFS %.1f",
			vals["PageRank"][3], vals["DOBFS"][3])
	}
}

func TestMem1HeadlineRow(t *testing.T) {
	tab := runExp(t, "mem1")
	// The paper's claim: scale-30 on 12 GPUs fits ONLY with degree
	// separation (not plain CSR, not an edge list).
	found := false
	for _, row := range tab.Rows {
		if row[0] == "30" && row[1] == "12" {
			found = true
			if row[5] != "true/false/false" {
				t.Fatalf("scale-30/12-GPU fits column = %q, want true/false/false", row[5])
			}
		}
	}
	if !found {
		t.Fatal("scale-30 on 12 GPUs row missing")
	}
}

func TestFig1IncludesSimPoint(t *testing.T) {
	tab := runExp(t, "fig1")
	foundPaper, foundSim := false, false
	for _, row := range tab.Rows {
		if row[0] == "[T]" {
			foundPaper = true
		}
		if row[0] == "[sim]" {
			foundSim = true
		}
	}
	if !foundPaper || !foundSim {
		t.Fatalf("fig1 missing rows: paper=%v sim=%v", foundPaper, foundSim)
	}
}

func TestCmp1Shape(t *testing.T) {
	tab := runExp(t, "cmp1")
	if len(tab.Rows) != 12 {
		t.Fatalf("cmp1 has %d rows, want 12 (2 graphs × 6 variants)", len(tab.Rows))
	}
	// Per graph: adaptive must save bytes (positive %), never lose to any
	// forced scheme, and cut end-to-end time versus off.
	byKey := map[string][]string{}
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[1]] = row
	}
	for _, g := range []string{"rmat", "uniform"} {
		off, adaptive := byKey[g+"/off"], byKey[g+"/adaptive"]
		if off == nil || adaptive == nil {
			t.Fatalf("%s: missing off/adaptive rows", g)
		}
		if saved := cellFloat(t, adaptive[4]); saved <= 0 {
			t.Errorf("%s: adaptive saved %.2f%%, want > 0", g, saved)
		}
		if cellFloat(t, off[4]) != 0 {
			t.Errorf("%s: off row reports nonzero savings", g)
		}
		adaptiveWire := cellFloat(t, adaptive[3])
		for _, forced := range []string{"raw", "delta", "bitmap"} {
			if fw := cellFloat(t, byKey[g+"/"+forced][3]); adaptiveWire > fw+0.05 {
				t.Errorf("%s: adaptive wire %.1f kB exceeds forced %s %.1f kB", g, adaptiveWire, forced, fw)
			}
		}
		// Codec compute is charged to the model now: zero with the codec
		// off, nonzero for adaptive — and compression still wins end to
		// end despite paying for its own pack/unpack kernels.
		if oc := cellFloat(t, off[7]); oc != 0 {
			t.Errorf("%s: off row charges %.3f codec ms, want 0", g, oc)
		}
		if ac := cellFloat(t, adaptive[7]); ac <= 0 {
			t.Errorf("%s: adaptive row charges no codec time", g)
		}
		if oe, ae := cellFloat(t, off[8]), cellFloat(t, adaptive[8]); ae >= oe {
			t.Errorf("%s: adaptive elapsed %.2f ms not below off %.2f ms", g, ae, oe)
		}
	}
}

// TestCmp3HybridAtLeastBestFixed: the experiment itself enforces the
// acceptance criteria (levels bit-identical across policies, hybrid ≤ 1.05×
// the best fixed elapsed per cell); the test checks the table's structure
// and that the hybrid policy is really deciding — it must either mix
// strategies within a cell or pick different sides in different cells (the
// hierarchical exchange moved the crossover, so the quick cells land whole
// runs on one side each: butterfly at ranks=4, all-pairs at ranks=5).
func TestCmp3HybridAtLeastBestFixed(t *testing.T) {
	tab := runExp(t, "cmp3")
	// Quick mode: 1 scale × ranks {4, 5} × 3 policies.
	if len(tab.Rows) != 6 {
		t.Fatalf("cmp3 has %d rows, want 6", len(tab.Rows))
	}
	mixed := false
	var sawAP, sawBF bool
	for _, row := range tab.Rows {
		policy, split := row[2], row[3]
		var ap, bf int64
		if _, err := fmt.Sscanf(split, "%d/%d", &ap, &bf); err != nil {
			t.Fatalf("row %v: unparsable iteration split %q", row, split)
		}
		switch policy {
		case "allpairs":
			if bf != 0 {
				t.Errorf("fixed all-pairs ran %d butterfly iterations", bf)
			}
		case "butterfly":
			if ap != 0 {
				t.Errorf("fixed butterfly ran %d all-pairs iterations", ap)
			}
		case "hybrid":
			if ap > 0 && bf > 0 {
				mixed = true
			}
			sawAP = sawAP || ap > 0
			sawBF = sawBF || bf > 0
		default:
			t.Fatalf("unknown policy row %q", policy)
		}
	}
	if !mixed && !(sawAP && sawBF) {
		t.Error("hybrid picked one strategy across every cmp3 cell — policy inert")
	}
}

// TestCmp4PipelineWins: the experiment itself enforces the acceptance
// criteria (levels/parents bit-identical across configurations, pipelined
// strictly faster than sequential, hidden ≤ total codec, hybrid ≤ 1.05×
// best fixed); the test checks the table's structure and that the pipeline
// actually hid codec time somewhere.
func TestCmp4PipelineWins(t *testing.T) {
	tab := runExp(t, "cmp4")
	// Quick mode: 1 scale × ranks {4, 6} × 4 configurations.
	if len(tab.Rows) != 8 {
		t.Fatalf("cmp4 has %d rows, want 8", len(tab.Rows))
	}
	var hidSomething bool
	for _, row := range tab.Rows {
		config, codec, hidden := row[2], cellFloat(t, row[4]), cellFloat(t, row[5])
		if hidden > codec {
			t.Errorf("%s: hidden %.3f ms above total codec %.3f ms", config, hidden, codec)
		}
		switch config {
		case "allpairs", "bf-seq":
			if hidden != 0 {
				t.Errorf("%s hid %.3f ms — only pipelined butterfly hops can hide codec work", config, hidden)
			}
		case "bf-pipe":
			if hidden > 0 {
				hidSomething = true
			}
		case "hybrid":
			// May hide (butterfly iterations) or not (all-pairs-heavy cells).
		default:
			t.Fatalf("unknown config row %q", config)
		}
	}
	if !hidSomething {
		t.Error("pipelined butterfly never hid codec time in any cmp4 cell — pipeline inert")
	}
}

// TestCmp5SweepAmortizes: the multi-source ablation's hard assertions
// (bit-identical levels/parents per query, sweep gteps/query above batch at
// K ≥ 64) run inside the experiment; the test checks the table's structure
// and that the sweep's advantage grows with K.
func TestCmp5SweepAmortizes(t *testing.T) {
	tab := runExp(t, "cmp5")
	// Quick mode: K ∈ {8, 64} × {batch, sweep}.
	if len(tab.Rows) != 4 {
		t.Fatalf("cmp5 has %d rows, want 4", len(tab.Rows))
	}
	speedups := map[string]float64{}
	for _, row := range tab.Rows {
		k, mode := row[0], row[1]
		if mode != "batch" && mode != "sweep" {
			t.Fatalf("unknown mode row %q", mode)
		}
		if mode == "sweep" {
			speedups[k] = cellFloat(t, row[7])
		}
	}
	if speedups["64"] <= 1 {
		t.Errorf("K=64 sweep speedup %.2f× not above 1", speedups["64"])
	}
	if speedups["64"] <= speedups["8"] {
		t.Errorf("sweep speedup did not grow with K: %.2f× at 8 vs %.2f× at 64",
			speedups["8"], speedups["64"])
	}
}

// TestCmp6RepairWinsSmallDeltas: the dynamic ablation's hard assertions
// (levels/parents bit-identical between repair and recompute in every cell,
// repair ≥ 1× recompute at the smallest delta) run inside the experiment;
// the test checks the table's structure and that repair's advantage shrinks
// as the delta grows.
func TestCmp6RepairWinsSmallDeltas(t *testing.T) {
	tab := runExp(t, "cmp6")
	// Quick mode: fracs {0.001, 0.01} × kinds {insert, delete, mixed}.
	if len(tab.Rows) != 6 {
		t.Fatalf("cmp6 has %d rows, want 6", len(tab.Rows))
	}
	meanSpeedup := map[string]float64{}
	for _, row := range tab.Rows {
		frac, kind := row[0], row[1]
		if kind != "insert" && kind != "delete" && kind != "mixed" {
			t.Fatalf("unknown kind row %q", kind)
		}
		if cellFloat(t, row[2]) <= 0 {
			t.Fatalf("frac=%s/%s: empty delta", frac, kind)
		}
		meanSpeedup[frac] += cellFloat(t, row[9]) / 3
	}
	if meanSpeedup["0.001"] < 1 {
		t.Errorf("smallest-delta mean speedup %.2f× below 1", meanSpeedup["0.001"])
	}
	if meanSpeedup["0.010"] > meanSpeedup["0.001"] {
		t.Errorf("repair advantage grew with delta size: %.2f× at 0.001 vs %.2f× at 0.01",
			meanSpeedup["0.001"], meanSpeedup["0.010"])
	}
}

// TestCmp2ButterflyWinsAtScale is the PR's acceptance check: at 32 ranks the
// butterfly cuts the per-rank per-iteration message count from p−1 to
// log2(p) and the simulated remote-normal time versus all-pairs (levels are
// asserted identical inside the experiment itself).
func TestCmp2ButterflyWinsAtScale(t *testing.T) {
	tab := runExp(t, "cmp2")
	// Quick mode: 2 graphs × ranks {4, 32} × 2 modes × 2 strategies.
	if len(tab.Rows) != 16 {
		t.Fatalf("cmp2 has %d rows, want 16", len(tab.Rows))
	}
	byKey := map[string][]string{}
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[1]+"/"+row[2]+"/"+row[3]] = row
	}
	for _, g := range []string{"rmat", "uniform"} {
		for _, mode := range []string{"off", "adaptive"} {
			ap := byKey[g+"/32/"+mode+"/allpairs"]
			bf := byKey[g+"/32/"+mode+"/butterfly"]
			if ap == nil || bf == nil {
				t.Fatalf("%s/%s: missing 32-rank rows", g, mode)
			}
			if got := cellFloat(t, ap[4]); got != 31 {
				t.Errorf("%s/%s: all-pairs sends %.1f msgs/rank/iter, want p−1 = 31", g, mode, got)
			}
			if got := cellFloat(t, bf[4]); got != 5 {
				t.Errorf("%s/%s: butterfly sends %.1f msgs/rank/iter, want log2(p) = 5", g, mode, got)
			}
			if apT, bfT := cellFloat(t, ap[8]), cellFloat(t, bf[8]); bfT >= apT {
				t.Errorf("%s/%s: butterfly remote-normal %.2f ms not below all-pairs %.2f ms",
					g, mode, bfT, apT)
			}
			if cellFloat(t, ap[6]) != 0 {
				t.Errorf("%s/%s: all-pairs forwarded bytes", g, mode)
			}
			if cellFloat(t, bf[6]) <= 0 {
				t.Errorf("%s/%s: butterfly forwarded nothing", g, mode)
			}
			if apM, bfM := cellFloat(t, ap[7]), cellFloat(t, bf[7]); bfM <= apM {
				t.Errorf("%s/%s: butterfly max message %.2f MB not above all-pairs %.2f MB",
					g, mode, bfM, apM)
			}
			apC, bfC := cellFloat(t, ap[9]), cellFloat(t, bf[9])
			if mode == "off" {
				if apC != 0 || bfC != 0 {
					t.Errorf("%s/off: codec µs %.3f/%.3f, want 0 with the codec off", g, apC, bfC)
				}
			} else if bfC <= apC {
				// The per-hop re-encode makes the butterfly's codec work
				// strictly exceed all-pairs' whenever it relays anything.
				t.Errorf("%s/%s: butterfly codec %.3f µs not above all-pairs %.3f µs",
					g, mode, bfC, apC)
			}
		}
	}
}

// TestCmp7HierarchyAggregates: the hierarchical-exchange ablation's hard
// assertions (bit-identical levels, the flat = gpus/rank × hier message
// identity, hybrid within 1.05× of best fixed) run inside the experiment;
// the test checks the table structure and the NVLink accounting: only
// hierarchical cells charge NVLink time, the pipelined butterfly hides some
// of it, and hierarchical cells always send fewer messages than their flat
// counterparts.
func TestCmp7HierarchyAggregates(t *testing.T) {
	tab := runExp(t, "cmp7")
	// Quick mode: 1 scale × 1 rank count × gpus/rank {2, 4} × 2 modes × 3 policies.
	if len(tab.Rows) != 12 {
		t.Fatalf("cmp7 has %d rows, want 12", len(tab.Rows))
	}
	var hidSomething bool
	msgs := map[string]float64{} // "pgpu/policy/mode" -> msg/rank/iter
	for _, row := range tab.Rows {
		pgpu, policy, mode := row[2], row[3], row[4]
		mpi, nvlink, hidden := cellFloat(t, row[5]), cellFloat(t, row[6]), cellFloat(t, row[7])
		msgs[pgpu+"/"+policy+"/"+mode] = mpi
		switch mode {
		case "flat":
			if nvlink != 0 || hidden != 0 {
				t.Errorf("flat %s pgpu=%s charged NVLink time (%.1f µs, %.1f hidden)",
					policy, pgpu, nvlink, hidden)
			}
		case "hier":
			if nvlink <= 0 {
				t.Errorf("hier %s pgpu=%s charged no NVLink time", policy, pgpu)
			}
			if hidden > nvlink {
				t.Errorf("hier %s pgpu=%s hid %.1f µs of %.1f total", policy, pgpu, hidden, nvlink)
			}
			if policy == "butterfly" && hidden > 0 {
				hidSomething = true
			}
		default:
			t.Fatalf("unknown mode row %q", mode)
		}
	}
	if !hidSomething {
		t.Error("pipelined hierarchical butterfly never hid NVLink time in any cmp7 cell")
	}
	for key, flatMPI := range msgs {
		if !strings.HasSuffix(key, "/flat") {
			continue
		}
		hierMPI := msgs[strings.TrimSuffix(key, "/flat")+"/hier"]
		if hierMPI >= flatMPI {
			t.Errorf("%s: hier %.1f msg/rank/iter not below flat %.1f", key, hierMPI, flatMPI)
		}
	}
}
