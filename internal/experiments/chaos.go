package experiments

import (
	"context"
	"errors"
	"fmt"

	"gcbfs/internal/core"
	"gcbfs/internal/faults"
	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
	"gcbfs/internal/wire"
)

// chaosRetry mirrors the service-level retry policy at the core layer (the
// experiments package cannot import the root package): contained faults
// re-execute with a re-keyed injector, switching to the degraded profile —
// flat all-pairs, pipelining off — after degradeAfter failures. Any error
// that is not a typed fault chain is a containment bug and fails the cell.
func chaosRetry(pl *core.Plan, src int64, inj *faults.Injector, maxAttempts, degradeAfter int) (r *metrics.RunResult, attempts int, degraded bool, err error) {
	var ov core.Overrides
	for attempts = 1; ; attempts++ {
		r, err = pl.Run(context.Background(), src, ov)
		if err == nil {
			return r, attempts, degraded, nil
		}
		if !errors.Is(err, wire.ErrCorrupt) && !errors.Is(err, faults.ErrInjected) {
			return nil, attempts, degraded, fmt.Errorf("untyped failure escaped containment: %w", err)
		}
		if attempts >= maxAttempts {
			return nil, attempts, degraded, err
		}
		inj.NextAttempt()
		if attempts >= degradeAfter {
			degraded = true
			flat, pipeline := true, false
			allPairs := core.ExchangeAllPairs
			ov = core.Overrides{FlatExchange: &flat, PipelineHops: &pipeline, Exchange: &allPairs}
		}
	}
}

// Cmp8Chaos is the chaos ablation: deterministic fault injection
// (internal/faults) swept over fault kind × rate × exchange strategy, with
// the containment + retry + degradation stack recovering each cell. Every
// cell asserts the fault-tolerance contract: an injected fault either
// surfaces as a typed error (wire.ErrCorrupt / faults.ErrInjected chains —
// never a bare panic, never a partial result) or the retried query succeeds
// with levels AND parents bit-identical to the fault-free reference. Stall
// faults never fail a run — they only add simulated time — and their results
// must also be bit-identical.
func Cmp8Chaos(p Params) (*Table, error) {
	scale := p.pick(12, 11)
	rates := []float64{0.02, 0.05, 0.1, 0.3, 1}
	const maxAttempts = 6
	if p.Quick {
		rates = []float64{0.05, 0.3, 1}
	}
	const degradeAfter = 2
	strategies := []core.Exchange{core.ExchangeAllPairs, core.ExchangeButterfly}
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 2}

	el := rmatGraph(scale)
	th := suggestTH(el, 8)
	src := pickSources(el.OutDegrees(), 1, p.seed())[0]
	sep := partition.Separate(el, th)
	sub, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		return nil, err
	}
	baseOpts := func(x core.Exchange) core.Options {
		o := core.DefaultOptions()
		o.Exchange = x
		o.PipelineHops = true
		o.CollectLevels = true
		o.CollectParents = true
		// The checksummed codec covers every inter-rank payload; the plain
		// fixed-width packing has no CRC, so an in-range bit flip there would
		// decode cleanly and the corrupt cells could not assert detection.
		o.Compression = wire.ModeAdaptive
		return o
	}

	t := &Table{
		ID:    "cmp8",
		Title: "chaos ablation: fault kind × rate × strategy under contain/retry/degrade",
		Paper: "beyond the paper — fault-tolerant execution of the §V exchange stack",
		Headers: []string{"kind", "rate", "strategy", "injected", "attempts",
			"degraded", "outcome", "identical"},
		Notes: []string{
			"outcome recovered: the retried query succeeded; typed-error: the attempt budget ran out and the caller saw a wire.ErrCorrupt/faults.ErrInjected chain",
			"every recovered cell asserted bit-identical in levels AND parents to the fault-free reference",
			"stall cells asserted fault-free results with simulated time no less than the reference",
			"untyped errors, bare panics, or partial results fail the experiment",
			fmt.Sprintf("retry mirrors the service policy: %d attempts, degraded profile (flat all-pairs, pipelining off) after %d failures", maxAttempts, degradeAfter),
		},
	}

	// Fault-free references, one per strategy.
	refs := map[core.Exchange]*metrics.RunResult{}
	for _, x := range strategies {
		pl, err := core.NewPlan(sub, shape, baseOpts(x))
		if err != nil {
			return nil, err
		}
		r, err := pl.Run(context.Background(), src, core.Overrides{})
		if err != nil {
			return nil, fmt.Errorf("cmp8: fault-free reference (%v): %w", x, err)
		}
		refs[x] = r
	}

	seed := uint64(p.seed())
	recoveredAfterRetry := 0
	for _, kind := range faults.Kinds() {
		for _, rate := range rates {
			for _, x := range strategies {
				ref := refs[x]
				inj := faults.New(seed, kind, rate)
				opts := baseOpts(x)
				opts.Inject = inj
				pl, err := core.NewPlan(sub, shape, opts)
				if err != nil {
					return nil, err
				}
				r, attempts, degraded, err := chaosRetry(pl, src, inj, maxAttempts, degradeAfter)
				cell := fmt.Sprintf("kind=%s rate=%g strategy=%v", kind, rate, x)
				outcome, identical := "recovered", "-"
				switch {
				case err != nil && (errors.Is(err, wire.ErrCorrupt) || errors.Is(err, faults.ErrInjected)):
					outcome = "typed-error"
				case err != nil:
					return nil, fmt.Errorf("cmp8: %s: %w", cell, err)
				default:
					if len(r.Levels) != len(ref.Levels) || len(r.Parents) != len(ref.Parents) {
						return nil, fmt.Errorf("cmp8: %s: result shape differs from reference", cell)
					}
					for v := range r.Levels {
						if r.Levels[v] != ref.Levels[v] {
							return nil, fmt.Errorf("cmp8: %s: vertex %d level %d, reference %d — recovery was silently wrong",
								cell, v, r.Levels[v], ref.Levels[v])
						}
						if r.Parents[v] != ref.Parents[v] {
							return nil, fmt.Errorf("cmp8: %s: vertex %d parent %d, reference %d — recovery was silently wrong",
								cell, v, r.Parents[v], ref.Parents[v])
						}
					}
					identical = "yes"
					if attempts > 1 {
						recoveredAfterRetry++
					}
				}
				if kind == faults.KindStall {
					if outcome != "recovered" || attempts != 1 {
						return nil, fmt.Errorf("cmp8: %s: stall must never fail a run (outcome %s, %d attempts)", cell, outcome, attempts)
					}
					if inj.Injected() > 0 && r.SimSeconds < ref.SimSeconds {
						return nil, fmt.Errorf("cmp8: %s: stalled run faster than reference (%.6f < %.6f s)",
							cell, r.SimSeconds, ref.SimSeconds)
					}
				}
				// A payload mutation or crash that fires must fail its
				// attempt — a single-attempt success with injections means a
				// fault slipped past detection.
				if kind != faults.KindStall && inj.Injected() > 0 && attempts == 1 {
					return nil, fmt.Errorf("cmp8: %s: fault fired on the only attempt yet the run succeeded undetected", cell)
				}
				t.Rows = append(t.Rows, []string{
					kind.String(), fmt.Sprintf("%g", rate), x.String(),
					i64(inj.Injected()), i64(int64(attempts)),
					fmt.Sprintf("%v", degraded), outcome, identical,
				})
			}
		}
	}
	if recoveredAfterRetry == 0 {
		return nil, fmt.Errorf("cmp8: no cell recovered after a retry — the retry path was never exercised end to end")
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d cells recovered after at least one retry (fault fired, was contained, and the re-run succeeded bit-identically)", recoveredAfterRetry))
	return t, nil
}
