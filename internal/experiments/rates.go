package experiments

import (
	"fmt"

	"gcbfs/internal/core"
	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
)

// rateAtThreshold measures BFS and DOBFS geometric-mean rates at one TH.
func rateAtThreshold(el *graph.EdgeList, shape core.ClusterShape, th int64, amp float64, sources []int64) (bfs, dobfs float64, err error) {
	for _, do := range []bool{false, true} {
		opts := core.DefaultOptions()
		opts.DirectionOptimized = do
		opts.WorkAmplification = amp
		opts.CollectLevels = false
		e, _, err2 := buildPlan(el, shape, th, opts)
		if err2 != nil {
			return 0, 0, err2
		}
		agg, err2 := measure(e, sources)
		if err2 != nil {
			return 0, 0, err2
		}
		if do {
			dobfs = simGTEPS(agg, amp)
		} else {
			bfs = simGTEPS(agg, amp)
		}
	}
	return bfs, dobfs, nil
}

// Fig6ThresholdSweep reproduces Fig. 6: traversal rates vs degree threshold
// for BFS and DOBFS on 4×1×4 (paper: scale-30 RMAT, TH 16–256; local: a
// smaller scale with the TH range shifted to the local degree distribution).
// Expected shape: a wide plateau of near-optimal TH, DOBFS well above BFS.
func Fig6ThresholdSweep(p Params) (*Table, error) {
	scale := p.pick(15, 12)
	el := rmatGraph(scale)
	shape := core.ClusterShape{Nodes: 4, RanksPerNode: 1, GPUsPerRank: 4}
	// Paper per-GPU: scale 30 on 16 GPUs = 26; local: scale-4 per GPU.
	amp := ampFor(26, scale-4)
	sources := pickSources(el.OutDegrees(), p.sources(), p.seed())
	t := &Table{
		ID:      "fig6",
		Title:   fmt.Sprintf("traversal rate vs degree threshold, RMAT scale %d, %s", scale, shape),
		Paper:   "Fig. 6 — scale-30, 4×1×4: best TH in [45,90], wide near-optimal range; DOBFS ≫ BFS",
		Headers: []string{"TH", "BFS simGTEPS", "DOBFS simGTEPS"},
		Notes: []string{
			fmt.Sprintf("amplification %.0f× puts each GPU at the paper's scale-26-per-GPU regime", amp),
			"paper TH range [16,256] at scale 30 maps to the same relative positions of the local degree distribution",
		},
	}
	for _, th := range []int64{1, 2, 4, 8, 16, 32, 64} {
		bfs, dobfs, err := rateAtThreshold(el, shape, th, amp, sources)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{i64(th), f1(bfs), f1(dobfs)})
	}
	return t, nil
}

// Fig13FriendsterRate reproduces Fig. 13: rates vs threshold on the
// friendster-like graph with 1×2×2 GPUs.
func Fig13FriendsterRate(p Params) (*Table, error) {
	scale := p.pick(13, 11)
	el := gen.SocialNetwork(gen.DefaultSocialParams(scale))
	shape := core.ClusterShape{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 2}
	// Friendster: 5.17B edges on 4 GPUs ≈ 2^30.3 edges/GPU; local core
	// scale-13 on 4 GPUs ≈ 2^22.4 edges — amplify by 2^8.
	amp := ampFor(30, 22)
	sources := pickSources(el.OutDegrees(), p.sources(), p.seed())
	t := &Table{
		ID:      "fig13",
		Title:   fmt.Sprintf("friendster-like traversal rate vs threshold, %s", shape),
		Paper:   "Fig. 13 — friendster, 1×2×2: suitable TH in [16,128], near-best range [32,91]; DOBFS > BFS",
		Headers: []string{"TH", "BFS simGTEPS", "DOBFS simGTEPS"},
		Notes: []string{
			"Friendster replaced by the synthetic social graph (DESIGN.md substitution table)",
		},
	}
	for _, th := range []int64{2, 4, 8, 16, 32, 64} {
		bfs, dobfs, err := rateAtThreshold(el, shape, th, amp, sources)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{i64(th), f1(bfs), f1(dobfs)})
	}
	return t, nil
}

// DO1FactorSweep reproduces the §VI-B text experiment: sweeping the
// direction-switching factors over many orders of magnitude, showing a wide
// near-optimal range.
func DO1FactorSweep(p Params) (*Table, error) {
	scale := p.pick(14, 12)
	el := rmatGraph(scale)
	shape := core.ClusterShape{Nodes: 4, RanksPerNode: 1, GPUsPerRank: 4}
	amp := ampFor(26, scale-4)
	th := suggestTH(el, shape.P())
	sources := pickSources(el.OutDegrees(), p.sources(), p.seed())
	t := &Table{
		ID:      "do1",
		Title:   fmt.Sprintf("direction-factor sweep, RMAT scale %d, %s, TH=%d", scale, shape, th),
		Paper:   "§VI-B — factors swept 1e-8..10; all three have wide near-optimal ranges (0.5, 0.05, 1e-7 chosen)",
		Headers: []string{"factor0 (dd)", "factor0 (dn)", "factor0 (nd)", "DOBFS simGTEPS"},
	}
	base := core.DefaultOptions()
	type combo struct{ dd, dn, nd float64 }
	combos := []combo{
		{1e-8, 1e-8, 1e-8},
		{1e-4, 1e-4, 1e-7},
		{0.05, 0.005, 1e-7},
		{0.5, 0.05, 1e-7}, // the paper's choice
		{5, 0.5, 1e-3},
		{10, 10, 10},
	}
	for _, c := range combos {
		opts := base
		opts.FactorsDD = core.SwitchFactors{Fwd2Bwd: c.dd}
		opts.FactorsDN = core.SwitchFactors{Fwd2Bwd: c.dn}
		opts.FactorsND = core.SwitchFactors{Fwd2Bwd: c.nd}
		opts.WorkAmplification = amp
		opts.CollectLevels = false
		e, _, err := buildPlan(el, shape, th, opts)
		if err != nil {
			return nil, err
		}
		agg, err := measure(e, sources)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", c.dd), fmt.Sprintf("%g", c.dn), fmt.Sprintf("%g", c.nd),
			f1(simGTEPS(agg, amp)),
		})
	}
	return t, nil
}
