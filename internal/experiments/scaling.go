package experiments

import (
	"fmt"

	"gcbfs/internal/core"
	"gcbfs/internal/metrics"
	"gcbfs/internal/partition"
)

// Fig8Options reproduces Fig. 8: the effect of the option set {DO, L, U,
// IR/BR} on the four runtime components, on both 16×2×2 and 16×1×4 layouts
// (paper: scale-32 RMAT, TH=128, 64 GPUs).
func Fig8Options(p Params) (*Table, error) {
	// Keep the per-GPU subgraph near scale-14 (the largest the local box
	// sustains): the DO computation cut depends on per-GPU workload
	// dominating the early backward-pull scans, exactly as on the real
	// machine where each GPU holds a scale-26 subgraph.
	scale := p.pick(19, 13)
	gpus := p.pick(32, 16)
	el := rmatGraph(scale)
	amp := ampFor(26, scale-lg(gpus))
	th := suggestTH(el, gpus)
	sources := pickSources(el.OutDegrees(), p.sources(), p.seed())
	t := &Table{
		ID:      "fig8",
		Title:   fmt.Sprintf("options ablation, RMAT scale %d, %d GPUs, TH=%d", scale, gpus, th),
		Paper:   "Fig. 8 — DO cuts computation ~3×; L and U add small local cost with little global gain; BR beats IR at 16 nodes",
		Headers: []string{"layout", "options", "comp ms", "local ms", "remote-normal ms", "remote-delegate ms", "elapsed ms"},
		Notes: []string{
			fmt.Sprintf("paper: scale-32 on 64 GPUs; local: scale-%d on %d GPUs, amplification %.0f×", scale, gpus, amp),
		},
	}
	type variant struct {
		name string
		mod  func(*core.Options)
	}
	variants := []variant{
		{"BFS+BR", func(o *core.Options) { o.DirectionOptimized = false }},
		{"DO+IR", func(o *core.Options) { o.BlockingReduce = false }},
		{"DO+BR", func(o *core.Options) {}},
		{"DO+L+BR", func(o *core.Options) { o.LocalAll2All = true }},
		{"DO+L+U+BR", func(o *core.Options) { o.LocalAll2All = true; o.Uniquify = true }},
		{"DO+L+U+IR", func(o *core.Options) { o.LocalAll2All = true; o.Uniquify = true; o.BlockingReduce = false }},
	}
	for _, shape := range gpuCountShapes(gpus) {
		// One partition per layout, shared by every option variant.
		sep := partition.Separate(el, th)
		sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			opts := core.DefaultOptions()
			opts.WorkAmplification = amp
			opts.CollectLevels = false
			v.mod(&opts)
			e, err := core.NewPlan(sg, shape, opts)
			if err != nil {
				return nil, err
			}
			agg, err := measure(e, sources)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				shape.String(), v.name,
				ms(agg.Parts.Computation), ms(agg.Parts.LocalComm),
				ms(agg.Parts.RemoteNormal), ms(agg.Parts.RemoteDelegate),
				f2(agg.MeanMS),
			})
		}
	}
	return t, nil
}

// weakPoint runs one weak-scaling data point and returns aggregates for
// (BFS, DOBFS).
func weakPoint(scale int, shape core.ClusterShape, amp float64, srcCount int, seed int64) (bfs, dobfs metrics.Aggregate, err error) {
	el := rmatGraph(scale)
	th := suggestTH(el, shape.P())
	sources := pickSources(el.OutDegrees(), srcCount, seed)
	for _, do := range []bool{false, true} {
		opts := core.DefaultOptions()
		opts.DirectionOptimized = do
		opts.WorkAmplification = amp
		opts.CollectLevels = false
		e, _, err2 := buildPlan(el, shape, th, opts)
		if err2 != nil {
			return bfs, dobfs, err2
		}
		agg, err2 := measure(e, sources)
		if err2 != nil {
			return bfs, dobfs, err2
		}
		if do {
			dobfs = agg
		} else {
			bfs = agg
		}
	}
	return bfs, dobfs, nil
}

// lg returns floor(log2(x)) for x ≥ 1.
func lg(x int) int {
	l := 0
	for x > 1 {
		x >>= 1
		l++
	}
	return l
}

// Fig9WeakScaling reproduces Fig. 9: weak scaling with a fixed per-GPU RMAT
// scale, comparing ∗×2×2 vs ∗×1×4 layouts and BFS vs DOBFS. Expected shape:
// mostly linear growth in aggregate GTEPS (paper peaks at 259.8 on 124).
func Fig9WeakScaling(p Params) (*Table, error) {
	perGPU := p.pick(14, 12)
	maxGPUs := p.pick(64, 16)
	amp := ampFor(26, perGPU)
	t := &Table{
		ID:      "fig9",
		Title:   fmt.Sprintf("weak scaling, scale-%d RMAT per GPU", perGPU),
		Paper:   "Fig. 9 — scale-26 per GPU to 124 GPUs: mostly linear, peak 259.8 GTEPS (DOBFS, 2×2)",
		Headers: []string{"GPUs", "layout", "BFS simGTEPS", "DOBFS simGTEPS"},
		Notes: []string{
			fmt.Sprintf("paper scale-26/GPU → local scale-%d/GPU with %.0f× amplification", perGPU, amp),
		},
	}
	for gpus := 1; gpus <= maxGPUs; gpus *= 2 {
		scale := perGPU + lg(gpus)
		for _, shape := range gpuCountShapes(gpus) {
			bfs, dobfs, err := weakPoint(scale, shape, amp, p.sources(), p.seed())
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				i64(int64(gpus)), shape.String(),
				f1(simGTEPS(bfs, amp)), f1(simGTEPS(dobfs, amp)),
			})
		}
	}
	return t, nil
}

// Fig10Breakdown reproduces Fig. 10: the four-component runtime breakdown
// along the ∗×2×2 weak-scaling curve, DOBFS and BFS.
func Fig10Breakdown(p Params) (*Table, error) {
	perGPU := p.pick(14, 12)
	maxGPUs := p.pick(64, 16)
	amp := ampFor(26, perGPU)
	t := &Table{
		ID:      "fig10",
		Title:   fmt.Sprintf("runtime breakdown along weak scaling (∗×2×2), scale-%d per GPU", perGPU),
		Paper:   "Fig. 10 — computation grows only 3–4× over 7 scales; communication grows slightly faster; parts overlap",
		Headers: []string{"mode", "GPUs", "comp ms", "local ms", "remote-normal ms", "remote-delegate ms", "elapsed ms"},
	}
	for _, mode := range []string{"DOBFS", "BFS"} {
		for gpus := 4; gpus <= maxGPUs; gpus *= 2 {
			scale := perGPU + lg(gpus)
			shape := gpuCountShapes(gpus)[0] // ∗×2×2
			bfs, dobfs, err := weakPoint(scale, shape, amp, p.sources(), p.seed())
			if err != nil {
				return nil, err
			}
			agg := dobfs
			if mode == "BFS" {
				agg = bfs
			}
			t.Rows = append(t.Rows, []string{
				mode, i64(int64(gpus)),
				ms(agg.Parts.Computation), ms(agg.Parts.LocalComm),
				ms(agg.Parts.RemoteNormal), ms(agg.Parts.RemoteDelegate),
				f2(agg.MeanMS),
			})
		}
	}
	return t, nil
}

// Fig11StrongScaling reproduces Fig. 11: strong scaling on a fixed RMAT
// graph (paper: scale 30 from 12 to 64 GPUs; DOBFS gains 29% from 12→24
// GPUs then flattens and eventually drops; BFS scales better).
func Fig11StrongScaling(p Params) (*Table, error) {
	scale := p.pick(17, 14)
	minGPUs := 4
	maxGPUs := p.pick(64, 16)
	el := rmatGraph(scale)
	// Fixed graph: per-GPU workload shrinks as GPUs grow; amplification is
	// anchored at the paper's scale-30-on-12-GPUs starting point.
	amp := ampFor(30-3, scale-2) // paper ≈2^26.4/GPU at 12 GPUs; local at 4 GPUs
	t := &Table{
		ID:      "fig11",
		Title:   fmt.Sprintf("strong scaling, RMAT scale %d", scale),
		Paper:   "Fig. 11 — scale-30: DOBFS +29% from 12→24 GPUs, flat after, drops past 48; BFS scales better",
		Headers: []string{"GPUs", "layout", "BFS simGTEPS", "DOBFS simGTEPS"},
		Notes: []string{
			fmt.Sprintf("paper scale 30 on 12–64 GPUs → local scale %d on %d–%d GPUs", scale, minGPUs, maxGPUs),
		},
	}
	sources := pickSources(el.OutDegrees(), p.sources(), p.seed())
	for gpus := minGPUs; gpus <= maxGPUs; gpus *= 2 {
		th := suggestTH(el, gpus)
		for _, shape := range gpuCountShapes(gpus) {
			var rates [2]float64
			for i, do := range []bool{false, true} {
				opts := core.DefaultOptions()
				opts.DirectionOptimized = do
				opts.WorkAmplification = amp
				opts.CollectLevels = false
				e, _, err := buildPlan(el, shape, th, opts)
				if err != nil {
					return nil, err
				}
				agg, err := measure(e, sources)
				if err != nil {
					return nil, err
				}
				rates[i] = simGTEPS(agg, amp)
			}
			t.Rows = append(t.Rows, []string{
				i64(int64(gpus)), shape.String(), f1(rates[0]), f1(rates[1]),
			})
		}
	}
	return t, nil
}
