package experiments

import (
	"fmt"

	"gcbfs/internal/core"
	"gcbfs/internal/metrics"
	"gcbfs/internal/wire"
)

// Cmp4Pipeline ablates the pipelined butterfly (internal/core/exchange.go +
// simnet.ButterflyPipelined): fixed all-pairs, the sequential-hop butterfly,
// the pipelined butterfly, and the hybrid policy with the overlap-aware cost
// model, across scales and rank counts — 6 ranks exercises the pre/post
// cleanup hops inside the pipeline. The codec is adaptive so every hop has
// real decode/merge/re-encode compute to hide; work amplification lifts the
// runs into the paper's per-GPU regime. The runner asserts, on every cell:
// levels AND parents bit-identical across all four configurations, the
// pipelined butterfly strictly faster than the sequential one (the codec
// compute is nonzero, so some of it must hide), hidden codec time never
// exceeding total codec time, and the hybrid no worse than 1.05× the best
// fixed configuration.
func Cmp4Pipeline(p Params) (*Table, error) {
	scales := []int{12, 14}
	rankCounts := []int{4, 6, 8, 16}
	if p.Quick {
		scales = []int{11}
		rankCounts = []int{4, 6}
	}
	t := &Table{
		ID:    "cmp4",
		Title: "pipelined-butterfly ablation: sequential vs pipelined hops vs overlap-aware hybrid",
		Paper: "beyond the paper — §VI-B's compute/communication overlap applied inside the exchange (ButterFly BFS, Green 2021)",
		Headers: []string{"scale", "ranks", "config", "iters ap/bf", "codec ms",
			"hidden ms", "stalls", "remote-normal ms", "elapsed ms"},
		Notes: []string{
			"levels and parents asserted bit-identical across all four configurations on every cell",
			"pipelined butterfly asserted strictly faster than sequential on every cell (adaptive codec ⇒ nonzero per-hop compute to hide)",
			"hidden ms is codec compute overlapped under hop transfers — asserted ≤ total codec ms (overlap hides time, never creates it)",
			"stalls count pipeline steps where the codec stage outlasted the concurrent transfer",
			"hybrid (overlap-aware cost model) asserted ≤ 1.05× the best fixed configuration's elapsed time on every cell",
		},
	}

	type config struct {
		name     string
		exchange core.Exchange
		pipeline bool
	}
	configs := []config{
		{"allpairs", core.ExchangeAllPairs, true}, // pipelining is a no-op for all-pairs
		{"bf-seq", core.ExchangeButterfly, false},
		{"bf-pipe", core.ExchangeButterfly, true},
		{"hybrid", core.ExchangeHybrid, true},
	}

	for _, scale := range scales {
		el := rmatGraph(scale)
		amp := ampFor(18, scale)
		// Tight delegate cap so the normal exchange — the traffic under
		// ablation — carries volume (as in cmp2/cmp3).
		th := suggestTH(el, 32)
		sources := pickSources(el.OutDegrees(), p.sources(), p.seed())
		for _, ranks := range rankCounts {
			shape := core.ClusterShape{Nodes: ranks, RanksPerNode: 1, GPUsPerRank: 2}
			var refLevels [][]int32
			var refParents [][]int64
			elapsedBy := map[string]float64{}
			for _, cfg := range configs {
				opts := core.DefaultOptions()
				opts.Compression = wire.ModeAdaptive
				opts.Exchange = cfg.exchange
				opts.PipelineHops = cfg.pipeline
				opts.WorkAmplification = amp
				opts.CollectLevels = true
				opts.CollectParents = true
				e, _, err := buildPlan(el, shape, th, opts)
				if err != nil {
					return nil, err
				}
				results, err := runAll(e, sources)
				if err != nil {
					return nil, err
				}
				if cfg.name == "allpairs" {
					for _, r := range results {
						refLevels = append(refLevels, r.Levels)
						refParents = append(refParents, r.Parents)
					}
				} else {
					for i, r := range results {
						for v := range r.Levels {
							if r.Levels[v] != refLevels[i][v] {
								return nil, fmt.Errorf(
									"cmp4: scale=%d ranks=%d config=%s: vertex %d level %d vs %d (allpairs)",
									scale, ranks, cfg.name, v, r.Levels[v], refLevels[i][v])
							}
						}
						for v := range r.Parents {
							if r.Parents[v] != refParents[i][v] {
								return nil, fmt.Errorf(
									"cmp4: scale=%d ranks=%d config=%s: vertex %d parent %d vs %d (allpairs)",
									scale, ranks, cfg.name, v, r.Parents[v], refParents[i][v])
							}
						}
					}
				}
				var xs metrics.ExchangeStats
				var codec, remoteNormal, elapsed float64
				for _, r := range results {
					xs.Accumulate(r.Exchange)
					codec += r.Wire.CodecSeconds
					remoteNormal += r.Parts.RemoteNormal
					elapsed += r.SimSeconds
				}
				if xs.HiddenCodecSeconds > codec+1e-12 {
					return nil, fmt.Errorf(
						"cmp4: scale=%d ranks=%d config=%s: hidden codec %.6f ms above total codec %.6f ms",
						scale, ranks, cfg.name, xs.HiddenCodecSeconds*1e3, codec*1e3)
				}
				if !cfg.pipeline && xs.HiddenCodecSeconds != 0 {
					return nil, fmt.Errorf(
						"cmp4: scale=%d ranks=%d config=%s: sequential hops hid %.6f ms of codec work",
						scale, ranks, cfg.name, xs.HiddenCodecSeconds*1e3)
				}
				n := float64(len(results))
				elapsedBy[cfg.name] = elapsed
				t.Rows = append(t.Rows, []string{
					i64(int64(scale)), i64(int64(ranks)), cfg.name,
					fmt.Sprintf("%d/%d", xs.AllPairsIterations, xs.ButterflyIterations),
					ms(codec / n), ms(xs.HiddenCodecSeconds / n), i64(xs.PipelineStalls),
					ms(remoteNormal / n), ms(elapsed / n),
				})
			}
			if seq, pipe := elapsedBy["bf-seq"], elapsedBy["bf-pipe"]; pipe >= seq {
				return nil, fmt.Errorf(
					"cmp4: scale=%d ranks=%d: pipelined butterfly %.3f ms not strictly below sequential %.3f ms",
					scale, ranks, pipe*1e3, seq*1e3)
			}
			best := elapsedBy["allpairs"]
			for _, name := range []string{"bf-seq", "bf-pipe"} {
				if e := elapsedBy[name]; e < best {
					best = e
				}
			}
			if hy := elapsedBy["hybrid"]; hy > best*1.05 {
				return nil, fmt.Errorf(
					"cmp4: scale=%d ranks=%d: hybrid elapsed %.3f ms above best fixed %.3f ms (+%.1f%%)",
					scale, ranks, hy*1e3, best*1e3, 100*(hy/best-1))
			}
		}
	}
	return t, nil
}
