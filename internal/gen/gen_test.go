package gen

import (
	"testing"

	"gcbfs/internal/graph"
)

func TestPath(t *testing.T) {
	el := Path(5)
	if el.M() != 8 {
		t.Fatalf("M = %d, want 8", el.M())
	}
	deg := el.OutDegrees()
	if deg[0] != 1 || deg[4] != 1 || deg[2] != 2 {
		t.Fatalf("degrees = %v", deg)
	}
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCycle(t *testing.T) {
	el := Cycle(6)
	if el.M() != 12 {
		t.Fatalf("M = %d", el.M())
	}
	for v, d := range el.OutDegrees() {
		if d != 2 {
			t.Fatalf("deg[%d] = %d, want 2", v, d)
		}
	}
	if Cycle(1).M() != 0 {
		t.Fatal("Cycle(1) should have no edges")
	}
}

func TestStar(t *testing.T) {
	el := Star(10)
	deg := el.OutDegrees()
	if deg[0] != 9 {
		t.Fatalf("hub degree = %d", deg[0])
	}
	for v := 1; v < 10; v++ {
		if deg[v] != 1 {
			t.Fatalf("leaf %d degree = %d", v, deg[v])
		}
	}
}

func TestGrid2D(t *testing.T) {
	el := Grid2D(3, 4)
	if el.N != 12 {
		t.Fatalf("N = %d", el.N)
	}
	// 3*3 horizontal + 2*4 vertical undirected edges, doubled.
	if el.M() != int64(2*(3*3+2*4)) {
		t.Fatalf("M = %d", el.M())
	}
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformSymmetric(t *testing.T) {
	el := Uniform(100, 500, 1)
	if el.M() != 1000 {
		t.Fatalf("M = %d", el.M())
	}
	for i := int64(0); i < 500; i++ {
		a, b := el.Edges[2*i], el.Edges[2*i+1]
		if a.U != b.V || a.V != b.U {
			t.Fatalf("pair %d not mirrored", i)
		}
	}
}

func TestSocialNetworkShape(t *testing.T) {
	p := DefaultSocialParams(10)
	el := SocialNetwork(p)
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
	deg := el.OutDegrees()
	s := graph.Stats(deg)
	isolatedShare := float64(s.Zero) / float64(el.N)
	// Target is 50% isolated; RMAT cores have isolated ids of their own so
	// the share lands above the embedding target.
	if isolatedShare < 0.4 {
		t.Fatalf("isolated share = %.2f, want >= 0.4", isolatedShare)
	}
	if s.Max < 20*int64(s.Mean+1) {
		t.Fatalf("expected scale-free skew, max=%d mean=%.2f", s.Max, s.Mean)
	}
}

func TestSocialNetworkDeterministic(t *testing.T) {
	a := SocialNetwork(DefaultSocialParams(8))
	b := SocialNetwork(DefaultSocialParams(8))
	if a.M() != b.M() {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestWebGraphLongTail(t *testing.T) {
	p := DefaultWebParams(8)
	p.NumChains = 4
	p.ChainLength = 50
	el := WebGraph(p)
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
	wantN := int64(1<<8) + 4*50
	if el.N != wantN {
		t.Fatalf("N = %d, want %d", el.N, wantN)
	}
	// Chains contribute 2 directed edges per chain vertex.
	coreM := int64(1<<8) * 8 * 2
	if el.M() != coreM+2*4*50 {
		t.Fatalf("M = %d", el.M())
	}
}

func TestWebGraphSymmetric(t *testing.T) {
	el := WebGraph(DefaultWebParams(7))
	count := map[graph.Edge]int{}
	for _, e := range el.Edges {
		count[e]++
	}
	for e, c := range count {
		if count[graph.Edge{U: e.V, V: e.U}] != c {
			t.Fatalf("edge %v has no mirror", e)
		}
	}
}
