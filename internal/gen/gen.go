// Package gen provides synthetic graph generators beyond RMAT: structured
// graphs for unit tests (paths, stars, grids, cycles, uniform random) and
// scaled-down stand-ins for the two real datasets in the paper's §VI-D that
// cannot be redistributed here:
//
//   - SocialNetwork ≈ Friendster: scale-free core, a large fraction of
//     isolated vertices (the paper's copy has ~50% isolated), wide range of
//     workable degree thresholds (Fig 12/13).
//   - WebGraph ≈ WDC 2012 hyperlink graph: scale-free core plus long chains,
//     producing the long-tail BFS behaviour the paper reports (~330
//     iterations, DOBFS slightly slower than BFS).
//
// All generators return symmetric (edge-doubled) graphs unless noted, since
// the paper's system assumes symmetric inputs (§II-A).
package gen

import (
	"math/rand"

	"gcbfs/internal/graph"
	"gcbfs/internal/rmat"
)

// Path returns the symmetric path 0–1–…–(n-1); diameter n-1. The worst case
// for DOBFS and the simplest graph with known BFS depths.
func Path(n int64) *graph.EdgeList {
	el := graph.NewEdgeList(n)
	for v := int64(0); v+1 < n; v++ {
		el.Add(v, v+1)
		el.Add(v+1, v)
	}
	return el
}

// Cycle returns the symmetric cycle on n vertices.
func Cycle(n int64) *graph.EdgeList {
	el := graph.NewEdgeList(n)
	if n < 2 {
		return el
	}
	for v := int64(0); v < n; v++ {
		el.Add(v, (v+1)%n)
		el.Add((v+1)%n, v)
	}
	return el
}

// Star returns the symmetric star with hub 0 and n-1 leaves: the extreme
// degree-separation case (one obvious delegate).
func Star(n int64) *graph.EdgeList {
	el := graph.NewEdgeList(n)
	for v := int64(1); v < n; v++ {
		el.Add(0, v)
		el.Add(v, 0)
	}
	return el
}

// Grid2D returns the symmetric rows×cols grid; diameter rows+cols-2.
func Grid2D(rows, cols int64) *graph.EdgeList {
	n := rows * cols
	el := graph.NewEdgeList(n)
	id := func(r, c int64) int64 { return r*cols + c }
	for r := int64(0); r < rows; r++ {
		for c := int64(0); c < cols; c++ {
			if c+1 < cols {
				el.Add(id(r, c), id(r, c+1))
				el.Add(id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				el.Add(id(r, c), id(r+1, c))
				el.Add(id(r+1, c), id(r, c))
			}
		}
	}
	return el
}

// Uniform returns a symmetric Erdős–Rényi-style multigraph with m undirected
// edges (2m directed) drawn uniformly at random.
func Uniform(n, m int64, seed int64) *graph.EdgeList {
	rng := rand.New(rand.NewSource(seed))
	el := graph.NewEdgeList(n)
	for i := int64(0); i < m; i++ {
		u, v := rng.Int63n(n), rng.Int63n(n)
		el.Add(u, v)
		el.Add(v, u)
	}
	return el
}

// SocialParams configures the Friendster stand-in.
type SocialParams struct {
	Scale         int     // core is an RMAT graph of this scale
	EdgeFactor    int64   // core edge factor (Friendster: ~38 edges/active vertex; default 16)
	IsolatedShare float64 // fraction of total vertices with no edges (Friendster: ~0.5)
	Seed          uint64
}

// DefaultSocialParams mimics the paper's prepared Friendster graph at a
// reduced scale: about half the vertices isolated, scale-free remainder.
func DefaultSocialParams(scale int) SocialParams {
	return SocialParams{Scale: scale, EdgeFactor: 16, IsolatedShare: 0.5, Seed: 0xf71e4d57}
}

// SocialNetwork builds the Friendster-like graph: an RMAT core embedded in a
// larger vertex range so that IsolatedShare of ids never appear in any edge,
// then vertex-randomized. Symmetric by construction.
func SocialNetwork(p SocialParams) *graph.EdgeList {
	core := rmat.Generate(rmat.Params{
		Scale:      p.Scale,
		EdgeFactor: p.EdgeFactor,
		A:          0.57, B: 0.19, C: 0.19, D: 0.05,
		Seed:      p.Seed,
		Permute:   true,
		Symmetric: true,
	})
	nCore := core.N
	// Total vertex count such that nCore ≈ (1-IsolatedShare) of the total.
	total := int64(float64(nCore) / (1 - p.IsolatedShare))
	if total < nCore {
		total = nCore
	}
	out := &graph.EdgeList{N: total, Edges: core.Edges}
	// Re-randomize over the full range so the isolated ids are interleaved,
	// as in the paper's preparation ("randomizing the vertex numbers").
	perm := graph.NewPermutation(total, p.Seed^0x51ce)
	perm.Apply(out)
	return out
}

// WebParams configures the WDC stand-in.
type WebParams struct {
	Scale       int   // RMAT core scale
	EdgeFactor  int64 // core edge factor
	NumChains   int   // number of long chains attached to core vertices
	ChainLength int64 // vertices per chain — drives BFS iteration count
	Seed        uint64
}

// DefaultWebParams yields a long-tail graph whose BFS takes a few hundred
// iterations, echoing the paper's WDC observation (~330 iterations).
func DefaultWebParams(scale int) WebParams {
	return WebParams{Scale: scale, EdgeFactor: 8, NumChains: 16, ChainLength: 300, Seed: 0x3dc2012}
}

// WebGraph builds the WDC-like graph: an RMAT core plus NumChains chains of
// ChainLength vertices, each chain anchored at a random core vertex. The
// chains create the hundreds-of-iterations long tail in which per-iteration
// frontiers are tiny and direction optimization stops paying off (§VI-D).
func WebGraph(p WebParams) *graph.EdgeList {
	core := rmat.Generate(rmat.Params{
		Scale:      p.Scale,
		EdgeFactor: p.EdgeFactor,
		A:          0.57, B: 0.19, C: 0.19, D: 0.05,
		Seed:      p.Seed,
		Permute:   false, // permute at the end over the full range instead
		Symmetric: true,
	})
	nCore := core.N
	total := nCore + int64(p.NumChains)*p.ChainLength
	out := &graph.EdgeList{N: total, Edges: core.Edges}
	rng := rand.New(rand.NewSource(int64(p.Seed)))
	next := nCore
	for c := 0; c < p.NumChains; c++ {
		anchor := rng.Int63n(nCore)
		prev := anchor
		for i := int64(0); i < p.ChainLength; i++ {
			v := next
			next++
			out.Add(prev, v)
			out.Add(v, prev)
			prev = v
		}
	}
	perm := graph.NewPermutation(total, p.Seed^0xdc02)
	perm.Apply(out)
	return out
}
