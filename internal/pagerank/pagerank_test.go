package pagerank

import (
	"math"
	"testing"

	"gcbfs/internal/core"
	"gcbfs/internal/gen"
	"gcbfs/internal/graph"
	"gcbfs/internal/partition"
	"gcbfs/internal/rmat"
)

func buildSub(t testing.TB, el *graph.EdgeList, shape core.ClusterShape, th int64) *partition.Subgraphs {
	t.Helper()
	sep := partition.Separate(el, th)
	sg, err := partition.Distribute(el, sep, shape.PartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

func serialOf(el *graph.EdgeList, damping float64, iters int) []float64 {
	deg := el.OutDegrees()
	return Serial(el.N, func(yield func(u, v int64)) {
		for _, e := range el.Edges {
			yield(e.U, e.V)
		}
	}, deg, damping, iters)
}

func checkClose(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for v := range want {
		if math.Abs(got[v]-want[v]) > tol {
			t.Fatalf("vertex %d: %.12g vs %.12g", v, got[v], want[v])
		}
	}
}

func TestMatchesSerialOnRMAT(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	want := serialOf(el, 0.85, 20)
	for _, shape := range []core.ClusterShape{
		{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 1},
		{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2},
		{Nodes: 3, RanksPerNode: 2, GPUsPerRank: 1},
	} {
		for _, th := range []int64{0, 8, 1 << 40} {
			sg := buildSub(t, el, shape, th)
			res, err := Run(sg, shape, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			checkClose(t, res.Ranks, want, 1e-9)
			if res.Iterations != 20 {
				t.Fatalf("iterations = %d", res.Iterations)
			}
		}
	}
}

func TestMatchesSerialOnStructuredGraphs(t *testing.T) {
	for _, el := range []*graph.EdgeList{
		gen.Path(40),
		gen.Star(30),
		gen.Grid2D(6, 7),
		gen.SocialNetwork(gen.DefaultSocialParams(8)),
	} {
		want := serialOf(el, 0.85, 15)
		shape := core.ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2}
		sg := buildSub(t, el, shape, 4)
		opts := DefaultOptions()
		opts.MaxIterations = 15
		res, err := Run(sg, shape, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkClose(t, res.Ranks, want, 1e-9)
	}
}

func TestMassConservation(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(10))
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1}
	sg := buildSub(t, el, shape, 16)
	res, err := Run(sg, shape, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rank mass = %.12f, want 1", sum)
	}
}

func TestHubGetsHighestRank(t *testing.T) {
	el := gen.Star(50)
	shape := core.ClusterShape{Nodes: 1, RanksPerNode: 2, GPUsPerRank: 2}
	sg := buildSub(t, el, shape, 5) // hub is a delegate
	res, err := Run(sg, shape, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 50; v++ {
		if res.Ranks[v] >= res.Ranks[0] {
			t.Fatalf("leaf %d rank %.6g ≥ hub rank %.6g", v, res.Ranks[v], res.Ranks[0])
		}
	}
}

func TestToleranceStopsEarly(t *testing.T) {
	el := gen.Cycle(64) // symmetric: converges immediately
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 1}
	sg := buildSub(t, el, shape, 8)
	opts := DefaultOptions()
	opts.MaxIterations = 50
	opts.Tolerance = 1e-12
	res, err := Run(sg, shape, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 50 {
		t.Fatalf("tolerance did not stop early: %d iterations", res.Iterations)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 2, GPUsPerRank: 1}
	sg := buildSub(t, el, shape, 8)
	a, err := Run(sg, shape, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sg, shape, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Ranks {
		if a.Ranks[v] != b.Ranks[v] {
			t.Fatalf("vertex %d: %.17g vs %.17g (bit-level nondeterminism)", v, a.Ranks[v], b.Ranks[v])
		}
	}
	if a.SimSeconds != b.SimSeconds {
		t.Fatal("sim time nondeterministic")
	}
}

// The §VI-D traffic claim: PageRank's delegate reduction carries 64 bits per
// delegate versus BFS's single bit, and normal pairs carry 12 bytes vs 4.
func TestTrafficHeavierThanBFS(t *testing.T) {
	el := rmat.Generate(rmat.DefaultParams(9))
	shape := core.ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 2}
	sg := buildSub(t, el, shape, 8)
	res, err := Run(sg, shape, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesDelegate != int64(res.Iterations)*sg.D()*8 {
		t.Fatalf("delegate bytes %d, want %d", res.BytesDelegate, int64(res.Iterations)*sg.D()*8)
	}
	if res.BytesNormal == 0 {
		t.Fatal("no normal traffic counted")
	}
	if res.Parts.Computation <= 0 {
		t.Fatal("no computation charged")
	}
}

func TestRejectsMismatchedShape(t *testing.T) {
	el := gen.Path(10)
	sg := buildSub(t, el, core.ClusterShape{Nodes: 2, RanksPerNode: 1, GPUsPerRank: 1}, 4)
	if _, err := Run(sg, core.ClusterShape{Nodes: 1, RanksPerNode: 1, GPUsPerRank: 4}, DefaultOptions()); err == nil {
		t.Fatal("accepted mismatched shape")
	}
}
