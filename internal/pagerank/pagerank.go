// Package pagerank implements distributed PageRank on the paper's
// degree-separated substrate — the §VI-D generalization: "Other graph
// algorithms require more bits of state for delegates — for example,
// ranking scores for PageRank — and associative values for normal vertices
// in addition to the vertex numbers themselves."
//
// The structure mirrors the BFS engine: delegates are replicated and their
// per-iteration rank contributions are combined by a global sum-reduction
// (float64 per delegate — 64× the BFS mask traffic); normal-vertex
// contributions cross GPUs as (id, value) pairs over the nn edges (12 bytes
// per edge instead of BFS's 4). Computation touches every edge every
// iteration (O(m), ≫ DOBFS workload), so per the paper's argument the
// computation-to-communication ratio stays favourable and the model scales.
package pagerank

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"gcbfs/internal/core"
	"gcbfs/internal/faults"
	"gcbfs/internal/frontier"
	"gcbfs/internal/metrics"
	"gcbfs/internal/mpi"
	"gcbfs/internal/partition"
	"gcbfs/internal/simgpu"
	"gcbfs/internal/simnet"
	"gcbfs/internal/wire"
)

// Options configures a PageRank run.
type Options struct {
	// Damping is the teleport parameter (default 0.85).
	Damping float64
	// MaxIterations bounds the run (default 20).
	MaxIterations int
	// Tolerance stops early when the L1 delta falls below it (0: run all
	// MaxIterations).
	Tolerance float64
	// WorkAmplification scales the timing model (see core.Options).
	WorkAmplification float64
	// Inject arms deterministic fault injection (see core.Options.Inject);
	// nil keeps every decision point on the fault-free fast path.
	Inject *faults.Injector

	GPU simgpu.Spec
	Net simnet.Spec
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{
		Damping:       0.85,
		MaxIterations: 20,
		GPU:           simgpu.TeslaP100(),
		Net:           simnet.Ray(),
	}
}

// Result reports a PageRank run.
type Result struct {
	Ranks      []float64 // per global vertex, sums to 1
	Iterations int
	SimSeconds float64
	Parts      metrics.Breakdown
	// BytesNormal/BytesDelegate are total exchange volumes, illustrating
	// the §VI-D traffic growth versus BFS.
	BytesNormal   int64
	BytesDelegate int64
}

type gpuState struct {
	pg       *partition.GPUGraph
	dev      *simgpu.Device
	ranks    []float64 // local slots
	acc      []float64 // local accumulator
	accDel   []float64 // delegate accumulator (local share)
	outDeg   []int64   // global out-degree of local vertices (all local)
	bins     *frontier.PairBins
	dangling float64
	delta    float64
	seconds  float64
}

// Run executes PageRank over a partitioned graph on the simulated cluster.
func Run(sg *partition.Subgraphs, shape core.ClusterShape, opts Options) (*Result, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if sg.Cfg != shape.PartitionConfig() {
		return nil, fmt.Errorf("pagerank: graph partitioned for %+v, shape needs %+v",
			sg.Cfg, shape.PartitionConfig())
	}
	if opts.Damping <= 0 || opts.Damping >= 1 {
		opts.Damping = 0.85
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 20
	}
	if opts.WorkAmplification <= 0 {
		opts.WorkAmplification = 1
	}
	if opts.GPU.EdgeRateMerge == 0 {
		opts.GPU = simgpu.TeslaP100()
	}
	if opts.Net.IB.Bandwidth == 0 {
		opts.Net = simnet.Ray()
	}

	e := &engine{sg: sg, shape: shape, opts: opts, cfg: sg.Cfg, p: sg.Cfg.P(), d: sg.D()}
	e.build()
	return e.run()
}

type engine struct {
	sg    *partition.Subgraphs
	shape core.ClusterShape
	opts  Options
	cfg   partition.Config
	p     int
	d     int64

	gpus []*gpuState
	// delegateRanks is the replicated delegate state (consistent after
	// every reduction); rank 0 publishes per-iteration results.
	delegateRanks []float64

	mu            sync.Mutex
	simSeconds    float64
	parts         metrics.Breakdown
	iters         int
	bytesNormal   int64
	bytesDelegate int64
}

func (e *engine) build() {
	n := e.sg.N
	init := 1 / float64(n)
	e.gpus = make([]*gpuState, e.p)
	for i, pg := range e.sg.GPUs {
		gs := &gpuState{
			pg:     pg,
			dev:    simgpu.NewDevice(e.opts.GPU, i),
			ranks:  make([]float64, pg.NumLocal),
			acc:    make([]float64, pg.NumLocal),
			accDel: make([]float64, e.d),
			outDeg: make([]int64, pg.NumLocal),
			bins:   frontier.NewPairBins(e.p),
		}
		for slot := int64(0); slot < pg.NumLocal; slot++ {
			v := e.cfg.GlobalID(uint32(slot), pg.Rank, pg.Slot)
			if !e.sg.Sep.IsDelegate(v) {
				gs.ranks[slot] = init
			}
			// All edges out of a normal vertex live on its owner, so
			// the local nn+nd degree is the global out-degree.
			gs.outDeg[slot] = pg.NN.Degree(slot) + pg.ND.Degree(slot)
		}
		e.gpus[i] = gs
	}
	e.delegateRanks = make([]float64, e.d)
	for di := range e.delegateRanks {
		e.delegateRanks[di] = init
	}
}

func (e *engine) run() (*Result, error) {
	prank := e.shape.Ranks()
	world := mpi.NewWorld(prank)
	armWorld(world, e.opts.Inject)
	var wg sync.WaitGroup
	for r := 0; r < prank; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer containRank(world, rank)
			e.runRank(rank, world.Rank(rank))
		}(r)
	}
	wg.Wait()

	if err := world.Aborted(); err != nil {
		return nil, err
	}
	res := &Result{
		Ranks:         e.gather(),
		Iterations:    e.iters,
		SimSeconds:    e.simSeconds,
		Parts:         e.parts,
		BytesNormal:   e.bytesNormal,
		BytesDelegate: e.bytesDelegate,
	}
	return res, nil
}

func (e *engine) runRank(rank int, comm *mpi.Comm) {
	pgpu := e.shape.GPUsPerRank
	prank := e.shape.Ranks()
	myGPUs := e.gpus[rank*pgpu : (rank+1)*pgpu]
	n := float64(e.sg.N)
	damp := e.opts.Damping
	// Per-rank replica of delegate state (consistent across ranks).
	delRanks := append([]float64(nil), e.delegateRanks...)
	delAcc := make([]float64, e.d)

	for iter := 0; iter < e.opts.MaxIterations; iter++ {
		// ---- Fault injection (chaos testing): see core.Session.runRank.
		if in := e.opts.Inject; in != nil {
			in.Crash(rank, iter, faults.SiteIter)
		}
		// ---- Push phase (all local edges).
		for _, gs := range myGPUs {
			gs.seconds = 0
			gs.dangling = 0
			for i := range gs.acc {
				gs.acc[i] = 0
			}
			for i := range gs.accDel {
				gs.accDel[i] = 0
			}
			gs.bins.Reset()
			e.pushNormals(gs)
			e.pushDelegates(gs, delRanks)
		}

		// ---- Delegate contribution sum: local fold then global
		// rank-ordered sum (the §V-A reduction with float payloads).
		for i := range delAcc {
			delAcc[i] = 0
		}
		for _, gs := range myGPUs {
			for i, v := range gs.accDel {
				delAcc[i] += v
			}
		}
		if e.d > 0 {
			comm.AllreduceSumFloat64(delAcc)
		}

		// ---- Normal pair exchange.
		var sentBytes, recvBytes, intraPairs int64
		for dst := 0; dst < prank; dst++ {
			if dst == rank {
				for s := 0; s < pgpu; s++ {
					for _, src := range myGPUs {
						prs := src.bins.PerGPU[rank*pgpu+s]
						intraPairs += int64(len(prs))
						applyPairs(myGPUs[s], prs)
					}
				}
				continue
			}
			payload := packForRank(myGPUs, dst, pgpu)
			sentBytes += int64(len(payload))
			comm.Isend(dst, iter, payload)
		}
		for src := 0; src < prank; src++ {
			if src == rank {
				continue
			}
			buf := comm.Recv(src, iter)
			recvBytes += int64(len(buf))
			slots, err := frontier.UnpackPairsRank(buf, pgpu)
			if err != nil {
				panic(fmt.Errorf("pagerank: corrupt payload: %v: %w", err, wire.ErrCorrupt))
			}
			for s, prs := range slots {
				applyPairs(myGPUs[s], prs)
			}
		}

		// ---- Dangling mass (plus global traffic stats) and rank update.
		sums := []float64{0, float64(sentBytes + 12*intraPairs)}
		for _, gs := range myGPUs {
			sums[0] += gs.dangling
		}
		comm.AllreduceSumFloat64(sums)
		danglingShare := damp * sums[0] / n
		base := (1-damp)/n + danglingShare
		var localDelta float64
		for _, gs := range myGPUs {
			gs.delta = 0
			for slot := range gs.ranks {
				v := e.cfg.GlobalID(uint32(slot), gs.pg.Rank, gs.pg.Slot)
				if e.sg.Sep.IsDelegate(v) {
					continue
				}
				next := base + damp*gs.acc[slot]
				gs.delta += math.Abs(next - gs.ranks[slot])
				gs.ranks[slot] = next
			}
			localDelta += gs.delta
		}
		// Delegate update: identical on every rank from the reduced sums.
		var delDelta float64
		for di := range delRanks {
			next := base + damp*delAcc[di]
			delDelta += math.Abs(next - delRanks[di])
			delRanks[di] = next
		}
		deltas := []float64{localDelta}
		comm.AllreduceSumFloat64(deltas)
		totalDelta := deltas[0] + delDelta

		// ---- Timing (model): compute max across this rank's GPUs, then
		// reduce component maxima across ranks.
		amp := e.opts.WorkAmplification
		var comp float64
		for _, gs := range myGPUs {
			if gs.seconds > comp {
				comp = gs.seconds
			}
		}
		// Injected stall: timing skew only, results stay bit-identical.
		if in := e.opts.Inject; in != nil {
			comp += in.Stall(rank, iter, faults.SiteIter)
		}
		aSent := int64(float64(sentBytes) * amp)
		aMask := int64(float64(e.d*8) * amp)
		local := e.opts.Net.Staging(aSent) + e.opts.Net.Staging(int64(float64(recvBytes)*amp))
		if e.d > 0 {
			local += e.opts.Net.LocalReduce(aMask, pgpu) + e.opts.Net.LocalBroadcast(aMask, pgpu)
		}
		remoteNormal := e.opts.Net.PointToPoint(aSent, 4<<20)
		var remoteDelegate float64
		if e.d > 0 {
			remoteDelegate = e.opts.Net.Allreduce(aMask, prank, true)
		}
		vec := []int64{int64(math.Float64bits(comp)), int64(math.Float64bits(local)),
			int64(math.Float64bits(remoteNormal)), int64(math.Float64bits(remoteDelegate))}
		comm.AllreduceMax(vec)
		parts := metrics.Breakdown{
			Computation:    math.Float64frombits(uint64(vec[0])),
			LocalComm:      math.Float64frombits(uint64(vec[1])),
			RemoteNormal:   math.Float64frombits(uint64(vec[2])),
			RemoteDelegate: math.Float64frombits(uint64(vec[3])),
		}
		elapsed := parts.Sum() - 0.35*math.Min(parts.Computation,
			parts.RemoteNormal+parts.RemoteDelegate)

		if rank == 0 {
			e.mu.Lock()
			e.simSeconds += elapsed
			e.parts.Add(parts)
			e.iters++
			e.bytesNormal += int64(sums[1])
			e.bytesDelegate += e.d * 8
			copy(e.delegateRanks, delRanks)
			e.mu.Unlock()
		}

		if e.opts.Tolerance > 0 && totalDelta < e.opts.Tolerance {
			break
		}
	}
	comm.Barrier()
}

// pushNormals distributes each local normal vertex's rank along its nn and
// nd edges; dangling mass is collected for uniform redistribution.
func (e *engine) pushNormals(gs *gpuState) {
	p64 := int64(e.p)
	self := gs.pg.GPU
	var edges int64
	for slot := int64(0); slot < gs.pg.NumLocal; slot++ {
		v := e.cfg.GlobalID(uint32(slot), gs.pg.Rank, gs.pg.Slot)
		if e.sg.Sep.IsDelegate(v) {
			continue
		}
		deg := gs.outDeg[slot]
		if deg == 0 {
			gs.dangling += gs.ranks[slot]
			continue
		}
		c := gs.ranks[slot] / float64(deg)
		for _, dst := range gs.pg.NN.Neighbors(slot) {
			edges++
			owner := e.cfg.OwnerGPU(dst)
			local := uint32(dst / p64)
			if owner == self {
				gs.acc[local] += c
			} else {
				gs.bins.Add(owner, local, math.Float64bits(c))
			}
		}
		for _, dv := range gs.pg.ND.Neighbors(slot) {
			edges++
			gs.accDel[dv] += c
		}
	}
	gs.seconds += e.charge(gs, simgpu.KernelCost{
		Edges: edges, Vertices: gs.pg.NumLocal, Strategy: simgpu.TWBDynamic,
	})
}

// pushDelegates distributes each delegate's rank along this GPU's share of
// its dd and dn edges, normalized by the delegate's global degree.
func (e *engine) pushDelegates(gs *gpuState, delRanks []float64) {
	var edges int64
	for di := int64(0); di < e.d; di++ {
		deg := e.sg.DelegateOutDeg[di]
		if deg == 0 {
			continue
		}
		c := delRanks[di] / float64(deg)
		for _, dv := range gs.pg.DD.Neighbors(di) {
			edges++
			gs.accDel[dv] += c
		}
		for _, lv := range gs.pg.DN.Neighbors(di) {
			edges++
			gs.acc[lv] += c
		}
	}
	gs.seconds += e.charge(gs, simgpu.KernelCost{
		Edges: edges, Vertices: e.d, Strategy: simgpu.MergePath,
	})
}

func (e *engine) charge(gs *gpuState, c simgpu.KernelCost) float64 {
	c.Edges = int64(float64(c.Edges) * e.opts.WorkAmplification)
	c.Vertices = int64(float64(c.Vertices) * e.opts.WorkAmplification)
	return gs.dev.Charge(c)
}

func applyPairs(gs *gpuState, prs []frontier.Pair) {
	for _, pr := range prs {
		gs.acc[pr.ID] += math.Float64frombits(pr.Val)
	}
}

func packForRank(myGPUs []*gpuState, dst, pgpu int) []byte {
	merged := frontier.NewPairBins(pgpu)
	for s := 0; s < pgpu; s++ {
		dstGPU := dst*pgpu + s
		for _, gs := range myGPUs {
			merged.PerGPU[s] = append(merged.PerGPU[s], gs.bins.PerGPU[dstGPU]...)
		}
	}
	return merged.PackRank(0, pgpu)
}

// armWorld installs the fault injector's payload hook on the communicator
// (message tags are plain iteration numbers here).
func armWorld(w *mpi.World, in *faults.Injector) {
	if in == nil {
		return
	}
	w.SetSendHook(func(src, dst, tag int, data []byte) []byte {
		return in.Payload(src, tag, faults.SiteExchange, data)
	})
}

// containRank is the per-rank recover boundary: contained faults (corrupt
// payloads, injected crashes) poison the world so every sibling rank unwinds
// and the typed error reaches the caller; genuine bugs re-panic.
func containRank(world *mpi.World, rank int) {
	v := recover()
	if v == nil {
		return
	}
	if _, ok := mpi.AbortError(v); ok {
		return
	}
	if err, ok := v.(error); ok && (errors.Is(err, wire.ErrCorrupt) || errors.Is(err, faults.ErrInjected)) {
		world.Abort(fmt.Errorf("pagerank: rank %d: %w", rank, err))
		return
	}
	panic(v)
}

// gather assembles the global rank vector.
func (e *engine) gather() []float64 {
	out := make([]float64, e.sg.N)
	for _, gs := range e.gpus {
		for slot := int64(0); slot < gs.pg.NumLocal; slot++ {
			v := e.cfg.GlobalID(uint32(slot), gs.pg.Rank, gs.pg.Slot)
			if !e.sg.Sep.IsDelegate(v) {
				out[v] = gs.ranks[slot]
			}
		}
	}
	for di, v := range e.sg.Sep.DelegateGlobal {
		out[v] = e.delegateRanks[di]
	}
	return out
}

// Serial computes the reference PageRank on a full edge list with identical
// semantics (push-style, uniform dangling redistribution) for validation.
func Serial(n int64, edges func(yield func(u, v int64)), outDeg []int64, damping float64, iterations int) []float64 {
	ranks := make([]float64, n)
	acc := make([]float64, n)
	init := 1 / float64(n)
	for i := range ranks {
		ranks[i] = init
	}
	for it := 0; it < iterations; it++ {
		for i := range acc {
			acc[i] = 0
		}
		var dangling float64
		for v := int64(0); v < n; v++ {
			if outDeg[v] == 0 {
				dangling += ranks[v]
			}
		}
		edges(func(u, v int64) {
			acc[v] += ranks[u] / float64(outDeg[u])
		})
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := int64(0); v < n; v++ {
			ranks[v] = base + damping*acc[v]
		}
	}
	return ranks
}
