// Package simgpu models the compute side of a GPU cluster node: device
// memory capacity and a kernel cost model for graph-traversal kernels.
//
// The paper's computation claims rest on *workload counts* (edges scanned,
// vertices filtered) and on the choice of load-balancing strategy per
// subgraph (§IV-A): merge-based workload partitioning for the dd subgraph
// (wide degree range, large average degree) and thread-warp-block (TWB)
// dynamic mapping for nd/dn/nn (bounded, low average degrees). We execute
// kernels functionally on the host and charge simulated time from the
// counted work through this model, calibrated to Tesla P100 throughput.
package simgpu

import "fmt"

// Strategy selects the load-balancing scheme a visit kernel uses.
type Strategy uint8

const (
	// MergePath is merge-based workload partitioning (Davidson et al.),
	// near-perfect balance over wildly skewed rows — used for dd.
	MergePath Strategy = iota
	// TWBDynamic is thread-warp-block dynamic workload mapping (Merrill
	// et al.) — used for nd, dn and nn, whose out-degree ranges are
	// bounded and small.
	TWBDynamic
)

func (s Strategy) String() string {
	if s == MergePath {
		return "merge-path"
	}
	return "twb-dynamic"
}

// Spec describes one GPU's capability. Rates are in operations per second;
// times in seconds.
type Spec struct {
	Name        string
	MemoryBytes int64

	// EdgeRateMerge/EdgeRateTWB are sustained edge-processing rates under
	// the two load-balancing strategies. Merge-path costs slightly more
	// setup per edge but never stalls on skew; TWB is cheaper per edge on
	// uniform rows but degrades with imbalance (see ImbalancePenalty).
	EdgeRateMerge float64
	EdgeRateTWB   float64

	// VertexRate covers per-vertex previsit work: level marking,
	// duplicate filtering, queue compaction, workload summation.
	VertexRate float64

	// KernelOverhead is the fixed launch + sync cost per kernel.
	KernelOverhead float64

	// ImbalancePenalty scales TWB cost by (1 + ImbalancePenalty·skew)
	// where skew = maxRowLen/avgRowLen - 1, clamped. Merge-path ignores
	// skew — that asymmetry is exactly why dd uses merge-path.
	ImbalancePenalty float64

	// CodecRate is the sustained throughput, in raw input bytes per
	// second, of the wire codec's pack/unpack kernels (varint delta,
	// bitmap scatter/gather). These kernels are memory-bound streaming
	// passes — a read-modify-write over the id arrays — so they run at a
	// fraction of HBM bandwidth, far above the edge-traversal rates but
	// well below free. 0 models the codec as free (the pre-costing
	// behaviour, and the right value for custom specs that predate the
	// codec model).
	CodecRate float64
}

// TeslaP100 returns the model calibrated to the paper's hardware: 16 GB
// HBM2, traversal throughput in the low billions of edges per second, and a
// few microseconds of launch overhead. Calibration targets the paper's
// single-node numbers (scale-24 DOBFS ≈ 23 GTEPS on one GPU, Table II).
func TeslaP100() Spec {
	return Spec{
		Name:             "Tesla P100",
		MemoryBytes:      16 << 30,
		EdgeRateMerge:    4.5e9,
		EdgeRateTWB:      5.5e9,
		VertexRate:       10.0e9,
		KernelOverhead:   4e-6,
		ImbalancePenalty: 0.15,
		// ~20% of the P100's 732 GB/s HBM2: one streaming read of the 4-byte
		// ids plus the packed write/read, matching the >100 GB/s GPU
		// varint/bitpack kernels reported in the literature.
		CodecRate: 150e9,
	}
}

// KernelCost is the simulated time charged for one kernel launch.
type KernelCost struct {
	Edges    int64
	Vertices int64
	Strategy Strategy
	Skew     float64 // maxRowLen/avgRowLen - 1; only TWB pays for it
}

// Time converts a kernel's counted work into seconds.
func (s Spec) Time(c KernelCost) float64 {
	if c.Edges == 0 && c.Vertices == 0 {
		return 0 // kernel elided: no launch for empty input
	}
	t := s.KernelOverhead
	t += float64(c.Vertices) / s.VertexRate
	switch c.Strategy {
	case MergePath:
		t += float64(c.Edges) / s.EdgeRateMerge
	case TWBDynamic:
		skew := c.Skew
		if skew < 0 {
			skew = 0
		}
		if skew > 8 {
			skew = 8 // dynamic remapping bounds worst-case stalls
		}
		t += float64(c.Edges) * (1 + s.ImbalancePenalty*skew) / s.EdgeRateTWB
	default:
		panic(fmt.Sprintf("simgpu: unknown strategy %d", c.Strategy))
	}
	return t
}

// CodecTime converts raw bytes pushed through the wire codec's encode or
// decode kernels into seconds; zero when CodecRate is unset (codec modeled
// as free).
func (s Spec) CodecTime(bytes int64) float64 {
	if bytes <= 0 || s.CodecRate <= 0 {
		return 0
	}
	return float64(bytes) / s.CodecRate
}

// FitsMemory reports whether bytes of graph storage fit in device memory,
// leaving headroom for frontiers, masks and staging buffers.
func (s Spec) FitsMemory(bytes int64) bool {
	const headroom = 1 << 30 // 1 GB working set
	return bytes+headroom <= s.MemoryBytes
}

// Device is one simulated GPU: a spec plus accumulated compute time and
// work counters. The engine owns one Device per simulated GPU and calls
// Charge for every kernel it runs.
type Device struct {
	Spec Spec
	ID   int

	ComputeSeconds float64
	KernelLaunches int64
	EdgesProcessed int64
	VertexOps      int64
}

// NewDevice creates a device with zeroed counters.
func NewDevice(spec Spec, id int) *Device {
	return &Device{Spec: spec, ID: id}
}

// Charge records the kernel's work and returns the time charged.
func (d *Device) Charge(c KernelCost) float64 {
	t := d.Spec.Time(c)
	if t > 0 {
		d.KernelLaunches++
	}
	d.ComputeSeconds += t
	d.EdgesProcessed += c.Edges
	d.VertexOps += c.Vertices
	return t
}

// ResetCounters zeroes the accumulators (between BFS runs).
func (d *Device) ResetCounters() {
	d.ComputeSeconds = 0
	d.KernelLaunches = 0
	d.EdgesProcessed = 0
	d.VertexOps = 0
}
