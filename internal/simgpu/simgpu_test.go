package simgpu

import (
	"testing"
	"testing/quick"
)

func TestEmptyKernelIsFree(t *testing.T) {
	s := TeslaP100()
	if got := s.Time(KernelCost{}); got != 0 {
		t.Fatalf("empty kernel cost %g, want 0", got)
	}
}

func TestKernelOverheadApplies(t *testing.T) {
	s := TeslaP100()
	small := s.Time(KernelCost{Edges: 1, Strategy: MergePath})
	if small < s.KernelOverhead {
		t.Fatalf("1-edge kernel %g < launch overhead %g", small, s.KernelOverhead)
	}
}

func TestMergePathIgnoresSkew(t *testing.T) {
	s := TeslaP100()
	a := s.Time(KernelCost{Edges: 1e6, Strategy: MergePath, Skew: 0})
	b := s.Time(KernelCost{Edges: 1e6, Strategy: MergePath, Skew: 100})
	if a != b {
		t.Fatalf("merge-path cost depends on skew: %g vs %g", a, b)
	}
}

func TestTWBPaysForSkew(t *testing.T) {
	s := TeslaP100()
	balanced := s.Time(KernelCost{Edges: 1e6, Strategy: TWBDynamic, Skew: 0})
	skewed := s.Time(KernelCost{Edges: 1e6, Strategy: TWBDynamic, Skew: 4})
	if skewed <= balanced {
		t.Fatalf("TWB skew penalty missing: %g vs %g", skewed, balanced)
	}
	// Penalty is clamped: absurd skew must not diverge.
	extreme := s.Time(KernelCost{Edges: 1e6, Strategy: TWBDynamic, Skew: 1e9})
	capped := s.Time(KernelCost{Edges: 1e6, Strategy: TWBDynamic, Skew: 8})
	if extreme != capped {
		t.Fatalf("skew clamp missing: %g vs %g", extreme, capped)
	}
}

// This is the design rationale of §IV-A: on highly skewed rows (dd),
// merge-path beats TWB; on near-uniform rows (nn/nd/dn), TWB is no worse.
func TestStrategyChoiceRationale(t *testing.T) {
	s := TeslaP100()
	skewedMerge := s.Time(KernelCost{Edges: 1e7, Strategy: MergePath, Skew: 6})
	skewedTWB := s.Time(KernelCost{Edges: 1e7, Strategy: TWBDynamic, Skew: 6})
	if skewedMerge >= skewedTWB {
		t.Fatalf("merge-path should win on skew: %g vs %g", skewedMerge, skewedTWB)
	}
	uniformMerge := s.Time(KernelCost{Edges: 1e7, Strategy: MergePath, Skew: 0})
	uniformTWB := s.Time(KernelCost{Edges: 1e7, Strategy: TWBDynamic, Skew: 0})
	if uniformTWB >= uniformMerge {
		t.Fatalf("TWB should win on uniform rows: %g vs %g", uniformTWB, uniformMerge)
	}
}

func TestQuickTimeMonotonicInWork(t *testing.T) {
	s := TeslaP100()
	f := func(edges uint32, extra uint16, strat bool) bool {
		st := TWBDynamic
		if strat {
			st = MergePath
		}
		a := s.Time(KernelCost{Edges: int64(edges) + 1, Strategy: st})
		b := s.Time(KernelCost{Edges: int64(edges) + 1 + int64(extra), Strategy: st})
		return b >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitsMemory(t *testing.T) {
	s := TeslaP100()
	if !s.FitsMemory(10 << 30) {
		t.Fatal("10 GB should fit in 16 GB")
	}
	if s.FitsMemory(15<<30 + 1<<29) {
		t.Fatal("15.5 GB should not fit (headroom)")
	}
}

func TestDeviceAccumulates(t *testing.T) {
	d := NewDevice(TeslaP100(), 3)
	t1 := d.Charge(KernelCost{Edges: 1000, Vertices: 10, Strategy: MergePath})
	t2 := d.Charge(KernelCost{Edges: 2000, Strategy: TWBDynamic})
	if d.KernelLaunches != 2 {
		t.Fatalf("launches = %d", d.KernelLaunches)
	}
	if d.EdgesProcessed != 3000 || d.VertexOps != 10 {
		t.Fatalf("counters: edges=%d verts=%d", d.EdgesProcessed, d.VertexOps)
	}
	if d.ComputeSeconds != t1+t2 {
		t.Fatalf("ComputeSeconds = %g, want %g", d.ComputeSeconds, t1+t2)
	}
	d.Charge(KernelCost{}) // empty: no launch counted
	if d.KernelLaunches != 2 {
		t.Fatal("empty kernel counted as launch")
	}
	d.ResetCounters()
	if d.ComputeSeconds != 0 || d.EdgesProcessed != 0 || d.KernelLaunches != 0 {
		t.Fatal("ResetCounters incomplete")
	}
}

// Calibration guard: one P100 traversing a scale-24 RMAT workload with the
// DO-reduced edge count should land in the paper's single-GPU ballpark
// (~23 GTEPS, Table II row 1). We allow a ±2× band — the reproduction
// targets shape, not exact numbers — but a regression that moves the model
// an order of magnitude breaks every figure downstream.
func TestCalibrationSingleGPUBallpark(t *testing.T) {
	s := TeslaP100()
	scale := 24
	m2 := int64(1<<uint(scale)) * 16 // TEPS edge count m/2
	// DOBFS on RMAT touches roughly m/8 edges (direction switch skips the
	// dense core); ~8 iterations of kernels on 2 streams.
	workEdges := int64(float64(2*m2) / 8)
	n := int64(1 << uint(scale))
	seconds := s.Time(KernelCost{Edges: workEdges, Vertices: n / 4, Strategy: MergePath})
	gteps := float64(m2) / seconds / 1e9
	if gteps < 11 || gteps > 46 {
		t.Fatalf("single-GPU calibration: %.1f GTEPS, want 11–46 (paper: 22.9)", gteps)
	}
}
