package delta

import (
	"testing"

	"gcbfs/internal/graph"
	"gcbfs/internal/rmat"
)

func undirected(pairs ...[2]int64) []graph.Edge {
	out := make([]graph.Edge, 0, 2*len(pairs))
	for _, p := range pairs {
		out = append(out, graph.Edge{U: p[0], V: p[1]}, graph.Edge{U: p[1], V: p[0]})
	}
	return out
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		b    Batch
	}{
		{"out of range", Batch{Inserts: []graph.Edge{{U: 0, V: 9}}}},
		{"negative", Batch{Deletes: []graph.Edge{{U: -1, V: 2}}}},
		{"self loop", Batch{Inserts: []graph.Edge{{U: 3, V: 3}}}},
		{"dup within inserts", Batch{Inserts: []graph.Edge{{U: 1, V: 2}, {U: 2, V: 1}}}},
		{"insert and delete same pair", Batch{
			Inserts: []graph.Edge{{U: 1, V: 2}},
			Deletes: []graph.Edge{{U: 2, V: 1}},
		}},
	}
	for _, tc := range cases {
		if err := tc.b.Validate(5); err == nil {
			t.Errorf("%s: Validate accepted invalid batch", tc.name)
		}
	}
	ok := Batch{Inserts: []graph.Edge{{U: 0, V: 1}}, Deletes: []graph.Edge{{U: 2, V: 3}}}
	if err := ok.Validate(5); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
}

func TestApply(t *testing.T) {
	// Path 0-1-2-3 plus chord 1-3.
	el := &graph.EdgeList{N: 4, Edges: undirected([2]int64{0, 1}, [2]int64{1, 2}, [2]int64{2, 3}, [2]int64{1, 3})}
	out, err := Apply(el, &Batch{
		Deletes: []graph.Edge{{U: 3, V: 1}}, // reversed orientation on purpose
		Inserts: []graph.Edge{{U: 0, V: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := append(undirected([2]int64{0, 1}, [2]int64{1, 2}, [2]int64{2, 3}), undirected([2]int64{0, 3})...)
	if len(out.Edges) != len(want) {
		t.Fatalf("got %d edges, want %d", len(out.Edges), len(want))
	}
	for i, e := range want {
		if out.Edges[i] != e {
			t.Fatalf("edge %d: got %v want %v (stable compaction violated)", i, out.Edges[i], e)
		}
	}
	// Input untouched.
	if len(el.Edges) != 8 {
		t.Fatalf("input edge list mutated: %d edges", len(el.Edges))
	}

	if _, err := Apply(el, &Batch{Deletes: []graph.Edge{{U: 0, V: 2}}}); err == nil {
		t.Fatal("deleting a missing edge did not error")
	}
}

func TestApplyRemovesParallelCopies(t *testing.T) {
	el := &graph.EdgeList{N: 3, Edges: append(undirected([2]int64{0, 1}), undirected([2]int64{0, 1}, [2]int64{1, 2})...)}
	out, err := Apply(el, &Batch{Deletes: []graph.Edge{{U: 0, V: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range out.Edges {
		if (e.U == 0 && e.V == 1) || (e.U == 1 && e.V == 0) {
			t.Fatalf("parallel copy of deleted edge survived: %v", e)
		}
	}
	if len(out.Edges) != 2 {
		t.Fatalf("got %d surviving edges, want 2", len(out.Edges))
	}
}

func TestAffected(t *testing.T) {
	// Canonical tree over a path 0-1-2-3-4 with an extra edge 1-3 (non-tree:
	// canonical parent of 3 is 2 since 2 < ... wait levels: 0:0 1:1 2:2 3:2
	// (via chord 1-3), 4:3. Tree: parent(3)=1, parent(2)=1, parent(4)=3.
	levels := []int32{0, 1, 2, 2, 3}
	parents := []int64{0, 0, 1, 1, 3}

	// Deleting tree edge {1,3} orphans 3 and its subtree {4}; 0,1,2 stay
	// valid. Insert {0,4}: endpoint 4 is invalid, endpoint 0 valid → seed.
	invalid, seeds := Affected(levels, parents, &Batch{
		Deletes: []graph.Edge{{U: 1, V: 3}},
		Inserts: []graph.Edge{{U: 0, V: 4}},
	})
	wantInvalid := []bool{false, false, false, true, true}
	for v, w := range wantInvalid {
		if invalid[v] != w {
			t.Errorf("invalid[%d] = %v, want %v", v, invalid[v], w)
		}
	}
	if len(seeds) != 1 || seeds[0] != 0 {
		t.Fatalf("seeds = %v, want [0]", seeds)
	}

	// Deleting a non-tree edge invalidates nothing.
	invalid, seeds = Affected(levels, parents, &Batch{Deletes: []graph.Edge{{U: 2, V: 3}}})
	for v := range invalid {
		if invalid[v] {
			t.Errorf("non-tree delete invalidated %d", v)
		}
	}
	if len(seeds) != 0 {
		t.Fatalf("unexpected seeds %v", seeds)
	}
}

func TestSynthesizeDeterministicAndApplies(t *testing.T) {
	el := rmat.Generate(rmat.Params{Scale: 10, EdgeFactor: 8, Seed: 42, Permute: true, Symmetric: true})
	for _, kind := range []Kind{KindInsert, KindDelete, KindMixed} {
		a := Synthesize(el, 0.01, kind, 7)
		b := Synthesize(el, 0.01, kind, 7)
		if len(a.Inserts) != len(b.Inserts) || len(a.Deletes) != len(b.Deletes) {
			t.Fatalf("%v: non-deterministic sizes", kind)
		}
		for i := range a.Inserts {
			if a.Inserts[i] != b.Inserts[i] {
				t.Fatalf("%v: non-deterministic insert %d", kind, i)
			}
		}
		for i := range a.Deletes {
			if a.Deletes[i] != b.Deletes[i] {
				t.Fatalf("%v: non-deterministic delete %d", kind, i)
			}
		}
		if err := a.Validate(el.N); err != nil {
			t.Fatalf("%v: synthesized batch invalid: %v", kind, err)
		}
		if _, err := Apply(el, a); err != nil {
			t.Fatalf("%v: synthesized batch does not apply: %v", kind, err)
		}
	}
}
